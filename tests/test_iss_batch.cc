/**
 * @file
 * Batch-vs-scalar ISS determinism battery: the struct-of-arrays
 * batch engine must be bit-identical to the scalar oracle for
 * every legacy core, machine count, thread count, and step budget
 * — including mid-batch halts, budget exhaustion inside a ZPU IM
 * chain, and input-dependent kill masks. Plus the MSP430
 * status-register audit: a seeded differential fuzz over random
 * raw machines and pinned regressions for the SLAU049 divergences
 * it found.
 */

#include <random>

#include <gtest/gtest.h>

#include "legacy/batch_iss.hh"
#include "legacy/cores.hh"
#include "legacy/i8080.hh"
#include "legacy/ir.hh"
#include "legacy/msp430.hh"
#include "legacy/zpu.hh"
#include "workloads/kernels.hh"

namespace printed
{
namespace
{

using namespace legacy;

IssBatchResult
runEngine(LegacyCore core, const IrProgram &prog,
          const std::vector<std::vector<std::uint64_t>> &inputs,
          IssEngine engine, unsigned threads = 1,
          std::uint64_t max_steps = 50'000'000)
{
    IssBatchOptions opts;
    opts.engine = engine;
    opts.threads = threads;
    opts.maxSteps = max_steps;
    return runLegacyBatch(core, prog, inputs, opts);
}

void
expectIdentical(const IssBatchResult &a, const IssBatchResult &b)
{
    EXPECT_EQ(a.codeBytes, b.codeBytes);
    EXPECT_EQ(a.dataBytes, b.dataBytes);
    EXPECT_EQ(a.totalInstructions, b.totalInstructions);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    ASSERT_EQ(a.status.size(), b.status.size());
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t m = 0; m < a.runs.size(); ++m) {
        EXPECT_EQ(a.status[m], b.status[m]) << "machine " << m;
        EXPECT_EQ(a.runs[m].instructions, b.runs[m].instructions)
            << "machine " << m;
        EXPECT_EQ(a.runs[m].cycles, b.runs[m].cycles)
            << "machine " << m;
        EXPECT_EQ(a.runs[m].outputs, b.runs[m].outputs)
            << "machine " << m;
    }
    EXPECT_EQ(issResultFnv(a), issResultFnv(b));
}

std::vector<std::vector<std::uint64_t>>
fleetInputs(Kernel kind, unsigned width, std::size_t machines)
{
    std::vector<std::vector<std::uint64_t>> inputs(machines);
    for (std::size_t m = 0; m < machines; ++m)
        inputs[m] = defaultInputs(kind, width, 1 + unsigned(m));
    return inputs;
}

// ----------------------------------------------------------------
// Engine determinism: every core x machine count x thread count
// ----------------------------------------------------------------

TEST(IssBatch, BatchMatchesScalarForAllCoresCountsAndThreads)
{
    const IrProgram prog = irKernel(Kernel::Mult, 8);
    for (const LegacyCore core : allLegacyCores) {
        for (const std::size_t machines : {1u, 64u, 1000u}) {
            const auto inputs =
                fleetInputs(Kernel::Mult, 8, machines);
            const auto oracle = runEngine(core, prog, inputs,
                                          IssEngine::Scalar);
            EXPECT_GT(oracle.totalInstructions, 0u);
            for (const unsigned threads : {1u, 4u, 16u}) {
                const auto batch =
                    runEngine(core, prog, inputs,
                              IssEngine::Batch, threads);
                expectIdentical(oracle, batch);
            }
        }
    }
}

// ----------------------------------------------------------------
// Mid-batch halts: some machines halt, others exhaust the budget
// ----------------------------------------------------------------

TEST(IssBatch, MidBatchHaltAndBudgetMixAgrees)
{
    const IrProgram prog = irKernel(Kernel::Div, 8);
    const auto inputs = fleetInputs(Kernel::Div, 8, 64);
    for (const LegacyCore core : allLegacyCores) {
        // Full run first, to find a budget that splits the fleet.
        const auto full = runEngine(core, prog, inputs,
                                    IssEngine::Scalar);
        std::uint64_t lo = UINT64_MAX, hi = 0;
        for (const LegacyRun &r : full.runs) {
            lo = std::min(lo, r.instructions);
            hi = std::max(hi, r.instructions);
        }
        ASSERT_LT(lo, hi) << issCoreId(core);
        const std::uint64_t budget = (lo + hi) / 2;
        const auto scalar = runEngine(core, prog, inputs,
                                      IssEngine::Scalar, 1, budget);
        const auto batch = runEngine(core, prog, inputs,
                                     IssEngine::Batch, 4, budget);
        unsigned halted = 0, out = 0;
        for (const MachineStatus s : scalar.status) {
            halted += s == MachineStatus::Halted;
            out += s == MachineStatus::OutOfBudget;
        }
        EXPECT_GT(halted, 0u) << issCoreId(core);
        EXPECT_GT(out, 0u) << issCoreId(core);
        expectIdentical(scalar, batch);
    }
}

// ----------------------------------------------------------------
// Budget sweep across ZPU IM chains (and everyone else's decode)
// ----------------------------------------------------------------

TEST(IssBatch, TightBudgetSweepAgreesInstructionByInstruction)
{
    // Budgets 1..60 cross every instruction boundary of the early
    // program, including budgets that expire in the middle of a
    // ZPU IM immediate chain (the batch engine folds whole chains
    // only when they fit the remaining budget).
    const IrProgram prog = irKernel(Kernel::Mult, 8);
    const auto inputs = fleetInputs(Kernel::Mult, 8, 4);
    for (const LegacyCore core : allLegacyCores) {
        for (std::uint64_t budget = 1; budget <= 60; ++budget) {
            const auto scalar = runEngine(
                core, prog, inputs, IssEngine::Scalar, 1, budget);
            const auto batch = runEngine(
                core, prog, inputs, IssEngine::Batch, 1, budget);
            expectIdentical(scalar, batch);
        }
    }
}

// ----------------------------------------------------------------
// Input-dependent kill masks
// ----------------------------------------------------------------

TEST(IssBatch, InputDependentKillMaskAgrees)
{
    // A raw 8080 image whose store target page comes from machine
    // data: page 0x90 halts, page 0x20 traps on the MOV M,A.
    //
    //   0: LDA 9000h   A = data[0]
    //   3: MOV H,A
    //   4: MVI L, 0
    //   6: MOV M,A     writes (HL) - kills when H is not writable
    //   7: HLT
    const std::vector<std::uint8_t> image = {
        0x3A, 0x00, 0x90, // LDA 0x9000
        0x67,             // MOV H,A
        0x2E, 0x00,       // MVI L,0
        0x77,             // MOV M,A
        0x76,             // HLT
    };
    std::vector<std::vector<std::uint8_t>> pages;
    for (std::size_t m = 0; m < 70; ++m)
        pages.push_back({std::uint8_t(m % 3 ? 0x90 : 0x20)});

    const auto scalar = run8080Image(image, pages,
                                     I8080Timing::I8080,
                                     IssEngine::Scalar);
    const auto batch = run8080Image(image, pages,
                                    I8080Timing::I8080,
                                    IssEngine::Batch);
    ASSERT_EQ(scalar.size(), pages.size());
    ASSERT_EQ(batch.size(), pages.size());
    for (std::size_t m = 0; m < pages.size(); ++m) {
        const bool writable = m % 3 != 0;
        EXPECT_EQ(scalar[m].status, writable
                                        ? MachineStatus::Halted
                                        : MachineStatus::Killed)
            << "machine " << m;
        // The killing MOV M,A is not counted, like the oracle.
        EXPECT_EQ(scalar[m].instructions, writable ? 5u : 3u);
        EXPECT_EQ(batch[m].status, scalar[m].status);
        EXPECT_EQ(batch[m].instructions, scalar[m].instructions);
        EXPECT_EQ(batch[m].cycles, scalar[m].cycles);
    }
}

// ----------------------------------------------------------------
// MSP430 status-register audit: differential fuzz + regressions
// ----------------------------------------------------------------

void
expectRawIdentical(const Msp430RawRun &a, const Msp430RawRun &b,
                   const std::string &what)
{
    EXPECT_EQ(a.status, b.status) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.regs, b.regs) << what;
    EXPECT_EQ(a.ram, b.ram) << what;
}

TEST(IssBatch, Msp430DifferentialFuzzScalarVsBatch)
{
    std::mt19937 rng(0xC0FFEE);
    const auto word = [&] { return std::uint16_t(rng()); };
    for (unsigned iter = 0; iter < 400; ++iter) {
        Msp430RawState init;
        const unsigned words = 2 + rng() % 6;
        for (unsigned i = 0; i < words; ++i) {
            switch (rng() % 3) {
              case 0: // any encoding at all
                init.code.push_back(word());
                break;
              case 1: // format I with random modes and registers
                init.code.push_back(std::uint16_t(
                    ((4 + rng() % 12) << 12) | (word() & 0x0fff)));
                break;
              default: // jump with a small random offset
                init.code.push_back(std::uint16_t(
                    0x2000 | (word() & 0x1fff)));
                break;
            }
        }
        init.code.push_back(0xFFFF); // HALT backstop
        for (unsigned r = 1; r < 16; ++r)
            init.regs[r] = word();
        init.ram.resize(64);
        for (auto &b : init.ram)
            b = std::uint8_t(rng());

        const auto scalar =
            runMsp430Raw(init, IssEngine::Scalar, 200);
        const auto batch = runMsp430Raw(init, IssEngine::Batch, 200);
        expectRawIdentical(scalar, batch,
                           "fuzz iter " + std::to_string(iter));
    }
}

TEST(IssBatch, Msp430XorSetsOverflowWhenBothOperandsNegative)
{
    // SLAU049: XOR sets V when both operands are negative. With
    // R4 = R5 = 0x8000 the result is zero: Z set, C clear (C is
    // "result != 0" for XOR), N clear, V set.
    constexpr std::uint16_t flagC = 1 << 0, flagZ = 1 << 1,
                            flagN = 1 << 2, flagV = 1 << 8;
    Msp430RawState init;
    init.code = {0xD405, 0xFFFF}; // XOR R4, R5; HALT
    init.regs[4] = 0x8000;
    init.regs[5] = 0x8000;
    for (const IssEngine engine :
         {IssEngine::Scalar, IssEngine::Batch}) {
        const auto run = runMsp430Raw(init, engine);
        EXPECT_EQ(run.status, MachineStatus::Halted);
        EXPECT_EQ(run.regs[5], 0x0000);
        EXPECT_TRUE(run.regs[2] & flagV);
        EXPECT_TRUE(run.regs[2] & flagZ);
        EXPECT_FALSE(run.regs[2] & flagC);
        EXPECT_FALSE(run.regs[2] & flagN);
    }
}

TEST(IssBatch, Msp430ByteModeRrcRotatesLowByteOnly)
{
    // SLAU049: RRC.B rotates only the low byte. R5 = 0x01FF with C
    // clear must give 0x7F (bit 8 must NOT leak into bit 7) and
    // carry out the old bit 0.
    constexpr std::uint16_t flagC = 1 << 0;
    Msp430RawState init;
    init.code = {0x1045, 0xFFFF}; // RRC.B R5; HALT
    init.regs[5] = 0x01FF;
    for (const IssEngine engine :
         {IssEngine::Scalar, IssEngine::Batch}) {
        const auto run = runMsp430Raw(init, engine);
        EXPECT_EQ(run.status, MachineStatus::Halted);
        EXPECT_EQ(run.regs[5], 0x007F);
        EXPECT_TRUE(run.regs[2] & flagC);
    }
}

TEST(IssBatch, Msp430RrcAlwaysClearsOverflow)
{
    // SLAU049: RRC resets V unconditionally.
    constexpr std::uint16_t flagV = 1 << 8;
    Msp430RawState init;
    init.code = {0x1005, 0xFFFF}; // RRC R5; HALT
    init.regs[2] = flagV;
    init.regs[5] = 0x0002;
    for (const IssEngine engine :
         {IssEngine::Scalar, IssEngine::Batch}) {
        const auto run = runMsp430Raw(init, engine);
        EXPECT_EQ(run.status, MachineStatus::Halted);
        EXPECT_EQ(run.regs[5], 0x0001);
        EXPECT_FALSE(run.regs[2] & flagV);
    }
}

} // anonymous namespace
} // namespace printed
