/**
 * @file
 * Tests for the printed ML classifier subsystem: datasets, the
 * decision-tree and ternary-NN netlist generators, the comparator
 * primitive, and the evolutionary approximation search.
 *
 * The load-bearing properties:
 *   - the generated netlists are bit-exact implementations of the
 *     models' predict() (checked on both simulation engines),
 *   - pruning at full precision is a pure gate-count optimization
 *     (exhaustively checked on a small input space),
 *   - the search is bit-identical across thread counts and scoring
 *     engines, and the Pareto front is canonical.
 */

#include <gtest/gtest.h>

#include "analysis/characterize.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "ml/classifier.hh"
#include "ml/dataset.hh"
#include "ml/evolve.hh"
#include "sim/batch_simulator.hh"
#include "sim/simulator.hh"
#include "synth/blocks.hh"
#include "synth/opt.hh"
#include "tech/library.hh"

namespace printed::ml
{
namespace
{

/** Rebuild a feature bus by port name (survives net compaction). */
Bus
featureBus(const Netlist &nl, unsigned feature, unsigned bits)
{
    Bus bus;
    for (unsigned b = 0; b < bits; ++b)
        bus.push_back(nl.inputNet("f" + std::to_string(feature) +
                                  "[" + std::to_string(b) + "]"));
    return bus;
}

/** Scalar-sim prediction; asserts the class outputs are one-hot. */
unsigned
simPredict(const Netlist &nl, GateSimulator &sim,
           const std::vector<Bus> &features, unsigned classes,
           const std::uint16_t *row)
{
    for (unsigned f = 0; f < features.size(); ++f)
        sim.setBus(features[f], row[f]);
    sim.evaluate();
    unsigned predicted = classes;
    unsigned hot = 0;
    for (unsigned k = 0; k < classes; ++k)
        if (sim.value(nl.outputNet(classOutputName(k)))) {
            if (hot == 0)
                predicted = k;
            ++hot;
        }
    EXPECT_EQ(hot, 1u);
    return predicted;
}

/** Exhaustive/holdout hw-vs-sw equivalence on both engines. */
template <typename Model>
void
expectNetlistMatchesModel(const Model &model, const Netlist &nl,
                          const std::vector<const std::uint16_t *> &rows)
{
    std::vector<Bus> features;
    for (unsigned f = 0; f < model.features; ++f)
        features.push_back(featureBus(nl, f, model.bits));
    std::vector<NetId> outs;
    for (unsigned k = 0; k < model.classes; ++k)
        outs.push_back(nl.outputNet(classOutputName(k)));

    GateSimulator scalar(nl);
    for (const std::uint16_t *row : rows)
        EXPECT_EQ(simPredict(nl, scalar, features, model.classes,
                             row),
                  model.predict(row));

    BatchGateSimulator batch(nl);
    constexpr unsigned lanes = BatchGateSimulator::laneCount;
    for (std::size_t start = 0; start < rows.size();
         start += lanes) {
        const unsigned n =
            unsigned(std::min<std::size_t>(lanes,
                                           rows.size() - start));
        for (unsigned lane = 0; lane < n; ++lane)
            for (unsigned f = 0; f < model.features; ++f)
                batch.setBusLane(features[f], lane,
                                 rows[start + lane][f]);
        batch.evaluate();
        for (unsigned lane = 0; lane < n; ++lane) {
            unsigned predicted = model.classes;
            unsigned hot = 0;
            for (unsigned k = 0; k < model.classes; ++k)
                if (batch.value(outs[k], lane)) {
                    if (hot == 0)
                        predicted = k;
                    ++hot;
                }
            EXPECT_EQ(hot, 1u);
            EXPECT_EQ(predicted,
                      model.predict(rows[start + lane]));
        }
    }
}

std::vector<const std::uint16_t *>
holdoutRows(const Dataset &data)
{
    std::vector<const std::uint16_t *> rows;
    for (unsigned i = 0; i < data.spec.holdout; ++i)
        rows.push_back(data.holdRow(i));
    return rows;
}

/** Every (f0, f1) point of a 2-feature, `bits`-bit input space. */
std::vector<std::uint16_t>
exhaustiveRows(unsigned bits)
{
    const unsigned range = 1u << bits;
    std::vector<std::uint16_t> flat;
    flat.reserve(std::size_t(range) * range * 2);
    for (unsigned a = 0; a < range; ++a)
        for (unsigned b = 0; b < range; ++b) {
            flat.push_back(std::uint16_t(a));
            flat.push_back(std::uint16_t(b));
        }
    return flat;
}

std::vector<const std::uint16_t *>
rowPointers(const std::vector<std::uint16_t> &flat)
{
    std::vector<const std::uint16_t *> rows;
    for (std::size_t i = 0; i < flat.size(); i += 2)
        rows.push_back(flat.data() + i);
    return rows;
}

// ----------------------------------------------------------------
// Datasets
// ----------------------------------------------------------------

TEST(MlDataset, DeterministicAndInRange)
{
    DatasetSpec spec;
    const Dataset a = makeDataset(spec);
    const Dataset b = makeDataset(spec);
    EXPECT_EQ(a.trainX, b.trainX);
    EXPECT_EQ(a.holdX, b.holdX);
    EXPECT_EQ(a.trainY, b.trainY);
    EXPECT_EQ(a.holdY, b.holdY);
    for (std::uint16_t v : a.trainX)
        EXPECT_LT(v, 1u << spec.bits);
    for (std::uint8_t y : a.holdY)
        EXPECT_LT(y, spec.classes);
}

TEST(MlDataset, XorLabelsMatchTopBits)
{
    DatasetSpec spec;
    spec.kind = "xor";
    spec.classes = 2;
    const Dataset data = makeDataset(spec);
    for (unsigned i = 0; i < spec.train; ++i) {
        const std::uint16_t *row = data.trainRow(i);
        const unsigned msb = spec.bits - 1;
        EXPECT_EQ(data.trainY[i],
                  ((row[0] >> msb) ^ (row[1] >> msb)) & 1);
    }
}

TEST(MlDataset, SeedChangesData)
{
    DatasetSpec a, b;
    b.seed = 2;
    EXPECT_NE(makeDataset(a).trainX, makeDataset(b).trainX);
}

// ----------------------------------------------------------------
// Comparator primitive
// ----------------------------------------------------------------

TEST(MlClassifier, GeConstExhaustive)
{
    for (std::uint64_t c = 0; c < 16; ++c) {
        Netlist nl("ge");
        const Bus a = synth::busInputs(nl, "a", 4);
        nl.addOutput("ge", geConst(nl, a, c));
        nl.validate();
        GateSimulator sim(nl);
        for (std::uint64_t v = 0; v < 16; ++v) {
            sim.setBus(a, v);
            sim.evaluate();
            EXPECT_EQ(sim.value(nl.outputNet("ge")), v >= c)
                << "a=" << v << " c=" << c;
        }
    }
}

// ----------------------------------------------------------------
// Golden generator snapshots
// ----------------------------------------------------------------

TEST(MlClassifier, TreeGoldenSnapshot)
{
    const Dataset data = makeDataset(DatasetSpec{});
    const TreeModel model = trainTree(data, 4);
    Netlist nl = buildTreeNetlist(model);
    EXPECT_EQ(nl.gateCount(), 30u);
    synth::optimize(nl);
    const Characterization ch = characterize(nl, egfetLibrary());
    EXPECT_EQ(ch.gateCount(), 28u);
    EXPECT_NEAR(ch.areaCm2(), 0.09509, 1e-4);
    EXPECT_NEAR(ch.fmaxHz(), 63.5486, 1e-3);
    EXPECT_NEAR(ch.powerMw(), 0.674886, 1e-4);
    EXPECT_EQ(ch.stats.seqGates, 0u); // purely combinational
}

TEST(MlClassifier, TernaryGoldenSnapshot)
{
    const DatasetSpec spec;
    const TernaryModel model = seedTernary(spec, 4, 1);
    Netlist nl = buildTernaryNetlist(model);
    EXPECT_EQ(nl.gateCount(), 1431u);
    synth::optimize(nl);
    const Characterization ch = characterize(nl, egfetLibrary());
    EXPECT_EQ(ch.gateCount(), 524u);
    EXPECT_NEAR(ch.areaCm2(), 2.46566, 1e-3);
    EXPECT_EQ(ch.stats.seqGates, 0u);
}

// ----------------------------------------------------------------
// Netlist / software equivalence
// ----------------------------------------------------------------

TEST(MlClassifier, TreeNetlistMatchesSoftware)
{
    const Dataset data = makeDataset(DatasetSpec{});
    const TreeModel model = trainTree(data, 4);
    Netlist nl = buildTreeNetlist(model);
    synth::optimize(nl);
    expectNetlistMatchesModel(model, nl, holdoutRows(data));
}

TEST(MlClassifier, TernaryNetlistMatchesSoftware)
{
    const DatasetSpec spec;
    const Dataset data = makeDataset(spec);
    const TernaryModel model = seedTernary(spec, 4, 1);
    Netlist nl = buildTernaryNetlist(model);
    synth::optimize(nl);
    expectNetlistMatchesModel(model, nl, holdoutRows(data));
}

TEST(MlClassifier, TernaryNarrowAccumulatorStillMatches)
{
    // Narrowed accumulators wrap; the software model must model
    // exactly that wrap. Exhaustive over a 6-bit input space.
    DatasetSpec spec;
    spec.features = 2;
    spec.classes = 2;
    spec.bits = 3;
    const TernaryModel full = seedTernary(spec, 2, 7);
    TernaryModel narrow = full;
    for (TernaryLayer &layer : narrow.layers)
        layer.accBits = 3;
    Netlist nl = buildTernaryNetlist(narrow);
    synth::optimize(nl);
    const auto flat = exhaustiveRows(spec.bits);
    expectNetlistMatchesModel(narrow, nl, rowPointers(flat));
}

// ----------------------------------------------------------------
// Approximation regressions
// ----------------------------------------------------------------

TEST(MlClassifier, PruningPureSubtreeIsExactAtFullPrecision)
{
    // A split whose subtree is class-pure prunes to a leaf with no
    // behavioral change; only the gate count moves. Checked
    // exhaustively on the whole 2-feature 4-bit input space.
    TreeModel model;
    model.features = 2;
    model.classes = 2;
    model.bits = 4;
    model.nodes.resize(5);
    // node 0: root split on f0 >= 8
    model.nodes[0].feature = 0;
    model.nodes[0].threshold = 8;
    model.nodes[0].precision = 4;
    model.nodes[0].left = 1;
    model.nodes[0].right = 2;
    // node 1: pure subtree — both leaves class 0
    model.nodes[1].feature = 1;
    model.nodes[1].threshold = 4;
    model.nodes[1].precision = 4;
    model.nodes[1].majority = 0;
    model.nodes[1].left = 3;
    model.nodes[1].right = 4;
    model.nodes[2] = TreeNode{.leaf = true, .cls = 1};
    model.nodes[3] = TreeNode{.leaf = true, .cls = 0};
    model.nodes[4] = TreeNode{.leaf = true, .cls = 0};

    TreeModel pruned = model;
    pruned.nodes[1].leaf = true;
    pruned.nodes[1].cls = pruned.nodes[1].majority;

    Netlist fullNl = buildTreeNetlist(model);
    Netlist prunedNl = buildTreeNetlist(pruned);
    synth::optimize(fullNl);
    synth::optimize(prunedNl);
    EXPECT_LT(prunedNl.gateCount(), fullNl.gateCount());

    const auto flat = exhaustiveRows(model.bits);
    const auto rows = rowPointers(flat);
    for (const std::uint16_t *row : rows)
        EXPECT_EQ(model.predict(row), pruned.predict(row));
    expectNetlistMatchesModel(pruned, prunedNl, rows);
    // Different reachable shapes fingerprint differently...
    EXPECT_NE(model.fingerprint(), pruned.fingerprint());
    // ...but trimming unreachable node storage does not.
    TreeModel trimmed = pruned;
    trimmed.nodes.resize(3);
    EXPECT_EQ(trimmed.fingerprint(), pruned.fingerprint());
}

TEST(MlClassifier, PrecisionScalingDropsComparatorBits)
{
    // Lowering a node's precision compares only the top bits —
    // semantics match the shifted software compare exhaustively.
    DatasetSpec spec;
    spec.features = 2;
    spec.classes = 2;
    spec.bits = 4;
    spec.kind = "xor";
    const Dataset data = makeDataset(spec);
    TreeModel model = trainTree(data, 3);
    for (TreeNode &nd : model.nodes)
        if (!nd.leaf)
            nd.precision = 2;
    Netlist nl = buildTreeNetlist(model);
    synth::optimize(nl);
    const auto flat = exhaustiveRows(spec.bits);
    expectNetlistMatchesModel(model, nl, rowPointers(flat));
}

// ----------------------------------------------------------------
// Evolutionary search
// ----------------------------------------------------------------

ClassifySpec
quickTreeSpec()
{
    ClassifySpec spec;
    spec.dataset.train = 96;
    spec.dataset.holdout = 64;
    spec.search.generations = 3;
    spec.search.population = 6;
    return spec;
}

TEST(MlEvolve, DeterministicAcrossThreadCounts)
{
    const ClassifySpec spec = quickTreeSpec();
    ThreadPool p1(1), p4(4), p16(16);
    const ClassifyResult r1 = runClassify(spec, p1);
    const ClassifyResult r4 = runClassify(spec, p4);
    const ClassifyResult r16 = runClassify(spec, p16);
    EXPECT_EQ(r1, r4);
    EXPECT_EQ(r1, r16);
    EXPECT_EQ(r1.generations.size(), spec.search.generations);
    EXPECT_FALSE(r1.front.empty());
}

TEST(MlEvolve, BatchAndScalarEnginesAgree)
{
    ClassifySpec spec = quickTreeSpec();
    ThreadPool pool(4);
    const ClassifyResult batch = runClassify(spec, pool);
    spec.search.engine = ScoreEngine::Scalar;
    const ClassifyResult scalar = runClassify(spec, pool);
    EXPECT_EQ(batch, scalar);
}

TEST(MlEvolve, FrontIsCanonicalAndNonDominated)
{
    ThreadPool pool(4);
    const ClassifyResult r = runClassify(quickTreeSpec(), pool);
    for (std::size_t i = 0; i < r.front.size(); ++i) {
        EXPECT_TRUE(r.front[i].feasible);
        EXPECT_GT(r.front[i].gates, 0u);
        for (std::size_t j = 0; j < r.front.size(); ++j)
            if (i != j)
                EXPECT_FALSE(r.front[j].accuracy >=
                                 r.front[i].accuracy &&
                             r.front[j].gates <= r.front[i].gates)
                    << "entry " << j << " dominates " << i;
    }
    // Non-dominated + gates-ascending forces accuracy-ascending.
    for (std::size_t i = 1; i < r.front.size(); ++i) {
        EXPECT_LT(r.front[i - 1].gates, r.front[i].gates);
        EXPECT_LT(r.front[i - 1].accuracy, r.front[i].accuracy);
    }
}

TEST(MlEvolve, TernarySearchImprovesOnRandomSeed)
{
    ClassifySpec spec;
    spec.model = ModelKind::Ternary;
    spec.hidden = 0;
    spec.dataset.holdout = 64;
    spec.search.generations = 4;
    spec.search.population = 8;
    ThreadPool pool(4);
    const ClassifyResult r = runClassify(spec, pool);
    ASSERT_FALSE(r.front.empty());
    double best = 0;
    for (const CandidateReport &c : r.front)
        best = std::max(best, c.accuracy);
    EXPECT_GE(best, r.baseline.accuracy);
}

TEST(MlEvolve, BudgetGatesFeasibility)
{
    // An absurdly small area budget empties the front.
    ClassifySpec spec = quickTreeSpec();
    spec.budget.maxAreaCm2 = 1e-9;
    ThreadPool pool(1);
    const ClassifyResult r = runClassify(spec, pool);
    EXPECT_TRUE(r.front.empty());
    EXPECT_FALSE(r.baseline.feasible);

    // Every printed battery powers a ~30-gate tree comfortably.
    ClassifySpec powered = quickTreeSpec();
    powered.budget.battery = "Blue Spark 10mAh";
    const ClassifyResult ok = runClassify(powered, pool);
    EXPECT_FALSE(ok.front.empty());
}

TEST(MlEvolve, CachedRunReplaysCallbackAndCountsHits)
{
    classifyCacheClear();
    const ClassifySpec spec = quickTreeSpec();
    ThreadPool pool(4);
    const std::uint64_t hits0 =
        metrics::counter("ml.cache_hits").value();
    const std::uint64_t miss0 =
        metrics::counter("ml.cache_misses").value();

    std::vector<GenerationReport> first, second;
    const auto a = runClassifyCached(
        spec, pool,
        [&](const GenerationReport &g) { first.push_back(g); });
    const auto b = runClassifyCached(
        spec, pool,
        [&](const GenerationReport &g) { second.push_back(g); });

    EXPECT_EQ(a.get(), b.get()); // the literal cached object
    EXPECT_EQ(first, second);    // replayed frames are identical
    EXPECT_EQ(first.size(), spec.search.generations);
    EXPECT_EQ(metrics::counter("ml.cache_hits").value(), hits0 + 1);
    EXPECT_EQ(metrics::counter("ml.cache_misses").value(),
              miss0 + 1);
    classifyCacheClear();
}

TEST(MlEvolve, SpecKeySeparatesConfigs)
{
    ClassifySpec a = quickTreeSpec();
    ClassifySpec b = a;
    EXPECT_EQ(classifySpecKey(a), classifySpecKey(b));
    b.search.seed = 99;
    EXPECT_NE(classifySpecKey(a), classifySpecKey(b));
    b = a;
    b.search.engine = ScoreEngine::Scalar;
    EXPECT_NE(classifySpecKey(a), classifySpecKey(b));
    b = a;
    b.model = ModelKind::Ternary;
    EXPECT_NE(classifySpecKey(a), classifySpecKey(b));
}

TEST(MlEvolve, NameRoundTrips)
{
    EXPECT_EQ(modelKindFromName("tree"), ModelKind::Tree);
    EXPECT_EQ(modelKindFromName("ternary"), ModelKind::Ternary);
    EXPECT_EQ(modelKindFromName("mlp"), std::nullopt);
    EXPECT_STREQ(modelKindName(ModelKind::Tree), "tree");
    EXPECT_EQ(scoreEngineFromName("batch"), ScoreEngine::Batch);
    EXPECT_EQ(scoreEngineFromName("scalar"), ScoreEngine::Scalar);
    EXPECT_EQ(scoreEngineFromName("hdl"), std::nullopt);
    EXPECT_STREQ(scoreEngineName(ScoreEngine::Scalar), "scalar");
}

} // anonymous namespace
} // namespace printed::ml
