/**
 * @file
 * Tests for the structural Verilog exporter: exported netlists are
 * complete (every cell instanced, every port declared), reference
 * only declared identifiers, and include the library models.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/generator.hh"
#include "netlist/verilog.hh"
#include "synth/blocks.hh"

namespace printed
{
namespace
{

using namespace synth;

std::string
exportOf(const Netlist &nl, bool models = true)
{
    std::ostringstream os;
    writeVerilog(os, nl, models);
    return os.str();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t count = 0, pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

TEST(Verilog, SimpleGateModule)
{
    Netlist nl("tiny");
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    nl.addOutput("y", nl.addGate(CellKind::NAND2X1, a, b));

    const std::string v = exportOf(nl);
    EXPECT_NE(v.find("module tiny"), std::string::npos);
    EXPECT_NE(v.find("NAND2X1 u0"), std::string::npos);
    EXPECT_NE(v.find("input \\a"), std::string::npos);
    EXPECT_NE(v.find("output \\y"), std::string::npos);
    EXPECT_NE(v.find("module NAND2X1"), std::string::npos);
}

TEST(Verilog, ModelsCanBeOmitted)
{
    Netlist nl("t");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, nl.addInput("a")));
    const std::string v = exportOf(nl, false);
    EXPECT_EQ(v.find("module INVX1"), std::string::npos);
    EXPECT_NE(v.find("INVX1 u0"), std::string::npos);
}

TEST(Verilog, SequentialModuleGetsClock)
{
    Netlist nl("seq");
    const NetId d = nl.addInput("d");
    const NetId rn = nl.addInput("rn");
    nl.addOutput("q", nl.addFlopReset(d, rn));
    const std::string v = exportOf(nl);
    EXPECT_NE(v.find("input clk"), std::string::npos);
    EXPECT_NE(v.find(".CK(clk)"), std::string::npos);
    EXPECT_NE(v.find("DFFNRX1 u0"), std::string::npos);
}

TEST(Verilog, AdderExportsAllCells)
{
    Netlist nl("adder4");
    const Bus a = busInputs(nl, "a", 4);
    const Bus b = busInputs(nl, "b", 4);
    const AddResult r = rippleAdder(nl, a, b, nl.constZero());
    busOutputs(nl, "s", r.sum);

    const std::string v = exportOf(nl, false);
    // "AND2X1 u" is a substring of "NAND2X1 u", so count the
    // common instance suffix once.
    EXPECT_EQ(countOccurrences(v, "X1 u"), nl.gateCount());
}

TEST(Verilog, FullCoreExports)
{
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist nl = buildCore(cfg);
    const std::string v = exportOf(nl);

    EXPECT_NE(v.find("module p1_8_2"), std::string::npos);
    // Tri-state result bus present.
    EXPECT_NE(v.find("TSBUFX1"), std::string::npos);
    // Every gate instanced.
    EXPECT_EQ(countOccurrences(v, "X1 u"), nl.gateCount());
    // All ports present.
    EXPECT_NE(v.find("\\instr[23]"), std::string::npos);
    EXPECT_NE(v.find("\\wdata[7]"), std::string::npos);
    EXPECT_NE(v.find("\\wen"), std::string::npos);
}

} // anonymous namespace
} // namespace printed
