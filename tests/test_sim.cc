/**
 * @file
 * Unit tests for the levelized gate-level simulator, including
 * parameterized truth-table sweeps for every combinational cell.
 */

#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "netlist/netlist.hh"
#include "sim/batch_simulator.hh"
#include "sim/simulator.hh"

namespace printed
{
namespace
{

// ----------------------------------------------------------------
// Truth tables for every 2-input combinational cell
// ----------------------------------------------------------------

struct TruthCase
{
    CellKind kind;
    // expected output for inputs (a,b) = 00, 01, 10, 11 where the
    // first bit listed is a.
    std::array<bool, 4> expected;
};

class CellTruthTest : public ::testing::TestWithParam<TruthCase>
{};

TEST_P(CellTruthTest, MatchesTruthTable)
{
    const TruthCase &tc = GetParam();
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    nl.addOutput("y", nl.addGate(tc.kind, a, b));
    GateSimulator sim(nl);

    int idx = 0;
    for (bool av : {false, true}) {
        for (bool bv : {false, true}) {
            sim.setInput(a, av);
            sim.setInput(b, bv);
            sim.evaluate();
            EXPECT_EQ(sim.output("y"), tc.expected[idx])
                << cellName(tc.kind) << " a=" << av << " b=" << bv;
            ++idx;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTwoInputCells, CellTruthTest,
    ::testing::Values(
        TruthCase{CellKind::NAND2X1, {true, true, true, false}},
        TruthCase{CellKind::NOR2X1, {true, false, false, false}},
        TruthCase{CellKind::AND2X1, {false, false, false, true}},
        TruthCase{CellKind::OR2X1, {false, true, true, true}},
        TruthCase{CellKind::XOR2X1, {false, true, true, false}},
        TruthCase{CellKind::XNOR2X1, {true, false, false, true}}),
    [](const auto &info) { return cellName(info.param.kind); });

TEST(GateSimulator, Inverter)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));
    GateSimulator sim(nl);
    sim.setInput(a, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("y"));
    sim.setInput(a, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("y"));
}

TEST(GateSimulator, Constants)
{
    Netlist nl;
    const NetId one = nl.constOne();
    const NetId zero = nl.constZero();
    nl.addOutput("or", nl.addGate(CellKind::OR2X1, one, zero));
    nl.addOutput("and", nl.addGate(CellKind::AND2X1, one, zero));
    GateSimulator sim(nl);
    sim.evaluate();
    EXPECT_TRUE(sim.output("or"));
    EXPECT_FALSE(sim.output("and"));
}

// ----------------------------------------------------------------
// Sequential behavior
// ----------------------------------------------------------------

TEST(GateSimulator, DffDelaysOneCycle)
{
    Netlist nl;
    const NetId d = nl.addInput("d");
    nl.addOutput("q", nl.addFlop(d));
    GateSimulator sim(nl);

    sim.setInput(d, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("q")); // not clocked yet
    sim.step();
    sim.evaluate();
    EXPECT_TRUE(sim.output("q"));

    sim.setInput(d, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("q"));
    sim.step();
    sim.evaluate();
    EXPECT_FALSE(sim.output("q"));
}

TEST(GateSimulator, DffnrAsyncClear)
{
    Netlist nl;
    const NetId d = nl.addInput("d");
    const NetId rn = nl.addInput("rn");
    nl.addOutput("q", nl.addFlopReset(d, rn));
    GateSimulator sim(nl);

    sim.setInput(d, true);
    sim.setInput(rn, true);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));

    // Async clear: q drops during evaluate, without a clock edge.
    sim.setInput(rn, false);
    sim.evaluate();
    EXPECT_FALSE(sim.output("q"));

    // Held in reset across edges.
    sim.step();
    sim.evaluate();
    EXPECT_FALSE(sim.output("q"));

    sim.setInput(rn, true);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));
}

TEST(GateSimulator, SrLatch)
{
    Netlist nl;
    const NetId s = nl.addInput("s");
    const NetId r = nl.addInput("r");
    nl.addOutput("q", nl.addGate(CellKind::LATCHX1, s, r));
    GateSimulator sim(nl);

    sim.setInput(s, true);
    sim.setInput(r, false);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));

    sim.setInput(s, false);
    sim.cycle();
    EXPECT_TRUE(sim.output("q")); // holds

    sim.setInput(r, true);
    sim.cycle();
    EXPECT_FALSE(sim.output("q"));

    sim.setInput(s, true);
    sim.evaluate();
    EXPECT_THROW(sim.step(), SimulationError); // S = R = 1 illegal
}

TEST(GateSimulator, CounterCountsToEight)
{
    // 3-bit ripple-ish counter built by hand: q <= q + 1 using XOR
    // carry chain; checks multi-flop feedback through makeFeedback.
    Netlist nl;
    Bus q_fb = {nl.makeFeedback(), nl.makeFeedback(),
                nl.makeFeedback()};
    const NetId c0 = nl.constOne();
    const NetId s0 = nl.addGate(CellKind::XOR2X1, q_fb[0], c0);
    const NetId c1 = nl.addGate(CellKind::AND2X1, q_fb[0], c0);
    const NetId s1 = nl.addGate(CellKind::XOR2X1, q_fb[1], c1);
    const NetId c2 = nl.addGate(CellKind::AND2X1, q_fb[1], c1);
    const NetId s2 = nl.addGate(CellKind::XOR2X1, q_fb[2], c2);
    Bus q = {nl.addFlop(s0), nl.addFlop(s1), nl.addFlop(s2)};
    for (int i = 0; i < 3; ++i)
        nl.resolveFeedback(q_fb[i], q[i]);
    nl.addOutput("q0", q[0]);
    nl.addOutput("q1", q[1]);
    nl.addOutput("q2", q[2]);

    GateSimulator sim(nl);
    for (unsigned i = 0; i < 16; ++i) {
        sim.evaluate();
        EXPECT_EQ(sim.readBus(q), i % 8) << "cycle " << i;
        sim.step();
    }
}

// ----------------------------------------------------------------
// Tri-state buses
// ----------------------------------------------------------------

TEST(GateSimulator, TristateBusSelects)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId sel = nl.addInput("sel");
    const NetId nsel = nl.addGate(CellKind::INVX1, sel);
    const NetId bus = nl.addNet("bus");
    nl.addTristate(a, nsel, bus);
    nl.addTristate(b, sel, bus);
    nl.addOutput("bus", bus);
    GateSimulator sim(nl);

    sim.setInput(a, true);
    sim.setInput(b, false);
    sim.setInput(sel, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("bus"));
    sim.setInput(sel, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("bus"));
}

TEST(GateSimulator, TristateConflictThrows)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId en = nl.constOne();
    const NetId bus = nl.addNet("bus");
    nl.addTristate(a, en, bus);
    nl.addTristate(b, en, bus);
    nl.addOutput("bus", bus);
    GateSimulator sim(nl);
    sim.setInput(a, true);
    sim.setInput(b, false);
    EXPECT_THROW(sim.evaluate(), SimulationError);
}

// ----------------------------------------------------------------
// Activity accounting
// ----------------------------------------------------------------

TEST(GateSimulator, TogglesCounted)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));
    GateSimulator sim(nl);

    // After reset all nets are 0; first evaluate raises y -> toggle.
    sim.evaluate();
    EXPECT_EQ(sim.totalToggles(), 1u);
    sim.setInput(a, true);
    sim.evaluate();
    EXPECT_EQ(sim.totalToggles(), 2u);
    sim.setInput(a, true); // no change
    sim.evaluate();
    EXPECT_EQ(sim.totalToggles(), 2u);
}

TEST(GateSimulator, ActivityFactorOfToggleFlop)
{
    // q <= !q toggles every cycle: activity factor ~2 toggles per
    // cycle over 2 gates (INV + DFF both toggle every cycle) = 1.0.
    Netlist nl;
    const NetId fb = nl.makeFeedback();
    const NetId next = nl.addGate(CellKind::INVX1, fb);
    const NetId q = nl.addFlop(next);
    nl.resolveFeedback(fb, q);
    nl.addOutput("q", q);

    GateSimulator sim(nl);
    for (int i = 0; i < 100; ++i)
        sim.cycle();
    EXPECT_NEAR(sim.activityFactor(), 1.0, 0.05);
}

// ----------------------------------------------------------------
// Illegal electrical states raise catchable SimulationError
// ----------------------------------------------------------------

TEST(GateSimulator, BusContentionThrowsSimulationError)
{
    // Two enabled tri-state buffers driving opposite values. The
    // fault-injection Monte Carlo must survive this, so it is a
    // catchable SimulationError naming the gate and net, not a
    // process-level panic.
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId en = nl.addInput("en");
    const NetId bus = nl.addNet("shared_bus");
    nl.addTristate(a, en, bus);
    nl.addTristate(b, en, bus);
    nl.addOutput("y", bus);

    GateSimulator sim(nl);
    sim.setInput(a, true);
    sim.setInput(b, false);
    sim.setInput(en, true);
    try {
        sim.evaluate();
        FAIL() << "expected SimulationError";
    } catch (const SimulationError &e) {
        EXPECT_NE(std::string(e.what()).find("conflict"),
                  std::string::npos);
        EXPECT_NE(e.cell().find("TSBUFX1"), std::string::npos);
        EXPECT_NE(e.net().find("shared_bus"), std::string::npos);
    }

    // Non-conflicting drive works again afterwards.
    sim.setInput(b, true);
    sim.evaluate();
    EXPECT_TRUE(sim.output("y"));
}

TEST(GateSimulator, LatchSetResetThrowsSimulationError)
{
    Netlist nl;
    const NetId s = nl.addInput("s");
    const NetId r = nl.addInput("r");
    const NetId q = nl.addGate(CellKind::LATCHX1, s, r);
    nl.addOutput("q", q);

    GateSimulator sim(nl);
    sim.setInput(s, true);
    sim.setInput(r, false);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));

    sim.setInput(r, true); // S=R=1 is electrically illegal
    sim.evaluate();
    try {
        sim.step();
        FAIL() << "expected SimulationError";
    } catch (const SimulationError &e) {
        EXPECT_NE(std::string(e.what()).find("S=R=1"),
                  std::string::npos);
        EXPECT_NE(e.cell().find("LATCHX1"), std::string::npos);
        EXPECT_FALSE(e.net().empty());
    }

    // The latch holds state and keeps working after the error.
    sim.setInput(s, false);
    sim.cycle();
    EXPECT_FALSE(sim.output("q"));
}

// ----------------------------------------------------------------
// 64-lane bit-parallel simulator
// ----------------------------------------------------------------

constexpr unsigned kLanes = BatchGateSimulator::laneCount;

TEST(BatchGateSimulator, LanesEvaluateIndependently)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));
    BatchGateSimulator sim(nl);

    const std::uint64_t pattern = 0xdeadbeefcafef00dULL;
    sim.setInput(a, pattern);
    sim.evaluate();
    EXPECT_EQ(sim.outputWord("y"), ~pattern);
    for (unsigned lane = 0; lane < kLanes; ++lane)
        EXPECT_EQ(sim.value(a, lane), bool((pattern >> lane) & 1));
}

TEST(BatchGateSimulator, BusLaneRoundTrip)
{
    Netlist nl;
    Bus in;
    for (int i = 0; i < 8; ++i)
        in.push_back(nl.addInput("i" + std::to_string(i)));
    nl.addOutput("msb", in.back());
    BatchGateSimulator sim(nl);

    for (unsigned lane = 0; lane < kLanes; ++lane)
        sim.setBusLane(in, lane, (0x37 + lane) & 0xff);
    for (unsigned lane = 0; lane < kLanes; ++lane)
        EXPECT_EQ(sim.readBusLane(in, lane), (0x37 + lane) & 0xff);

    sim.setBusAll(in, 0x5a);
    for (unsigned lane = 0; lane < kLanes; ++lane)
        EXPECT_EQ(sim.readBusLane(in, lane), 0x5au);
}

TEST(BatchGateSimulator, BusConflictKillsOnlyConflictingLanes)
{
    // Two always-enabled tri-state drivers: lanes where a != b are
    // electrically broken and must be killed; the rest continue.
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId en = nl.constOne();
    const NetId bus = nl.addNet("bus");
    nl.addTristate(a, en, bus);
    nl.addTristate(b, en, bus);
    nl.addOutput("y", bus);
    BatchGateSimulator sim(nl);

    const std::uint64_t av = 0xff00ff00ff00ff00ULL;
    const std::uint64_t bv = 0xf0f0f0f0f0f0f0f0ULL;
    sim.setInput(a, av);
    sim.setInput(b, bv);
    sim.evaluate();

    const LaneMask conflict = av ^ bv;
    EXPECT_EQ(sim.killedLanes(), conflict);
    EXPECT_EQ(sim.observedLanes(), ~conflict);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        if ((conflict >> lane) & 1) {
            EXPECT_EQ(sim.killReason(lane),
                      BatchGateSimulator::KillReason::BusConflict);
        } else {
            EXPECT_EQ(sim.killReason(lane),
                      BatchGateSimulator::KillReason::None);
            EXPECT_EQ(sim.value(bus, lane),
                      bool((av >> lane) & 1));
        }
    }
}

TEST(BatchGateSimulator, LatchSetResetKillsOnlyIllegalLanes)
{
    Netlist nl;
    const NetId s = nl.addInput("s");
    const NetId r = nl.addInput("r");
    nl.addOutput("q", nl.addGate(CellKind::LATCHX1, s, r));
    BatchGateSimulator sim(nl);

    const std::uint64_t sv = 0xaaaaaaaaaaaaaaaaULL;
    const std::uint64_t rv = 0xccccccccccccccccULL;
    sim.setInput(s, sv);
    sim.setInput(r, rv);
    sim.cycle();

    const LaneMask illegal = sv & rv;
    EXPECT_EQ(sim.killedLanes(), illegal);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
        if ((illegal >> lane) & 1)
            EXPECT_EQ(sim.killReason(lane),
                      BatchGateSimulator::KillReason::LatchSetReset);
        else
            EXPECT_EQ(sim.outputWord("q") >> lane & 1,
                      (sv >> lane) & 1);
    }
}

TEST(BatchGateSimulator, RetiredLanesStopCounting)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId y = nl.addGate(CellKind::INVX1, a);
    nl.addOutput("y", y);
    BatchGateSimulator sim(nl);

    const std::vector<InjectedFault> stuck1 = {
        {0, FaultKind::StuckAt1, invalidNet}};
    sim.setLaneFaults(0, stuck1);
    sim.setLaneFaults(1, stuck1);
    sim.retireLanes(LaneMask(1) << 0);

    sim.setInputAll(a, true); // fault-free y = 0, forced to 1
    sim.evaluate();
    EXPECT_EQ(sim.faultActivations(0), 0u) << "retired lane counted";
    EXPECT_EQ(sim.faultActivations(1), 1u);
    // The forced value itself flows in every lane (garbage in
    // retired lanes is tolerated, not masked out of the data path).
    EXPECT_EQ(sim.outputWord("y") & 3, 3u);
}

// ----------------------------------------------------------------
// Batch vs scalar equivalence fuzz
// ----------------------------------------------------------------

struct FuzzCircuit
{
    Netlist nl;
    std::vector<NetId> inputs;
    std::vector<NetId> nets;
};

/**
 * Random feed-forward netlist over every combinational kind, plus
 * (per round) sequential cells and tri-state bus pairs whose random
 * enables can legitimately conflict.
 */
FuzzCircuit
makeFuzzCircuit(Rng &rng, bool tristate, bool seq)
{
    FuzzCircuit c;
    const unsigned nIn = 3 + unsigned(rng.below(3));
    for (unsigned i = 0; i < nIn; ++i)
        c.inputs.push_back(c.nl.addInput("in" + std::to_string(i)));
    c.nets = c.inputs;
    c.nets.push_back(c.nl.constOne());
    c.nets.push_back(c.nl.constZero());
    auto pick = [&] { return c.nets[rng.below(c.nets.size())]; };

    static constexpr CellKind comb[] = {
        CellKind::INVX1,  CellKind::NAND2X1, CellKind::NOR2X1,
        CellKind::AND2X1, CellKind::OR2X1,   CellKind::XOR2X1,
        CellKind::XNOR2X1};
    const unsigned nGates = 24 + unsigned(rng.below(24));
    for (unsigned i = 0; i < nGates; ++i) {
        const std::uint64_t roll = rng.below(12);
        if (seq && roll == 0) {
            c.nets.push_back(c.nl.addFlop(pick()));
        } else if (seq && roll == 1) {
            c.nets.push_back(c.nl.addFlopReset(pick(), pick()));
        } else if (seq && roll == 2) {
            c.nets.push_back(
                c.nl.addGate(CellKind::LATCHX1, pick(), pick()));
        } else if (tristate && roll == 3) {
            const NetId bus = c.nl.addNet();
            c.nl.addTristate(pick(), pick(), bus);
            c.nl.addTristate(pick(), pick(), bus);
            c.nets.push_back(bus);
        } else {
            const CellKind k = comb[rng.below(7)];
            c.nets.push_back(
                k == CellKind::INVX1
                    ? c.nl.addGate(k, pick())
                    : c.nl.addGate(k, pick(), pick()));
        }
    }
    c.nl.addOutput("y", c.nets.back());
    return c;
}

/** Random defect map in the same shape drawDefects() produces. */
std::vector<InjectedFault>
makeFuzzFaults(Rng &rng, const Netlist &nl)
{
    std::vector<InjectedFault> faults;
    const unsigned n = unsigned(rng.below(4)); // 0..3 defects
    for (unsigned i = 0; i < n; ++i) {
        const GateId gi = GateId(rng.below(nl.gateCount()));
        const Gate &g = nl.gate(gi);
        InjectedFault f;
        f.gate = gi;
        const std::uint64_t kind = rng.below(3);
        if (kind == 2) {
            f.kind = FaultKind::BridgeInput;
            f.bridge = (g.in1 != invalidNet && rng.flip()) ? g.in1
                                                           : g.in0;
        } else {
            f.kind = kind ? FaultKind::StuckAt1
                          : FaultKind::StuckAt0;
        }
        faults.push_back(f);
    }
    return faults;
}

TEST(BatchScalarEquivalence, RandomNetlistAndFaultFuzz)
{
    // For every lane L the batch engine must reproduce exactly what
    // a scalar simulator computes from lane L's inputs and lane L's
    // fault overlay: per-net values each cycle, fault activations,
    // and a kill in the same cycle the scalar engine throws. Batch
    // per-gate toggles are aggregated popcounts, so they must equal
    // the sum of the scalar per-lane counts (counting stops at the
    // kill/throw point in both engines, so this holds even when
    // lanes die).
    for (unsigned round = 0; round < 8; ++round) {
        Rng rng(0x5eed0000 + round);
        const bool tristate = round & 1;
        const bool seq = round & 2;
        FuzzCircuit c = makeFuzzCircuit(rng, tristate, seq);

        BatchGateSimulator batch(c.nl);
        std::deque<GateSimulator> scalars;
        std::array<std::vector<InjectedFault>, kLanes> lfaults;
        for (unsigned lane = 0; lane < kLanes; ++lane) {
            lfaults[lane] = makeFuzzFaults(rng, c.nl);
            scalars.emplace_back(c.nl);
            scalars.back().setFaults(lfaults[lane]);
            batch.setLaneFaults(lane, lfaults[lane]);
        }

        std::array<bool, kLanes> dead{};
        for (unsigned cy = 0; cy < 12; ++cy) {
            for (NetId in : c.inputs) {
                const std::uint64_t w = rng.next();
                batch.setInput(in, w);
                for (unsigned lane = 0; lane < kLanes; ++lane)
                    if (!dead[lane])
                        scalars[lane].setInput(in,
                                               (w >> lane) & 1);
            }
            const LaneMask before = batch.killedLanes();
            batch.cycle();
            const LaneMask newly = batch.killedLanes() & ~before;
            for (unsigned lane = 0; lane < kLanes; ++lane) {
                if (dead[lane])
                    continue;
                bool threw = false;
                try {
                    scalars[lane].cycle();
                } catch (const SimulationError &) {
                    threw = true;
                }
                ASSERT_EQ(bool((newly >> lane) & 1), threw)
                    << "round " << round << " lane " << lane
                    << " cycle " << cy;
                if (threw) {
                    dead[lane] = true;
                    continue;
                }
                for (NetId n = 0; n < c.nl.netCount(); ++n)
                    ASSERT_EQ(batch.value(n, lane),
                              scalars[lane].value(n))
                        << "round " << round << " lane " << lane
                        << " cycle " << cy << " net " << n;
            }
        }

        for (unsigned lane = 0; lane < kLanes; ++lane)
            EXPECT_EQ(batch.faultActivations(lane),
                      scalars[lane].faultActivations())
                << "round " << round << " lane " << lane;
        for (GateId g = 0; g < c.nl.gateCount(); ++g) {
            std::uint64_t sum = 0;
            for (unsigned lane = 0; lane < kLanes; ++lane)
                sum += scalars[lane].toggles(g);
            EXPECT_EQ(batch.toggles(g), sum)
                << "round " << round << " gate " << g;
        }
    }
}

} // anonymous namespace
} // namespace printed
