/**
 * @file
 * Unit tests for the levelized gate-level simulator, including
 * parameterized truth-table sweeps for every combinational cell.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "netlist/netlist.hh"
#include "sim/simulator.hh"

namespace printed
{
namespace
{

// ----------------------------------------------------------------
// Truth tables for every 2-input combinational cell
// ----------------------------------------------------------------

struct TruthCase
{
    CellKind kind;
    // expected output for inputs (a,b) = 00, 01, 10, 11 where the
    // first bit listed is a.
    std::array<bool, 4> expected;
};

class CellTruthTest : public ::testing::TestWithParam<TruthCase>
{};

TEST_P(CellTruthTest, MatchesTruthTable)
{
    const TruthCase &tc = GetParam();
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    nl.addOutput("y", nl.addGate(tc.kind, a, b));
    GateSimulator sim(nl);

    int idx = 0;
    for (bool av : {false, true}) {
        for (bool bv : {false, true}) {
            sim.setInput(a, av);
            sim.setInput(b, bv);
            sim.evaluate();
            EXPECT_EQ(sim.output("y"), tc.expected[idx])
                << cellName(tc.kind) << " a=" << av << " b=" << bv;
            ++idx;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTwoInputCells, CellTruthTest,
    ::testing::Values(
        TruthCase{CellKind::NAND2X1, {true, true, true, false}},
        TruthCase{CellKind::NOR2X1, {true, false, false, false}},
        TruthCase{CellKind::AND2X1, {false, false, false, true}},
        TruthCase{CellKind::OR2X1, {false, true, true, true}},
        TruthCase{CellKind::XOR2X1, {false, true, true, false}},
        TruthCase{CellKind::XNOR2X1, {true, false, false, true}}),
    [](const auto &info) { return cellName(info.param.kind); });

TEST(GateSimulator, Inverter)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));
    GateSimulator sim(nl);
    sim.setInput(a, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("y"));
    sim.setInput(a, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("y"));
}

TEST(GateSimulator, Constants)
{
    Netlist nl;
    const NetId one = nl.constOne();
    const NetId zero = nl.constZero();
    nl.addOutput("or", nl.addGate(CellKind::OR2X1, one, zero));
    nl.addOutput("and", nl.addGate(CellKind::AND2X1, one, zero));
    GateSimulator sim(nl);
    sim.evaluate();
    EXPECT_TRUE(sim.output("or"));
    EXPECT_FALSE(sim.output("and"));
}

// ----------------------------------------------------------------
// Sequential behavior
// ----------------------------------------------------------------

TEST(GateSimulator, DffDelaysOneCycle)
{
    Netlist nl;
    const NetId d = nl.addInput("d");
    nl.addOutput("q", nl.addFlop(d));
    GateSimulator sim(nl);

    sim.setInput(d, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("q")); // not clocked yet
    sim.step();
    sim.evaluate();
    EXPECT_TRUE(sim.output("q"));

    sim.setInput(d, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("q"));
    sim.step();
    sim.evaluate();
    EXPECT_FALSE(sim.output("q"));
}

TEST(GateSimulator, DffnrAsyncClear)
{
    Netlist nl;
    const NetId d = nl.addInput("d");
    const NetId rn = nl.addInput("rn");
    nl.addOutput("q", nl.addFlopReset(d, rn));
    GateSimulator sim(nl);

    sim.setInput(d, true);
    sim.setInput(rn, true);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));

    // Async clear: q drops during evaluate, without a clock edge.
    sim.setInput(rn, false);
    sim.evaluate();
    EXPECT_FALSE(sim.output("q"));

    // Held in reset across edges.
    sim.step();
    sim.evaluate();
    EXPECT_FALSE(sim.output("q"));

    sim.setInput(rn, true);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));
}

TEST(GateSimulator, SrLatch)
{
    Netlist nl;
    const NetId s = nl.addInput("s");
    const NetId r = nl.addInput("r");
    nl.addOutput("q", nl.addGate(CellKind::LATCHX1, s, r));
    GateSimulator sim(nl);

    sim.setInput(s, true);
    sim.setInput(r, false);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));

    sim.setInput(s, false);
    sim.cycle();
    EXPECT_TRUE(sim.output("q")); // holds

    sim.setInput(r, true);
    sim.cycle();
    EXPECT_FALSE(sim.output("q"));

    sim.setInput(s, true);
    sim.evaluate();
    EXPECT_THROW(sim.step(), SimulationError); // S = R = 1 illegal
}

TEST(GateSimulator, CounterCountsToEight)
{
    // 3-bit ripple-ish counter built by hand: q <= q + 1 using XOR
    // carry chain; checks multi-flop feedback through makeFeedback.
    Netlist nl;
    Bus q_fb = {nl.makeFeedback(), nl.makeFeedback(),
                nl.makeFeedback()};
    const NetId c0 = nl.constOne();
    const NetId s0 = nl.addGate(CellKind::XOR2X1, q_fb[0], c0);
    const NetId c1 = nl.addGate(CellKind::AND2X1, q_fb[0], c0);
    const NetId s1 = nl.addGate(CellKind::XOR2X1, q_fb[1], c1);
    const NetId c2 = nl.addGate(CellKind::AND2X1, q_fb[1], c1);
    const NetId s2 = nl.addGate(CellKind::XOR2X1, q_fb[2], c2);
    Bus q = {nl.addFlop(s0), nl.addFlop(s1), nl.addFlop(s2)};
    for (int i = 0; i < 3; ++i)
        nl.resolveFeedback(q_fb[i], q[i]);
    nl.addOutput("q0", q[0]);
    nl.addOutput("q1", q[1]);
    nl.addOutput("q2", q[2]);

    GateSimulator sim(nl);
    for (unsigned i = 0; i < 16; ++i) {
        sim.evaluate();
        EXPECT_EQ(sim.readBus(q), i % 8) << "cycle " << i;
        sim.step();
    }
}

// ----------------------------------------------------------------
// Tri-state buses
// ----------------------------------------------------------------

TEST(GateSimulator, TristateBusSelects)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId sel = nl.addInput("sel");
    const NetId nsel = nl.addGate(CellKind::INVX1, sel);
    const NetId bus = nl.addNet("bus");
    nl.addTristate(a, nsel, bus);
    nl.addTristate(b, sel, bus);
    nl.addOutput("bus", bus);
    GateSimulator sim(nl);

    sim.setInput(a, true);
    sim.setInput(b, false);
    sim.setInput(sel, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("bus"));
    sim.setInput(sel, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("bus"));
}

TEST(GateSimulator, TristateConflictThrows)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId en = nl.constOne();
    const NetId bus = nl.addNet("bus");
    nl.addTristate(a, en, bus);
    nl.addTristate(b, en, bus);
    nl.addOutput("bus", bus);
    GateSimulator sim(nl);
    sim.setInput(a, true);
    sim.setInput(b, false);
    EXPECT_THROW(sim.evaluate(), SimulationError);
}

// ----------------------------------------------------------------
// Activity accounting
// ----------------------------------------------------------------

TEST(GateSimulator, TogglesCounted)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));
    GateSimulator sim(nl);

    // After reset all nets are 0; first evaluate raises y -> toggle.
    sim.evaluate();
    EXPECT_EQ(sim.totalToggles(), 1u);
    sim.setInput(a, true);
    sim.evaluate();
    EXPECT_EQ(sim.totalToggles(), 2u);
    sim.setInput(a, true); // no change
    sim.evaluate();
    EXPECT_EQ(sim.totalToggles(), 2u);
}

TEST(GateSimulator, ActivityFactorOfToggleFlop)
{
    // q <= !q toggles every cycle: activity factor ~2 toggles per
    // cycle over 2 gates (INV + DFF both toggle every cycle) = 1.0.
    Netlist nl;
    const NetId fb = nl.makeFeedback();
    const NetId next = nl.addGate(CellKind::INVX1, fb);
    const NetId q = nl.addFlop(next);
    nl.resolveFeedback(fb, q);
    nl.addOutput("q", q);

    GateSimulator sim(nl);
    for (int i = 0; i < 100; ++i)
        sim.cycle();
    EXPECT_NEAR(sim.activityFactor(), 1.0, 0.05);
}

// ----------------------------------------------------------------
// Illegal electrical states raise catchable SimulationError
// ----------------------------------------------------------------

TEST(GateSimulator, BusContentionThrowsSimulationError)
{
    // Two enabled tri-state buffers driving opposite values. The
    // fault-injection Monte Carlo must survive this, so it is a
    // catchable SimulationError naming the gate and net, not a
    // process-level panic.
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId en = nl.addInput("en");
    const NetId bus = nl.addNet("shared_bus");
    nl.addTristate(a, en, bus);
    nl.addTristate(b, en, bus);
    nl.addOutput("y", bus);

    GateSimulator sim(nl);
    sim.setInput(a, true);
    sim.setInput(b, false);
    sim.setInput(en, true);
    try {
        sim.evaluate();
        FAIL() << "expected SimulationError";
    } catch (const SimulationError &e) {
        EXPECT_NE(std::string(e.what()).find("conflict"),
                  std::string::npos);
        EXPECT_NE(e.cell().find("TSBUFX1"), std::string::npos);
        EXPECT_NE(e.net().find("shared_bus"), std::string::npos);
    }

    // Non-conflicting drive works again afterwards.
    sim.setInput(b, true);
    sim.evaluate();
    EXPECT_TRUE(sim.output("y"));
}

TEST(GateSimulator, LatchSetResetThrowsSimulationError)
{
    Netlist nl;
    const NetId s = nl.addInput("s");
    const NetId r = nl.addInput("r");
    const NetId q = nl.addGate(CellKind::LATCHX1, s, r);
    nl.addOutput("q", q);

    GateSimulator sim(nl);
    sim.setInput(s, true);
    sim.setInput(r, false);
    sim.cycle();
    EXPECT_TRUE(sim.output("q"));

    sim.setInput(r, true); // S=R=1 is electrically illegal
    sim.evaluate();
    try {
        sim.step();
        FAIL() << "expected SimulationError";
    } catch (const SimulationError &e) {
        EXPECT_NE(std::string(e.what()).find("S=R=1"),
                  std::string::npos);
        EXPECT_NE(e.cell().find("LATCHX1"), std::string::npos);
        EXPECT_FALSE(e.net().empty());
    }

    // The latch holds state and keeps working after the error.
    sim.setInput(s, false);
    sim.cycle();
    EXPECT_FALSE(sim.output("q"));
}

} // anonymous namespace
} // namespace printed
