/**
 * @file
 * Tests for the deterministic parallel execution layer
 * (common/parallel.hh): index coverage, pool reuse, worker-slot
 * bounds, exception propagation (including pool reusability after
 * a throw), empty/singleton ranges, and bit-identical parallelMap
 * results across thread counts under per-item seeding.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"

namespace printed
{
namespace
{

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 5u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<unsigned>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "index " << i << " with " << threads
                << " threads";
    }
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);

    std::size_t only = 999;
    pool.parallelFor(1, [&](std::size_t i) { only = i; });
    EXPECT_EQ(only, 0u);

    EXPECT_TRUE(pool.parallelMap(0, [](std::size_t i) { return i; })
                    .empty());
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs)
{
    ThreadPool pool(4);
    for (int job = 0; job < 50; ++job) {
        const std::size_t n = 1 + std::size_t(job) * 7 % 97;
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(n, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "job " << job;
    }
}

TEST(ThreadPoolTest, WorkerSlotsAreInBounds)
{
    ThreadPool pool(3);
    std::mutex m;
    std::set<unsigned> seen;
    pool.parallelForWorkers(200, [&](std::size_t, unsigned worker) {
        std::lock_guard<std::mutex> lock(m);
        seen.insert(worker);
    });
    EXPECT_FALSE(seen.empty());
    for (unsigned w : seen)
        EXPECT_LT(w, pool.threadCount());
}

TEST(ThreadPoolTest, PropagatesFirstExceptionAndStaysUsable)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&](std::size_t i) {
                             if (i == 17)
                                 throw std::runtime_error("item 17");
                         }),
        std::runtime_error);

    // After an aborted job the pool must still work — and still
    // cover every index.
    std::atomic<std::size_t> count{0};
    pool.parallelFor(64, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 64u);
}

TEST(ThreadPoolTest, ExceptionOnInlinePath)
{
    ThreadPool pool(1);
    EXPECT_THROW(pool.parallelFor(
                     4,
                     [](std::size_t i) {
                         if (i == 2)
                             throw std::logic_error("inline");
                     }),
                 std::logic_error);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap(
        257, [](std::size_t i) { return 3 * i + 1; });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPoolTest, ParallelMapWorksWithNonDefaultConstructible)
{
    struct NoDefault
    {
        explicit NoDefault(std::size_t v) : value(v) {}
        std::size_t value;
    };
    ThreadPool pool(4);
    const auto out = pool.parallelMap(
        16, [](std::size_t i) { return NoDefault(i * i); });
    ASSERT_EQ(out.size(), 16u);
    EXPECT_EQ(out[5].value, 25u);
}

TEST(ThreadPoolTest, SeededMapBitIdenticalAcrossThreadCounts)
{
    // The determinism contract: item i draws from Rng(mixSeed(s, i)),
    // so the result vector is bit-identical for any thread count.
    auto run = [](unsigned threads) {
        return parallelMap(threads, 500, [](std::size_t i) {
            Rng rng(mixSeed(12345, i));
            double acc = 0;
            for (int k = 0; k < 16; ++k)
                acc += std::sqrt(double(rng.next() >> 11));
            return acc;
        });
    };
    const auto serial = run(1);
    for (unsigned threads : {2u, 4u, 8u}) {
        const auto parallel = run(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(parallel[i], serial[i])
                << "item " << i << " with " << threads << " threads";
    }
}

TEST(ThreadPoolTest, FreeFunctionsAndDefaultThreadCount)
{
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    std::atomic<std::size_t> sum{0};
    parallelFor(3, 10, [&](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 45u);

    ThreadPool hw(0); // 0 = hardware concurrency
    EXPECT_EQ(hw.threadCount(), ThreadPool::defaultThreadCount());
}

TEST(MixSeed, DistinctPerItemStreams)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t s : {1ull, 2ull})
        for (std::uint64_t i = 0; i < 1000; ++i)
            seen.insert(mixSeed(s, i));
    EXPECT_EQ(seen.size(), 2000u);
    EXPECT_EQ(mixSeed(7, 3), mixSeed(7, 3));
}

} // anonymous namespace
} // namespace printed
