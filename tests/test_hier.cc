/**
 * @file
 * Hierarchical design layer: block wiring, dirty-bit incremental
 * optimization, deterministic flatten, and the equivalence suite —
 * hierarchical-parallel synthesis must be bit-identical to the
 * single-threaded run for every thread count.
 */

#include <gtest/gtest.h>

#include <vector>

#include "analysis/characterize.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/tiled.hh"
#include "netlist/hier.hh"
#include "sim/simulator.hh"
#include "synth/blocks.hh"
#include "synth/opt.hh"
#include "tech/library.hh"

using namespace printed;

namespace
{

TiledConfig
smallGrid(unsigned rows, unsigned cols)
{
    TiledConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    return cfg;
}

/** Full structural identity of two netlists. */
void
expectIdentical(const Netlist &a, const Netlist &b)
{
    ASSERT_EQ(a.netCount(), b.netCount());
    ASSERT_EQ(a.gateCount(), b.gateCount());
    EXPECT_EQ(a.cellHistogram(), b.cellHistogram());
    EXPECT_EQ(a.gateArray(), b.gateArray());
    ASSERT_EQ(a.inputs().size(), b.inputs().size());
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
        EXPECT_EQ(a.inputs()[i].name, b.inputs()[i].name);
        EXPECT_EQ(a.inputs()[i].net, b.inputs()[i].net);
    }
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
        EXPECT_EQ(a.outputs()[i].name, b.outputs()[i].name);
        EXPECT_EQ(a.outputs()[i].net, b.outputs()[i].net);
    }
    for (NetId n = 0; n < a.netCount(); ++n)
        EXPECT_EQ(a.netSource(n), b.netSource(n));
}

// ----------------------------------------------------------------
// The equivalence suite: hierarchical-parallel synthesis is
// bit-identical to the single-threaded flat result across thread
// counts 1 / 4 / 16.
// ----------------------------------------------------------------

TEST(HierEquivalence, ThreadCountBitIdentity)
{
    const TiledConfig cfg = smallGrid(2, 2);
    std::vector<Netlist> flats;
    std::vector<std::size_t> gateCounts;
    for (unsigned threads : {1u, 4u, 16u}) {
        hier::Design d = buildTiledDesign(cfg);
        ThreadPool pool(threads);
        EXPECT_EQ(d.optimizeBlocks(pool), d.blockCount());
        gateCounts.push_back(d.gateCount());
        flats.push_back(d.flatten());
    }
    EXPECT_EQ(gateCounts[0], gateCounts[1]);
    EXPECT_EQ(gateCounts[0], gateCounts[2]);
    expectIdentical(flats[0], flats[1]);
    expectIdentical(flats[0], flats[2]);
}

TEST(HierEquivalence, CharacterizationThreadInvariant)
{
    const TiledConfig cfg = smallGrid(2, 1);
    hier::Design d1 = buildTiledDesign(cfg);
    hier::Design d4 = buildTiledDesign(cfg);
    ThreadPool p1(1), p4(4);
    d1.optimizeBlocks(p1);
    d4.optimizeBlocks(p4);
    const hier::DesignCharacterization a =
        d1.characterizeDesign(p1, egfetLibrary());
    const hier::DesignCharacterization b =
        d4.characterizeDesign(p4, egfetLibrary());
    EXPECT_EQ(a.blocks, b.blocks);
    EXPECT_EQ(a.gates, b.gates);
    EXPECT_EQ(a.areaCm2, b.areaCm2); // bit-identical, not "close"
    EXPECT_EQ(a.fmaxHz, b.fmaxHz);
    EXPECT_EQ(a.powerMw, b.powerMw);
    ASSERT_EQ(a.perBlock.size(), b.perBlock.size());
    for (std::size_t i = 0; i < a.perBlock.size(); ++i) {
        EXPECT_EQ(a.perBlock[i].gateCount(),
                  b.perBlock[i].gateCount());
        EXPECT_EQ(a.perBlock[i].fmaxHz(), b.perBlock[i].fmaxHz());
    }
    // Roll-up invariants.
    EXPECT_EQ(a.blocks, d1.blockCount());
    EXPECT_EQ(a.gates, d1.gateCount());
    double minFmax = 0;
    for (const Characterization &c : a.perBlock)
        if (minFmax == 0 || c.fmaxHz() < minFmax)
            minFmax = c.fmaxHz();
    EXPECT_EQ(a.fmaxHz, minFmax);
    EXPECT_GT(a.areaCm2, 0);
    EXPECT_GT(a.powerMw, 0);
}

// ----------------------------------------------------------------
// Per-block optimization preserves function: the scratchpad block
// behaves identically before and after synth::optimize.
// ----------------------------------------------------------------

TEST(HierEquivalence, OptimizedScratchpadMatchesElaborated)
{
    TiledConfig cfg;
    cfg.memWords = 4;
    const Netlist raw = buildTileMemory(cfg);
    Netlist opt = raw;
    synth::optimize(opt);
    EXPECT_LE(opt.gateCount(), raw.gateCount());

    auto busOf = [](const Netlist &nl, const std::string &name,
                    unsigned width, bool input) {
        Bus bus;
        for (unsigned i = 0; i < width; ++i) {
            const std::string n =
                name + "[" + std::to_string(i) + "]";
            bus.push_back(input ? nl.inputNet(n)
                                : nl.outputNet(n));
        }
        return bus;
    };

    GateSimulator sa(raw), sb(opt);
    Rng rng(0x711ed);
    const unsigned abits = cfg.memAddrBits();
    const unsigned width = cfg.core.isa.datawidth;
    auto drive = [&](GateSimulator &s, const Netlist &nl,
                     std::uint64_t wa, std::uint64_t wd, bool we,
                     std::uint64_t ra1, std::uint64_t ra2) {
        s.setInput(nl.inputNet("rstn"), true);
        s.setBus(busOf(nl, "waddr", abits, true), wa);
        s.setBus(busOf(nl, "wdata", width, true), wd);
        s.setInput(nl.inputNet("wen"), we);
        s.setBus(busOf(nl, "raddr1", abits, true), ra1);
        s.setBus(busOf(nl, "raddr2", abits, true), ra2);
        s.cycle();
    };
    const Bus ra = busOf(raw, "rdata1", width, false);
    const Bus rb = busOf(opt, "rdata1", width, false);
    const Bus ra2 = busOf(raw, "rdata2", width, false);
    const Bus rb2 = busOf(opt, "rdata2", width, false);
    for (int i = 0; i < 64; ++i) {
        const std::uint64_t wa = rng.below(cfg.memWords);
        const std::uint64_t wd = rng.bits(width);
        const bool we = rng.below(4) != 0;
        const std::uint64_t r1 = rng.below(cfg.memWords);
        const std::uint64_t r2 = rng.below(cfg.memWords);
        drive(sa, raw, wa, wd, we, r1, r2);
        drive(sb, opt, wa, wd, we, r1, r2);
        EXPECT_EQ(sa.readBus(ra), sb.readBus(rb)) << "cycle " << i;
        EXPECT_EQ(sa.readBus(ra2), sb.readBus(rb2))
            << "cycle " << i;
    }
}

// ----------------------------------------------------------------
// Dirty bits: only stale blocks are re-processed.
// ----------------------------------------------------------------

TEST(HierDesign, DirtyBitsSkipCleanBlocks)
{
    hier::Design d = buildTiledDesign(smallGrid(2, 2));
    ThreadPool pool(4);
    EXPECT_EQ(d.dirtyBlockCount(), 8u);
    EXPECT_EQ(d.optimizeBlocks(pool), 8u);
    EXPECT_EQ(d.dirtyBlockCount(), 0u);
    EXPECT_EQ(d.optimizeBlocks(pool), 0u); // incremental fast path

    const auto before = d.characterizeBlocks(pool, egfetLibrary());
    // Touch one block: exactly one goes stale.
    Netlist &nl = d.mutableBlockNetlist(3);
    nl.addOutput("touch", nl.constOne());
    EXPECT_EQ(d.dirtyBlockCount(), 1u);
    EXPECT_EQ(d.optimizeBlocks(pool), 1u);
    const auto after = d.characterizeBlocks(pool, egfetLibrary());
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        if (i != 3) {
            EXPECT_EQ(before[i].fmaxHz(), after[i].fmaxHz());
        }
    }
}

// ----------------------------------------------------------------
// Flatten: forward references, block-level cycles, auto-exposed
// inputs, and port handling.
// ----------------------------------------------------------------

TEST(HierDesign, FlattenResolvesBlockCycle)
{
    // a.y = INV(a.x); b.q = DFF(b.p); wired in a block-level cycle
    // broken by b's flop. The consumer is instantiated *before* its
    // producer, exercising the cross-block feedback path.
    Netlist a("a");
    {
        const NetId x = a.addInput("x");
        a.addOutput("y", synth::inv(a, x));
    }
    Netlist b("b");
    {
        const NetId p = b.addInput("p");
        b.addOutput("q", b.addFlop(p));
    }
    hier::Design d("loop");
    const hier::BlockId ba = d.addBlock("a", a);
    const hier::BlockId bb = d.addBlock("b", b);
    d.connect({bb, "q"}, {ba, "x"});
    d.connect({ba, "y"}, {bb, "p"});
    d.exposeOutput({ba, "y"}, "y");

    const Netlist flat = d.flatten();
    EXPECT_EQ(flat.gateCount(), 2u);
    EXPECT_TRUE(flat.inputs().empty());

    // q starts 0 -> y = 1; each cycle the flop captures y, so y
    // toggles 1, 0, 1, 0, ...
    GateSimulator sim(flat);
    sim.evaluate();
    for (int cyc = 0; cyc < 6; ++cyc) {
        EXPECT_EQ(sim.output("y"), cyc % 2 == 0) << "cycle " << cyc;
        sim.cycle();
    }
}

TEST(HierDesign, FlattenAutoExposesUnconnectedInputs)
{
    Netlist a("a");
    {
        const NetId x = a.addInput("x");
        const NetId y = a.addInput("y");
        a.addOutput("z",
                    a.addGate(CellKind::AND2X1, x, y));
    }
    hier::Design d("expose");
    const hier::BlockId ba = d.addBlock("u0", a);
    d.exposeOutput({ba, "z"}, "z");
    const Netlist flat = d.flatten();

    GateSimulator sim(flat);
    sim.setInput(flat.inputNet("u0.x"), true);
    sim.setInput(flat.inputNet("u0.y"), true);
    sim.evaluate();
    EXPECT_TRUE(sim.output("z"));
    sim.setInput(flat.inputNet("u0.y"), false);
    sim.evaluate();
    EXPECT_FALSE(sim.output("z"));
}

TEST(HierDesign, ConnectValidatesPortsAndBlocks)
{
    Netlist a("a");
    a.addOutput("z", a.constOne());
    Netlist b("b");
    {
        const NetId p = b.addInput("p");
        b.addOutput("q", synth::inv(b, p));
    }
    hier::Design d("bad");
    const hier::BlockId ba = d.addBlock("a", a);
    const hier::BlockId bb = d.addBlock("b", b);
    EXPECT_THROW(d.addBlock("a", a), FatalError); // dup instance
    EXPECT_THROW(d.connect({ba, "nope"}, {bb, "p"}), FatalError);
    EXPECT_THROW(d.connect({ba, "z"}, {bb, "nope"}), FatalError);
    EXPECT_THROW(d.exposeOutput({bb, "p"}, "p"), FatalError);
    d.connect({ba, "z"}, {bb, "p"});
    // Second producer on the same input is rejected.
    EXPECT_THROW(d.connect({ba, "z"}, {bb, "p"}), FatalError);
}

// ----------------------------------------------------------------
// Tiled generator.
// ----------------------------------------------------------------

TEST(Tiled, ConfigSizesToTargetGates)
{
    const TiledConfig cfg = tiledConfigForGates(20000);
    // Calibration: one optimized tile's gate count.
    hier::Design one = buildTiledDesign(smallGrid(1, 1));
    ThreadPool pool(1);
    one.optimizeBlocks(pool);
    const std::size_t perTile = one.gateCount();
    EXPECT_GE(cfg.tiles() * perTile, 20000u);
    // Near-square grid, no gross overshoot.
    EXPECT_LE(cfg.rows, cfg.cols + 1);
    EXPECT_LE(cfg.cols, cfg.rows + 1);
    EXPECT_LT((cfg.tiles() - 1) * perTile, 20000u + perTile);
}

TEST(Tiled, FlattenedGridValidatesAndScales)
{
    hier::Design d = buildTiledDesign(smallGrid(2, 3));
    ThreadPool pool(2);
    d.optimizeBlocks(pool);
    const Netlist flat = d.flatten(); // validates internally
    EXPECT_EQ(flat.gateCount(), d.gateCount());
    // 6 cores' pc buses exposed.
    TiledConfig cfg = smallGrid(2, 3);
    EXPECT_EQ(flat.outputs().size(),
              cfg.tiles() * cfg.core.isa.pcBits);
    // Uniform tiles: gate count divides evenly by tile.
    EXPECT_EQ(flat.gateCount() % cfg.tiles(), 0u);
}

} // anonymous namespace
