/**
 * @file
 * Tests of the crash-safe on-disk synthesis cache
 * (synth/disk_cache.hh): byte-exact round trips, corruption
 * quarantine, version/key mismatch handling, tmp-file cleanup, and
 * the SynthCache read-through/write-through disk tier.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "analysis/characterize.hh"
#include "core/config.hh"
#include "core/generator.hh"
#include "synth/cache.hh"
#include "synth/disk_cache.hh"
#include "tech/library.hh"

namespace fs = std::filesystem;

namespace printed
{
namespace
{

/** A fresh unique cache directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/printed-disk-cache-XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p ? p : "";
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

CoreConfig
smallConfig()
{
    return CoreConfig::standard(1, 4, 2);
}

/** Field-by-field netlist equality (Netlist has no operator==). */
void
expectSameNetlist(const Netlist &a, const Netlist &b)
{
    EXPECT_EQ(a.name(), b.name());
    ASSERT_EQ(a.netCount(), b.netCount());
    for (NetId n = 0; n < a.netCount(); ++n) {
        EXPECT_EQ(a.netSource(n), b.netSource(n));
        EXPECT_EQ(a.netName(n), b.netName(n));
        EXPECT_EQ(a.netDriverCount(n), b.netDriverCount(n));
        EXPECT_EQ(a.netFirstDriver(n), b.netFirstDriver(n));
    }
    ASSERT_EQ(a.gateCount(), b.gateCount());
    for (GateId gi = 0; gi < a.gateCount(); ++gi)
        EXPECT_EQ(a.gate(gi), b.gate(gi));
    ASSERT_EQ(a.inputs().size(), b.inputs().size());
    for (std::size_t i = 0; i < a.inputs().size(); ++i) {
        EXPECT_EQ(a.inputs()[i].name, b.inputs()[i].name);
        EXPECT_EQ(a.inputs()[i].net, b.inputs()[i].net);
    }
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    for (std::size_t i = 0; i < a.outputs().size(); ++i) {
        EXPECT_EQ(a.outputs()[i].name, b.outputs()[i].name);
        EXPECT_EQ(a.outputs()[i].net, b.outputs()[i].net);
    }
    EXPECT_EQ(a.constZeroId(), b.constZeroId());
    EXPECT_EQ(a.constOneId(), b.constOneId());
}

TEST(DiskCache, EmptyCacheMisses)
{
    TempDir dir;
    DiskCache cache(dir.path);
    EXPECT_EQ(cache.loadNetlist(coreConfigKey(smallConfig())),
              nullptr);
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.stats().netlistMisses, 1u);
    EXPECT_EQ(cache.stats().corruptQuarantined, 0u);
}

TEST(DiskCache, NetlistRoundTripIsExact)
{
    TempDir dir;
    DiskCache cache(dir.path);
    const CoreConfig cfg = smallConfig();
    const CoreConfigKey key = coreConfigKey(cfg);
    const Netlist built = buildCore(cfg);

    cache.storeNetlist(key, built);
    EXPECT_EQ(cache.stats().stores, 1u);
    EXPECT_EQ(cache.entryCount(), 1u);

    const auto loaded = cache.loadNetlist(key);
    ASSERT_NE(loaded, nullptr);
    expectSameNetlist(built, *loaded);
    EXPECT_EQ(cache.stats().netlistHits, 1u);

    // A second DiskCache on the same directory sees the entry: the
    // cache is a plain directory, not process state.
    DiskCache reopened(dir.path);
    ASSERT_NE(reopened.loadNetlist(key), nullptr);
}

TEST(DiskCache, CharacterizationRoundTripIsBitExact)
{
    TempDir dir;
    DiskCache cache(dir.path);
    const CoreConfig cfg = smallConfig();
    const CoreConfigKey key = coreConfigKey(cfg);
    const Netlist built = buildCore(cfg);
    const Characterization ch =
        characterize(built, egfetLibrary());

    cache.storeCharacterization(key, TechKind::EGFET,
                                paperActivityFactor, ch);
    const auto loaded = cache.loadCharacterization(
        key, TechKind::EGFET, paperActivityFactor);
    ASSERT_NE(loaded, nullptr);

    // Doubles are stored as IEEE-754 bit patterns, so equality is
    // exact, not approximate.
    EXPECT_EQ(loaded->label, ch.label);
    EXPECT_EQ(loaded->tech, ch.tech);
    EXPECT_EQ(loaded->stats.totalGates, ch.stats.totalGates);
    EXPECT_EQ(loaded->stats.histogram, ch.stats.histogram);
    EXPECT_EQ(loaded->stats.logicDepth, ch.stats.logicDepth);
    EXPECT_EQ(loaded->area.total_mm2, ch.area.total_mm2);
    EXPECT_EQ(loaded->area.perCell_mm2, ch.area.perCell_mm2);
    EXPECT_EQ(loaded->timing.fmaxHz, ch.timing.fmaxHz);
    EXPECT_EQ(loaded->timing.criticalPathUs,
              ch.timing.criticalPathUs);
    EXPECT_EQ(loaded->powerAtFmax.total_mW,
              ch.powerAtFmax.total_mW);
    EXPECT_EQ(loaded->powerAtFmax.energyPerCycle_nJ,
              ch.powerAtFmax.energyPerCycle_nJ);

    // A different tech or activity is a different entry.
    EXPECT_EQ(cache.loadCharacterization(key, TechKind::CNT_TFT,
                                         paperActivityFactor),
              nullptr);
    EXPECT_EQ(cache.loadCharacterization(key, TechKind::EGFET,
                                         0.5),
              nullptr);
}

TEST(DiskCache, CorruptEntryIsQuarantinedAndRecovers)
{
    TempDir dir;
    DiskCache cache(dir.path);
    const CoreConfig cfg = smallConfig();
    const CoreConfigKey key = coreConfigKey(cfg);
    const Netlist built = buildCore(cfg);
    cache.storeNetlist(key, built);

    const std::string victim = cache.corruptOneEntry(42);
    ASSERT_FALSE(victim.empty());

    // The flipped byte fails the checksum: miss, quarantined.
    EXPECT_EQ(cache.loadNetlist(key), nullptr);
    EXPECT_EQ(cache.stats().corruptQuarantined, 1u);
    EXPECT_EQ(cache.entryCount(), 0u);

    // The quarantined file is kept for post-mortem...
    bool sawQuarantine = false;
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.path().filename().string().find(".corrupt-") !=
            std::string::npos)
            sawQuarantine = true;
    EXPECT_TRUE(sawQuarantine);

    // ...and a re-store + load works as if nothing happened.
    cache.storeNetlist(key, built);
    ASSERT_NE(cache.loadNetlist(key), nullptr);
}

TEST(DiskCache, VersionMismatchIsDetected)
{
    TempDir dir;
    DiskCache cache(dir.path);
    const CoreConfigKey key = coreConfigKey(smallConfig());
    cache.storeNetlist(key, buildCore(smallConfig()));

    // Patch the format-version field (bytes 4..7, after the magic).
    std::string path;
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.path().extension() == ".psc")
            path = e.path().string();
    ASSERT_FALSE(path.empty());
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 4, SEEK_SET);
    const unsigned char bumped = DiskCache::formatVersion + 1;
    std::fputc(bumped, f);
    std::fclose(f);

    EXPECT_EQ(cache.loadNetlist(key), nullptr);
    EXPECT_EQ(cache.stats().versionMismatches, 1u);
    EXPECT_EQ(cache.entryCount(), 0u); // quarantined
}

TEST(DiskCache, PreBumpEntryIsVersionMismatchAndRebuilds)
{
    // An entry written before the struct-of-arrays layout bump
    // (formatVersion 1) must register as a version mismatch, be
    // quarantined, and get rebuilt by the next store.
    TempDir dir;
    DiskCache cache(dir.path);
    const CoreConfigKey key = coreConfigKey(smallConfig());
    const Netlist built = buildCore(smallConfig());
    cache.storeNetlist(key, built);

    std::string path;
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.path().extension() == ".psc")
            path = e.path().string();
    ASSERT_FALSE(path.empty());
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 4, SEEK_SET);
    std::fputc(1, f); // the v1 (pre-bump) header version
    std::fclose(f);

    EXPECT_EQ(cache.loadNetlist(key), nullptr);
    EXPECT_EQ(cache.stats().versionMismatches, 1u);
    EXPECT_EQ(cache.entryCount(), 0u); // quarantined

    // The rebuild path: store fresh, load, and get the netlist back.
    cache.storeNetlist(key, built);
    const auto reloaded = cache.loadNetlist(key);
    ASSERT_NE(reloaded, nullptr);
    expectSameNetlist(built, *reloaded);
    EXPECT_EQ(cache.stats().versionMismatches, 1u);
}

TEST(DiskCache, KeyMismatchIsAMissNotCorruption)
{
    TempDir dir;
    DiskCache cache(dir.path);
    const CoreConfig cfgA = CoreConfig::standard(1, 4, 2);
    const CoreConfig cfgB = CoreConfig::standard(1, 8, 2);
    const CoreConfigKey keyA = coreConfigKey(cfgA);
    const CoreConfigKey keyB = coreConfigKey(cfgB);
    cache.storeNetlist(keyA, buildCore(cfgA));

    // Simulate a (in practice impossible) file-name hash collision:
    // keyB's locator points at a valid entry that stores keyA.
    std::string pathA, pathB;
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.path().extension() == ".psc")
            pathA = e.path().string();
    ASSERT_FALSE(pathA.empty());
    cache.storeNetlist(keyB, buildCore(cfgB));
    for (const auto &e : fs::directory_iterator(dir.path)) {
        const std::string p = e.path().string();
        if (e.path().extension() == ".psc" && p != pathA)
            pathB = p;
    }
    ASSERT_FALSE(pathB.empty());
    fs::remove(pathB);
    fs::copy_file(pathA, pathB);

    // The full key stored in the payload catches the alias: a miss,
    // and the (valid) entry is left alone.
    EXPECT_EQ(cache.loadNetlist(keyB), nullptr);
    EXPECT_EQ(cache.stats().keyMismatches, 1u);
    EXPECT_EQ(cache.stats().corruptQuarantined, 0u);
    EXPECT_TRUE(fs::exists(pathB));
}

TEST(DiskCache, StrayTmpFilesAreRemovedAtOpen)
{
    TempDir dir;
    {
        std::FILE *f = std::fopen(
            (dir.path + "/tmp-9999-1").c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fputs("half-written", f);
        std::fclose(f);
    }
    DiskCache cache(dir.path);
    EXPECT_FALSE(fs::exists(dir.path + "/tmp-9999-1"));
    EXPECT_EQ(cache.entryCount(), 0u);
}

TEST(DiskCache, SynthCacheWritesThroughAndReadsThrough)
{
    TempDir dir;
    auto disk = std::make_shared<DiskCache>(dir.path);
    const CoreConfig cfg = smallConfig();

    // First process: a cold memory cache persists what it builds.
    {
        SynthCache mem;
        mem.setDiskTier(disk);
        EXPECT_EQ(mem.diskTier(), disk);
        auto core = mem.core(cfg);
        auto ch = mem.characterization(cfg, TechKind::EGFET);
        ASSERT_NE(core, nullptr);
        ASSERT_NE(ch, nullptr);
        EXPECT_EQ(disk->stats().stores, 2u);
        // Memory hit on repeat: the disk is not consulted again.
        mem.core(cfg);
        EXPECT_EQ(disk->stats().netlistMisses, 1u);
    }

    // Second process (fresh memory cache, same directory): served
    // from disk, bit-identical to a fresh build.
    {
        SynthCache mem;
        mem.setDiskTier(disk);
        auto core = mem.core(cfg);
        ASSERT_NE(core, nullptr);
        EXPECT_EQ(disk->stats().netlistHits, 1u);
        expectSameNetlist(buildCore(cfg), *core);

        auto ch = mem.characterization(cfg, TechKind::EGFET);
        ASSERT_NE(ch, nullptr);
        EXPECT_EQ(disk->stats().charHits, 1u);
        const Characterization fresh =
            characterize(buildCore(cfg), egfetLibrary());
        EXPECT_EQ(ch->timing.fmaxHz, fresh.timing.fmaxHz);
        EXPECT_EQ(ch->powerAtFmax.total_mW,
                  fresh.powerAtFmax.total_mW);
        EXPECT_EQ(ch->area.total_mm2, fresh.area.total_mm2);
    }

    // Detaching the tier restores pure in-memory behavior.
    SynthCache mem;
    mem.setDiskTier(disk);
    mem.setDiskTier(nullptr);
    EXPECT_EQ(mem.diskTier(), nullptr);
    const auto before = disk->stats();
    mem.core(cfg);
    EXPECT_EQ(disk->stats().netlistHits, before.netlistHits);
    EXPECT_EQ(disk->stats().netlistMisses, before.netlistMisses);
}

TEST(DiskCache, CorruptDiskEntryDegradesToRebuild)
{
    TempDir dir;
    auto disk = std::make_shared<DiskCache>(dir.path);
    const CoreConfig cfg = smallConfig();
    {
        SynthCache mem;
        mem.setDiskTier(disk);
        mem.core(cfg);
    }
    ASSERT_FALSE(disk->corruptOneEntry(7).empty());

    // The corrupt entry is a miss; the rebuild repopulates disk.
    SynthCache mem;
    mem.setDiskTier(disk);
    auto core = mem.core(cfg);
    ASSERT_NE(core, nullptr);
    expectSameNetlist(buildCore(cfg), *core);
    EXPECT_EQ(disk->stats().corruptQuarantined, 1u);
    EXPECT_GE(disk->stats().stores, 2u);

    // And the repaired entry serves the next cold cache.
    SynthCache mem2;
    mem2.setDiskTier(disk);
    const auto before = disk->stats().netlistHits;
    ASSERT_NE(mem2.core(cfg), nullptr);
    EXPECT_EQ(disk->stats().netlistHits, before + 1);
}

} // anonymous namespace
} // namespace printed
