/**
 * @file
 * printedd service tests: protocol round-trips, end-to-end TCP
 * request/reply, admission control, deadlines, drain, and the
 * serving determinism rule (concurrent replies byte-identical to
 * serial ones).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/json_min.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"

namespace
{

using namespace printed;
using namespace printed::service;

CoreConfig
smallConfig()
{
    return CoreConfig::standard(1, 4, 2);
}

/** A classify spec small enough for sub-second end-to-end tests. */
ml::ClassifySpec
smallClassifySpec()
{
    ml::ClassifySpec spec;
    spec.dataset.features = 2;
    spec.dataset.classes = 2;
    spec.dataset.bits = 4;
    spec.dataset.train = 48;
    spec.dataset.holdout = 32;
    spec.depth = 2;
    spec.search.generations = 2;
    spec.search.population = 4;
    return spec;
}

// ---------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------

TEST(ServiceProtocol, SynthRequestRoundTrip)
{
    CoreConfig cfg = CoreConfig::standard(2, 16, 4);
    cfg.opcodeMask = 0x1FF;
    cfg.tristateResultMux = false;

    const Request req =
        parseRequest(synthRequest("r42", cfg, 125.5));
    EXPECT_EQ(req.id, "r42");
    EXPECT_EQ(req.type, RequestType::Synth);
    EXPECT_EQ(req.config.stages, 2u);
    EXPECT_EQ(req.config.isa.datawidth, 16u);
    EXPECT_EQ(req.config.isa.barCount, 4u);
    EXPECT_EQ(req.config.opcodeMask, 0x1FFu);
    EXPECT_FALSE(req.config.tristateResultMux);
    EXPECT_DOUBLE_EQ(req.deadlineMs, 125.5);
}

TEST(ServiceProtocol, YieldRequestRoundTrip)
{
    const Request req = parseRequest(
        yieldRequest("y1", smallConfig(), 512, 99, 3));
    EXPECT_EQ(req.type, RequestType::Yield);
    EXPECT_EQ(req.trials, 512u);
    EXPECT_EQ(req.seed, 99u);
    EXPECT_EQ(req.replicas, 3u);
    EXPECT_DOUBLE_EQ(req.deviceYield, 0.9999);
}

TEST(ServiceProtocol, SweepRequestRoundTrip)
{
    SweepSpec spec;
    spec.stages = {1, 3};
    spec.widths = {8};
    spec.bars = {2, 4};
    const Request req =
        parseRequest(sweepRequest("w1", spec));
    EXPECT_EQ(req.type, RequestType::Sweep);
    EXPECT_EQ(req.sweep.stages, spec.stages);
    EXPECT_EQ(req.sweep.widths, spec.widths);
    EXPECT_EQ(req.sweep.bars, spec.bars);
    EXPECT_EQ(req.sweep.configs().size(), 4u);
}

TEST(ServiceProtocol, SweepDefaultsToFullGrid)
{
    const Request req =
        parseRequest("{\"id\":\"w\",\"type\":\"sweep\"}");
    EXPECT_EQ(req.sweep.configs().size(), 24u);
}

TEST(ServiceProtocol, RejectsInvalidRequests)
{
    EXPECT_THROW(parseRequest("{\"type\":\"nope\"}"), FatalError);
    EXPECT_THROW(parseRequest("{}"), FatalError);
    EXPECT_THROW(parseRequest("[1,2]"), FatalError);
    EXPECT_THROW(parseRequest("{\"type\":\"synth\","
                              "\"config\":{\"stages\":7}}"),
                 FatalError);
    EXPECT_THROW(parseRequest("{\"type\":\"sweep\","
                              "\"widths\":[13]}"),
                 FatalError);
    EXPECT_THROW(parseRequest("not json"), json::ParseError);
}

TEST(ServiceProtocol, CoalesceKeyIgnoresIdAndDeadline)
{
    const CoreConfig cfg = smallConfig();
    const Request a = parseRequest(synthRequest("a", cfg, 0));
    const Request b = parseRequest(synthRequest("b", cfg, 500));
    EXPECT_EQ(coalesceKey(a), coalesceKey(b));

    const Request c = parseRequest(
        synthRequest("c", CoreConfig::standard(1, 8, 2)));
    EXPECT_NE(coalesceKey(a), coalesceKey(c));

    // Different yield seeds are different computations.
    const Request y1 =
        parseRequest(yieldRequest("y", cfg, 64, 1));
    const Request y2 =
        parseRequest(yieldRequest("y", cfg, 64, 2));
    EXPECT_NE(coalesceKey(y1), coalesceKey(y2));
}

TEST(ServiceProtocol, ClassifyRequestRoundTrip)
{
    ml::ClassifySpec spec = smallClassifySpec();
    spec.dataset.kind = "xor";
    spec.dataset.seed = 7;
    spec.search.seed = 9;
    spec.search.engine = ml::ScoreEngine::Scalar;
    spec.budget.battery = "Zinergy 12mAh";
    spec.budget.maxAreaCm2 = 3.5;

    const std::string line = classifyRequest("c42", spec, 250);
    const Request req = parseRequest(line);
    EXPECT_EQ(req.id, "c42");
    EXPECT_EQ(req.type, RequestType::Classify);
    EXPECT_EQ(req.classify.dataset.kind, "xor");
    EXPECT_EQ(req.classify.dataset.features, 2u);
    EXPECT_EQ(req.classify.dataset.seed, 7u);
    EXPECT_EQ(req.classify.model, ml::ModelKind::Tree);
    EXPECT_EQ(req.classify.depth, 2u);
    EXPECT_EQ(req.classify.search.generations, 2u);
    EXPECT_EQ(req.classify.search.seed, 9u);
    EXPECT_EQ(req.classify.search.engine, ml::ScoreEngine::Scalar);
    EXPECT_EQ(req.classify.budget.battery, "Zinergy 12mAh");
    EXPECT_DOUBLE_EQ(req.classify.budget.maxAreaCm2, 3.5);
    EXPECT_DOUBLE_EQ(req.deadlineMs, 250);

    // requestLine() is the canonical renderer: parse -> render is
    // identity on rendered lines (the balancer's resume rewrite
    // depends on this).
    EXPECT_EQ(requestLine(req), line);

    // Defaults resolve exactly like an empty request body.
    const Request bare =
        parseRequest("{\"id\":\"c\",\"type\":\"classify\"}");
    EXPECT_EQ(bare.classify, ml::ClassifySpec{});

    // Bad specs are rejected at parse time.
    EXPECT_THROW(parseRequest("{\"type\":\"classify\","
                              "\"model\":\"forest\"}"),
                 FatalError);
    EXPECT_THROW(parseRequest("{\"type\":\"classify\",\"budget\":"
                              "{\"battery\":\"AA\"}}"),
                 FatalError);
    EXPECT_THROW(parseRequest("{\"type\":\"classify\",\"dataset\":"
                              "{\"kind\":\"xor\",\"classes\":3}}"),
                 FatalError);
}

TEST(ServiceProtocol, ClassifyCoalesceAndRouteKeys)
{
    const ml::ClassifySpec spec = smallClassifySpec();
    const Request a = parseRequest(classifyRequest("a", spec, 0));
    const Request b = parseRequest(classifyRequest("b", spec, 500));
    EXPECT_EQ(coalesceKey(a), coalesceKey(b));
    // Streams route where the monolithic request routes, so a
    // resumed stream finds the shard that holds the cached search.
    EXPECT_EQ(routeKey(a), coalesceKey(a));

    ml::ClassifySpec other = spec;
    other.search.seed += 1;
    const Request c = parseRequest(classifyRequest("c", other));
    EXPECT_NE(coalesceKey(a), coalesceKey(c));

    other = spec;
    other.search.engine = ml::ScoreEngine::Scalar;
    const Request d = parseRequest(classifyRequest("d", other));
    EXPECT_NE(coalesceKey(a), coalesceKey(d));
}

TEST(ServiceProtocol, AdvertisedTypesWithV1Fallback)
{
    // A v2 worker advertises its types in the health body.
    const std::string v2 = "{\"status\": \"ok\", \"proto\": 2, "
                           "\"types\": " +
                           supportedTypesJson() + "}";
    const std::vector<std::string> types = advertisedTypes(v2);
    EXPECT_NE(std::find(types.begin(), types.end(), "classify"),
              types.end());
    EXPECT_NE(std::find(types.begin(), types.end(), "sweep"),
              types.end());

    // Older workers (no "types" field, or an unparsable body)
    // degrade to the v1 baseline: everything but classify.
    for (const std::string body :
         {std::string("{\"status\": \"ok\", \"proto\": 1}"),
          std::string("not json")}) {
        const std::vector<std::string> v1 = advertisedTypes(body);
        EXPECT_EQ(std::find(v1.begin(), v1.end(), "classify"),
                  v1.end());
        EXPECT_NE(std::find(v1.begin(), v1.end(), "sweep"),
                  v1.end());
    }
}

TEST(ServiceProtocol, FormatDoubleRoundTrips)
{
    for (double v : {0.0, 1.0, 0.1, 1.0 / 3.0, 22.830007762202637,
                     1e-300, -123456.789}) {
        const std::string text = formatDouble(v);
        EXPECT_EQ(std::stod(text), v) << text;
    }
    EXPECT_EQ(formatDouble(1.0 / 0.0), "null");
}

TEST(ServiceProtocol, ReplyParsing)
{
    const Reply ok = parseReply(okReply(
        "r1", RequestType::Synth, "{\"gates\": 454}"));
    EXPECT_TRUE(ok.ok);
    EXPECT_EQ(ok.id, "r1");

    const Reply err = parseReply(
        errorReply("r2", errc::queueFull, "full"));
    EXPECT_FALSE(err.ok);
    EXPECT_EQ(err.id, "r2");
    EXPECT_EQ(err.error, "queue_full");
    EXPECT_EQ(err.message, "full");
}

// ---------------------------------------------------------------
// End to end
// ---------------------------------------------------------------

TEST(ServiceServer, SynthOverTcp)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const std::string raw =
        client.call(synthRequest("s1", smallConfig()));
    const Reply reply = parseReply(raw);
    ASSERT_TRUE(reply.ok) << raw;

    const json::Value root = json::parse(raw);
    const json::Value *result = root.find("result");
    ASSERT_NE(result, nullptr);
    const json::Value *core = result->find("core");
    ASSERT_NE(core, nullptr);
    EXPECT_EQ(core->string, "p1_4_2");
    EXPECT_GT(result->find("gates")->number, 100);

    // The reply is a pure function of the request line.
    EXPECT_EQ(client.call(synthRequest("s1", smallConfig())), raw);
}

TEST(ServiceServer, YieldAndSweepOverTcp)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const Reply yield = parseReply(client.call(
        yieldRequest("y1", smallConfig(), 32, 5)));
    ASSERT_TRUE(yield.ok) << yield.raw;
    const json::Value yroot = json::parse(yield.raw);
    EXPECT_EQ(
        yroot.find("result")->find("trials")->number, 32);

    SweepSpec spec;
    spec.stages = {1};
    spec.widths = {4, 8};
    spec.bars = {2};
    const Reply sweep =
        parseReply(client.call(sweepRequest("w1", spec)));
    ASSERT_TRUE(sweep.ok) << sweep.raw;
    const json::Value wroot = json::parse(sweep.raw);
    EXPECT_EQ(
        wroot.find("result")->find("points")->array.size(), 2u);
}

TEST(ServiceServer, ClassifyOverTcp)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const ml::ClassifySpec spec = smallClassifySpec();
    const std::string raw =
        client.call(classifyRequest("c1", spec));
    const Reply reply = parseReply(raw);
    ASSERT_TRUE(reply.ok) << raw;

    // Points 0..G-1 are generation summaries, point G the front.
    const json::Value root = json::parse(raw);
    const json::Value *points = root.find("result")->find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->array.size(), spec.search.generations + 1u);
    EXPECT_EQ(points->array[0].find("generation")->number, 0);
    const json::Value &front = points->array.back();
    ASSERT_NE(front.find("front"), nullptr);
    EXPECT_GE(front.find("front")->array.size(), 1u);
    EXPECT_GT(
        front.find("baseline")->find("accuracy")->number, 0.5);

    // Identical specs reuse the cached search result and the reply
    // is a pure function of the request line.
    const std::uint64_t hits =
        metrics::counter("ml.cache_hits").value();
    EXPECT_EQ(client.call(classifyRequest("c1", spec)), raw);
    EXPECT_GT(metrics::counter("ml.cache_hits").value(), hits);
}

TEST(ServiceServer, HealthAdvertisesClassify)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const std::string raw =
        client.call(adminRequest("h", RequestType::Health));
    const json::Value root = json::parse(raw);
    const json::Value *types = root.find("result")->find("types");
    ASSERT_NE(types, nullptr);
    std::vector<std::string> got;
    for (const json::Value &t : types->array)
        got.push_back(t.string);
    EXPECT_NE(std::find(got.begin(), got.end(), "classify"),
              got.end());
    EXPECT_NE(std::find(got.begin(), got.end(), "synth"),
              got.end());
}

TEST(ServiceServer, MalformedAndInvalidRequests)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const Reply parse = parseReply(client.call("{{{"));
    EXPECT_FALSE(parse.ok);
    EXPECT_EQ(parse.error, "parse_error");

    const Reply bad = parseReply(client.call(
        "{\"id\":\"b\",\"type\":\"synth\","
        "\"config\":{\"width\":5}}"));
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.error, "bad_request");

    // The connection survives both errors.
    EXPECT_TRUE(parseReply(client.call(
                    adminRequest("h", RequestType::Health)))
                    .ok);
}

TEST(ServiceServer, DeadlineExceededAtAdmission)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    // A sub-microsecond deadline is always expired by dequeue
    // time.
    const Reply reply = parseReply(client.call(synthRequest(
        "d1", CoreConfig::standard(3, 32, 4), 1e-4)));
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, "deadline_exceeded");
}

TEST(ServiceServer, QueueFullRejection)
{
    ServerOptions opts;
    opts.maxQueue = 0; // reject every compute admission
    Server server(opts);
    server.start();
    Client client("127.0.0.1", server.port());

    const Reply reply = parseReply(
        client.call(synthRequest("q1", smallConfig())));
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, "queue_full");

    // Admin requests bypass the queue entirely.
    EXPECT_TRUE(parseReply(client.call(
                    adminRequest("h", RequestType::Health)))
                    .ok);
}

TEST(ServiceServer, MetricsAndHealthIntrospection)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    client.call(synthRequest("s", smallConfig()));

    const std::string health =
        client.call(adminRequest("h", RequestType::Health));
    const json::Value hroot = json::parse(health);
    EXPECT_EQ(hroot.find("result")->find("status")->string, "ok");

    const std::string metrics =
        client.call(adminRequest("m", RequestType::Metrics));
    const json::Value mroot = json::parse(metrics);
    const json::Value *counters =
        mroot.find("result")->find("counters");
    ASSERT_NE(counters, nullptr);
    const json::Value *served =
        counters->find("service.requests");
    ASSERT_NE(served, nullptr);
    EXPECT_GE(served->number, 2);
}

TEST(ServiceServer, ShutdownDrainsAndCloses)
{
    Server server;
    server.start();
    const std::uint16_t port = server.port();
    Client client("127.0.0.1", port);

    const Reply reply = parseReply(
        client.call(adminRequest("bye", RequestType::Shutdown)));
    EXPECT_TRUE(reply.ok);

    server.wait(); // returns because shutdown was requested

    // Further compute on the old connection is refused or the
    // socket is closed; either way no hang.
    bool refused = false;
    try {
        const Reply r = parseReply(
            client.call(synthRequest("late", smallConfig())));
        refused = !r.ok && r.error == "shutting_down";
    } catch (const FatalError &) {
        refused = true; // connection closed
    }
    EXPECT_TRUE(refused);
}

TEST(ServiceServer, ConcurrentRepliesAreByteIdentical)
{
    // The determinism rule: the same requests, issued serially on
    // one connection and concurrently from several, produce
    // byte-identical reply lines (matched by id).
    ServerOptions opts;
    opts.executors = 4;
    Server server(opts);
    server.start();

    std::vector<std::string> requests;
    for (unsigned width : {4u, 8u, 16u})
        requests.push_back(synthRequest(
            "s" + std::to_string(width),
            CoreConfig::standard(1, width, 2)));
    requests.push_back(
        yieldRequest("y", smallConfig(), 48, 11));
    SweepSpec spec;
    spec.stages = {1, 2};
    spec.widths = {4};
    spec.bars = {2};
    requests.push_back(sweepRequest("w", spec));

    std::map<std::string, std::string> serial;
    {
        Client client("127.0.0.1", server.port());
        for (const std::string &req : requests) {
            const std::string raw = client.call(req);
            serial[parseReply(raw).id] = raw;
        }
    }

    constexpr unsigned kClients = 4;
    std::vector<std::map<std::string, std::string>> got(kClients);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            Client client("127.0.0.1", server.port());
            for (const std::string &req : requests)
                client.send(req); // pipelined
            for (std::size_t i = 0; i < requests.size(); ++i) {
                const std::string raw = client.readLine();
                got[c][parseReply(raw).id] = raw;
            }
        });
    for (std::thread &t : threads)
        t.join();

    for (unsigned c = 0; c < kClients; ++c) {
        ASSERT_EQ(got[c].size(), serial.size());
        for (const auto &[id, raw] : serial)
            EXPECT_EQ(got[c].at(id), raw)
                << "client " << c << " id " << id;
    }
}

TEST(ServiceProtocol, QueueFullReplyCarriesRetryHint)
{
    const Reply r = parseReply(queueFullReply("q7", 37.5));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.id, "q7");
    EXPECT_EQ(r.error, "queue_full");
    EXPECT_DOUBLE_EQ(r.retryAfterMs, 37.5);

    // Replies without the hint parse with a zero default.
    const Reply plain = parseReply(
        errorReply("q8", errc::queueFull, "full"));
    EXPECT_DOUBLE_EQ(plain.retryAfterMs, 0.0);
}

TEST(ServiceProtocol, ParsersRejectMutatedFramesWithoutCrashing)
{
    // Fuzz both wire parsers with truncations and byte mutations
    // of valid frames: anything may be rejected, nothing may crash
    // or be silently misparsed into a *different* valid value.
    std::vector<std::string> seeds = {
        synthRequest("f1", CoreConfig::standard(2, 16, 4), 10),
        yieldRequest("f2", smallConfig(), 64, 3, 2),
        sweepRequest("f3", SweepSpec{{1, 2}, {4, 8}, {2}}),
        adminRequest("f4", RequestType::Metrics),
        okReply("f5", RequestType::Synth, "{\"gates\": 454}"),
        queueFullReply("f6", 12.5),
    };
    // Deeply nested and invalid-escape frames too.
    std::string nested = "{\"id\":\"n\",\"type\":\"health\",\"x\":";
    for (int i = 0; i < 64; ++i)
        nested += "[";
    seeds.push_back(nested);
    seeds.push_back("{\"id\":\"\\uD800\",\"type\":\"health\"}");
    seeds.push_back("{\"id\":\"\\u12G4\",\"type\":\"health\"}");
    seeds.push_back(std::string(1 << 16, '['));

    Rng rng(2026);
    std::size_t attempts = 0;
    for (const std::string &seed : seeds) {
        for (std::size_t cut = 0; cut < seed.size();
             cut += 1 + seed.size() / 37) {
            const std::string truncated = seed.substr(0, cut);
            try {
                (void)parseRequest(truncated);
            } catch (const std::exception &) {
            }
            try {
                (void)parseReply(truncated);
            } catch (const std::exception &) {
            }
            ++attempts;
        }
        for (unsigned m = 0; m < 64; ++m) {
            std::string mutated = seed;
            if (mutated.empty())
                continue;
            const std::size_t at =
                std::size_t(rng.below(mutated.size()));
            mutated[at] = char(rng.next() & 0xFF);
            try {
                (void)parseRequest(mutated);
            } catch (const std::exception &) {
            }
            try {
                (void)parseReply(mutated);
            } catch (const std::exception &) {
            }
            ++attempts;
        }
    }
    EXPECT_GT(attempts, 500u);
}

TEST(ServiceServer, QueueFullOverTcpCarriesRetryHint)
{
    ServerOptions opts;
    opts.maxQueue = 0;
    Server server(opts);
    server.start();
    Client client("127.0.0.1", server.port());

    const Reply reply = parseReply(
        client.call(synthRequest("q1", smallConfig())));
    EXPECT_FALSE(reply.ok);
    EXPECT_EQ(reply.error, "queue_full");
    EXPECT_GT(reply.retryAfterMs, 0.0);
}

TEST(ServiceServer, ShedsHeavyClassesFirst)
{
    // One executor, pinned busy by an expensive yield, and a queue
    // of 8: sweeps shed at depth 4, yields at depth 6, synths only
    // at 8. Build known depths, then observe class-ordered
    // admission verdicts.
    ServerOptions opts;
    opts.executors = 1;
    opts.maxQueue = 8;
    Server server(opts);
    server.start();

    const std::uint64_t yieldArrivals =
        metrics::counter("service.requests_yield").value();
    Client pin("127.0.0.1", server.port());
    pin.send(yieldRequest("pin", smallConfig(), 20000, 1));

    // Wait until the pin request was admitted *and* dequeued: from
    // then on the lone executor is busy for ~a second and queued
    // requests stay queued.
    Client filler("127.0.0.1", server.port());
    Client probe("127.0.0.1", server.port());
    const auto queueDepth = [&] {
        const std::string raw = probe.call(
            adminRequest("h", RequestType::Health));
        return json::parse(raw)
            .find("result")
            ->find("queue_depth")
            ->number;
    };
    for (int spin = 0;
         spin < 5000 &&
         metrics::counter("service.requests_yield").value() ==
             yieldArrivals;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (int spin = 0; spin < 5000 && queueDepth() != 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(queueDepth(), 0);

    // Fill to depth 5 with yields (each below the yield limit of 6
    // at admission time; distinct seeds so nothing coalesces).
    for (int i = 0; i < 5; ++i)
        filler.send(yieldRequest("f" + std::to_string(i),
                                 smallConfig(), 2000,
                                 100 + unsigned(i)));
    for (int spin = 0; spin < 5000 && queueDepth() < 5; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(queueDepth(), 5);

    // Depth 5: sweeps (limit 4) shed; synths (limit 8) admitted.
    SweepSpec spec;
    spec.stages = {1};
    spec.widths = {4};
    spec.bars = {2};
    const Reply sweep =
        parseReply(probe.call(sweepRequest("w", spec)));
    EXPECT_FALSE(sweep.ok);
    EXPECT_EQ(sweep.error, "queue_full");
    EXPECT_GT(sweep.retryAfterMs, 0.0);
    EXPECT_GE(metrics::counter("service.shed_sweep").value(), 1u);

    probe.send(yieldRequest("y", smallConfig(), 100, 2)); // depth 6
    probe.send(
        synthRequest("s", CoreConfig::standard(1, 8, 2))); // 7
    for (int spin = 0; spin < 5000 && queueDepth() < 7; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(queueDepth(), 7);

    // Depth 7: yields (limit 6) shed too — the rejection is sent
    // inline by the reader, so it overtakes the queued replies...
    probe.send(yieldRequest("y2", smallConfig(), 100, 3));
    const Reply yield2 = parseReply(probe.readLine());
    EXPECT_EQ(yield2.id, "y2");
    EXPECT_FALSE(yield2.ok);
    EXPECT_EQ(yield2.error, "queue_full");
    EXPECT_GE(metrics::counter("service.shed_yield").value(), 1u);

    // ...while a synth still fits (limit 8). Collect the three
    // queued replies (y, s, s2) in execution order.
    probe.send(
        synthRequest("s2", CoreConfig::standard(1, 16, 2)));
    std::map<std::string, Reply> done;
    for (int i = 0; i < 3; ++i) {
        const Reply r = parseReply(probe.readLine());
        done[r.id] = r;
    }
    EXPECT_TRUE(done.at("y").ok) << done.at("y").raw;
    EXPECT_TRUE(done.at("s").ok) << done.at("s").raw;
    EXPECT_TRUE(done.at("s2").ok) << done.at("s2").raw;
}

TEST(ServiceServer, WatchdogFlagsDeadlineOverruns)
{
    // A worker that blows through its request's deadline while
    // computing (the deadline is only checked between sweep points
    // and at dequeue) must be flagged by the watchdog.
    ServerOptions opts;
    opts.executors = 1;
    opts.watchdogPeriodMs = 5;
    Server server(opts);
    server.start();

    const std::uint64_t before =
        metrics::counter("service.watchdog_overruns").value();

    // A yield big enough to outlive its own 50 ms deadline once it
    // starts computing (the server is idle, so admission-to-dequeue
    // is far under 50 ms and the deadline is still live when the
    // executor picks it up).
    Client client("127.0.0.1", server.port());
    const Reply r = parseReply(client.call(yieldRequest(
        "slow", CoreConfig::standard(1, 8, 2), 20000, 77, 1, 50)));
    // The reply itself may be ok or deadline_exceeded depending on
    // where the overrun was noticed; the watchdog observation is
    // the invariant.
    (void)r;
    EXPECT_GT(
        metrics::counter("service.watchdog_overruns").value(),
        before);
}

TEST(ServiceClient, RetryingClientReconnectsAcrossServerRestart)
{
    ServerOptions opts;
    Server *server = new Server(opts);
    server->start();
    const std::uint16_t port = server->port();

    RetryPolicy policy;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 10;
    policy.maxLossRetries = 400; // restart takes a few attempts
    RetryingClient client("127.0.0.1", port, policy);

    const std::string req = synthRequest("r", smallConfig());
    const std::string before = client.call(req);
    ASSERT_TRUE(parseReply(before).ok);

    // Kill the server (connections die) and bring up a new one on
    // the same port; the client must heal transparently.
    delete server;
    ServerOptions opts2;
    opts2.port = port;
    Server server2(opts2);
    server2.start();

    const std::string after = client.call(req);
    EXPECT_EQ(after, before); // determinism across restarts too
    EXPECT_GE(client.stats().reconnects, 2u);
    EXPECT_GE(client.stats().lossReplays, 1u);
}

TEST(ServiceClient, NonIdempotentRequestsAreNotReplayed)
{
    Server server;
    server.start();

    RetryPolicy policy;
    policy.baseBackoffMs = 1;
    RetryingClient client("127.0.0.1", server.port(), policy);

    // shutdown is the one non-idempotent request: sent once, never
    // replayed. It succeeds here; the non-replay contract is that a
    // *failure* after send propagates instead of retrying, which
    // the lost-connection path below exercises.
    const Reply bye = client.callParsed(
        adminRequest("bye", RequestType::Shutdown),
        /*idempotent=*/false);
    EXPECT_TRUE(bye.ok);
    server.wait();

    // With the server gone, a non-idempotent call must fail, never
    // be replayed once its bytes may have reached a server, and
    // never be answered twice. (Reconnect attempts for a request
    // that provably never reached the wire are allowed.)
    EXPECT_THROW(client.call(adminRequest(
                                 "bye2", RequestType::Shutdown),
                             /*idempotent=*/false),
                 FatalError);
}

TEST(ServiceClient, CallTimeoutThrowsTimeoutError)
{
    // An unanswered socket (a listener that never replies) must
    // trip the per-call poll deadline, not hang.
    Server server;
    server.start();
    Client raw("127.0.0.1", server.port());
    // health answers fast; then ask for a reply that never comes by
    // reading twice.
    raw.send(adminRequest("h", RequestType::Health));
    EXPECT_FALSE(raw.readLine(2000).empty());
    EXPECT_THROW(raw.readLine(50), TimeoutError);
}

TEST(ServiceServer, CoalescesIdenticalInflightRequests)
{
    ServerOptions opts;
    opts.executors = 4;
    Server server(opts);
    server.start();

    metrics::Counter &hits =
        metrics::counter("service.coalesce_hits");

    // A fresh, expensive computation, issued from several
    // connections at once: while the first executor computes it,
    // the others dequeue the duplicates and join the in-flight
    // future. Retry with increasing cost in the (unlikely) event
    // the first burst never overlapped.
    std::string expected;
    for (unsigned attempt = 0; attempt < 5; ++attempt) {
        const std::uint64_t before = hits.value();
        const unsigned trials = 200 << attempt;
        const std::string req = yieldRequest(
            "c", smallConfig(), trials, 1000 + attempt);

        constexpr unsigned kClients = 4;
        std::vector<std::string> replies(kClients);
        std::vector<std::thread> threads;
        for (unsigned c = 0; c < kClients; ++c)
            threads.emplace_back([&, c] {
                Client client("127.0.0.1", server.port());
                replies[c] = client.call(req);
            });
        for (std::thread &t : threads)
            t.join();

        for (unsigned c = 1; c < kClients; ++c)
            EXPECT_EQ(replies[c], replies[0]);
        ASSERT_TRUE(parseReply(replies[0]).ok) << replies[0];
        if (hits.value() > before)
            return; // coalescing observed
    }
    FAIL() << "no coalescing observed in any burst";
}

} // namespace
