/**
 * @file
 * Edge-case tests of the shared JSON reader (common/json_min.hh).
 *
 * The reader started life parsing this repo's own BENCH_*.json
 * reports; since it now also parses untrusted network input for the
 * printedd evaluation service, these tests pin down the hardening
 * behavior: recursion is depth-limited, \u escapes handle (and
 * police) UTF-16 surrogate pairs, trailing garbage is rejected, and
 * overflowing numbers saturate to infinity instead of mis-parsing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "common/json_min.hh"

namespace printed
{
namespace
{

TEST(JsonDepth, NestingWithinTheLimitParses)
{
    std::string doc;
    // Well under json::maxDepth on purpose: documents this repo
    // emits are < 10 deep.
    const std::size_t depth = 32;
    for (std::size_t i = 0; i < depth; ++i)
        doc += "[";
    doc += "1";
    for (std::size_t i = 0; i < depth; ++i)
        doc += "]";
    const json::Value v = json::parse(doc);
    EXPECT_TRUE(v.isArray());
}

TEST(JsonDepth, HostileNestingIsRejectedNotACrash)
{
    // A megabyte of "[" must throw ParseError, not overflow the
    // parser's stack.
    std::string doc(1u << 20, '[');
    EXPECT_THROW(json::parse(doc), json::ParseError);

    // Exactly at the limit parses; one past it does not.
    auto nested = [](std::size_t depth) {
        std::string d(depth, '[');
        d += "0";
        d.append(depth, ']');
        return d;
    };
    EXPECT_NO_THROW(json::parse(nested(json::maxDepth)));
    EXPECT_THROW(json::parse(nested(json::maxDepth + 1)),
                 json::ParseError);

    // Mixed object/array nesting counts against the same limit.
    std::string mixed;
    for (std::size_t i = 0; i < json::maxDepth; ++i)
        mixed += "{\"k\":[";
    EXPECT_THROW(json::parse(mixed), json::ParseError);
}

TEST(JsonStrings, SurrogatePairsDecodeToUtf8)
{
    // U+1F600 (😀) as a \uD83D\uDE00 pair -> 4-byte UTF-8.
    const json::Value v = json::parse("\"\\uD83D\\uDE00\"");
    EXPECT_EQ(v.string, "\xF0\x9F\x98\x80");

    // BMP escapes still produce the 1/2/3-byte encodings.
    EXPECT_EQ(json::parse("\"\\u0041\"").string, "A");
    EXPECT_EQ(json::parse("\"\\u00E9\"").string, "\xC3\xA9");
    EXPECT_EQ(json::parse("\"\\u20AC\"").string, "\xE2\x82\xAC");
}

TEST(JsonStrings, UnpairedSurrogatesAreRejected)
{
    // High surrogate at end of string.
    EXPECT_THROW(json::parse("\"\\uD83D\""), json::ParseError);
    // High surrogate followed by a non-escape.
    EXPECT_THROW(json::parse("\"\\uD83Dx\""), json::ParseError);
    // High surrogate followed by a non-surrogate escape.
    EXPECT_THROW(json::parse("\"\\uD83D\\u0041\""),
                 json::ParseError);
    // Lone low surrogate.
    EXPECT_THROW(json::parse("\"\\uDE00\""), json::ParseError);
    // Truncated hex digits.
    EXPECT_THROW(json::parse("\"\\uD8\""), json::ParseError);
}

TEST(JsonTrailing, GarbageAfterTheDocumentIsRejected)
{
    EXPECT_THROW(json::parse("{} x"), json::ParseError);
    EXPECT_THROW(json::parse("1 2"), json::ParseError);
    EXPECT_THROW(json::parse("[1] ]"), json::ParseError);
    EXPECT_THROW(json::parse("null{}"), json::ParseError);
    // ...but trailing whitespace is fine.
    EXPECT_NO_THROW(json::parse("{\"a\": 1}  \n\t "));
}

TEST(JsonNumbers, HugeMagnitudesSaturateToInfinity)
{
    // Magnitudes beyond double's range parse (strtod semantics)
    // as +/-inf rather than erroring or silently wrapping; the
    // offset into the parse is preserved for real malformations.
    EXPECT_TRUE(std::isinf(json::parse("1e999").number));
    EXPECT_GT(json::parse("1e999").number, 0);
    EXPECT_LT(json::parse("-1e999").number, 0);
    const double big = json::parse("1e308").number;
    EXPECT_TRUE(std::isfinite(big));
    EXPECT_EQ(big, 1e308);
    // Underflow flushes toward zero, still a number.
    EXPECT_NEAR(json::parse("1e-999").number, 0.0, 1e-300);
    // A huge digit string is fine too (no fixed-width accumulator).
    EXPECT_TRUE(std::isinf(
        json::parse(std::string(400, '9')).number));
}

TEST(JsonNumbers, MalformedNumbersStillFail)
{
    EXPECT_THROW(json::parse("1e"), json::ParseError);
    EXPECT_THROW(json::parse("--1"), json::ParseError);
    EXPECT_THROW(json::parse("1.2.3"), json::ParseError);
    EXPECT_THROW(json::parse("+-"), json::ParseError);
    EXPECT_THROW(json::parse("nan"), json::ParseError);
    EXPECT_THROW(json::parse("inf"), json::ParseError);
}

TEST(JsonErrors, OffsetsPointAtTheFailure)
{
    try {
        json::parse("{\"a\": ]");
        FAIL() << "expected ParseError";
    } catch (const json::ParseError &e) {
        EXPECT_EQ(e.offset(), 6u);
    }
    try {
        json::parse("[1, 2] garbage");
        FAIL() << "expected ParseError";
    } catch (const json::ParseError &e) {
        EXPECT_EQ(e.offset(), 7u);
    }
}

TEST(JsonEscapeShared, RoundTripsThroughTheParser)
{
    // The writer-side helpers moved here with the promotion; a
    // string full of specials must survive escape -> parse.
    const std::string nasty =
        "a\"b\\c\nd\te\x01f/\xF0\x9F\x98\x80";
    const json::Value v =
        json::parse(json::jsonQuote(nasty));
    EXPECT_EQ(v.string, nasty);
}

TEST(JsonFuzz, TruncatedFramesNeverCrash)
{
    // Every prefix of a frame with all the tricky constructs must
    // either parse (the full frame) or throw ParseError — never
    // crash, hang, or return a mangled document.
    const std::string frame =
        "{\"id\":\"r1\",\"s\":\"\\uD83D\\uDE00\\n\\\"\",\"n\":"
        "[-1.5e-3,1e308,0.0],\"o\":{\"deep\":[[[{\"x\":null}]]],"
        "\"b\":[true,false]}}";
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
        EXPECT_THROW(json::parse(frame.substr(0, cut)),
                     json::ParseError)
            << "prefix length " << cut;
    }
    EXPECT_NO_THROW(json::parse(frame));
}

TEST(JsonFuzz, MutatedFramesEitherParseOrThrow)
{
    const std::string frame =
        "{\"id\":\"r1\",\"type\":\"yield\",\"config\":"
        "{\"stages\":1,\"width\":8,\"bars\":2},\"trials\":256,"
        "\"seed\":1,\"device_yield\":0.9999}";
    std::uint64_t state = 0x243F6A8885A308D3ULL;
    auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    unsigned parsed = 0;
    unsigned rejected = 0;
    for (unsigned round = 0; round < 2000; ++round) {
        std::string mutated = frame;
        const std::size_t at =
            std::size_t(next() % mutated.size());
        mutated[at] = char(next() & 0xFF);
        try {
            (void)json::parse(mutated);
            ++parsed;
        } catch (const json::ParseError &) {
            ++rejected;
        }
    }
    // Both outcomes must occur (the corpus is neither trivially
    // valid nor trivially broken), and nothing else may happen.
    EXPECT_GT(parsed, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(JsonFuzz, OversizedAndPathologicalInputs)
{
    // A huge flat document parses fine (size is not nesting)...
    std::string flat = "[0";
    for (int i = 1; i < 20000; ++i)
        flat += "," + std::to_string(i);
    flat += "]";
    EXPECT_EQ(json::parse(flat).array.size(), 20000u);

    // ...while hostile nesting and unterminated strings throw.
    EXPECT_THROW(json::parse(std::string(1 << 16, '[')),
                 json::ParseError);
    EXPECT_THROW(json::parse("\"" + std::string(1 << 16, 'a')),
                 json::ParseError);
    EXPECT_THROW(json::parse(std::string(1 << 16, ' ')),
                 json::ParseError);

    // Invalid \u escapes in otherwise valid frames.
    for (const char *bad :
         {"{\"k\":\"\\u12\"}", "{\"k\":\"\\uZZZZ\"}",
          "{\"k\":\"\\uD800x\"}", "{\"k\":\"\\uDC00\"}",
          "{\"k\":\"\\uD800\\u0041\"}"})
        EXPECT_THROW(json::parse(bad), json::ParseError) << bad;
}

} // anonymous namespace
} // namespace printed
