/**
 * @file
 * Protocol-level tests of streaming partial replies (protocol v2):
 * partial frames arrive in strict point order and concatenate
 * byte-identically to the monolithic reply, v1 negotiation falls
 * back cleanly, and a mid-stream disconnect + RetryingClient resume
 * never duplicates or drops a point (reusing the fault_plan
 * drop/truncate machinery).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/json_min.hh"
#include "service/balancer.hh"
#include "service/client.hh"
#include "service/fault_plan.hh"
#include "service/net_io.hh"
#include "service/protocol.hh"
#include "service/server.hh"

namespace
{

using namespace printed;
using namespace printed::service;

SweepSpec
fourPointSpec()
{
    SweepSpec spec;
    spec.stages = {1, 2};
    spec.widths = {4, 8};
    spec.bars = {2};
    return spec;
}

/** A classify search small enough to stream in a few hundred ms:
 *  3 generations -> a 4-point stream (3 summaries + the front). */
ml::ClassifySpec
streamClassifySpec()
{
    ml::ClassifySpec spec;
    spec.dataset.features = 2;
    spec.dataset.classes = 2;
    spec.dataset.bits = 4;
    spec.dataset.train = 48;
    spec.dataset.holdout = 32;
    spec.depth = 2;
    spec.search.generations = 3;
    spec.search.population = 4;
    return spec;
}

TEST(Streaming, PartialsArriveInOrderAndReassembleByteExactly)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const SweepSpec spec = fourPointSpec();
    const std::string monolithic =
        client.call(sweepRequest("w", spec));
    ASSERT_TRUE(parseReply(monolithic).ok) << monolithic;

    client.send(sweepStreamRequest("w", spec));
    std::vector<std::string> points;
    for (;;) {
        const StreamFrame frame = classifyFrame(client.readLine());
        if (frame.kind == StreamFrame::Kind::Partial) {
            EXPECT_EQ(frame.id, "w");
            EXPECT_EQ(frame.index, points.size());
            EXPECT_EQ(frame.total, 4u);
            points.push_back(frame.pointBody);
            continue;
        }
        ASSERT_EQ(frame.kind, StreamFrame::Kind::Done);
        EXPECT_EQ(frame.points, 4u);
        break;
    }
    ASSERT_EQ(points.size(), 4u);

    // Concatenating the streamed point bodies reproduces the PR 5
    // monolithic reply byte-for-byte.
    EXPECT_EQ(assembleStreamedReply("w", RequestType::Sweep, points),
              monolithic);
}

TEST(Streaming, YieldStreamsAsAOnePointStream)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const CoreConfig cfg = CoreConfig::standard(1, 4, 2);
    const std::string monolithic =
        client.call(yieldRequest("y", cfg, 24, 7));
    ASSERT_TRUE(parseReply(monolithic).ok) << monolithic;

    client.send(yieldStreamRequest("y", cfg, 24, 7));
    const StreamFrame partial = classifyFrame(client.readLine());
    ASSERT_EQ(partial.kind, StreamFrame::Kind::Partial);
    EXPECT_EQ(partial.index, 0u);
    EXPECT_EQ(partial.total, 1u);
    const StreamFrame done = classifyFrame(client.readLine());
    ASSERT_EQ(done.kind, StreamFrame::Kind::Done);
    EXPECT_EQ(done.points, 1u);

    EXPECT_EQ(assembleStreamedReply("y", RequestType::Yield,
                                    {partial.pointBody}),
              monolithic);
}

TEST(Streaming, ClassifyStreamReassemblesByteExactly)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const ml::ClassifySpec spec = streamClassifySpec();
    const std::string monolithic =
        client.call(classifyRequest("c", spec));
    ASSERT_TRUE(parseReply(monolithic).ok) << monolithic;

    client.send(classifyStreamRequest("c", spec));
    std::vector<std::string> points;
    for (;;) {
        const StreamFrame frame = classifyFrame(client.readLine());
        if (frame.kind == StreamFrame::Kind::Partial) {
            EXPECT_EQ(frame.id, "c");
            EXPECT_EQ(frame.index, points.size());
            EXPECT_EQ(frame.total, 4u);
            points.push_back(frame.pointBody);
            continue;
        }
        ASSERT_EQ(frame.kind, StreamFrame::Kind::Done);
        EXPECT_EQ(frame.points, 4u);
        break;
    }
    ASSERT_EQ(points.size(), 4u);

    // Generation summaries stream first, the Pareto front last, and
    // reassembly reproduces the monolithic reply byte-for-byte.
    EXPECT_NE(points[0].find("\"generation\": 0"),
              std::string::npos);
    EXPECT_NE(points[3].find("\"front\""), std::string::npos);
    EXPECT_EQ(
        assembleStreamedReply("c", RequestType::Classify, points),
        monolithic);
}

TEST(Streaming, ClassifyResumeFromStartsMidSearch)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    const ml::ClassifySpec spec = streamClassifySpec();
    client.send(classifyStreamRequest("r", spec, /*resumeFrom=*/2));
    const StreamFrame first = classifyFrame(client.readLine());
    ASSERT_EQ(first.kind, StreamFrame::Kind::Partial);
    EXPECT_EQ(first.index, 2u); // earlier generations not re-sent
    const StreamFrame second = classifyFrame(client.readLine());
    ASSERT_EQ(second.kind, StreamFrame::Kind::Partial);
    EXPECT_EQ(second.index, 3u); // the front
    const StreamFrame done = classifyFrame(client.readLine());
    ASSERT_EQ(done.kind, StreamFrame::Kind::Done);
    EXPECT_EQ(done.points, 4u);

    // Resuming past everything answers done without recomputing.
    client.send(classifyStreamRequest("r2", spec, /*resumeFrom=*/4));
    const StreamFrame only = classifyFrame(client.readLine());
    ASSERT_EQ(only.kind, StreamFrame::Kind::Done);
    EXPECT_EQ(only.points, 4u);
}

TEST(Streaming, ResumeFromStartsMidSweep)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());

    client.send(sweepStreamRequest("r", fourPointSpec(),
                                   /*resumeFrom=*/2));
    const StreamFrame first = classifyFrame(client.readLine());
    ASSERT_EQ(first.kind, StreamFrame::Kind::Partial);
    EXPECT_EQ(first.index, 2u); // earlier points are not re-sent
    const StreamFrame second = classifyFrame(client.readLine());
    ASSERT_EQ(second.kind, StreamFrame::Kind::Partial);
    EXPECT_EQ(second.index, 3u);
    const StreamFrame done = classifyFrame(client.readLine());
    ASSERT_EQ(done.kind, StreamFrame::Kind::Done);
    EXPECT_EQ(done.points, 4u); // the stream's total length
}

TEST(Streaming, FrameRenderersAndClassifierRoundTrip)
{
    const std::string partial = partialFrame(
        "id-1", RequestType::Sweep, 3, 24, "{\"gates\": 9}");
    const StreamFrame pf = classifyFrame(partial);
    EXPECT_EQ(pf.kind, StreamFrame::Kind::Partial);
    EXPECT_EQ(pf.id, "id-1");
    EXPECT_EQ(pf.index, 3u);
    EXPECT_EQ(pf.total, 24u);
    EXPECT_EQ(pf.pointBody, "{\"gates\": 9}");

    const StreamFrame df =
        classifyFrame(doneFrame("id-1", RequestType::Sweep, 24));
    EXPECT_EQ(df.kind, StreamFrame::Kind::Done);
    EXPECT_EQ(df.points, 24u);

    // Monolithic and error replies classify as Final.
    EXPECT_EQ(classifyFrame(
                  okReply("x", RequestType::Synth, "{\"g\": 1}"))
                  .kind,
              StreamFrame::Kind::Final);
    EXPECT_EQ(classifyFrame(errorReply("x", errc::queueFull, "no"))
                  .kind,
              StreamFrame::Kind::Final);

    // A degraded-annotated done frame still classifies as Done
    // (the balancer's failover annotation must not break clients).
    const StreamFrame dg = classifyFrame(
        markDegraded(doneFrame("id-1", RequestType::Sweep, 24)));
    EXPECT_EQ(dg.kind, StreamFrame::Kind::Done);
    EXPECT_EQ(dg.points, 24u);
}

TEST(Streaming, RequestLineRoundTripsThroughTheParser)
{
    const std::string line =
        sweepStreamRequest("s", fourPointSpec(), 2, 5000);
    const Request req = parseRequest(line);
    EXPECT_TRUE(req.stream);
    EXPECT_EQ(req.resumeFrom, 2u);
    EXPECT_EQ(requestLine(req), line);

    const Request mono = parseRequest(sweepRequest("s", fourPointSpec()));
    EXPECT_FALSE(mono.stream);
}

TEST(Streaming, V1MonolithicFallbackIsAccepted)
{
    // A v1 server ignores the unknown "stream" field and answers
    // monolithically; the streaming client must accept that as a
    // complete exchange. Fake the v1 server with a canned reply.
    const std::string canned = okReply(
        "w", RequestType::Sweep, "{\"points\": [{\"gates\": 1}]}");

    const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listenFd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listenFd,
                     reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listenFd, 1), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listenFd, reinterpret_cast<sockaddr *>(&addr),
                  &len);
    const std::uint16_t port = ntohs(addr.sin_port);

    std::thread v1([&] {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            return;
        std::string buf;
        char c;
        while (netio::recvSome(fd, &c, 1) == 1 && c != '\n')
            buf.push_back(c);
        const std::string framed = canned + "\n";
        netio::sendAll(fd, framed.data(), framed.size());
        char drain[64];
        while (netio::recvSome(fd, drain, sizeof(drain)) > 0) {
        }
        ::close(fd);
    });

    RetryingClient client("127.0.0.1", port);
    const StreamResult result =
        client.streamSweep("w", fourPointSpec());
    EXPECT_FALSE(result.streamed);
    EXPECT_TRUE(result.points.empty());
    EXPECT_EQ(result.reply.raw, canned);
    EXPECT_TRUE(result.reply.ok);

    client.close();
    v1.join();
    ::close(listenFd);
}

TEST(Streaming, MidStreamDisconnectResumesWithoutDupOrDrop)
{
    Server clean;
    clean.start();
    Client ref("127.0.0.1", clean.port());
    const SweepSpec spec = fourPointSpec();
    const std::string expected = ref.call(sweepRequest("w", spec));

    // A server that drops or truncates ~40% of compute frames:
    // partial frames die mid-stream, forcing resumes.
    ServerOptions opts;
    opts.faultPlan =
        FaultPlan::parse("seed=9,drop=0.25,truncate=0.15");
    Server faulty(opts);
    faulty.start();

    RetryPolicy policy;
    policy.maxLossRetries = 40;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 10;
    policy.jitterSeed = 3;
    RetryingClient client("127.0.0.1", faulty.port(), policy);

    constexpr unsigned kRounds = 8;
    for (unsigned round = 0; round < kRounds; ++round) {
        std::vector<std::uint64_t> seen;
        const StreamResult result = client.streamSweep(
            "w", spec,
            [&](std::uint64_t index, std::uint64_t total,
                const std::string &) {
                EXPECT_EQ(total, 4u);
                seen.push_back(index);
            });
        ASSERT_TRUE(result.reply.ok) << result.reply.raw;
        ASSERT_TRUE(result.streamed);

        // The callback fired exactly once per point, in order —
        // no matter how many resumes the faults forced.
        ASSERT_EQ(seen.size(), 4u);
        for (std::uint64_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i], i);

        // And the assembled reply is byte-identical to the clean
        // monolithic one.
        EXPECT_EQ(result.reply.raw, expected);
    }

    // The chaos must have actually bitten: at least one resume
    // replay picked up mid-stream (not just full-reply retries).
    EXPECT_GT(client.stats().streamResumes, 0u);
}

TEST(Streaming, ClassifyMidSearchDisconnectResumesWithoutDupOrDrop)
{
    Server clean;
    clean.start();
    Client ref("127.0.0.1", clean.port());
    const ml::ClassifySpec spec = streamClassifySpec();
    const std::string expected = ref.call(classifyRequest("c", spec));
    ASSERT_TRUE(parseReply(expected).ok) << expected;

    // A server that drops or truncates ~40% of compute frames:
    // partial frames die mid-search, forcing resumes.
    ServerOptions opts;
    opts.faultPlan =
        FaultPlan::parse("seed=11,drop=0.25,truncate=0.15");
    Server faulty(opts);
    faulty.start();

    RetryPolicy policy;
    policy.maxLossRetries = 40;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 10;
    policy.jitterSeed = 5;
    RetryingClient client("127.0.0.1", faulty.port(), policy);

    constexpr unsigned kRounds = 8;
    for (unsigned round = 0; round < kRounds; ++round) {
        std::vector<std::uint64_t> seen;
        const StreamResult result = client.streamClassify(
            "c", spec,
            [&](std::uint64_t index, std::uint64_t total,
                const std::string &) {
                EXPECT_EQ(total, 4u);
                seen.push_back(index);
            });
        ASSERT_TRUE(result.reply.ok) << result.reply.raw;
        ASSERT_TRUE(result.streamed);

        // The callback fired exactly once per point, in order —
        // no matter how many resumes the faults forced.
        ASSERT_EQ(seen.size(), 4u);
        for (std::uint64_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i], i);

        // And the assembled reply is byte-identical to the clean
        // server's monolithic one: the resumed search re-derives
        // the generations it already streamed bit-identically.
        EXPECT_EQ(result.reply.raw, expected);
    }

    // The chaos must have actually bitten: at least one resume
    // replay picked up mid-stream (not just full-reply retries).
    EXPECT_GT(client.stats().streamResumes, 0u);
}

TEST(Streaming, ClassifyThroughBalancerMatchesDirect)
{
    // One worker behind a balancer that drops ~30% of relayed
    // frames: the streamed classify must failover-resume through
    // the balancer and still assemble byte-identically to a direct
    // single-shard monolithic reply.
    Server worker;
    worker.start();
    Client direct("127.0.0.1", worker.port());
    const ml::ClassifySpec spec = streamClassifySpec();
    const std::string expected =
        direct.call(classifyRequest("c", spec));
    ASSERT_TRUE(parseReply(expected).ok) << expected;

    BalancerOptions bo;
    bo.workers.push_back({"127.0.0.1", worker.port()});
    bo.faultPlan = FaultPlan::parse("seed=17,drop=0.2,truncate=0.1");
    Balancer balancer(bo);
    balancer.start();

    RetryPolicy policy;
    policy.maxLossRetries = 40;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 10;
    policy.jitterSeed = 7;
    RetryingClient client("127.0.0.1", balancer.port(), policy);

    for (unsigned round = 0; round < 4; ++round) {
        const StreamResult result = client.streamClassify("c", spec);
        ASSERT_TRUE(result.reply.ok) << result.reply.raw;
        ASSERT_TRUE(result.streamed);
        ASSERT_EQ(result.points.size(), 4u);
        EXPECT_EQ(result.reply.raw, expected);
    }

    // The balancer also advertises classify in its merged health
    // (the intersection across its one live shard).
    Client admin("127.0.0.1", balancer.port());
    const std::string health =
        admin.call(adminRequest("h", RequestType::Health));
    const json::Value root = json::parse(health);
    const json::Value *types = root.find("result")->find("types");
    ASSERT_NE(types, nullptr) << health;
    bool hasClassify = false;
    for (const json::Value &t : types->array)
        hasClassify = hasClassify || t.string == "classify";
    EXPECT_TRUE(hasClassify) << health;
}

} // namespace
