/**
 * @file
 * Unit tests for the bench JSON helpers (bench/bench_util.hh):
 * RFC 8259 string escaping, scalar rendering (including non-finite
 * doubles), the JsonReport document shape, and argv parsing. The
 * --json reports these helpers produce are consumed by CI and the
 * golden-snapshot tooling, so their output format is a contract.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "bench_util.hh"
#include "common/json_min.hh"

namespace printed
{
namespace
{

using bench::JsonReport;
using bench::JsonValue;
using bench::jsonEscape;
using bench::jsonQuote;
using bench::uintFromArgs;
namespace json = printed::json;

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape(""), "");
    EXPECT_EQ(jsonEscape("mult_8x8"), "mult_8x8");
    EXPECT_EQ(jsonEscape("a b c 123 .,;!?"), "a b c 123 .,;!?");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(jsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
    EXPECT_EQ(jsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, ControlCharactersBecomeU00xx)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\u000ab");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\u0009b");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\u000db");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
    EXPECT_EQ(jsonEscape("\x1f"), "\\u001f");
}

TEST(JsonEscape, LeavesHighBytesVerbatim)
{
    // DEL and multi-byte UTF-8 are legal unescaped in JSON strings;
    // the escaper must not mangle them (and must not sign-extend
    // high bytes into bogus control-character escapes).
    EXPECT_EQ(jsonEscape("\x7f"), "\x7f");
    const std::string utf8 = "\xc2\xb5m"; // µm
    EXPECT_EQ(jsonEscape(utf8), utf8);
}

TEST(JsonValue, RendersScalars)
{
    EXPECT_EQ(JsonValue("s").text(), "\"s\"");
    EXPECT_EQ(JsonValue(std::string("a\"b")).text(), "\"a\\\"b\"");
    EXPECT_EQ(JsonValue(true).text(), "true");
    EXPECT_EQ(JsonValue(false).text(), "false");
    EXPECT_EQ(JsonValue(42).text(), "42");
    EXPECT_EQ(JsonValue(-7).text(), "-7");
    EXPECT_EQ(JsonValue(std::uint64_t(1) << 40).text(),
              "1099511627776");
    EXPECT_EQ(JsonValue(1.5).text(), "1.5");
}

TEST(JsonValue, NonFiniteDoublesBecomeNull)
{
    EXPECT_EQ(
        JsonValue(std::numeric_limits<double>::infinity()).text(),
        "null");
    EXPECT_EQ(
        JsonValue(-std::numeric_limits<double>::infinity()).text(),
        "null");
    EXPECT_EQ(
        JsonValue(std::numeric_limits<double>::quiet_NaN()).text(),
        "null");
}

TEST(JsonReport, WritesWellFormedDocument)
{
    JsonReport jr("unit_test");
    jr.enableMetrics(false); // exact-text comparison below
    jr.meta("threads", 4);
    jr.meta("label", "a\"b");
    jr.add("rows", {{"k", 1}, {"v", 2.5}});
    jr.add("rows", {{"k", 2}, {"v", true}});
    jr.add("other", {{"name", "x"}});

    std::ostringstream os;
    jr.write(os);
    const std::string doc = os.str();

    EXPECT_EQ(doc,
              "{\n"
              "  \"bench\": \"unit_test\",\n"
              "  \"threads\": 4,\n"
              "  \"label\": \"a\\\"b\",\n"
              "  \"rows\": [\n"
              "    {\"k\": 1, \"v\": 2.5},\n"
              "    {\"k\": 2, \"v\": true}\n"
              "  ],\n"
              "  \"other\": [\n"
              "    {\"name\": \"x\"}\n"
              "  ]\n"
              "}\n");
}

TEST(JsonReport, EmptyReportIsStillValid)
{
    JsonReport jr("empty");
    jr.enableMetrics(false); // exact-text comparison below
    std::ostringstream os;
    jr.write(os);
    EXPECT_EQ(os.str(), "{\n  \"bench\": \"empty\"\n}\n");
}

TEST(JsonReport, MetricsBlockParsesAndCarriesRegistryValues)
{
    metrics::counter("test.bench_util.counter").add(41);
    metrics::gauge("test.bench_util.gauge").set(2.5);
    metrics::distribution("test.bench_util.dist").record(3.0);

    JsonReport jr("with_metrics");
    jr.meta("threads", 2);
    jr.add("rows", {{"k", 1}});
    std::ostringstream os;
    jr.write(os);

    const json::Value doc = json::parse(os.str());
    const json::Value *m = doc.find("metrics");
    ASSERT_NE(m, nullptr);
    const json::Value *counters = m->find("counters");
    const json::Value *gauges = m->find("gauges");
    const json::Value *dists = m->find("distributions");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(dists, nullptr);

    const json::Value *c =
        counters->find("test.bench_util.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_GE(c->number, 41.0);
    const json::Value *g = gauges->find("test.bench_util.gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->number, 2.5);
    const json::Value *d = dists->find("test.bench_util.dist");
    ASSERT_NE(d, nullptr);
    ASSERT_NE(d->find("count"), nullptr);
    EXPECT_GE(d->find("count")->number, 1.0);
    ASSERT_NE(d->find("p95"), nullptr);
}

TEST(JsonReport, NonFiniteValuesRoundTripAsNull)
{
    // The writer has no inf/nan to offer a JSON reader; both must
    // come back as null, never as a token that breaks the parse.
    JsonReport jr("nonfinite");
    jr.enableMetrics(false);
    jr.meta("inf", std::numeric_limits<double>::infinity());
    jr.add("rows",
           {{"nan", std::numeric_limits<double>::quiet_NaN()},
            {"ninf", -std::numeric_limits<double>::infinity()},
            {"ok", 1.25}});
    std::ostringstream os;
    jr.write(os);

    const json::Value doc = json::parse(os.str());
    ASSERT_NE(doc.find("inf"), nullptr);
    EXPECT_TRUE(doc.find("inf")->isNull());
    const json::Value *rows = doc.find("rows");
    ASSERT_NE(rows, nullptr);
    ASSERT_EQ(rows->array.size(), 1u);
    EXPECT_TRUE(rows->array[0].find("nan")->isNull());
    EXPECT_TRUE(rows->array[0].find("ninf")->isNull());
    EXPECT_DOUBLE_EQ(rows->array[0].find("ok")->number, 1.25);

    // Flattening skips the nulls instead of inventing zeros.
    const auto flat = json::flattenNumbers(doc);
    EXPECT_EQ(flat.count("rows.0.nan"), 0u);
    EXPECT_EQ(flat.count("rows.0.ok"), 1u);
}

TEST(JsonMin, ParsesEscapesAndRejectsGarbage)
{
    const json::Value v =
        json::parse("{\"a\": \"x\\n\\u0041\", \"b\": [1, 2.5e1]}");
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->string, "x\nA");
    ASSERT_NE(v.find("b"), nullptr);
    EXPECT_DOUBLE_EQ(v.find("b")->array[1].number, 25.0);
    EXPECT_THROW(json::parse("{\"a\": }"), json::ParseError);
    EXPECT_THROW(json::parse("{} trailing"), json::ParseError);
    EXPECT_THROW(json::parse("[1, 2"), json::ParseError);
}

TEST(JsonMin, FlattenKeysArraysByNameField)
{
    const json::Value v = json::parse(
        "{\"engines\": ["
        "{\"engine\": \"scalar\", \"mc_trials_per_s\": 10},"
        "{\"engine\": \"batch\", \"mc_trials_per_s\": 90}]}");
    const auto flat = json::flattenNumbers(v);
    ASSERT_EQ(flat.count("engines.scalar.mc_trials_per_s"), 1u);
    ASSERT_EQ(flat.count("engines.batch.mc_trials_per_s"), 1u);
    EXPECT_DOUBLE_EQ(flat.at("engines.batch.mc_trials_per_s"),
                     90.0);
}

TEST(BenchArgs, UintFromArgsParsesAndDefaults)
{
    const char *argv[] = {"prog", "--trials", "123", "--json",
                          "out.json"};
    char **av = const_cast<char **>(argv);
    EXPECT_EQ(uintFromArgs(5, av, "trials", 7), 123u);
    EXPECT_EQ(uintFromArgs(5, av, "samples", 7), 7u);
    // A flag in the last slot has no value and falls back.
    EXPECT_EQ(uintFromArgs(2, av, "trials", 9), 9u);
    EXPECT_EQ(bench::jsonPathFromArgs(5, av), "out.json");
}

TEST(BenchArgs, JsonPathFallsBackWhenValueIsAFlag)
{
    const char *argv[] = {"prog", "--json", "--trace-out", "t.json"};
    char **av = const_cast<char **>(argv);
    // "--trace-out" must not be swallowed as the report path.
    EXPECT_EQ(bench::jsonPathFromArgs(4, av, "BENCH_sim.json"),
              "BENCH_sim.json");
    EXPECT_EQ(bench::jsonPathFromArgs(4, av), "");
    const char *argv2[] = {"prog", "--json"};
    char **av2 = const_cast<char **>(argv2);
    EXPECT_EQ(bench::jsonPathFromArgs(2, av2, "fallback.json"),
              "fallback.json");
    const char *argv3[] = {"prog"};
    char **av3 = const_cast<char **>(argv3);
    EXPECT_EQ(bench::jsonPathFromArgs(1, av3, "fallback.json"), "");
}

TEST(WallTimer, ElapsedIsMonotonic)
{
    bench::WallTimer t;
    const double a = t.elapsedMs();
    const double b = t.elapsedMs();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
}

} // anonymous namespace
} // namespace printed
