/**
 * @file
 * Unit tests for the bench JSON helpers (bench/bench_util.hh):
 * RFC 8259 string escaping, scalar rendering (including non-finite
 * doubles), the JsonReport document shape, and argv parsing. The
 * --json reports these helpers produce are consumed by CI and the
 * golden-snapshot tooling, so their output format is a contract.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "bench_util.hh"

namespace printed
{
namespace
{

using bench::JsonReport;
using bench::JsonValue;
using bench::jsonEscape;
using bench::jsonQuote;
using bench::uintFromArgs;

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape(""), "");
    EXPECT_EQ(jsonEscape("mult_8x8"), "mult_8x8");
    EXPECT_EQ(jsonEscape("a b c 123 .,;!?"), "a b c 123 .,;!?");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(jsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
    EXPECT_EQ(jsonEscape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, ControlCharactersBecomeU00xx)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\u000ab");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\u0009b");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\u000db");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
    EXPECT_EQ(jsonEscape("\x1f"), "\\u001f");
}

TEST(JsonEscape, LeavesHighBytesVerbatim)
{
    // DEL and multi-byte UTF-8 are legal unescaped in JSON strings;
    // the escaper must not mangle them (and must not sign-extend
    // high bytes into bogus control-character escapes).
    EXPECT_EQ(jsonEscape("\x7f"), "\x7f");
    const std::string utf8 = "\xc2\xb5m"; // µm
    EXPECT_EQ(jsonEscape(utf8), utf8);
}

TEST(JsonValue, RendersScalars)
{
    EXPECT_EQ(JsonValue("s").text(), "\"s\"");
    EXPECT_EQ(JsonValue(std::string("a\"b")).text(), "\"a\\\"b\"");
    EXPECT_EQ(JsonValue(true).text(), "true");
    EXPECT_EQ(JsonValue(false).text(), "false");
    EXPECT_EQ(JsonValue(42).text(), "42");
    EXPECT_EQ(JsonValue(-7).text(), "-7");
    EXPECT_EQ(JsonValue(std::uint64_t(1) << 40).text(),
              "1099511627776");
    EXPECT_EQ(JsonValue(1.5).text(), "1.5");
}

TEST(JsonValue, NonFiniteDoublesBecomeNull)
{
    EXPECT_EQ(
        JsonValue(std::numeric_limits<double>::infinity()).text(),
        "null");
    EXPECT_EQ(
        JsonValue(-std::numeric_limits<double>::infinity()).text(),
        "null");
    EXPECT_EQ(
        JsonValue(std::numeric_limits<double>::quiet_NaN()).text(),
        "null");
}

TEST(JsonReport, WritesWellFormedDocument)
{
    JsonReport jr("unit_test");
    jr.meta("threads", 4);
    jr.meta("label", "a\"b");
    jr.add("rows", {{"k", 1}, {"v", 2.5}});
    jr.add("rows", {{"k", 2}, {"v", true}});
    jr.add("other", {{"name", "x"}});

    std::ostringstream os;
    jr.write(os);
    const std::string doc = os.str();

    EXPECT_EQ(doc,
              "{\n"
              "  \"bench\": \"unit_test\",\n"
              "  \"threads\": 4,\n"
              "  \"label\": \"a\\\"b\",\n"
              "  \"rows\": [\n"
              "    {\"k\": 1, \"v\": 2.5},\n"
              "    {\"k\": 2, \"v\": true}\n"
              "  ],\n"
              "  \"other\": [\n"
              "    {\"name\": \"x\"}\n"
              "  ]\n"
              "}\n");
}

TEST(JsonReport, EmptyReportIsStillValid)
{
    JsonReport jr("empty");
    std::ostringstream os;
    jr.write(os);
    EXPECT_EQ(os.str(), "{\n  \"bench\": \"empty\"\n}\n");
}

TEST(BenchArgs, UintFromArgsParsesAndDefaults)
{
    const char *argv[] = {"prog", "--trials", "123", "--json",
                          "out.json"};
    char **av = const_cast<char **>(argv);
    EXPECT_EQ(uintFromArgs(5, av, "trials", 7), 123u);
    EXPECT_EQ(uintFromArgs(5, av, "samples", 7), 7u);
    // A flag in the last slot has no value and falls back.
    EXPECT_EQ(uintFromArgs(2, av, "trials", 9), 9u);
    EXPECT_EQ(bench::jsonPathFromArgs(5, av), "out.json");
}

TEST(WallTimer, ElapsedIsMonotonic)
{
    bench::WallTimer t;
    const double a = t.elapsedMs();
    const double b = t.elapsedMs();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
}

} // anonymous namespace
} // namespace printed
