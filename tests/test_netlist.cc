/**
 * @file
 * Unit tests for the gate-level netlist IR.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "netlist/netlist.hh"
#include "netlist/stats.hh"

namespace printed
{
namespace
{

TEST(Netlist, BuildSimpleGate)
{
    Netlist nl("t");
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId y = nl.addGate(CellKind::NAND2X1, a, b);
    nl.addOutput("y", y);

    EXPECT_EQ(nl.gateCount(), 1u);
    EXPECT_EQ(nl.inputs().size(), 2u);
    EXPECT_EQ(nl.outputs().size(), 1u);
    EXPECT_NO_THROW(nl.validate());
}

TEST(Netlist, PortLookup)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));
    EXPECT_EQ(nl.inputNet("a"), a);
    EXPECT_THROW(nl.inputNet("nope"), FatalError);
    EXPECT_THROW(nl.outputNet("nope"), FatalError);
}

TEST(Netlist, UndrivenNetFailsValidation)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId floating = nl.addNet("floating");
    nl.addOutput("y", nl.addGate(CellKind::AND2X1, a, floating));
    EXPECT_THROW(nl.validate(), PanicError);
}

TEST(Netlist, SingleInputCellRejectsTwoInputs)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    EXPECT_THROW(nl.addGate(CellKind::INVX1, a, b), PanicError);
}

TEST(Netlist, TwoInputCellRequiresTwoInputs)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    EXPECT_THROW(nl.addGate(CellKind::NAND2X1, a), PanicError);
}

TEST(Netlist, CombinationalCycleDetected)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    // Build a cycle through the feedback mechanism, without a flop.
    const NetId fb = nl.makeFeedback();
    const NetId y = nl.addGate(CellKind::AND2X1, a, fb);
    const NetId z = nl.addGate(CellKind::INVX1, y);
    nl.resolveFeedback(fb, z);
    nl.addOutput("y", y);
    EXPECT_THROW(nl.levelize(), FatalError);
}

TEST(Netlist, FlopBreaksCycle)
{
    Netlist nl;
    const NetId fb = nl.makeFeedback();
    const NetId next = nl.addGate(CellKind::INVX1, fb);
    const NetId q = nl.addFlop(next);
    nl.resolveFeedback(fb, q);
    nl.addOutput("q", q);
    EXPECT_NO_THROW(nl.validate());
    EXPECT_EQ(nl.levelize().size(), 1u); // only the INV
    EXPECT_EQ(nl.flopCount(), 1u);
}

TEST(Netlist, ConstantNetsAreCached)
{
    Netlist nl;
    EXPECT_EQ(nl.constZero(), nl.constZero());
    EXPECT_EQ(nl.constOne(), nl.constOne());
    EXPECT_NE(nl.constZero(), nl.constOne());
}

TEST(Netlist, TristateBusSharing)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId ena = nl.addInput("ena");
    const NetId enb = nl.addInput("enb");
    const NetId bus = nl.addNet("bus");
    nl.addTristate(a, ena, bus);
    nl.addTristate(b, enb, bus);
    nl.addOutput("bus", bus);
    EXPECT_NO_THROW(nl.validate());
    EXPECT_EQ(nl.netDriverCount(bus), 2u);
    std::vector<GateId> drivers;
    nl.forEachDriver(bus, [&](GateId g) {
        drivers.push_back(g);
    });
    EXPECT_EQ(drivers, (std::vector<GateId>{0, 1}));
}

TEST(Netlist, NonTristateSharingRejected)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId en = nl.addInput("en");
    const NetId y = nl.addGate(CellKind::INVX1, a);
    nl.addTristate(a, en, y); // sharing with an INV output
    nl.addOutput("y", y);
    EXPECT_THROW(nl.validate(), PanicError);
}

TEST(Netlist, HistogramCounts)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    nl.addOutput("x", nl.addGate(CellKind::NAND2X1, a, b));
    nl.addOutput("y", nl.addGate(CellKind::NAND2X1, a, b));
    nl.addOutput("z", nl.addFlop(a));
    const auto histo = nl.cellHistogram();
    EXPECT_EQ(histo[std::size_t(CellKind::NAND2X1)], 2u);
    EXPECT_EQ(histo[std::size_t(CellKind::DFFX1)], 1u);
    EXPECT_EQ(histo[std::size_t(CellKind::INVX1)], 0u);
}

TEST(Netlist, RemoveGatesRebuildsDrivers)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId x = nl.addGate(CellKind::INVX1, a);
    const NetId y = nl.addGate(CellKind::INVX1, a);
    nl.addOutput("y", y);
    (void)x;

    std::vector<bool> dead(nl.gateCount(), false);
    dead[0] = true; // remove the x inverter
    nl.removeGates(dead);
    EXPECT_EQ(nl.gateCount(), 1u);
    EXPECT_NO_THROW(nl.levelize());
}

TEST(NetlistUseIndex, CountsFanout)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId x = nl.addGate(CellKind::INVX1, a);
    const NetId y = nl.addGate(CellKind::AND2X1, a, b);
    nl.addOutput("x", x);
    nl.addOutput("y", y);
    EXPECT_EQ(nl.netUseCount(a), 2u);
    EXPECT_EQ(nl.netUseCount(b), 1u);
    EXPECT_EQ(nl.netUseCount(x), 0u);

    std::vector<GateId> readers;
    nl.forEachUse(a, [&](GateId g, unsigned) {
        readers.push_back(g);
    });
    std::sort(readers.begin(), readers.end());
    EXPECT_EQ(readers, (std::vector<GateId>{0, 1}));
}

TEST(NetlistUseIndex, RewireMovesFanoutAndOutputs)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId x = nl.addGate(CellKind::INVX1, a);
    nl.addGate(CellKind::AND2X1, a, b);
    nl.addOutput("x", x);
    nl.addOutput("a_alias", a);
    EXPECT_EQ(nl.netUseCount(a), 2u);

    nl.rewireUses(a, b);
    EXPECT_EQ(nl.netUseCount(a), 0u);
    // b now feeds the INV pin plus both AND pins.
    EXPECT_EQ(nl.netUseCount(b), 3u);
    EXPECT_EQ(nl.outputNet("a_alias"), b);
    EXPECT_NO_THROW(nl.validate());
}

TEST(NetlistUseIndex, SetGateRelinksPins)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId c = nl.addInput("c");
    const NetId y = nl.addGate(CellKind::NAND2X1, a, b);
    nl.addOutput("y", y);

    nl.setGate(0, CellKind::INVX1, c);
    EXPECT_EQ(nl.netUseCount(a), 0u);
    EXPECT_EQ(nl.netUseCount(b), 0u);
    EXPECT_EQ(nl.netUseCount(c), 1u);
    EXPECT_EQ(nl.gate(0).kind, CellKind::INVX1);
    EXPECT_EQ(nl.gate(0).in1, invalidNet);
    EXPECT_NO_THROW(nl.validate());

    // Output nets cannot change, and TSBUFs cannot appear.
    EXPECT_THROW(nl.setGate(0, CellKind::DFFX1, c), PanicError);
    EXPECT_THROW(nl.setGate(0, CellKind::TSBUFX1, a, b), PanicError);
}

TEST(NetlistUseIndex, RewireMatchesScanOracle)
{
    Rng rng(0x5eed1234);
    for (int trial = 0; trial < 20; ++trial) {
        Netlist a("fuzz");
        std::vector<NetId> nets;
        for (int i = 0; i < 6; ++i)
            nets.push_back(a.addInput("i" + std::to_string(i)));
        const CellKind kinds[] = {CellKind::INVX1, CellKind::NAND2X1,
                                  CellKind::XOR2X1, CellKind::AND2X1};
        for (int g = 0; g < 40; ++g) {
            const CellKind k = kinds[rng.below(4)];
            const NetId x = nets[rng.below(nets.size())];
            const NetId y = nets[rng.below(nets.size())];
            nets.push_back(cellInputCount(k) == 2
                               ? a.addGate(k, x, y)
                               : a.addGate(k, x));
        }
        a.addOutput("o", nets.back());

        Netlist b = a;
        for (int r = 0; r < 30; ++r) {
            const NetId from = nets[rng.below(nets.size())];
            const NetId to = nets[rng.below(nets.size())];
            a.rewireUses(from, to);
            b.rewireUsesByScan(from, to);
            ASSERT_EQ(a.gateArray(), b.gateArray());
            ASSERT_EQ(a.outputs()[0].net, b.outputs()[0].net);
            ASSERT_NO_THROW(a.validate());
        }
    }
}

TEST(NetlistCompact, DropsOrphansKeepsPortsAndConsts)
{
    Netlist nl("c");
    const NetId a = nl.addInput("a");
    const NetId orphan1 = nl.addNet("scratch");
    const NetId c0 = nl.constZero();
    const NetId x = nl.addGate(CellKind::INVX1, a);
    const NetId orphan2 = nl.addNet();
    const NetId c1 = nl.constOne();
    nl.addOutput("y", x);

    const std::size_t before = nl.netCount();
    const std::vector<NetId> remap = nl.compact();
    ASSERT_EQ(remap.size(), before);
    EXPECT_EQ(nl.netCount(), before - 2);
    EXPECT_EQ(remap[orphan1], invalidNet);
    EXPECT_EQ(remap[orphan2], invalidNet);

    // Stability: ids only shift down past dropped nets.
    EXPECT_EQ(remap[a], a);
    EXPECT_EQ(nl.inputNet("a"), a);
    EXPECT_EQ(nl.outputNet("y"), remap[x]);
    EXPECT_EQ(nl.constZeroId(), remap[c0]);
    EXPECT_EQ(nl.constOneId(), remap[c1]);
    EXPECT_EQ(nl.netSource(nl.constZeroId()), NetSource::Const0);
    EXPECT_EQ(nl.netSource(nl.constOneId()), NetSource::Const1);
    EXPECT_EQ(nl.netName(remap[x]), "");
    EXPECT_NO_THROW(nl.validate());

    // Already-dense netlist: compact is the identity.
    const std::vector<NetId> again = nl.compact();
    for (NetId n = 0; n < again.size(); ++n)
        EXPECT_EQ(again[n], n);
}

TEST(NetlistCompact, RemoveGatesReturnsRemap)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addGate(CellKind::INVX1, a);
    const NetId y = nl.addGate(CellKind::INVX1, a);
    nl.addOutput("y", y);

    std::vector<bool> dead(nl.gateCount(), false);
    dead[0] = true;
    const std::vector<GateId> remap = nl.removeGates(dead);
    ASSERT_EQ(remap.size(), 2u);
    EXPECT_EQ(remap[0], invalidGate);
    EXPECT_EQ(remap[1], 0u);
    EXPECT_EQ(nl.gateOut(0), y);
}

TEST(NetlistStats, DepthOfChain)
{
    Netlist nl;
    NetId n = nl.addInput("a");
    for (int i = 0; i < 5; ++i)
        n = nl.addGate(CellKind::INVX1, n);
    nl.addOutput("y", n);
    const NetlistStats stats = computeStats(nl);
    EXPECT_EQ(stats.logicDepth, 5u);
    EXPECT_EQ(stats.totalGates, 5u);
    EXPECT_EQ(stats.combGates, 5u);
    EXPECT_EQ(stats.seqGates, 0u);
}

} // anonymous namespace
} // namespace printed
