/**
 * @file
 * Differential fuzzing: randomly generated TP-ISA programs run on
 * the instruction-set simulator and on synthesized gate-level
 * cores (1- and 2-stage), and the complete data-memory images must
 * match. Programs use every instruction class; control flow is
 * restricted to forward branches so every program terminates.
 */

#include <gtest/gtest.h>

#include "arch/machine.hh"
#include "common/rng.hh"
#include "core/cosim.hh"
#include "core/generator.hh"
#include "isa/program.hh"

namespace printed
{
namespace
{

// Full address space: every effective address (BAR + offset mod 256)
// is in range by construction, so random pointer mutation is safe.
constexpr std::size_t fuzzDmemWords = 256;

/** Generate a random, terminating TP-ISA program. */
Program
randomProgram(Rng &rng, const IsaConfig &isa, std::size_t length)
{
    Program p;
    p.name = "fuzz";
    p.isa = isa;

    auto rand_operand = [&] {
        // Address within the small data memory; occasionally via
        // BAR1 (whose value stays within range: SETBAR sources are
        // memory words we keep small below).
        const bool use_bar =
            isa.barCount > 1 && rng.below(4) == 0;
        const unsigned off = unsigned(rng.below(32));
        return makeOperand(use_bar ? 1 : 0, off, isa);
    };

    static const Mnemonic pool[] = {
        Mnemonic::ADD, Mnemonic::ADC, Mnemonic::SUB, Mnemonic::CMP,
        Mnemonic::SBB, Mnemonic::AND, Mnemonic::TEST, Mnemonic::OR,
        Mnemonic::XOR, Mnemonic::NOT, Mnemonic::RL, Mnemonic::RLC,
        Mnemonic::RR, Mnemonic::RRC, Mnemonic::RRA, Mnemonic::STORE,
        Mnemonic::STORE, Mnemonic::SETBAR, Mnemonic::BR,
        Mnemonic::BRN};

    for (std::size_t pc = 0; pc < length; ++pc) {
        Instruction inst;
        inst.mnemonic = pool[rng.below(std::size(pool))];
        if (isBranch(inst.mnemonic)) {
            if (pc + 2 >= length) {
                inst.mnemonic = Mnemonic::TEST; // no room forward
                inst.op1 = rand_operand();
                inst.op2 = rand_operand();
            } else {
                // Strictly forward target: guarantees termination.
                inst.op1 = std::uint8_t(
                    pc + 1 + rng.below(length - pc - 1));
                inst.op2 = std::uint8_t(rng.below(16));
            }
        } else if (inst.mnemonic == Mnemonic::STORE) {
            inst.op1 = rand_operand();
            inst.op2 = std::uint8_t(rng.below(256));
        } else if (inst.mnemonic == Mnemonic::SETBAR) {
            inst.op1 = rand_operand();
            inst.op2 = 1;
        } else {
            inst.op1 = rand_operand();
            inst.op2 = rand_operand();
        }
        p.code.push_back(inst);
    }
    p.check();
    return p;
}

class FuzzTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FuzzTest, IssMatchesGatesAcrossRandomPrograms)
{
    const unsigned stages = GetParam();
    Rng rng(0xF00D + stages);
    const IsaConfig isa; // 8-bit, 2 BARs

    // Build the core once; run many programs through it.
    const CoreConfig cfg = CoreConfig::standard(stages, 8, 2);
    const Netlist nl = buildCore(cfg);

    for (int trial = 0; trial < 30; ++trial) {
        Program p = randomProgram(rng, isa, 24);

        TpIsaMachine iss(p, fuzzDmemWords);
        iss.run(10'000);
        ASSERT_NE(iss.stats().halt, HaltReason::MaxSteps);

        CoreCosim cosim(nl, cfg, p, fuzzDmemWords);
        cosim.run(50'000);

        for (std::size_t a = 0; a < fuzzDmemWords; ++a)
            ASSERT_EQ(cosim.mem(a), iss.mem(a))
                << "stages " << stages << " trial " << trial
                << " mem[" << a << "]\n"
                << disassemble(p);
    }
}

INSTANTIATE_TEST_SUITE_P(Pipelines, FuzzTest,
                         ::testing::Values(1u, 2u),
                         [](const auto &info) {
                             return "p" +
                                    std::to_string(info.param);
                         });

} // anonymous namespace
} // namespace printed
