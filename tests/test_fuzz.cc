/**
 * @file
 * Differential fuzzing: randomly generated TP-ISA programs run on
 * the instruction-set simulator and on synthesized gate-level
 * cores (1-, 2-, and 3-stage), and the complete data-memory images
 * must match. Programs use every instruction class; control flow is
 * restricted to forward branches so every program terminates.
 *
 * Two program distributions are fuzzed per pipeline depth: the
 * balanced mix, and a BAR-heavy mix on the 4-BAR ISA that leans on
 * SET-BAR and BAR-relative addressing (the pointer idiom the
 * looping kernels use, and the logic program-specific cores prune
 * — historically the least-covered decode path).
 *
 * The per-test trial count defaults to 30 and can be raised for CI
 * nightlies via the PRINTED_FUZZ_TRIALS environment variable.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "arch/machine.hh"
#include "common/rng.hh"
#include "core/cosim.hh"
#include "core/generator.hh"
#include "isa/program.hh"

namespace printed
{
namespace
{

// Full address space: every effective address (BAR + offset mod 256)
// is in range by construction, so random pointer mutation is safe.
constexpr std::size_t fuzzDmemWords = 256;

/** Trial count: PRINTED_FUZZ_TRIALS env var, default 30. */
int
fuzzTrials()
{
    if (const char *env = std::getenv("PRINTED_FUZZ_TRIALS")) {
        try {
            const int n = std::stoi(env);
            if (n > 0)
                return n;
        } catch (const std::exception &) {
            // fall through to the default
        }
    }
    return 30;
}

/** Knobs of the random program distribution. */
struct FuzzProfile
{
    unsigned barCount = 2;  ///< ISA BAR registers
    unsigned barBias = 4;   ///< 1-in-N operands address via a BAR
    bool barHeavy = false;  ///< extra SET-BARs in the opcode mix
};

/** Generate a random, terminating TP-ISA program. */
Program
randomProgram(Rng &rng, const IsaConfig &isa, std::size_t length,
              const FuzzProfile &profile)
{
    Program p;
    p.name = "fuzz";
    p.isa = isa;

    auto rand_operand = [&] {
        // Address within the small data memory; occasionally via a
        // random writable BAR (whose value may be any byte: the
        // 8-bit effective address always lands inside the 256-word
        // memory).
        const bool use_bar =
            isa.barCount > 1 && rng.below(profile.barBias) == 0;
        const unsigned bar =
            use_bar ? 1 + unsigned(rng.below(isa.barCount - 1)) : 0;
        const unsigned off = unsigned(rng.below(32));
        return makeOperand(bar, off, isa);
    };

    static const Mnemonic pool[] = {
        Mnemonic::ADD, Mnemonic::ADC, Mnemonic::SUB, Mnemonic::CMP,
        Mnemonic::SBB, Mnemonic::AND, Mnemonic::TEST, Mnemonic::OR,
        Mnemonic::XOR, Mnemonic::NOT, Mnemonic::RL, Mnemonic::RLC,
        Mnemonic::RR, Mnemonic::RRC, Mnemonic::RRA, Mnemonic::STORE,
        Mnemonic::STORE, Mnemonic::SETBAR, Mnemonic::BR,
        Mnemonic::BRN};
    static const Mnemonic barPool[] = {
        Mnemonic::SETBAR, Mnemonic::SETBAR, Mnemonic::SETBAR,
        Mnemonic::ADD,    Mnemonic::SUB,    Mnemonic::XOR,
        Mnemonic::STORE,  Mnemonic::STORE,  Mnemonic::RL,
        Mnemonic::BR,     Mnemonic::BRN};

    for (std::size_t pc = 0; pc < length; ++pc) {
        Instruction inst;
        inst.mnemonic =
            profile.barHeavy
                ? barPool[rng.below(std::size(barPool))]
                : pool[rng.below(std::size(pool))];
        if (isBranch(inst.mnemonic)) {
            if (pc + 2 >= length) {
                inst.mnemonic = Mnemonic::TEST; // no room forward
                inst.op1 = rand_operand();
                inst.op2 = rand_operand();
            } else {
                // Strictly forward target: guarantees termination.
                inst.op1 = std::uint8_t(
                    pc + 1 + rng.below(length - pc - 1));
                inst.op2 = std::uint8_t(rng.below(16));
            }
        } else if (inst.mnemonic == Mnemonic::STORE) {
            inst.op1 = rand_operand();
            inst.op2 = std::uint8_t(rng.below(256));
        } else if (inst.mnemonic == Mnemonic::SETBAR) {
            inst.op1 = rand_operand();
            inst.op2 = std::uint8_t(
                1 + rng.below(isa.barCount > 1 ? isa.barCount - 1
                                               : 1));
        } else {
            inst.op1 = rand_operand();
            inst.op2 = rand_operand();
        }
        p.code.push_back(inst);
    }
    p.check();
    return p;
}

void
fuzzPipeline(unsigned stages, const FuzzProfile &profile,
             std::uint64_t seed)
{
    Rng rng(seed);
    IsaConfig isa;
    isa.barCount = profile.barCount;

    // Build the core once; run many programs through it.
    const CoreConfig cfg =
        CoreConfig::standard(stages, 8, profile.barCount);
    const Netlist nl = buildCore(cfg);

    const int trials = fuzzTrials();
    for (int trial = 0; trial < trials; ++trial) {
        Program p = randomProgram(rng, isa, 24, profile);

        TpIsaMachine iss(p, fuzzDmemWords);
        iss.run(10'000);
        ASSERT_NE(iss.stats().halt, HaltReason::MaxSteps);

        CoreCosim cosim(nl, cfg, p, fuzzDmemWords);
        cosim.run(50'000);

        for (std::size_t a = 0; a < fuzzDmemWords; ++a)
            ASSERT_EQ(cosim.mem(a), iss.mem(a))
                << "stages " << stages << " trial " << trial
                << " mem[" << a << "]\n"
                << disassemble(p);
    }
}

class FuzzTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(FuzzTest, IssMatchesGatesAcrossRandomPrograms)
{
    const unsigned stages = GetParam();
    fuzzPipeline(stages, FuzzProfile{}, 0xF00D + stages);
}

TEST_P(FuzzTest, IssMatchesGatesOnBarHeavyPrograms)
{
    const unsigned stages = GetParam();
    FuzzProfile profile;
    profile.barCount = 4;
    profile.barBias = 2; // half of all operands go through a BAR
    profile.barHeavy = true;
    fuzzPipeline(stages, profile, 0xBA55 + stages);
}

INSTANTIATE_TEST_SUITE_P(Pipelines, FuzzTest,
                         ::testing::Values(1u, 2u, 3u),
                         [](const auto &info) {
                             return "p" +
                                    std::to_string(info.param);
                         });

} // anonymous namespace
} // namespace printed
