/**
 * @file
 * Tests for the structural synthesis generators: every datapath
 * block is verified against a golden C++ model by gate-level
 * simulation, across parameterized width sweeps and randomized
 * operand sets (property-style testing).
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "netlist/netlist.hh"
#include "sim/simulator.hh"
#include "synth/blocks.hh"
#include "synth/opt.hh"

namespace printed
{
namespace
{

using namespace synth;

// ----------------------------------------------------------------
// Adders (parameterized over width)
// ----------------------------------------------------------------

class AdderWidthTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(AdderWidthTest, RippleAdderMatchesGolden)
{
    const unsigned width = GetParam();
    Netlist nl("adder");
    const Bus a = busInputs(nl, "a", width);
    const Bus b = busInputs(nl, "b", width);
    const NetId cin = nl.addInput("cin");
    const AddResult res = rippleAdder(nl, a, b, cin);
    busOutputs(nl, "sum", res.sum);
    nl.addOutput("cout", res.carryOut);
    nl.addOutput("ovf", res.overflow);

    GateSimulator sim(nl);
    Rng rng(width);
    for (int iter = 0; iter < 200; ++iter) {
        const std::uint64_t av = rng.bits(width);
        const std::uint64_t bv = rng.bits(width);
        const bool cv = rng.flip();
        sim.setBus(a, av);
        sim.setBus(b, bv);
        sim.setInput(cin, cv);
        sim.evaluate();

        const std::uint64_t full = av + bv + (cv ? 1 : 0);
        EXPECT_EQ(sim.readBus(res.sum), full & maskBits(width));
        EXPECT_EQ(sim.value(res.carryOut), bool(bit(full, width)));

        const std::int64_t sa = signExtend(av, width);
        const std::int64_t sb = signExtend(bv, width);
        const std::int64_t ssum = sa + sb + (cv ? 1 : 0);
        const bool ovf =
            ssum != signExtend(std::uint64_t(ssum), width);
        EXPECT_EQ(sim.value(res.overflow), ovf)
            << av << "+" << bv << "+" << cv << " width " << width;
    }
}

TEST_P(AdderWidthTest, AddSubMatchesGolden)
{
    const unsigned width = GetParam();
    Netlist nl("addsub");
    const Bus a = busInputs(nl, "a", width);
    const Bus b = busInputs(nl, "b", width);
    const NetId sub = nl.addInput("sub");
    const NetId cin = nl.addInput("cin");
    const AddResult res = rippleAddSub(nl, a, b, sub, cin);
    busOutputs(nl, "sum", res.sum);
    nl.addOutput("cout", res.carryOut);

    GateSimulator sim(nl);
    Rng rng(width * 17);
    for (int iter = 0; iter < 200; ++iter) {
        const std::uint64_t av = rng.bits(width);
        const std::uint64_t bv = rng.bits(width);
        const bool sv = rng.flip();
        // Convention: carry-in is the raw adder carry; for SUB the
        // caller passes !borrow (1 for plain SUB).
        const bool cv = rng.flip();
        sim.setBus(a, av);
        sim.setBus(b, bv);
        sim.setInput(sub, sv);
        sim.setInput(cin, cv);
        sim.evaluate();

        const std::uint64_t beff =
            sv ? (~bv & maskBits(width)) : bv;
        const std::uint64_t full = av + beff + (cv ? 1 : 0);
        EXPECT_EQ(sim.readBus(res.sum), full & maskBits(width));
        EXPECT_EQ(sim.value(res.carryOut), bool(bit(full, width)));
    }
}

TEST_P(AdderWidthTest, IncrementerMatchesGolden)
{
    const unsigned width = GetParam();
    Netlist nl("inc");
    const Bus a = busInputs(nl, "a", width);
    const Bus out = incrementer(nl, a);
    busOutputs(nl, "y", out);

    GateSimulator sim(nl);
    for (std::uint64_t v = 0; v < std::min<std::uint64_t>(
             256, std::uint64_t(1) << width); ++v) {
        sim.setBus(a, v);
        sim.evaluate();
        EXPECT_EQ(sim.readBus(out), (v + 1) & maskBits(width));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

// ----------------------------------------------------------------
// Logic, reduction, selection
// ----------------------------------------------------------------

TEST(SynthBlocks, BusLogicOps)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 8);
    const Bus b = busInputs(nl, "b", 8);
    const Bus band = busAnd(nl, a, b);
    const Bus bor = busOr(nl, a, b);
    const Bus bxor = busXor(nl, a, b);
    const Bus bnot = busNot(nl, a);
    busOutputs(nl, "and", band);
    busOutputs(nl, "or", bor);
    busOutputs(nl, "xor", bxor);
    busOutputs(nl, "not", bnot);

    GateSimulator sim(nl);
    Rng rng(3);
    for (int iter = 0; iter < 100; ++iter) {
        const std::uint64_t av = rng.bits(8);
        const std::uint64_t bv = rng.bits(8);
        sim.setBus(a, av);
        sim.setBus(b, bv);
        sim.evaluate();
        EXPECT_EQ(sim.readBus(band), av & bv);
        EXPECT_EQ(sim.readBus(bor), av | bv);
        EXPECT_EQ(sim.readBus(bxor), av ^ bv);
        EXPECT_EQ(sim.readBus(bnot), ~av & 0xff);
    }
}

TEST(SynthBlocks, Reductions)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 5);
    nl.addOutput("and", andReduce(nl, a));
    nl.addOutput("or", orReduce(nl, a));
    nl.addOutput("zero", isZero(nl, a));

    GateSimulator sim(nl);
    for (std::uint64_t v = 0; v < 32; ++v) {
        sim.setBus(a, v);
        sim.evaluate();
        EXPECT_EQ(sim.output("and"), v == 31);
        EXPECT_EQ(sim.output("or"), v != 0);
        EXPECT_EQ(sim.output("zero"), v == 0);
    }
}

TEST(SynthBlocks, Mux2AndBusMux)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 4);
    const Bus b = busInputs(nl, "b", 4);
    const NetId sel = nl.addInput("sel");
    busOutputs(nl, "y", busMux2(nl, sel, a, b));
    const Bus y = {nl.outputNet("y[0]"), nl.outputNet("y[1]"),
                   nl.outputNet("y[2]"), nl.outputNet("y[3]")};

    GateSimulator sim(nl);
    sim.setBus(a, 0x5);
    sim.setBus(b, 0xa);
    sim.setInput(sel, false);
    sim.evaluate();
    EXPECT_EQ(sim.readBus(y), 0x5u);
    sim.setInput(sel, true);
    sim.evaluate();
    EXPECT_EQ(sim.readBus(y), 0xau);
}

TEST(SynthBlocks, OneHotMux)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 4);
    const Bus b = busInputs(nl, "b", 4);
    const Bus c = busInputs(nl, "c", 4);
    const NetId sa = nl.addInput("sa");
    const NetId sb = nl.addInput("sb");
    const NetId sc = nl.addInput("sc");
    const Bus y = busMuxOneHot(nl, {sa, sb, sc}, {a, b, c});
    busOutputs(nl, "y", y);

    GateSimulator sim(nl);
    sim.setBus(a, 1);
    sim.setBus(b, 2);
    sim.setBus(c, 3);
    sim.setInput(sa, false);
    sim.setInput(sb, true);
    sim.setInput(sc, false);
    sim.evaluate();
    EXPECT_EQ(sim.readBus(y), 2u);
    sim.setInput(sb, false);
    sim.setInput(sc, true);
    sim.evaluate();
    EXPECT_EQ(sim.readBus(y), 3u);
    sim.setInput(sc, false);
    sim.evaluate();
    EXPECT_EQ(sim.readBus(y), 0u); // nothing selected
}

TEST(SynthBlocks, BinaryDecoder)
{
    Netlist nl;
    const Bus sel = busInputs(nl, "sel", 3);
    const auto hot = binaryDecoder(nl, sel);
    ASSERT_EQ(hot.size(), 8u);
    for (std::size_t i = 0; i < hot.size(); ++i)
        nl.addOutput("h" + std::to_string(i), hot[i]);

    GateSimulator sim(nl);
    for (std::uint64_t v = 0; v < 8; ++v) {
        sim.setBus(sel, v);
        sim.evaluate();
        for (std::size_t i = 0; i < 8; ++i)
            EXPECT_EQ(sim.value(hot[i]), i == v);
    }
}

TEST(SynthBlocks, DecoderWithLimit)
{
    Netlist nl;
    const Bus sel = busInputs(nl, "sel", 4);
    const auto hot = binaryDecoder(nl, sel, 10);
    EXPECT_EQ(hot.size(), 10u);
}

TEST(SynthBlocks, EqualsConst)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 6);
    nl.addOutput("eq", equalsConst(nl, a, 42));
    GateSimulator sim(nl);
    for (std::uint64_t v = 0; v < 64; ++v) {
        sim.setBus(a, v);
        sim.evaluate();
        EXPECT_EQ(sim.output("eq"), v == 42);
    }
}

// ----------------------------------------------------------------
// Rotates
// ----------------------------------------------------------------

TEST(SynthBlocks, RotatesMatchGolden)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 8);
    const NetId cin = nl.addInput("cin");
    const auto rl = rotateLeft1(a);
    const auto rlc = rotateLeft1Carry(a, cin);
    const auto rr = rotateRight1(a);
    const auto rrc = rotateRight1Carry(a, cin);
    const auto rra = shiftRightArith1(a);
    busOutputs(nl, "rl", rl.data);
    busOutputs(nl, "rlc", rlc.data);
    busOutputs(nl, "rr", rr.data);
    busOutputs(nl, "rrc", rrc.data);
    busOutputs(nl, "rra", rra.data);

    GateSimulator sim(nl);
    Rng rng(11);
    for (int iter = 0; iter < 100; ++iter) {
        const std::uint64_t v = rng.bits(8);
        const bool cv = rng.flip();
        sim.setBus(a, v);
        sim.setInput(cin, cv);
        sim.evaluate();

        EXPECT_EQ(sim.readBus(rl.data),
                  ((v << 1) | (v >> 7)) & 0xff);
        EXPECT_EQ(sim.value(rl.carryOut), bool(v >> 7));
        EXPECT_EQ(sim.readBus(rlc.data),
                  ((v << 1) | (cv ? 1 : 0)) & 0xff);
        EXPECT_EQ(sim.readBus(rr.data),
                  ((v >> 1) | ((v & 1) << 7)) & 0xff);
        EXPECT_EQ(sim.value(rr.carryOut), bool(v & 1));
        EXPECT_EQ(sim.readBus(rrc.data),
                  ((v >> 1) | ((cv ? 1ull : 0ull) << 7)) & 0xff);
        EXPECT_EQ(sim.readBus(rra.data),
                  std::uint64_t(std::uint8_t(std::int8_t(v) >> 1)));
    }
}

// ----------------------------------------------------------------
// Registers
// ----------------------------------------------------------------

TEST(SynthBlocks, RegisterEnableHoldsValue)
{
    Netlist nl;
    const Bus d = busInputs(nl, "d", 4);
    const NetId en = nl.addInput("en");
    const NetId rn = nl.addInput("rn");
    const Bus q = registerEnable(nl, d, en, rn);
    busOutputs(nl, "q", q);

    GateSimulator sim(nl);
    sim.setInput(rn, true);
    sim.setBus(d, 0x9);
    sim.setInput(en, true);
    sim.cycle();
    EXPECT_EQ(sim.readBus(q), 0x9u);

    sim.setBus(d, 0x3);
    sim.setInput(en, false);
    sim.cycle();
    EXPECT_EQ(sim.readBus(q), 0x9u); // held

    sim.setInput(en, true);
    sim.cycle();
    EXPECT_EQ(sim.readBus(q), 0x3u);

    sim.setInput(rn, false);
    sim.evaluate();
    EXPECT_EQ(sim.readBus(q), 0x0u); // async reset
}

// ----------------------------------------------------------------
// Optimizer: equivalence-preserving cleanup
// ----------------------------------------------------------------

TEST(Optimizer, FoldsConstantAdder)
{
    // An adder with one constant operand should shrink markedly.
    Netlist nl("pc_inc");
    const Bus a = busInputs(nl, "a", 8);
    const Bus one = busConst(nl, 8, 1);
    const AddResult res = rippleAdder(nl, a, one, nl.constZero());
    busOutputs(nl, "y", res.sum);

    const std::size_t before = nl.gateCount();
    const OptStats stats = optimize(nl);
    EXPECT_LE(stats.gatesAfter, before / 2);

    GateSimulator sim(nl);
    const Bus y_out = res.sum; // nets survive optimization
    for (std::uint64_t v = 0; v < 256; ++v) {
        sim.setBus(a, v);
        sim.evaluate();
        std::uint64_t got = 0;
        for (std::size_t i = 0; i < 8; ++i)
            if (sim.value(nl.outputNet("y[" + std::to_string(i) +
                                       "]")))
                got |= 1u << i;
        EXPECT_EQ(got, (v + 1) & 0xff);
    }
    (void)y_out;
}

TEST(Optimizer, RemovesInverterPairs)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId x = nl.addGate(CellKind::INVX1, a);
    const NetId y = nl.addGate(CellKind::INVX1, x);
    nl.addOutput("y", y);
    const OptStats stats = optimize(nl);
    EXPECT_EQ(stats.gatesAfter, 0u);
    // Output must now be wired straight to the input.
    EXPECT_EQ(nl.outputNet("y"), a);
}

TEST(Optimizer, SharesDuplicateGates)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId x = nl.addGate(CellKind::AND2X1, a, b);
    const NetId y = nl.addGate(CellKind::AND2X1, b, a); // commuted dup
    nl.addOutput("x", x);
    nl.addOutput("y", y);
    const OptStats stats = optimize(nl);
    EXPECT_EQ(stats.gatesAfter, 1u);
    EXPECT_EQ(nl.outputNet("x"), nl.outputNet("y"));
}

TEST(Optimizer, SweepsDeadLogic)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addGate(CellKind::INVX1, a); // dead
    const NetId live = nl.addGate(CellKind::INVX1, a);
    nl.addOutput("y", live);
    const OptStats stats = optimize(nl);
    EXPECT_EQ(stats.gatesAfter, 1u);
    EXPECT_GE(stats.deadRemoved, 1u);
}

TEST(Optimizer, PreservesRandomLogicFunction)
{
    // Property test: build a random DAG of gates over 6 inputs,
    // snapshot its truth table, optimize, and compare.
    Rng rng(2024);
    for (int trial = 0; trial < 10; ++trial) {
        Netlist nl("random");
        const Bus in = busInputs(nl, "x", 6);
        std::vector<NetId> pool(in.begin(), in.end());
        pool.push_back(nl.constZero());
        pool.push_back(nl.constOne());
        static const CellKind kinds[] = {
            CellKind::INVX1, CellKind::NAND2X1, CellKind::NOR2X1,
            CellKind::AND2X1, CellKind::OR2X1, CellKind::XOR2X1,
            CellKind::XNOR2X1};
        for (int g = 0; g < 40; ++g) {
            const CellKind kind = kinds[rng.below(7)];
            const NetId a = pool[rng.below(pool.size())];
            if (cellInputCount(kind) == 1) {
                pool.push_back(nl.addGate(kind, a));
            } else {
                const NetId b = pool[rng.below(pool.size())];
                pool.push_back(nl.addGate(kind, a, b));
            }
        }
        nl.addOutput("y", pool.back());

        std::array<bool, 64> truth{};
        {
            GateSimulator sim(nl);
            for (std::uint64_t v = 0; v < 64; ++v) {
                sim.setBus(in, v);
                sim.evaluate();
                truth[v] = sim.output("y");
            }
        }
        optimize(nl);
        {
            GateSimulator sim(nl);
            for (std::uint64_t v = 0; v < 64; ++v) {
                sim.setBus(in, v);
                sim.evaluate();
                EXPECT_EQ(sim.output("y"), truth[v])
                    << "trial " << trial << " input " << v;
            }
        }
    }
}

} // anonymous namespace
} // namespace printed
