/**
 * @file
 * Tests for program-specific ISA specialization (Section 7 /
 * Table 7): static analysis results, shrunk core configurations,
 * area/power gains, and gate-level equivalence of specialized
 * cores running transcoded programs.
 */

#include <gtest/gtest.h>

#include "analysis/characterize.hh"
#include "core/cosim.hh"
#include "core/generator.hh"
#include "progspec/analyze.hh"
#include "progspec/specialize.hh"
#include "workloads/kernels.hh"

namespace printed
{
namespace
{

TEST(ProgSpec, MultAnalysis)
{
    // Table 7 mult row: PC 4 bits, no BARs.
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const auto a = analyzeProgram(wl.program, wl.dmemWords);
    EXPECT_LE(a.pcBits, 4u);
    EXPECT_EQ(a.writableBars, 0u);
    EXPECT_LT(a.instructionBits(), 24u);
    // Our mult uses C (shift/branch) and Z (loop) flags.
    EXPECT_LE(a.flagCount, 2u);
}

TEST(ProgSpec, DivAnalysisMatchesTable7Flags)
{
    // Table 7 div row: 2 flags, no BARs, 20-bit instructions.
    const Workload wl = makeWorkload(Kernel::Div, 8, 8);
    const auto a = analyzeProgram(wl.program, wl.dmemWords);
    EXPECT_EQ(a.flagCount, 2u);
    EXPECT_EQ(a.writableBars, 0u);
    EXPECT_LE(a.pcBits, 5u); // ours is tighter than the paper's 5
    EXPECT_LE(a.instructionBits(), 20u);
}

TEST(ProgSpec, DTreeKeepsEightBitPc)
{
    // Table 7 dTree row: PC 8 bits (256 instructions), 24-bit
    // instructions (branch targets need full-width operands).
    const Workload wl = makeWorkload(Kernel::DTree, 8, 8);
    const auto a = analyzeProgram(wl.program, wl.dmemWords);
    EXPECT_EQ(a.pcBits, 8u);
    EXPECT_EQ(a.writableBars, 0u);
    EXPECT_EQ(a.flagCount, 1u); // only C is branched on
    EXPECT_GE(a.instructionBits(), 20u);
}

TEST(ProgSpec, InSortUsesOneBar)
{
    // Table 7 inSort row: 1 writable BAR, small BAR width.
    const Workload wl = makeWorkload(Kernel::InSort, 8, 8);
    const auto a = analyzeProgram(wl.program, wl.dmemWords);
    EXPECT_EQ(a.writableBars, 1u);
    EXPECT_EQ(a.pcBits, 5u);
    EXPECT_LE(a.barBits, 5u);
    EXPECT_EQ(a.flagCount, 2u);
}

TEST(ProgSpec, IntAvgNeedsFewFlags)
{
    const Workload wl = makeWorkload(Kernel::IntAvg, 8, 8);
    const auto a = analyzeProgram(wl.program, wl.dmemWords);
    EXPECT_EQ(a.writableBars, 0u);
    // Straight-line except the carry used by the /16 shifts.
    EXPECT_LE(a.flagCount, 1u);
}

TEST(ProgSpec, SpecializedConfigValidates)
{
    for (const KernelPoint &p : paperKernelPoints()) {
        const Workload wl =
            makeWorkload(p.kind, p.dataWidth, p.dataWidth);
        const CoreConfig cfg =
            specializedConfig(wl.program, wl.dmemWords);
        EXPECT_NO_THROW(cfg.check()) << wl.program.name;
        EXPECT_EQ(cfg.stages, 1u);
        EXPECT_LE(cfg.isa.pcBits, 8u);
    }
}

TEST(ProgSpec, SpecializedCoreIsSmallerAndCheaper)
{
    // Section 7/8: program-specific cores beat the standard core
    // of the same width in both area and power; the abstract
    // quotes gains of up to 1.93x area and 4.18x power.
    for (Kernel k : {Kernel::Mult, Kernel::Div, Kernel::Crc8}) {
        const Workload wl = makeWorkload(k, 8, 8);
        const CoreConfig std_cfg = CoreConfig::standard(1, 8, 2);
        const CoreConfig ps_cfg =
            specializedConfig(wl.program, wl.dmemWords);

        const auto std_ch =
            characterize(buildCore(std_cfg), egfetLibrary());
        const auto ps_ch =
            characterize(buildCore(ps_cfg), egfetLibrary());

        EXPECT_LT(ps_ch.areaCm2(), std_ch.areaCm2())
            << kernelName(k);
        EXPECT_LT(ps_ch.powerMw(), std_ch.powerMw())
            << kernelName(k);
        EXPECT_LT(ps_ch.stats.seqGates, std_ch.stats.seqGates)
            << kernelName(k);
    }
}

TEST(ProgSpec, TranscodedProgramFitsNarrowRom)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const CoreConfig cfg =
        specializedConfig(wl.program, wl.dmemWords);
    const Program ps = specializeProgram(wl.program, cfg);
    EXPECT_EQ(ps.size(), wl.program.size());
    for (const std::uint32_t w : ps.words())
        EXPECT_LT(w, 1u << cfg.isa.instructionBits());
}

// Gate-level equivalence: the specialized core running the
// transcoded program must compute the same results as golden.
class ProgSpecCosim : public ::testing::TestWithParam<Kernel>
{};

TEST_P(ProgSpecCosim, SpecializedCoreMatchesGolden)
{
    const Kernel kind = GetParam();
    const Workload wl = makeWorkload(kind, 8, 8);
    const CoreConfig cfg =
        specializedConfig(wl.program, wl.dmemWords);
    const Program ps = specializeProgram(wl.program, cfg);
    const Netlist nl = buildCore(cfg);

    const auto inputs = defaultInputs(kind, 8, 4);
    const auto want = goldenOutputs(kind, 8, inputs);

    CoreCosim cosim(nl, cfg, ps, wl.dmemWords);
    wl.load([&](std::size_t a, std::uint64_t v) {
        cosim.setMem(a, v);
    }, inputs);
    cosim.run();

    const auto got =
        wl.read([&](std::size_t a) { return cosim.mem(a); });
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << kernelName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, ProgSpecCosim,
    ::testing::Values(Kernel::Mult, Kernel::Div, Kernel::InSort,
                      Kernel::IntAvg, Kernel::THold, Kernel::DTree),
    [](const auto &info) {
        return std::string(kernelName(info.param));
    });

} // anonymous namespace
} // namespace printed
