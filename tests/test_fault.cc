/**
 * @file
 * Unit tests for gate-level fault injection (analysis/fault.hh,
 * sim fault overlay) and the redundancy-hardening passes
 * (synth/harden.hh): defect-draw determinism, voter correctness,
 * TMR single-fault tolerance, and functional-yield Monte-Carlo
 * determinism across thread counts.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/fault.hh"
#include "analysis/yield.hh"
#include "core/generator.hh"
#include "netlist/netlist.hh"
#include "sim/simulator.hh"
#include "synth/harden.hh"

namespace printed
{
namespace
{

// ----------------------------------------------------------------
// Test circuits
// ----------------------------------------------------------------

/**
 * 2-bit enabled counter plus a combinational parity output. 4
 * combinational gates, 2 flops, no tri-states - the gate layout
 * documented in harden.hh makes every TMR copy's GateId
 * predictable for the single-fault sweeps below.
 */
Netlist
makeCounter()
{
    Netlist nl("counter");
    const NetId en = nl.addInput("en");
    const NetId fb0 = nl.makeFeedback();
    const NetId fb1 = nl.makeFeedback();
    const NetId d0 = nl.addGate(CellKind::XOR2X1, fb0, en);
    const NetId carry = nl.addGate(CellKind::AND2X1, fb0, en);
    const NetId d1 = nl.addGate(CellKind::XOR2X1, fb1, carry);
    const NetId q0 = nl.addFlop(d0);
    const NetId q1 = nl.addFlop(d1);
    nl.resolveFeedback(fb0, q0);
    nl.resolveFeedback(fb1, q1);
    nl.addOutput("q0", q0);
    nl.addOutput("q1", q1);
    nl.addOutput("odd", nl.addGate(CellKind::XOR2X1, q0, q1));
    nl.validate();
    return nl;
}

/** Tri-state 2:1 mux with a registered copy of the bus. */
Netlist
makeTristateMux()
{
    Netlist nl("tmux");
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId sel = nl.addInput("sel");
    const NetId nsel = nl.addGate(CellKind::INVX1, sel);
    const NetId bus = nl.addNet("bus");
    nl.addTristate(a, sel, bus);
    nl.addTristate(b, nsel, bus);
    nl.addOutput("y", bus);
    nl.addOutput("q", nl.addFlop(bus));
    nl.validate();
    return nl;
}

/** Deterministic pseudo-random input pattern per (cycle, input). */
bool
inputPattern(unsigned cycle, std::size_t input)
{
    const std::uint64_t h =
        (cycle + 1) * 0x9e3779b97f4a7c15ull + input * 0xbf58476d1ce4e5b9ull;
    return ((h >> 17) ^ (h >> 3)) & 1;
}

/** Run `cycles` cycles and collect every output value per cycle. */
std::vector<bool>
runTrace(const Netlist &nl, const std::vector<InjectedFault> &faults,
         unsigned cycles)
{
    GateSimulator sim(nl);
    sim.reset();
    if (!faults.empty())
        sim.setFaults(faults);
    std::vector<bool> trace;
    for (unsigned c = 0; c < cycles; ++c) {
        for (std::size_t i = 0; i < nl.inputs().size(); ++i)
            sim.setInput(nl.inputs()[i].net, inputPattern(c, i));
        sim.cycle();
        for (const auto &p : nl.outputs())
            trace.push_back(sim.output(p.name));
    }
    return trace;
}

// ----------------------------------------------------------------
// Defect drawing
// ----------------------------------------------------------------

TEST(FaultSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(faultTrialSeed(1, 0, 0), faultTrialSeed(1, 0, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t s : {1ull, 2ull})
        for (std::uint64_t t = 0; t < 8; ++t)
            for (std::uint64_t r = 0; r < 3; ++r)
                seen.insert(faultTrialSeed(s, t, r));
    EXPECT_EQ(seen.size(), 2u * 8u * 3u);
}

TEST(FaultDraw, DeterministicPerTrialSeed)
{
    const Netlist nl = makeCounter();
    FaultModel model;
    model.deviceYield = 0.9; // plenty of defects on 7 gates
    bool anyDiffer = false;
    for (std::uint64_t t = 0; t < 32; ++t) {
        const std::uint64_t ts = faultTrialSeed(7, t);
        const DefectMap m1 = drawDefects(nl, model, ts);
        const DefectMap m2 = drawDefects(nl, model, ts);
        ASSERT_EQ(m1.faults.size(), m2.faults.size());
        for (std::size_t i = 0; i < m1.faults.size(); ++i) {
            EXPECT_EQ(m1.faults[i].gate, m2.faults[i].gate);
            EXPECT_EQ(m1.faults[i].kind, m2.faults[i].kind);
            EXPECT_EQ(m1.faults[i].bridge, m2.faults[i].bridge);
        }
        if (t > 0) {
            const DefectMap prev =
                drawDefects(nl, model, faultTrialSeed(7, t - 1));
            if (prev.faults.size() != m1.faults.size())
                anyDiffer = true;
            else
                for (std::size_t i = 0; i < m1.faults.size(); ++i)
                    if (prev.faults[i].gate != m1.faults[i].gate ||
                        prev.faults[i].kind != m1.faults[i].kind)
                        anyDiffer = true;
        }
    }
    EXPECT_TRUE(anyDiffer) << "every trial drew the same defects";
}

TEST(FaultDraw, PerfectDeviceYieldDrawsNothing)
{
    const Netlist nl = makeCounter();
    FaultModel model;
    model.deviceYield = 1.0;
    for (std::uint64_t t = 0; t < 64; ++t)
        EXPECT_TRUE(
            drawDefects(nl, model, faultTrialSeed(1, t)).empty());
}

TEST(FaultDraw, ZeroDeviceYieldBreaksEveryGate)
{
    const Netlist nl = makeCounter();
    FaultModel model;
    model.deviceYield = 0.0;
    const DefectMap m = drawDefects(nl, model, faultTrialSeed(1, 0));
    EXPECT_EQ(m.faults.size(), nl.gateCount());
}

// ----------------------------------------------------------------
// Fault overlay semantics
// ----------------------------------------------------------------

TEST(FaultOverlay, StuckAtForcesOutputAndCountsActivations)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    nl.addOutput("y", nl.addGate(CellKind::AND2X1, a, b));
    GateSimulator sim(nl);

    sim.setFaults({{0, FaultKind::StuckAt1, invalidNet}});
    sim.setInput(a, false);
    sim.setInput(b, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("y")); // fault-free AND would give 0
    EXPECT_GE(sim.faultActivations(), 1u);

    sim.setFaults({{0, FaultKind::StuckAt0, invalidNet}});
    sim.setInput(a, true);
    sim.setInput(b, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("y"));
    EXPECT_GE(sim.faultActivations(), 1u);

    // A stuck-at that matches the fault-free value never activates.
    sim.setFaults({{0, FaultKind::StuckAt1, invalidNet}});
    sim.evaluate();
    EXPECT_TRUE(sim.output("y"));
    EXPECT_EQ(sim.faultActivations(), 0u);

    sim.clearFaults();
    sim.setInput(b, false);
    sim.evaluate();
    EXPECT_FALSE(sim.output("y"));
}

TEST(FaultOverlay, BridgeIsWiredAndWithAggressor)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    nl.addOutput("y", nl.addGate(CellKind::OR2X1, a, b));
    GateSimulator sim(nl);
    sim.setFaults({{0, FaultKind::BridgeInput, a}});

    // Aggressor low drags the shorted output low (wired-AND).
    sim.setInput(a, false);
    sim.setInput(b, true);
    sim.evaluate();
    EXPECT_FALSE(sim.output("y")); // fault-free OR would give 1
    EXPECT_GE(sim.faultActivations(), 1u);

    // Aggressor high leaves the output alone.
    sim.setFaults({{0, FaultKind::BridgeInput, a}});
    sim.setInput(a, true);
    sim.setInput(b, false);
    sim.evaluate();
    EXPECT_TRUE(sim.output("y"));
    EXPECT_EQ(sim.faultActivations(), 0u);
}

// ----------------------------------------------------------------
// Hardening passes
// ----------------------------------------------------------------

TEST(Harden, MajorityVoterTruthTable)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId c = nl.addInput("c");
    nl.addOutput("m", synth::majority3(nl, a, b, c));
    GateSimulator sim(nl);
    for (int v = 0; v < 8; ++v) {
        sim.setInput(a, v & 1);
        sim.setInput(b, v & 2);
        sim.setInput(c, v & 4);
        sim.evaluate();
        const int ones = (v & 1) + ((v >> 1) & 1) + ((v >> 2) & 1);
        EXPECT_EQ(sim.output("m"), ones >= 2) << "inputs " << v;
    }
}

TEST(Harden, PreservesFunctionWithoutFaults)
{
    for (const Netlist &src : {makeCounter(), makeTristateMux()}) {
        const std::vector<bool> golden = runTrace(src, {}, 24);
        for (auto strategy : {synth::HardenStrategy::TmrFull,
                              synth::HardenStrategy::TmrSequential}) {
            synth::HardenReport rep;
            const Netlist hard = synth::harden(src, strategy, &rep);
            hard.validate();
            EXPECT_EQ(rep.gatesBefore, src.gateCount());
            EXPECT_EQ(rep.gatesAfter, hard.gateCount());
            EXPECT_GT(rep.votersInserted, 0u);
            EXPECT_EQ(runTrace(hard, {}, 24), golden)
                << synth::hardenStrategyName(strategy) << " on "
                << (src.gateCount() == 7 ? "counter" : "tmux");
        }
    }
}

TEST(Harden, TmrFullCorrectsAnySingleCopyFault)
{
    const Netlist src = makeCounter(); // 4 comb gates, 2 flops
    const Netlist hard =
        synth::harden(src, synth::HardenStrategy::TmrFull);
    const std::vector<bool> golden = runTrace(src, {}, 24);

    // Documented layout: 3 consecutive copies per comb gate first,
    // then per flop its 3 copies followed by 5 voter gates.
    const std::size_t comb = 4, flops = 2;
    std::vector<GateId> copies;
    for (GateId gi = 0; gi < 3 * comb; ++gi)
        copies.push_back(gi);
    for (std::size_t f = 0; f < flops; ++f)
        for (GateId k = 0; k < 3; ++k)
            copies.push_back(GateId(3 * comb + 8 * f) + k);

    for (GateId gi : copies)
        for (FaultKind kind :
             {FaultKind::StuckAt0, FaultKind::StuckAt1})
            EXPECT_EQ(runTrace(hard, {{gi, kind, invalidNet}}, 24),
                      golden)
                << "uncorrected fault on " << hard.gateLabel(gi);
}

TEST(Harden, TmrSequentialCorrectsFlopCopyFaults)
{
    const Netlist src = makeCounter();
    const Netlist hard =
        synth::harden(src, synth::HardenStrategy::TmrSequential);
    const std::vector<bool> golden = runTrace(src, {}, 24);

    // Layout: single comb copy (4 gates), then per flop 3 copies +
    // 5 voter gates.
    const std::size_t comb = 4, flops = 2;
    for (std::size_t f = 0; f < flops; ++f)
        for (GateId k = 0; k < 3; ++k) {
            const GateId gi = GateId(comb + 8 * f) + k;
            for (FaultKind kind :
                 {FaultKind::StuckAt0, FaultKind::StuckAt1})
                EXPECT_EQ(
                    runTrace(hard, {{gi, kind, invalidNet}}, 24),
                    golden)
                    << "uncorrected fault on " << hard.gateLabel(gi);
        }
}

// ----------------------------------------------------------------
// Functional-yield Monte Carlo
// ----------------------------------------------------------------

TEST(FunctionalYield, DeterministicAcrossThreadCounts)
{
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist core = buildCore(cfg);

    FunctionalYieldConfig mc;
    mc.fault.deviceYield = 0.999; // frequent defects on few trials
    mc.fault.seed = 42;
    mc.trials = 24;
    mc.kernels = {Kernel::Mult};

    mc.threads = 1;
    const FunctionalYieldReport serial =
        measureFunctionalYield(core, cfg, mc);
    mc.threads = 4;
    const FunctionalYieldReport parallel =
        measureFunctionalYield(core, cfg, mc);

    EXPECT_EQ(serial.fatalTrials, parallel.fatalTrials);
    EXPECT_EQ(serial.maskedTrials, parallel.maskedTrials);
    EXPECT_EQ(serial.benignTrials, parallel.benignTrials);
    EXPECT_EQ(serial.defectFreeTrials, parallel.defectFreeTrials);

    // Accounting: every trial lands in exactly one bucket.
    EXPECT_EQ(serial.trials, mc.trials);
    EXPECT_EQ(serial.fatalTrials + serial.maskedTrials +
                  serial.benignTrials + serial.defectFreeTrials,
              serial.trials);

    // Functional yield can only be *better* than defect-free rate.
    EXPECT_GE(serial.functionalYield() + 1e-12,
              serial.defectFreeRate());
    EXPECT_EQ(serial.devicesPerReplica, deviceCount(core));
    EXPECT_GT(serial.analyticYield, 0.0);
    EXPECT_LT(serial.analyticYield, 1.0);
}

TEST(FunctionalYield, PerfectDeviceYieldIsAllDefectFree)
{
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist core = buildCore(cfg);

    FunctionalYieldConfig mc;
    mc.fault.deviceYield = 1.0;
    mc.trials = 4;
    mc.threads = 1;
    mc.kernels = {Kernel::Mult};

    const FunctionalYieldReport r =
        measureFunctionalYield(core, cfg, mc);
    EXPECT_EQ(r.defectFreeTrials, r.trials);
    EXPECT_EQ(r.fatalTrials, 0u);
    EXPECT_DOUBLE_EQ(r.functionalYield(), 1.0);
    EXPECT_DOUBLE_EQ(r.analyticYield, 1.0);
}

TEST(FunctionalYield, BatchEngineMatchesScalarBitExactly)
{
    // The 64-lane engine must classify every trial exactly as the
    // scalar golden reference: same (seed, trial, replica) -> same
    // defect maps -> same fatal/masked/benign/defect-free buckets.
    // 70 trials spans two lane blocks (and a partial one); the
    // replicated run exercises the per-replica early-exit paths.
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist core = buildCore(cfg);

    struct Case
    {
        unsigned trials;
        unsigned replicas;
    };
    for (const Case c : {Case{70, 1}, Case{40, 2}}) {
        FunctionalYieldConfig mc;
        mc.fault.deviceYield = 0.999; // frequent defects
        mc.fault.seed = 7;
        mc.trials = c.trials;
        mc.threads = 2;
        mc.replicas = c.replicas;
        mc.kernels = {Kernel::Mult, Kernel::THold};

        mc.engine = SimEngine::Scalar;
        const FunctionalYieldReport scalar =
            measureFunctionalYield(core, cfg, mc);
        mc.engine = SimEngine::Batch;
        const FunctionalYieldReport batch =
            measureFunctionalYield(core, cfg, mc);

        EXPECT_EQ(scalar.fatalTrials, batch.fatalTrials)
            << "trials " << c.trials << " replicas " << c.replicas;
        EXPECT_EQ(scalar.maskedTrials, batch.maskedTrials);
        EXPECT_EQ(scalar.benignTrials, batch.benignTrials);
        EXPECT_EQ(scalar.defectFreeTrials, batch.defectFreeTrials);
        EXPECT_EQ(scalar.trials, batch.trials);
        EXPECT_DOUBLE_EQ(scalar.analyticYield, batch.analyticYield);

        // At this defect rate the buckets must not be degenerate,
        // or the equivalence check would prove nothing.
        EXPECT_GT(batch.fatalTrials + batch.maskedTrials +
                      batch.benignTrials,
                  0u);
    }
}

} // anonymous namespace
} // namespace printed
