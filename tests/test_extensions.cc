/**
 * @file
 * Tests for the extension facilities: Monte-Carlo variation-aware
 * timing, the manufacturing-yield model, the Liberty exporter, and
 * the VCD tracer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "analysis/timing.hh"
#include "analysis/variation.hh"
#include "analysis/yield.hh"
#include "common/logging.hh"
#include "core/generator.hh"
#include "sim/vcd.hh"
#include "synth/blocks.hh"
#include "tech/liberty.hh"

namespace printed
{
namespace
{

using namespace synth;

// ----------------------------------------------------------------
// Variation-aware timing
// ----------------------------------------------------------------

TEST(Variation, ZeroSigmaReproducesNominal)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    VariationModel model;
    model.lnSigma = 0.0;
    model.samples = 5;
    const VariationReport r =
        analyzeVariation(nl, egfetLibrary(), model);
    EXPECT_NEAR(r.meanPeriodUs, r.nominalPeriodUs, 1e-9);
    EXPECT_NEAR(r.stdDevUs, 0.0, 1e-9);
    EXPECT_NEAR(r.guardBand(), 1.0, 1e-9);
}

TEST(Variation, NominalMatchesSta)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    const TimingReport sta = analyzeTiming(nl, egfetLibrary());
    VariationModel model;
    model.samples = 1;
    const VariationReport r =
        analyzeVariation(nl, egfetLibrary(), model);
    EXPECT_NEAR(r.nominalPeriodUs, sta.periodUs, 1e-9);
}

TEST(Variation, SpreadGrowsWithSigmaAndNeedsGuardBand)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    VariationModel small;
    small.lnSigma = 0.1;
    small.samples = 100;
    VariationModel big = small;
    big.lnSigma = 0.4;
    const auto rs = analyzeVariation(nl, egfetLibrary(), small);
    const auto rb = analyzeVariation(nl, egfetLibrary(), big);
    EXPECT_GT(rb.stdDevUs, rs.stdDevUs);
    EXPECT_GT(rb.guardBand(), rs.guardBand());
    EXPECT_GT(rs.guardBand(), 1.0);
    EXPECT_LT(rs.guardedFmaxHz(), 1e6 / rs.nominalPeriodUs);
    // Percentiles are ordered.
    EXPECT_LE(rb.p50Us, rb.p95Us);
    EXPECT_LE(rb.p95Us, rb.p99Us);
    EXPECT_LE(rb.p99Us, rb.worstUs);
}

TEST(Variation, Deterministic)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 4, 2));
    VariationModel model;
    model.samples = 50;
    const auto a = analyzeVariation(nl, egfetLibrary(), model);
    const auto b = analyzeVariation(nl, egfetLibrary(), model);
    EXPECT_DOUBLE_EQ(a.meanPeriodUs, b.meanPeriodUs);
    EXPECT_DOUBLE_EQ(a.p95Us, b.p95Us);
}

// ----------------------------------------------------------------
// Yield
// ----------------------------------------------------------------

TEST(Yield, GeometricDecay)
{
    const YieldReport r100 = yieldForDevices(100);
    const YieldReport r1000 = yieldForDevices(1000);
    EXPECT_NEAR(r100.yield, std::pow(0.99, 100), 1e-12);
    EXPECT_GT(r100.yield, r1000.yield);
    EXPECT_NEAR(r100.printsPerGood, 1.0 / r100.yield, 1e-9);
}

TEST(Yield, SmallCoresArePrintableBigOnesAreNot)
{
    // The paper's yield argument: at 99% device yield a TP-ISA
    // core prints at useful rates; a 12k-gate openMSP430-class
    // design essentially never works.
    const Netlist tp = buildCore(CoreConfig::standard(1, 8, 2));
    const YieldReport small = analyzeYield(tp);
    EXPECT_GT(small.yield, 1e-6);

    const YieldReport msp430ish = yieldForDevices(12101 * 2);
    EXPECT_LT(msp430ish.yield, 1e-10);
}

TEST(Yield, DeviceCountTracksStages)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    nl.addOutput("x", nl.addGate(CellKind::NAND2X1, a, b)); // 1
    nl.addOutput("y", nl.addGate(CellKind::XOR2X1, a, b));  // 3
    nl.addOutput("q", nl.addFlop(a));                       // 8
    EXPECT_EQ(deviceCount(nl), 12u);
}

TEST(Yield, RejectsBadModel)
{
    YieldModel model;
    model.deviceYield = -0.1;
    EXPECT_THROW(yieldForDevices(10, model), FatalError);
    model.deviceYield = 1.5;
    EXPECT_THROW(yieldForDevices(10, model), FatalError);
}

TEST(Yield, DeviceYieldEdgeCases)
{
    // Perfect devices: every print works, one print per good unit.
    const YieldReport perfect = yieldForDevices(5000, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(perfect.yield, 1.0);
    EXPECT_DOUBLE_EQ(perfect.printsPerGood, 1.0);

    // Hopeless devices: nothing ever works, infinite prints.
    const YieldReport broken = yieldForDevices(10, {0.0, 1.0});
    EXPECT_DOUBLE_EQ(broken.yield, 0.0);
    EXPECT_TRUE(std::isinf(broken.printsPerGood));

    // A zero-device design "works" even with hopeless devices.
    EXPECT_DOUBLE_EQ(yieldForDevices(0, {0.0, 1.0}).yield, 1.0);
}

TEST(Yield, SingleCellNetlist)
{
    // One inverter = one printed device under the stage model, so
    // circuit yield equals device yield exactly.
    Netlist nl;
    nl.addOutput("y", nl.addGate(CellKind::INVX1, nl.addInput("a")));
    EXPECT_EQ(deviceCount(nl), 1u);
    EXPECT_EQ(cellDeviceCount(CellKind::INVX1), 1u);
    YieldModel model;
    model.deviceYield = 0.97;
    EXPECT_NEAR(analyzeYield(nl, model).yield, 0.97, 1e-12);
}

TEST(Variation, PercentileNearestRank)
{
    std::vector<double> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = i + 1; // sorted 1..100
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 51.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.95), 96.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 100.0);

    const std::vector<double> small = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(percentile(small, 0.25), 20.0);
    EXPECT_DOUBLE_EQ(percentile(small, 0.5), 30.0);
    EXPECT_DOUBLE_EQ(percentile(small, 1.0), 40.0);

    const std::vector<double> one = {7.0};
    EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile(one, 0.99), 7.0);

    EXPECT_THROW(percentile({}, 0.5), FatalError);
    EXPECT_THROW(percentile(v, -0.01), FatalError);
    EXPECT_THROW(percentile(v, 1.01), FatalError);
}

// ----------------------------------------------------------------
// Liberty export
// ----------------------------------------------------------------

TEST(Liberty, ContainsEveryCell)
{
    std::ostringstream os;
    writeLiberty(os, egfetLibrary());
    const std::string lib = os.str();
    EXPECT_NE(lib.find("library(EGFET_1V)"), std::string::npos);
    for (std::size_t i = 0; i < numCellKinds; ++i)
        EXPECT_NE(lib.find("cell(" +
                           cellName(static_cast<CellKind>(i)) +
                           ")"),
                  std::string::npos);
    // Flop description and tri-state attribute present.
    EXPECT_NE(lib.find("clocked_on"), std::string::npos);
    EXPECT_NE(lib.find("three_state"), std::string::npos);
    // A Table 2 value survives verbatim.
    EXPECT_NE(lib.find("values(\"1212\")"), std::string::npos);
}

TEST(Liberty, CntLibraryExports)
{
    std::ostringstream os;
    writeLiberty(os, cntLibrary());
    EXPECT_NE(os.str().find("nom_voltage : 3"), std::string::npos);
}

// ----------------------------------------------------------------
// VCD tracing
// ----------------------------------------------------------------

TEST(Vcd, TracesACounter)
{
    Netlist nl("ctr");
    const NetId fb = nl.makeFeedback();
    const NetId next = nl.addGate(CellKind::INVX1, fb);
    const NetId q = nl.addFlop(next);
    nl.resolveFeedback(fb, q);
    nl.addOutput("q", q);

    GateSimulator sim(nl);
    std::ostringstream os;
    VcdWriter vcd(os, nl);
    vcd.addSignal("q", q);
    vcd.writeHeader();
    for (std::uint64_t t = 0; t < 4; ++t) {
        sim.evaluate();
        vcd.sample(sim, t);
        sim.step();
    }

    const std::string out = os.str();
    EXPECT_NE(out.find("$timescale 1 us $end"), std::string::npos);
    EXPECT_NE(out.find("$var wire 1"), std::string::npos);
    // q toggles every cycle: timestamps 0..3 all present.
    for (int t = 0; t < 4; ++t)
        EXPECT_NE(out.find("#" + std::to_string(t)),
                  std::string::npos);
}

TEST(Vcd, BusGroupingFromPorts)
{
    Netlist nl("bus");
    const Bus a = busInputs(nl, "a", 4);
    busOutputs(nl, "y", busNot(nl, a));

    GateSimulator sim(nl);
    std::ostringstream os;
    VcdWriter vcd(os, nl);
    vcd.addPorts();
    vcd.writeHeader();
    sim.setBus(a, 0x5);
    sim.evaluate();
    vcd.sample(sim, 0);

    const std::string out = os.str();
    EXPECT_NE(out.find("$var wire 4"), std::string::npos);
    EXPECT_NE(out.find("b0101"), std::string::npos); // a = 5
    EXPECT_NE(out.find("b1010"), std::string::npos); // y = ~5
}

TEST(Vcd, WideNetlistIdsAndHostileNamesStayWellFormed)
{
    // Two historical hazards in one dump: (1) more than 94 signals
    // forces multi-character identifier codes — every id must stay
    // unique and printable; (2) display names with spaces, '$', or
    // duplicates would corrupt the whitespace-tokenized
    // "$var wire N id name $end" declarations unless sanitized and
    // uniquified.
    constexpr unsigned N = 300;
    Netlist nl("wide");
    std::vector<NetId> ins;
    for (unsigned i = 0; i < N; ++i)
        ins.push_back(nl.addInput("in" + std::to_string(i)));
    nl.addOutput("y", nl.addGate(CellKind::INVX1, ins[0]));

    GateSimulator sim(nl);
    std::ostringstream os;
    VcdWriter vcd(os, nl);
    for (unsigned i = 0; i < N; ++i) {
        std::string name;
        switch (i % 4) {
          case 0: name = "sig " + std::to_string(i); break; // space
          case 1: name = "$bad$" + std::to_string(i); break; // '$'
          case 2: name = "dup"; break;                // duplicates
          default: name = "ok_" + std::to_string(i); break;
        }
        vcd.addSignal(name, ins[i]);
    }
    vcd.writeHeader();
    for (unsigned i = 0; i < N; ++i)
        sim.setInput(ins[i], (i % 3) == 0);
    sim.evaluate();
    vcd.sample(sim, 0);

    // Strict line-level checker for the parts of the VCD grammar
    // this dump exercises.
    std::istringstream is(os.str());
    std::set<std::string> ids, names;
    std::size_t valueLines = 0;
    bool inDefs = true;
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("$var ", 0) == 0) {
            ASSERT_TRUE(inDefs) << "late declaration: " << line;
            std::istringstream ls(line);
            std::string var, wire, width, id, name, end, extra;
            ls >> var >> wire >> width >> id >> name >> end;
            EXPECT_EQ(wire, "wire") << line;
            EXPECT_EQ(end, "$end")
                << "name split into tokens: " << line;
            EXPECT_FALSE(ls >> extra) << "trailing junk: " << line;
            EXPECT_EQ(width, "1") << line;
            for (char c : id)
                EXPECT_TRUE(c >= '!' && c <= '~') << line;
            EXPECT_TRUE(ids.insert(id).second)
                << "duplicate id: " << line;
            EXPECT_EQ(name.find('$'), std::string::npos) << line;
            EXPECT_TRUE(names.insert(name).second)
                << "duplicate display name: " << line;
        } else if (line == "$enddefinitions $end") {
            inDefs = false;
        } else if (!inDefs && !line.empty() &&
                   (line[0] == '0' || line[0] == '1')) {
            // Scalar value change: value immediately followed by an
            // id that must have been declared.
            EXPECT_TRUE(ids.count(line.substr(1)))
                << "undeclared id referenced: " << line;
            ++valueLines;
        }
    }
    EXPECT_EQ(ids.size(), N);
    EXPECT_GT(ids.size(), 94u); // multi-char id territory
    // All N signals changed at t=0 relative to the empty baseline
    // ("1" for the driven-high third, "0" never matches the empty
    // last-value string, so every signal emits).
    EXPECT_EQ(valueLines, std::size_t(N));
}

TEST(Vcd, OnlyChangesEmitted)
{
    Netlist nl("stable");
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));
    GateSimulator sim(nl);
    std::ostringstream os;
    VcdWriter vcd(os, nl);
    vcd.addPorts();
    vcd.writeHeader();
    sim.evaluate();
    vcd.sample(sim, 0);
    vcd.sample(sim, 1); // nothing changed
    const std::string out = os.str();
    EXPECT_NE(out.find("#0"), std::string::npos);
    EXPECT_EQ(out.find("#1"), std::string::npos);
}

} // anonymous namespace
} // namespace printed
