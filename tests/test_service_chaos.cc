/**
 * @file
 * Fault-injection (chaos) tests of the printedd service: a server
 * deliberately misbehaving per a seeded FaultPlan must not cost a
 * retrying client a single reply — zero lost, zero duplicated,
 * every reply byte-identical to a clean server's. Plus the
 * persistence half: warm restarts served from the disk cache,
 * corrupt-entry recovery, and an EINTR signal-storm regression test
 * for the socket I/O loops.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "service/balancer.hh"
#include "service/client.hh"
#include "service/fault_plan.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "service/shard_map.hh"
#include "synth/cache.hh"
#include "synth/disk_cache.hh"

namespace fs = std::filesystem;

namespace
{

using namespace printed;
using namespace printed::service;

/** A fresh unique cache directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/printed-chaos-XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p ? p : "";
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

CoreConfig
smallConfig()
{
    return CoreConfig::standard(1, 4, 2);
}

/** The compute workload both halves of a comparison test issue. */
std::vector<std::string>
chaosRequests()
{
    std::vector<std::string> reqs;
    reqs.push_back(synthRequest("s4", smallConfig()));
    reqs.push_back(
        synthRequest("s8", CoreConfig::standard(1, 8, 2)));
    reqs.push_back(yieldRequest("y", smallConfig(), 24, 7));
    SweepSpec spec;
    spec.stages = {1};
    spec.widths = {4, 8};
    spec.bars = {2};
    reqs.push_back(sweepRequest("w", spec));
    return reqs;
}

/** Reference reply lines from a clean (fault-free) server. */
std::map<std::string, std::string>
referenceReplies(const std::vector<std::string> &requests)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());
    std::map<std::string, std::string> ref;
    for (const std::string &req : requests) {
        const std::string raw = client.call(req);
        ref[parseReply(raw).id] = raw;
    }
    return ref;
}

std::uint64_t
faultTotal()
{
    return metrics::counter("service.fault.drops").value() +
           metrics::counter("service.fault.truncates").value() +
           metrics::counter("service.fault.delays").value() +
           metrics::counter("service.fault.queue_fulls").value();
}

TEST(ServiceChaos, RetryingClientSurvivesSeededFaults)
{
    const std::vector<std::string> requests = chaosRequests();
    const std::map<std::string, std::string> ref =
        referenceReplies(requests);

    ServerOptions opts;
    opts.faultPlan = FaultPlan::parse(
        "seed=42,drop=0.2,truncate=0.2,delay=0.1:5,queue_full=0.2");
    Server server(opts);
    server.start();

    RetryPolicy policy;
    policy.maxLossRetries = 12;
    policy.maxOverloadRetries = 100;
    policy.callTimeoutMs = 20000;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 20;
    policy.jitterSeed = 7;
    RetryingClient client("127.0.0.1", server.port(), policy);

    const std::uint64_t faultsBefore = faultTotal();

    // Several rounds of the full workload: every call must return
    // exactly one reply (zero lost — call() never swallows one;
    // zero duplicated — a replayed request replaces, never appends)
    // and the bytes must equal the clean server's.
    constexpr unsigned kRounds = 6;
    std::size_t replies = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        for (const std::string &req : requests) {
            const std::string raw = client.call(req);
            const Reply parsed = parseReply(raw);
            ASSERT_TRUE(parsed.ok) << raw;
            ASSERT_EQ(raw, ref.at(parsed.id));
            ++replies;
        }
    }
    EXPECT_EQ(replies, kRounds * requests.size());

    // The chaos has to have actually happened, and the client must
    // have actually healed (not merely never been hurt).
    EXPECT_GT(faultTotal(), faultsBefore);
    const RetryStats &rs = client.stats();
    EXPECT_GT(rs.lossReplays + rs.overloadReplays +
                  rs.timeoutReplays,
              0u);
}

TEST(ServiceChaos, WarmRestartServesSynthFromDisk)
{
    TempDir dir;
    const std::vector<std::string> requests = chaosRequests();

    // Earlier tests may have warmed the process-wide cache; start
    // cold so the first server actually builds (and so persists).
    SynthCache::global().clear();

    // First server lifetime: fill memory + disk.
    std::map<std::string, std::string> first;
    {
        ServerOptions opts;
        opts.diskCacheDir = dir.path;
        Server server(opts);
        server.start();
        Client client("127.0.0.1", server.port());
        for (const std::string &req : requests) {
            const std::string raw = client.call(req);
            ASSERT_TRUE(parseReply(raw).ok) << raw;
            first[parseReply(raw).id] = raw;
        }
    }
    {
        DiskCache inspect(dir.path);
        EXPECT_GT(inspect.entryCount(), 0u);
    }

    // Simulate the process restart the disk tier exists for: the
    // in-memory cache is gone, the directory survives.
    SynthCache::global().clear();
    const auto diskHits = [] {
        return metrics::counter("synth.disk_cache.netlist_hits")
                   .value() +
               metrics::counter("synth.disk_cache.char_hits")
                   .value();
    };
    const std::uint64_t hitsBefore = diskHits();

    ServerOptions opts;
    opts.diskCacheDir = dir.path;
    Server server(opts);
    server.start();
    Client client("127.0.0.1", server.port());
    for (const std::string &req : requests) {
        const std::string raw = client.call(req);
        const Reply parsed = parseReply(raw);
        ASSERT_TRUE(parsed.ok) << raw;
        // Byte-identical across the restart: the disk round trip
        // is exact, so the determinism rule spans processes.
        EXPECT_EQ(raw, first.at(parsed.id));
    }

    // The restarted server rebuilt nothing the disk had. A disk
    // characterization hit skips netlist elaboration entirely, so
    // synth requests show up as char_hits and only the yield
    // request (which needs the gates) as a netlist_hit — count
    // both. The workload touches widths 4 and 8 across two techs
    // plus the yield netlist, so at least 4 disk hits.
    EXPECT_GE(diskHits(), hitsBefore + 4);
}

TEST(ServiceChaos, CorruptedDiskEntryIsRebuiltNotTrusted)
{
    TempDir dir;
    const std::string req = synthRequest("s", smallConfig());
    SynthCache::global().clear(); // build, don't hit memory

    std::string expected;
    {
        ServerOptions opts;
        opts.diskCacheDir = dir.path;
        Server server(opts);
        server.start();
        Client client("127.0.0.1", server.port());
        expected = client.call(req);
        ASSERT_TRUE(parseReply(expected).ok) << expected;
    }

    SynthCache::global().clear();
    const std::uint64_t corruptBefore =
        metrics::counter("synth.disk_cache.corrupt").value();

    // Second boot corrupts one entry before serving (the disk half
    // of the fault plan). The checksum catches it: quarantined,
    // re-synthesized, and the reply is still byte-correct.
    ServerOptions opts;
    opts.diskCacheDir = dir.path;
    opts.faultPlan = FaultPlan::parse("seed=5,corrupt=2");
    Server server(opts);
    server.start();
    Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.call(req), expected);
    EXPECT_GT(metrics::counter("synth.disk_cache.corrupt").value(),
              corruptBefore);
}

/** Remove the balancer's failover annotation from a reply line. */
std::string
stripDegraded(std::string raw)
{
    const std::string tag = ", \"degraded\": true";
    const std::size_t at = raw.rfind(tag);
    if (at != std::string::npos)
        raw.erase(at, tag.size());
    return raw;
}

TEST(ServiceChaos, KillOneShardMidBurstFailsOverAndHeals)
{
    TempDir dir;
    SynthCache::global().clear();

    // Twelve distinct cheap synth keys, spread over three shards by
    // the same ring every other party uses (the determinism
    // property test_shard_map pins).
    std::vector<std::string> requests;
    std::vector<unsigned> homes;
    const ShardMap ring = ShardMap::forCount(3);
    for (unsigned i = 0; i < 12; ++i) {
        CoreConfig c = smallConfig();
        c.opcodeMask = 0x3FF - i;
        requests.push_back(
            synthRequest("k" + std::to_string(i), c));
        homes.push_back(
            ring.shardFor(routeKey(parseRequest(requests.back()))));
    }

    // Three workers sharing one disk-cache directory, a balancer
    // with a fast probe cadence in front.
    auto makeWorker = [&](std::uint16_t port) {
        ServerOptions o;
        o.port = port;
        o.diskCacheDir = dir.path;
        auto s = std::make_unique<Server>(o);
        s->start();
        return s;
    };
    std::vector<std::unique_ptr<Server>> workers;
    for (int i = 0; i < 3; ++i)
        workers.push_back(makeWorker(0));
    std::vector<std::uint16_t> ports;
    for (const auto &w : workers)
        ports.push_back(w->port());

    BalancerOptions bo;
    for (std::uint16_t p : ports)
        bo.workers.push_back({"127.0.0.1", p});
    bo.probePeriodMs = 20;
    bo.probeBackoffBaseMs = 10;
    bo.probeBackoffMaxMs = 100;
    Balancer balancer(bo);
    balancer.start();

    // Reference bytes, straight from a worker (every shard answers
    // identically — the determinism rule).
    std::map<std::string, std::string> ref;
    {
        Client direct("127.0.0.1", ports[0]);
        for (const std::string &req : requests) {
            const std::string raw = direct.call(req);
            ASSERT_TRUE(parseReply(raw).ok) << raw;
            ref[parseReply(raw).id] = raw;
        }
    }

    const unsigned victim = homes[0];
    ASSERT_TRUE(balancer.shardUp(victim));

    // Burst through the balancer from several threads; mid-burst,
    // the victim shard dies. Every reply must still arrive ok and
    // byte-identical — directly for surviving shards, modulo the
    // "degraded" annotation for keys served by failover.
    std::atomic<bool> failed{false};
    std::string failure;
    std::mutex failureMutex;
    std::vector<std::thread> burst;
    for (unsigned t = 0; t < 3; ++t)
        burst.emplace_back([&, t] {
            try {
                RetryPolicy policy;
                policy.baseBackoffMs = 1;
                policy.maxBackoffMs = 20;
                policy.jitterSeed = 100 + t;
                RetryingClient client("127.0.0.1",
                                      balancer.port(), policy);
                for (unsigned round = 0; round < 4; ++round)
                    for (const std::string &req : requests) {
                        const std::string raw = client.call(req);
                        const Reply parsed = parseReply(raw);
                        if (!parsed.ok ||
                            stripDegraded(raw) !=
                                ref.at(parsed.id)) {
                            std::lock_guard lk(failureMutex);
                            failure = "bad reply: " + raw;
                            failed.store(true);
                            return;
                        }
                    }
            } catch (const std::exception &e) {
                std::lock_guard lk(failureMutex);
                failure = e.what();
                failed.store(true);
            }
        });

    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    workers[victim].reset(); // the shard dies mid-burst
    for (std::thread &t : burst)
        t.join();
    ASSERT_FALSE(failed.load()) << failure;

    // The balancer noticed: victim marked down, and a serial pass
    // confirms surviving-shard keys still answer byte-identical
    // with no annotation while the victim's keys are degraded.
    {
        RetryingClient client("127.0.0.1", balancer.port());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const std::string raw = client.call(requests[i]);
            const Reply parsed = parseReply(raw);
            ASSERT_TRUE(parsed.ok) << raw;
            if (homes[i] == victim) {
                EXPECT_TRUE(parsed.degraded) << raw;
                EXPECT_EQ(stripDegraded(raw), ref.at(parsed.id));
            } else {
                EXPECT_FALSE(parsed.degraded) << raw;
                EXPECT_EQ(raw, ref.at(parsed.id));
            }
        }
    }
    EXPECT_FALSE(balancer.shardUp(victim));

    // Restart the dead shard on its old port with a cold memory
    // cache: its keys must heal from the shared disk cache, and
    // the probe must mark it up again.
    SynthCache::global().clear();
    const auto diskHits = [] {
        return metrics::counter("synth.disk_cache.netlist_hits")
                   .value() +
               metrics::counter("synth.disk_cache.char_hits")
                   .value();
    };
    const std::uint64_t hitsBefore = diskHits();
    workers[victim] = makeWorker(ports[victim]);

    const auto reviveDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!balancer.shardUp(victim) &&
           std::chrono::steady_clock::now() < reviveDeadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(balancer.shardUp(victim)) << "probe never revived";

    {
        RetryingClient client("127.0.0.1", balancer.port());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const std::string raw = client.call(requests[i]);
            const Reply parsed = parseReply(raw);
            ASSERT_TRUE(parsed.ok) << raw;
            EXPECT_FALSE(parsed.degraded) << raw;
            EXPECT_EQ(raw, ref.at(parsed.id));
        }
    }
    EXPECT_GT(diskHits(), hitsBefore); // healed from disk, not luck
}

// ---------------------------------------------------------------
// EINTR / partial-I/O regression (the signal-storm test)
// ---------------------------------------------------------------

void
noopHandler(int)
{
}

TEST(ServiceChaos, SocketLoopsSurviveSignalStorm)
{
    // Install a SIGUSR1 handler *without* SA_RESTART, so every
    // blocking send/recv/poll in the storm thread is interrupted
    // with EINTR instead of transparently restarted — the exact
    // condition the netio helpers must absorb.
    struct sigaction sa{};
    struct sigaction old{};
    sa.sa_handler = noopHandler;
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    Server server;
    server.start();

    const std::vector<std::string> requests = chaosRequests();
    const std::map<std::string, std::string> ref =
        referenceReplies(requests);

    std::atomic<bool> done{false};
    std::string failure;
    std::thread storm([&] {
        try {
            Client client("127.0.0.1", server.port());
            for (unsigned round = 0; round < 8; ++round) {
                for (const std::string &req : requests) {
                    const std::string raw = client.call(req);
                    const Reply parsed = parseReply(raw);
                    if (raw != ref.at(parsed.id)) {
                        failure = "mismatched reply: " + raw;
                        break;
                    }
                }
            }
        } catch (const std::exception &e) {
            failure = e.what();
        }
        done.store(true);
    });

    // Pepper the client thread with signals while it works.
    while (!done.load()) {
        pthread_kill(storm.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(
            std::chrono::microseconds(200));
    }
    storm.join();
    sigaction(SIGUSR1, &old, nullptr);
    EXPECT_TRUE(failure.empty()) << failure;
}

} // namespace
