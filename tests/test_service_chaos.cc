/**
 * @file
 * Fault-injection (chaos) tests of the printedd service: a server
 * deliberately misbehaving per a seeded FaultPlan must not cost a
 * retrying client a single reply — zero lost, zero duplicated,
 * every reply byte-identical to a clean server's. Plus the
 * persistence half: warm restarts served from the disk cache,
 * corrupt-entry recovery, and an EINTR signal-storm regression test
 * for the socket I/O loops.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "service/client.hh"
#include "service/fault_plan.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "synth/cache.hh"
#include "synth/disk_cache.hh"

namespace fs = std::filesystem;

namespace
{

using namespace printed;
using namespace printed::service;

/** A fresh unique cache directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/printed-chaos-XXXXXX";
        const char *p = ::mkdtemp(tmpl);
        EXPECT_NE(p, nullptr);
        path = p ? p : "";
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

CoreConfig
smallConfig()
{
    return CoreConfig::standard(1, 4, 2);
}

/** The compute workload both halves of a comparison test issue. */
std::vector<std::string>
chaosRequests()
{
    std::vector<std::string> reqs;
    reqs.push_back(synthRequest("s4", smallConfig()));
    reqs.push_back(
        synthRequest("s8", CoreConfig::standard(1, 8, 2)));
    reqs.push_back(yieldRequest("y", smallConfig(), 24, 7));
    SweepSpec spec;
    spec.stages = {1};
    spec.widths = {4, 8};
    spec.bars = {2};
    reqs.push_back(sweepRequest("w", spec));
    return reqs;
}

/** Reference reply lines from a clean (fault-free) server. */
std::map<std::string, std::string>
referenceReplies(const std::vector<std::string> &requests)
{
    Server server;
    server.start();
    Client client("127.0.0.1", server.port());
    std::map<std::string, std::string> ref;
    for (const std::string &req : requests) {
        const std::string raw = client.call(req);
        ref[parseReply(raw).id] = raw;
    }
    return ref;
}

std::uint64_t
faultTotal()
{
    return metrics::counter("service.fault.drops").value() +
           metrics::counter("service.fault.truncates").value() +
           metrics::counter("service.fault.delays").value() +
           metrics::counter("service.fault.queue_fulls").value();
}

TEST(ServiceChaos, RetryingClientSurvivesSeededFaults)
{
    const std::vector<std::string> requests = chaosRequests();
    const std::map<std::string, std::string> ref =
        referenceReplies(requests);

    ServerOptions opts;
    opts.faultPlan = FaultPlan::parse(
        "seed=42,drop=0.2,truncate=0.2,delay=0.1:5,queue_full=0.2");
    Server server(opts);
    server.start();

    RetryPolicy policy;
    policy.maxLossRetries = 12;
    policy.maxOverloadRetries = 100;
    policy.callTimeoutMs = 20000;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 20;
    policy.jitterSeed = 7;
    RetryingClient client("127.0.0.1", server.port(), policy);

    const std::uint64_t faultsBefore = faultTotal();

    // Several rounds of the full workload: every call must return
    // exactly one reply (zero lost — call() never swallows one;
    // zero duplicated — a replayed request replaces, never appends)
    // and the bytes must equal the clean server's.
    constexpr unsigned kRounds = 6;
    std::size_t replies = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        for (const std::string &req : requests) {
            const std::string raw = client.call(req);
            const Reply parsed = parseReply(raw);
            ASSERT_TRUE(parsed.ok) << raw;
            ASSERT_EQ(raw, ref.at(parsed.id));
            ++replies;
        }
    }
    EXPECT_EQ(replies, kRounds * requests.size());

    // The chaos has to have actually happened, and the client must
    // have actually healed (not merely never been hurt).
    EXPECT_GT(faultTotal(), faultsBefore);
    const RetryStats &rs = client.stats();
    EXPECT_GT(rs.lossReplays + rs.overloadReplays +
                  rs.timeoutReplays,
              0u);
}

TEST(ServiceChaos, WarmRestartServesSynthFromDisk)
{
    TempDir dir;
    const std::vector<std::string> requests = chaosRequests();

    // Earlier tests may have warmed the process-wide cache; start
    // cold so the first server actually builds (and so persists).
    SynthCache::global().clear();

    // First server lifetime: fill memory + disk.
    std::map<std::string, std::string> first;
    {
        ServerOptions opts;
        opts.diskCacheDir = dir.path;
        Server server(opts);
        server.start();
        Client client("127.0.0.1", server.port());
        for (const std::string &req : requests) {
            const std::string raw = client.call(req);
            ASSERT_TRUE(parseReply(raw).ok) << raw;
            first[parseReply(raw).id] = raw;
        }
    }
    {
        DiskCache inspect(dir.path);
        EXPECT_GT(inspect.entryCount(), 0u);
    }

    // Simulate the process restart the disk tier exists for: the
    // in-memory cache is gone, the directory survives.
    SynthCache::global().clear();
    const auto diskHits = [] {
        return metrics::counter("synth.disk_cache.netlist_hits")
                   .value() +
               metrics::counter("synth.disk_cache.char_hits")
                   .value();
    };
    const std::uint64_t hitsBefore = diskHits();

    ServerOptions opts;
    opts.diskCacheDir = dir.path;
    Server server(opts);
    server.start();
    Client client("127.0.0.1", server.port());
    for (const std::string &req : requests) {
        const std::string raw = client.call(req);
        const Reply parsed = parseReply(raw);
        ASSERT_TRUE(parsed.ok) << raw;
        // Byte-identical across the restart: the disk round trip
        // is exact, so the determinism rule spans processes.
        EXPECT_EQ(raw, first.at(parsed.id));
    }

    // The restarted server rebuilt nothing the disk had. A disk
    // characterization hit skips netlist elaboration entirely, so
    // synth requests show up as char_hits and only the yield
    // request (which needs the gates) as a netlist_hit — count
    // both. The workload touches widths 4 and 8 across two techs
    // plus the yield netlist, so at least 4 disk hits.
    EXPECT_GE(diskHits(), hitsBefore + 4);
}

TEST(ServiceChaos, CorruptedDiskEntryIsRebuiltNotTrusted)
{
    TempDir dir;
    const std::string req = synthRequest("s", smallConfig());
    SynthCache::global().clear(); // build, don't hit memory

    std::string expected;
    {
        ServerOptions opts;
        opts.diskCacheDir = dir.path;
        Server server(opts);
        server.start();
        Client client("127.0.0.1", server.port());
        expected = client.call(req);
        ASSERT_TRUE(parseReply(expected).ok) << expected;
    }

    SynthCache::global().clear();
    const std::uint64_t corruptBefore =
        metrics::counter("synth.disk_cache.corrupt").value();

    // Second boot corrupts one entry before serving (the disk half
    // of the fault plan). The checksum catches it: quarantined,
    // re-synthesized, and the reply is still byte-correct.
    ServerOptions opts;
    opts.diskCacheDir = dir.path;
    opts.faultPlan = FaultPlan::parse("seed=5,corrupt=2");
    Server server(opts);
    server.start();
    Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.call(req), expected);
    EXPECT_GT(metrics::counter("synth.disk_cache.corrupt").value(),
              corruptBefore);
}

// ---------------------------------------------------------------
// EINTR / partial-I/O regression (the signal-storm test)
// ---------------------------------------------------------------

void
noopHandler(int)
{
}

TEST(ServiceChaos, SocketLoopsSurviveSignalStorm)
{
    // Install a SIGUSR1 handler *without* SA_RESTART, so every
    // blocking send/recv/poll in the storm thread is interrupted
    // with EINTR instead of transparently restarted — the exact
    // condition the netio helpers must absorb.
    struct sigaction sa{};
    struct sigaction old{};
    sa.sa_handler = noopHandler;
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    Server server;
    server.start();

    const std::vector<std::string> requests = chaosRequests();
    const std::map<std::string, std::string> ref =
        referenceReplies(requests);

    std::atomic<bool> done{false};
    std::string failure;
    std::thread storm([&] {
        try {
            Client client("127.0.0.1", server.port());
            for (unsigned round = 0; round < 8; ++round) {
                for (const std::string &req : requests) {
                    const std::string raw = client.call(req);
                    const Reply parsed = parseReply(raw);
                    if (raw != ref.at(parsed.id)) {
                        failure = "mismatched reply: " + raw;
                        break;
                    }
                }
            }
        } catch (const std::exception &e) {
            failure = e.what();
        }
        done.store(true);
    });

    // Pepper the client thread with signals while it works.
    while (!done.load()) {
        pthread_kill(storm.native_handle(), SIGUSR1);
        std::this_thread::sleep_for(
            std::chrono::microseconds(200));
    }
    storm.join();
    sigaction(SIGUSR1, &old, nullptr);
    EXPECT_TRUE(failure.empty()) << failure;
}

} // namespace
