/**
 * @file
 * Unit tests for the observability layer: the metrics registry
 * (common/metrics.hh) and the Chrome-trace span recorder
 * (common/trace.hh). Counters must sum correctly under concurrent
 * adds, distribution percentiles must follow the same index rule as
 * analysis/variation.cc, registry references must stay stable
 * across resetAll(), spans must be no-ops while tracing is
 * disabled, and the emitted trace document must be valid JSON of
 * the trace_event shape.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/trace.hh"
#include "common/json_min.hh"

namespace printed
{
namespace
{

namespace json = printed::json;

TEST(Counter, AddValueReset)
{
    metrics::Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsSumExactly)
{
    metrics::Counter c;
    parallelFor(8, 1000, [&](std::size_t i) { c.add(i + 1); });
    // 1 + 2 + ... + 1000
    EXPECT_EQ(c.value(), 500500u);
}

TEST(Gauge, LastWriteWins)
{
    metrics::Gauge g;
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
    g.set(3.25);
    EXPECT_DOUBLE_EQ(g.value(), 3.25);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Distribution, SummaryFollowsVariationPercentileRule)
{
    metrics::Distribution d;
    for (int v = 100; v >= 1; --v) // unsorted insertion order
        d.record(double(v));
    const auto s = d.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_DOUBLE_EQ(s.mean, 50.5);
    // Same index rule as analysis/variation.cc::percentile():
    // idx = min(n-1, size_t(p*n)) into the sorted samples.
    EXPECT_DOUBLE_EQ(s.p50, 51.0);
    EXPECT_DOUBLE_EQ(s.p95, 96.0);
}

TEST(Distribution, EmptyAndSingleSample)
{
    metrics::Distribution d;
    EXPECT_EQ(d.summary().count, 0u);
    d.record(7.0);
    const auto s = d.summary();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.p50, 7.0);
    EXPECT_DOUBLE_EQ(s.p95, 7.0);
    EXPECT_DOUBLE_EQ(s.max, 7.0);
    d.reset();
    EXPECT_EQ(d.summary().count, 0u);
}

TEST(Distribution, CountStaysExactBeyondSampleCap)
{
    metrics::Distribution d;
    const std::size_t n = metrics::Distribution::sampleCap + 100;
    for (std::size_t i = 0; i < n; ++i)
        d.record(1.0);
    EXPECT_EQ(d.summary().count, n);
    EXPECT_DOUBLE_EQ(d.summary().mean, 1.0);
}

TEST(Registry, ReferencesAreStableAcrossResetAll)
{
    metrics::Counter &a = metrics::counter("test.registry.stable");
    a.add(5);
    metrics::Counter &b = metrics::counter("test.registry.stable");
    EXPECT_EQ(&a, &b);
    metrics::Registry::global().resetAll();
    // The entry survives (zeroed), so the old reference still works.
    EXPECT_EQ(a.value(), 0u);
    a.add(2);
    EXPECT_EQ(
        metrics::counter("test.registry.stable").value(), 2u);
}

TEST(Registry, SnapshotIsSortedAndComplete)
{
    metrics::counter("test.snap.b").add(2);
    metrics::counter("test.snap.a").add(1);
    metrics::gauge("test.snap.g").set(1.5);
    metrics::distribution("test.snap.d").record(4.0);

    const metrics::Snapshot snap =
        metrics::Registry::global().snapshot();
    std::set<std::string> names;
    std::string prev;
    for (const auto &[name, value] : snap.counters) {
        EXPECT_LE(prev, name); // sorted by name
        prev = name;
        names.insert(name);
    }
    EXPECT_TRUE(names.count("test.snap.a"));
    EXPECT_TRUE(names.count("test.snap.b"));
    bool sawGauge = false, sawDist = false;
    for (const auto &[name, value] : snap.gauges)
        sawGauge |= name == "test.snap.g";
    for (const auto &[name, value] : snap.distributions)
        sawDist = sawDist || name == "test.snap.d";
    EXPECT_TRUE(sawGauge);
    EXPECT_TRUE(sawDist);
}

TEST(Trace, SpanIsNoOpWhileDisabled)
{
    trace::disable();
    trace::clear();
    const std::size_t before = trace::eventCount();
    {
        trace::Span s("test.disabled_span", "should not record");
    }
    EXPECT_EQ(trace::eventCount(), before);
}

TEST(Trace, EnabledSpansProduceValidChromeTraceJson)
{
    trace::clear();
    trace::enable(); // buffer only, no output path
    trace::setThreadName("test-main");
    {
        trace::Span outer("test.outer", "detail \"quoted\"");
        trace::Span inner("test.inner");
    }
    trace::disable();
    ASSERT_GE(trace::eventCount(), 2u);

    std::ostringstream os;
    trace::write(os);
    const json::Value doc = json::parse(os.str());
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    bool sawOuter = false, sawInner = false, sawMeta = false;
    for (const json::Value &ev : events->array) {
        const json::Value *name = ev.find("name");
        const json::Value *ph = ev.find("ph");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        ASSERT_NE(ev.find("tid"), nullptr);
        if (ph->string == "X") {
            // Complete events carry a timestamp and duration.
            ASSERT_NE(ev.find("ts"), nullptr);
            ASSERT_NE(ev.find("dur"), nullptr);
            sawOuter |= name->string == "test.outer";
            sawInner |= name->string == "test.inner";
        } else if (ph->string == "M" &&
                   name->string == "thread_name") {
            const json::Value *args = ev.find("args");
            ASSERT_NE(args, nullptr);
            sawMeta |=
                args->find("name")->string == "test-main";
        }
    }
    EXPECT_TRUE(sawOuter);
    EXPECT_TRUE(sawInner);
    EXPECT_TRUE(sawMeta);
    trace::clear();
}

TEST(Trace, ClearDropsEventsButKeepsThreadNames)
{
    trace::clear();
    trace::enable();
    {
        trace::Span s("test.to_be_cleared");
    }
    trace::disable();
    EXPECT_GE(trace::eventCount(), 1u);
    trace::clear();
    EXPECT_EQ(trace::eventCount(), 0u);
    // The thread-name metadata (registered in earlier tests)
    // survives clear(): the document stays valid.
    std::ostringstream os;
    trace::write(os);
    EXPECT_NO_THROW(json::parse(os.str()));
}

} // anonymous namespace
} // namespace printed
