/**
 * @file
 * Golden-snapshot regression tests: the headline numbers of the
 * reproduced artifacts — Table 4 (legacy cores), Figure 7 (design
 * space), and Table 7 (program-specific ISA analysis) — locked to
 * the values the seed + PR 2 toolchain produces. A diff here means
 * a change to synthesis, characterization, or the workload
 * programs shifted published results; update the snapshot only
 * deliberately, with the reason recorded in the commit.
 *
 * Tolerances: counts and bit widths are exact integers. Analog
 * quantities (fmax, area, power) are deterministic doubles, but we
 * allow 1e-6 relative slack so benign compiler/libm differences
 * (FMA contraction, reassociation under a new -O level) do not
 * trip the snapshot; any real model change moves these values by
 * far more.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "dse/sweep.hh"
#include "legacy/cores.hh"
#include "progspec/analyze.hh"
#include "workloads/kernels.hh"

namespace printed
{
namespace
{

/** Relative tolerance for analog golden values (see file header). */
constexpr double relTol = 1e-6;

void
expectRel(double expected, double actual, const std::string &what)
{
    EXPECT_NEAR(actual, expected, std::abs(expected) * relTol)
        << what;
}

// ----------------------------------------------------------------
// Figure 7: the 24-point design-space sweep
// ----------------------------------------------------------------

struct Fig7Golden
{
    unsigned stages, datawidth, bars;
    std::size_t gates, flops;
    double egfetFmaxHz, egfetAreaCm2, egfetPowerMw;
    double cntFmaxHz, cntAreaCm2, cntPowerMw;
};

const Fig7Golden fig7Golden[] = {
    {1u, 4u, 2u, 342u, 20u, 31.716832122807574, 1.9783599999999999, 10.403766259633986, 13607.66383627259, 0.024000000000000004, 77.288776268234272},
    {1u, 4u, 4u, 477u, 36u, 31.716832122807574, 2.88286, 15.43166142281709, 13607.66383627259, 0.035520000000000003, 108.44879153059003},
    {1u, 8u, 2u, 454u, 20u, 22.830007762202637, 2.4723999999999999, 10.765024811652435, 9347.4542208429557, 0.029000000000000005, 70.038825026873951},
    {1u, 8u, 4u, 597u, 36u, 22.830007762202637, 3.3985000000000003, 15.006521446509291, 9347.4542208429557, 0.040840000000000008, 92.979937447771121},
    {1u, 16u, 2u, 670u, 20u, 15.095023170860568, 3.4388800000000002, 12.364241598864854, 5566.2241518465953, 0.038679999999999999, 61.566994790014206},
    {1u, 16u, 4u, 813u, 36u, 15.095023170860568, 4.3649800000000001, 15.878081872386673, 5566.2241518465953, 0.050519999999999995, 75.505433711836588},
    {1u, 32u, 2u, 1102u, 20u, 9.1712828790491212, 5.3718399999999997, 16.270262592171392, 3155.0419147318371, 0.058039999999999994, 58.266157275684414},
    {1u, 32u, 4u, 1245u, 36u, 9.1712828790491212, 6.2979400000000005, 19.226836428335595, 3155.0419147318371, 0.069879999999999998, 66.463848866235693},
    {2u, 4u, 2u, 371u, 44u, 26.6922912662823, 2.6627199999999998, 13.149211701900491, 13036.110024768612, 0.034300000000000004, 89.3759365011081},
    {2u, 4u, 4u, 508u, 60u, 26.6922912662823, 3.5758799999999997, 17.755580653427291, 13036.110024768612, 0.045920000000000002, 119.68394318863253},
    {2u, 8u, 2u, 483u, 44u, 20.105756278022398, 3.1567599999999998, 13.275000144761444, 9074.1631353048469, 0.039300000000000009, 78.818527915755467},
    {2u, 8u, 4u, 628u, 60u, 20.105756278022398, 4.09152, 17.304086197398313, 9074.1631353048469, 0.051240000000000008, 101.40962489587397},
    {2u, 16u, 2u, 699u, 44u, 13.853869385719433, 4.12324, 14.584910637000915, 5468.1561924134812, 0.048980000000000003, 67.207158610978979},
    {2u, 16u, 4u, 844u, 60u, 13.853869385719433, 5.0579999999999998, 18.019433343492835, 5468.1561924134812, 0.060920000000000002, 81.096308583364788},
    {2u, 32u, 2u, 1131u, 44u, 8.6978455436588362, 6.0562000000000005, 18.2182835341086, 3123.2919497149996, 0.068339999999999998, 61.737708432888262},
    {2u, 32u, 4u, 1276u, 60u, 8.6978455436588362, 6.9909600000000012, 21.162461031042611, 3123.2919497149996, 0.080280000000000004, 69.968276848598421},
    {3u, 4u, 2u, 547u, 80u, 17.439224303302989, 4.2274799999999999, 16.584659495657633, 7408.1756626613142, 0.055840000000000015, 77.634229988295104},
    {3u, 4u, 4u, 684u, 96u, 15.828294659533382, 5.1406400000000012, 19.450970496058755, 6657.6123139197362, 0.067460000000000006, 85.875092420974141},
    {3u, 8u, 2u, 671u, 92u, 17.439224303302989, 5.0539200000000006, 19.85515870391685, 7408.1756626613142, 0.065880000000000008, 94.987953044019378},
    {3u, 8u, 4u, 816u, 108u, 15.828294659533382, 5.9886800000000004, 22.631310703092851, 6657.6123139197362, 0.077820000000000014, 102.47868877260261},
    {3u, 16u, 2u, 903u, 108u, 13.853869385719433, 6.4636000000000005, 23.001767266077415, 5468.1561924134812, 0.08228000000000002, 94.067327211185685},
    {3u, 16u, 4u, 1048u, 124u, 13.853869385719433, 7.3983600000000003, 26.436289972569341, 5468.1561924134812, 0.094220000000000012, 107.95647718357149},
    {3u, 32u, 2u, 1367u, 140u, 8.6978455436588362, 9.282960000000001, 28.130641960146477, 3123.2919497149996, 0.11508000000000003, 82.828769454204732},
    {3u, 32u, 4u, 1512u, 156u, 8.6978455436588362, 10.21772, 31.07481945708048, 3123.2919497149996, 0.12702000000000002, 91.059337869914884},
};

TEST(Golden, Figure7DesignSpace)
{
    const std::vector<DesignPoint> points = sweepDesignSpace();
    ASSERT_EQ(points.size(), std::size(fig7Golden));

    for (std::size_t i = 0; i < points.size(); ++i) {
        const DesignPoint &pt = points[i];
        const Fig7Golden &g = fig7Golden[i];
        const std::string label =
            "point " + std::to_string(i) + " (p" +
            std::to_string(g.stages) + " w" +
            std::to_string(g.datawidth) + " b" +
            std::to_string(g.bars) + ")";

        // The sweep order itself is part of the snapshot.
        EXPECT_EQ(pt.config.stages, g.stages) << label;
        EXPECT_EQ(pt.config.isa.datawidth, g.datawidth) << label;
        EXPECT_EQ(pt.config.isa.barCount, g.bars) << label;

        EXPECT_EQ(pt.egfet.gateCount(), g.gates) << label;
        EXPECT_EQ(pt.egfet.stats.seqGates, g.flops) << label;
        // Structure is tech-independent.
        EXPECT_EQ(pt.cnt.gateCount(), g.gates) << label;

        expectRel(g.egfetFmaxHz, pt.egfet.fmaxHz(), label);
        expectRel(g.egfetAreaCm2, pt.egfet.areaCm2(), label);
        expectRel(g.egfetPowerMw, pt.egfet.powerMw(), label);
        expectRel(g.cntFmaxHz, pt.cnt.fmaxHz(), label);
        expectRel(g.cntAreaCm2, pt.cnt.areaCm2(), label);
        expectRel(g.cntPowerMw, pt.cnt.powerMw(), label);
    }
}

// ----------------------------------------------------------------
// Table 4: legacy-core statistical model
// ----------------------------------------------------------------

struct Table4Golden
{
    legacy::LegacyCore core;
    TechKind tech;
    unsigned calibratedDepth;
    double fmaxHz, areaCm2, powerMw;
};

const Table4Golden table4Golden[] = {
    {legacy::LegacyCore::OpenMsp430, TechKind::EGFET, 132u, 4.0700000000000003, 48.525290000000005, 124.54112014999998},
    {legacy::LegacyCore::OpenMsp430, TechKind::CNT_TFT, 16u, 15074, 0.53492999999999991, 1340.7641917611202},
    {legacy::LegacyCore::Z80, TechKind::EGFET, 68u, 7.1799999999999997, 25.327539999999996, 76.262398218399994},
    {legacy::LegacyCore::Z80, TechKind::CNT_TFT, 9u, 26064, 0.28294999999999998, 1211.1938667328},
    {legacy::LegacyCore::Light8080, TechKind::EGFET, 24u, 17.390000000000001, 10.45574, 41.788797354240003},
    {legacy::LegacyCore::Light8080, TechKind::CNT_TFT, 4u, 57238, 0.16127000000000002, 1513.6674193505598},
    {legacy::LegacyCore::ZpuSmall, TechKind::EGFET, 15u, 25.449999999999999, 14.710799999999999, 65.782056820799994},
    {legacy::LegacyCore::ZpuSmall, TechKind::CNT_TFT, 5u, 43442, 0.21001, 1598.3160889609601},
};

TEST(Golden, Table4LegacyCores)
{
    for (const Table4Golden &g : table4Golden) {
        const legacy::LegacyModelResult r =
            legacy::modelLegacyCore(g.core, g.tech);
        const std::string label =
            legacy::legacyCoreSpec(g.core).name + " / " +
            techName(g.tech);

        EXPECT_EQ(r.calibratedDepth, g.calibratedDepth) << label;
        expectRel(g.fmaxHz, r.fmaxHz, label);
        expectRel(g.areaCm2, r.area.totalCm2(), label);
        expectRel(g.powerMw, r.powerAtFmax.total_mW, label);
    }
}

// ----------------------------------------------------------------
// Table 7: program-specific ISA static analysis (exact integers)
// ----------------------------------------------------------------

struct Table7Golden
{
    Kernel kernel;
    unsigned pcBits, barBits, writableBars;
    unsigned flagMask, flagCount;
    unsigned op1Bits, op2Bits, instructionBits;
};

const Table7Golden table7Golden[] = {
    {Kernel::Crc8, 4u, 3u, 0u, 6u, 2u, 4u, 5u, 17u},
    {Kernel::Div, 4u, 3u, 0u, 6u, 2u, 4u, 4u, 16u},
    {Kernel::DTree, 8u, 3u, 0u, 2u, 1u, 8u, 8u, 24u},
    {Kernel::InSort, 5u, 5u, 1u, 6u, 2u, 6u, 6u, 20u},
    {Kernel::IntAvg, 5u, 5u, 0u, 2u, 1u, 5u, 5u, 18u},
    {Kernel::Mult, 4u, 3u, 0u, 6u, 2u, 4u, 4u, 16u},
    {Kernel::THold, 4u, 5u, 1u, 6u, 2u, 6u, 6u, 20u},
};

TEST(Golden, Table7ProgramAnalysis)
{
    for (const Table7Golden &g : table7Golden) {
        const Workload wl = makeWorkload(g.kernel, 8, 8);
        const ProgSpecAnalysis a =
            analyzeProgram(wl.program, wl.dmemWords);
        const std::string label = kernelName(g.kernel);

        EXPECT_EQ(a.pcBits, g.pcBits) << label;
        EXPECT_EQ(a.barBits, g.barBits) << label;
        EXPECT_EQ(a.writableBars, g.writableBars) << label;
        EXPECT_EQ(a.flagMask, g.flagMask) << label;
        EXPECT_EQ(a.flagCount, g.flagCount) << label;
        EXPECT_EQ(a.op1Bits, g.op1Bits) << label;
        EXPECT_EQ(a.op2Bits, g.op2Bits) << label;
        EXPECT_EQ(a.instructionBits(), g.instructionBits) << label;
    }
}

} // anonymous namespace
} // namespace printed
