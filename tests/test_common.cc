/**
 * @file
 * Unit tests for the printed::common utilities.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace printed
{
namespace
{

TEST(Bits, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(24), 0xffffffu);
    EXPECT_EQ(maskBits(64), ~std::uint64_t(0));
}

TEST(Bits, ExtractInsert)
{
    EXPECT_EQ(extractBits(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(insertBits(0x0000, 4, 8, 0xbc), 0x0bc0u);
    EXPECT_EQ(insertBits(0xffff, 4, 8, 0x00), 0xf00fu);
    EXPECT_EQ(bit(0b100, 2), 1u);
    EXPECT_EQ(bit(0b100, 1), 0u);
}

TEST(Bits, CeilLog2MatchesPaperPcSizing)
{
    // Section 7: PC is reduced to ceil(log2(N)) bits.
    EXPECT_EQ(ceilLog2(0), 0u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(16), 4u);   // mult: 16 instructions -> 4 bits
    EXPECT_EQ(ceilLog2(17), 5u);
    EXPECT_EQ(ceilLog2(256), 8u);  // dTree: 256 -> 8 bits
    EXPECT_EQ(ceilLog2(257), 9u);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x1ff, 8), -1); // high junk masked
}

TEST(Bits, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(256));
    EXPECT_FALSE(isPowerOf2(257));
}

TEST(Units, BatteryEnergyMatchesPaperBudget)
{
    // Section 4: 30 mA x 3.6 ks x 1 V = 108 J.
    EXPECT_DOUBLE_EQ(batteryEnergyJoules(30.0, 1.0), 108.0);
    EXPECT_DOUBLE_EQ(batteryEnergyJoules(10.0, 1.0), 36.0);
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(mm2ToCm2(100.0), 1.0);
    EXPECT_DOUBLE_EQ(usToSeconds(1e6), 1.0);
    EXPECT_DOUBLE_EQ(nJToJoules(1e9), 1.0);
    EXPECT_DOUBLE_EQ(uWTomW(1000.0), 1.0);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
    EXPECT_THROW(fatalIf(true, "boom"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "boom"));
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_THROW(panicIf(true, "bug"), PanicError);
    EXPECT_NO_THROW(panicIf(false, "bug"));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BitsBounded)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.bits(8), 256u);
        EXPECT_LT(rng.below(10), 10u);
    }
}

TEST(Table, RendersAlignedRows)
{
    TableWriter t({"Cell", "Area"});
    t.addRow({"INVX1", "0.224"});
    t.addRow({"DFFX1", "1.41"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("INVX1"), std::string::npos);
    EXPECT_NE(s.find("DFFX1"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, RejectsRaggedRows)
{
    TableWriter t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

} // anonymous namespace
} // namespace printed
