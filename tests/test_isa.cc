/**
 * @file
 * Tests for the TP-ISA definition: encoding/decoding per Figure 6,
 * operand packing, the assembler, and the disassembler round trip.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace printed
{
namespace
{

TEST(Isa, NineteenMnemonics)
{
    // Figure 6 defines exactly 19 instructions.
    EXPECT_EQ(numMnemonics, 19u);
}

TEST(Isa, ControlBitsMatchFigure6)
{
    // Spot checks of the W/C/A/B table.
    EXPECT_EQ(controlsOf(Mnemonic::ADD), (ControlBits{1, 0, 0, 0}));
    EXPECT_EQ(controlsOf(Mnemonic::ADC), (ControlBits{1, 1, 0, 0}));
    EXPECT_EQ(controlsOf(Mnemonic::SUB), (ControlBits{1, 0, 1, 0}));
    EXPECT_EQ(controlsOf(Mnemonic::CMP), (ControlBits{0, 0, 1, 0}));
    EXPECT_EQ(controlsOf(Mnemonic::SBB), (ControlBits{1, 1, 1, 0}));
    EXPECT_EQ(controlsOf(Mnemonic::TEST), (ControlBits{0, 0, 0, 0}));
    EXPECT_EQ(controlsOf(Mnemonic::RRA), (ControlBits{1, 0, 1, 0}));
    EXPECT_EQ(controlsOf(Mnemonic::BR), (ControlBits{0, 0, 0, 1}));
    EXPECT_EQ(controlsOf(Mnemonic::BRN), (ControlBits{0, 0, 1, 1}));
}

TEST(Isa, EncodeDecodeRoundTripsAllMnemonics)
{
    for (unsigned m = 0; m < numMnemonics; ++m) {
        Instruction inst;
        inst.mnemonic = static_cast<Mnemonic>(m);
        inst.op1 = isBranch(inst.mnemonic) ? 3 : std::uint8_t(0xa5);
        inst.op2 = inst.mnemonic == Mnemonic::SETBAR
                       ? std::uint8_t(1)
                       : std::uint8_t(0x5a);
        const std::uint32_t word = encode(inst);
        EXPECT_LT(word, 1u << 24);
        const Instruction back = decode(word);
        EXPECT_EQ(back, inst) << mnemonicName(inst.mnemonic);
    }
}

TEST(Isa, EncodingLayout)
{
    // ADD [0x12], [0x34]: opcode 0, W=1 -> word = 0x081234.
    Instruction inst;
    inst.mnemonic = Mnemonic::ADD;
    inst.op1 = 0x12;
    inst.op2 = 0x34;
    EXPECT_EQ(encode(inst), 0x081234u);

    // BRN: opcode 9, A=1, B=1 -> top byte 0x93.
    inst.mnemonic = Mnemonic::BRN;
    inst.op1 = 0x02;
    inst.op2 = 0x04;
    EXPECT_EQ(encode(inst), 0x930204u);
}

TEST(Isa, DecodeRejectsIllegalPatterns)
{
    EXPECT_THROW(decode(0xF00000), FatalError); // opcode 15
    // Opcode BR with B=0 is not a defined instruction.
    EXPECT_THROW(decode(0x900000), FatalError);
}

TEST(Isa, MnemonicNamesRoundTrip)
{
    for (unsigned m = 0; m < numMnemonics; ++m) {
        const auto mn = static_cast<Mnemonic>(m);
        const auto back = mnemonicFromName(mnemonicName(mn));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, mn);
    }
    EXPECT_EQ(mnemonicFromName("setbar"), Mnemonic::SETBAR);
    EXPECT_EQ(mnemonicFromName("adc"), Mnemonic::ADC);
    EXPECT_FALSE(mnemonicFromName("MOV").has_value());
}

TEST(Isa, Classification)
{
    EXPECT_TRUE(isMType(Mnemonic::ADD));
    EXPECT_TRUE(isMType(Mnemonic::RRA));
    EXPECT_FALSE(isMType(Mnemonic::STORE));
    EXPECT_FALSE(isMType(Mnemonic::BR));
    EXPECT_TRUE(isBinaryAlu(Mnemonic::XOR));
    EXPECT_FALSE(isBinaryAlu(Mnemonic::NOT));
    EXPECT_TRUE(isUnaryAlu(Mnemonic::RLC));
    EXPECT_TRUE(isBranch(Mnemonic::BRN));
    EXPECT_TRUE(readsCarry(Mnemonic::SBB));
    EXPECT_FALSE(readsCarry(Mnemonic::SUB));
    EXPECT_TRUE(writesMemory(Mnemonic::STORE));
    EXPECT_FALSE(writesMemory(Mnemonic::CMP));
    EXPECT_FALSE(writesMemory(Mnemonic::SETBAR));
}

TEST(Isa, OperandSplitTwoBars)
{
    IsaConfig cfg; // 2 BARs: 1 select bit, 7 offset bits
    EXPECT_EQ(cfg.barSelBits(), 1u);
    EXPECT_EQ(cfg.offsetBits(), 7u);
    const OperandFields f = splitOperand(0x85, cfg);
    EXPECT_EQ(f.barSel, 1u);
    EXPECT_EQ(f.offset, 5u);
    EXPECT_EQ(makeOperand(1, 5, cfg), 0x85);
}

TEST(Isa, OperandSplitFourBars)
{
    IsaConfig cfg;
    cfg.barCount = 4; // 2 select bits, 6 offset bits
    EXPECT_EQ(cfg.offsetBits(), 6u);
    const OperandFields f = splitOperand(0xC5, cfg);
    EXPECT_EQ(f.barSel, 3u);
    EXPECT_EQ(f.offset, 5u);
    EXPECT_EQ(makeOperand(3, 5, cfg), 0xC5);
}

TEST(Isa, InstructionBits)
{
    IsaConfig cfg;
    EXPECT_EQ(cfg.instructionBits(), 24u); // 4+4+8+8
    cfg.operandBits = 6;
    EXPECT_EQ(cfg.instructionBits(), 20u); // Table 7 'div' row
    cfg.operandBits = 4;
    EXPECT_EQ(cfg.instructionBits(), 16u); // Table 7 'CRC8' row
}

TEST(Isa, FlagsMask)
{
    Flags f;
    f.s = true;
    f.c = true;
    EXPECT_EQ(f.toMask(), 0b1010u);
    EXPECT_EQ(Flags::fromMask(0b0101), (Flags{false, true, false,
                                              true}));
}

// ----------------------------------------------------------------
// Assembler
// ----------------------------------------------------------------

TEST(Assembler, BasicProgram)
{
    const IsaConfig cfg;
    const Program p = assemble(R"(
        ; simple loop
        STORE [0], #5
        loop:
            SUB [0], [1]
            BRN loop, Z
        done:
            BRN done, #0
    )", cfg, "basic");

    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.code[0].mnemonic, Mnemonic::STORE);
    EXPECT_EQ(p.code[0].op2, 5);
    EXPECT_EQ(p.code[1].mnemonic, Mnemonic::SUB);
    EXPECT_EQ(p.code[2].mnemonic, Mnemonic::BRN);
    EXPECT_EQ(p.code[2].op1, 1); // label 'loop'
    EXPECT_EQ(p.code[2].op2, 1u << flagBitZ);
    EXPECT_EQ(p.code[3].op1, 3); // self-branch halt
    EXPECT_EQ(p.labels.at("loop"), 1u);
}

TEST(Assembler, BarOperands)
{
    const IsaConfig cfg;
    const Program p = assemble(R"(
        SETBAR [16], #1
        ADD [b1+3], [5]
    )", cfg, "bars");
    EXPECT_EQ(p.code[0].mnemonic, Mnemonic::SETBAR);
    EXPECT_EQ(p.code[0].op1, makeOperand(0, 16, cfg));
    EXPECT_EQ(p.code[0].op2, 1);
    EXPECT_EQ(p.code[1].op1, makeOperand(1, 3, cfg));
    EXPECT_EQ(p.code[1].op2, makeOperand(0, 5, cfg));
}

TEST(Assembler, FlagMaskLetters)
{
    const IsaConfig cfg;
    const Program p = assemble(R"(
        t: TEST [0], [0]
        BR t, SZCV
        BR t, C
    )", cfg, "masks");
    EXPECT_EQ(p.code[1].op2, 0xF);
    EXPECT_EQ(p.code[2].op2, 1u << flagBitC);
}

TEST(Assembler, HexAndCommentStyles)
{
    const IsaConfig cfg;
    const Program p = assemble(R"(
        STORE [0x10], #0x2A   ; semicolon comment
        STORE [1], #3         # hash comment
    )", cfg, "hex");
    EXPECT_EQ(p.code[0].op1, 0x10);
    EXPECT_EQ(p.code[0].op2, 42);
}

TEST(Assembler, Errors)
{
    const IsaConfig cfg;
    EXPECT_THROW(assemble("FOO [0], [1]", cfg), FatalError);
    EXPECT_THROW(assemble("ADD [0]", cfg), FatalError);
    EXPECT_THROW(assemble("BR nowhere, Z", cfg), FatalError);
    EXPECT_THROW(assemble("ADD [0], [200]", cfg), FatalError);
    EXPECT_THROW(assemble("STORE [0], #300", cfg), FatalError);
    EXPECT_THROW(assemble("SETBAR [0], #0", cfg), FatalError);
    EXPECT_THROW(assemble("SETBAR [0], #2", cfg), FatalError);
    EXPECT_THROW(assemble("ADD [b7+0], [0]", cfg), FatalError);
    EXPECT_THROW(assemble("x: ADD [0], [0]\nx: ADD [0], [0]", cfg),
                 FatalError);
}

TEST(Assembler, FourBarEncoding)
{
    IsaConfig cfg;
    cfg.barCount = 4;
    const Program p = assemble("ADD [b3+5], [b2+1]", cfg, "b4");
    EXPECT_EQ(p.code[0].op1, 0xC5);
    EXPECT_EQ(p.code[0].op2, 0x81);
}

TEST(Assembler, OffsetRangeDependsOnBars)
{
    IsaConfig two;
    EXPECT_NO_THROW(assemble("ADD [127], [0]", two));
    EXPECT_THROW(assemble("ADD [128], [0]", two), FatalError);
    IsaConfig four;
    four.barCount = 4;
    EXPECT_NO_THROW(assemble("ADD [63], [0]", four));
    EXPECT_THROW(assemble("ADD [64], [0]", four), FatalError);
}

TEST(Disassembler, RoundTripsThroughAssembler)
{
    const IsaConfig cfg;
    const Program p = assemble(R"(
        SETBAR [8], #1
        STORE [b1+2], #7
        loop:
            ADD [0], [b1+2]
            ADC [1], [2]
            CMP [0], [3]
            BR loop, SZ
        halt:
            BRN halt, #0
    )", cfg, "round");

    const std::string text = disassemble(p);
    const Program p2 = assemble(text, cfg, "round2");
    ASSERT_EQ(p2.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(p2.code[i], p.code[i]) << "instruction " << i;
}

TEST(Program, ChecksPcRange)
{
    IsaConfig cfg;
    cfg.pcBits = 2; // max 4 instructions
    Program p;
    p.name = "tiny";
    p.isa = cfg;
    for (int i = 0; i < 5; ++i)
        p.code.push_back({Mnemonic::ADD, 0, 0});
    EXPECT_THROW(p.check(), FatalError);
}

TEST(Program, ImemBits)
{
    const IsaConfig cfg;
    Program p;
    p.name = "x";
    p.isa = cfg;
    p.code.assign(16, {Mnemonic::ADD, 0, 0});
    EXPECT_EQ(p.imemBits(), 16u * 24u);
}

} // anonymous namespace
} // namespace printed
