/**
 * @file
 * Tests for the TP-ISA functional simulator and pipeline cycle
 * model: per-instruction semantics, flags, BAR addressing, halting,
 * data coalescing (multi-word arithmetic via ADC/RRC), and hazard
 * statistics.
 */

#include <gtest/gtest.h>

#include "arch/machine.hh"
#include "arch/pipeline.hh"
#include "common/logging.hh"
#include "isa/assembler.hh"

namespace printed
{
namespace
{

Program
prog(const std::string &src, unsigned width = 8, unsigned bars = 2)
{
    IsaConfig cfg;
    cfg.datawidth = width;
    cfg.barCount = bars;
    return assemble(src, cfg, "test");
}

TEST(Machine, StoreAndAdd)
{
    const Program p = prog(R"(
        STORE [0], #7
        STORE [1], #35
        ADD [0], [1]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 4);
    m.run();
    EXPECT_EQ(m.mem(0), 42u);
    EXPECT_EQ(m.stats().halt, HaltReason::SelfBranch);
    EXPECT_EQ(m.stats().instructions, 4u);
}

TEST(Machine, SubAndFlags)
{
    const Program p = prog(R"(
        STORE [0], #5
        STORE [1], #5
        SUB [0], [1]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_EQ(m.mem(0), 0u);
    EXPECT_TRUE(m.flags().z);
    EXPECT_FALSE(m.flags().s);
    EXPECT_TRUE(m.flags().c); // no borrow -> carry set
}

TEST(Machine, SubBorrowClearsCarry)
{
    const Program p = prog(R"(
        STORE [0], #3
        STORE [1], #5
        SUB [0], [1]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_EQ(m.mem(0), 254u); // 3 - 5 mod 256
    EXPECT_FALSE(m.flags().c); // borrow
    EXPECT_TRUE(m.flags().s);
}

TEST(Machine, CmpDoesNotWrite)
{
    const Program p = prog(R"(
        STORE [0], #9
        STORE [1], #9
        CMP [0], [1]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_EQ(m.mem(0), 9u);
    EXPECT_TRUE(m.flags().z);
}

TEST(Machine, AddCarryAndOverflow)
{
    const Program p = prog(R"(
        STORE [0], #200
        STORE [1], #100
        ADD [0], [1]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_EQ(m.mem(0), 44u); // 300 mod 256
    EXPECT_TRUE(m.flags().c);
    EXPECT_FALSE(m.flags().v); // unsigned wrap, no signed overflow

    const Program p2 = prog(R"(
        STORE [0], #100
        STORE [1], #100
        ADD [0], [1]
        halt: BRN halt, #0
    )");
    TpIsaMachine m2(p2, 2);
    m2.run();
    EXPECT_EQ(m2.mem(0), 200u);
    EXPECT_FALSE(m2.flags().c);
    EXPECT_TRUE(m2.flags().v); // 100+100 overflows signed 8-bit
    EXPECT_TRUE(m2.flags().s);
}

TEST(Machine, DataCoalescing16BitAddOn8BitCore)
{
    // The paper's coalescing scheme: ADD low words, ADC high words.
    // 0x01F0 + 0x0220 = 0x0410 split across two 8-bit words.
    const Program p = prog(R"(
        STORE [0], #0xF0   ; a.lo
        STORE [1], #0x01   ; a.hi
        STORE [2], #0x20   ; b.lo
        STORE [3], #0x02   ; b.hi
        ADD [0], [2]
        ADC [1], [3]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 4);
    m.run();
    EXPECT_EQ(m.mem(0), 0x10u);
    EXPECT_EQ(m.mem(1), 0x04u);
}

TEST(Machine, LogicOpsClearCarry)
{
    const Program p = prog(R"(
        STORE [0], #0xF0
        STORE [1], #0x0F
        ADD [0], [1]       ; sets C=0 but result 0xFF sets S
        STORE [0], #0xFF
        STORE [1], #0xFF
        ADD [0], [1]       ; C=1
        AND [0], [1]       ; C cleared
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_FALSE(m.flags().c);
    EXPECT_EQ(m.mem(0), 0xFEu & 0xFFu);
}

TEST(Machine, UnaryOpsReadOp2WriteOp1)
{
    // NOT acts as move+invert: mem[0] = ~mem[1].
    const Program p = prog(R"(
        STORE [1], #0x0F
        NOT [0], [1]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_EQ(m.mem(0), 0xF0u);
    EXPECT_EQ(m.mem(1), 0x0Fu);
}

TEST(Machine, RotatesAndCarryChain)
{
    const Program p = prog(R"(
        STORE [0], #0x81
        RL [0], [0]        ; 0x03, C=1
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 1);
    m.run();
    EXPECT_EQ(m.mem(0), 0x03u);
    EXPECT_TRUE(m.flags().c);

    // RRC through carry: multi-word right shift.
    const Program p2 = prog(R"(
        STORE [0], #0x01   ; hi
        STORE [1], #0x00   ; lo
        RR [0], [0]        ; hi >>= 1 (rotate), C = old bit0 = 1
        RRC [1], [1]       ; lo = C:lo>>1 = 0x80
        halt: BRN halt, #0
    )");
    TpIsaMachine m2(p2, 2);
    m2.run();
    EXPECT_EQ(m2.mem(1), 0x80u);
}

TEST(Machine, RraKeepsSign)
{
    const Program p = prog(R"(
        STORE [0], #0x82
        RRA [0], [0]
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 1);
    m.run();
    EXPECT_EQ(m.mem(0), 0xC1u);
}

TEST(Machine, BarAddressing)
{
    // SET-BAR loads the BAR from a pointer held in data memory.
    const Program p = prog(R"(
        STORE [0], #16     ; pointer value
        SETBAR [0], #1     ; BAR1 = mem[0] = 16
        STORE [b1+2], #99
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 32);
    m.run();
    EXPECT_EQ(m.bar(1), 16u);
    EXPECT_EQ(m.mem(18), 99u);
}

TEST(Machine, DynamicIndexingViaSetbar)
{
    // Walk an array by incrementing the pointer word: the idiom
    // that lets TP-ISA kernels loop over arrays (Section 5.1).
    const Program p = prog(R"(
        STORE [0], #4      ; ptr = &arr[0]
        STORE [1], #1      ; one
        STORE [2], #3      ; count
        STORE [4], #10
        STORE [5], #20
        STORE [6], #30
        STORE [3], #0      ; sum
        loop:
            SETBAR [0], #1
            ADD [3], [b1+0] ; sum += *ptr
            ADD [0], [1]    ; ptr++
            SUB [2], [1]
            BRN loop, Z
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 8);
    m.run();
    EXPECT_EQ(m.mem(3), 60u);
}

TEST(Machine, BranchLoop)
{
    // Count down from 5: loop body runs 5 times.
    const Program p = prog(R"(
        STORE [0], #5
        STORE [1], #1
        STORE [2], #0
        loop:
            ADD [2], [1]   ; counter++
            SUB [0], [1]
            BRN loop, Z    ; while not zero
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 3);
    m.run();
    EXPECT_EQ(m.mem(2), 5u);
    EXPECT_EQ(m.stats().branches, 6u); // 5 loop + 1 halt
    EXPECT_EQ(m.stats().takenBranches, 5u); // 4 back + 1 halt
}

TEST(Machine, FellOffEndHalts)
{
    const Program p = prog("STORE [0], #1\nSTORE [1], #2");
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_EQ(m.stats().halt, HaltReason::FellOffEnd);
    EXPECT_EQ(m.stats().instructions, 2u);
}

TEST(Machine, MaxStepsGuard)
{
    const Program p = prog(R"(
        loop: STORE [0], #1
        BRN loop, #0
    )");
    TpIsaMachine m(p, 1);
    m.run(100);
    EXPECT_EQ(m.stats().halt, HaltReason::MaxSteps);
}

TEST(Machine, FourBitDatawidthMasks)
{
    const Program p = prog(R"(
        STORE [0], #15
        STORE [1], #1
        ADD [0], [1]
        halt: BRN halt, #0
    )", 4);
    TpIsaMachine m(p, 2);
    m.run();
    EXPECT_EQ(m.mem(0), 0u);
    EXPECT_TRUE(m.flags().c);
    EXPECT_TRUE(m.flags().z);
}

TEST(Machine, RawAdjacentTracked)
{
    const Program p = prog(R"(
        STORE [0], #1
        ADD [1], [0]   ; reads [0] written by previous -> RAW
        ADD [2], [3]   ; independent
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 4);
    m.run();
    EXPECT_EQ(m.stats().rawAdjacent, 1u);
}

TEST(Machine, MemoryBoundsEnforced)
{
    const Program p = prog(R"(
        STORE [10], #1
        halt: BRN halt, #0
    )");
    TpIsaMachine m(p, 4); // only 4 words
    EXPECT_THROW(m.run(), FatalError);
}

// ----------------------------------------------------------------
// Pipeline cycle model
// ----------------------------------------------------------------

TEST(Pipeline, SingleStageCpiIsOne)
{
    ExecutionStats s;
    s.instructions = 100;
    s.branches = 10;
    s.takenBranches = 7;
    s.rawAdjacent = 5;
    EXPECT_EQ(pipelineCycles(s, 1), 100u);
    EXPECT_DOUBLE_EQ(pipelineCpi(s, 1), 1.0);
}

TEST(Pipeline, TwoStageChargesBranches)
{
    ExecutionStats s;
    s.instructions = 100;
    s.branches = 10;
    s.rawAdjacent = 5;
    EXPECT_EQ(pipelineCycles(s, 2), 110u);
}

TEST(Pipeline, ThreeStageChargesBranchesAndRaw)
{
    ExecutionStats s;
    s.instructions = 100;
    s.branches = 10;
    s.rawAdjacent = 5;
    EXPECT_EQ(pipelineCycles(s, 3), 100u + 20u + 5u);
}

TEST(Pipeline, WorstCaseCpiEqualsStages)
{
    // Paper, Section 5.2: worst-case CPI equals the stage count.
    // A program of only branches with every pair RAW-adjacent:
    ExecutionStats s;
    s.instructions = 50;
    s.branches = 50;
    s.rawAdjacent = 0;
    EXPECT_LE(pipelineCpi(s, 2), worstCaseCpi(2));
    EXPECT_LE(pipelineCpi(s, 3), worstCaseCpi(3));
    EXPECT_EQ(worstCaseCpi(3), 3u);
}

} // anonymous namespace
} // namespace printed
