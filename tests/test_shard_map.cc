/**
 * @file
 * Property tests of the consistent-hash ring (service/shard_map).
 * These pin the three contracts the sharded topology rests on:
 * cross-process determinism (a balancer, a bench, and a test agree
 * on every assignment), bounded imbalance over a large key
 * population, and minimal remap when the shard set changes.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/config.hh"
#include "service/protocol.hh"
#include "service/shard_map.hh"

namespace
{

using namespace printed;
using namespace printed::service;

/**
 * ~9k distinct canonical CoreConfigKeys: every opcode-mask value of
 * the Section 7 pruning knob across a few shapes — the exact key
 * population the balancer routes (routeKey of synth/yield is
 * "cfg|" + configKey).
 */
std::vector<std::string>
sampledConfigKeys()
{
    std::vector<std::string> keys;
    const unsigned shapes[][3] = {
        {1, 4, 2}, {1, 8, 2}, {2, 8, 4},
        {1, 16, 2}, {3, 8, 4}, {2, 4, 2},
        {1, 8, 4}, {3, 16, 4}, {2, 16, 2},
    };
    for (const auto &shape : shapes) {
        CoreConfig base =
            CoreConfig::standard(shape[0], shape[1], shape[2]);
        for (unsigned mask = 1; mask <= 0x3FF; ++mask) {
            CoreConfig c = base;
            c.opcodeMask = mask;
            keys.push_back("cfg|" + configKey(c));
        }
    }
    return keys;
}

TEST(ShardMap, DeterministicAcrossInstancesAndIdOrder)
{
    // The mapping is a pure function of (id set, vnodes, seed, key
    // bytes): two independently built rings agree everywhere, and
    // the order the ids were listed in is irrelevant — which is
    // what lets a balancer, a bench, and a test in three processes
    // route identically.
    const ShardMap a = ShardMap::forCount(4);
    const ShardMap b({0, 1, 2, 3});
    const ShardMap c({3, 1, 0, 2});
    for (const std::string &key : sampledConfigKeys()) {
        const unsigned owner = a.shardFor(key);
        EXPECT_EQ(b.shardFor(key), owner);
        EXPECT_EQ(c.shardFor(key), owner);
        EXPECT_EQ(a.hashKey(key), ShardMap::hashKey(key));
    }
}

TEST(ShardMap, BalanceWithinEpsilonOverSampledKeys)
{
    const std::vector<std::string> keys = sampledConfigKeys();
    ASSERT_GE(keys.size(), 9000u);
    for (unsigned n : {2u, 4u, 8u}) {
        const ShardMap ring = ShardMap::forCount(n);
        std::map<unsigned, std::size_t> load;
        for (const std::string &key : keys)
            ++load[ring.shardFor(key)];
        ASSERT_EQ(load.size(), n) << "a shard owns no keys";
        for (const auto &[shard, count] : load) {
            const double share =
                double(count) / double(keys.size());
            // Max share <= 1/N + epsilon. 128 vnodes/shard keeps
            // the worst arc well under +10% absolute.
            EXPECT_LE(share, 1.0 / n + 0.10)
                << "shard " << shard << " of " << n;
            EXPECT_GE(share, 1.0 / n - 0.10)
                << "shard " << shard << " of " << n;
        }
    }
}

TEST(ShardMap, AddingAShardMovesOnlyCapturedKeys)
{
    const std::vector<std::string> keys = sampledConfigKeys();
    const ShardMap before = ShardMap::forCount(4);
    const ShardMap after = ShardMap::forCount(5);
    std::size_t moved = 0;
    for (const std::string &key : keys) {
        const unsigned was = before.shardFor(key);
        const unsigned now = after.shardFor(key);
        if (was != now) {
            // Every moved key moves TO the new shard: nobody else
            // trades keys when shard 4 joins.
            EXPECT_EQ(now, 4u) << key;
            ++moved;
        }
    }
    // ~K/(N+1) keys move: the new shard's fair share, not a full
    // reshuffle (modulo hashing would move ~4/5 of all keys).
    const double frac = double(moved) / double(keys.size());
    EXPECT_GT(frac, 0.10);
    EXPECT_LT(frac, 0.30);
}

TEST(ShardMap, RemovingAShardMovesOnlyItsKeys)
{
    const std::vector<std::string> keys = sampledConfigKeys();
    const ShardMap before({0, 1, 2, 3});
    const ShardMap after({0, 1, 2});
    std::size_t orphaned = 0;
    for (const std::string &key : keys) {
        const unsigned was = before.shardFor(key);
        const unsigned now = after.shardFor(key);
        if (was == 3) {
            // The dead shard's keys scatter over the survivors.
            EXPECT_NE(now, 3u);
            ++orphaned;
        } else {
            // Survivors keep every key they had.
            EXPECT_EQ(now, was) << key;
        }
    }
    EXPECT_GT(orphaned, 0u);
}

TEST(ShardMap, FailoverOrderIsThePermutationRemovalWouldProduce)
{
    const ShardMap ring = ShardMap::forCount(4);
    const std::vector<std::string> keys = sampledConfigKeys();
    for (std::size_t i = 0; i < keys.size(); i += 97) {
        const std::string &key = keys[i];
        const std::vector<unsigned> order = ring.failoverOrder(key);
        ASSERT_EQ(order.size(), 4u);
        EXPECT_EQ(order.front(), ring.shardFor(key));
        EXPECT_EQ(std::set<unsigned>(order.begin(), order.end())
                      .size(),
                  4u);

        // The first fallback is exactly the shard that inherits
        // the key if the primary leaves the ring — the balancer's
        // mark-down re-route equals the remap rule.
        std::vector<unsigned> survivors;
        for (unsigned id : {0u, 1u, 2u, 3u})
            if (id != order.front())
                survivors.push_back(id);
        const ShardMap without(survivors);
        EXPECT_EQ(without.shardFor(key), order[1]) << key;
    }
}

TEST(ShardMap, StreamedAndMonolithicSweepsRouteTogether)
{
    // A resumed stream must land on the shard that served the
    // first attempt: routeKey ignores stream/resume_from.
    SweepSpec spec;
    spec.stages = {1, 2};
    spec.widths = {4, 8};
    spec.bars = {2};
    const Request mono =
        parseRequest(sweepRequest("a", spec));
    const Request streamed =
        parseRequest(sweepStreamRequest("b", spec, 3));
    EXPECT_EQ(routeKey(mono), routeKey(streamed));

    // Synth and yield on one config share a shard (one hot
    // SynthCache entry serves both).
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Request synth = parseRequest(synthRequest("c", cfg));
    const Request yield =
        parseRequest(yieldRequest("d", cfg, 64));
    EXPECT_EQ(routeKey(synth), routeKey(yield));
}

TEST(ShardMap, RejectsDegenerateRings)
{
    EXPECT_THROW(ShardMap({}), std::invalid_argument);
    EXPECT_THROW(ShardMap({1, 1}), std::invalid_argument);
    EXPECT_THROW(ShardMap({0, 1}, 0), std::invalid_argument);
}

} // namespace
