/**
 * @file
 * Tests for the characterization core: static timing, area, and
 * power analysis, verified against hand-computed values from the
 * Table 2 cell data — plus thread-count determinism of the
 * variation Monte Carlo (the test_fault.cc pattern extended to
 * analysis code running on common/parallel.hh).
 */

#include <gtest/gtest.h>

#include "analysis/characterize.hh"
#include "analysis/variation.hh"
#include "netlist/netlist.hh"
#include "synth/blocks.hh"

namespace printed
{
namespace
{

using namespace synth;

TEST(Timing, InverterChainAlternatesRiseFall)
{
    // Two EGFET inverters in series: the worst path to the output is
    // max over polarities. For INV: out_rise = in_fall + rise,
    // out_fall = in_rise + fall.
    //   After inv1: rise = 1212, fall = 174.
    //   After inv2: rise = 174 + 1212 = 1386, fall = 1212 + 174 = 1386.
    Netlist nl;
    NetId n = nl.addInput("a");
    n = nl.addGate(CellKind::INVX1, n);
    n = nl.addGate(CellKind::INVX1, n);
    nl.addOutput("y", n);

    const TimingReport t = analyzeTiming(nl, egfetLibrary());
    EXPECT_DOUBLE_EQ(t.outputDelayUs, 1386.0);
    EXPECT_DOUBLE_EQ(t.criticalPathUs, 1386.0);
}

TEST(Timing, RegisterToRegisterPath)
{
    // DFF -> INV -> DFF in EGFET:
    // clk-to-q (worst 6149) + INV (rise from fall: q_fall=3923 ->
    // 3923 + 1212 = 5135; fall from rise: 6149 + 174 = 6323).
    // Path to D = 6323.
    Netlist nl;
    const NetId d = nl.addInput("d");
    const NetId q1 = nl.addFlop(d);
    const NetId inv = nl.addGate(CellKind::INVX1, q1);
    const NetId q2 = nl.addFlop(inv);
    nl.addOutput("q", q2);

    const TimingReport t = analyzeTiming(nl, egfetLibrary());
    EXPECT_DOUBLE_EQ(t.regPathUs, 6323.0);
    EXPECT_DOUBLE_EQ(t.periodUs, 6323.0);
    EXPECT_NEAR(t.fmaxHz, 1e6 / 6323.0, 1e-9);
}

TEST(Timing, PeriodFlooredAtFlopDelay)
{
    // A flop feeding itself directly: period = clk-to-q floor.
    Netlist nl;
    const NetId fb = nl.makeFeedback();
    const NetId q = nl.addFlop(fb);
    nl.resolveFeedback(fb, q);
    nl.addOutput("q", q);

    const TimingReport t = analyzeTiming(nl, egfetLibrary());
    EXPECT_DOUBLE_EQ(t.periodUs, 6149.0);
}

TEST(Timing, CntFasterThanEgfet)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 8);
    const Bus b = busInputs(nl, "b", 8);
    const AddResult res = rippleAdder(nl, a, b, nl.constZero());
    busOutputs(nl, "s", res.sum);

    const TimingReport te = analyzeTiming(nl, egfetLibrary());
    const TimingReport tc = analyzeTiming(nl, cntLibrary());
    EXPECT_GT(te.criticalPathUs, 100 * tc.criticalPathUs);
}

TEST(Area, SumsCellAreas)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    const NetId b = nl.addInput("b");
    const NetId x = nl.addGate(CellKind::NAND2X1, a, b); // 0.247
    const NetId q = nl.addFlop(x);                       // 1.41
    nl.addOutput("q", q);

    const AreaReport area = analyzeArea(nl, egfetLibrary());
    EXPECT_DOUBLE_EQ(area.total_mm2, 0.247 + 1.41);
    EXPECT_DOUBLE_EQ(area.comb_mm2, 0.247);
    EXPECT_DOUBLE_EQ(area.seq_mm2, 1.41);
    EXPECT_DOUBLE_EQ(area.totalCm2(), (0.247 + 1.41) / 100.0);
}

TEST(Power, DynamicScalesWithFrequency)
{
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));

    const PowerReport p1 = analyzePower(nl, egfetLibrary(), 10.0, 1.0);
    const PowerReport p2 = analyzePower(nl, egfetLibrary(), 20.0, 1.0);
    EXPECT_NEAR(p2.dynamic_mW, 2 * p1.dynamic_mW, 1e-12);
    EXPECT_DOUBLE_EQ(p1.static_mW, p2.static_mW);
}

TEST(Power, HandComputedInverter)
{
    // One EGFET INV at 100 Hz with activity 1.0:
    // dynamic = 9.8 nJ * 100 Hz = 980 nW = 9.8e-4 mW.
    // static = 5.8 uW * 1 stage = 5.8e-3 mW.
    Netlist nl;
    const NetId a = nl.addInput("a");
    nl.addOutput("y", nl.addGate(CellKind::INVX1, a));

    const PowerReport p = analyzePower(nl, egfetLibrary(), 100.0, 1.0);
    EXPECT_NEAR(p.dynamic_mW, 9.8e-4, 1e-12);
    EXPECT_NEAR(p.static_mW, 5.8e-3, 1e-12);
    EXPECT_NEAR(p.total_mW, 9.8e-4 + 5.8e-3, 1e-12);
}

TEST(Power, EnergyPerCycleConsistent)
{
    Netlist nl;
    const Bus a = busInputs(nl, "a", 4);
    const Bus q = registerBank(nl, a);
    busOutputs(nl, "q", q);

    const double f = 50.0;
    const PowerReport p = analyzePower(nl, egfetLibrary(), f, 0.88);
    // energy/cycle [nJ] * f [Hz] == total power [nW].
    EXPECT_NEAR(p.energyPerCycle_nJ * f, p.total_mW * 1e6, 1e-6);
}

TEST(Characterize, EightBitAdderEndToEnd)
{
    Netlist nl("adder8");
    const Bus a = busInputs(nl, "a", 8);
    const Bus b = busInputs(nl, "b", 8);
    const AddResult res = rippleAdder(nl, a, b, nl.constZero());
    busOutputs(nl, "s", res.sum);
    nl.addOutput("cout", res.carryOut);

    const Characterization ch = characterize(nl, egfetLibrary());
    EXPECT_EQ(ch.label, "adder8");
    EXPECT_GT(ch.gateCount(), 30u);   // ~5 cells per full adder
    EXPECT_LT(ch.gateCount(), 60u);
    EXPECT_GT(ch.areaCm2(), 0.0);
    EXPECT_GT(ch.fmaxHz(), 1.0);      // combinational: 1/delay
    EXPECT_GT(ch.powerMw(), 0.0);
    EXPECT_EQ(ch.stats.seqGates, 0u);
}

TEST(Characterize, SequentialBlockUsesRegPath)
{
    Netlist nl("pipeline_stage");
    const Bus a = busInputs(nl, "a", 8);
    const Bus q1 = registerBank(nl, a);
    const Bus inc = incrementer(nl, q1);
    const Bus q2 = registerBank(nl, inc);
    busOutputs(nl, "q", q2);

    const Characterization ch = characterize(nl, egfetLibrary());
    EXPECT_EQ(ch.stats.seqGates, 16u);
    EXPECT_GT(ch.timing.periodUs,
              egfetLibrary().flopPeriodFloorUs());
    // EGFET frequencies land in the paper's "few Hz to kHz" band.
    EXPECT_GT(ch.fmaxHz(), 1.0);
    EXPECT_LT(ch.fmaxHz(), 1000.0);
}

// ----------------------------------------------------------------
// Variation Monte Carlo: parallel determinism
// ----------------------------------------------------------------

/** A small but non-trivial sequential netlist for the MC. */
Netlist
makeVariationTestNetlist()
{
    Netlist nl("vartest");
    const Bus a = busInputs(nl, "a", 8);
    const Bus b = busInputs(nl, "b", 8);
    const AddResult res = rippleAdder(nl, a, b, nl.constZero());
    const Bus q = registerBank(nl, res.sum);
    busOutputs(nl, "s", q);
    nl.validate();
    return nl;
}

TEST(Variation, BitIdenticalAcrossThreadCounts)
{
    const Netlist nl = makeVariationTestNetlist();
    VariationModel model;
    model.samples = 64;
    model.seed = 99;

    model.threads = 1;
    const VariationReport serial =
        analyzeVariation(nl, egfetLibrary(), model);
    for (unsigned threads : {2u, 8u}) {
        model.threads = threads;
        const VariationReport parallel =
            analyzeVariation(nl, egfetLibrary(), model);
        // Bit-identical, not merely close: per-sample seeding plus
        // index-ordered reduction make the thread count invisible.
        EXPECT_EQ(serial.nominalPeriodUs, parallel.nominalPeriodUs);
        EXPECT_EQ(serial.meanPeriodUs, parallel.meanPeriodUs);
        EXPECT_EQ(serial.stdDevUs, parallel.stdDevUs);
        EXPECT_EQ(serial.p50Us, parallel.p50Us);
        EXPECT_EQ(serial.p95Us, parallel.p95Us);
        EXPECT_EQ(serial.p99Us, parallel.p99Us);
        EXPECT_EQ(serial.worstUs, parallel.worstUs);
    }
}

TEST(Variation, SamplesAreIndependentOfSampleCount)
{
    // Per-sample seeding also means sample s draws the same
    // multipliers no matter how many other samples run: the sorted
    // 32-sample distribution is a superset-invariant of the first
    // 16 samples' values.
    const Netlist nl = makeVariationTestNetlist();
    VariationModel small;
    small.samples = 16;
    small.seed = 5;
    VariationModel big = small;
    big.samples = 32;

    const auto rs = analyzeVariation(nl, egfetLibrary(), small);
    const auto rb = analyzeVariation(nl, egfetLibrary(), big);
    // Worst of the superset can only grow.
    EXPECT_GE(rb.worstUs, rs.worstUs);
    EXPECT_EQ(rs.nominalPeriodUs, rb.nominalPeriodUs);
}

} // anonymous namespace
} // namespace printed
