/**
 * @file
 * Unit tests for the technology descriptors and standard-cell
 * libraries (paper Tables 1 and 2).
 */

#include <gtest/gtest.h>

#include "tech/library.hh"
#include "tech/technology.hh"

namespace printed
{
namespace
{

TEST(Technology, SurveyHasNineRows)
{
    EXPECT_EQ(technologySurvey().size(), 9u);
}

TEST(Technology, EgfetIsBatteryCompatibleAdditive)
{
    const TechnologyInfo &egfet = technologyInfo(TechKind::EGFET);
    EXPECT_TRUE(egfet.batteryCompatible);
    EXPECT_EQ(egfet.route, ProcessingRoute::Additive);
    EXPECT_LE(egfet.maxVoltage, 1.0);
    EXPECT_DOUBLE_EQ(egfet.mobility, 126.0);
}

TEST(Technology, CntIsBatteryCompatibleSubtractive)
{
    const TechnologyInfo &cnt = technologyInfo(TechKind::CNT_TFT);
    EXPECT_TRUE(cnt.batteryCompatible);
    EXPECT_EQ(cnt.route, ProcessingRoute::Subtractive);
    EXPECT_DOUBLE_EQ(cnt.mobility, 25.0);
}

TEST(Technology, OnlyLowVoltageRowsAreBatteryCompatible)
{
    for (const auto &row : technologySurvey()) {
        if (row.batteryCompatible)
            EXPECT_LE(row.maxVoltage, 3.0) << row.name;
        else
            EXPECT_GT(row.maxVoltage, 3.0) << row.name;
    }
}

TEST(CellLibrary, VddMatchesPaper)
{
    EXPECT_DOUBLE_EQ(egfetLibrary().vdd(), 1.0);
    EXPECT_DOUBLE_EQ(cntLibrary().vdd(), 3.0);
}

TEST(CellLibrary, Table2EgfetSpotChecks)
{
    const CellLibrary &lib = egfetLibrary();
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::INVX1).area_mm2, 0.224);
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::INVX1).rise_us, 1212);
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::DFFX1).area_mm2, 1.41);
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::DFFX1).energy_nJ, 2360);
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::DFFNRX1).area_mm2, 2.77);
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::XNOR2X1).rise_us, 6159);
}

TEST(CellLibrary, Table2CntSpotChecks)
{
    const CellLibrary &lib = cntLibrary();
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::INVX1).area_mm2, 0.002);
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::DFFX1).energy_nJ, 41.5);
    EXPECT_DOUBLE_EQ(lib.cell(CellKind::TSBUFX1).fall_us, 2.83);
}

TEST(CellLibrary, DffDominatesCombCells)
{
    // The paper's key architectural observation (Section 5): DFFs
    // are considerably more expensive than combinational cells in
    // both technologies.
    for (TechKind kind : {TechKind::EGFET, TechKind::CNT_TFT}) {
        const CellLibrary &lib = libraryFor(kind);
        const CellSpec &dff = lib.cell(CellKind::DFFX1);
        const CellSpec &nand2 = lib.cell(CellKind::NAND2X1);
        EXPECT_GT(dff.area_mm2, 4 * nand2.area_mm2) << lib.name();
        EXPECT_GT(dff.energy_nJ, nand2.energy_nJ) << lib.name();
        EXPECT_GT(lib.staticPowerUw(CellKind::DFFX1),
                  4 * lib.staticPowerUw(CellKind::NAND2X1))
            << lib.name();
    }
}

TEST(CellLibrary, CntCellsSmallerAndFasterThanEgfet)
{
    // Section 3.2.1: CNT-TFT cells are much smaller, faster, and
    // lower energy than EGFET.
    const CellLibrary &egfet = egfetLibrary();
    const CellLibrary &cnt = cntLibrary();
    for (std::size_t i = 0; i < numCellKinds; ++i) {
        const auto kind = static_cast<CellKind>(i);
        EXPECT_LT(cnt.cell(kind).area_mm2, egfet.cell(kind).area_mm2)
            << cellName(kind);
        EXPECT_LT(cnt.cell(kind).worstDelayUs(),
                  egfet.cell(kind).worstDelayUs())
            << cellName(kind);
    }
}

TEST(CellLibrary, CellNamesRoundTrip)
{
    EXPECT_EQ(cellName(CellKind::NAND2X1), "NAND2X1");
    EXPECT_EQ(cellName(CellKind::DFFNRX1), "DFFNRX1");
}

TEST(CellLibrary, InputCounts)
{
    EXPECT_EQ(cellInputCount(CellKind::INVX1), 1u);
    EXPECT_EQ(cellInputCount(CellKind::DFFX1), 1u);
    EXPECT_EQ(cellInputCount(CellKind::DFFNRX1), 2u);
    EXPECT_EQ(cellInputCount(CellKind::NAND2X1), 2u);
    EXPECT_EQ(cellInputCount(CellKind::TSBUFX1), 2u);
}

TEST(CellLibrary, Classification)
{
    EXPECT_TRUE(cellIsSequential(CellKind::DFFX1));
    EXPECT_TRUE(cellIsSequential(CellKind::LATCHX1));
    EXPECT_FALSE(cellIsSequential(CellKind::INVX1));
    EXPECT_TRUE(cellIsInverting(CellKind::NAND2X1));
    EXPECT_FALSE(cellIsInverting(CellKind::AND2X1));
    EXPECT_TRUE(cellIsNonMonotone(CellKind::XOR2X1));
    EXPECT_FALSE(cellIsNonMonotone(CellKind::OR2X1));
}

TEST(CellLibrary, FlopPeriodFloor)
{
    // EGFET DFF: max(6149, 3923) = 6149 us.
    EXPECT_DOUBLE_EQ(egfetLibrary().flopPeriodFloorUs(), 6149);
    EXPECT_DOUBLE_EQ(cntLibrary().flopPeriodFloorUs(), 4.19);
}

} // anonymous namespace
} // namespace printed
