/**
 * @file
 * Tests for the legacy-core study: the Table 4 registry and
 * statistical model, the portable IR (validated against golden),
 * and the three real backends + instruction-set simulators
 * (8080/Z80, MSP430, ZPU), each executing every kernel and
 * matching the golden models.
 */

#include <gtest/gtest.h>

#include "legacy/cores.hh"
#include "legacy/i8080.hh"
#include "legacy/ir.hh"
#include "legacy/msp430.hh"
#include "legacy/zpu.hh"
#include "workloads/kernels.hh"

namespace printed
{
namespace
{

using namespace legacy;

// ----------------------------------------------------------------
// Table 4 registry + statistical model
// ----------------------------------------------------------------

TEST(LegacySpec, Table4Rows)
{
    const auto &msp = legacyCoreSpec(LegacyCore::OpenMsp430);
    EXPECT_EQ(msp.egfet.gateCount, 12101u);
    EXPECT_DOUBLE_EQ(msp.egfet.fmaxHz, 4.07);
    EXPECT_DOUBLE_EQ(msp.egfet.areaCm2, 56.38);
    EXPECT_DOUBLE_EQ(msp.cnt.powerMw, 1335.8);

    const auto &l80 = legacyCoreSpec(LegacyCore::Light8080);
    EXPECT_DOUBLE_EQ(l80.egfet.fmaxHz, 17.39);
    EXPECT_EQ(l80.egfet.gateCount, 1948u);
    EXPECT_EQ(l80.cpiMax, 30u);
}

TEST(LegacySpec, ModelReproducesPublishedAreaWithin25Percent)
{
    for (LegacyCore core : allLegacyCores) {
        for (TechKind tech : {TechKind::EGFET, TechKind::CNT_TFT}) {
            const auto &published =
                legacyCoreSpec(core).tech(tech);
            const auto model = modelLegacyCore(core, tech);
            EXPECT_NEAR(model.area.totalCm2(), published.areaCm2,
                        published.areaCm2 * 0.25)
                << legacyCoreSpec(core).name << " "
                << techName(tech);
        }
    }
}

TEST(LegacySpec, ModelReproducesPublishedPowerWithin35Percent)
{
    for (LegacyCore core : allLegacyCores) {
        for (TechKind tech : {TechKind::EGFET, TechKind::CNT_TFT}) {
            const auto &published =
                legacyCoreSpec(core).tech(tech);
            const auto model = modelLegacyCore(core, tech);
            EXPECT_NEAR(model.powerAtFmax.total_mW,
                        published.powerMw, published.powerMw * 0.35)
                << legacyCoreSpec(core).name << " "
                << techName(tech);
        }
    }
}

TEST(LegacySpec, HistogramSumsToGateCount)
{
    const auto model =
        modelLegacyCore(LegacyCore::Z80, TechKind::EGFET);
    std::size_t total = 0;
    for (auto n : model.histogram)
        total += n;
    EXPECT_EQ(total, 5263u);
    EXPECT_GT(model.calibratedDepth, 1u);
}

// ----------------------------------------------------------------
// IR interpreter vs golden
// ----------------------------------------------------------------

struct IrCase
{
    Kernel kind;
    unsigned width;
};

class IrGolden : public ::testing::TestWithParam<IrCase>
{};

TEST_P(IrGolden, InterpreterMatchesGolden)
{
    const auto [kind, width] = GetParam();
    const IrProgram prog = irKernel(kind, width);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto inputs = defaultInputs(kind, width, seed);
        const auto want = goldenOutputs(kind, width, inputs);

        std::vector<std::uint64_t> init(prog.dataWords, 0);
        ASSERT_EQ(inputs.size(), prog.inputAddrs.size());
        for (std::size_t i = 0; i < inputs.size(); ++i)
            init[prog.inputAddrs[i]] = inputs[i];
        const auto mem = interpretIr(prog, init);

        ASSERT_EQ(want.size(), prog.outputAddrs.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(mem[prog.outputAddrs[i]], want[i])
                << prog.name << " seed " << seed;
    }
}

std::string
irName(const ::testing::TestParamInfo<IrCase> &info)
{
    return std::string(kernelName(info.param.kind)) +
           std::to_string(info.param.width);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, IrGolden,
    ::testing::Values(IrCase{Kernel::Mult, 8}, IrCase{Kernel::Mult, 16},
                      IrCase{Kernel::Mult, 32}, IrCase{Kernel::Div, 8},
                      IrCase{Kernel::Div, 16}, IrCase{Kernel::Div, 32},
                      IrCase{Kernel::InSort, 8},
                      IrCase{Kernel::InSort, 16},
                      IrCase{Kernel::InSort, 32},
                      IrCase{Kernel::IntAvg, 8},
                      IrCase{Kernel::IntAvg, 16},
                      IrCase{Kernel::IntAvg, 32},
                      IrCase{Kernel::THold, 8},
                      IrCase{Kernel::THold, 16},
                      IrCase{Kernel::THold, 32},
                      IrCase{Kernel::Crc8, 8},
                      IrCase{Kernel::DTree, 8},
                      IrCase{Kernel::DTree, 16},
                      IrCase{Kernel::DTree, 32}),
    irName);

// ----------------------------------------------------------------
// Backends: each kernel on each target vs golden
// ----------------------------------------------------------------

class BackendGolden : public ::testing::TestWithParam<IrCase>
{};

TEST_P(BackendGolden, I8080MatchesGolden)
{
    const auto [kind, width] = GetParam();
    const IrProgram prog = irKernel(kind, width);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto inputs = defaultInputs(kind, width, seed);
        const auto want = goldenOutputs(kind, width, inputs);
        const LegacyRun run = run8080(prog, inputs);
        ASSERT_EQ(run.outputs.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(run.outputs[i], want[i])
                << prog.name << " seed " << seed;
        EXPECT_GT(run.cycles, run.instructions); // multi-state ops
    }
}

TEST_P(BackendGolden, Msp430MatchesGolden)
{
    const auto [kind, width] = GetParam();
    const IrProgram prog = irKernel(kind, width);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto inputs = defaultInputs(kind, width, seed);
        const auto want = goldenOutputs(kind, width, inputs);
        const LegacyRun run = runMsp430(prog, inputs);
        ASSERT_EQ(run.outputs.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(run.outputs[i], want[i])
                << prog.name << " seed " << seed;
    }
}

TEST_P(BackendGolden, ZpuMatchesGolden)
{
    const auto [kind, width] = GetParam();
    const IrProgram prog = irKernel(kind, width);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto inputs = defaultInputs(kind, width, seed);
        const auto want = goldenOutputs(kind, width, inputs);
        const LegacyRun run = runZpu(prog, inputs);
        ASSERT_EQ(run.outputs.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(run.outputs[i], want[i])
                << prog.name << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, BackendGolden,
    ::testing::Values(IrCase{Kernel::Mult, 8}, IrCase{Kernel::Mult, 16},
                      IrCase{Kernel::Mult, 32}, IrCase{Kernel::Div, 8},
                      IrCase{Kernel::Div, 16},
                      IrCase{Kernel::InSort, 8},
                      IrCase{Kernel::InSort, 16},
                      IrCase{Kernel::IntAvg, 8},
                      IrCase{Kernel::IntAvg, 32},
                      IrCase{Kernel::THold, 8},
                      IrCase{Kernel::THold, 16},
                      IrCase{Kernel::Crc8, 8},
                      IrCase{Kernel::DTree, 8},
                      IrCase{Kernel::DTree, 16}),
    irName);

// ----------------------------------------------------------------
// Timing / size expectations
// ----------------------------------------------------------------

TEST(LegacyBackends, Z80TimingDiffersFrom8080)
{
    const IrProgram prog = irKernel(Kernel::Mult, 8);
    const auto inputs = defaultInputs(Kernel::Mult, 8, 1);
    const auto i80 = run8080(prog, inputs, I8080Timing::I8080);
    const auto z80 = run8080(prog, inputs, I8080Timing::Z80);
    EXPECT_EQ(i80.outputs, z80.outputs);
    EXPECT_EQ(i80.instructions, z80.instructions);
    EXPECT_NE(i80.cycles, z80.cycles);
}

TEST(LegacyBackends, ZpuCodeIsLargestForDTree)
{
    // Table 5 shape: stack code (many pushes per operation) is the
    // bulkiest representation for branch-heavy kernels.
    const IrProgram prog = irKernel(Kernel::DTree, 8);
    const auto z = sizeZpu(prog);
    const auto m = sizeMsp430(prog);
    EXPECT_GT(z.codeBytes, 0u);
    EXPECT_GT(m.codeBytes, 0u);
}

TEST(LegacyBackends, ZpuChargesEmulationPenalty)
{
    const IrProgram prog = irKernel(Kernel::Mult, 8);
    const auto inputs = defaultInputs(Kernel::Mult, 8, 1);
    const auto run = runZpu(prog, inputs);
    // CPI must exceed the base 4 because of EMULATE-class ops.
    EXPECT_GT(double(run.cycles) / double(run.instructions),
              double(zpuBaseCpi));
}

TEST(LegacyBackends, CodeSizesInTable5Regime)
{
    // Table 5 program sizes (reverse-engineered from the area
    // column at 0.84 mm^2/bit): MSP430 mult is ~512 bits = 64
    // bytes; ZPU mult ~976 bits = 122 bytes; Z80/light8080 mult
    // ~262 bits = 33 bytes. Our naive backends should land within
    // a small factor of those.
    const IrProgram prog = irKernel(Kernel::Mult, 8);
    const auto msp = sizeMsp430(prog);
    const auto i80 = size8080(prog);
    const auto zpu = sizeZpu(prog);
    EXPECT_GT(msp.codeBytes, 30u);
    EXPECT_LT(msp.codeBytes, 260u);
    EXPECT_GT(i80.codeBytes, 30u);
    EXPECT_LT(i80.codeBytes, 300u);
    EXPECT_GT(zpu.codeBytes, 40u);
    EXPECT_LT(zpu.codeBytes, 400u);
}

// ----------------------------------------------------------------
// 8080/Z80 cycle accounting and run-loop budget semantics
// ----------------------------------------------------------------

// A hand-assembled image that exercises every branch-outcome cost:
// XRA A sets Z (and clears CY), so CNZ falls through, CZ takes,
// RNZ falls through, and RZ returns.
//
//   0: LXI SP, 0        10 / 10   (pushes land in the FFxx page)
//   3: XRA A             4 /  4   Z=1 CY=0
//   4: CNZ 0            11 / 10   not taken
//   7: CZ  11           17 / 17   taken
//  10: HLT               7 /  4
//  11: RNZ               5 /  5   not taken
//  12: RZ               11 / 11   taken -> 10
const std::vector<std::uint8_t> condCallRetImage = {
    0x31, 0x00, 0x00, // LXI SP
    0xAF,             // XRA A
    0xC4, 0x00, 0x00, // CNZ (not taken)
    0xCC, 0x0B, 0x00, // CZ 11 (taken)
    0x76,             // HLT
    0xC0,             // RNZ (not taken)
    0xC8,             // RZ (taken)
};

TEST(LegacyBackends, ConditionalCallRetCyclesAreTakenAware)
{
    for (const IssEngine engine :
         {IssEngine::Scalar, IssEngine::Batch}) {
        const auto i80 = run8080Image(condCallRetImage, {{}},
                                      I8080Timing::I8080, engine);
        ASSERT_EQ(i80.size(), 1u);
        EXPECT_EQ(i80[0].status, MachineStatus::Halted);
        EXPECT_EQ(i80[0].instructions, 7u);
        EXPECT_EQ(i80[0].cycles, 10 + 4 + 11 + 17 + 5 + 11 + 7u);

        const auto z80 = run8080Image(condCallRetImage, {{}},
                                      I8080Timing::Z80, engine);
        EXPECT_EQ(z80[0].status, MachineStatus::Halted);
        EXPECT_EQ(z80[0].cycles, 10 + 4 + 10 + 17 + 5 + 11 + 4u);
    }
}

TEST(LegacyBackends, HaltWinsAtExactStepBudget)
{
    // The image halts on its 7th instruction. A budget of exactly
    // 7 is Halted - the budget is only exhausted when the machine
    // would have to fetch beyond it - and 6 is OutOfBudget with
    // all 6 paid-for instructions retired.
    for (const IssEngine engine :
         {IssEngine::Scalar, IssEngine::Batch}) {
        const auto at = run8080Image(condCallRetImage, {{}},
                                     I8080Timing::I8080, engine, 7);
        EXPECT_EQ(at[0].status, MachineStatus::Halted);
        EXPECT_EQ(at[0].instructions, 7u);

        const auto under = run8080Image(
            condCallRetImage, {{}}, I8080Timing::I8080, engine, 6);
        EXPECT_EQ(under[0].status, MachineStatus::OutOfBudget);
        EXPECT_EQ(under[0].instructions, 6u);
    }
}

} // anonymous namespace
} // namespace printed
