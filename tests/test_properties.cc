/**
 * @file
 * Cross-module property tests: invariants that must hold across
 * the whole design space rather than at hand-picked points -
 * optimizer monotonicity, power-model linearity, disassembler
 * round trips for every generated kernel, and system-evaluation
 * dominance relations.
 */

#include <gtest/gtest.h>

#include "analysis/characterize.hh"
#include "common/rng.hh"
#include "dse/system_eval.hh"
#include "isa/assembler.hh"
#include "netlist/stats.hh"
#include "synth/blocks.hh"
#include "synth/opt.hh"

namespace printed
{
namespace
{

using namespace synth;

// ----------------------------------------------------------------
// Optimizer monotonicity over random netlists
// ----------------------------------------------------------------

Netlist
randomNetlist(Rng &rng, unsigned inputs, unsigned gates)
{
    Netlist nl("rand");
    Bus pool = busInputs(nl, "x", inputs);
    pool.push_back(nl.constZero());
    pool.push_back(nl.constOne());
    static const CellKind kinds[] = {
        CellKind::INVX1, CellKind::NAND2X1, CellKind::NOR2X1,
        CellKind::AND2X1, CellKind::OR2X1, CellKind::XOR2X1,
        CellKind::XNOR2X1};
    for (unsigned g = 0; g < gates; ++g) {
        const CellKind kind = kinds[rng.below(7)];
        const NetId a = pool[rng.below(pool.size())];
        if (cellInputCount(kind) == 1)
            pool.push_back(nl.addGate(kind, a));
        else
            pool.push_back(
                nl.addGate(kind, a, pool[rng.below(pool.size())]));
    }
    // Expose a handful of outputs so some logic is live.
    for (unsigned o = 0; o < 4; ++o)
        nl.addOutput("y" + std::to_string(o),
                     pool[pool.size() - 1 - o]);
    return nl;
}

TEST(Properties, OptimizerNeverHurtsAreaOrDepth)
{
    Rng rng(99);
    for (int trial = 0; trial < 15; ++trial) {
        Netlist nl = randomNetlist(rng, 6, 60);
        const AreaReport before_area =
            analyzeArea(nl, egfetLibrary());
        const TimingReport before_t =
            analyzeTiming(nl, egfetLibrary());

        optimize(nl);

        const AreaReport after_area =
            analyzeArea(nl, egfetLibrary());
        const TimingReport after_t =
            analyzeTiming(nl, egfetLibrary());
        EXPECT_LE(after_area.total_mm2,
                  before_area.total_mm2 + 1e-9)
            << "trial " << trial;
        EXPECT_LE(after_t.criticalPathUs,
                  before_t.criticalPathUs + 1e-9)
            << "trial " << trial;
    }
}

TEST(Properties, OptimizerIsIdempotent)
{
    Rng rng(123);
    for (int trial = 0; trial < 10; ++trial) {
        Netlist nl = randomNetlist(rng, 5, 50);
        optimize(nl);
        const std::size_t once = nl.gateCount();
        const OptStats again = optimize(nl);
        EXPECT_EQ(nl.gateCount(), once);
        EXPECT_EQ(again.gatesBefore, again.gatesAfter);
    }
}

// ----------------------------------------------------------------
// Power-model linearity
// ----------------------------------------------------------------

TEST(Properties, PowerLinearInActivityAndFrequency)
{
    Netlist nl("block");
    const Bus a = busInputs(nl, "a", 8);
    const Bus b = busInputs(nl, "b", 8);
    busOutputs(nl, "s",
               rippleAdder(nl, a, b, nl.constZero()).sum);

    const PowerReport base =
        analyzePower(nl, egfetLibrary(), 10.0, 0.4);
    const PowerReport act2 =
        analyzePower(nl, egfetLibrary(), 10.0, 0.8);
    const PowerReport freq2 =
        analyzePower(nl, egfetLibrary(), 20.0, 0.4);
    EXPECT_NEAR(act2.dynamic_mW, 2 * base.dynamic_mW, 1e-12);
    EXPECT_NEAR(freq2.dynamic_mW, 2 * base.dynamic_mW, 1e-12);
    EXPECT_DOUBLE_EQ(base.static_mW, act2.static_mW);
}

// ----------------------------------------------------------------
// Disassembler round trip for every generated kernel
// ----------------------------------------------------------------

TEST(Properties, AllKernelsDisassembleAndReassemble)
{
    for (const KernelPoint &p : paperKernelPoints()) {
        const Workload wl =
            makeWorkload(p.kind, p.dataWidth, p.dataWidth);
        const std::string text = disassemble(wl.program);
        const Program back =
            assemble(text, wl.program.isa, "roundtrip");
        ASSERT_EQ(back.size(), wl.program.size())
            << wl.program.name;
        for (std::size_t i = 0; i < back.size(); ++i)
            EXPECT_EQ(back.code[i], wl.program.code[i])
                << wl.program.name << " instruction " << i;
    }
}

// ----------------------------------------------------------------
// System evaluation dominance across the full kernel set
// ----------------------------------------------------------------

TEST(Properties, SpecializationDominatesEverywhere)
{
    // The Section 8 claim, checked at every (kernel, width) point:
    // the program-specific system never loses on energy or area.
    for (const KernelPoint &p : paperKernelPoints()) {
        const Workload wl =
            makeWorkload(p.kind, p.dataWidth, p.dataWidth);
        const auto std_eval = evaluateSystem(
            wl, CoreConfig::standard(1, p.dataWidth, 2),
            TechKind::EGFET);
        const auto ps_eval =
            evaluateSpecializedSystem(wl, TechKind::EGFET);
        EXPECT_LE(ps_eval.energyTotal(), std_eval.energyTotal())
            << wl.program.name;
        EXPECT_LE(ps_eval.areaTotal(), std_eval.areaTotal())
            << wl.program.name;
        EXPECT_EQ(ps_eval.cycles, std_eval.cycles)
            << wl.program.name;
    }
}

TEST(Properties, EnergyScalesWithDatawidth)
{
    // Wider standard cores burn more energy per iteration on the
    // same logical task (Table 8's column ordering).
    for (Kernel k : {Kernel::Mult, Kernel::Div, Kernel::IntAvg,
                     Kernel::THold, Kernel::InSort}) {
        double prev = 0;
        for (unsigned w : {8u, 16u, 32u}) {
            const Workload wl = makeWorkload(k, w, w);
            const auto eval = evaluateSystem(
                wl, CoreConfig::standard(1, w, 2),
                TechKind::EGFET);
            EXPECT_GT(eval.energyTotal(), prev)
                << kernelName(k) << " " << w;
            prev = eval.energyTotal();
        }
    }
}

} // anonymous namespace
} // namespace printed
