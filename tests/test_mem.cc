/**
 * @file
 * Tests for the printed memory models: Table 6 device data, the
 * crosspoint ROM geometry of Figure 9 (validated against the
 * paper's 16x9 reference: ~220 transistors, ~52 pull-ups,
 * 20.42 mm^2, ~1/3 of the WORM memory), MLC sizing, the SRAM
 * model (Table 5 arithmetic), and the ROM-vs-RAM headline.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/compare.hh"
#include "mem/devices.hh"
#include "mem/ram.hh"
#include "mem/rom.hh"

namespace printed
{
namespace
{

TEST(MemDevices, Table6Rows)
{
    const auto &ram = egfetMemoryDevice(MemDevice::Ram1b);
    EXPECT_DOUBLE_EQ(ram.area_mm2, 0.84);
    EXPECT_DOUBLE_EQ(ram.activePower_uW, 16.0);
    EXPECT_DOUBLE_EQ(ram.staticPower_uW, 3.23);
    EXPECT_DOUBLE_EQ(ram.delay_ms, 2.5);

    const auto &rom = egfetMemoryDevice(MemDevice::Rom1b);
    EXPECT_DOUBLE_EQ(rom.area_mm2, 0.05);
    EXPECT_DOUBLE_EQ(rom.activePower_uW, 2.77);
    EXPECT_DOUBLE_EQ(rom.delay_ms, 1.03);

    EXPECT_DOUBLE_EQ(egfetMemoryDevice(MemDevice::Adc4b).area_mm2,
                     25.4);
    EXPECT_EQ(egfetMemoryDevices().size(), 6u);
}

TEST(MemDevices, CntScalingIsSmallerAndFaster)
{
    const auto eg = memoryDevice(MemDevice::Rom1b, TechKind::EGFET);
    const auto cnt = memoryDevice(MemDevice::Rom1b, TechKind::CNT_TFT);
    EXPECT_LT(cnt.area_mm2, eg.area_mm2 / 10);
    // Section 8: CNT ROM access latency is 302 us.
    EXPECT_NEAR(cnt.delay_ms, 0.302, 1e-9);
}

TEST(MemDevices, RomDeviceSelection)
{
    EXPECT_EQ(romDeviceFor(1), MemDevice::Rom1b);
    EXPECT_EQ(romDeviceFor(2), MemDevice::Rom2b);
    EXPECT_EQ(romDeviceFor(4), MemDevice::Rom4b);
    EXPECT_THROW(romDeviceFor(3), FatalError);
    EXPECT_EQ(adcDeviceFor(2), MemDevice::Adc2b);
    EXPECT_THROW(adcDeviceFor(1), FatalError);
}

// ----------------------------------------------------------------
// Crosspoint ROM geometry (Figure 9 / Section 6)
// ----------------------------------------------------------------

TEST(CrosspointRomTest, PaperSixteenByNineReference)
{
    // The paper's reference design: 16 words x 9 bits, 9 sub-blocks
    // of 16 rows x 1 column, 220 transistors + 52 pull-up
    // resistors, 20.42 mm^2.
    const CrosspointRom rom(16, 9);
    EXPECT_EQ(rom.subBlocks(), 9u);
    EXPECT_EQ(rom.rows(), 16u);
    EXPECT_EQ(rom.columns(), 1u);
    EXPECT_EQ(rom.cells(), 144u);
    EXPECT_NEAR(double(rom.transistors()), 220.0, 5.0);
    EXPECT_NEAR(double(rom.pullUps()), 52.0, 2.0);
    EXPECT_NEAR(rom.areaMm2(), 20.42, 1.0);
}

TEST(CrosspointRomTest, ThirdOfWormArea)
{
    // Section 6: roughly 1/3 the area of the WORM design [79].
    const CrosspointRom rom(16, 9);
    const WormMemorySpec worm = wormReference();
    EXPECT_EQ(worm.totalTransistors(), 1004u);
    const double ratio = rom.areaMm2() / worm.area_mm2;
    EXPECT_GT(ratio, 0.25);
    EXPECT_LT(ratio, 0.42);
    EXPECT_LT(rom.transistors(), worm.totalTransistors() / 4);
}

TEST(CrosspointRomTest, WideMemoriesExtendInColumns)
{
    const CrosspointRom rom(256, 24);
    EXPECT_EQ(rom.rows(), 16u);
    EXPECT_EQ(rom.columns(), 16u);
    EXPECT_EQ(rom.subBlocks(), 24u);
    EXPECT_EQ(rom.cells(), 256u * 24u);
}

TEST(CrosspointRomTest, MlcCutsDTreeImemAreaByThirty)
{
    // Section 8: a 2-bit MLC ROM cuts the 256-word dTree
    // instruction memory area by almost 30%.
    const CrosspointRom slc(256, 24, 1);
    const CrosspointRom mlc(256, 24, 2);
    const double reduction = 1.0 - mlc.areaMm2() / slc.areaMm2();
    EXPECT_GT(reduction, 0.25);
    EXPECT_LT(reduction, 0.35);
}

TEST(CrosspointRomTest, MlcHalvesCells)
{
    const CrosspointRom slc(64, 24, 1);
    const CrosspointRom mlc(64, 24, 2);
    EXPECT_EQ(mlc.cells(), slc.cells() / 2);
    EXPECT_EQ(mlc.subBlocks(), 12u);
}

TEST(CrosspointRomTest, ReadEnergyIsPowerTimesDelay)
{
    const CrosspointRom rom(32, 24);
    EXPECT_NEAR(rom.readEnergyNj(),
                rom.activePower_uW() * rom.readDelayMs(), 1e-9);
    EXPECT_GT(rom.staticPower_uW(), 0.0);
}

// ----------------------------------------------------------------
// SRAM model (Table 5 arithmetic)
// ----------------------------------------------------------------

TEST(SramTest, Table5MspMultReference)
{
    // Table 5, openMSP430 mult: 512 bits of EGFET RAM are 4.3 cm^2
    // and 9.8 mW (bits x 0.84 mm^2, bits x 19.23 uW).
    const SramRam ram(32, 16); // 32 16-bit words = 512 bits
    EXPECT_EQ(ram.bits(), 512u);
    EXPECT_NEAR(ram.areaMm2() / 100.0, 4.3, 0.05);     // cm^2
    EXPECT_NEAR(ram.table5Power_mW(), 9.8, 0.1);
}

TEST(SramTest, AccessEnergyOnlyChargesOneWord)
{
    const SramRam ram(256, 8);
    EXPECT_DOUBLE_EQ(ram.activePower_uW(), 8 * 16.0);
    EXPECT_DOUBLE_EQ(ram.staticPower_uW(), 2048 * 3.23);
    EXPECT_NEAR(ram.accessEnergyNj(), 8 * 16.0 * 2.5, 1e-9);
}

// ----------------------------------------------------------------
// ROM vs RAM headline
// ----------------------------------------------------------------

TEST(RomVsRamTest, HeadlineFactors)
{
    // Abstract: 5.77x power, 16.8x area, 2.42x delay.
    const RomVsRam r = romVsRamPerDevice();
    EXPECT_NEAR(r.powerGain, 5.77, 0.01);
    EXPECT_NEAR(r.areaGain, 16.8, 0.01);
    EXPECT_NEAR(r.delayGain, 2.42, 0.01);
}

TEST(RomVsRamTest, WholeMemoryStillFavorsRom)
{
    const RomVsRam r = romVsRamForMemory(256, 24);
    EXPECT_GT(r.areaGain, 5.0);   // periphery eats part of 16.8x
    EXPECT_GT(r.powerGain, 1.0);
    EXPECT_GT(r.delayGain, 2.0);
}

} // anonymous namespace
} // namespace printed
