/**
 * @file
 * Tests for the benchmark workloads: every kernel at every (data
 * width, core width) combination runs on the instruction-set
 * simulator and must match the golden C++ model, across many
 * random input sets (property-style). Single-cycle gate-level
 * co-simulation is cross-checked for the native-width kernels.
 */

#include <gtest/gtest.h>

#include "arch/machine.hh"
#include "common/logging.hh"
#include "core/cosim.hh"
#include "core/generator.hh"
#include "workloads/kernels.hh"

namespace printed
{
namespace
{

std::vector<std::uint64_t>
runOnIss(const Workload &wl, const std::vector<std::uint64_t> &inputs,
         ExecutionStats *stats_out = nullptr)
{
    TpIsaMachine m(wl.program, wl.dmemWords);
    wl.load([&](std::size_t a, std::uint64_t v) { m.setMem(a, v); },
            inputs);
    if (wl.streamAddr >= 0)
        m.setStreamPort(std::size_t(wl.streamAddr),
                        wl.streamInputs(inputs));
    m.run();
    EXPECT_NE(m.stats().halt, HaltReason::MaxSteps)
        << wl.program.name;
    if (stats_out)
        *stats_out = m.stats();
    return wl.read([&](std::size_t a) { return m.mem(a); });
}

// ----------------------------------------------------------------
// Parameterized: kernel x data width x core width vs golden
// ----------------------------------------------------------------

struct WlCase
{
    Kernel kind;
    unsigned dataWidth;
    unsigned coreWidth;
};

class WorkloadGolden : public ::testing::TestWithParam<WlCase>
{};

TEST_P(WorkloadGolden, MatchesGoldenOverRandomInputs)
{
    const WlCase &c = GetParam();
    const Workload wl = makeWorkload(c.kind, c.dataWidth,
                                     c.coreWidth);
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const auto inputs = defaultInputs(c.kind, c.dataWidth, seed);
        const auto want = goldenOutputs(c.kind, c.dataWidth, inputs);
        const auto got = runOnIss(wl, inputs);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[i], want[i])
                << wl.program.name << " seed " << seed << " output "
                << i;
    }
}

std::string
wlName(const ::testing::TestParamInfo<WlCase> &info)
{
    return std::string(kernelName(info.param.kind)) +
           std::to_string(info.param.dataWidth) + "_on_" +
           std::to_string(info.param.coreWidth);
}

INSTANTIATE_TEST_SUITE_P(
    NativeWidth, WorkloadGolden,
    ::testing::Values(WlCase{Kernel::Mult, 8, 8},
                      WlCase{Kernel::Mult, 16, 16},
                      WlCase{Kernel::Mult, 32, 32},
                      WlCase{Kernel::Div, 8, 8},
                      WlCase{Kernel::Div, 16, 16},
                      WlCase{Kernel::Div, 32, 32},
                      WlCase{Kernel::InSort, 8, 8},
                      WlCase{Kernel::InSort, 16, 16},
                      WlCase{Kernel::InSort, 32, 32},
                      WlCase{Kernel::IntAvg, 8, 8},
                      WlCase{Kernel::IntAvg, 16, 16},
                      WlCase{Kernel::IntAvg, 32, 32},
                      WlCase{Kernel::THold, 8, 8},
                      WlCase{Kernel::THold, 16, 16},
                      WlCase{Kernel::THold, 32, 32},
                      WlCase{Kernel::Crc8, 8, 8},
                      WlCase{Kernel::DTree, 8, 8},
                      WlCase{Kernel::DTree, 16, 16},
                      WlCase{Kernel::DTree, 32, 32}),
    wlName);

INSTANTIATE_TEST_SUITE_P(
    Coalesced, WorkloadGolden,
    ::testing::Values(WlCase{Kernel::Mult, 16, 8},
                      WlCase{Kernel::Mult, 32, 8},
                      WlCase{Kernel::Mult, 32, 16},
                      WlCase{Kernel::Div, 16, 8},
                      WlCase{Kernel::Div, 32, 16},
                      WlCase{Kernel::InSort, 16, 8},
                      WlCase{Kernel::InSort, 32, 8},
                      WlCase{Kernel::IntAvg, 16, 8},
                      WlCase{Kernel::IntAvg, 32, 16},
                      WlCase{Kernel::THold, 16, 8},
                      WlCase{Kernel::THold, 32, 8},
                      WlCase{Kernel::Mult, 16, 4},
                      WlCase{Kernel::IntAvg, 8, 4}),
    wlName);

// ----------------------------------------------------------------
// Structural expectations (Table 7 shape)
// ----------------------------------------------------------------

TEST(Workloads, DTreeFillsAllInstructionWords)
{
    // Section 8: dTree uses all 256 instruction words.
    const Workload wl = makeWorkload(Kernel::DTree, 8, 8);
    EXPECT_EQ(wl.program.size(), 256u);
}

TEST(Workloads, KernelsFitTheirTable7PcBudgets)
{
    // Table 7 PC sizes imply static instruction budgets: mult <= 16,
    // div/inSort/tHold/crc8 <= 32, intAvg <= 64.
    EXPECT_LE(makeWorkload(Kernel::Mult, 8, 8).program.size(), 16u);
    EXPECT_LE(makeWorkload(Kernel::Div, 8, 8).program.size(), 32u);
    EXPECT_LE(makeWorkload(Kernel::InSort, 8, 8).program.size(), 32u);
    EXPECT_LE(makeWorkload(Kernel::THold, 8, 8).program.size(), 32u);
    EXPECT_LE(makeWorkload(Kernel::Crc8, 8, 8).program.size(), 32u);
    EXPECT_LE(makeWorkload(Kernel::IntAvg, 8, 8).program.size(), 64u);
}

TEST(Workloads, CoalescedProgramsAreLarger)
{
    const auto native = makeWorkload(Kernel::Mult, 16, 16);
    const auto coalesced = makeWorkload(Kernel::Mult, 16, 8);
    EXPECT_GT(coalesced.program.size(), native.program.size());
}

TEST(Workloads, ArrayKernelsUseOneBar)
{
    // inSort and tHold loop with a single writable BAR (Table 7);
    // intAvg is straight-line and touches no BAR at all.
    auto uses_setbar = [](const Workload &wl) {
        for (const Instruction &inst : wl.program.code)
            if (inst.mnemonic == Mnemonic::SETBAR)
                return true;
        return false;
    };
    EXPECT_TRUE(uses_setbar(makeWorkload(Kernel::InSort, 8, 8)));
    EXPECT_TRUE(uses_setbar(makeWorkload(Kernel::THold, 8, 8)));
    EXPECT_FALSE(uses_setbar(makeWorkload(Kernel::IntAvg, 8, 8)));
    EXPECT_FALSE(uses_setbar(makeWorkload(Kernel::Mult, 8, 8)));
    EXPECT_FALSE(uses_setbar(makeWorkload(Kernel::Crc8, 8, 8)));
    EXPECT_FALSE(uses_setbar(makeWorkload(Kernel::DTree, 8, 8)));
}

TEST(Workloads, DmemFitsAddressSpace)
{
    for (const KernelPoint &p : paperKernelPoints()) {
        for (unsigned core_w : {8u, 16u, 32u}) {
            if (core_w > p.dataWidth || p.dataWidth % core_w)
                continue;
            if (p.kind == Kernel::DTree && core_w != p.dataWidth)
                continue;
            const Workload wl =
                makeWorkload(p.kind, p.dataWidth, core_w);
            EXPECT_LE(wl.dmemWords, 256u) << wl.program.name;
            EXPECT_LE(wl.program.size(), 256u) << wl.program.name;
        }
    }
}

TEST(Workloads, DefaultInputsDeterministic)
{
    const auto a = defaultInputs(Kernel::InSort, 8, 5);
    const auto b = defaultInputs(Kernel::InSort, 8, 5);
    EXPECT_EQ(a, b);
    const auto c = defaultInputs(Kernel::InSort, 8, 6);
    EXPECT_NE(a, c);
}

// ----------------------------------------------------------------
// Golden-model self-checks
// ----------------------------------------------------------------

TEST(Golden, Crc8KnownVector)
{
    // CRC-8/ATM of "123456789" is 0xF4.
    const std::vector<std::uint8_t> msg = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
    EXPECT_EQ(golden::crc8(msg), 0xF4);
}

TEST(Golden, DivBasics)
{
    const auto r = golden::div(100, 7, 8);
    EXPECT_EQ(r.quotient, 14u);
    EXPECT_EQ(r.remainder, 2u);
    EXPECT_THROW(golden::div(1, 0, 8), FatalError);
}

TEST(Golden, DTreeDeterministic)
{
    const auto a = golden::dTree(10, 20, 30, 8);
    EXPECT_EQ(a, golden::dTree(10, 20, 30, 8));
    // Leaf ids live past the internal nodes.
    EXPECT_GE(a, 51u);
    EXPECT_LT(a, 128u);
}

// ----------------------------------------------------------------
// Gate-level cross-check (single-cycle cores)
// ----------------------------------------------------------------

class WorkloadCosim : public ::testing::TestWithParam<WlCase>
{};

TEST_P(WorkloadCosim, GateLevelMatchesIss)
{
    const WlCase &c = GetParam();
    const Workload wl = makeWorkload(c.kind, c.dataWidth,
                                     c.coreWidth);
    const CoreConfig cfg = CoreConfig::standard(1, c.coreWidth, 2);
    const Netlist nl = buildCore(cfg);

    const auto inputs = defaultInputs(c.kind, c.dataWidth, 3);
    const auto want = goldenOutputs(c.kind, c.dataWidth, inputs);

    CoreCosim cosim(nl, cfg, wl.program, wl.dmemWords);
    wl.load([&](std::size_t a, std::uint64_t v) {
        cosim.setMem(a, v);
    }, inputs);
    if (wl.streamAddr >= 0)
        cosim.setStreamPort(std::size_t(wl.streamAddr),
                            wl.streamInputs(inputs));
    cosim.run();

    const auto got =
        wl.read([&](std::size_t a) { return cosim.mem(a); });
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(got[i], want[i]) << wl.program.name;
}

INSTANTIATE_TEST_SUITE_P(
    GateLevel, WorkloadCosim,
    ::testing::Values(WlCase{Kernel::Mult, 8, 8},
                      WlCase{Kernel::Div, 8, 8},
                      WlCase{Kernel::InSort, 8, 8},
                      WlCase{Kernel::IntAvg, 8, 8},
                      WlCase{Kernel::THold, 8, 8},
                      WlCase{Kernel::Crc8, 8, 8},
                      WlCase{Kernel::DTree, 8, 8},
                      WlCase{Kernel::Mult, 16, 8},
                      WlCase{Kernel::Mult, 16, 16}),
    wlName);

} // anonymous namespace
} // namespace printed
