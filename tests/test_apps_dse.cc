/**
 * @file
 * Tests for the application/battery layer (Table 3, Figures 4/5)
 * and the system-level design-space evaluation (Figures 7/8,
 * Table 8).
 */

#include <gtest/gtest.h>

#include "apps/applications.hh"
#include "apps/battery.hh"
#include "common/parallel.hh"
#include "dse/sweep.hh"
#include "dse/system_eval.hh"
#include "legacy/cores.hh"
#include "synth/cache.hh"

namespace printed
{
namespace
{

// ----------------------------------------------------------------
// Applications / batteries
// ----------------------------------------------------------------

TEST(Apps, SurveyHasSeventeenRows)
{
    EXPECT_EQ(applicationSurvey().size(), 17u);
}

TEST(Apps, FourPrintedBatteries)
{
    const auto &batteries = printedBatteries();
    ASSERT_EQ(batteries.size(), 4u);
    EXPECT_DOUBLE_EQ(batteries[0].capacity_mah, 90.0);
    EXPECT_DOUBLE_EQ(table8Battery().capacity_mah, 30.0);
    // Section 4: 30 mAh at 1 V stores 108 J.
    EXPECT_DOUBLE_EQ(table8Battery().energyJoules(), 108.0);
}

TEST(Apps, LifetimeMatchesPaperModel)
{
    // A legacy core at full duty drains a printed battery within
    // ~2 hours (Section 4 / Figures 4-5). light8080 EGFET: 41.7 mW
    // on 30 mAh at 1 V -> 108 J / 0.0417 W = 0.72 h.
    const double h = lifetimeHours(table8Battery(), 41.7, 1.0);
    EXPECT_GT(h, 0.5);
    EXPECT_LT(h, 2.0);

    // Lifetime scales inversely with duty cycle.
    EXPECT_NEAR(lifetimeHours(table8Battery(), 41.7, 0.01),
                100 * h, 1e-9);
}

TEST(Apps, AllLegacyCoresUnderTwoHoursAtFullDuty)
{
    using namespace legacy;
    for (LegacyCore core : allLegacyCores) {
        const double p =
            legacyCoreSpec(core).egfet.powerMw;
        for (const Battery &b : printedBatteries()) {
            if (b.capacity_mah > 30)
                continue; // the Molex 90 mAh lasts a bit longer
            EXPECT_LT(lifetimeHours(b, p, 1.0), 2.0)
                << legacyCoreSpec(core).name << " on " << b.name;
        }
    }
}

TEST(Apps, CntCoresExceedBatteryPower)
{
    // Section 4/8: CNT-TFT cores at nominal frequency draw more
    // than printed batteries can deliver.
    using namespace legacy;
    for (LegacyCore core : allLegacyCores)
        EXPECT_FALSE(withinPowerBudget(
            table8Battery(), legacyCoreSpec(core).cnt.powerMw));
}

TEST(Apps, FeasibilityScreens)
{
    const auto &apps = applicationSurvey();
    // A ~17 IPS EGFET core serves slow sensors but not 100 Hz
    // sampling.
    int feasible_slow = 0, feasible_fast = 0;
    for (const auto &app : apps) {
        if (feasible(app, 17.0, 8))
            ++feasible_slow;
        if (feasible(app, 50'000.0, 8)) // CNT-class throughput
            ++feasible_fast;
    }
    EXPECT_GT(feasible_slow, 0);
    EXPECT_LT(feasible_slow, int(apps.size()));
    EXPECT_EQ(feasible_fast, int(apps.size()));
}

// ----------------------------------------------------------------
// Figure 7 sweep
// ----------------------------------------------------------------

TEST(Dse, SweepHasTwentyFourPoints)
{
    const auto points = sweepDesignSpace();
    EXPECT_EQ(points.size(), 24u);
    EXPECT_EQ(figure7Configs().size(), 24u);
}

/** Exact equality of two characterizations, field by field. */
void
expectSameCharacterization(const Characterization &a,
                           const Characterization &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.tech, b.tech);
    EXPECT_EQ(a.stats.totalGates, b.stats.totalGates);
    EXPECT_EQ(a.stats.seqGates, b.stats.seqGates);
    EXPECT_EQ(a.area.total_mm2, b.area.total_mm2);
    EXPECT_EQ(a.area.comb_mm2, b.area.comb_mm2);
    EXPECT_EQ(a.area.seq_mm2, b.area.seq_mm2);
    EXPECT_EQ(a.timing.fmaxHz, b.timing.fmaxHz);
    EXPECT_EQ(a.timing.periodUs, b.timing.periodUs);
    EXPECT_EQ(a.powerAtFmax.total_mW, b.powerAtFmax.total_mW);
    EXPECT_EQ(a.powerAtFmax.comb_mW, b.powerAtFmax.comb_mW);
    EXPECT_EQ(a.powerAtFmax.seq_mW, b.powerAtFmax.seq_mW);
}

TEST(Dse, SweepBitIdenticalAcrossThreadCounts)
{
    SweepOptions serialOpts;
    serialOpts.threads = 1;
    const auto serial = sweepDesignSpace(serialOpts);

    for (unsigned threads : {4u, 8u}) {
        SweepOptions opts;
        opts.threads = threads;
        const auto parallel = sweepDesignSpace(opts);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].config.label(),
                      parallel[i].config.label());
            expectSameCharacterization(serial[i].egfet,
                                       parallel[i].egfet);
            expectSameCharacterization(serial[i].cnt,
                                       parallel[i].cnt);
        }
    }
}

TEST(Dse, SecondSweepIsServedFromSynthCache)
{
    SynthCache &cache = SynthCache::global();
    cache.clear();

    SweepOptions opts;
    opts.threads = 4;
    const auto first = sweepDesignSpace(opts);
    const SynthCacheStats cold = cache.stats();
    // 24 configs, each characterized in two technologies: 24
    // netlist builds (the second tech hits the netlist entry) and
    // 48 characterizations.
    EXPECT_EQ(cold.netlistMisses, 24u);
    EXPECT_EQ(cold.netlistHits, 24u);
    EXPECT_EQ(cold.charMisses, 48u);
    EXPECT_EQ(cold.charHits, 0u);

    const auto second = sweepDesignSpace(opts);
    const SynthCacheStats warm = cache.stats();
    // The re-sweep must not synthesize or characterize anything.
    EXPECT_EQ(warm.netlistMisses, cold.netlistMisses);
    EXPECT_EQ(warm.charMisses, cold.charMisses);
    EXPECT_EQ(warm.charHits, cold.charHits + 48u);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        expectSameCharacterization(first[i].egfet, second[i].egfet);
        expectSameCharacterization(first[i].cnt, second[i].cnt);
    }
}

TEST(Dse, CacheKeySeparatesDistinctConfigs)
{
    const CoreConfig a = CoreConfig::standard(1, 8, 2);
    CoreConfig b = a;
    b.tristateResultMux = false;
    CoreConfig c = a;
    c.opcodeMask &= ~1u;
    EXPECT_EQ(coreConfigKey(a), coreConfigKey(a));
    EXPECT_NE(coreConfigKey(a), coreConfigKey(b));
    EXPECT_NE(coreConfigKey(a), coreConfigKey(c));
    EXPECT_NE(coreConfigHash(a), coreConfigHash(b));
    EXPECT_NE(coreConfigHash(a), coreConfigHash(c));

    // Cached netlists for distinct keys are distinct objects;
    // repeated lookups of one key share one object.
    SynthCache cache;
    const auto na1 = cache.core(a);
    const auto na2 = cache.core(a);
    const auto nb = cache.core(b);
    EXPECT_EQ(na1.get(), na2.get());
    EXPECT_NE(na1.get(), nb.get());
    EXPECT_EQ(cache.stats().netlistMisses, 2u);
    EXPECT_EQ(cache.stats().netlistHits, 1u);

    cache.clear();
    EXPECT_EQ(cache.stats().netlistMisses, 0u);
    const auto na3 = cache.core(a);
    EXPECT_NE(na3, nullptr);
    EXPECT_EQ(cache.stats().netlistMisses, 1u);
}

TEST(Dse, CacheIsThreadSafeUnderConcurrentLookups)
{
    SynthCache cache;
    const auto configs = figure7Configs();
    // Hammer the same small key set from many threads; every
    // returned characterization must be the one shared object per
    // (config, tech) and the miss counters must match the key
    // count exactly (each key synthesized once).
    std::vector<std::shared_ptr<const Characterization>> results(64);
    parallelFor(8, results.size(), [&](std::size_t i) {
        const CoreConfig &cfg = configs[i % 8];
        const TechKind tech =
            (i / 8) % 2 ? TechKind::CNT_TFT : TechKind::EGFET;
        results[i] = cache.characterization(cfg, tech);
    });
    EXPECT_EQ(cache.stats().charMisses, 16u);
    EXPECT_EQ(cache.stats().netlistMisses, 8u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].get(), results[i % 16].get());
}

TEST(Dse, SingleStageDominates)
{
    // Section 8: single-stage pipelines always outperform deeper
    // ones (same width/BARs) in area and power; fmax does not
    // improve enough to matter.
    const auto points = sweepDesignSpace();
    auto find = [&](unsigned p, unsigned d, unsigned b)
        -> const DesignPoint & {
        for (const auto &pt : points)
            if (pt.config.stages == p &&
                pt.config.isa.datawidth == d &&
                pt.config.isa.barCount == b)
                return pt;
        throw std::runtime_error("point not found");
    };
    for (unsigned d : {4u, 8u, 16u, 32u}) {
        for (unsigned b : {2u, 4u}) {
            const auto &p1 = find(1, d, b);
            const auto &p3 = find(3, d, b);
            EXPECT_LT(p1.egfet.areaCm2(), p3.egfet.areaCm2());
            EXPECT_LT(p1.egfet.powerMw(), p3.egfet.powerMw());
            EXPECT_GE(p1.egfet.fmaxHz(), 0.95 * p3.egfet.fmaxHz());
        }
    }
}

TEST(Dse, BestCoresBeatLegacyByAnOrderOfMagnitude)
{
    // Abstract: the best TP-ISA cores outperform pre-existing
    // cores by at least an order of magnitude in power and area
    // ... once program-specific; core-level the paper shows the
    // largest TP-ISA core smaller than the smallest legacy core.
    using namespace legacy;
    const auto points = sweepDesignSpace();
    const auto &light8080 =
        legacyCoreSpec(LegacyCore::Light8080).egfet;

    double largest_area = 0;
    for (const auto &pt : points)
        largest_area = std::max(largest_area, pt.egfet.areaCm2());
    EXPECT_LT(largest_area, light8080.areaCm2);

    // The smallest 8-bit TP-ISA core is several times smaller than
    // light8080 (the paper quotes 5.2x).
    double smallest8 = 1e9;
    for (const auto &pt : points)
        if (pt.config.isa.datawidth == 8)
            smallest8 = std::min(smallest8, pt.egfet.areaCm2());
    EXPECT_GT(light8080.areaCm2 / smallest8, 3.5);
}

// ----------------------------------------------------------------
// Figure 8 / Table 8 system evaluation
// ----------------------------------------------------------------

TEST(SystemEvalTest, MultOnEightBitCore)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const SystemEval eval = evaluateSystem(
        wl, CoreConfig::standard(1, 8, 2), TechKind::EGFET);

    EXPECT_GT(eval.cycles, 30u);
    EXPECT_GT(eval.areaTotal(), 0.0);
    EXPECT_GT(eval.energyTotal(), 0.0);
    EXPECT_GT(eval.timeTotal(), 0.0);
    // Components present and sensible.
    EXPECT_GT(eval.areaImem, 0.0);
    EXPECT_GT(eval.areaDmem, 0.0);
    EXPECT_GT(eval.timeImem, 0.0);
    // Iterations in the Table 8 regime (paper: 3727 for mult STD).
    EXPECT_GT(eval.iterationsOn30mAh(), 300u);
    EXPECT_LT(eval.iterationsOn30mAh(), 40'000u);
}

TEST(SystemEvalTest, SpecializedBeatsStandardEnergy)
{
    // Section 8: the program-specific core consumes less energy
    // than all other cores for every benchmark.
    for (Kernel k : {Kernel::Mult, Kernel::Div, Kernel::IntAvg}) {
        const Workload wl = makeWorkload(k, 8, 8);
        const auto std_eval = evaluateSystem(
            wl, CoreConfig::standard(1, 8, 2), TechKind::EGFET);
        const auto ps_eval =
            evaluateSpecializedSystem(wl, TechKind::EGFET);
        EXPECT_LT(ps_eval.energyTotal(), std_eval.energyTotal())
            << kernelName(k);
        EXPECT_LT(ps_eval.areaTotal(), std_eval.areaTotal())
            << kernelName(k);
        EXPECT_GT(ps_eval.iterationsOn30mAh(),
                  std_eval.iterationsOn30mAh())
            << kernelName(k);
    }
}

TEST(SystemEvalTest, MlcRomCutsDTreeImemArea)
{
    // Section 8 (dTree-ROMopt): 2-bit MLC ROM reduces instruction
    // memory area by almost 30% with a small energy change.
    const Workload wl = makeWorkload(Kernel::DTree, 8, 8);
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const auto slc = evaluateSystem(wl, cfg, TechKind::EGFET, 1);
    const auto mlc = evaluateSystem(wl, cfg, TechKind::EGFET, 2);
    const double reduction = 1.0 - mlc.areaImem / slc.areaImem;
    EXPECT_GT(reduction, 0.25);
    EXPECT_LT(reduction, 0.35);
    // Energy stays within ~10% of the SLC design (the paper sees
    // <1% increase; our static-dominated ROM model shows a small
    // decrease since MLC halves the dot count - see
    // EXPERIMENTS.md).
    EXPECT_NEAR(mlc.energyTotal() / slc.energyTotal(), 1.0, 0.10);
}

TEST(SystemEvalTest, CntSystemsOrdersOfMagnitudeFaster)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const auto eg = evaluateSystem(wl, cfg, TechKind::EGFET);
    const auto cnt = evaluateSystem(wl, cfg, TechKind::CNT_TFT);
    EXPECT_LT(cnt.timeTotal(), eg.timeTotal() / 50);
    // Section 8: CNT execution time is dominated by the 302 us
    // ROM access latency.
    EXPECT_GT(cnt.timeImem, cnt.timeCore);
}

TEST(SystemEvalTest, WiderDataNeedsWiderOrCoalescedCores)
{
    // mult16 on an 8-bit core (coalesced) runs more instructions
    // than on a native 16-bit core.
    const Workload narrow = makeWorkload(Kernel::Mult, 16, 8);
    const Workload native = makeWorkload(Kernel::Mult, 16, 16);
    const auto e_narrow = evaluateSystem(
        narrow, CoreConfig::standard(1, 8, 2), TechKind::EGFET);
    const auto e_native = evaluateSystem(
        native, CoreConfig::standard(1, 16, 2), TechKind::EGFET);
    EXPECT_GT(e_narrow.cycles, e_native.cycles);
    // ...but the narrow core + program still has less core area.
    EXPECT_LT(e_narrow.areaComb + e_narrow.areaRegs,
              e_native.areaComb + e_native.areaRegs);
}

} // anonymous namespace
} // namespace printed
