/**
 * @file
 * Tests for the application/battery layer (Table 3, Figures 4/5)
 * and the system-level design-space evaluation (Figures 7/8,
 * Table 8).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>

#include "analysis/fault.hh"
#include "apps/applications.hh"
#include "apps/battery.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/trace.hh"
#include "dse/sweep.hh"
#include "dse/system_eval.hh"
#include "legacy/cores.hh"
#include "ml/evolve.hh"
#include "synth/cache.hh"

namespace printed
{
namespace
{

// ----------------------------------------------------------------
// Applications / batteries
// ----------------------------------------------------------------

TEST(Apps, SurveyHasSeventeenRows)
{
    EXPECT_EQ(applicationSurvey().size(), 17u);
}

TEST(Apps, FourPrintedBatteries)
{
    const auto &batteries = printedBatteries();
    ASSERT_EQ(batteries.size(), 4u);
    EXPECT_DOUBLE_EQ(batteries[0].capacity_mah, 90.0);
    EXPECT_DOUBLE_EQ(table8Battery().capacity_mah, 30.0);
    // Section 4: 30 mAh at 1 V stores 108 J.
    EXPECT_DOUBLE_EQ(table8Battery().energyJoules(), 108.0);
}

TEST(Apps, LifetimeMatchesPaperModel)
{
    // A legacy core at full duty drains a printed battery within
    // ~2 hours (Section 4 / Figures 4-5). light8080 EGFET: 41.7 mW
    // on 30 mAh at 1 V -> 108 J / 0.0417 W = 0.72 h.
    const double h = lifetimeHours(table8Battery(), 41.7, 1.0);
    EXPECT_GT(h, 0.5);
    EXPECT_LT(h, 2.0);

    // Lifetime scales inversely with duty cycle.
    EXPECT_NEAR(lifetimeHours(table8Battery(), 41.7, 0.01),
                100 * h, 1e-9);
}

TEST(Apps, AllLegacyCoresUnderTwoHoursAtFullDuty)
{
    using namespace legacy;
    for (LegacyCore core : allLegacyCores) {
        const double p =
            legacyCoreSpec(core).egfet.powerMw;
        for (const Battery &b : printedBatteries()) {
            if (b.capacity_mah > 30)
                continue; // the Molex 90 mAh lasts a bit longer
            EXPECT_LT(lifetimeHours(b, p, 1.0), 2.0)
                << legacyCoreSpec(core).name << " on " << b.name;
        }
    }
}

TEST(Apps, CntCoresExceedBatteryPower)
{
    // Section 4/8: CNT-TFT cores at nominal frequency draw more
    // than printed batteries can deliver.
    using namespace legacy;
    for (LegacyCore core : allLegacyCores)
        EXPECT_FALSE(withinPowerBudget(
            table8Battery(), legacyCoreSpec(core).cnt.powerMw));
}

TEST(Apps, FeasibilityScreens)
{
    const auto &apps = applicationSurvey();
    // A ~17 IPS EGFET core serves slow sensors but not 100 Hz
    // sampling.
    int feasible_slow = 0, feasible_fast = 0;
    for (const auto &app : apps) {
        if (feasible(app, 17.0, 8))
            ++feasible_slow;
        if (feasible(app, 50'000.0, 8)) // CNT-class throughput
            ++feasible_fast;
    }
    EXPECT_GT(feasible_slow, 0);
    EXPECT_LT(feasible_slow, int(apps.size()));
    EXPECT_EQ(feasible_fast, int(apps.size()));
}

// ----------------------------------------------------------------
// Figure 7 sweep
// ----------------------------------------------------------------

TEST(Dse, SweepHasTwentyFourPoints)
{
    const auto points = sweepDesignSpace();
    EXPECT_EQ(points.size(), 24u);
    EXPECT_EQ(figure7Configs().size(), 24u);
}

/** Exact equality of two characterizations, field by field. */
void
expectSameCharacterization(const Characterization &a,
                           const Characterization &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.tech, b.tech);
    EXPECT_EQ(a.stats.totalGates, b.stats.totalGates);
    EXPECT_EQ(a.stats.seqGates, b.stats.seqGates);
    EXPECT_EQ(a.area.total_mm2, b.area.total_mm2);
    EXPECT_EQ(a.area.comb_mm2, b.area.comb_mm2);
    EXPECT_EQ(a.area.seq_mm2, b.area.seq_mm2);
    EXPECT_EQ(a.timing.fmaxHz, b.timing.fmaxHz);
    EXPECT_EQ(a.timing.periodUs, b.timing.periodUs);
    EXPECT_EQ(a.powerAtFmax.total_mW, b.powerAtFmax.total_mW);
    EXPECT_EQ(a.powerAtFmax.comb_mW, b.powerAtFmax.comb_mW);
    EXPECT_EQ(a.powerAtFmax.seq_mW, b.powerAtFmax.seq_mW);
}

TEST(Dse, SweepBitIdenticalAcrossThreadCounts)
{
    SweepOptions serialOpts;
    serialOpts.threads = 1;
    const auto serial = sweepDesignSpace(serialOpts);

    for (unsigned threads : {4u, 8u}) {
        SweepOptions opts;
        opts.threads = threads;
        const auto parallel = sweepDesignSpace(opts);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].config.label(),
                      parallel[i].config.label());
            expectSameCharacterization(serial[i].egfet,
                                       parallel[i].egfet);
            expectSameCharacterization(serial[i].cnt,
                                       parallel[i].cnt);
        }
    }
}

TEST(Dse, SecondSweepIsServedFromSynthCache)
{
    SynthCache &cache = SynthCache::global();
    cache.clear();

    SweepOptions opts;
    opts.threads = 4;
    const auto first = sweepDesignSpace(opts);
    const SynthCacheStats cold = cache.stats();
    // 24 configs, each characterized in two technologies: 24
    // netlist builds (the second tech hits the netlist entry) and
    // 48 characterizations.
    EXPECT_EQ(cold.netlistMisses, 24u);
    EXPECT_EQ(cold.netlistHits, 24u);
    EXPECT_EQ(cold.charMisses, 48u);
    EXPECT_EQ(cold.charHits, 0u);

    const auto second = sweepDesignSpace(opts);
    const SynthCacheStats warm = cache.stats();
    // The re-sweep must not synthesize or characterize anything.
    EXPECT_EQ(warm.netlistMisses, cold.netlistMisses);
    EXPECT_EQ(warm.charMisses, cold.charMisses);
    EXPECT_EQ(warm.charHits, cold.charHits + 48u);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        expectSameCharacterization(first[i].egfet, second[i].egfet);
        expectSameCharacterization(first[i].cnt, second[i].cnt);
    }
}

TEST(Dse, CacheKeySeparatesDistinctConfigs)
{
    const CoreConfig a = CoreConfig::standard(1, 8, 2);
    CoreConfig b = a;
    b.tristateResultMux = false;
    CoreConfig c = a;
    c.opcodeMask &= ~1u;
    EXPECT_EQ(coreConfigKey(a), coreConfigKey(a));
    EXPECT_NE(coreConfigKey(a), coreConfigKey(b));
    EXPECT_NE(coreConfigKey(a), coreConfigKey(c));
    EXPECT_NE(coreConfigHash(a), coreConfigHash(b));
    EXPECT_NE(coreConfigHash(a), coreConfigHash(c));

    // Cached netlists for distinct keys are distinct objects;
    // repeated lookups of one key share one object.
    SynthCache cache;
    const auto na1 = cache.core(a);
    const auto na2 = cache.core(a);
    const auto nb = cache.core(b);
    EXPECT_EQ(na1.get(), na2.get());
    EXPECT_NE(na1.get(), nb.get());
    EXPECT_EQ(cache.stats().netlistMisses, 2u);
    EXPECT_EQ(cache.stats().netlistHits, 1u);

    cache.clear();
    EXPECT_EQ(cache.stats().netlistMisses, 0u);
    const auto na3 = cache.core(a);
    EXPECT_NE(na3, nullptr);
    EXPECT_EQ(cache.stats().netlistMisses, 1u);
}

TEST(Dse, CacheIsThreadSafeUnderConcurrentLookups)
{
    SynthCache cache;
    const auto configs = figure7Configs();
    // Hammer the same small key set from many threads; every
    // returned characterization must be the one shared object per
    // (config, tech) and the miss counters must match the key
    // count exactly (each key synthesized once).
    std::vector<std::shared_ptr<const Characterization>> results(64);
    parallelFor(8, results.size(), [&](std::size_t i) {
        const CoreConfig &cfg = configs[i % 8];
        const TechKind tech =
            (i / 8) % 2 ? TechKind::CNT_TFT : TechKind::EGFET;
        results[i] = cache.characterization(cfg, tech);
    });
    EXPECT_EQ(cache.stats().charMisses, 16u);
    EXPECT_EQ(cache.stats().netlistMisses, 8u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].get(), results[i % 16].get());
}

TEST(Dse, CacheExceptionPropagatesToAllWaiters)
{
    // Regression test for the failure path: when the builder
    // throws, it must store the exception in the shared promise
    // *before* dropping the map entry. Waiters that grabbed the
    // shared_future must see the original FatalError — never a
    // std::future_error (broken_promise) from a destroyed,
    // unsatisfied promise. Many threads x many fresh caches widen
    // the race window; any future_error is a hard failure.
    CoreConfig bad = CoreConfig::standard(1, 8, 2);
    bad.stages = 7; // rejected by CoreConfig::check() in buildCore
    for (int iter = 0; iter < 16; ++iter) {
        SynthCache cache;
        std::atomic<unsigned> fatals{0};
        parallelFor(8, 8, [&](std::size_t) {
            try {
                cache.core(bad);
                ADD_FAILURE() << "bad config produced a netlist";
            } catch (const FatalError &) {
                fatals.fetch_add(1);
            } catch (const std::future_error &e) {
                ADD_FAILURE()
                    << "waiter saw future_error instead of the "
                       "builder's FatalError: " << e.what();
            }
        });
        EXPECT_EQ(fatals.load(), 8u);
    }

    // Failures are not cached: every retry re-attempts (and counts
    // a fresh miss), and the same cache still builds good configs.
    SynthCache cache;
    EXPECT_THROW(cache.core(bad), FatalError);
    EXPECT_THROW(cache.core(bad), FatalError);
    EXPECT_EQ(cache.stats().netlistMisses, 2u);
    EXPECT_THROW(
        cache.characterization(bad, TechKind::EGFET), FatalError);
    EXPECT_NE(cache.core(CoreConfig::standard(1, 8, 2)), nullptr);
}

TEST(Dse, CacheCapacityEvictsLeastRecentlyUsed)
{
    // The bounded mode printedd runs with: each map holds at most
    // `capacity` settled entries, the LRU one leaves first, and an
    // evicted key simply misses (and rebuilds) on its next lookup.
    SynthCache cache;
    cache.setCapacity(2);
    EXPECT_EQ(cache.capacity(), 2u);

    const CoreConfig a = CoreConfig::standard(1, 4, 2);
    const CoreConfig b = CoreConfig::standard(1, 8, 2);
    const CoreConfig c = CoreConfig::standard(2, 4, 2);

    const auto na = cache.core(a);
    cache.core(b);
    cache.core(a);     // refresh a: b is now the LRU entry
    cache.core(c);     // evicts b
    SynthCacheStats s = cache.stats();
    EXPECT_EQ(s.netlistEntries, 2u);
    EXPECT_EQ(s.netlistEvictions, 1u);
    EXPECT_EQ(s.netlistMisses, 3u);

    // a survived the eviction (it was refreshed)...
    cache.core(a);
    EXPECT_EQ(cache.stats().netlistMisses, 3u);
    // ...b did not: same key misses again and rebuilds.
    cache.core(b);
    EXPECT_EQ(cache.stats().netlistMisses, 4u);

    // Objects held across an eviction stay valid (shared_ptr).
    EXPECT_GT(na->gateCount(), 0u);

    // Raising the cap stops eviction; 0 = unbounded again.
    cache.setCapacity(0);
    cache.core(c);
    cache.core(a);
    EXPECT_EQ(cache.stats().netlistEntries, 3u);

    // Lowering the cap evicts immediately, down to the cap.
    cache.setCapacity(1);
    EXPECT_EQ(cache.stats().netlistEntries, 1u);
}

TEST(Dse, CacheCapStressUnderConcurrentLookups)
{
    // Hammer a tiny cap from many threads over a wider key set than
    // fits: the map must never exceed cap + in-flight builds, every
    // returned object must be usable, evictions must be counted,
    // and the set-exception-before-erase failure semantics must
    // survive eviction pressure (bad keys interleaved throughout).
    SynthCache cache;
    cache.setCapacity(2);

    const auto configs = figure7Configs(); // 24 distinct keys
    CoreConfig bad = CoreConfig::standard(1, 8, 2);
    bad.stages = 7; // rejected by CoreConfig::check()

    std::atomic<unsigned> fatals{0};
    parallelFor(8, 96, [&](std::size_t i) {
        if (i % 12 == 7) {
            try {
                cache.core(bad);
                ADD_FAILURE() << "bad config produced a netlist";
            } catch (const FatalError &) {
                fatals.fetch_add(1);
            }
            return;
        }
        const auto nl = cache.core(configs[i % 8]);
        ASSERT_NE(nl, nullptr);
        EXPECT_GT(nl->gateCount(), 0u);
    });
    EXPECT_EQ(fatals.load(), 8u);

    const SynthCacheStats s = cache.stats();
    EXPECT_LE(s.netlistEntries, 2u);
    EXPECT_GT(s.netlistEvictions, 0u);
    // 88 good lookups over 8 keys with cap 2: rebuilds happened,
    // but every lookup was served one way or the other.
    EXPECT_EQ(s.netlistHits + s.netlistMisses, 96u);
    EXPECT_GE(s.netlistMisses, 8u);
}

/**
 * Counter part of one metrics snapshot, restricted to the
 * deterministic namespaces (wall-clock gauges/distributions and the
 * sim.* totals — which include per-worker harness-construction
 * settles — are schedule-dependent by design; see DESIGN.md).
 */
std::vector<std::pair<std::string, std::uint64_t>>
deterministicCounters()
{
    static const char *prefixes[] = {"synth.", "parallel.", "fault.",
                                     "dse.", "analysis.", "ml."};
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto &entry :
         metrics::Registry::global().snapshot().counters)
        for (const char *p : prefixes)
            if (entry.first.rfind(p, 0) == 0) {
                out.push_back(entry);
                break;
            }
    return out;
}

/** Fig 7 slice + small fault MC at one thread count. */
std::vector<std::pair<std::string, std::uint64_t>>
countersForThreadCount(unsigned threads)
{
    SynthCache::global().clear();
    metrics::Registry::global().resetAll();

    std::vector<CoreConfig> configs = figure7Configs();
    configs.resize(4);
    SweepOptions opts;
    opts.threads = threads;
    sweepConfigs(configs, opts);

    FunctionalYieldConfig mc;
    mc.trials = 96;
    mc.threads = threads;
    mc.fault.seed = 11;
    const auto nl = SynthCache::global().core(configs[0]);
    measureFunctionalYield(*nl, configs[0], mc);

    // A small classify search, twice: the ml.* counters (candidates
    // scored, generations, pruned gates, cache hits/misses) must
    // also be invariant, including the 1-miss + 1-hit cache split.
    ml::classifyCacheClear();
    ml::ClassifySpec spec;
    spec.dataset.features = 2;
    spec.dataset.classes = 2;
    spec.dataset.bits = 4;
    spec.dataset.train = 32;
    spec.dataset.holdout = 24;
    spec.depth = 2;
    spec.search.generations = 2;
    spec.search.population = 3;
    ThreadPool pool(threads);
    ml::runClassifyCached(spec, pool);
    ml::runClassifyCached(spec, pool);
    return deterministicCounters();
}

TEST(Dse, MetricsCountersAreThreadCountInvariant)
{
    // The observability determinism rule: counter sums (cache
    // hits/misses, MC trial outcomes, per-block gate counts, ...)
    // must be identical for any --threads value, because the
    // counted events are per-item deterministic work.
    const auto t1 = countersForThreadCount(1);
    const auto t4 = countersForThreadCount(4);
    const auto t16 = countersForThreadCount(16);
    ASSERT_FALSE(t1.empty());
    EXPECT_TRUE(t1 == t4);
    EXPECT_TRUE(t1 == t16);
    if (t1 != t4 || t1 != t16)
        for (std::size_t i = 0;
             i < t1.size() && i < t4.size() && i < t16.size(); ++i)
            EXPECT_TRUE(t1[i] == t4[i] && t1[i] == t16[i])
                << t1[i].first << ": t1=" << t1[i].second
                << " t4=" << t4[i].second
                << " t16=" << t16[i].second;

    // Sanity: the slice actually exercised the layers under test.
    auto value = [&](const std::string &name) -> std::uint64_t {
        for (const auto &[n, v] : t1)
            if (n == name)
                return v;
        return 0;
    };
    EXPECT_EQ(value("fault.trials"), 96u);
    EXPECT_EQ(value("dse.points"), 4u);
    EXPECT_GT(value("synth.cache.netlist_misses"), 0u);
    EXPECT_EQ(value("ml.generations"), 2u);
    EXPECT_EQ(value("ml.candidates_scored"), 7u); // baseline + 2x3
    EXPECT_EQ(value("ml.cache_misses"), 1u);
    EXPECT_EQ(value("ml.cache_hits"), 1u);
}

TEST(Dse, TracingDoesNotChangeResults)
{
    // Observability must be observational: enabling the tracer (and
    // buffering thousands of spans) cannot change one result bit.
    SynthCache::global().clear();
    trace::clear();
    trace::enable(); // buffer-only, no output file
    const auto traced = countersForThreadCount(4);
    const auto pointTraced =
        evaluateDesignPoint(CoreConfig::standard(1, 8, 2));
    trace::disable();
    EXPECT_GT(trace::eventCount(), 0u);
    trace::clear();

    const auto plain = countersForThreadCount(4);
    const auto pointPlain =
        evaluateDesignPoint(CoreConfig::standard(1, 8, 2));
    EXPECT_TRUE(traced == plain);
    EXPECT_DOUBLE_EQ(pointTraced.egfet.fmaxHz(),
                     pointPlain.egfet.fmaxHz());
    EXPECT_DOUBLE_EQ(pointTraced.egfet.powerMw(),
                     pointPlain.egfet.powerMw());
    EXPECT_EQ(pointTraced.egfet.gateCount(),
              pointPlain.egfet.gateCount());
}

TEST(Dse, SingleStageDominates)
{
    // Section 8: single-stage pipelines always outperform deeper
    // ones (same width/BARs) in area and power; fmax does not
    // improve enough to matter.
    const auto points = sweepDesignSpace();
    auto find = [&](unsigned p, unsigned d, unsigned b)
        -> const DesignPoint & {
        for (const auto &pt : points)
            if (pt.config.stages == p &&
                pt.config.isa.datawidth == d &&
                pt.config.isa.barCount == b)
                return pt;
        throw std::runtime_error("point not found");
    };
    for (unsigned d : {4u, 8u, 16u, 32u}) {
        for (unsigned b : {2u, 4u}) {
            const auto &p1 = find(1, d, b);
            const auto &p3 = find(3, d, b);
            EXPECT_LT(p1.egfet.areaCm2(), p3.egfet.areaCm2());
            EXPECT_LT(p1.egfet.powerMw(), p3.egfet.powerMw());
            EXPECT_GE(p1.egfet.fmaxHz(), 0.95 * p3.egfet.fmaxHz());
        }
    }
}

TEST(Dse, BestCoresBeatLegacyByAnOrderOfMagnitude)
{
    // Abstract: the best TP-ISA cores outperform pre-existing
    // cores by at least an order of magnitude in power and area
    // ... once program-specific; core-level the paper shows the
    // largest TP-ISA core smaller than the smallest legacy core.
    using namespace legacy;
    const auto points = sweepDesignSpace();
    const auto &light8080 =
        legacyCoreSpec(LegacyCore::Light8080).egfet;

    double largest_area = 0;
    for (const auto &pt : points)
        largest_area = std::max(largest_area, pt.egfet.areaCm2());
    EXPECT_LT(largest_area, light8080.areaCm2);

    // The smallest 8-bit TP-ISA core is several times smaller than
    // light8080 (the paper quotes 5.2x).
    double smallest8 = 1e9;
    for (const auto &pt : points)
        if (pt.config.isa.datawidth == 8)
            smallest8 = std::min(smallest8, pt.egfet.areaCm2());
    EXPECT_GT(light8080.areaCm2 / smallest8, 3.5);
}

// ----------------------------------------------------------------
// Figure 8 / Table 8 system evaluation
// ----------------------------------------------------------------

TEST(SystemEvalTest, MultOnEightBitCore)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const SystemEval eval = evaluateSystem(
        wl, CoreConfig::standard(1, 8, 2), TechKind::EGFET);

    EXPECT_GT(eval.cycles, 30u);
    EXPECT_GT(eval.areaTotal(), 0.0);
    EXPECT_GT(eval.energyTotal(), 0.0);
    EXPECT_GT(eval.timeTotal(), 0.0);
    // Components present and sensible.
    EXPECT_GT(eval.areaImem, 0.0);
    EXPECT_GT(eval.areaDmem, 0.0);
    EXPECT_GT(eval.timeImem, 0.0);
    // Iterations in the Table 8 regime (paper: 3727 for mult STD).
    EXPECT_GT(eval.iterationsOn30mAh(), 300u);
    EXPECT_LT(eval.iterationsOn30mAh(), 40'000u);
}

TEST(SystemEvalTest, SpecializedBeatsStandardEnergy)
{
    // Section 8: the program-specific core consumes less energy
    // than all other cores for every benchmark.
    for (Kernel k : {Kernel::Mult, Kernel::Div, Kernel::IntAvg}) {
        const Workload wl = makeWorkload(k, 8, 8);
        const auto std_eval = evaluateSystem(
            wl, CoreConfig::standard(1, 8, 2), TechKind::EGFET);
        const auto ps_eval =
            evaluateSpecializedSystem(wl, TechKind::EGFET);
        EXPECT_LT(ps_eval.energyTotal(), std_eval.energyTotal())
            << kernelName(k);
        EXPECT_LT(ps_eval.areaTotal(), std_eval.areaTotal())
            << kernelName(k);
        EXPECT_GT(ps_eval.iterationsOn30mAh(),
                  std_eval.iterationsOn30mAh())
            << kernelName(k);
    }
}

TEST(SystemEvalTest, MlcRomCutsDTreeImemArea)
{
    // Section 8 (dTree-ROMopt): 2-bit MLC ROM reduces instruction
    // memory area by almost 30% with a small energy change.
    const Workload wl = makeWorkload(Kernel::DTree, 8, 8);
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const auto slc = evaluateSystem(wl, cfg, TechKind::EGFET, 1);
    const auto mlc = evaluateSystem(wl, cfg, TechKind::EGFET, 2);
    const double reduction = 1.0 - mlc.areaImem / slc.areaImem;
    EXPECT_GT(reduction, 0.25);
    EXPECT_LT(reduction, 0.35);
    // Energy stays within ~10% of the SLC design (the paper sees
    // <1% increase; our static-dominated ROM model shows a small
    // decrease since MLC halves the dot count - see
    // EXPERIMENTS.md).
    EXPECT_NEAR(mlc.energyTotal() / slc.energyTotal(), 1.0, 0.10);
}

TEST(SystemEvalTest, CntSystemsOrdersOfMagnitudeFaster)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const auto eg = evaluateSystem(wl, cfg, TechKind::EGFET);
    const auto cnt = evaluateSystem(wl, cfg, TechKind::CNT_TFT);
    EXPECT_LT(cnt.timeTotal(), eg.timeTotal() / 50);
    // Section 8: CNT execution time is dominated by the 302 us
    // ROM access latency.
    EXPECT_GT(cnt.timeImem, cnt.timeCore);
}

TEST(SystemEvalTest, WiderDataNeedsWiderOrCoalescedCores)
{
    // mult16 on an 8-bit core (coalesced) runs more instructions
    // than on a native 16-bit core.
    const Workload narrow = makeWorkload(Kernel::Mult, 16, 8);
    const Workload native = makeWorkload(Kernel::Mult, 16, 16);
    const auto e_narrow = evaluateSystem(
        narrow, CoreConfig::standard(1, 8, 2), TechKind::EGFET);
    const auto e_native = evaluateSystem(
        native, CoreConfig::standard(1, 16, 2), TechKind::EGFET);
    EXPECT_GT(e_narrow.cycles, e_native.cycles);
    // ...but the narrow core + program still has less core area.
    EXPECT_LT(e_narrow.areaComb + e_narrow.areaRegs,
              e_native.areaComb + e_native.areaRegs);
}

} // anonymous namespace
} // namespace printed
