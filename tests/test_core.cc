/**
 * @file
 * Tests for the gate-level TP-ISA core generator: structural
 * properties across the design space, and full program equivalence
 * between the instruction-set simulator and the synthesized
 * single-cycle cores (gate-level co-simulation).
 */

#include <gtest/gtest.h>

#include "analysis/characterize.hh"
#include "arch/machine.hh"
#include "core/cosim.hh"
#include "core/generator.hh"
#include "isa/assembler.hh"

namespace printed
{
namespace
{

TEST(CoreConfig, Labels)
{
    EXPECT_EQ(CoreConfig::standard(1, 8, 2).label(), "p1_8_2");
    EXPECT_EQ(CoreConfig::standard(3, 32, 4).label(), "p3_32_4");
}

TEST(CoreGen, BuildsAndValidates)
{
    for (unsigned stages : {1u, 2u, 3u}) {
        const CoreConfig cfg = CoreConfig::standard(stages, 8, 2);
        const Netlist nl = buildCore(cfg);
        EXPECT_GT(nl.gateCount(), 100u) << cfg.label();
        EXPECT_NO_THROW(nl.validate());
        EXPECT_NO_THROW(nl.levelize());
    }
}

TEST(CoreGen, FlopCountGrowsWithPipelineDepth)
{
    const auto f1 = buildCore(CoreConfig::standard(1, 8, 2))
                        .flopCount();
    const auto f2 = buildCore(CoreConfig::standard(2, 8, 2))
                        .flopCount();
    const auto f3 = buildCore(CoreConfig::standard(3, 8, 2))
                        .flopCount();
    EXPECT_LT(f1, f2);
    EXPECT_LT(f2, f3);
    // p1 architectural state: PC(8) + flags(4) + BAR1(8) = 20.
    EXPECT_EQ(f1, 20u);
    // p2 adds the 24-bit IR and a valid bit; the optimizer sweeps
    // the IR flop for the B control bit (redundant with the opcode
    // field), leaving 23 + 1.
    EXPECT_EQ(f2, 20u + 23u + 1u);
}

TEST(CoreGen, AreaGrowsWithDatawidth)
{
    double prev = 0;
    for (unsigned width : {4u, 8u, 16u, 32u}) {
        const CoreConfig cfg = CoreConfig::standard(1, width, 2);
        const Characterization ch =
            characterize(buildCore(cfg), egfetLibrary());
        EXPECT_GT(ch.areaCm2(), prev) << cfg.label();
        prev = ch.areaCm2();
    }
}

TEST(CoreGen, FourBarsCostMoreThanTwo)
{
    const auto two = characterize(
        buildCore(CoreConfig::standard(1, 8, 2)), egfetLibrary());
    const auto four = characterize(
        buildCore(CoreConfig::standard(1, 8, 4)), egfetLibrary());
    EXPECT_GT(four.areaCm2(), two.areaCm2());
    EXPECT_GT(four.stats.seqGates, two.stats.seqGates);
}

TEST(CoreGen, EgfetFrequenciesInPaperBand)
{
    // Printed circuits run from a few Hz to a few kHz (Section 2);
    // Figure 7 shows TP-ISA EGFET cores in the tens of Hz.
    for (unsigned width : {4u, 8u, 16u, 32u}) {
        const CoreConfig cfg = CoreConfig::standard(1, width, 2);
        const Characterization ch =
            characterize(buildCore(cfg), egfetLibrary());
        EXPECT_GT(ch.fmaxHz(), 1.0) << cfg.label();
        EXPECT_LT(ch.fmaxHz(), 100.0) << cfg.label();
    }
}

TEST(CoreGen, CntOrdersOfMagnitudeFaster)
{
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist nl = buildCore(cfg);
    const auto egfet = characterize(nl, egfetLibrary());
    const auto cnt = characterize(nl, cntLibrary());
    // Worst-case rise/fall STA narrows CNT's advantage relative to
    // the paper's typical-case numbers, but the gap stays two to
    // three orders of magnitude.
    EXPECT_GT(cnt.fmaxHz(), 100 * egfet.fmaxHz());
    EXPECT_LT(cnt.areaCm2(), egfet.areaCm2() / 50);
}

// ----------------------------------------------------------------
// Gate-level co-simulation vs. the instruction-set simulator
// ----------------------------------------------------------------

/** Run a program on both simulators and compare all of memory. */
void
expectEquivalence(const Program &program, std::size_t dmem_words,
                  const CoreConfig &cfg)
{
    TpIsaMachine iss(program, dmem_words);
    iss.run();
    ASSERT_NE(iss.stats().halt, HaltReason::MaxSteps);

    const Netlist nl = buildCore(cfg);
    CoreCosim cosim(nl, cfg, program, dmem_words);
    cosim.run();

    for (std::size_t a = 0; a < dmem_words; ++a)
        EXPECT_EQ(cosim.mem(a), iss.mem(a))
            << cfg.label() << " mem[" << a << "]";
}

TEST(CoreCosimTest, ArithmeticAndFlags)
{
    const IsaConfig isa; // 8-bit, 2 BARs
    const Program p = assemble(R"(
        STORE [0], #200
        STORE [1], #100
        ADD [0], [1]       ; 44, C=1
        ADC [2], [1]       ; 0 + 100 + 1 = 101
        STORE [3], #5
        SUB [3], [1]       ; 5-100 borrow
        SBB [4], [1]       ; 0-100-1
        CMP [0], [0]       ; Z=1
        halt: BRN halt, #0
    )", isa, "arith");
    expectEquivalence(p, 8, CoreConfig::standard(1, 8, 2));
}

TEST(CoreCosimTest, LogicAndRotates)
{
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [0], #0xA5
        STORE [1], #0x0F
        AND [2], [0]       ; 0
        OR  [2], [0]       ; A5
        XOR [2], [1]       ; AA
        NOT [3], [2]       ; 55
        RL  [4], [0]       ; 4B, C=1
        RLC [5], [1]       ; 1F
        RR  [6], [0]       ; D2, C=1
        RRC [7], [1]       ; 87
        RRA [2], [0]       ; D2
        TEST [0], [1]
        halt: BRN halt, #0
    )", isa, "logic");
    expectEquivalence(p, 8, CoreConfig::standard(1, 8, 2));
}

TEST(CoreCosimTest, LoopWithBranches)
{
    const IsaConfig isa;
    // 5 * 9 by repeated addition.
    const Program p = assemble(R"(
        STORE [0], #0      ; acc
        STORE [1], #9      ; addend
        STORE [2], #5      ; count
        STORE [3], #1      ; one
        loop:
            ADD [0], [1]
            SUB [2], [3]
            BRN loop, Z
        halt: BRN halt, #0
    )", isa, "mul5x9");
    expectEquivalence(p, 4, CoreConfig::standard(1, 8, 2));
}

TEST(CoreCosimTest, BarAddressing)
{
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [0], #4
        SETBAR [0], #1
        STORE [b1+0], #11
        STORE [b1+1], #22
        ADD [b1+0], [b1+1]
        STORE [0], #6
        SETBAR [0], #1
        STORE [b1+0], #33
        halt: BRN halt, #0
    )", isa, "bars");
    expectEquivalence(p, 8, CoreConfig::standard(1, 8, 2));
}

TEST(CoreCosimTest, FourBarCore)
{
    IsaConfig isa;
    isa.barCount = 4;
    const Program p = assemble(R"(
        STORE [0], #2
        SETBAR [0], #1
        STORE [0], #4
        SETBAR [0], #2
        STORE [0], #6
        SETBAR [0], #3
        STORE [b1+0], #1
        STORE [b2+0], #2
        STORE [b3+0], #3
        ADD [b3+0], [b2+0]
        ADD [b3+0], [b1+0]
        halt: BRN halt, #0
    )", isa, "four_bars");
    expectEquivalence(p, 8, CoreConfig::standard(1, 8, 4));
}

TEST(CoreCosimTest, SixteenBitCore)
{
    IsaConfig isa;
    isa.datawidth = 16;
    const Program p = assemble(R"(
        STORE [0], #255
        STORE [1], #255
        ADD [0], [1]       ; 510, no carry in 16 bits
        RL [0], [0]
        halt: BRN halt, #0
    )", isa, "w16");
    expectEquivalence(p, 4, CoreConfig::standard(1, 16, 2));
}

TEST(CoreCosimTest, FourBitCore)
{
    IsaConfig isa;
    isa.datawidth = 4;
    const Program p = assemble(R"(
        STORE [0], #15
        STORE [1], #1
        ADD [0], [1]       ; wraps to 0, C=1
        ADC [2], [1]       ; 0+1+1 = 2
        halt: BRN halt, #0
    )", isa, "w4");
    expectEquivalence(p, 4, CoreConfig::standard(1, 4, 2));
}

TEST(CoreCosimTest, ThirtyTwoBitCoalescingChain)
{
    IsaConfig isa;
    isa.datawidth = 32;
    const Program p = assemble(R"(
        STORE [0], #255
        STORE [1], #255
        ADD [0], [1]
        ADD [0], [0]
        ADD [0], [0]       ; 2040
        SUB [0], [1]       ; 1785
        halt: BRN halt, #0
    )", isa, "w32");
    expectEquivalence(p, 4, CoreConfig::standard(1, 32, 2));
}

TEST(CoreCosimTest, TwoStagePipelineExecutesPrograms)
{
    // The 2-stage core (fetch | execute) must produce identical
    // results: the IR + valid-bit flush logic is exercised by the
    // taken branches of the loop.
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [0], #0
        STORE [1], #7
        STORE [2], #6
        STORE [3], #1
        loop:
            ADD [0], [1]
            SUB [2], [3]
            BRN loop, Z
        halt: BRN halt, #0
    )", isa, "p2_loop");
    expectEquivalence(p, 4, CoreConfig::standard(2, 8, 2));
}

TEST(CoreCosimTest, TwoStageSetbarAndRotates)
{
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [0], #4
        SETBAR [0], #1
        STORE [b1+0], #0x81
        RL [b1+1], [b1+0]
        RRC [b1+2], [b1+0]
        CMP [b1+1], [b1+2]
        BRN skip, Z
        STORE [3], #99
        skip:
        halt: BRN halt, #0
    )", isa, "p2_bars");
    expectEquivalence(p, 8, CoreConfig::standard(2, 8, 2));
}

TEST(CoreCosimTest, ThreeStagePipelineExecutesPrograms)
{
    // The 3-stage core (fetch | decode/address | execute) redirects
    // two fetches behind a taken branch; the loop exercises flush,
    // refetch, and the flag path across the extra stage.
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [0], #0
        STORE [1], #7
        STORE [2], #6
        STORE [3], #1
        loop:
            ADD [0], [1]
            SUB [2], [3]
            BRN loop, Z
        halt: BRN halt, #0
    )", isa, "p3_loop");
    expectEquivalence(p, 4, CoreConfig::standard(3, 8, 2));
}

TEST(CoreCosimTest, ThreeStageMemoryRawHazardStalls)
{
    // Back-to-back read-after-write on the same word: the stage-3
    // write must be visible to the stage-2 operand read of the next
    // instruction (the interlock stalls fetch, holds the PC, and
    // replays the read).
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [2], #7
        ADD [2], [2]
        ADD [2], [2]
        ADD [3], [2]
        SUB [3], [2]
        halt: BRN halt, #0
    )", isa, "p3_raw");
    expectEquivalence(p, 8, CoreConfig::standard(3, 8, 2));
}

TEST(CoreCosimTest, ThreeStageSetbarPointerChain)
{
    // SET-BAR reads its pointer word in stage 2 immediately after
    // the STORE that produced it retires from stage 3 (stall), and
    // the following instruction addresses through the just-written
    // BAR (no hazard: BARs commit a stage ahead of execute).
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [4], #9
        SETBAR [4], #1
        STORE [b1+0], #3
        STORE [4], #12
        SETBAR [4], #1
        ADD [b1+0], [9]
        halt: BRN halt, #0
    )", isa, "p3_bars");
    expectEquivalence(p, 16, CoreConfig::standard(3, 8, 2));
}

TEST(CoreCosimTest, MeasuredActivityIsPlausible)
{
    const IsaConfig isa;
    const Program p = assemble(R"(
        STORE [0], #0
        STORE [1], #1
        STORE [2], #40
        loop:
            ADD [0], [1]
            SUB [2], [1]
            BRN loop, Z
        halt: BRN halt, #0
    )", isa, "activity");
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist nl = buildCore(cfg);
    CoreCosim cosim(nl, cfg, p, 4);
    cosim.run();
    // The paper's reported average activity is 0.88 toggles per
    // gate per cycle; ours should land in the same regime.
    EXPECT_GT(cosim.activityFactor(), 0.05);
    EXPECT_LT(cosim.activityFactor(), 2.0);
}

} // anonymous namespace
} // namespace printed
