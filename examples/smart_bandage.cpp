/**
 * @file
 * Smart bandage scenario (one of the paper's motivating
 * applications, Table 3): a printed wound-monitoring patch samples
 * an oxygenation sensor and flags readings above a threshold -
 * exactly the tHold kernel.
 *
 * This example sizes the complete printed system (core + ROM +
 * RAM), checks the application's rate requirement, and reports the
 * battery life on each printed battery, for both the standard and
 * the program-specific core.
 *
 * Usage:  ./build/examples/smart_bandage
 */

#include <iostream>

#include "apps/applications.hh"
#include "apps/battery.hh"
#include "dse/system_eval.hh"

int
main()
{
    using namespace printed;

    // The bandage app from Table 3: < 0.01 Hz sampling, 8-bit.
    const ApplicationInfo *bandage = nullptr;
    for (const auto &app : applicationSurvey())
        if (app.name == "Smart Bandage")
            bandage = &app;
    if (!bandage) {
        std::cerr << "application registry broken\n";
        return 1;
    }
    std::cout << "Application: " << bandage->name << " ("
              << bandage->sampleRateHz << " Hz, "
              << bandage->precisionBits << "-bit, duty '"
              << bandage->dutyCycleNote << "')\n\n";

    // The monitoring kernel: count sensor readings above the
    // alarm threshold over a 16-sample window.
    const Workload wl = makeWorkload(Kernel::THold, 8, 8);

    const SystemEval std_sys = evaluateSystem(
        wl, CoreConfig::standard(1, 8, 2), TechKind::EGFET);
    const SystemEval ps_sys =
        evaluateSpecializedSystem(wl, TechKind::EGFET);

    for (const SystemEval *sys : {&std_sys, &ps_sys}) {
        std::cout << sys->label << ":\n"
                  << "  system area   " << sys->areaTotal()
                  << " cm^2 (core "
                  << sys->areaComb + sys->areaRegs << ", IM "
                  << sys->areaImem << ", DM " << sys->areaDmem
                  << ")\n"
                  << "  per window    " << sys->timeTotal()
                  << " s, " << sys->energyTotal() << " mJ\n";

        // Rate check: one window per sample.
        const double windows_per_s = 1.0 / sys->timeTotal();
        std::cout << "  rate          " << windows_per_s
                  << " windows/s vs required "
                  << bandage->sampleRateHz << " -> "
                  << (windows_per_s >= bandage->sampleRateHz
                          ? "OK"
                          : "TOO SLOW")
                  << "\n";

        // Battery life: the window runs at the app's duty cycle.
        const double avg_mw =
            sys->energyTotal() / sys->timeTotal() *
            bandage->dutyFraction();
        std::cout << "  battery life at duty "
                  << bandage->dutyFraction() << ":\n";
        for (const Battery &b : printedBatteries()) {
            const double hours =
                b.energyJoules() / (avg_mw * 1e-3) / 3600.0;
            std::cout << "    " << b.name << ": "
                      << hours / 24.0 << " days\n";
        }
        std::cout << "\n";
    }

    std::cout << "The program-specific patch is smaller, uses less "
                 "energy per window, and therefore lives longer on "
                 "every battery - the Section 7 story, end to "
                 "end.\n";
    return 0;
}
