/**
 * @file
 * Quickstart: the whole library in one page.
 *
 * 1. Write a TP-ISA program and assemble it.
 * 2. Run it on the instruction-set simulator.
 * 3. Synthesize a printed core to gates and characterize it.
 * 4. Run the same program on the gate-level core (co-simulation)
 *    and check both executions agree.
 *
 * Build tree usage:  ./build/examples/quickstart
 */

#include <iostream>

#include "analysis/characterize.hh"
#include "arch/machine.hh"
#include "core/cosim.hh"
#include "core/generator.hh"
#include "isa/assembler.hh"

int
main()
{
    using namespace printed;

    // ---- 1. A small program: sum the integers 1..10 ------------
    const IsaConfig isa; // 8-bit datapath, 2 BARs
    const Program program = assemble(R"(
        STORE [0], #0      ; sum
        STORE [1], #10     ; n
        STORE [2], #1      ; one
        loop:
            ADD [0], [1]   ; sum += n
            SUB [1], [2]   ; n--
            BRN loop, Z    ; while n != 0
        halt:
            BRN halt, #0   ; idle spin = done
    )", isa, "sum1to10");

    std::cout << "Assembled '" << program.name << "': "
              << program.size() << " instructions, "
              << program.imemBits() << " ROM bits\n";

    // ---- 2. Instruction-set simulation --------------------------
    TpIsaMachine iss(program, 4);
    iss.run();
    std::cout << "ISS result: sum = " << iss.mem(0) << " after "
              << iss.stats().instructions << " instructions\n";

    // ---- 3. Synthesize and characterize a printed core ----------
    const CoreConfig config = CoreConfig::standard(
        /*stages=*/1, /*datawidth=*/8, /*bars=*/2);
    const Netlist netlist = buildCore(config);
    const Characterization egfet =
        characterize(netlist, egfetLibrary());
    const Characterization cnt = characterize(netlist, cntLibrary());

    std::cout << "\nCore " << config.label() << ": "
              << egfet.gateCount() << " standard cells ("
              << egfet.stats.seqGates << " flip-flops)\n"
              << "  EGFET@1V : fmax " << egfet.fmaxHz() << " Hz, "
              << egfet.areaCm2() << " cm^2, " << egfet.powerMw()
              << " mW\n"
              << "  CNT-TFT@3V: fmax " << cnt.fmaxHz() << " Hz, "
              << cnt.areaCm2() << " cm^2, " << cnt.powerMw()
              << " mW\n";

    // ---- 4. Gate-level co-simulation -----------------------------
    CoreCosim cosim(netlist, config, program, 4);
    const std::uint64_t cycles = cosim.run();
    std::cout << "\nGate-level run: sum = " << cosim.mem(0)
              << " in " << cycles << " cycles (activity factor "
              << cosim.activityFactor() << ")\n";

    if (cosim.mem(0) != iss.mem(0)) {
        std::cerr << "MISMATCH between ISS and gates!\n";
        return 1;
    }
    std::cout << "ISS and synthesized gates agree.\n";
    return 0;
}
