/**
 * @file
 * Interactive design-space explorer: synthesize any TP-ISA core
 * configuration to gates and characterize it in both printed
 * technologies, or sweep the whole Figure 7 space.
 *
 * Usage:
 *   ./build/examples/design_explorer                 (full sweep)
 *   ./build/examples/design_explorer 1 8 2           (one point:
 *                                     stages width bars)
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "core/generator.hh"
#include "dse/sweep.hh"
#include "netlist/stats.hh"

namespace
{

using namespace printed;

void
printPoint(const DesignPoint &p, bool verbose)
{
    std::cout << p.config.label() << ": " << p.egfet.gateCount()
              << " cells, depth " << p.egfet.stats.logicDepth
              << ", " << p.egfet.stats.seqGates << " flops\n"
              << "  EGFET : " << p.egfet.fmaxHz() << " Hz, "
              << p.egfet.areaCm2() << " cm^2, " << p.egfet.powerMw()
              << " mW\n"
              << "  CNT   : " << p.cnt.fmaxHz() << " Hz, "
              << p.cnt.areaCm2() << " cm^2, " << p.cnt.powerMw()
              << " mW\n";
    if (verbose) {
        const Netlist nl = buildCore(p.config);
        printStats(std::cout, "  cells", computeStats(nl));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace printed;

    if (argc == 4) {
        const CoreConfig cfg = CoreConfig::standard(
            unsigned(std::atoi(argv[1])),
            unsigned(std::atoi(argv[2])),
            unsigned(std::atoi(argv[3])));
        try {
            printPoint(evaluateDesignPoint(cfg), true);
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }
        return 0;
    }

    std::cout << "Sweeping the Figure 7 design space (24 cores, "
                 "each synthesized to gates)...\n\n";
    const auto points = sweepDesignSpace();

    TableWriter t({"core", "cells", "flops", "EGFET Hz",
                   "EGFET cm^2", "EGFET mW", "CNT Hz", "CNT cm^2",
                   "CNT mW"});
    const DesignPoint *best_power = nullptr;
    const DesignPoint *best_speed = nullptr;
    for (const auto &p : points) {
        t.addRow({p.config.label(),
                  std::to_string(p.egfet.gateCount()),
                  std::to_string(p.egfet.stats.seqGates),
                  TableWriter::fixed(p.egfet.fmaxHz(), 2),
                  TableWriter::fixed(p.egfet.areaCm2(), 2),
                  TableWriter::fixed(p.egfet.powerMw(), 1),
                  TableWriter::fixed(p.cnt.fmaxHz(), 0),
                  TableWriter::fixed(p.cnt.areaCm2(), 3),
                  TableWriter::fixed(p.cnt.powerMw(), 1)});
        if (!best_power ||
            p.egfet.powerMw() < best_power->egfet.powerMw())
            best_power = &p;
        if (!best_speed ||
            p.egfet.fmaxHz() > best_speed->egfet.fmaxHz())
            best_speed = &p;
    }
    t.print(std::cout);

    std::cout << "\nLowest-power EGFET core: "
              << best_power->config.label() << " ("
              << best_power->egfet.powerMw() << " mW)\n"
              << "Fastest EGFET core:      "
              << best_speed->config.label() << " ("
              << best_speed->egfet.fmaxHz() << " Hz)\n"
              << "\nRun with 'stages width bars' arguments for a "
                 "cell-level breakdown of one point.\n";
    return 0;
}
