/**
 * @file
 * PDK export: writes the paper's released artifact - synthesis-
 * ready standard-cell libraries - as Liberty files, together with
 * behavioral Verilog models and a reference core netlist, so the
 * libraries can be used with an external EDA flow.
 *
 * Usage:  ./build/examples/export_pdk [output_dir]
 */

#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/generator.hh"
#include "netlist/verilog.hh"
#include "tech/liberty.hh"

int
main(int argc, char **argv)
{
    using namespace printed;
    namespace fs = std::filesystem;

    const fs::path dir = argc > 1 ? argv[1] : "pdk_export";
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        std::cerr << "cannot create " << dir << ": " << ec.message()
                  << "\n";
        return 1;
    }

    auto write = [&](const fs::path &name, auto &&writer) {
        std::ofstream out(dir / name);
        if (!out) {
            std::cerr << "cannot open " << (dir / name) << "\n";
            std::exit(1);
        }
        writer(out);
        std::cout << "  wrote " << (dir / name).string() << "\n";
    };

    std::cout << "Exporting the printed PDK:\n";
    write("egfet_1v.lib", [](std::ostream &os) {
        writeLiberty(os, egfetLibrary());
    });
    write("cnt_tft_3v.lib", [](std::ostream &os) {
        writeLiberty(os, cntLibrary());
    });

    // Reference design: the single-cycle 8-bit TP-ISA core, with
    // self-contained cell models for simulation.
    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist core = buildCore(cfg);
    write("tpisa_p1_8_2.v", [&](std::ostream &os) {
        writeVerilog(os, core, /*include_cell_models=*/true);
    });

    std::cout << "\nThe .lib files carry the Table 2 "
                 "characterization (scalar delays at the printed "
                 "operating point); the Verilog is the synthesized "
              << cfg.label() << " reference core ("
              << core.gateCount() << " cells).\n";
    return 0;
}
