/**
 * @file
 * Print shop: the program-specific hardware flow of Section 7 as
 * a command-line tool. Give it a benchmark name; it prints the
 * program, the static analysis (the Table 7 row), the standard
 * vs specialized core comparison, and verifies the specialized
 * core at gate level before "sending it to the printer".
 *
 * Usage:
 *   ./build/examples/print_shop mult
 *   ./build/examples/print_shop inSort out.v   (also exports the
 *                         specialized core as structural Verilog)
 *   (kernels: mult div inSort intAvg tHold crc8 dTree)
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "netlist/verilog.hh"

#include "analysis/characterize.hh"
#include "core/cosim.hh"
#include "core/generator.hh"
#include "mem/rom.hh"
#include "progspec/analyze.hh"
#include "progspec/specialize.hh"
#include "workloads/kernels.hh"

int
main(int argc, char **argv)
{
    using namespace printed;

    Kernel kind = Kernel::Mult;
    if (argc > 1) {
        bool found = false;
        for (unsigned k = 0; k < numKernels; ++k) {
            if (std::strcmp(argv[1],
                            kernelName(static_cast<Kernel>(k))) ==
                0) {
                kind = static_cast<Kernel>(k);
                found = true;
            }
        }
        if (!found) {
            std::cerr << "unknown kernel '" << argv[1]
                      << "' (try: mult div inSort intAvg tHold "
                         "crc8 dTree)\n";
            return 1;
        }
    }

    const Workload wl = makeWorkload(kind, 8, 8);
    std::cout << disassemble(wl.program) << "\n";

    // ---- Static analysis (the Table 7 row) ----------------------
    const ProgSpecAnalysis a =
        analyzeProgram(wl.program, wl.dmemWords);
    std::cout << "Static analysis:\n"
              << "  PC " << a.pcBits << " bits, "
              << a.writableBars << " writable BAR(s)"
              << (a.writableBars ? " of " + std::to_string(a.barBits)
                                       + " bits"
                                 : std::string())
              << ", " << a.flagCount << " live flag(s), "
              << "instruction " << a.instructionBits()
              << " bits\n\n";

    // ---- Standard vs specialized core ---------------------------
    const CoreConfig std_cfg = CoreConfig::standard(1, 8, 2);
    const CoreConfig ps_cfg =
        specializedConfig(wl.program, wl.dmemWords);
    const auto std_ch =
        characterize(buildCore(std_cfg), egfetLibrary());
    const auto ps_ch =
        characterize(buildCore(ps_cfg), egfetLibrary());

    const CrosspointRom std_rom(wl.program.size(),
                                std_cfg.isa.instructionBits());
    const CrosspointRom ps_rom(wl.program.size(),
                               a.instructionBits());

    std::cout << "Standard core (p1_8_2): " << std_ch.gateCount()
              << " cells, " << std_ch.areaCm2() << " cm^2, "
              << std_ch.powerMw() << " mW, ROM "
              << std_rom.areaMm2() << " mm^2\n"
              << "Specialized core:       " << ps_ch.gateCount()
              << " cells, " << ps_ch.areaCm2() << " cm^2, "
              << ps_ch.powerMw() << " mW, ROM "
              << ps_rom.areaMm2() << " mm^2\n"
              << "Savings: core area x"
              << std_ch.areaCm2() / ps_ch.areaCm2() << ", flops "
              << std_ch.stats.seqGates << " -> "
              << ps_ch.stats.seqGates << "\n\n";

    // ---- Optional Verilog hand-off ------------------------------
    if (argc > 2) {
        std::ofstream out(argv[2]);
        if (!out) {
            std::cerr << "cannot open " << argv[2] << "\n";
            return 1;
        }
        writeVerilog(out, buildCore(ps_cfg));
        std::cout << "Wrote specialized core netlist to " << argv[2]
                  << "\n\n";
    }

    // ---- Gate-level sign-off ------------------------------------
    if (kind == Kernel::Crc8) {
        std::cout << "crc8 streams its input; gate-level sign-off "
                     "runs in the test suite via the standard "
                     "encoding.\n";
        return 0;
    }
    const Program ps_prog = specializeProgram(wl.program, ps_cfg);
    const Netlist ps_nl = buildCore(ps_cfg);
    CoreCosim cosim(ps_nl, ps_cfg, ps_prog, wl.dmemWords);
    const auto inputs = defaultInputs(kind, 8);
    wl.load([&](std::size_t addr, std::uint64_t v) {
        cosim.setMem(addr, v);
    }, inputs);
    cosim.run();
    const auto got =
        wl.read([&](std::size_t addr) { return cosim.mem(addr); });
    const auto want = goldenOutputs(kind, 8, inputs);
    if (got != want) {
        std::cerr << "gate-level sign-off FAILED\n";
        return 1;
    }
    std::cout << "Gate-level sign-off passed: the specialized core "
                 "computes the reference result. Ready to print.\n";
    return 0;
}
