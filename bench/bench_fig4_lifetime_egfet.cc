/**
 * @file
 * Reproduces Figure 4: lifetime vs duty cycle for the four legacy
 * cores in EGFET, on each of the four printed batteries.
 */

#include <iostream>

#include "apps/battery.hh"
#include "bench_util.hh"
#include "legacy/cores.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    using namespace printed::legacy;
    bench::banner("Figure 4",
                  "Lifetime [hours] vs duty cycle, EGFET cores on "
                  "printed batteries");

    const double duties[] = {1.0, 0.1, 0.01, 0.001};
    for (const Battery &battery : printedBatteries()) {
        std::cout << battery.name << " ("
                  << battery.energyJoules() << " J):\n";
        TableWriter t({"Core", "duty 1.0", "duty 0.1", "duty 0.01",
                       "duty 0.001"});
        for (LegacyCore core : allLegacyCores) {
            const LegacyCoreSpec &s = legacyCoreSpec(core);
            std::vector<std::string> row = {s.name};
            for (double d : duties)
                row.push_back(TableWriter::fixed(
                    lifetimeHours(battery, s.egfet.powerMw, d), 1));
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Shape to reproduce: at duty cycle 1.0 every "
                 "legacy core dies within ~2 hours on the sub-30 "
                 "mAh batteries (Section 4).\n";
    return 0;
}
