/**
 * @file
 * Google-benchmark microbenchmarks of the toolchain itself:
 * synthesis (core generation + optimization), static timing,
 * gate-level simulation, the assembler, and the instruction-set
 * simulator. These guard the usability of the flow (a full
 * design-space sweep runs hundreds of synthesis+analysis passes).
 */

#include <benchmark/benchmark.h>

#include "analysis/characterize.hh"
#include "arch/machine.hh"
#include "core/generator.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace printed;

void
BM_BuildCore(benchmark::State &state)
{
    const CoreConfig cfg =
        CoreConfig::standard(1, unsigned(state.range(0)), 2);
    for (auto _ : state) {
        Netlist nl = buildCore(cfg);
        benchmark::DoNotOptimize(nl.gateCount());
    }
}
BENCHMARK(BM_BuildCore)->Arg(8)->Arg(32);

void
BM_Characterize(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    for (auto _ : state) {
        const Characterization ch = characterize(nl, egfetLibrary());
        benchmark::DoNotOptimize(ch.fmaxHz());
    }
}
BENCHMARK(BM_Characterize);

void
BM_StaticTiming(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 32, 2));
    for (auto _ : state) {
        const TimingReport t = analyzeTiming(nl, egfetLibrary());
        benchmark::DoNotOptimize(t.fmaxHz);
    }
}
BENCHMARK(BM_StaticTiming);

void
BM_GateSimCycle(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    GateSimulator sim(nl);
    for (auto _ : state)
        sim.cycle();
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_GateSimCycle);

void
BM_Assembler(benchmark::State &state)
{
    const std::string src = R"(
        STORE [0], #5
        loop:
            ADD [0], [1]
            ADC [2], [3]
            SUB [4], [5]
            BRN loop, Z
        halt: BRN halt, #0
    )";
    const IsaConfig cfg;
    for (auto _ : state) {
        const Program p = assemble(src, cfg);
        benchmark::DoNotOptimize(p.size());
    }
}
BENCHMARK(BM_Assembler);

void
BM_IssMultIteration(benchmark::State &state)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const auto inputs = defaultInputs(Kernel::Mult, 8);
    for (auto _ : state) {
        TpIsaMachine m(wl.program, wl.dmemWords);
        wl.load([&](std::size_t a, std::uint64_t v) {
            m.setMem(a, v);
        }, inputs);
        m.run();
        benchmark::DoNotOptimize(m.stats().instructions);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_IssMultIteration);

} // namespace

BENCHMARK_MAIN();
