/**
 * @file
 * Google-benchmark microbenchmarks of the toolchain itself:
 * synthesis (core generation + optimization), static timing,
 * gate-level simulation, the assembler, the instruction-set
 * simulator, the parallel execution layer, and the synthesis
 * cache. These guard the usability of the flow (a full
 * design-space sweep runs hundreds of synthesis+analysis passes).
 *
 * Options: --threads N sets the worker count of the parallel-sweep
 * and variation benchmarks (default 1; stripped before
 * google-benchmark parses the remaining flags). Machine-readable
 * timing comes from google-benchmark itself, e.g.
 * --benchmark_format=json or --benchmark_out=BENCH_micro.json.
 *
 * --json PATH switches to a standalone scalar-vs-batch simulator
 * comparison (no google-benchmark): raw gate-level settle
 * throughput and Monte-Carlo fault-trial throughput of both
 * engines on the p1_8_2 core, with a hard agreement check on the
 * yield numbers (exit 1 on mismatch). CI smoke-runs this as
 * BENCH_sim.json.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "analysis/characterize.hh"
#include "analysis/fault.hh"
#include "analysis/variation.hh"
#include "arch/machine.hh"
#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/generator.hh"
#include "dse/sweep.hh"
#include "isa/assembler.hh"
#include "sim/batch_simulator.hh"
#include "sim/simulator.hh"
#include "synth/cache.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace printed;

/** Worker count for the parallel benchmarks (--threads N). */
unsigned gThreads = 1;

void
BM_BuildCore(benchmark::State &state)
{
    const CoreConfig cfg =
        CoreConfig::standard(1, unsigned(state.range(0)), 2);
    for (auto _ : state) {
        Netlist nl = buildCore(cfg);
        benchmark::DoNotOptimize(nl.gateCount());
    }
}
BENCHMARK(BM_BuildCore)->Arg(8)->Arg(32);

void
BM_Characterize(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    for (auto _ : state) {
        const Characterization ch = characterize(nl, egfetLibrary());
        benchmark::DoNotOptimize(ch.fmaxHz());
    }
}
BENCHMARK(BM_Characterize);

void
BM_StaticTiming(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 32, 2));
    for (auto _ : state) {
        const TimingReport t = analyzeTiming(nl, egfetLibrary());
        benchmark::DoNotOptimize(t.fmaxHz);
    }
}
BENCHMARK(BM_StaticTiming);

void
BM_GateSimCycle(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    GateSimulator sim(nl);
    for (auto _ : state)
        sim.cycle();
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_GateSimCycle);

void
BM_BatchGateSimCycle(benchmark::State &state)
{
    // One batch cycle advances 64 independent trials; items = lane
    // cycles, so items/s is directly comparable to BM_GateSimCycle.
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    BatchGateSimulator sim(nl);
    for (auto _ : state)
        sim.cycle();
    state.SetItemsProcessed(std::int64_t(
        state.iterations() * BatchGateSimulator::laneCount));
}
BENCHMARK(BM_BatchGateSimCycle);

void
BM_Assembler(benchmark::State &state)
{
    const std::string src = R"(
        STORE [0], #5
        loop:
            ADD [0], [1]
            ADC [2], [3]
            SUB [4], [5]
            BRN loop, Z
        halt: BRN halt, #0
    )";
    const IsaConfig cfg;
    for (auto _ : state) {
        const Program p = assemble(src, cfg);
        benchmark::DoNotOptimize(p.size());
    }
}
BENCHMARK(BM_Assembler);

void
BM_IssMultIteration(benchmark::State &state)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const auto inputs = defaultInputs(Kernel::Mult, 8);
    for (auto _ : state) {
        TpIsaMachine m(wl.program, wl.dmemWords);
        wl.load([&](std::size_t a, std::uint64_t v) {
            m.setMem(a, v);
        }, inputs);
        m.run();
        benchmark::DoNotOptimize(m.stats().instructions);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_IssMultIteration);

void
BM_ParallelForOverhead(benchmark::State &state)
{
    ThreadPool pool(gThreads);
    std::vector<std::uint64_t> out(1024);
    for (auto _ : state) {
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i] = mixSeed(0xABCD, i);
        });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations() * out.size()));
}
BENCHMARK(BM_ParallelForOverhead);

void
BM_SweepDesignSpace(benchmark::State &state)
{
    // Cold sweep: every iteration re-synthesizes all 24 Figure 7
    // points (the cache is cleared), spread over --threads workers.
    SweepOptions opts;
    opts.threads = gThreads;
    for (auto _ : state) {
        SynthCache::global().clear();
        const auto points = sweepDesignSpace(opts);
        benchmark::DoNotOptimize(points.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations() * 24));
}
BENCHMARK(BM_SweepDesignSpace)->Unit(benchmark::kMillisecond);

void
BM_SweepDesignSpaceCached(benchmark::State &state)
{
    // Warm sweep: all 24 points served from the synthesis cache.
    SweepOptions opts;
    opts.threads = gThreads;
    SynthCache::global().clear();
    {
        const auto warmup = sweepDesignSpace(opts);
        benchmark::DoNotOptimize(warmup.size());
    }
    for (auto _ : state) {
        const auto points = sweepDesignSpace(opts);
        benchmark::DoNotOptimize(points.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations() * 24));
}
BENCHMARK(BM_SweepDesignSpaceCached)->Unit(benchmark::kMillisecond);

void
BM_VariationMc(benchmark::State &state)
{
    const std::shared_ptr<const Netlist> nl =
        SynthCache::global().core(CoreConfig::standard(1, 8, 2));
    VariationModel model;
    model.samples = 32;
    model.threads = gThreads;
    for (auto _ : state) {
        const VariationReport r =
            analyzeVariation(*nl, egfetLibrary(), model);
        benchmark::DoNotOptimize(r.p95Us);
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations() * model.samples));
}
BENCHMARK(BM_VariationMc)->Unit(benchmark::kMillisecond);

/**
 * The --json mode: time the scalar and 64-lane batch engines on the
 * same work — raw settle throughput (gate·cycles/s) and the
 * functional-yield Monte Carlo (trials/s) on the paper's p1_8_2
 * core at one thread each — and assert that both engines report
 * identical yield numbers.
 * @return 0 when the engines agree, 1 otherwise
 */
int
runSimComparison(const std::string &json_path)
{
    using bench::JsonReport;
    using bench::WallTimer;

    const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
    const Netlist nl = buildCore(cfg);
    const double gates = double(nl.gateCount());

    // Raw settle throughput. The batch engine advances 64 trials
    // per pass, so its gate·cycles/s carry a 64x lane factor.
    const unsigned simCycles = 2000;
    GateSimulator ssim(nl);
    WallTimer st;
    for (unsigned i = 0; i < simCycles; ++i)
        ssim.cycle();
    const double scalarSimMs = st.elapsedMs();
    BatchGateSimulator bsim(nl);
    WallTimer bt;
    for (unsigned i = 0; i < simCycles; ++i)
        bsim.cycle();
    const double batchSimMs = bt.elapsedMs();
    const double scalarGcps =
        gates * simCycles / (scalarSimMs / 1e3);
    const double batchGcps = gates * simCycles *
                             BatchGateSimulator::laneCount /
                             (batchSimMs / 1e3);

    // Monte-Carlo fault-trial throughput at equal thread count.
    FunctionalYieldConfig mc;
    mc.fault.deviceYield = 0.999; // nearly every trial defective
    mc.fault.seed = 3;
    mc.trials = 256;
    mc.threads = 1;
    mc.kernels = {Kernel::Mult};

    mc.engine = SimEngine::Scalar;
    WallTimer smc;
    const FunctionalYieldReport scalarRep =
        measureFunctionalYield(nl, cfg, mc);
    const double scalarMcMs = smc.elapsedMs();

    mc.engine = SimEngine::Batch;
    WallTimer bmc;
    const FunctionalYieldReport batchRep =
        measureFunctionalYield(nl, cfg, mc);
    const double batchMcMs = bmc.elapsedMs();

    const bool agree =
        scalarRep.fatalTrials == batchRep.fatalTrials &&
        scalarRep.maskedTrials == batchRep.maskedTrials &&
        scalarRep.benignTrials == batchRep.benignTrials &&
        scalarRep.defectFreeTrials == batchRep.defectFreeTrials;
    const double mcSpeedup = scalarMcMs / batchMcMs;

    std::printf("sim engines on p1_8_2 (%u gates):\n",
                unsigned(nl.gateCount()));
    std::printf("  settle  scalar %.2f Mgc/s   batch %.2f Mgc/s "
                "(%.1fx)\n",
                scalarGcps / 1e6, batchGcps / 1e6,
                batchGcps / scalarGcps);
    std::printf("  MC      scalar %.1f trials/s   batch %.1f "
                "trials/s (%.1fx)\n",
                mc.trials / (scalarMcMs / 1e3),
                mc.trials / (batchMcMs / 1e3), mcSpeedup);
    std::printf("  engines_agree: %s (functional yield %.4f vs "
                "%.4f)\n",
                agree ? "yes" : "NO",
                scalarRep.functionalYield(),
                batchRep.functionalYield());

    JsonReport report("sim_engines");
    report.meta("design", "p1_8_2");
    report.meta("gates", std::uint64_t(nl.gateCount()));
    report.meta("sim_cycles", simCycles);
    report.meta("mc_trials", mc.trials);
    report.meta("mc_threads", mc.threads);
    report.meta("sim_speedup_vs_scalar", batchGcps / scalarGcps);
    report.meta("mc_speedup_vs_scalar", mcSpeedup);
    report.meta("engines_agree", agree);
    report.add("engines",
               {{"engine", "scalar"},
                {"gate_cycles_per_s", scalarGcps},
                {"mc_trials_per_s",
                 mc.trials / (scalarMcMs / 1e3)},
                {"functional_yield",
                 scalarRep.functionalYield()},
                {"fatal_trials", scalarRep.fatalTrials},
                {"masked_trials", scalarRep.maskedTrials},
                {"benign_trials", scalarRep.benignTrials},
                {"defect_free_trials",
                 scalarRep.defectFreeTrials}});
    report.add("engines",
               {{"engine", "batch"},
                {"gate_cycles_per_s", batchGcps},
                {"mc_trials_per_s", mc.trials / (batchMcMs / 1e3)},
                {"functional_yield", batchRep.functionalYield()},
                {"fatal_trials", batchRep.fatalTrials},
                {"masked_trials", batchRep.maskedTrials},
                {"benign_trials", batchRep.benignTrials},
                {"defect_free_trials",
                 batchRep.defectFreeTrials}});
    report.writeTo(json_path);
    return agree ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);

    // --json [PATH]: standalone engine comparison, no
    // google-benchmark. A bare --json (e.g. "--json --trace-out
    // trace.json") writes the default report name.
    const std::string json =
        bench::jsonPathFromArgs(argc, argv, "BENCH_sim.json");
    if (!json.empty())
        return runSimComparison(json);

    // Strip "--threads N" and "--trace-out PATH" (already consumed
    // by initObservability) before google-benchmark rejects them as
    // unrecognized flags.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            gThreads = unsigned(std::strtoul(argv[i + 1], nullptr, 10));
            ++i;
            continue;
        }
        if (std::strcmp(argv[i], "--trace-out") == 0 &&
            i + 1 < argc) {
            ++i;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
