/**
 * @file
 * Google-benchmark microbenchmarks of the toolchain itself:
 * synthesis (core generation + optimization), static timing,
 * gate-level simulation, the assembler, the instruction-set
 * simulator, the parallel execution layer, and the synthesis
 * cache. These guard the usability of the flow (a full
 * design-space sweep runs hundreds of synthesis+analysis passes).
 *
 * Options: --threads N sets the worker count of the parallel-sweep
 * and variation benchmarks (default 1; stripped before
 * google-benchmark parses the remaining flags). Machine-readable
 * timing comes from google-benchmark itself, e.g.
 * --benchmark_format=json or --benchmark_out=BENCH_micro.json.
 */

#include <benchmark/benchmark.h>

#include <cstring>

#include "analysis/characterize.hh"
#include "analysis/variation.hh"
#include "arch/machine.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/generator.hh"
#include "dse/sweep.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "synth/cache.hh"
#include "workloads/kernels.hh"

namespace
{

using namespace printed;

/** Worker count for the parallel benchmarks (--threads N). */
unsigned gThreads = 1;

void
BM_BuildCore(benchmark::State &state)
{
    const CoreConfig cfg =
        CoreConfig::standard(1, unsigned(state.range(0)), 2);
    for (auto _ : state) {
        Netlist nl = buildCore(cfg);
        benchmark::DoNotOptimize(nl.gateCount());
    }
}
BENCHMARK(BM_BuildCore)->Arg(8)->Arg(32);

void
BM_Characterize(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    for (auto _ : state) {
        const Characterization ch = characterize(nl, egfetLibrary());
        benchmark::DoNotOptimize(ch.fmaxHz());
    }
}
BENCHMARK(BM_Characterize);

void
BM_StaticTiming(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 32, 2));
    for (auto _ : state) {
        const TimingReport t = analyzeTiming(nl, egfetLibrary());
        benchmark::DoNotOptimize(t.fmaxHz);
    }
}
BENCHMARK(BM_StaticTiming);

void
BM_GateSimCycle(benchmark::State &state)
{
    const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
    GateSimulator sim(nl);
    for (auto _ : state)
        sim.cycle();
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_GateSimCycle);

void
BM_Assembler(benchmark::State &state)
{
    const std::string src = R"(
        STORE [0], #5
        loop:
            ADD [0], [1]
            ADC [2], [3]
            SUB [4], [5]
            BRN loop, Z
        halt: BRN halt, #0
    )";
    const IsaConfig cfg;
    for (auto _ : state) {
        const Program p = assemble(src, cfg);
        benchmark::DoNotOptimize(p.size());
    }
}
BENCHMARK(BM_Assembler);

void
BM_IssMultIteration(benchmark::State &state)
{
    const Workload wl = makeWorkload(Kernel::Mult, 8, 8);
    const auto inputs = defaultInputs(Kernel::Mult, 8);
    for (auto _ : state) {
        TpIsaMachine m(wl.program, wl.dmemWords);
        wl.load([&](std::size_t a, std::uint64_t v) {
            m.setMem(a, v);
        }, inputs);
        m.run();
        benchmark::DoNotOptimize(m.stats().instructions);
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_IssMultIteration);

void
BM_ParallelForOverhead(benchmark::State &state)
{
    ThreadPool pool(gThreads);
    std::vector<std::uint64_t> out(1024);
    for (auto _ : state) {
        pool.parallelFor(out.size(), [&](std::size_t i) {
            out[i] = mixSeed(0xABCD, i);
        });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations() * out.size()));
}
BENCHMARK(BM_ParallelForOverhead);

void
BM_SweepDesignSpace(benchmark::State &state)
{
    // Cold sweep: every iteration re-synthesizes all 24 Figure 7
    // points (the cache is cleared), spread over --threads workers.
    SweepOptions opts;
    opts.threads = gThreads;
    for (auto _ : state) {
        SynthCache::global().clear();
        const auto points = sweepDesignSpace(opts);
        benchmark::DoNotOptimize(points.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations() * 24));
}
BENCHMARK(BM_SweepDesignSpace)->Unit(benchmark::kMillisecond);

void
BM_SweepDesignSpaceCached(benchmark::State &state)
{
    // Warm sweep: all 24 points served from the synthesis cache.
    SweepOptions opts;
    opts.threads = gThreads;
    SynthCache::global().clear();
    {
        const auto warmup = sweepDesignSpace(opts);
        benchmark::DoNotOptimize(warmup.size());
    }
    for (auto _ : state) {
        const auto points = sweepDesignSpace(opts);
        benchmark::DoNotOptimize(points.size());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations() * 24));
}
BENCHMARK(BM_SweepDesignSpaceCached)->Unit(benchmark::kMillisecond);

void
BM_VariationMc(benchmark::State &state)
{
    const std::shared_ptr<const Netlist> nl =
        SynthCache::global().core(CoreConfig::standard(1, 8, 2));
    VariationModel model;
    model.samples = 32;
    model.threads = gThreads;
    for (auto _ : state) {
        const VariationReport r =
            analyzeVariation(*nl, egfetLibrary(), model);
        benchmark::DoNotOptimize(r.p95Us);
    }
    state.SetItemsProcessed(
        std::int64_t(state.iterations() * model.samples));
}
BENCHMARK(BM_VariationMc)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // Strip "--threads N" before google-benchmark rejects it as an
    // unrecognized flag.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            gThreads = unsigned(std::strtoul(argv[i + 1], nullptr, 10));
            ++i;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
