/**
 * @file
 * Reproduces the Section 8 legacy-core anecdotes: benchmark-level
 * execution time and energy of the pre-existing cores in EGFET,
 * computed from real machine code running on our ISSs at the
 * published Table 4 clock rates and powers.
 *
 * Paper reference points: light8080 takes 44.6 s and 3.66 J for
 * an 8-bit multiply (over an order of magnitude worse than the
 * best TP-ISA core, but still better than Z80 and ZPU); 16-bit
 * insertion sort exceeds 1000 s on all three, and on Z80/ZPU it
 * exceeds what a 30 mAh battery stores (108 J).
 */

#include <iostream>

#include "apps/battery.hh"
#include "bench_util.hh"
#include "dse/system_eval.hh"
#include "legacy/cores.hh"
#include "legacy/i8080.hh"
#include "legacy/ir.hh"
#include "legacy/msp430.hh"
#include "legacy/zpu.hh"

namespace
{

using namespace printed;
using namespace printed::legacy;

struct Row
{
    std::string core;
    double seconds;
    double joules;
};

Row
evalLegacy(LegacyCore core, Kernel kind, unsigned width)
{
    const IrProgram prog = irKernel(kind, width);
    const auto inputs = defaultInputs(kind, width, 1);
    LegacyRun run;
    switch (core) {
      case LegacyCore::Light8080:
        run = run8080(prog, inputs, I8080Timing::I8080);
        break;
      case LegacyCore::Z80:
        run = run8080(prog, inputs, I8080Timing::Z80);
        break;
      case LegacyCore::OpenMsp430:
        run = runMsp430(prog, inputs);
        break;
      case LegacyCore::ZpuSmall:
        run = runZpu(prog, inputs);
        break;
    }
    const auto &spec = legacyCoreSpec(core).egfet;
    Row row;
    row.core = legacyCoreSpec(core).name;
    row.seconds = double(run.cycles) / spec.fmaxHz;
    row.joules = spec.powerMw * 1e-3 * row.seconds;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    bench::banner("Section 8 (legacy cores)",
                  "Benchmark run time and energy of pre-existing "
                  "EGFET cores (ISS cycle counts at Table 4 "
                  "clocks/powers)");

    const double budget = printed::table8Battery().energyJoules();

    struct Case
    {
        Kernel kind;
        unsigned width;
        const char *label;
    };
    for (const Case &c :
         {Case{Kernel::Mult, 8, "8-bit multiply"},
          Case{Kernel::InSort, 16, "16-bit insertion sort"},
          Case{Kernel::Crc8, 8, "crc8 (16-byte stream)"}}) {
        std::cout << c.label << ":\n";
        printed::TableWriter t({"Core", "Time [s]", "Energy [J]",
                                "vs 108 J battery"});
        for (LegacyCore core : allLegacyCores) {
            const Row row = evalLegacy(core, c.kind, c.width);
            t.addRow({row.core,
                      printed::TableWriter::fixed(row.seconds, 1),
                      printed::TableWriter::fixed(row.joules, 2),
                      row.joules > budget ? "EXCEEDS" : "ok"});
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper anchors: light8080 mult8 = 44.6 s / "
                 "3.66 J; >1000 s 16-bit sorts; Z80 and ZPU "
                 "exceed the battery on the sort.\n";
    return 0;
}
