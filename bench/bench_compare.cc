/**
 * @file
 * Compare BENCH_*.json reports and gate on regressions.
 *
 *   bench_compare BASELINE.json FRESH.json [FRESH2.json ...]
 *                 [--threshold F] [--key SUBSTRING]...
 *                 [--exact-key SUBSTRING]...
 *
 * All documents are flattened to dotted numeric paths
 * (common/json_min.hh). When more than one fresh report is given,
 * the fresh value of every path is the *median* across the fresh
 * reports (shared-runner wall clock is noisy; median-of-3 is the
 * CI perf gate's standard run shape). Two kinds of gated keys:
 *
 *   --key SUBSTR        throughput keys (default: "_per_s",
 *                       higher-is-better): a fresh median more than
 *                       `threshold` (default 0.25 = 25%) below the
 *                       baseline is a regression.
 *   --exact-key SUBSTR  determinism keys (e.g. synth.core.gates,
 *                       synth.opt.gates_removed): any difference
 *                       from the baseline at all is a regression —
 *                       these are exact counters, so a change means
 *                       the synthesis result changed, not the
 *                       machine speed.
 *
 * Exit codes: 0 all compared keys pass, 1 at least one regression,
 * 2 usage/parse error or no comparable keys (a silent pass on
 * disjoint reports would make the CI gate vacuous).
 */

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_min.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: bench_compare BASELINE.json FRESH.json"
           " [FRESH2.json ...]\n"
           "                     [--threshold F] [--key SUBSTRING]..."
           " [--exact-key SUBSTRING]...\n"
           "  --threshold F     max allowed relative drop"
           " (default 0.25)\n"
           "  --key SUBSTR      compare keys containing SUBSTR"
           " (default _per_s; repeatable)\n"
           "  --exact-key SUBSTR  keys that must match the baseline"
           " exactly (repeatable)\n"
           "With several FRESH files, each key's fresh value is the"
           " median across them.\n";
    return 2;
}

/** Whole file as a string; empty optional-style flag via ok. */
std::string
slurp(const std::string &path, bool &ok)
{
    std::ifstream is(path);
    if (!is) {
        ok = false;
        return "";
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    ok = true;
    return ss.str();
}

/** Median of a non-empty vector (even count: lower-middle mean). */
double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

bool
matchesAny(const std::string &name,
           const std::vector<std::string> &patterns)
{
    for (const std::string &p : patterns)
        if (name.find(p) != std::string::npos)
            return true;
    return false;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using printed::json::ParseError;
    using printed::json::flattenNumbers;
    using printed::json::parse;

    std::vector<std::string> files;
    std::vector<std::string> keys;
    std::vector<std::string> exactKeys;
    double threshold = 0.25;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threshold") {
            if (++i >= argc)
                return usage();
            try {
                threshold = std::stod(argv[i]);
            } catch (const std::exception &) {
                return usage();
            }
        } else if (arg == "--key") {
            if (++i >= argc)
                return usage();
            keys.push_back(argv[i]);
        } else if (arg == "--exact-key") {
            if (++i >= argc)
                return usage();
            exactKeys.push_back(argv[i]);
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() < 2 || threshold < 0)
        return usage();
    if (keys.empty() && exactKeys.empty())
        keys.push_back("_per_s");

    std::vector<std::map<std::string, double>> flat(files.size());
    for (std::size_t f = 0; f < files.size(); ++f) {
        bool ok = false;
        const std::string text = slurp(files[f], ok);
        if (!ok) {
            std::cerr << "bench_compare: cannot read " << files[f]
                      << "\n";
            return 2;
        }
        try {
            flat[f] = flattenNumbers(parse(text));
        } catch (const ParseError &e) {
            std::cerr << "bench_compare: " << files[f] << ": "
                      << e.what() << "\n";
            return 2;
        }
    }

    // Median fresh value per key, over the fresh files that have it.
    std::map<std::string, double> fresh;
    {
        std::map<std::string, std::vector<double>> samples;
        for (std::size_t f = 1; f < flat.size(); ++f)
            for (const auto &[name, v] : flat[f])
                samples[name].push_back(v);
        for (auto &[name, v] : samples)
            fresh[name] = median(std::move(v));
    }

    std::cout << std::fixed << std::setprecision(1);
    std::size_t compared = 0, regressions = 0;
    for (const auto &[name, base] : flat[0]) {
        const bool exact = matchesAny(name, exactKeys);
        if (!exact && !matchesAny(name, keys))
            continue;
        const auto it = fresh.find(name);
        if (it == fresh.end()) {
            std::cout << "  MISSING " << name
                      << " (in baseline only)\n";
            continue;
        }
        ++compared;
        const double freshV = it->second;
        if (exact) {
            const bool bad = freshV != base;
            std::cout << "  " << (bad ? "FAIL   " : "ok     ") << " "
                      << name << "  baseline "
                      << std::setprecision(6) << base << "  fresh "
                      << freshV << std::setprecision(1)
                      << (bad ? "  (exact-match key differs)\n"
                              : "  (exact)\n");
            if (bad)
                ++regressions;
            continue;
        }
        if (base <= 0) {
            // No meaningful relative drop from a non-positive
            // baseline; report but never gate on it.
            std::cout << "  SKIP    " << name << " baseline " << base
                      << "\n";
            continue;
        }
        const double rel = (freshV - base) / base;
        const bool bad = rel < -threshold;
        std::cout << "  " << (bad ? "FAIL   " : "ok     ") << " "
                  << name << "  baseline " << base << "  fresh "
                  << freshV << "  (" << std::showpos << rel * 100
                  << std::noshowpos << "%)\n";
        if (bad)
            ++regressions;
    }

    if (compared == 0) {
        std::cerr << "bench_compare: no comparable keys (patterns:";
        for (const std::string &k : keys)
            std::cerr << " " << k;
        for (const std::string &k : exactKeys)
            std::cerr << " =" << k;
        std::cerr << ")\n";
        return 2;
    }
    std::cout << "bench_compare: " << compared << " keys, "
              << regressions << " regression"
              << (regressions == 1 ? "" : "s") << " beyond "
              << threshold * 100 << "%\n";
    return regressions ? 1 : 0;
}
