/**
 * @file
 * Compare two BENCH_*.json reports and gate on throughput
 * regressions.
 *
 *   bench_compare BASELINE.json FRESH.json
 *                 [--threshold F] [--key SUBSTRING]...
 *
 * Both documents are flattened to dotted numeric paths
 * (json_min.hh); every path whose name contains one of the key
 * substrings (default: "_per_s", i.e. higher-is-better throughput
 * numbers) and appears in both reports is compared. A key whose
 * fresh value fell more than `threshold` (default 0.25 = 25%)
 * relative to the baseline is a regression.
 *
 * Exit codes: 0 all compared keys within threshold, 1 at least one
 * regression, 2 usage/parse error or no comparable keys (a silent
 * pass on disjoint reports would make the CI gate vacuous).
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "json_min.hh"

namespace
{

int
usage()
{
    std::cerr
        << "usage: bench_compare BASELINE.json FRESH.json"
           " [--threshold F] [--key SUBSTRING]...\n"
           "  --threshold F   max allowed relative drop"
           " (default 0.25)\n"
           "  --key SUBSTR    compare keys containing SUBSTR"
           " (default _per_s; repeatable)\n";
    return 2;
}

/** Whole file as a string; empty optional-style flag via ok. */
std::string
slurp(const std::string &path, bool &ok)
{
    std::ifstream is(path);
    if (!is) {
        ok = false;
        return "";
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    ok = true;
    return ss.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using printed::bench::json::ParseError;
    using printed::bench::json::flattenNumbers;
    using printed::bench::json::parse;

    std::vector<std::string> files;
    std::vector<std::string> keys;
    double threshold = 0.25;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threshold") {
            if (++i >= argc)
                return usage();
            try {
                threshold = std::stod(argv[i]);
            } catch (const std::exception &) {
                return usage();
            }
        } else if (arg == "--key") {
            if (++i >= argc)
                return usage();
            keys.push_back(argv[i]);
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.size() != 2 || threshold < 0)
        return usage();
    if (keys.empty())
        keys.push_back("_per_s");

    std::map<std::string, double> flat[2];
    for (int f = 0; f < 2; ++f) {
        bool ok = false;
        const std::string text = slurp(files[f], ok);
        if (!ok) {
            std::cerr << "bench_compare: cannot read " << files[f]
                      << "\n";
            return 2;
        }
        try {
            flat[f] = flattenNumbers(parse(text));
        } catch (const ParseError &e) {
            std::cerr << "bench_compare: " << files[f] << ": "
                      << e.what() << "\n";
            return 2;
        }
    }

    auto matches = [&](const std::string &name) {
        for (const std::string &k : keys)
            if (name.find(k) != std::string::npos)
                return true;
        return false;
    };

    std::cout << std::fixed << std::setprecision(1);
    std::size_t compared = 0, regressions = 0;
    for (const auto &[name, base] : flat[0]) {
        if (!matches(name))
            continue;
        const auto it = flat[1].find(name);
        if (it == flat[1].end()) {
            std::cout << "  MISSING " << name
                      << " (in baseline only)\n";
            continue;
        }
        ++compared;
        const double fresh = it->second;
        if (base <= 0) {
            // No meaningful relative drop from a non-positive
            // baseline; report but never gate on it.
            std::cout << "  SKIP    " << name << " baseline " << base
                      << "\n";
            continue;
        }
        const double rel = (fresh - base) / base;
        const bool bad = rel < -threshold;
        std::cout << "  " << (bad ? "FAIL   " : "ok     ") << " "
                  << name << "  baseline " << base << "  fresh "
                  << fresh << "  (" << std::showpos << rel * 100
                  << std::noshowpos << "%)\n";
        if (bad)
            ++regressions;
    }

    if (compared == 0) {
        std::cerr << "bench_compare: no comparable keys (patterns:";
        for (const std::string &k : keys)
            std::cerr << " " << k;
        std::cerr << ")\n";
        return 2;
    }
    std::cout << "bench_compare: " << compared << " keys, "
              << regressions << " regression"
              << (regressions == 1 ? "" : "s") << " beyond "
              << threshold * 100 << "%\n";
    return regressions ? 1 : 0;
}
