/**
 * @file
 * Reproduces Figure 6: the TP-ISA instruction encoding table -
 * every mnemonic with its opcode, W/C/A/B control bits, and
 * operand interpretation, generated from the ISA definition
 * itself (so any drift between code and documentation fails
 * here).
 */

#include <iostream>

#include "bench_util.hh"
#include "isa/isa.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Figure 6",
                  "TP-ISA instruction encodings: 24-bit standard "
                  "format [opcode(4) | W C A B | operand1(8) | "
                  "operand2(8)]");

    TableWriter t({"Mnemonic", "Opcode", "W", "C", "A", "B",
                   "operand1", "operand2"});
    for (unsigned m = 0; m < numMnemonics; ++m) {
        const auto mn = static_cast<Mnemonic>(m);
        const ControlBits cb = controlsOf(mn);
        std::string op1 = "address1", op2 = "address2";
        switch (opcodeOf(mn)) {
          case Opcode::STORE:
            op2 = "immediate";
            break;
          case Opcode::BAR:
            op1 = "ptr address";
            op2 = "immediate (BAR index)";
            break;
          case Opcode::BR:
            op1 = "target";
            op2 = "bmask (SZCV)";
            break;
          default:
            break;
        }
        t.addRow({mnemonicName(mn),
                  std::to_string(unsigned(opcodeOf(mn))),
                  cb.w ? "1" : "0", cb.c ? "1" : "0",
                  cb.a ? "1" : "0", cb.b ? "1" : "0", op1, op2});
    }
    t.print(std::cout);

    std::cout << "\nExample encodings:\n";
    const Instruction add = {Mnemonic::ADD, 0x12, 0x34};
    const Instruction brn = {Mnemonic::BRN, 0x02, 0x04};
    std::cout << "  ADD [0x12], [0x34]  -> 0x" << std::hex
              << encode(add) << "\n  BRN 2, Z            -> 0x"
              << encode(brn) << std::dec << "\n";
    return 0;
}
