/**
 * @file
 * Reproduces Table 6: characteristics of the EGFET memory devices
 * (1-bit SRAM, 1/2/4-bit crosspoint ROM dots, 2/4-bit ADCs), plus
 * the derived CNT-TFT equivalents our scaling rules produce.
 */

#include <iostream>

#include "bench_util.hh"
#include "mem/devices.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Table 6",
                  "Characteristics of EGFET memory devices");

    TableWriter t({"Component", "Area [mm^2]", "Active Power [uW]",
                   "Static Power [uW]", "Delay [ms]"});
    for (const MemoryDeviceSpec &d : egfetMemoryDevices())
        t.addRow({d.name, TableWriter::num(d.area_mm2),
                  TableWriter::num(d.activePower_uW),
                  TableWriter::num(d.staticPower_uW),
                  TableWriter::num(d.delay_ms)});
    t.print(std::cout);

    std::cout << "\nDerived CNT-TFT devices (area/power scaled by "
                 "INVX1 ratios; ROM latency from the paper's "
                 "302 us figure):\n\n";
    TableWriter c({"Component", "Area [mm^2]", "Delay [ms]"});
    for (MemDevice dev : {MemDevice::Ram1b, MemDevice::Rom1b,
                          MemDevice::Rom2b, MemDevice::Rom4b}) {
        const MemoryDeviceSpec d =
            memoryDevice(dev, TechKind::CNT_TFT);
        c.addRow({d.name, TableWriter::num(d.area_mm2, 3),
                  TableWriter::num(d.delay_ms, 3)});
    }
    c.print(std::cout);
    return 0;
}
