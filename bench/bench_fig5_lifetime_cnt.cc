/**
 * @file
 * Reproduces Figure 5: lifetime vs duty cycle for the four legacy
 * cores in CNT-TFT, on each of the four printed batteries. CNT
 * cores also exceed the deliverable power of the printed
 * batteries at full duty (Section 4).
 */

#include <iostream>

#include "apps/battery.hh"
#include "bench_util.hh"
#include "legacy/cores.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    using namespace printed::legacy;
    bench::banner("Figure 5",
                  "Lifetime [hours] vs duty cycle, CNT-TFT cores "
                  "on printed batteries");

    const double duties[] = {1.0, 0.1, 0.01, 0.001};
    for (const Battery &battery : printedBatteries()) {
        std::cout << battery.name << " ("
                  << battery.energyJoules() << " J, max "
                  << battery.maxPower_mW << " mW):\n";
        TableWriter t({"Core", "duty 1.0", "duty 0.1", "duty 0.01",
                       "duty 0.001", "power OK?"});
        for (LegacyCore core : allLegacyCores) {
            const LegacyCoreSpec &s = legacyCoreSpec(core);
            std::vector<std::string> row = {s.name};
            for (double d : duties)
                row.push_back(TableWriter::fixed(
                    lifetimeHours(battery, s.cnt.powerMw, d), 2));
            row.push_back(
                withinPowerBudget(battery, s.cnt.powerMw)
                    ? "yes"
                    : "exceeds budget");
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Shape to reproduce: CNT-TFT cores burn watts - "
                 "minutes of life at full duty, and beyond any "
                 "printed battery's deliverable power.\n";
    return 0;
}
