/**
 * @file
 * Reproduces Table 7: size and number of architectural registers
 * in the program-specific (application-specific) TP-ISA variants,
 * computed by static analysis of our actual benchmark programs
 * (8-bit variants written for the 2-BAR ISA, as in the paper).
 */

#include <iostream>

#include "bench_util.hh"
#include "progspec/analyze.hh"
#include "workloads/kernels.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Table 7",
                  "Architectural state of program-specific TP-ISA "
                  "variants (our programs | paper values)");

    struct PaperRow
    {
        Kernel kind;
        unsigned pc, bars, flags, instr;
    };
    // Table 7 of the paper (BAR size collapsed into the note).
    const PaperRow paper[] = {
        {Kernel::Crc8, 5, 0, 1, 16},  {Kernel::Div, 5, 0, 2, 20},
        {Kernel::DTree, 8, 0, 1, 24}, {Kernel::InSort, 5, 1, 2, 18},
        {Kernel::IntAvg, 6, 0, 0, 18}, {Kernel::Mult, 4, 0, 1, 20},
        {Kernel::THold, 5, 1, 1, 20},
    };

    TableWriter t({"Benchmark", "PC Size", "BAR Size", "# of BARs",
                   "# of flags", "Instruction Size"});
    for (const PaperRow &row : paper) {
        const Workload wl = makeWorkload(row.kind, 8, 8);
        const ProgSpecAnalysis a =
            analyzeProgram(wl.program, wl.dmemWords);
        auto cell = [](unsigned ours, unsigned theirs) {
            return std::to_string(ours) + " | " +
                   std::to_string(theirs);
        };
        t.addRow({kernelName(row.kind), cell(a.pcBits, row.pc),
                  a.writableBars ? std::to_string(a.barBits)
                                 : std::string("N/A"),
                  cell(a.writableBars, row.bars),
                  cell(a.flagCount, row.flags),
                  cell(a.instructionBits(), row.instr)});
    }
    t.print(std::cout);

    std::cout << "\nEvery benchmark leaves most of the standard "
                 "ISA's architectural state unused - the "
                 "opportunity program-specific printing exploits "
                 "(Section 7). Differences of a flag or a bit "
                 "reflect our re-implementations of the kernels.\n";
    return 0;
}
