/**
 * @file
 * Reproduces Table 7: size and number of architectural registers
 * in the program-specific (application-specific) TP-ISA variants,
 * computed by static analysis of our actual benchmark programs
 * (8-bit variants written for the 2-BAR ISA, as in the paper).
 *
 * A second, *dynamic* table runs every Table 7 benchmark on a
 * legacy-core ISS — M machines with distinct inputs on the batch
 * engine (or the scalar oracle, --engine scalar) — and reports
 * golden-validated instruction/cycle counts. Everything printed to
 * stdout is engine- and thread-count-invariant, so
 * `bench_table7_progspec --engine batch` and `--engine scalar`
 * must be byte-identical (the chosen engine goes to stderr).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "progspec/analyze.hh"
#include "progspec/profile.hh"
#include "workloads/kernels.hh"

namespace
{

std::string
argString(int argc, char **argv, const std::string &name,
          const std::string &fallback)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (name == argv[i])
            return argv[i + 1];
    return fallback;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Table 7",
                  "Architectural state of program-specific TP-ISA "
                  "variants (our programs | paper values)");

    struct PaperRow
    {
        Kernel kind;
        unsigned pc, bars, flags, instr;
    };
    // Table 7 of the paper (BAR size collapsed into the note).
    const PaperRow paper[] = {
        {Kernel::Crc8, 5, 0, 1, 16},  {Kernel::Div, 5, 0, 2, 20},
        {Kernel::DTree, 8, 0, 1, 24}, {Kernel::InSort, 5, 1, 2, 18},
        {Kernel::IntAvg, 6, 0, 0, 18}, {Kernel::Mult, 4, 0, 1, 20},
        {Kernel::THold, 5, 1, 1, 20},
    };

    TableWriter t({"Benchmark", "PC Size", "BAR Size", "# of BARs",
                   "# of flags", "Instruction Size"});
    for (const PaperRow &row : paper) {
        const Workload wl = makeWorkload(row.kind, 8, 8);
        const ProgSpecAnalysis a =
            analyzeProgram(wl.program, wl.dmemWords);
        auto cell = [](unsigned ours, unsigned theirs) {
            return std::to_string(ours) + " | " +
                   std::to_string(theirs);
        };
        t.addRow({kernelName(row.kind), cell(a.pcBits, row.pc),
                  a.writableBars ? std::to_string(a.barBits)
                                 : std::string("N/A"),
                  cell(a.writableBars, row.bars),
                  cell(a.flagCount, row.flags),
                  cell(a.instructionBits(), row.instr)});
    }
    t.print(std::cout);

    std::cout << "\nEvery benchmark leaves most of the standard "
                 "ISA's architectural state unused - the "
                 "opportunity program-specific printing exploits "
                 "(Section 7). Differences of a flag or a bit "
                 "reflect our re-implementations of the kernels.\n";

    // Dynamic leg: golden-validated execution profiles on a legacy
    // ISS fleet. The table is a pure function of (core, machines),
    // never of the engine or thread count.
    const std::size_t machines =
        bench::uintFromArgs(argc, argv, "machines", 64);
    const std::string coreId =
        argString(argc, argv, "--core", "msp430");
    const std::string engineName =
        argString(argc, argv, "--engine", "batch");
    const auto core = legacy::issCoreFromId(coreId);
    const auto engine = legacy::issEngineFromName(engineName);
    fatalIf(!core, "unknown --core " + coreId);
    fatalIf(!engine, "unknown --engine " + engineName);

    legacy::IssBatchOptions opts;
    opts.engine = *engine;
    opts.threads =
        unsigned(bench::uintFromArgs(argc, argv, "threads", 1));
    std::cerr << "[dynamic leg: engine "
              << legacy::issEngineName(*engine) << ", "
              << opts.threads << " thread(s)]\n";

    std::cout << "\nDynamic profile on " << coreId << " ("
              << machines << " machines per benchmark, outputs "
              << "validated against the golden models):\n";
    TableWriter dyn({"Benchmark", "Insns total", "Cycles total",
                     "CPI", "Golden", "Outputs FNV"});
    bool allGolden = true;
    for (const KernelDynProfile &p :
         profileTable7Dynamic(*core, machines, opts)) {
        char cpi[32], fnv[32];
        std::snprintf(cpi, sizeof cpi, "%.2f",
                      double(p.cycles) /
                          double(p.instructions ? p.instructions
                                                : 1));
        std::snprintf(fnv, sizeof fnv, "0x%016llx",
                      (unsigned long long)p.outputsFnv);
        dyn.addRow({kernelName(p.kind),
                    std::to_string(p.instructions),
                    std::to_string(p.cycles), cpi,
                    p.outputsMatchGolden ? "yes" : "NO", fnv});
        allGolden = allGolden && p.outputsMatchGolden;
    }
    dyn.print(std::cout);
    if (!allGolden) {
        std::cout << "\nFAIL: some machine diverged from the "
                     "golden model\n";
        return 1;
    }
    return 0;
}
