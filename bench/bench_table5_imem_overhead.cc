/**
 * @file
 * Reproduces Table 5: instruction-memory overhead (EGFET RAM) for
 * each benchmark on each legacy ISA. Program sizes come from our
 * IR backends (stand-ins for msp430-gcc / sdcc / zpu-gcc); the
 * area/power arithmetic is the paper's: bits x the Table 6 1-bit
 * SRAM cell.
 */

#include <iostream>

#include "bench_util.hh"
#include "legacy/i8080.hh"
#include "legacy/ir.hh"
#include "legacy/msp430.hh"
#include "legacy/zpu.hh"
#include "mem/ram.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    using namespace printed::legacy;
    bench::banner("Table 5",
                  "Instruction memory overhead for EGFET (A: area "
                  "cm^2, P: power mW), program sizes from our "
                  "IR backends");

    const Kernel kernels[] = {Kernel::Mult, Kernel::Div,
                              Kernel::InSort, Kernel::IntAvg,
                              Kernel::THold, Kernel::Crc8,
                              Kernel::DTree};

    TableWriter t({"CPU", "mult A/P", "div A/P", "inSort A/P",
                   "intAvg A/P", "tHold A/P", "crc8 A/P",
                   "dTree A/P"});

    struct Target
    {
        const char *name;
        std::size_t (*size)(const IrProgram &);
    };
    const Target targets[] = {
        {"MSP430",
         [](const IrProgram &p) { return sizeMsp430(p).codeBytes; }},
        {"ZPU",
         [](const IrProgram &p) { return sizeZpu(p).codeBytes; }},
        {"Z80",
         [](const IrProgram &p) { return size8080(p).codeBytes; }},
        {"light8080",
         [](const IrProgram &p) { return size8080(p).codeBytes; }},
    };

    for (const Target &target : targets) {
        std::vector<std::string> row = {target.name};
        for (Kernel k : kernels) {
            // Table 5 uses the 8-bit benchmark variants.
            const IrProgram prog = irKernel(k, 8);
            const std::size_t bits = target.size(prog) * 8;
            const SramRam imem(bits, 1, TechKind::EGFET);
            row.push_back(
                TableWriter::fixed(imem.areaMm2() / 100.0, 2) + "/" +
                TableWriter::fixed(imem.table5Power_mW(), 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nPaper reference points (8-bit mult): MSP430 "
                 "4.3 cm^2 / 9.8 mW; Z80 and light8080 2.2 / 5.2; "
                 "ZPU 8.2 / 18. Shape to reproduce: stack-based "
                 "ZPU code is the bulkiest, the 8-bit "
                 "accumulator machines the densest, and dTree "
                 "dwarfs everything on every ISA.\n";
    return 0;
}
