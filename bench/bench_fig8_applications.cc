/**
 * @file
 * Reproduces Figure 8: benchmark-level area / energy / execution
 * time for EGFET systems (core + crosspoint instruction ROM +
 * SRAM data memory), with the figure's stacked components:
 * C = combinational, R = registers, IM = instruction memory,
 * DM = data memory. For each benchmark the single-cycle cores of
 * every candidate width run it (narrower cores via data
 * coalescing), and the rightmost column is the program-specific
 * system. dTree additionally shows the 2-bit MLC ROM variant
 * (dTree-ROMopt).
 */

#include <iostream>

#include "bench_util.hh"
#include "dse/system_eval.hh"

namespace
{

using namespace printed;

void
printRow(TableWriter &t, const std::string &core,
         const SystemEval &e)
{
    t.addRow({
        core,
        TableWriter::fixed(e.areaComb, 2) + "/" +
            TableWriter::fixed(e.areaRegs, 2) + "/" +
            TableWriter::fixed(e.areaImem, 2) + "/" +
            TableWriter::fixed(e.areaDmem, 2),
        TableWriter::fixed(e.energyComb, 1) + "/" +
            TableWriter::fixed(e.energyRegs, 1) + "/" +
            TableWriter::fixed(e.energyImem, 1) + "/" +
            TableWriter::fixed(e.energyDmem, 1),
        TableWriter::fixed(e.timeCore, 1) + "/" +
            TableWriter::fixed(e.timeImem, 1) + "/" +
            TableWriter::fixed(e.timeDmem, 1),
        std::to_string(e.cycles),
    });
}

} // namespace

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Figure 8",
                  "Benchmark-level EGFET systems. Area cm^2 "
                  "(C/R/IM/DM), energy mJ (C/R/IM/DM), time s "
                  "(core/IM/DM)");

    for (const KernelPoint &point : paperKernelPoints()) {
        std::cout << kernelName(point.kind) << " ("
                  << point.dataWidth << "-bit data):\n";
        TableWriter t({"Core", "Area C/R/IM/DM", "Energy C/R/IM/DM",
                       "Time core/IM/DM", "Cycles"});

        for (unsigned core_w : {8u, 16u, 32u}) {
            if (core_w > point.dataWidth ||
                point.dataWidth % core_w)
                continue;
            if (point.kind == Kernel::DTree &&
                core_w != point.dataWidth)
                continue; // dTree has no coalescing variant
            const Workload wl =
                makeWorkload(point.kind, point.dataWidth, core_w);
            const SystemEval eval = evaluateSystem(
                wl, CoreConfig::standard(1, core_w, 2),
                TechKind::EGFET);
            printRow(t, "p1_" + std::to_string(core_w) + "_2", eval);
        }

        // Program-specific system (native width).
        const Workload native = makeWorkload(
            point.kind, point.dataWidth, point.dataWidth);
        printRow(t, "PS",
                 evaluateSpecializedSystem(native, TechKind::EGFET));

        if (point.kind == Kernel::DTree) {
            printRow(t, "ROMopt(2b)",
                     evaluateSystem(native,
                                    CoreConfig::standard(
                                        1, point.dataWidth, 2),
                                    TechKind::EGFET, 2));
        }
        t.print(std::cout);
        std::cout << "\n";
    }

    std::cout
        << "Shape to reproduce (Section 8): native-width cores win "
           "energy and delay; coalescing keeps narrow cores close "
           "in energy at smaller area; the PS system uses the "
           "least energy and area of its width; dTree-ROMopt cuts "
           "IM area ~30% with a small energy change.\n";
    return 0;
}
