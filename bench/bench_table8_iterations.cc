/**
 * @file
 * Reproduces Table 8: maximum program iteration count on a 30 mAh,
 * 1 V printed battery, for the most efficient standard EGFET
 * TP-ISA core (STD, native width) and the program-specific core
 * (PS). Power incorporates core, ROM, and RAM, as in the paper.
 */

#include <iostream>

#include "bench_util.hh"
#include "dse/system_eval.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Table 8",
                  "Iterations on a 30 mAh / 1 V battery: standard "
                  "(STD) vs program-specific (PS) EGFET cores");

    const Kernel kernels[] = {Kernel::Crc8, Kernel::DTree,
                              Kernel::Div, Kernel::InSort,
                              Kernel::IntAvg, Kernel::Mult,
                              Kernel::THold};

    TableWriter t({"Benchmark", "8-bit STD", "8-bit PS",
                   "16-bit STD", "16-bit PS", "32-bit STD",
                   "32-bit PS"});
    for (Kernel k : kernels) {
        std::vector<std::string> row = {kernelName(k)};
        for (unsigned width : {8u, 16u, 32u}) {
            if (k == Kernel::Crc8 && width != 8) {
                row.push_back("");
                row.push_back("");
                continue;
            }
            const Workload wl = makeWorkload(k, width, width);
            const auto std_eval = evaluateSystem(
                wl, CoreConfig::standard(1, width, 2),
                TechKind::EGFET);
            const auto ps_eval =
                evaluateSpecializedSystem(wl, TechKind::EGFET);
            row.push_back(
                std::to_string(std_eval.iterationsOn30mAh()));
            row.push_back(
                std::to_string(ps_eval.iterationsOn30mAh()));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout << "\nPaper reference points (8-bit STD/PS): crc8 "
                 "158/367, dTree 12087/20203, div 2871/6404, "
                 "inSort 237/299, intAvg 4495/7987, mult "
                 "3727/9689, tHold 5576/6465. Shape to reproduce: "
                 "PS > STD everywhere, wider cores sustain fewer "
                 "iterations, dTree and intAvg are the cheapest "
                 "per iteration.\n";
    return 0;
}
