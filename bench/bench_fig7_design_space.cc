/**
 * @file
 * Reproduces Figure 7: fmax, area, and power of every TP-ISA core
 * configuration pP_D_B (P in {1,2,3}, D in {4,8,16,32}, B in
 * {2,4}), each synthesized to gates and characterized in both
 * technologies. Area and power are split into combinational (C)
 * and register (R) shares, as in the figure's stacked bars.
 *
 * Options:
 *   --threads N   parallel sweep workers (0 = hardware concurrency;
 *                 results are bit-identical for every N)
 *   --json PATH   machine-readable report with per-point results,
 *                 wall-clock timing, and synthesis-cache statistics
 */

#include <iostream>

#include "bench_util.hh"
#include "dse/sweep.hh"
#include "legacy/cores.hh"
#include "synth/cache.hh"

int
main(int argc, char **argv)
{
    using namespace printed;
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned threads =
        unsigned(bench::uintFromArgs(argc, argv, "threads", 1));
    bench::JsonReport jr("bench_fig7_design_space");

    bench::banner("Figure 7",
                  "TP-ISA design space: fmax / area / power per "
                  "pP_D_B core (both technologies)");

    SweepOptions opts;
    opts.threads = threads;
    const bench::WallTimer timer;
    const auto points = sweepDesignSpace(opts);
    const double sweepMs = timer.elapsedMs();

    TableWriter t({"Core", "Gates", "Flops", "EGFET fmax Hz",
                   "EGFET area cm^2 (C+R)", "EGFET power mW (C+R)",
                   "CNT fmax Hz", "CNT area cm^2", "CNT power mW"});
    for (const DesignPoint &p : points) {
        t.addRow({
            p.config.label(),
            std::to_string(p.egfet.gateCount()),
            std::to_string(p.egfet.stats.seqGates),
            TableWriter::fixed(p.egfet.fmaxHz(), 2),
            TableWriter::fixed(p.egfet.area.comb_mm2 / 100, 2) +
                "+" +
                TableWriter::fixed(p.egfet.area.seq_mm2 / 100, 2),
            TableWriter::fixed(p.egfet.powerAtFmax.comb_mW, 1) +
                "+" +
                TableWriter::fixed(p.egfet.powerAtFmax.seq_mW, 1),
            TableWriter::fixed(p.cnt.fmaxHz(), 0),
            TableWriter::fixed(p.cnt.areaCm2(), 3),
            TableWriter::fixed(p.cnt.powerMw(), 1),
        });
        jr.add("points",
               {{"core", p.config.label()},
                {"gates", p.egfet.gateCount()},
                {"flops", p.egfet.stats.seqGates},
                {"egfet_fmax_hz", p.egfet.fmaxHz()},
                {"egfet_area_cm2", p.egfet.areaCm2()},
                {"egfet_power_mw", p.egfet.powerMw()},
                {"cnt_fmax_hz", p.cnt.fmaxHz()},
                {"cnt_area_cm2", p.cnt.areaCm2()},
                {"cnt_power_mw", p.cnt.powerMw()}});
    }
    t.print(std::cout);

    // The paper's headline comparisons against Table 4.
    using namespace legacy;
    const auto &l8080 = legacyCoreSpec(LegacyCore::Light8080).egfet;
    double fastest = 0, smallest8 = 1e9, largest = 0;
    for (const auto &p : points) {
        fastest = std::max(fastest, p.egfet.fmaxHz());
        largest = std::max(largest, p.egfet.areaCm2());
        if (p.config.isa.datawidth == 8)
            smallest8 = std::min(smallest8, p.egfet.areaCm2());
    }
    std::cout << "\nHeadlines (paper | measured):\n";
    bench::compare("fastest TP-ISA core vs light8080 fmax (x)",
                   1.38, fastest / l8080.fmaxHz);
    bench::compare("light8080 area / smallest 8-bit TP-ISA (x)",
                   5.2, l8080.areaCm2 / smallest8);
    std::cout << "  largest TP-ISA core "
              << TableWriter::fixed(largest, 2)
              << " cm^2 vs smallest legacy core (light8080) "
              << l8080.areaCm2
              << " cm^2 -> every TP-ISA core is smaller.\n";

    const SynthCacheStats cs = SynthCache::global().stats();
    std::cout << "\nSweep wall clock: "
              << TableWriter::fixed(sweepMs, 1) << " ms on "
              << threads << " thread(s); synthesis cache "
              << cs.netlistHits << " hits / " << cs.netlistMisses
              << " misses.\n";

    if (!jsonPath.empty()) {
        jr.meta("threads", threads);
        jr.meta("wall_ms", sweepMs);
        jr.meta("cache_netlist_hits", cs.netlistHits);
        jr.meta("cache_netlist_misses", cs.netlistMisses);
        jr.meta("cache_char_hits", cs.charHits);
        jr.meta("cache_char_misses", cs.charMisses);
        jr.writeTo(jsonPath);
    }
    return 0;
}
