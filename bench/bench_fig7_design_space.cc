/**
 * @file
 * Reproduces Figure 7: fmax, area, and power of every TP-ISA core
 * configuration pP_D_B (P in {1,2,3}, D in {4,8,16,32}, B in
 * {2,4}), each synthesized to gates and characterized in both
 * technologies. Area and power are split into combinational (C)
 * and register (R) shares, as in the figure's stacked bars.
 *
 * Options:
 *   --threads N        parallel sweep workers (0 = hardware
 *                      concurrency; results are bit-identical for
 *                      every N)
 *   --yield-trials N   when > 0, also run the functional-yield
 *                      Monte Carlo (N trials, 64-lane batch engine)
 *                      on every configuration, cross-check the
 *                      first one against the scalar reference
 *                      engine, and report the measured speedup
 *   --json PATH   machine-readable report with per-point results,
 *                 wall-clock timing, and synthesis-cache statistics
 */

#include <iostream>

#include "bench_util.hh"
#include "dse/sweep.hh"
#include "legacy/cores.hh"
#include "synth/cache.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned threads =
        unsigned(bench::uintFromArgs(argc, argv, "threads", 1));
    const auto yieldTrials = unsigned(
        bench::uintFromArgs(argc, argv, "yield-trials", 0));
    bench::JsonReport jr("bench_fig7_design_space");

    bench::banner("Figure 7",
                  "TP-ISA design space: fmax / area / power per "
                  "pP_D_B core (both technologies)");

    SweepOptions opts;
    opts.threads = threads;
    const bench::WallTimer timer;
    const auto points = sweepDesignSpace(opts);
    const double sweepMs = timer.elapsedMs();

    TableWriter t({"Core", "Gates", "Flops", "EGFET fmax Hz",
                   "EGFET area cm^2 (C+R)", "EGFET power mW (C+R)",
                   "CNT fmax Hz", "CNT area cm^2", "CNT power mW"});
    for (const DesignPoint &p : points) {
        t.addRow({
            p.config.label(),
            std::to_string(p.egfet.gateCount()),
            std::to_string(p.egfet.stats.seqGates),
            TableWriter::fixed(p.egfet.fmaxHz(), 2),
            TableWriter::fixed(p.egfet.area.comb_mm2 / 100, 2) +
                "+" +
                TableWriter::fixed(p.egfet.area.seq_mm2 / 100, 2),
            TableWriter::fixed(p.egfet.powerAtFmax.comb_mW, 1) +
                "+" +
                TableWriter::fixed(p.egfet.powerAtFmax.seq_mW, 1),
            TableWriter::fixed(p.cnt.fmaxHz(), 0),
            TableWriter::fixed(p.cnt.areaCm2(), 3),
            TableWriter::fixed(p.cnt.powerMw(), 1),
        });
        jr.add("points",
               {{"core", p.config.label()},
                {"gates", p.egfet.gateCount()},
                {"flops", p.egfet.stats.seqGates},
                {"egfet_fmax_hz", p.egfet.fmaxHz()},
                {"egfet_area_cm2", p.egfet.areaCm2()},
                {"egfet_power_mw", p.egfet.powerMw()},
                {"cnt_fmax_hz", p.cnt.fmaxHz()},
                {"cnt_area_cm2", p.cnt.areaCm2()},
                {"cnt_power_mw", p.cnt.powerMw()}});
    }
    t.print(std::cout);

    // The paper's headline comparisons against Table 4.
    using namespace legacy;
    const auto &l8080 = legacyCoreSpec(LegacyCore::Light8080).egfet;
    double fastest = 0, smallest8 = 1e9, largest = 0;
    for (const auto &p : points) {
        fastest = std::max(fastest, p.egfet.fmaxHz());
        largest = std::max(largest, p.egfet.areaCm2());
        if (p.config.isa.datawidth == 8)
            smallest8 = std::min(smallest8, p.egfet.areaCm2());
    }
    std::cout << "\nHeadlines (paper | measured):\n";
    bench::compare("fastest TP-ISA core vs light8080 fmax (x)",
                   1.38, fastest / l8080.fmaxHz);
    bench::compare("light8080 area / smallest 8-bit TP-ISA (x)",
                   5.2, l8080.areaCm2 / smallest8);
    std::cout << "  largest TP-ISA core "
              << TableWriter::fixed(largest, 2)
              << " cm^2 vs smallest legacy core (light8080) "
              << l8080.areaCm2
              << " cm^2 -> every TP-ISA core is smaller.\n";

    // --- Optional yield leg (--yield-trials N) -------------------
    // Runs the functional-yield Monte Carlo over the whole Figure 7
    // grid on the 64-lane batch engine, then re-runs the first
    // configuration on the scalar golden reference: the two reports
    // must be bit-identical, and their wall-clock ratio is the
    // batch engine's measured speedup at equal thread count.
    if (yieldTrials > 0) {
        FunctionalYieldConfig mc;
        mc.trials = yieldTrials;
        mc.threads = threads;
        mc.kernels = {Kernel::Mult};

        const bench::WallTimer ytimer;
        const auto ypoints =
            sweepFunctionalYield(figure7Configs(), mc);
        const double yieldMs = ytimer.elapsedMs();

        TableWriter yt({"Core", "analytic yield",
                        "functional yield", "fatal", "masked",
                        "benign"});
        for (const YieldPoint &p : ypoints) {
            yt.addRow({p.config.label(),
                       TableWriter::num(p.report.analyticYield, 4),
                       TableWriter::num(
                           p.report.functionalYield(), 4),
                       std::to_string(p.report.fatalTrials),
                       std::to_string(p.report.maskedTrials),
                       std::to_string(p.report.benignTrials)});
            jr.add("yield",
                   {{"core", p.config.label()},
                    {"analytic_yield", p.report.analyticYield},
                    {"functional_yield",
                     p.report.functionalYield()},
                    {"fatal_trials", p.report.fatalTrials},
                    {"masked_trials", p.report.maskedTrials},
                    {"benign_trials", p.report.benignTrials},
                    {"defect_free_trials",
                     p.report.defectFreeTrials}});
        }
        std::cout << "\nFunctional yield (" << yieldTrials
                  << " trials/config, batch engine):\n";
        yt.print(std::cout);

        const CoreConfig first = figure7Configs().front();
        const auto core = SynthCache::global().core(first);
        const bench::WallTimer btimer;
        const FunctionalYieldReport batchRep =
            measureFunctionalYield(*core, first, mc);
        const double batchMs = btimer.elapsedMs();
        mc.engine = SimEngine::Scalar;
        const bench::WallTimer stimer;
        const FunctionalYieldReport scalarRep =
            measureFunctionalYield(*core, first, mc);
        const double scalarMs = stimer.elapsedMs();
        const bool agree =
            scalarRep.fatalTrials == batchRep.fatalTrials &&
            scalarRep.maskedTrials == batchRep.maskedTrials &&
            scalarRep.benignTrials == batchRep.benignTrials &&
            scalarRep.defectFreeTrials == batchRep.defectFreeTrials;
        std::cout << "Engine check (" << first.label()
                  << "): scalar "
                  << TableWriter::fixed(scalarMs, 0)
                  << " ms vs batch "
                  << TableWriter::fixed(batchMs, 0) << " ms -> "
                  << TableWriter::fixed(scalarMs / batchMs, 1)
                  << "x speedup, reports "
                  << (agree ? "bit-identical" : "DIFFER") << "\n";
        jr.meta("yield_trials", yieldTrials);
        jr.meta("yield_wall_ms", yieldMs);
        jr.meta("yield_scalar_check_wall_ms", scalarMs);
        jr.meta("yield_batch_check_wall_ms", batchMs);
        jr.meta("yield_speedup_vs_scalar", scalarMs / batchMs);
        jr.meta("yield_engines_agree", agree);
        if (!agree) {
            std::cout << "FAIL: batch and scalar engines disagree\n";
            if (!jsonPath.empty())
                jr.writeTo(jsonPath);
            return 1;
        }
    }

    const SynthCacheStats cs = SynthCache::global().stats();
    std::cout << "\nSweep wall clock: "
              << TableWriter::fixed(sweepMs, 1) << " ms on "
              << threads << " thread(s); synthesis cache "
              << cs.netlistHits << " hits / " << cs.netlistMisses
              << " misses.\n";

    if (!jsonPath.empty()) {
        jr.meta("threads", threads);
        jr.meta("wall_ms", sweepMs);
        jr.meta("sweep_points_per_s",
                double(points.size()) / (sweepMs / 1000.0));
        jr.meta("cache_netlist_hits", cs.netlistHits);
        jr.meta("cache_netlist_misses", cs.netlistMisses);
        jr.meta("cache_char_hits", cs.charHits);
        jr.meta("cache_char_misses", cs.charMisses);
        jr.writeTo(jsonPath);
    }
    return 0;
}
