/**
 * @file
 * Load generator and acceptance harness for printedd.
 *
 * Runs a fixed phase sequence against a server (an in-process one
 * by default, or an already-running daemon via --connect):
 *
 *   cold    8 distinct synth requests (first-touch synthesis)
 *   hot     the same synth request repeated --hot-iters times:
 *           SynthCache hits, per-request latency percentiles
 *   coalesce  one fresh expensive yield request issued from
 *           --clients connections at once (in-flight dedup)
 *   probes  malformed line -> parse_error, tiny deadline ->
 *           deadline_exceeded (error paths stay cheap)
 *   reject  a pipelined burst of distinct yield requests
 *           overflowing the admission queue -> queue_full replies,
 *           every request still answered exactly once
 *   determinism  a fixed request set, serial vs. --clients
 *           concurrent pipelined connections: replies must be
 *           byte-identical (matched by id)
 *
 * With --retry every phase goes through RetryingClient instead of
 * the raw pipelined Client, which makes the harness usable against
 * a fault-injecting server (printedd --fault-plan ...): dropped and
 * truncated replies are replayed, queue_full is backed off and
 * retried to completion, and the pass criterion becomes "every call
 * returned exactly one byte-correct reply despite the chaos". The
 * hot/cold speedup gate is skipped in retry mode (injected faults
 * distort timing), and the JSON report gains retry/fault/disk-cache
 * counters.
 *
 * Exit status: 1 when the hot/cold speedup falls below 5x (non-retry
 * mode) or any concurrent reply differs from the serial one; 0
 * otherwise.
 *
 * Options: --connect HOST:PORT, --retry, --no-speedup-gate (for
 * servers whose cold phase is pre-warmed, e.g. a disk-cache warm
 * restart), --clients N, --hot-iters N, --executors N, --max-queue
 * N, --cache-cap N, --fault-plan SPEC, --disk-cache DIR (in-process
 * server only), --shutdown-after, --json PATH, --trace-out PATH.
 */

#include <algorithm>
#include <atomic>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "service/client.hh"
#include "service/fault_plan.hh"
#include "service/protocol.hh"
#include "service/server.hh"

using namespace printed;
using namespace printed::service;

namespace
{

/** Percentile of a sample vector (sorted in place). */
double
percentile(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const std::size_t idx = std::size_t(
        p * double(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

/**
 * A named service counter out of a metrics reply, or 0. Uses a
 * fresh connection each time: metrics replies are never
 * fault-injected, but a shared compute connection may already have
 * been chaos-killed.
 */
std::uint64_t
serverCounter(const std::string &host, std::uint16_t port,
              const std::string &name)
{
    Client client(host, port);
    const json::Value root = json::parse(
        client.call(adminRequest("metrics", RequestType::Metrics)));
    const json::Value *result = root.find("result");
    if (!result)
        return 0;
    const json::Value *counters = result->find("counters");
    if (!counters)
        return 0;
    const json::Value *c = counters->find(name);
    return c ? std::uint64_t(c->number) : 0;
}

std::string
valueOfArg(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (argv[i] == "--" + flag)
            return argv[i + 1];
    return "";
}

bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i)
        if (argv[i] == "--" + flag)
            return true;
    return false;
}

/** Fold one client's retry counters into the run-wide totals. */
void
foldStats(RetryStats &into, const RetryStats &from)
{
    into.calls += from.calls;
    into.reconnects += from.reconnects;
    into.lossReplays += from.lossReplays;
    into.timeoutReplays += from.timeoutReplays;
    into.overloadReplays += from.overloadReplays;
}

/** The retry policy the harness uses (patient, fast backoff). */
RetryPolicy
harnessPolicy()
{
    RetryPolicy policy;
    policy.maxLossRetries = 50;
    policy.maxOverloadRetries = 2000;
    policy.callTimeoutMs = 60000;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 50;
    policy.jitterSeed = 99;
    return policy;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned clients = unsigned(
        bench::uintFromArgs(argc, argv, "clients", 4));
    const unsigned hotIters = unsigned(
        bench::uintFromArgs(argc, argv, "hot-iters", 200));
    const std::string connect = valueOfArg(argc, argv, "connect");
    const bool shutdownAfter =
        hasFlag(argc, argv, "shutdown-after");
    const bool retry = hasFlag(argc, argv, "retry");
    // Injected faults distort timing, and a disk-cache warm restart
    // serves the "cold" phase at hot speed — both make the hot/cold
    // speedup gate meaningless.
    const bool speedupGate =
        !retry && !hasFlag(argc, argv, "no-speedup-gate");

    bench::banner("printedd load",
                  "service throughput, latency, coalescing, and "
                  "admission control");
    if (retry)
        std::cout << "retry mode: all calls via RetryingClient\n";

    // ---- Server (in-process unless --connect) ------------------
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::optional<Server> server;
    if (connect.empty()) {
        ServerOptions opts;
        opts.executors = unsigned(
            bench::uintFromArgs(argc, argv, "executors", 4));
        opts.maxQueue =
            bench::uintFromArgs(argc, argv, "max-queue", 64);
        opts.cacheCapacity =
            bench::uintFromArgs(argc, argv, "cache-cap", 256);
        opts.diskCacheDir = valueOfArg(argc, argv, "disk-cache");
        const std::string plan =
            valueOfArg(argc, argv, "fault-plan");
        if (!plan.empty())
            opts.faultPlan = FaultPlan::parse(plan);
        server.emplace(opts);
        server->start();
        port = server->port();
        std::cout << "in-process server on port " << port << "\n";
    } else {
        const std::size_t colon = connect.rfind(':');
        fatalIf(colon == std::string::npos,
                "--connect expects HOST:PORT");
        host = connect.substr(0, colon);
        port = std::uint16_t(
            std::stoul(connect.substr(colon + 1)));
        std::cout << "connecting to " << host << ":" << port
                  << "\n";
    }

    bench::JsonReport jr("bench_service");
    const bench::WallTimer total;
    Client client; // raw pipelining path (non-retry mode)
    std::optional<RetryingClient> rclient;
    if (retry)
        rclient.emplace(host, port, harnessPolicy());
    else
        client.connect(host, port);
    RetryStats retryTotals;
    const auto call = [&](const std::string &line) {
        return retry ? rclient->call(line) : client.call(line);
    };
    bool pass = true;

    // ---- Phase 1: cold synth -----------------------------------
    // 8 distinct configurations, none synthesized before (in a
    // fresh server process): each request pays a full synthesis +
    // characterization.
    std::vector<CoreConfig> coldConfigs;
    for (unsigned stages : {1u, 2u, 3u})
        for (unsigned width : {4u, 8u})
            coldConfigs.push_back(
                CoreConfig::standard(stages, width, 2));
    coldConfigs.push_back(CoreConfig::standard(1, 16, 2));
    coldConfigs.push_back(CoreConfig::standard(2, 16, 2));

    const bench::WallTimer coldTimer;
    for (std::size_t i = 0; i < coldConfigs.size(); ++i) {
        const Reply r = parseReply(call(synthRequest(
            "cold" + std::to_string(i), coldConfigs[i])));
        fatalIf(!r.ok, "cold synth failed: " + r.raw);
    }
    const double coldMs = coldTimer.elapsedMs();
    const double coldPerS =
        double(coldConfigs.size()) / (coldMs / 1000.0);
    std::cout << "cold: " << coldConfigs.size() << " requests in "
              << TableWriter::fixed(coldMs, 1) << " ms ("
              << TableWriter::fixed(coldPerS, 1) << "/s)\n";

    // ---- Phase 2: hot synth ------------------------------------
    // The same request repeated: served from the SynthCache, so
    // per-request cost is protocol + lookup only.
    const std::string hotReq =
        synthRequest("hot", coldConfigs.front());
    std::vector<double> hotLatMs;
    hotLatMs.reserve(hotIters);
    const bench::WallTimer hotTimer;
    for (unsigned i = 0; i < hotIters; ++i) {
        const bench::WallTimer one;
        const Reply r = parseReply(call(hotReq));
        hotLatMs.push_back(one.elapsedMs());
        fatalIf(!r.ok, "hot synth failed: " + r.raw);
    }
    const double hotMs = hotTimer.elapsedMs();
    const double hotPerS = double(hotIters) / (hotMs / 1000.0);
    const double speedup =
        (coldMs / double(coldConfigs.size())) /
        (hotMs / double(hotIters));
    const double p50 = percentile(hotLatMs, 0.50);
    const double p95 = percentile(hotLatMs, 0.95);
    const double p99 = percentile(hotLatMs, 0.99);
    std::cout << "hot:  " << hotIters << " requests in "
              << TableWriter::fixed(hotMs, 1) << " ms ("
              << TableWriter::fixed(hotPerS, 1) << "/s, "
              << TableWriter::fixed(speedup, 1)
              << "x vs cold); latency p50 "
              << TableWriter::fixed(p50, 3) << " p95 "
              << TableWriter::fixed(p95, 3) << " p99 "
              << TableWriter::fixed(p99, 3) << " ms\n";
    if (speedup < 5.0) {
        if (!speedupGate) {
            std::cout << "note: speedup gate skipped ("
                      << (retry ? "retry mode" : "--no-speedup-gate")
                      << ")\n";
        } else {
            std::cout << "FAIL: repeated-synth speedup "
                      << TableWriter::fixed(speedup, 2)
                      << "x < 5x\n";
            pass = false;
        }
    }

    // ---- Phase 3: coalesce burst -------------------------------
    // One fresh, expensive yield computation issued from every
    // client at once: duplicates dequeued while the leader runs
    // join its in-flight future instead of recomputing.
    const std::uint64_t coalesceBefore =
        serverCounter(host, port, "service.coalesce_hits");
    {
        const std::string burstReq = yieldRequest(
            "burst", coldConfigs.front(), 600, 424242);
        std::vector<std::string> replies(clients);
        std::vector<std::thread> threads;
        std::mutex statsMutex;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                if (retry) {
                    RetryingClient burst(host, port,
                                         harnessPolicy());
                    replies[c] = burst.call(burstReq);
                    const std::lock_guard<std::mutex> lock(
                        statsMutex);
                    foldStats(retryTotals, burst.stats());
                } else {
                    Client burst(host, port);
                    replies[c] = burst.call(burstReq);
                }
            });
        for (std::thread &t : threads)
            t.join();
        for (unsigned c = 0; c < clients; ++c) {
            fatalIf(!parseReply(replies[c]).ok,
                    "coalesce burst failed: " + replies[c]);
            if (replies[c] != replies[0]) {
                std::cout << "FAIL: coalesced replies differ\n";
                pass = false;
            }
        }
    }
    const std::uint64_t coalesceHits =
        serverCounter(host, port, "service.coalesce_hits") -
        coalesceBefore;
    std::cout << "coalesce: " << clients
              << " identical in-flight requests -> "
              << coalesceHits << " coalesce hits\n";

    // ---- Phase 4: error-path probes ----------------------------
    const Reply malformed =
        parseReply(call("{not json at all"));
    const bool malformedOk =
        !malformed.ok && malformed.error == errc::parseError;
    const Reply expired = parseReply(call(synthRequest(
        "exp", CoreConfig::standard(3, 32, 4), 1e-4)));
    const bool deadlineOk =
        !expired.ok && expired.error == errc::deadlineExceeded;
    std::cout << "probes: malformed -> "
              << (malformed.ok ? "OK?!" : malformed.error)
              << ", expired deadline -> "
              << (expired.ok ? "OK?!" : expired.error) << "\n";
    if (!malformedOk || !deadlineOk)
        pass = false;

    // ---- Phase 5: rejection burst ------------------------------
    // Pipeline far more distinct (uncoalescible) requests than the
    // queue holds; the overflow is answered queue_full
    // immediately, and every request gets exactly one reply.
    const unsigned burstN = 160;
    unsigned rejected = 0, accepted = 0;
    if (!retry) {
        Client pipelined(host, port);
        for (unsigned i = 0; i < burstN; ++i)
            pipelined.send(yieldRequest(
                "rej" + std::to_string(i), coldConfigs.front(),
                20, 90000 + i));
        for (unsigned i = 0; i < burstN; ++i) {
            const Reply r = parseReply(pipelined.readLine());
            if (r.ok)
                ++accepted;
            else if (r.error == errc::queueFull)
                ++rejected;
            else
                fatalIf(true, "unexpected burst reply: " + r.raw);
        }
        std::cout << "reject: " << burstN << " pipelined -> "
                  << accepted << " served, " << rejected
                  << " rejected (queue_full), 0 dropped\n";
    } else {
        // RetryingClient turns queue_full into backoff + replay, so
        // the overload phase instead asserts that the same burst
        // (spread over --clients connections) completes to the last
        // request; the pressure shows up as overload replays.
        std::vector<std::thread> threads;
        std::mutex statsMutex;
        std::atomic<unsigned> okCount{0};
        std::atomic<unsigned> next{0};
        const std::uint64_t overloadBefore =
            retryTotals.overloadReplays;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back([&] {
                RetryingClient burst(host, port, harnessPolicy());
                for (unsigned i = next.fetch_add(1); i < burstN;
                     i = next.fetch_add(1)) {
                    const Reply r =
                        burst.callParsed(yieldRequest(
                            "rej" + std::to_string(i),
                            coldConfigs.front(), 20, 90000 + i));
                    if (r.ok)
                        ++okCount;
                }
                const std::lock_guard<std::mutex> lock(statsMutex);
                foldStats(retryTotals, burst.stats());
            });
        for (std::thread &t : threads)
            t.join();
        accepted = okCount.load();
        if (accepted != burstN) {
            std::cout << "FAIL: overload burst lost replies ("
                      << accepted << "/" << burstN << ")\n";
            pass = false;
        }
        std::cout << "reject: " << burstN << " retried -> "
                  << accepted << " served, "
                  << (retryTotals.overloadReplays - overloadBefore)
                  << " overload replays, 0 dropped\n";
    }

    // ---- Phase 6: determinism ----------------------------------
    // The serving determinism rule, end to end: serial replies are
    // the reference; concurrent pipelined clients must produce the
    // same bytes for the same ids.
    std::vector<std::string> detReqs;
    for (unsigned width : {4u, 8u, 16u})
        detReqs.push_back(
            synthRequest("d" + std::to_string(width),
                         CoreConfig::standard(1, width, 2)));
    detReqs.push_back(
        yieldRequest("dy", coldConfigs.front(), 64, 7));
    SweepSpec spec;
    spec.stages = {1, 2};
    spec.widths = {4, 8};
    spec.bars = {2};
    detReqs.push_back(sweepRequest("dw", spec));

    std::map<std::string, std::string> serial;
    for (const std::string &req : detReqs) {
        const std::string raw = call(req);
        serial[parseReply(raw).id] = raw;
    }
    bool identical = true;
    {
        std::vector<std::thread> threads;
        std::vector<bool> same(clients, true);
        std::mutex statsMutex;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                if (retry) {
                    // Sequential calls (RetryingClient does not
                    // pipeline) — replays must not change bytes.
                    RetryingClient det(host, port,
                                       harnessPolicy());
                    for (const std::string &req : detReqs) {
                        const std::string raw = det.call(req);
                        if (serial.at(parseReply(raw).id) != raw)
                            same[c] = false;
                    }
                    const std::lock_guard<std::mutex> lock(
                        statsMutex);
                    foldStats(retryTotals, det.stats());
                    return;
                }
                Client det(host, port);
                for (const std::string &req : detReqs)
                    det.send(req);
                for (std::size_t i = 0; i < detReqs.size(); ++i) {
                    const std::string raw = det.readLine();
                    if (serial.at(parseReply(raw).id) != raw)
                        same[c] = false;
                }
            });
        for (std::thread &t : threads)
            t.join();
        for (unsigned c = 0; c < clients; ++c)
            identical = identical && same[c];
    }
    std::cout << "determinism: " << clients
              << " concurrent clients, replies "
              << (identical ? "byte-identical to serial"
                            : "DIFFER from serial")
              << "\n";
    if (!identical)
        pass = false;

    // ---- Teardown + report -------------------------------------
    const std::uint64_t servedTotal =
        serverCounter(host, port, "service.requests");
    const std::uint64_t rejectedTotal =
        serverCounter(host, port, "service.rejected");
    const std::uint64_t deadlineTotal =
        serverCounter(host, port, "service.deadline_exceeded");
    const std::uint64_t faultTotal =
        serverCounter(host, port, "service.fault.drops") +
        serverCounter(host, port, "service.fault.truncates") +
        serverCounter(host, port, "service.fault.delays") +
        serverCounter(host, port, "service.fault.queue_fulls");
    const std::uint64_t diskNetlistHits = serverCounter(
        host, port, "synth.disk_cache.netlist_hits");
    const std::uint64_t diskCharHits =
        serverCounter(host, port, "synth.disk_cache.char_hits");
    const std::uint64_t diskMisses =
        serverCounter(host, port,
                      "synth.disk_cache.netlist_misses") +
        serverCounter(host, port,
                      "synth.disk_cache.char_misses");
    const std::uint64_t diskStores =
        serverCounter(host, port, "synth.disk_cache.stores");

    if (rclient) {
        foldStats(retryTotals, rclient->stats());
        std::cout << "retry totals: " << retryTotals.calls
                  << " calls, " << retryTotals.reconnects
                  << " reconnects, " << retryTotals.lossReplays
                  << " loss / " << retryTotals.timeoutReplays
                  << " timeout / " << retryTotals.overloadReplays
                  << " overload replays; " << faultTotal
                  << " server faults injected\n";
    }

    if (connect.empty() || shutdownAfter) {
        const std::string bye =
            adminRequest("bye", RequestType::Shutdown);
        const Reply r = parseReply(
            retry ? rclient->call(bye, /*idempotent=*/false)
                  : client.call(bye));
        fatalIf(!r.ok, "shutdown refused: " + r.raw);
    }
    if (rclient)
        rclient->close();
    client.close();
    if (server) {
        server->wait();
        server.reset();
    }
    const double totalMs = total.elapsedMs();

    std::cout << "\nserver totals: " << servedTotal
              << " requests, " << rejectedTotal << " rejected, "
              << deadlineTotal << " deadline-expired; "
              << (pass ? "PASS" : "FAIL") << " in "
              << TableWriter::fixed(totalMs, 0) << " ms\n";

    if (!jsonPath.empty()) {
        jr.meta("clients", clients);
        jr.meta("hot_iters", hotIters);
        jr.meta("wall_ms", totalMs);
        jr.meta("cold_synth_per_s", coldPerS);
        jr.meta("hot_synth_per_s", hotPerS);
        jr.meta("hot_speedup_x", speedup);
        jr.meta("hot_p50_ms", p50);
        jr.meta("hot_p95_ms", p95);
        jr.meta("hot_p99_ms", p99);
        jr.meta("coalesce_hits", coalesceHits);
        jr.meta("burst_requests", burstN);
        jr.meta("burst_served", accepted);
        jr.meta("burst_rejected", rejected);
        jr.meta("malformed_rejected", malformedOk);
        jr.meta("deadline_rejected", deadlineOk);
        jr.meta("concurrent_replies_identical", identical);
        jr.meta("server_requests_total", servedTotal);
        jr.meta("server_rejected_total", rejectedTotal);
        jr.meta("server_deadline_exceeded_total", deadlineTotal);
        jr.meta("server_faults_injected", faultTotal);
        jr.meta("disk_cache_netlist_hits", diskNetlistHits);
        jr.meta("disk_cache_char_hits", diskCharHits);
        jr.meta("disk_cache_misses", diskMisses);
        jr.meta("disk_cache_stores", diskStores);
        jr.meta("retry_mode", retry);
        jr.meta("retry_calls", retryTotals.calls);
        jr.meta("retry_reconnects", retryTotals.reconnects);
        jr.meta("retry_loss_replays", retryTotals.lossReplays);
        jr.meta("retry_timeout_replays",
                retryTotals.timeoutReplays);
        jr.meta("retry_overload_replays",
                retryTotals.overloadReplays);
        jr.writeTo(jsonPath);
    }
    return pass ? 0 : 1;
}
