/**
 * @file
 * Load generator and acceptance harness for printedd.
 *
 * Runs a fixed phase sequence against a server (an in-process one
 * by default, or an already-running daemon via --connect):
 *
 *   cold    8 distinct synth requests (first-touch synthesis)
 *   hot     the same synth request repeated --hot-iters times:
 *           SynthCache hits, per-request latency percentiles
 *   coalesce  one fresh expensive yield request issued from
 *           --clients connections at once (in-flight dedup)
 *   probes  malformed line -> parse_error, tiny deadline ->
 *           deadline_exceeded (error paths stay cheap)
 *   reject  a pipelined burst of distinct yield requests
 *           overflowing the admission queue -> queue_full replies,
 *           every request still answered exactly once
 *   determinism  a fixed request set, serial vs. --clients
 *           concurrent pipelined connections: replies must be
 *           byte-identical (matched by id)
 *
 * With --retry every phase goes through RetryingClient instead of
 * the raw pipelined Client, which makes the harness usable against
 * a fault-injecting server (printedd --fault-plan ...): dropped and
 * truncated replies are replayed, queue_full is backed off and
 * retried to completion, and the pass criterion becomes "every call
 * returned exactly one byte-correct reply despite the chaos". The
 * hot/cold speedup gate is skipped in retry mode (injected faults
 * distort timing), and the JSON report gains retry/fault/disk-cache
 * counters.
 *
 * Exit status: 1 when the hot/cold speedup falls below 5x (non-retry
 * mode) or any concurrent reply differs from the serial one; 0
 * otherwise.
 *
 * Options: --connect HOST:PORT, --retry, --no-speedup-gate (for
 * servers whose cold phase is pre-warmed, e.g. a disk-cache warm
 * restart), --clients N, --hot-iters N, --executors N, --max-queue
 * N, --cache-cap N, --fault-plan SPEC, --disk-cache DIR (in-process
 * server only), --shutdown-after, --json PATH, --trace-out PATH.
 *
 * With --shards N the harness instead drives a sharded fleet
 * through printed-balancer (see runShardedBench below): a
 * single-shard baseline vs. an N-shard fleet on a key-affine mixed
 * workload (QPS scaling gate, byte-identical replies across
 * fleets), per-shard coalescing through the balancer, a streamed
 * sweep whose first partial must land well before the monolithic
 * reply would, per-shard admission/shed counters in the JSON
 * report, and a fleet warm-restart that must heal from the shared
 * disk cache. --connect HOST:PORT attaches to an already-running
 * balancer (CI smoke) instead of spawning; spawn-only phases and
 * the QPS comparison are skipped there.
 */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "service/balancer.hh"
#include "service/client.hh"
#include "service/fault_plan.hh"
#include "service/protocol.hh"
#include "service/server.hh"

using namespace printed;
using namespace printed::service;

namespace
{

/** Percentile of a sample vector (sorted in place). */
double
percentile(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const std::size_t idx = std::size_t(
        p * double(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

/**
 * A named service counter out of a metrics reply, or 0. Uses a
 * fresh connection each time: metrics replies are never
 * fault-injected, but a shared compute connection may already have
 * been chaos-killed.
 */
std::uint64_t
serverCounter(const std::string &host, std::uint16_t port,
              const std::string &name)
{
    Client client(host, port);
    const json::Value root = json::parse(
        client.call(adminRequest("metrics", RequestType::Metrics)));
    const json::Value *result = root.find("result");
    if (!result)
        return 0;
    const json::Value *counters = result->find("counters");
    if (!counters)
        return 0;
    const json::Value *c = counters->find(name);
    return c ? std::uint64_t(c->number) : 0;
}

std::string
valueOfArg(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (argv[i] == "--" + flag)
            return argv[i + 1];
    return "";
}

bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i)
        if (argv[i] == "--" + flag)
            return true;
    return false;
}

/** Fold one client's retry counters into the run-wide totals. */
void
foldStats(RetryStats &into, const RetryStats &from)
{
    into.calls += from.calls;
    into.reconnects += from.reconnects;
    into.lossReplays += from.lossReplays;
    into.timeoutReplays += from.timeoutReplays;
    into.overloadReplays += from.overloadReplays;
}

/** The retry policy the harness uses (patient, fast backoff). */
RetryPolicy
harnessPolicy()
{
    RetryPolicy policy;
    policy.maxLossRetries = 50;
    policy.maxOverloadRetries = 2000;
    policy.callTimeoutMs = 60000;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 50;
    policy.jitterSeed = 99;
    return policy;
}

// ----------------------------------------------------------------
// Sharded mode (--shards N): drive a printed-balancer fleet
// ----------------------------------------------------------------

/** Summed + per-shard counters out of a balancer metrics reply. */
struct MergedMetrics
{
    std::map<std::string, double> counters;  ///< fleet-wide sums
    std::map<std::string, double> balancer;  ///< balancer's own
    std::vector<std::map<std::string, double>> shards;
    std::vector<bool> down;
};

MergedMetrics
fetchMergedMetrics(const std::string &host, std::uint16_t port)
{
    Client client(host, port);
    const json::Value root = json::parse(
        client.call(adminRequest("metrics", RequestType::Metrics)));
    const json::Value *result = root.find("result");
    fatalIf(!result, "metrics reply without result");

    MergedMetrics out;
    const auto intoMap = [](const json::Value *obj,
                            std::map<std::string, double> &map) {
        if (!obj || !obj->isObject())
            return;
        for (const auto &[name, value] : obj->object)
            if (value.isNumber())
                map[name] = value.number;
    };
    intoMap(result->find("counters"), out.counters);
    intoMap(result->find("balancer"), out.balancer);
    if (const json::Value *shards = result->find("shards");
        shards && shards->isArray())
        for (const json::Value &shard : shards->array) {
            out.shards.emplace_back();
            out.down.push_back(shard.find("down") != nullptr);
            intoMap(shard.find("counters"), out.shards.back());
        }
    return out;
}

/**
 * The key-affine mixed workload: 16 distinct synth requests
 * (opcode-mask variants of one shape). With --cache-cap 8 a single
 * worker LRU-thrashes over them (every steady-state request pays a
 * fresh synthesis) while an N-shard fleet holds each shard's ~16/N
 * keys hot — which is exactly the scaling the balancer's key
 * affinity is supposed to buy, CPU cores or not.
 */
std::vector<std::string>
mixedRequests()
{
    std::vector<std::string> reqs;
    for (unsigned i = 0; i < 16; ++i) {
        CoreConfig c = CoreConfig::standard(1, 16, 2);
        c.opcodeMask = 0x3FF - i;
        reqs.push_back(synthRequest("m" + std::to_string(i), c));
    }
    return reqs;
}

/**
 * One serial pass over the mixed set. Fills `ref` (id -> reply
 * bytes) on first use; on later fleets it checks every reply
 * byte-identical against it. Returns false on any mismatch.
 */
bool
mixedPass(const std::string &host, std::uint16_t port,
          std::map<std::string, std::string> &ref)
{
    RetryingClient client(host, port, harnessPolicy());
    bool identical = true;
    for (const std::string &req : mixedRequests()) {
        const std::string raw = client.call(req);
        const Reply r = parseReply(raw);
        fatalIf(!r.ok, "mixed request failed: " + raw);
        const auto [it, fresh] = ref.try_emplace(r.id, raw);
        if (!fresh && it->second != raw)
            identical = false;
    }
    return identical;
}

struct MixedResult
{
    double qps = 0;
    bool identical = true;         ///< every reply matched ref
    std::vector<double> latMs;     ///< per-call latencies
};

/** Timed mixed load: `threads` x `rounds` over the 16 keys. */
MixedResult
mixedLoad(const std::string &host, std::uint16_t port,
          unsigned threads, unsigned rounds,
          const std::map<std::string, std::string> &ref)
{
    const std::vector<std::string> reqs = mixedRequests();
    std::vector<std::vector<double>> lat(threads);
    std::atomic<bool> identical{true};
    const bench::WallTimer timer;
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back([&, t] {
            RetryingClient client(host, port, harnessPolicy());
            for (unsigned r = 0; r < rounds; ++r)
                for (const std::string &req : reqs) {
                    const bench::WallTimer one;
                    const std::string raw = client.call(req);
                    lat[t].push_back(one.elapsedMs());
                    if (ref.at(parseReply(raw).id) != raw)
                        identical.store(false);
                }
        });
    for (std::thread &t : pool)
        t.join();

    MixedResult out;
    const double seconds = timer.elapsedMs() / 1000.0;
    out.qps = seconds > 0
                  ? double(threads * rounds * reqs.size()) / seconds
                  : 0;
    out.identical = identical.load();
    for (auto &v : lat)
        out.latMs.insert(out.latMs.end(), v.begin(), v.end());
    return out;
}

/** Spawn-mode fleet options (small cache so affinity matters). */
BalancerOptions
fleetOptions(unsigned shards, const std::string &printedd,
             std::uint64_t cacheCap, const std::string &diskDir)
{
    BalancerOptions o;
    o.spawnWorkers = shards;
    o.printeddPath = printedd;
    o.workerArgs = {"--cache-cap", std::to_string(cacheCap)};
    if (!diskDir.empty()) {
        o.workerArgs.push_back("--disk-cache");
        o.workerArgs.push_back(diskDir);
    }
    return o;
}

int
runShardedBench(int argc, char **argv, unsigned shards)
{
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned clients = unsigned(
        bench::uintFromArgs(argc, argv, "clients", 4));
    const unsigned threads = unsigned(
        bench::uintFromArgs(argc, argv, "shard-threads", 2));
    const unsigned rounds = unsigned(
        bench::uintFromArgs(argc, argv, "shard-rounds", 2));
    const std::uint64_t cacheCap =
        bench::uintFromArgs(argc, argv, "cache-cap", 8);
    const std::string connect = valueOfArg(argc, argv, "connect");
    const bool shutdownAfter =
        hasFlag(argc, argv, "shutdown-after");
    double qpsGate = 3.0;
    if (const std::string g = valueOfArg(argc, argv, "qps-gate");
        !g.empty())
        qpsGate = std::stod(g);
    // The baseline-vs-fleet comparison needs both fleets spawned
    // here; attached mode (CI smoke) has no baseline to gate on.
    const bool gateQps =
        connect.empty() && !hasFlag(argc, argv, "no-qps-gate");

    bench::banner("printed-balancer load",
                  "sharded serving: QPS scaling, key affinity, "
                  "streamed sweeps, per-shard admission");

    std::string printedd = valueOfArg(argc, argv, "printedd");
    if (connect.empty() && printedd.empty()) {
        // Sibling build layout: build/bench/bench_service next to
        // build/src/service/printedd.
        const std::string self = argv[0];
        const std::size_t slash = self.rfind('/');
        const std::string dir =
            slash == std::string::npos ? "." : self.substr(0, slash);
        printedd = dir + "/../src/service/printedd";
        fatalIf(!std::filesystem::exists(printedd),
                "cannot find printedd at " + printedd +
                    " (give --printedd PATH)");
    }

    bench::JsonReport jr("bench_service");
    const bench::WallTimer total;
    bool pass = true;
    std::map<std::string, std::string> ref; // id -> reply bytes

    // ---- Phase S1: single-shard baseline (spawn mode) ----------
    double qps1 = 0;
    if (connect.empty()) {
        Balancer one(fleetOptions(1, printedd, cacheCap, ""));
        one.start();
        std::cout << "baseline: fleet of 1 on port " << one.port()
                  << "\n";
        mixedPass("127.0.0.1", one.port(), ref); // warm + reference
        const MixedResult r1 = mixedLoad("127.0.0.1", one.port(),
                                         threads, rounds, ref);
        qps1 = r1.qps;
        if (!r1.identical) {
            std::cout << "FAIL: single-shard replies differ from "
                         "reference\n";
            pass = false;
        }
        std::cout << "baseline: "
                  << TableWriter::fixed(qps1, 1) << " QPS (cache "
                  << cacheCap << " < 16 keys: every request "
                     "re-synthesizes)\n";
        // fleet drains + reaps at scope exit
    }

    // ---- The N-shard fleet (spawned or attached) ---------------
    std::optional<Balancer> fleet;
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    if (connect.empty()) {
        fleet.emplace(fleetOptions(shards, printedd, cacheCap, ""));
        fleet->start();
        port = fleet->port();
        std::cout << "fleet: " << shards << " shards on port "
                  << port << "\n";
    } else {
        const std::size_t colon = connect.rfind(':');
        fatalIf(colon == std::string::npos,
                "--connect expects HOST:PORT");
        host = connect.substr(0, colon);
        port = std::uint16_t(
            std::stoul(connect.substr(colon + 1)));
        std::cout << "attached to balancer at " << host << ":"
                  << port << "\n";

        // The balancer must actually front `shards` live workers.
        Client probe(host, port);
        const json::Value health = json::parse(probe.call(
            adminRequest("health", RequestType::Health)));
        const json::Value *result = health.find("result");
        const json::Value *up =
            result ? result->find("shards_up") : nullptr;
        const unsigned shardsUp =
            up && up->isNumber() ? unsigned(up->number) : 0;
        std::cout << "health: " << shardsUp << " shards up\n";
        if (shardsUp != shards) {
            std::cout << "FAIL: expected " << shards
                      << " shards up, found " << shardsUp << "\n";
            pass = false;
        }
    }

    // ---- Phase S2: mixed load, byte-compared across fleets -----
    const bool crossIdentical = mixedPass(host, port, ref);
    MixedResult rn = mixedLoad(host, port, threads, rounds, ref);
    const double scaling = qps1 > 0 ? rn.qps / qps1 : 0;
    const double mp50 = percentile(rn.latMs, 0.50);
    const double mp95 = percentile(rn.latMs, 0.95);
    const double mp99 = percentile(rn.latMs, 0.99);
    std::cout << "mixed: " << TableWriter::fixed(rn.qps, 1)
              << " QPS";
    if (qps1 > 0)
        std::cout << " (" << TableWriter::fixed(scaling, 2)
                  << "x vs single shard)";
    std::cout << "; latency p50 " << TableWriter::fixed(mp50, 3)
              << " p95 " << TableWriter::fixed(mp95, 3) << " p99 "
              << TableWriter::fixed(mp99, 3) << " ms\n";
    if (!crossIdentical || !rn.identical) {
        std::cout << "FAIL: sharded replies not byte-identical to "
                     "the single-shard reference\n";
        pass = false;
    }
    if (gateQps && scaling < qpsGate) {
        std::cout << "FAIL: QPS scaling "
                  << TableWriter::fixed(scaling, 2) << "x < "
                  << TableWriter::fixed(qpsGate, 1) << "x\n";
        pass = false;
    }

    // ---- Phase S3: coalescing still fires, per shard -----------
    // One fresh expensive yield from every client at once; the
    // balancer's key affinity sends all of them to one shard whose
    // coalescer dedups them — no shared memory required.
    const double coalesceBefore = fetchMergedMetrics(host, port)
                                      .counters["service.coalesce_hits"];
    {
        const std::string burstReq = yieldRequest(
            "cb", CoreConfig::standard(1, 4, 2), 600, 424242);
        std::vector<std::string> replies(clients);
        std::vector<std::thread> pool;
        for (unsigned c = 0; c < clients; ++c)
            pool.emplace_back([&, c] {
                RetryingClient burst(host, port, harnessPolicy());
                replies[c] = burst.call(burstReq);
            });
        for (std::thread &t : pool)
            t.join();
        for (unsigned c = 0; c < clients; ++c) {
            fatalIf(!parseReply(replies[c]).ok,
                    "coalesce burst failed: " + replies[c]);
            if (replies[c] != replies[0]) {
                std::cout << "FAIL: coalesced replies differ\n";
                pass = false;
            }
        }
    }
    const double coalesceDelta =
        fetchMergedMetrics(host, port)
            .counters["service.coalesce_hits"] -
        coalesceBefore;
    std::cout << "coalesce: " << clients
              << " identical in-flight requests -> "
              << std::uint64_t(coalesceDelta)
              << " coalesce hits on the owning shard\n";
    if (clients >= 2 && coalesceDelta < 1) {
        std::cout << "FAIL: no coalescing through the balancer\n";
        pass = false;
    }

    // ---- Phase S4: streamed sweep through the balancer ---------
    // 18 fresh points; the first partial must arrive long before
    // the sweep finishes (the whole point of streaming), and the
    // assembled bytes must equal the monolithic reply.
    SweepSpec spec;
    spec.stages = {1, 2, 3};
    spec.widths = {4, 8, 16};
    spec.bars = {2, 4};
    RetryingClient streamer(host, port, harnessPolicy());
    const bench::WallTimer streamTimer;
    double firstPartialMs = -1;
    const StreamResult sr = streamer.streamSweep(
        "sw", spec,
        [&](std::uint64_t, std::uint64_t, const std::string &) {
            if (firstPartialMs < 0)
                firstPartialMs = streamTimer.elapsedMs();
        });
    const double streamMs = streamTimer.elapsedMs();
    fatalIf(!sr.reply.ok, "streamed sweep failed: " + sr.reply.raw);
    const std::string mono = streamer.call(sweepRequest("sw", spec));
    const bool assembledIdentical = sr.reply.raw == mono;
    const double firstFrac =
        sr.streamed && streamMs > 0 && firstPartialMs >= 0
            ? firstPartialMs / streamMs
            : 1.0;
    streamer.close();
    std::cout << "stream: " << sr.points.size()
              << " points in " << TableWriter::fixed(streamMs, 1)
              << " ms, first partial at "
              << TableWriter::fixed(100 * firstFrac, 1)
              << "% of wall-clock; assembled reply "
              << (assembledIdentical ? "== monolithic"
                                     : "DIFFERS from monolithic")
              << "\n";
    if (!sr.streamed) {
        std::cout << "FAIL: balancer did not stream (v2 expected)\n";
        pass = false;
    }
    if (!assembledIdentical)
        pass = false;
    // Gate the latency fraction only where the points are known
    // cold (spawn mode); an attached warm fleet streams so fast the
    // fraction is scheduler noise.
    if (connect.empty() && firstFrac > 0.25) {
        std::cout << "FAIL: first partial at "
                  << TableWriter::fixed(100 * firstFrac, 1)
                  << "% > 25% of wall-clock\n";
        pass = false;
    }

    // ---- Per-shard counters ------------------------------------
    const MergedMetrics mm = fetchMergedMetrics(host, port);
    for (std::size_t i = 0; i < mm.shards.size(); ++i) {
        const auto &c = mm.shards[i];
        const auto get = [&](const char *name) {
            const auto it = c.find(name);
            return it == c.end() ? 0.0 : it->second;
        };
        std::cout << "shard " << i << ": "
                  << std::uint64_t(get("service.requests"))
                  << " requests, "
                  << std::uint64_t(get("service.rejected"))
                  << " rejected, "
                  << std::uint64_t(get("service.shed_sweep"))
                  << "/"
                  << std::uint64_t(get("service.shed_yield"))
                  << " shed sweep/yield, "
                  << std::uint64_t(get("service.coalesce_hits"))
                  << " coalesce hits, "
                  << std::uint64_t(get("service.stream_partials"))
                  << " stream partials"
                  << (mm.down[i] ? " [DOWN]" : "") << "\n";
        jr.add("shards",
               {{"shard", std::uint64_t(i)},
                {"down", bool(mm.down[i])},
                {"requests",
                 std::uint64_t(get("service.requests"))},
                {"rejected",
                 std::uint64_t(get("service.rejected"))},
                {"shed_sweep",
                 std::uint64_t(get("service.shed_sweep"))},
                {"shed_yield",
                 std::uint64_t(get("service.shed_yield"))},
                {"coalesce_hits",
                 std::uint64_t(get("service.coalesce_hits"))},
                {"stream_partials",
                 std::uint64_t(get("service.stream_partials"))},
                {"replies_ok",
                 std::uint64_t(get("service.replies_ok"))}});
    }

    // ---- Phase S5: fleet warm restart heals from disk ----------
    // A disk-backed fleet synthesizes the mixed set once, is torn
    // down, and a fresh fleet on the same directory must serve the
    // same keys almost entirely from disk (>= 90% hit rate). Shard
    // assignments are identical across the two fleets (the ring is
    // deterministic), so every worker finds its own keys.
    double diskHitRate = -1;
    if (connect.empty()) {
        char tmpl[] = "/tmp/printed-bench-shards-XXXXXX";
        fatalIf(::mkdtemp(tmpl) == nullptr, "mkdtemp failed");
        const std::string diskDir = tmpl;
        {
            Balancer writer(
                fleetOptions(shards, printedd, cacheCap, diskDir));
            writer.start();
            std::map<std::string, std::string> pass1;
            mixedPass("127.0.0.1", writer.port(), pass1);
        }
        {
            Balancer reader(
                fleetOptions(shards, printedd, cacheCap, diskDir));
            reader.start();
            std::map<std::string, std::string> pass2;
            mixedPass("127.0.0.1", reader.port(), pass2);
            const MergedMetrics m2 =
                fetchMergedMetrics("127.0.0.1", reader.port());
            const auto sum = [&](const char *name) {
                const auto it = m2.counters.find(name);
                return it == m2.counters.end() ? 0.0 : it->second;
            };
            const double hits =
                sum("synth.disk_cache.netlist_hits") +
                sum("synth.disk_cache.char_hits");
            const double misses =
                sum("synth.disk_cache.netlist_misses") +
                sum("synth.disk_cache.char_misses");
            diskHitRate =
                hits + misses > 0 ? hits / (hits + misses) : 0;
        }
        std::filesystem::remove_all(diskDir);
        std::cout << "restart: fleet reboot on shared disk cache, "
                  << TableWriter::fixed(100 * diskHitRate, 1)
                  << "% hit rate\n";
        if (diskHitRate < 0.9) {
            std::cout << "FAIL: disk hit rate after restart < 90%\n";
            pass = false;
        }
    }

    // ---- Teardown + report -------------------------------------
    if (!connect.empty() && shutdownAfter) {
        Client bye(host, port);
        const Reply r = parseReply(
            bye.call(adminRequest("bye", RequestType::Shutdown)));
        fatalIf(!r.ok, "shutdown refused: " + r.raw);
    }
    fleet.reset(); // spawn mode: drain + reap the fleet

    const double totalMs = total.elapsedMs();
    std::cout << "\nsharded: " << (pass ? "PASS" : "FAIL") << " in "
              << TableWriter::fixed(totalMs, 0) << " ms\n";

    if (!jsonPath.empty()) {
        const auto bal = [&](const char *name) {
            const auto it = mm.balancer.find(name);
            return it == mm.balancer.end()
                       ? std::uint64_t(0)
                       : std::uint64_t(it->second);
        };
        jr.meta("shards", shards);
        jr.meta("shard_threads", threads);
        jr.meta("shard_rounds", rounds);
        jr.meta("cache_cap", cacheCap);
        jr.meta("wall_ms", totalMs);
        jr.meta("single_shard_qps", qps1);
        jr.meta("mixed_qps", rn.qps);
        jr.meta("qps_scaling_x", scaling);
        jr.meta("mixed_p50_ms", mp50);
        jr.meta("mixed_p95_ms", mp95);
        jr.meta("mixed_p99_ms", mp99);
        jr.meta("mixed_replies_identical",
                crossIdentical && rn.identical);
        jr.meta("coalesce_hits", std::uint64_t(coalesceDelta));
        jr.meta("stream_points",
                std::uint64_t(sr.points.size()));
        jr.meta("stream_first_partial_frac", firstFrac);
        jr.meta("stream_assembled_identical", assembledIdentical);
        jr.meta("disk_hit_rate_after_restart", diskHitRate);
        jr.meta("balancer_routed", bal("routed"));
        jr.meta("balancer_fanouts", bal("fanouts"));
        jr.meta("balancer_partials_forwarded",
                bal("partials_forwarded"));
        jr.meta("balancer_failovers", bal("failovers"));
        jr.meta("balancer_unavailable", bal("unavailable"));
        jr.writeTo(jsonPath);
    }
    return pass ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    if (const unsigned shards = unsigned(
            bench::uintFromArgs(argc, argv, "shards", 0));
        shards > 0) {
        // Catch here so a failure unwinds the Balancer scopes and
        // the spawned worker fleets are reaped, not orphaned.
        try {
            return runShardedBench(argc, argv, shards);
        } catch (const std::exception &e) {
            std::cerr << "bench_service: " << e.what() << "\n";
            return 1;
        }
    }
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned clients = unsigned(
        bench::uintFromArgs(argc, argv, "clients", 4));
    const unsigned hotIters = unsigned(
        bench::uintFromArgs(argc, argv, "hot-iters", 200));
    const std::string connect = valueOfArg(argc, argv, "connect");
    const bool shutdownAfter =
        hasFlag(argc, argv, "shutdown-after");
    const bool retry = hasFlag(argc, argv, "retry");
    // Injected faults distort timing, and a disk-cache warm restart
    // serves the "cold" phase at hot speed — both make the hot/cold
    // speedup gate meaningless.
    const bool speedupGate =
        !retry && !hasFlag(argc, argv, "no-speedup-gate");

    bench::banner("printedd load",
                  "service throughput, latency, coalescing, and "
                  "admission control");
    if (retry)
        std::cout << "retry mode: all calls via RetryingClient\n";

    // ---- Server (in-process unless --connect) ------------------
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::optional<Server> server;
    if (connect.empty()) {
        ServerOptions opts;
        opts.executors = unsigned(
            bench::uintFromArgs(argc, argv, "executors", 4));
        opts.maxQueue =
            bench::uintFromArgs(argc, argv, "max-queue", 64);
        opts.cacheCapacity =
            bench::uintFromArgs(argc, argv, "cache-cap", 256);
        opts.diskCacheDir = valueOfArg(argc, argv, "disk-cache");
        const std::string plan =
            valueOfArg(argc, argv, "fault-plan");
        if (!plan.empty())
            opts.faultPlan = FaultPlan::parse(plan);
        server.emplace(opts);
        server->start();
        port = server->port();
        std::cout << "in-process server on port " << port << "\n";
    } else {
        const std::size_t colon = connect.rfind(':');
        fatalIf(colon == std::string::npos,
                "--connect expects HOST:PORT");
        host = connect.substr(0, colon);
        port = std::uint16_t(
            std::stoul(connect.substr(colon + 1)));
        std::cout << "connecting to " << host << ":" << port
                  << "\n";
    }

    bench::JsonReport jr("bench_service");
    const bench::WallTimer total;
    Client client; // raw pipelining path (non-retry mode)
    std::optional<RetryingClient> rclient;
    if (retry)
        rclient.emplace(host, port, harnessPolicy());
    else
        client.connect(host, port);
    RetryStats retryTotals;
    const auto call = [&](const std::string &line) {
        return retry ? rclient->call(line) : client.call(line);
    };
    bool pass = true;

    // ---- Phase 1: cold synth -----------------------------------
    // 8 distinct configurations, none synthesized before (in a
    // fresh server process): each request pays a full synthesis +
    // characterization.
    std::vector<CoreConfig> coldConfigs;
    for (unsigned stages : {1u, 2u, 3u})
        for (unsigned width : {4u, 8u})
            coldConfigs.push_back(
                CoreConfig::standard(stages, width, 2));
    coldConfigs.push_back(CoreConfig::standard(1, 16, 2));
    coldConfigs.push_back(CoreConfig::standard(2, 16, 2));

    const bench::WallTimer coldTimer;
    for (std::size_t i = 0; i < coldConfigs.size(); ++i) {
        const Reply r = parseReply(call(synthRequest(
            "cold" + std::to_string(i), coldConfigs[i])));
        fatalIf(!r.ok, "cold synth failed: " + r.raw);
    }
    const double coldMs = coldTimer.elapsedMs();
    const double coldPerS =
        double(coldConfigs.size()) / (coldMs / 1000.0);
    std::cout << "cold: " << coldConfigs.size() << " requests in "
              << TableWriter::fixed(coldMs, 1) << " ms ("
              << TableWriter::fixed(coldPerS, 1) << "/s)\n";

    // ---- Phase 2: hot synth ------------------------------------
    // The same request repeated: served from the SynthCache, so
    // per-request cost is protocol + lookup only.
    const std::string hotReq =
        synthRequest("hot", coldConfigs.front());
    std::vector<double> hotLatMs;
    hotLatMs.reserve(hotIters);
    const bench::WallTimer hotTimer;
    for (unsigned i = 0; i < hotIters; ++i) {
        const bench::WallTimer one;
        const Reply r = parseReply(call(hotReq));
        hotLatMs.push_back(one.elapsedMs());
        fatalIf(!r.ok, "hot synth failed: " + r.raw);
    }
    const double hotMs = hotTimer.elapsedMs();
    const double hotPerS = double(hotIters) / (hotMs / 1000.0);
    const double speedup =
        (coldMs / double(coldConfigs.size())) /
        (hotMs / double(hotIters));
    const double p50 = percentile(hotLatMs, 0.50);
    const double p95 = percentile(hotLatMs, 0.95);
    const double p99 = percentile(hotLatMs, 0.99);
    std::cout << "hot:  " << hotIters << " requests in "
              << TableWriter::fixed(hotMs, 1) << " ms ("
              << TableWriter::fixed(hotPerS, 1) << "/s, "
              << TableWriter::fixed(speedup, 1)
              << "x vs cold); latency p50 "
              << TableWriter::fixed(p50, 3) << " p95 "
              << TableWriter::fixed(p95, 3) << " p99 "
              << TableWriter::fixed(p99, 3) << " ms\n";
    if (speedup < 5.0) {
        if (!speedupGate) {
            std::cout << "note: speedup gate skipped ("
                      << (retry ? "retry mode" : "--no-speedup-gate")
                      << ")\n";
        } else {
            std::cout << "FAIL: repeated-synth speedup "
                      << TableWriter::fixed(speedup, 2)
                      << "x < 5x\n";
            pass = false;
        }
    }

    // ---- Phase 3: coalesce burst -------------------------------
    // One fresh, expensive yield computation issued from every
    // client at once: duplicates dequeued while the leader runs
    // join its in-flight future instead of recomputing.
    const std::uint64_t coalesceBefore =
        serverCounter(host, port, "service.coalesce_hits");
    {
        const std::string burstReq = yieldRequest(
            "burst", coldConfigs.front(), 600, 424242);
        std::vector<std::string> replies(clients);
        std::vector<std::thread> threads;
        std::mutex statsMutex;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                if (retry) {
                    RetryingClient burst(host, port,
                                         harnessPolicy());
                    replies[c] = burst.call(burstReq);
                    const std::lock_guard<std::mutex> lock(
                        statsMutex);
                    foldStats(retryTotals, burst.stats());
                } else {
                    Client burst(host, port);
                    replies[c] = burst.call(burstReq);
                }
            });
        for (std::thread &t : threads)
            t.join();
        for (unsigned c = 0; c < clients; ++c) {
            fatalIf(!parseReply(replies[c]).ok,
                    "coalesce burst failed: " + replies[c]);
            if (replies[c] != replies[0]) {
                std::cout << "FAIL: coalesced replies differ\n";
                pass = false;
            }
        }
    }
    const std::uint64_t coalesceHits =
        serverCounter(host, port, "service.coalesce_hits") -
        coalesceBefore;
    std::cout << "coalesce: " << clients
              << " identical in-flight requests -> "
              << coalesceHits << " coalesce hits\n";

    // ---- Phase 4: error-path probes ----------------------------
    const Reply malformed =
        parseReply(call("{not json at all"));
    const bool malformedOk =
        !malformed.ok && malformed.error == errc::parseError;
    const Reply expired = parseReply(call(synthRequest(
        "exp", CoreConfig::standard(3, 32, 4), 1e-4)));
    const bool deadlineOk =
        !expired.ok && expired.error == errc::deadlineExceeded;
    std::cout << "probes: malformed -> "
              << (malformed.ok ? "OK?!" : malformed.error)
              << ", expired deadline -> "
              << (expired.ok ? "OK?!" : expired.error) << "\n";
    if (!malformedOk || !deadlineOk)
        pass = false;

    // ---- Phase 5: rejection burst ------------------------------
    // Pipeline far more distinct (uncoalescible) requests than the
    // queue holds; the overflow is answered queue_full
    // immediately, and every request gets exactly one reply.
    const unsigned burstN = 160;
    unsigned rejected = 0, accepted = 0;
    if (!retry) {
        Client pipelined(host, port);
        for (unsigned i = 0; i < burstN; ++i)
            pipelined.send(yieldRequest(
                "rej" + std::to_string(i), coldConfigs.front(),
                20, 90000 + i));
        for (unsigned i = 0; i < burstN; ++i) {
            const Reply r = parseReply(pipelined.readLine());
            if (r.ok)
                ++accepted;
            else if (r.error == errc::queueFull)
                ++rejected;
            else
                fatalIf(true, "unexpected burst reply: " + r.raw);
        }
        std::cout << "reject: " << burstN << " pipelined -> "
                  << accepted << " served, " << rejected
                  << " rejected (queue_full), 0 dropped\n";
    } else {
        // RetryingClient turns queue_full into backoff + replay, so
        // the overload phase instead asserts that the same burst
        // (spread over --clients connections) completes to the last
        // request; the pressure shows up as overload replays.
        std::vector<std::thread> threads;
        std::mutex statsMutex;
        std::atomic<unsigned> okCount{0};
        std::atomic<unsigned> next{0};
        const std::uint64_t overloadBefore =
            retryTotals.overloadReplays;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back([&] {
                RetryingClient burst(host, port, harnessPolicy());
                for (unsigned i = next.fetch_add(1); i < burstN;
                     i = next.fetch_add(1)) {
                    const Reply r =
                        burst.callParsed(yieldRequest(
                            "rej" + std::to_string(i),
                            coldConfigs.front(), 20, 90000 + i));
                    if (r.ok)
                        ++okCount;
                }
                const std::lock_guard<std::mutex> lock(statsMutex);
                foldStats(retryTotals, burst.stats());
            });
        for (std::thread &t : threads)
            t.join();
        accepted = okCount.load();
        if (accepted != burstN) {
            std::cout << "FAIL: overload burst lost replies ("
                      << accepted << "/" << burstN << ")\n";
            pass = false;
        }
        std::cout << "reject: " << burstN << " retried -> "
                  << accepted << " served, "
                  << (retryTotals.overloadReplays - overloadBefore)
                  << " overload replays, 0 dropped\n";
    }

    // ---- Phase 6: determinism ----------------------------------
    // The serving determinism rule, end to end: serial replies are
    // the reference; concurrent pipelined clients must produce the
    // same bytes for the same ids.
    std::vector<std::string> detReqs;
    for (unsigned width : {4u, 8u, 16u})
        detReqs.push_back(
            synthRequest("d" + std::to_string(width),
                         CoreConfig::standard(1, width, 2)));
    detReqs.push_back(
        yieldRequest("dy", coldConfigs.front(), 64, 7));
    SweepSpec spec;
    spec.stages = {1, 2};
    spec.widths = {4, 8};
    spec.bars = {2};
    detReqs.push_back(sweepRequest("dw", spec));

    std::map<std::string, std::string> serial;
    for (const std::string &req : detReqs) {
        const std::string raw = call(req);
        serial[parseReply(raw).id] = raw;
    }
    bool identical = true;
    {
        std::vector<std::thread> threads;
        std::vector<bool> same(clients, true);
        std::mutex statsMutex;
        for (unsigned c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                if (retry) {
                    // Sequential calls (RetryingClient does not
                    // pipeline) — replays must not change bytes.
                    RetryingClient det(host, port,
                                       harnessPolicy());
                    for (const std::string &req : detReqs) {
                        const std::string raw = det.call(req);
                        if (serial.at(parseReply(raw).id) != raw)
                            same[c] = false;
                    }
                    const std::lock_guard<std::mutex> lock(
                        statsMutex);
                    foldStats(retryTotals, det.stats());
                    return;
                }
                Client det(host, port);
                for (const std::string &req : detReqs)
                    det.send(req);
                for (std::size_t i = 0; i < detReqs.size(); ++i) {
                    const std::string raw = det.readLine();
                    if (serial.at(parseReply(raw).id) != raw)
                        same[c] = false;
                }
            });
        for (std::thread &t : threads)
            t.join();
        for (unsigned c = 0; c < clients; ++c)
            identical = identical && same[c];
    }
    std::cout << "determinism: " << clients
              << " concurrent clients, replies "
              << (identical ? "byte-identical to serial"
                            : "DIFFER from serial")
              << "\n";
    if (!identical)
        pass = false;

    // ---- Teardown + report -------------------------------------
    const std::uint64_t servedTotal =
        serverCounter(host, port, "service.requests");
    const std::uint64_t rejectedTotal =
        serverCounter(host, port, "service.rejected");
    const std::uint64_t deadlineTotal =
        serverCounter(host, port, "service.deadline_exceeded");
    const std::uint64_t faultTotal =
        serverCounter(host, port, "service.fault.drops") +
        serverCounter(host, port, "service.fault.truncates") +
        serverCounter(host, port, "service.fault.delays") +
        serverCounter(host, port, "service.fault.queue_fulls");
    const std::uint64_t diskNetlistHits = serverCounter(
        host, port, "synth.disk_cache.netlist_hits");
    const std::uint64_t diskCharHits =
        serverCounter(host, port, "synth.disk_cache.char_hits");
    const std::uint64_t diskMisses =
        serverCounter(host, port,
                      "synth.disk_cache.netlist_misses") +
        serverCounter(host, port,
                      "synth.disk_cache.char_misses");
    const std::uint64_t diskStores =
        serverCounter(host, port, "synth.disk_cache.stores");

    if (rclient) {
        foldStats(retryTotals, rclient->stats());
        std::cout << "retry totals: " << retryTotals.calls
                  << " calls, " << retryTotals.reconnects
                  << " reconnects, " << retryTotals.lossReplays
                  << " loss / " << retryTotals.timeoutReplays
                  << " timeout / " << retryTotals.overloadReplays
                  << " overload replays; " << faultTotal
                  << " server faults injected\n";
    }

    if (connect.empty() || shutdownAfter) {
        const std::string bye =
            adminRequest("bye", RequestType::Shutdown);
        const Reply r = parseReply(
            retry ? rclient->call(bye, /*idempotent=*/false)
                  : client.call(bye));
        fatalIf(!r.ok, "shutdown refused: " + r.raw);
    }
    if (rclient)
        rclient->close();
    client.close();
    if (server) {
        server->wait();
        server.reset();
    }
    const double totalMs = total.elapsedMs();

    std::cout << "\nserver totals: " << servedTotal
              << " requests, " << rejectedTotal << " rejected, "
              << deadlineTotal << " deadline-expired; "
              << (pass ? "PASS" : "FAIL") << " in "
              << TableWriter::fixed(totalMs, 0) << " ms\n";

    if (!jsonPath.empty()) {
        jr.meta("clients", clients);
        jr.meta("hot_iters", hotIters);
        jr.meta("wall_ms", totalMs);
        jr.meta("cold_synth_per_s", coldPerS);
        jr.meta("hot_synth_per_s", hotPerS);
        jr.meta("hot_speedup_x", speedup);
        jr.meta("hot_p50_ms", p50);
        jr.meta("hot_p95_ms", p95);
        jr.meta("hot_p99_ms", p99);
        jr.meta("coalesce_hits", coalesceHits);
        jr.meta("burst_requests", burstN);
        jr.meta("burst_served", accepted);
        jr.meta("burst_rejected", rejected);
        jr.meta("malformed_rejected", malformedOk);
        jr.meta("deadline_rejected", deadlineOk);
        jr.meta("concurrent_replies_identical", identical);
        jr.meta("server_requests_total", servedTotal);
        jr.meta("server_rejected_total", rejectedTotal);
        jr.meta("server_deadline_exceeded_total", deadlineTotal);
        jr.meta("server_faults_injected", faultTotal);
        jr.meta("disk_cache_netlist_hits", diskNetlistHits);
        jr.meta("disk_cache_char_hits", diskCharHits);
        jr.meta("disk_cache_misses", diskMisses);
        jr.meta("disk_cache_stores", diskStores);
        jr.meta("retry_mode", retry);
        jr.meta("retry_calls", retryTotals.calls);
        jr.meta("retry_reconnects", retryTotals.reconnects);
        jr.meta("retry_loss_replays", retryTotals.lossReplays);
        jr.meta("retry_timeout_replays",
                retryTotals.timeoutReplays);
        jr.meta("retry_overload_replays",
                retryTotals.overloadReplays);
        jr.writeTo(jsonPath);
    }
    return pass ? 0 : 1;
}
