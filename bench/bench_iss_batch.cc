/**
 * @file
 * Fleet-scale ISS throughput: the struct-of-arrays batch engine vs
 * the scalar oracle loop, per legacy core (Table 4 cores, Section 8
 * workloads).
 *
 * For each core, M machines of the 8-bit multiply kernel (machine m
 * seeded with defaultInputs(mult, 8, 1 + m)) run once under each
 * engine. The run is repeated --reps times per engine and the best
 * wall-clock is kept (shared machines stall; the best rep is the
 * least-disturbed one). Both engines must agree bit-exactly —
 * instruction and cycle totals, per-machine statuses, outputs, and
 * the order-sensitive FNV fingerprint; any mismatch prints FAIL and
 * exits 1, so CI smoke runs gate hard on batch-vs-scalar identity.
 *
 *   bench_iss_batch [--machines N] [--threads T] [--reps R]
 *                   [--max-steps S] [--json out.json]
 *
 * The --json report carries the CI perf-gate key "iss.insns_per_s"
 * (aggregate batch instructions/s across all cores) plus per-core
 * scalar/batch throughput and speedups (bench_compare gates the
 * median of 3 against bench/baselines/BENCH_iss.json).
 */

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "legacy/batch_iss.hh"
#include "legacy/cores.hh"
#include "legacy/ir.hh"
#include "workloads/kernels.hh"

using namespace printed;
using namespace printed::bench;

namespace
{

struct CoreResult
{
    legacy::LegacyCore core = legacy::LegacyCore::OpenMsp430;
    std::uint64_t instructions = 0; ///< total over all machines
    std::uint64_t cycles = 0;
    double scalarMs = 0;
    double batchMs = 0;
    std::uint64_t fnv = 0;
    bool agree = false;
};

/** Best-of-reps wall clock of one engine over the whole batch. */
double
timeEngine(legacy::LegacyCore core, const legacy::IrProgram &prog,
           const std::vector<std::vector<std::uint64_t>> &inputs,
           legacy::IssBatchOptions opts, unsigned reps,
           legacy::IssBatchResult &out)
{
    double best = 0;
    for (unsigned r = 0; r < reps; ++r) {
        WallTimer timer;
        legacy::IssBatchResult res =
            legacy::runLegacyBatch(core, prog, inputs, opts);
        const double ms = timer.elapsedMs();
        if (r == 0 || ms < best) {
            best = ms;
            out = std::move(res);
        }
    }
    return best;
}

/** Bit-exact comparison of two engine results. */
bool
resultsAgree(const legacy::IssBatchResult &a,
             const legacy::IssBatchResult &b)
{
    if (a.codeBytes != b.codeBytes || a.dataBytes != b.dataBytes ||
        a.totalInstructions != b.totalInstructions ||
        a.totalCycles != b.totalCycles ||
        a.status != b.status ||
        legacy::issResultFnv(a) != legacy::issResultFnv(b))
        return false;
    for (std::size_t m = 0; m < a.runs.size(); ++m)
        if (a.runs[m].instructions != b.runs[m].instructions ||
            a.runs[m].cycles != b.runs[m].cycles ||
            a.runs[m].outputs != b.runs[m].outputs)
            return false;
    return true;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initObservability(argc, argv);
    const std::size_t machines =
        std::size_t(uintFromArgs(argc, argv, "machines", 1000));
    const unsigned threads =
        unsigned(uintFromArgs(argc, argv, "threads", 1));
    const unsigned reps =
        unsigned(uintFromArgs(argc, argv, "reps", 3));
    const std::uint64_t maxSteps =
        uintFromArgs(argc, argv, "max-steps", 50'000'000);
    const std::string jsonPath =
        jsonPathFromArgs(argc, argv, "BENCH_iss.json");

    banner("Fleet ISS: batch vs scalar engine",
           "M machines of the 8-bit multiply kernel per legacy "
           "core, struct-of-arrays lock-step batches against the "
           "scalar oracle loop (best of " +
               std::to_string(reps) + " reps, " +
               std::to_string(threads) + " thread(s), M=" +
               std::to_string(machines) + ")");

    const legacy::IrProgram prog = legacy::irKernel(Kernel::Mult, 8);
    std::vector<std::vector<std::uint64_t>> inputs;
    inputs.reserve(machines);
    for (std::size_t m = 0; m < machines; ++m)
        inputs.push_back(defaultInputs(Kernel::Mult, 8, 1 + m));

    legacy::IssBatchOptions base;
    base.maxSteps = maxSteps;
    base.threads = threads;

    bool allAgree = true;
    std::uint64_t batchInsns = 0;
    double batchMsTotal = 0;
    std::vector<CoreResult> rows;
    for (legacy::LegacyCore core : legacy::allLegacyCores) {
        CoreResult row;
        row.core = core;

        legacy::IssBatchOptions opts = base;
        opts.engine = legacy::IssEngine::Scalar;
        legacy::IssBatchResult scalarRes;
        row.scalarMs = timeEngine(core, prog, inputs, opts, reps,
                                  scalarRes);
        opts.engine = legacy::IssEngine::Batch;
        legacy::IssBatchResult batchRes;
        row.batchMs =
            timeEngine(core, prog, inputs, opts, reps, batchRes);

        row.instructions = batchRes.totalInstructions;
        row.cycles = batchRes.totalCycles;
        row.fnv = legacy::issResultFnv(batchRes);
        row.agree = resultsAgree(scalarRes, batchRes);
        allAgree = allAgree && row.agree;
        batchInsns += row.instructions;
        batchMsTotal += row.batchMs;
        rows.push_back(row);
    }

    std::cout << std::left << std::setw(12) << "core"
              << std::right << std::setw(14) << "insns"
              << std::setw(16) << "scalar ins/s"
              << std::setw(16) << "batch ins/s"
              << std::setw(10) << "speedup"
              << std::setw(8) << "agree" << "\n";
    for (const CoreResult &row : rows) {
        const double scalarPs =
            row.instructions / (row.scalarMs / 1e3);
        const double batchPs =
            row.instructions / (row.batchMs / 1e3);
        std::cout << std::left << std::setw(12)
                  << legacy::issCoreId(row.core) << std::right
                  << std::setw(14) << row.instructions
                  << std::setw(16) << std::setprecision(4)
                  << std::scientific << scalarPs << std::setw(16)
                  << batchPs << std::defaultfloat
                  << std::setw(9) << std::setprecision(3)
                  << (scalarPs > 0 ? batchPs / scalarPs : 0) << "x"
                  << std::setw(8) << (row.agree ? "yes" : "FAIL")
                  << "\n";
    }
    const double aggregatePs =
        batchMsTotal > 0 ? batchInsns / (batchMsTotal / 1e3) : 0;
    std::cout << "\naggregate batch throughput "
              << std::setprecision(4) << std::scientific
              << aggregatePs << std::defaultfloat
              << " insns/s over " << rows.size() << " cores\n";

    if (!allAgree)
        std::cout << "\nFAIL: batch and scalar engines disagree\n";

    if (!jsonPath.empty()) {
        JsonReport report("iss_batch");
        report.meta("machines", std::uint64_t(machines));
        report.meta("threads", threads);
        report.meta("reps", reps);
        report.meta("kernel", "mult");
        report.meta("width", 8);
        report.meta("engines_agree", allAgree);
        // The CI perf-gate key: aggregate batch instructions/s.
        report.meta("iss.insns_per_s", aggregatePs);
        for (const CoreResult &row : rows) {
            char fnv[19];
            std::snprintf(fnv, sizeof(fnv), "0x%016llx",
                          static_cast<unsigned long long>(row.fnv));
            report.add(
                "cores",
                {{"core", legacy::issCoreId(row.core)},
                 {"instructions", row.instructions},
                 {"cycles", row.cycles},
                 {"scalar_insns_per_s",
                  row.instructions / (row.scalarMs / 1e3)},
                 {"batch_insns_per_s",
                  row.instructions / (row.batchMs / 1e3)},
                 {"batch_speedup_x", row.scalarMs / row.batchMs},
                 {"engines_agree", row.agree},
                 {"outputs_fnv", fnv}});
        }
        report.writeTo(jsonPath);
    }
    return allAgree ? 0 : 1;
}
