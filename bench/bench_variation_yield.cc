/**
 * @file
 * Extension study: process variation and manufacturing yield of
 * printed cores.
 *
 * Section 3.1 reports EGFET device yields of 90-99% and the EGFET
 * modeling literature the paper builds on centers on printed
 * process variation. This bench quantifies both effects across the
 * design space: the timing guard-band Monte-Carlo variation
 * demands, and the print-until-it-works cost that yields imply -
 * the clearest quantitative argument for low-gate-count printed
 * cores beyond area and power.
 *
 * Options:
 *   --json PATH    machine-readable report (incl. wall-clock time)
 *   --threads N    Monte-Carlo worker threads (0 = hardware
 *                  concurrency; results identical for every N)
 *   --samples N    variation samples per core (default 200; smoke
 *                  runs in CI use a small count)
 */

#include <iostream>

#include "analysis/characterize.hh"
#include "analysis/variation.hh"
#include "analysis/yield.hh"
#include "bench_util.hh"
#include "core/generator.hh"
#include "legacy/cores.hh"
#include "synth/cache.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned threads =
        unsigned(bench::uintFromArgs(argc, argv, "threads", 1));
    const unsigned samples =
        unsigned(bench::uintFromArgs(argc, argv, "samples", 200));
    bench::JsonReport jr("bench_variation_yield");
    const bench::WallTimer timer;

    bench::banner("Extension: variation & yield",
                  "Monte-Carlo timing guard-bands and print yield "
                  "of EGFET cores");

    VariationModel model;
    model.threads = threads;
    model.samples = samples;

    std::cout << "Timing under process variation (lognormal cell "
                 "delays, sigma 25%, "
              << samples << " samples):\n";
    TableWriter t({"Core", "nominal fmax Hz", "p95 fmax Hz",
                   "guard-band", "sigma/mean"});
    for (unsigned w : {4u, 8u, 16u, 32u}) {
        const CoreConfig cfg = CoreConfig::standard(1, w, 2);
        const std::shared_ptr<const Netlist> core =
            SynthCache::global().core(cfg);
        const Netlist &nl = *core;
        const VariationReport r =
            analyzeVariation(nl, egfetLibrary(), model);
        t.addRow({cfg.label(),
                  TableWriter::fixed(1e6 / r.nominalPeriodUs, 2),
                  TableWriter::fixed(r.guardedFmaxHz(), 2),
                  TableWriter::fixed(r.guardBand(), 2) + "x",
                  TableWriter::fixed(
                      100 * r.stdDevUs / r.meanPeriodUs, 1) + "%"});
        jr.add("variation",
               {{"core", cfg.label()},
                {"nominal_fmax_hz", 1e6 / r.nominalPeriodUs},
                {"p95_fmax_hz", r.guardedFmaxHz()},
                {"guard_band", r.guardBand()},
                {"sigma_over_mean",
                 r.stdDevUs / r.meanPeriodUs}});
    }
    t.print(std::cout);

    std::cout << "\nPrint yield (working prints per attempt) at "
                 "the paper's measured EGFET device yields:\n";
    TableWriter y({"Design", "Devices", "yield @99%",
                   "yield @99.9%", "yield @99.99%",
                   "prints/good @99.99%"});
    auto add_design = [&](const std::string &name,
                          std::size_t devices) {
        const auto y99 = yieldForDevices(devices, {0.99, 1.0});
        const auto y999 = yieldForDevices(devices, {0.999, 1.0});
        const auto y9999 = yieldForDevices(devices, {0.9999, 1.0});
        y.addRow({name, std::to_string(devices),
                  TableWriter::num(y99.yield, 3),
                  TableWriter::num(y999.yield, 3),
                  TableWriter::num(y9999.yield, 3),
                  y9999.yield > 1e-6
                      ? TableWriter::fixed(y9999.printsPerGood, 1)
                      : std::string(">1e6")});
        jr.add("yield",
               {{"design", name},
                {"devices", devices},
                {"yield_at_99", y99.yield},
                {"yield_at_999", y999.yield},
                {"yield_at_9999", y9999.yield},
                {"prints_per_good_at_9999", y9999.printsPerGood}});
    };

    for (unsigned w : {4u, 8u, 32u}) {
        const std::shared_ptr<const Netlist> nl =
            SynthCache::global().core(CoreConfig::standard(1, w, 2));
        add_design("TP-ISA p1_" + std::to_string(w) + "_2",
                   deviceCount(*nl));
    }
    using namespace legacy;
    for (LegacyCore core :
         {LegacyCore::Light8080, LegacyCore::OpenMsp430}) {
        const auto &spec = legacyCoreSpec(core);
        // Legacy device counts from the statistical cell mix: ~2
        // devices per cell on average.
        add_design(spec.name, spec.egfet.gateCount * 2);
    }
    y.print(std::cout);

    std::cout
        << "\nTakeaway: even at the top of the paper's measured "
           "90-99% device-yield range, core-scale circuits need "
           "print-until-it-works manufacturing; at 99.99% the "
           "TP-ISA cores become practical (~1.1 prints per "
           "working core) while an openMSP430-class design still "
           "needs an order of magnitude more attempts - yield is "
           "as strong an argument for low-gate-count printed "
           "cores as area and power.\n";

    if (!jsonPath.empty()) {
        jr.meta("threads", threads);
        jr.meta("samples", samples);
        jr.meta("wall_ms", timer.elapsedMs());
        jr.writeTo(jsonPath);
    }
    return 0;
}
