/**
 * @file
 * Reproduces Table 1: comparison of printed/flexible electronics
 * technologies by processing route, operating voltage, and
 * mobility.
 */

#include <iostream>

#include "bench_util.hh"
#include "tech/technology.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Table 1",
                  "Printed/flexible technologies: operating voltage "
                  "and mobility");

    TableWriter t({"Process Technology", "Processing Route",
                   "Operating Voltage [V]", "Mobility [cm^2/Vs]",
                   "Battery-compatible"});
    for (const TechnologyInfo &row : technologySurvey()) {
        std::string volts =
            row.minVoltage == row.maxVoltage
                ? TableWriter::num(row.maxVoltage)
                : TableWriter::num(row.minVoltage) + "-" +
                      TableWriter::num(row.maxVoltage);
        if (row.name == "EGFET")
            volts = "<1";
        t.addRow({row.name, row.processing, volts,
                  TableWriter::num(row.mobility),
                  row.batteryCompatible ? "yes" : "no"});
    }
    t.print(std::cout);

    std::cout << "\nOnly the low-voltage technologies (EGFET, "
                 "CNT-TFT, SAM OTFT) can be battery powered; the "
                 "paper builds standard-cell libraries for the "
                 "first two.\n";
    return 0;
}
