/**
 * @file
 * Reproduces Table 3: printed-application performance and
 * precision requirements, plus a feasibility screen against
 * representative EGFET and CNT-TFT TP-ISA cores.
 */

#include <iostream>

#include "apps/applications.hh"
#include "bench_util.hh"
#include "core/generator.hh"
#include "dse/sweep.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Table 3",
                  "Example applications and their performance / "
                  "precision requirements");

    // Throughput of a synthesized single-cycle 8-bit core in each
    // technology (CPI = 1).
    const DesignPoint p8 =
        evaluateDesignPoint(CoreConfig::standard(1, 8, 2));
    const double ips_egfet = p8.egfet.fmaxHz();
    const double ips_cnt = p8.cnt.fmaxHz();

    TableWriter t({"Application", "Sample Rate (Hz)", "Prec. (bits)",
                   "Duty Cycle", "EGFET p1_8_2", "CNT p1_8_2"});
    for (const ApplicationInfo &app : applicationSurvey()) {
        t.addRow({app.name, TableWriter::num(app.sampleRateHz),
                  std::to_string(app.precisionBits),
                  app.dutyCycleNote,
                  feasible(app, ips_egfet, 8) ? "feasible" : "--",
                  feasible(app, ips_cnt, 8) ? "feasible" : "--"});
    }
    t.print(std::cout);

    std::cout << "\nEGFET p1_8_2 throughput: "
              << TableWriter::fixed(ips_egfet, 1)
              << " IPS; CNT-TFT: " << TableWriter::fixed(ips_cnt, 0)
              << " IPS (budget " << opsPerSample
              << " instructions per sample). Several low-rate "
                 "applications are feasible on inkjet-printed EGFET "
                 "cores; CNT-TFT covers all of them (Section 4).\n";
    return 0;
}
