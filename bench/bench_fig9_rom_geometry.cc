/**
 * @file
 * Reproduces the quantitative content of Figure 9 / Section 6:
 * the crossbar instruction-ROM geometry - sub-blocks, transistor
 * and pull-up counts, and area - including the paper's 16x9
 * reference design and its comparison against the WORM memory of
 * Myny et al. [79].
 */

#include <iostream>

#include "bench_util.hh"
#include "mem/rom.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Figure 9",
                  "Crosspoint ROM geometry (EGFET), including the "
                  "paper's 16x9 reference");

    TableWriter t({"Memory", "Sub-blocks", "Rows x Cols", "Dots",
                   "Transistors", "Pull-ups", "Area mm^2",
                   "Read delay ms"});
    struct Case
    {
        std::size_t words;
        unsigned bits;
        unsigned mlc;
    };
    for (const Case &c : {Case{16, 9, 1}, Case{64, 24, 1},
                          Case{256, 24, 1}, Case{256, 24, 2},
                          Case{256, 24, 4}}) {
        const CrosspointRom rom(c.words, c.bits, c.mlc);
        t.addRow({std::to_string(c.words) + "x" +
                      std::to_string(c.bits) +
                      (c.mlc > 1 ? " (MLC" + std::to_string(c.mlc) +
                                       ")"
                                 : ""),
                  std::to_string(rom.subBlocks()),
                  std::to_string(rom.rows()) + "x" +
                      std::to_string(rom.columns()),
                  std::to_string(rom.cells()),
                  std::to_string(rom.transistors()),
                  std::to_string(rom.pullUps()),
                  TableWriter::fixed(rom.areaMm2(), 2),
                  TableWriter::num(rom.readDelayMs())});
    }
    t.print(std::cout);

    const CrosspointRom ref(16, 9);
    const WormMemorySpec worm = wormReference();
    std::cout << "\n16x9 reference vs WORM [79] (paper | measured):"
              << "\n";
    bench::compare("crosspoint transistors", 220,
                   double(ref.transistors()));
    bench::compare("crosspoint pull-up resistors", 52,
                   double(ref.pullUps()));
    bench::compare("crosspoint area [mm^2]", 20.42, ref.areaMm2());
    bench::compare("WORM transistors", 1004,
                   double(worm.totalTransistors()));
    bench::compare("area ratio (crosspoint/WORM)", 0.33,
                   ref.areaMm2() / worm.area_mm2);
    return 0;
}
