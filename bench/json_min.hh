/**
 * @file
 * Minimal recursive-descent JSON reader for the bench tooling.
 *
 * Just enough of RFC 8259 to load the BENCH_*.json reports this
 * repo's benches emit (bench_util.hh): objects, arrays, strings
 * with the escapes jsonEscape() produces, numbers, true/false/null.
 * Used by bench_compare (regression gating between two reports) and
 * by the tests that round-trip JsonReport output. Not a validator:
 * it accepts some malformed documents, but never mis-parses a
 * well-formed one.
 */

#ifndef PRINTED_BENCH_JSON_MIN_HH
#define PRINTED_BENCH_JSON_MIN_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace printed::bench::json
{

/** Parse failure, with a byte offset into the input. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &what, std::size_t offset)
        : std::runtime_error(what + " at byte " +
                             std::to_string(offset)),
          offset_(offset)
    {}

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/** One parsed JSON value (a tagged tree). */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Insertion-ordered object members. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        for (const auto &m : object)
            if (m.first == key)
                return &m.second;
        return nullptr;
    }
};

namespace detail
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            throw ParseError("trailing content", pos_);
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw ParseError(what, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = 0;
        while (w[n])
            ++n;
        if (text_.compare(pos_, n, w) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            Value v;
            v.kind = Value::Kind::String;
            v.string = parseString();
            return v;
          }
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            return makeBool(true);
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            return makeBool(false);
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return Value{};
          default:
            return parseNumber();
        }
    }

    static Value
    makeBool(bool b)
    {
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = b;
        return v;
    }

    Value
    parseObject()
    {
        Value v;
        v.kind = Value::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    parseArray()
    {
        Value v;
        v.kind = Value::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out += '"';  break;
              case '\\': out += '\\'; break;
              case '/':  out += '/';  break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // The writer only escapes control characters, so a
                // one-byte mapping covers everything it emits;
                // other code points get a UTF-8 encoding.
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xC0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3F));
                } else {
                    out += char(0xE0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3F));
                    out += char(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Value
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            throw ParseError("bad number '" + tok + "'", start);
        Value out;
        out.kind = Value::Kind::Number;
        out.number = v;
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse one JSON document; throws ParseError on malformed input. */
inline Value
parse(const std::string &text)
{
    return detail::Parser(text).parseDocument();
}

namespace detail
{

/** Human-meaningful identity of an array element, if it has one. */
inline std::string
elementKey(const Value &v)
{
    if (!v.isObject())
        return "";
    for (const char *field :
         {"engine", "name", "label", "kernel", "design", "config"}) {
        const Value *f = v.find(field);
        if (f && f->isString() && !f->string.empty())
            return f->string;
    }
    return "";
}

inline void
flattenInto(const Value &v, const std::string &prefix,
            std::map<std::string, double> &out)
{
    switch (v.kind) {
      case Value::Kind::Number:
        out[prefix.empty() ? "value" : prefix] = v.number;
        break;
      case Value::Kind::Object:
        for (const auto &m : v.object)
            flattenInto(m.second,
                        prefix.empty() ? m.first
                                       : prefix + "." + m.first,
                        out);
        break;
      case Value::Kind::Array:
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            std::string key = elementKey(v.array[i]);
            if (key.empty())
                key = std::to_string(i);
            flattenInto(v.array[i], prefix + "." + key, out);
        }
        break;
      default:
        break; // strings/bools/nulls are not comparable metrics
    }
}

} // namespace detail

/**
 * Flatten every numeric leaf of a document into "a.b.c" -> value.
 * Array elements are keyed by their "engine"/"name"/"label"/...
 * string field when present (stable across runs even if the array
 * order changes), by index otherwise.
 */
inline std::map<std::string, double>
flattenNumbers(const Value &v)
{
    std::map<std::string, double> out;
    detail::flattenInto(v, "", out);
    return out;
}

} // namespace printed::bench::json

#endif // PRINTED_BENCH_JSON_MIN_HH
