/**
 * @file
 * Extension study: functional yield under gate-level fault
 * injection, and what redundancy hardening buys back.
 *
 * Section 3.1 treats every defective printed device as fatal, which
 * makes circuit yield decay geometrically in gate count - the
 * paper's headline argument for tiny cores. This bench measures how
 * pessimistic that is: seeded Monte-Carlo defect maps are overlaid
 * on gate-level TP-ISA cores, real workloads are executed, and each
 * map is classified fatal / workload-masked / fully benign. Larger
 * (Z80-class, openMSP430-class) designs are modeled as arrays of
 * TP-ISA cores at the published device counts, every replica drawn
 * and simulated independently. A second table prices the TMR
 * hardening passes (synth/harden.hh): analytic yield *drops* with
 * the added devices while measured functional yield climbs.
 *
 * Options: --trials N (default 1000), --threads N (0 = all cores),
 *          --seed S, --device-yield-ppm P (default 9999 = 99.99%),
 *          --json <path>.
 */

#include <chrono>
#include <iostream>

#include "analysis/fault.hh"
#include "analysis/yield.hh"
#include "bench_util.hh"
#include "core/generator.hh"
#include "legacy/cores.hh"
#include "synth/harden.hh"

using namespace printed;

namespace
{

struct DesignResult
{
    std::string name;
    std::size_t gates = 0;
    std::size_t devices = 0; ///< total, all replicas
    double wallMs = 0;       ///< Monte-Carlo wall clock
    FunctionalYieldReport r;
};

DesignResult
runDesign(const std::string &name, const Netlist &nl,
          const CoreConfig &cfg, const FunctionalYieldConfig &mc)
{
    DesignResult d;
    d.name = name;
    d.gates = nl.gateCount() * mc.replicas;
    const bench::WallTimer timer;
    d.r = measureFunctionalYield(nl, cfg, mc);
    d.wallMs = timer.elapsedMs();
    d.devices = d.r.devicesPerReplica * d.r.replicas;
    return d;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    const auto trials =
        unsigned(bench::uintFromArgs(argc, argv, "trials", 1000));
    const auto threads =
        unsigned(bench::uintFromArgs(argc, argv, "threads", 0));
    const auto seed = bench::uintFromArgs(argc, argv, "seed", 1);
    const double deviceYield =
        double(bench::uintFromArgs(argc, argv, "device-yield-ppm",
                                   9999)) /
        1e4;
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);

    bench::banner(
        "Extension: fault injection & functional yield",
        "Monte-Carlo gate-level defect maps vs the Section 3.1 "
        "analytic bound, and the cost/yield trade-off of "
        "TMR hardening");

    std::cout << "device yield " << 100 * deviceYield << "%, "
              << trials << " trials/design, seed " << seed << "\n\n";

    FunctionalYieldConfig mc;
    mc.fault.deviceYield = deviceYield;
    mc.fault.seed = seed;
    mc.trials = trials;
    mc.threads = threads;

    const auto t0 = std::chrono::steady_clock::now();

    std::vector<DesignResult> results;

    // --- TP-ISA single-cycle core, unhardened and hardened -------
    const CoreConfig p1 = CoreConfig::standard(1, 8, 2);
    const Netlist p1nl = buildCore(p1);
    mc.kernels = {Kernel::Mult, Kernel::THold};
    results.push_back(runDesign("TP-ISA p1_8_2", p1nl, p1, mc));

    synth::HardenReport seqRep, fullRep;
    const Netlist p1seq =
        synth::harden(p1nl, synth::HardenStrategy::TmrSequential,
                      &seqRep);
    results.push_back(
        runDesign("TP-ISA p1_8_2 +TMR-seq", p1seq, p1, mc));

    const Netlist p1full = synth::harden(
        p1nl, synth::HardenStrategy::TmrFull, &fullRep);
    results.push_back(
        runDesign("TP-ISA p1_8_2 +TMR-full", p1full, p1, mc));

    // --- TP-ISA two-stage pipeline -------------------------------
    const CoreConfig p2 = CoreConfig::standard(2, 8, 2);
    const Netlist p2nl = buildCore(p2);
    mc.kernels = {Kernel::Mult};
    results.push_back(runDesign("TP-ISA p2_8_2", p2nl, p2, mc));

    // --- Legacy-class gate counts as TP-ISA core arrays ----------
    // No gate-level netlists exist for the Table 4 cores (the paper
    // synthesized their RTL; we model them statistically), so their
    // published device counts are represented as arrays of p1_8_2
    // cores that must all print correctly - same devices, same
    // analytic yield, and every replica's defects simulated for
    // real.
    mc.kernels = {Kernel::Mult, Kernel::THold};
    const std::size_t p1devices = deviceCount(p1nl);
    using legacy::LegacyCore;
    for (LegacyCore core : {LegacyCore::Z80,
                            LegacyCore::OpenMsp430}) {
        const auto &spec = legacy::legacyCoreSpec(core);
        // ~2 devices per cell on the statistical mix, as in
        // bench_variation_yield.
        const std::size_t target = spec.egfet.gateCount * 2;
        mc.replicas = unsigned(
            std::max<std::size_t>(1, (target + p1devices / 2) /
                                         p1devices));
        results.push_back(runDesign(spec.name + "-class array",
                                    p1nl, p1, mc));
        mc.replicas = 1;
    }

    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // --- Scalar-engine cross-check -------------------------------
    // Re-run the first design on the scalar golden-reference engine:
    // the report must be bit-identical (same seeds, same trial
    // classification), and the wall-clock ratio is the measured
    // speedup of the 64-lane batch engine.
    mc.kernels = {Kernel::Mult, Kernel::THold};
    mc.engine = SimEngine::Scalar;
    const DesignResult scalarRef =
        runDesign(results[0].name, p1nl, p1, mc);
    mc.engine = SimEngine::Batch;
    const bool enginesAgree =
        scalarRef.r.fatalTrials == results[0].r.fatalTrials &&
        scalarRef.r.maskedTrials == results[0].r.maskedTrials &&
        scalarRef.r.benignTrials == results[0].r.benignTrials &&
        scalarRef.r.defectFreeTrials ==
            results[0].r.defectFreeTrials;
    const double speedup = scalarRef.wallMs / results[0].wallMs;

    // --- Report --------------------------------------------------
    TableWriter t({"Design", "Gates", "Devices", "analytic yield",
                   "MC defect-free", "functional yield", "masked",
                   "benign", "fatal"});
    for (const DesignResult &d : results) {
        t.addRow({d.name, std::to_string(d.gates),
                  std::to_string(d.devices),
                  TableWriter::num(d.r.analyticYield, 4),
                  TableWriter::num(d.r.defectFreeRate(), 4),
                  TableWriter::num(d.r.functionalYield(), 4),
                  std::to_string(d.r.maskedTrials),
                  std::to_string(d.r.benignTrials),
                  std::to_string(d.r.fatalTrials)});
    }
    t.print(std::cout);

    std::cout << "\nHardening cost (p1_8_2): TMR-seq "
              << seqRep.gatesBefore << " -> " << seqRep.gatesAfter
              << " gates (" << seqRep.votersInserted
              << " voters), TMR-full " << fullRep.gatesBefore
              << " -> " << fullRep.gatesAfter << " gates ("
              << fullRep.votersInserted << " voters)\n";
    std::cout << "Monte-Carlo wall time: "
              << TableWriter::fixed(elapsed, 1) << " s ("
              << results.size() << " designs, batch engine)\n";
    std::cout << "Engine check (" << results[0].name
              << "): scalar "
              << TableWriter::fixed(scalarRef.wallMs, 0)
              << " ms vs batch "
              << TableWriter::fixed(results[0].wallMs, 0)
              << " ms -> " << TableWriter::fixed(speedup, 1)
              << "x speedup, reports "
              << (enginesAgree ? "bit-identical" : "DIFFER") << "\n";

    // --- Invariant checks (the point of the experiment) ----------
    bool ok = true;
    for (const DesignResult &d : results) {
        if (d.r.functionalYield() + 1e-12 < d.r.analyticYield) {
            std::cout << "FAIL: functional yield below analytic "
                         "bound for " << d.name << "\n";
            ok = false;
        }
    }
    // Full TMR must beat the unhardened core - unless the latter
    // already prints perfectly and there is nothing left to win.
    // (TMR-seq is reported but not asserted: at this fault mix the
    // voters it adds expose more devices than the flops it
    // protects - selective state-only hardening is a net loss,
    // which is exactly the kind of result this bench exists to
    // surface.)
    const double unhardened = results[0].r.functionalYield();
    if (unhardened < 1.0 &&
        results[2].r.functionalYield() <= unhardened) {
        std::cout << "FAIL: " << results[2].name
                  << " does not beat the unhardened core\n";
        ok = false;
    }
    if (!enginesAgree) {
        std::cout << "FAIL: batch and scalar engines disagree on "
                  << results[0].name << "\n";
        ok = false;
    }

    std::cout
        << "\nTakeaway: at " << 100 * deviceYield
        << "% device yield the analytic bound undersells printed "
           "cores - a fifth to a half of real defect maps still "
           "compute every workload correctly - and TMR buys "
           "functional yield with area: the analytic yield of the "
           "hardened netlist is *lower* (more devices) while its "
           "measured functional yield is the highest of all "
           "configurations. Redundancy, not perfection, is the "
           "printable path to larger cores.\n";

    if (!jsonPath.empty()) {
        bench::JsonReport jr("bench_fault_yield");
        jr.meta("trials", trials);
        jr.meta("device_yield", deviceYield);
        jr.meta("seed", seed);
        jr.meta("wall_time_s", elapsed);
        jr.meta("engine", "batch");
        jr.meta("scalar_check_wall_ms", scalarRef.wallMs);
        jr.meta("batch_check_wall_ms", results[0].wallMs);
        jr.meta("speedup_vs_scalar", speedup);
        jr.meta("engines_agree", enginesAgree);
        for (const DesignResult &d : results) {
            jr.add("designs",
                   {{"name", d.name},
                    {"gates", d.gates},
                    {"devices", d.devices},
                    {"replicas", d.r.replicas},
                    {"wall_ms", d.wallMs},
                    {"analytic_yield", d.r.analyticYield},
                    {"defect_free_rate", d.r.defectFreeRate()},
                    {"functional_yield", d.r.functionalYield()},
                    {"masked_trials", d.r.maskedTrials},
                    {"benign_trials", d.r.benignTrials},
                    {"fatal_trials", d.r.fatalTrials}});
        }
        jr.add("hardening",
               {{"strategy", "TMR-seq"},
                {"gates_before", seqRep.gatesBefore},
                {"gates_after", seqRep.gatesAfter},
                {"voters", seqRep.votersInserted}});
        jr.add("hardening",
               {{"strategy", "TMR-full"},
                {"gates_before", fullRep.gatesBefore},
                {"gates_after", fullRep.gatesAfter},
                {"voters", fullRep.votersInserted}});
        jr.writeTo(jsonPath);
    }

    return ok ? 0 : 1;
}
