/**
 * @file
 * Reproduces Table 2: standard-cell characteristics of the EGFET
 * (VDD = 1 V) and CNT-TFT (VDD = 3 V) libraries.
 */

#include <iostream>

#include "bench_util.hh"
#include "tech/library.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Table 2",
                  "Standard cell characteristics (EGFET @ 1 V, "
                  "CNT-TFT @ 3 V)");

    const CellLibrary &eg = egfetLibrary();
    const CellLibrary &cnt = cntLibrary();

    TableWriter t({"Cell", "Area mm^2 (EG/CNT)", "Energy nJ (EG/CNT)",
                   "Rise us (EG/CNT)", "Fall us (EG/CNT)"});
    for (std::size_t i = 0; i < numCellKinds; ++i) {
        const auto kind = static_cast<CellKind>(i);
        const CellSpec &e = eg.cell(kind);
        const CellSpec &c = cnt.cell(kind);
        t.addRow({cellName(kind),
                  TableWriter::num(e.area_mm2) + " / " +
                      TableWriter::num(c.area_mm2),
                  TableWriter::num(e.energy_nJ) + " / " +
                      TableWriter::num(c.energy_nJ),
                  TableWriter::num(e.rise_us) + " / " +
                      TableWriter::num(c.rise_us),
                  TableWriter::num(e.fall_us) + " / " +
                      TableWriter::num(c.fall_us)});
    }
    t.print(std::cout);

    const double dff_vs_nand_area =
        eg.cell(CellKind::DFFX1).area_mm2 /
        eg.cell(CellKind::NAND2X1).area_mm2;
    std::cout << "\nKey architectural driver: an EGFET DFF costs "
              << TableWriter::fixed(dff_vs_nand_area, 1)
              << "x the area of a NAND2 (and proportionally more "
                 "energy), which is why single-stage, register-poor "
                 "cores win (Section 5).\n";
    return 0;
}
