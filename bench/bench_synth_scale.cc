/**
 * @file
 * Extension study: million-gate hierarchical synthesis throughput.
 *
 * The paper's flow synthesizes sub-1000-gate cores one at a time;
 * this bench measures what the arena/SoA netlist core and the
 * hierarchical block layer buy at scale. It sizes a tiled
 * many-core design (grid of TP-ISA cores + crossbar scratchpads)
 * to --target-gates, then times every phase of the hierarchical
 * flow:
 *
 *   elaborate   buildTiledDesign (template stamping)
 *   optimize    per-block synth::optimize over a ThreadPool
 *               -> the headline synth.gates_per_s figure
 *   flatten     serial deterministic hier::Design::flatten
 *   analyze     per-block characterization + design roll-up
 *
 * Self-checks (printed "FAIL:" + exit 1 on violation):
 *   - thread determinism: a small grid optimized with 1 / N / 16
 *     threads flattens to bit-identical netlists;
 *   - rewire engines: the O(fanout) use-index rewireUses and the
 *     O(gates) scan oracle produce identical netlists (their
 *     timing ratio is the use-index speedup figure).
 *
 * Options:
 *   --target-gates N  design size to synthesize (default 1000000)
 *   --threads N       worker threads (0 = hardware concurrency)
 *   --rows R/--cols C explicit grid (overrides --target-gates)
 *   --mem-words N     scratchpad words per tile (default 4)
 *   --json PATH       machine-readable report
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/tiled.hh"
#include "netlist/hier.hh"
#include "synth/opt.hh"
#include "tech/library.hh"

namespace
{

using namespace printed;

/** Bit-identity of two flattened netlists. */
bool
identical(const Netlist &a, const Netlist &b)
{
    if (a.netCount() != b.netCount() ||
        a.gateCount() != b.gateCount() ||
        a.cellHistogram() != b.cellHistogram())
        return false;
    for (GateId gi = 0; gi < a.gateCount(); ++gi)
        if (!(a.gate(gi) == b.gate(gi)))
            return false;
    return true;
}

/**
 * Thread-determinism self-check on a small grid: optimize with
 * several thread counts, flatten, require bit-identity.
 */
bool
determinismCheck(unsigned benchThreads)
{
    const TiledConfig cfg = [] {
        TiledConfig c;
        c.rows = 2;
        c.cols = 2;
        return c;
    }();
    std::vector<Netlist> flats;
    for (unsigned threads : {1u, benchThreads, 16u}) {
        hier::Design d = buildTiledDesign(cfg);
        ThreadPool pool(threads);
        d.optimizeBlocks(pool);
        flats.push_back(d.flatten());
    }
    return identical(flats[0], flats[1]) &&
           identical(flats[0], flats[2]);
}

/** Rewire-engine comparison result. */
struct RewireResult
{
    bool agree = false;
    double indexMs = 0;
    double scanMs = 0;
    std::size_t rewires = 0;
};

/**
 * Replay an identical random rewire schedule through the
 * maintained use-index and through the O(gates) scan oracle.
 */
RewireResult
rewireComparison()
{
    TiledConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    hier::Design d = buildTiledDesign(cfg);
    ThreadPool pool(1);
    d.optimizeBlocks(pool);
    Netlist byIndex = d.flatten();
    Netlist byScan = byIndex;

    // The schedule an optimizer would issue: redirect readers of a
    // gate-driven net onto some other net.
    std::vector<std::pair<NetId, NetId>> moves;
    Rng rng(0xca11ab1e);
    while (moves.size() < 1000) {
        const NetId from = NetId(rng.below(byIndex.netCount()));
        const NetId to = NetId(rng.below(byIndex.netCount()));
        if (from != to &&
            byIndex.netSource(from) == NetSource::GateOutput &&
            byIndex.netSource(to) != NetSource::Undriven)
            moves.emplace_back(from, to);
    }

    RewireResult r;
    r.rewires = moves.size();
    const bench::WallTimer ti;
    for (const auto &m : moves)
        byIndex.rewireUses(m.first, m.second);
    r.indexMs = ti.elapsedMs();
    const bench::WallTimer ts;
    for (const auto &m : moves)
        byScan.rewireUsesByScan(m.first, m.second);
    r.scanMs = ts.elapsedMs();
    r.agree = identical(byIndex, byScan);
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const std::size_t targetGates =
        bench::uintFromArgs(argc, argv, "target-gates", 1000000);
    unsigned threads =
        unsigned(bench::uintFromArgs(argc, argv, "threads", 0));
    if (threads == 0)
        threads = ThreadPool::defaultThreadCount();
    const unsigned rowsArg =
        unsigned(bench::uintFromArgs(argc, argv, "rows", 0));
    const unsigned colsArg =
        unsigned(bench::uintFromArgs(argc, argv, "cols", 0));
    const unsigned memWords =
        unsigned(bench::uintFromArgs(argc, argv, "mem-words", 4));

    bench::JsonReport jr("bench_synth_scale");
    const bench::WallTimer timer;

    bench::banner("Extension: million-gate synthesis",
                  "hierarchical parallel synthesis over the "
                  "arena/SoA netlist core");

    // ------------------------------------------------------------
    // Size the grid
    // ------------------------------------------------------------
    TiledConfig base;
    base.memWords = memWords;
    TiledConfig cfg;
    if (rowsArg != 0 && colsArg != 0) {
        cfg = base;
        cfg.rows = rowsArg;
        cfg.cols = colsArg;
        cfg.check();
    } else {
        cfg = tiledConfigForGates(targetGates, base);
    }
    std::cout << "Design: " << cfg.label() << " — "
              << cfg.tiles() << " tiles (" << cfg.rows << "x"
              << cfg.cols << "), 2 blocks/tile\n\n";

    // ------------------------------------------------------------
    // The hierarchical flow, phase by phase
    // ------------------------------------------------------------
    const bench::WallTimer tElab;
    hier::Design d = buildTiledDesign(cfg);
    const double elaborateMs = tElab.elapsedMs();
    const std::size_t gatesPre = d.gateCount();

    ThreadPool pool(threads);
    const bench::WallTimer tOpt;
    const std::size_t optimized = d.optimizeBlocks(pool);
    const double optimizeMs = tOpt.elapsedMs();
    const std::size_t gatesPost = d.gateCount();
    const double gatesPerS =
        optimizeMs > 0 ? 1000.0 * double(gatesPre) / optimizeMs : 0;
    metrics::gauge("synth.gates_per_s").set(gatesPerS);

    const bench::WallTimer tFlat;
    const Netlist flat = d.flatten();
    const double flattenMs = tFlat.elapsedMs();
    const double flattenPerS =
        flattenMs > 0 ? 1000.0 * double(flat.gateCount()) / flattenMs
                      : 0;
    metrics::gauge("synth.flatten_gates_per_s").set(flattenPerS);

    const bench::WallTimer tChar;
    const hier::DesignCharacterization ch =
        d.characterizeDesign(pool, egfetLibrary());
    const double charMs = tChar.elapsedMs();

    TableWriter t({"Phase", "wall ms", "gates/s"});
    t.addRow({"elaborate", TableWriter::fixed(elaborateMs, 1),
              TableWriter::fixed(
                  elaborateMs > 0
                      ? 1000.0 * double(gatesPre) / elaborateMs
                      : 0, 0)});
    t.addRow({"optimize (" + std::to_string(threads) + " thr)",
              TableWriter::fixed(optimizeMs, 1),
              TableWriter::fixed(gatesPerS, 0)});
    t.addRow({"flatten", TableWriter::fixed(flattenMs, 1),
              TableWriter::fixed(flattenPerS, 0)});
    t.addRow({"characterize", TableWriter::fixed(charMs, 1), "-"});
    t.print(std::cout);

    std::cout << "\nGates: " << gatesPre << " elaborated -> "
              << gatesPost << " optimized (" << flat.gateCount()
              << " flat, " << flat.netCount() << " nets); "
              << optimized << " blocks optimized\n";
    std::cout << "Design: fmax "
              << TableWriter::fixed(ch.fmaxHz, 2) << " Hz, area "
              << TableWriter::fixed(ch.areaCm2, 1) << " cm^2, "
              << TableWriter::fixed(ch.powerMw, 1)
              << " mW at fmax\n\n";

    // ------------------------------------------------------------
    // Thread-scaling efficiency (calibration subset, so the
    // default million-gate run is not doubled)
    // ------------------------------------------------------------
    double scalingT1Ms = 0, scalingTNMs = 0, efficiency = 1;
    {
        TiledConfig cal = base;
        cal.rows = 4;
        cal.cols = std::min(8u, std::max(1u, cfg.cols));
        hier::Design a = buildTiledDesign(cal);
        const bench::WallTimer t1;
        ThreadPool one(1);
        a.optimizeBlocks(one);
        scalingT1Ms = t1.elapsedMs();
        hier::Design b = buildTiledDesign(cal);
        const bench::WallTimer tn;
        b.optimizeBlocks(pool);
        scalingTNMs = tn.elapsedMs();
        efficiency = scalingTNMs > 0
                         ? scalingT1Ms / (threads * scalingTNMs)
                         : 0;
        std::cout << "Thread scaling (grid " << cal.rows << "x"
                  << cal.cols << "): "
                  << TableWriter::fixed(scalingT1Ms, 1)
                  << " ms @1 thr vs "
                  << TableWriter::fixed(scalingTNMs, 1) << " ms @"
                  << threads << " thr -> efficiency "
                  << TableWriter::fixed(100 * efficiency, 0)
                  << "%\n";
    }

    // ------------------------------------------------------------
    // Self-checks
    // ------------------------------------------------------------
    const bool deterministic = determinismCheck(threads);
    if (deterministic) {
        std::cout << "Determinism: flattened netlists bit-identical "
                     "across --threads 1/"
                  << threads << "/16\n";
    } else {
        std::cout << "FAIL: flattened netlist differs across "
                     "thread counts\n";
    }

    const RewireResult rw = rewireComparison();
    if (rw.agree) {
        std::cout << "Rewire engines: use-index and scan oracle "
                     "agree over "
                  << rw.rewires << " rewires ("
                  << TableWriter::fixed(rw.indexMs, 2)
                  << " ms vs "
                  << TableWriter::fixed(rw.scanMs, 2)
                  << " ms, "
                  << TableWriter::fixed(
                         rw.indexMs > 0 ? rw.scanMs / rw.indexMs
                                        : 0, 1)
                  << "x)\n";
    } else {
        std::cout << "FAIL: use-index rewire disagrees with the "
                     "scan oracle\n";
    }

    std::cout << "\nTakeaway: the paper's flow stops at ~1000-gate "
                 "cores; with per-block optimization fanned over a "
                 "thread pool and an O(fanout) use-index, the same "
                 "toolchain synthesizes a million-gate tiled "
                 "many-core deterministically — the flattened "
                 "design is bit-identical for every thread "
                 "count.\n";

    if (!jsonPath.empty()) {
        jr.meta("target_gates", targetGates);
        jr.meta("threads", threads);
        jr.meta("rows", cfg.rows);
        jr.meta("cols", cfg.cols);
        jr.meta("tiles", cfg.tiles());
        jr.meta("blocks", d.blockCount());
        jr.meta("gates_pre_opt", gatesPre);
        jr.meta("gates_post_opt", gatesPost);
        jr.meta("flat_gates", flat.gateCount());
        jr.meta("flat_nets", flat.netCount());
        jr.meta("elaborate_ms", elaborateMs);
        jr.meta("optimize_ms", optimizeMs);
        jr.meta("flatten_ms", flattenMs);
        jr.meta("characterize_ms", charMs);
        jr.meta("synth_gates_per_s", gatesPerS);
        jr.meta("flatten_gates_per_s", flattenPerS);
        jr.meta("scaling_t1_ms", scalingT1Ms);
        jr.meta("scaling_tn_ms", scalingTNMs);
        jr.meta("scaling_efficiency", efficiency);
        jr.meta("design_fmax_hz", ch.fmaxHz);
        jr.meta("design_area_cm2", ch.areaCm2);
        jr.meta("design_power_mw", ch.powerMw);
        jr.meta("determinism_ok", deterministic);
        jr.meta("rewire_engines_agree", rw.agree);
        jr.meta("rewire_index_ms", rw.indexMs);
        jr.meta("rewire_scan_ms", rw.scanMs);
        jr.meta("wall_ms", timer.elapsedMs());
        jr.writeTo(jsonPath);
    }
    return deterministic && rw.agree ? 0 : 1;
}
