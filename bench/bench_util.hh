/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: a
 * uniform header banner, paper-vs-measured comparison lines, and a
 * small JSON report writer so benches can emit machine-readable
 * results (--json <path>) for trajectory tracking alongside the
 * human-readable tables.
 */

#ifndef PRINTED_BENCH_BENCH_UTIL_HH
#define PRINTED_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/json_min.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/table.hh"
#include "common/trace.hh"

namespace printed::bench
{

// The escaping helpers moved to common/json_min.hh when the JSON
// layer was promoted for the evaluation service; these aliases keep
// the bench-side spelling working.
using json::jsonEscape;
using json::jsonQuote;

/** Print the standard banner for one reproduced artifact. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::cout << "\n=== " << artifact << " ===\n"
              << caption << "\n\n";
}

/** Print one paper-vs-measured comparison line. */
inline void
compare(const std::string &what, double paper, double measured,
        const std::string &unit = "")
{
    const double ratio = paper != 0 ? measured / paper : 0.0;
    std::cout << "  " << std::left << std::setw(44) << what
              << " paper " << std::setw(10) << paper << " measured "
              << std::setw(10) << measured;
    if (!unit.empty())
        std::cout << " " << unit;
    std::cout << "  (x" << std::setprecision(3) << ratio << ")\n"
              << std::setprecision(6);
}

// ----------------------------------------------------------------
// JSON reporting
// ----------------------------------------------------------------

/** One pre-rendered JSON scalar (string, number, or bool). */
class JsonValue
{
  public:
    JsonValue(const char *s) : text_(jsonQuote(s)) {}
    JsonValue(const std::string &s) : text_(jsonQuote(s)) {}
    JsonValue(bool v) : text_(v ? "true" : "false") {}
    JsonValue(double v) { render(v); }

    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    JsonValue(T v) : text_(std::to_string(v))
    {}

    const std::string &text() const { return text_; }

  private:
    void
    render(double v)
    {
        if (!std::isfinite(v)) {
            text_ = "null"; // JSON has no inf/nan
            return;
        }
        std::ostringstream os;
        os << std::setprecision(12) << v;
        text_ = os.str();
    }

    std::string text_;
};

/** One JSON object, built as ordered key/value pairs. */
using JsonRecord = std::vector<std::pair<std::string, JsonValue>>;

/**
 * Accumulates named record arrays plus top-level scalars and writes
 * them as one JSON document:
 *
 *   { "bench": "...", "<scalar>": ..., "<array>": [ {...}, ... ] }
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench_name)
        : bench_(std::move(bench_name))
    {}

    /** Set a top-level scalar (e.g. the parameters of the run). */
    void
    meta(const std::string &key, JsonValue value)
    {
        meta_.emplace_back(key, std::move(value));
    }

    /** Append one record to the named array (created on first use). */
    void
    add(const std::string &array, JsonRecord record)
    {
        for (auto &a : arrays_) {
            if (a.first == array) {
                a.second.push_back(std::move(record));
                return;
            }
        }
        arrays_.push_back({array, {std::move(record)}});
    }

    /**
     * Whether write() appends the uniform "metrics" block (a
     * snapshot of the process metrics registry). On by default;
     * tests that compare exact document text turn it off.
     */
    void enableMetrics(bool on) { metricsBlock_ = on; }

    void
    write(std::ostream &os) const
    {
        os << "{\n  \"bench\": " << JsonValue(bench_).text();
        for (const auto &m : meta_)
            os << ",\n  " << JsonValue(m.first).text() << ": "
               << m.second.text();
        for (const auto &a : arrays_) {
            os << ",\n  " << JsonValue(a.first).text() << ": [\n";
            for (std::size_t i = 0; i < a.second.size(); ++i) {
                os << "    {";
                const JsonRecord &rec = a.second[i];
                for (std::size_t f = 0; f < rec.size(); ++f)
                    os << (f ? ", " : "")
                       << JsonValue(rec[f].first).text() << ": "
                       << rec[f].second.text();
                os << "}" << (i + 1 < a.second.size() ? "," : "")
                   << "\n";
            }
            os << "  ]";
        }
        if (metricsBlock_)
            writeMetrics(os);
        os << "\n}\n";
    }

    /** Write to a file; fatal() if the file cannot be opened. */
    void
    writeTo(const std::string &path) const
    {
        std::ofstream os(path);
        fatalIf(!os, "cannot open JSON output file '" + path + "'");
        write(os);
        std::cout << "\nJSON report written to " << path << "\n";
    }

  private:
    /**
     * The uniform "metrics" block: a snapshot of every registered
     * counter, gauge, and distribution summary, in registry (name)
     * order. Same vocabulary in every bench report.
     */
    void
    writeMetrics(std::ostream &os) const
    {
        const metrics::Snapshot snap =
            metrics::Registry::global().snapshot();
        os << ",\n  \"metrics\": {\n    \"counters\": {";
        for (std::size_t i = 0; i < snap.counters.size(); ++i)
            os << (i ? ", " : "")
               << JsonValue(snap.counters[i].first).text() << ": "
               << snap.counters[i].second;
        os << "},\n    \"gauges\": {";
        for (std::size_t i = 0; i < snap.gauges.size(); ++i)
            os << (i ? ", " : "")
               << JsonValue(snap.gauges[i].first).text() << ": "
               << JsonValue(snap.gauges[i].second).text();
        os << "},\n    \"distributions\": {";
        for (std::size_t i = 0; i < snap.distributions.size(); ++i) {
            const auto &[name, s] = snap.distributions[i];
            os << (i ? ", " : "") << JsonValue(name).text()
               << ": {\"count\": " << s.count
               << ", \"mean\": " << JsonValue(s.mean).text()
               << ", \"p50\": " << JsonValue(s.p50).text()
               << ", \"p95\": " << JsonValue(s.p95).text()
               << ", \"max\": " << JsonValue(s.max).text() << "}";
        }
        os << "}\n  }";
    }

    std::string bench_;
    JsonRecord meta_;
    std::vector<std::pair<std::string, std::vector<JsonRecord>>>
        arrays_;
    bool metricsBlock_ = true;
};

/**
 * Wall-clock stopwatch for the perf-trajectory fields of the
 * --json reports (BENCH_*.json): construction starts the clock.
 */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Milliseconds elapsed since construction. */
    double
    elapsedMs() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Value of "--json <path>" in argv, or "" when absent. A bare
 * "--json" (last argument, or followed by another "--flag") uses
 * `flagOnlyFallback` when one is provided, so invocations like
 * "--json --trace-out t.json" don't swallow the next flag as the
 * report path.
 */
inline std::string
jsonPathFromArgs(int argc, char **argv,
                 const std::string &flagOnlyFallback = "")
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) != "--json")
            continue;
        if (i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0)
            return argv[i + 1];
        return flagOnlyFallback;
    }
    return "";
}

/**
 * Set up tracing for a bench main(): honours the PRINTED_TRACE
 * environment variable (via trace::initFromEnv) and a
 * "--trace-out <path>" argument (which wins when both are given),
 * and names the calling thread for the trace viewer. Call it first
 * thing in main().
 */
inline void
initObservability(int argc, char **argv)
{
    trace::initFromEnv();
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--trace-out")
            trace::enable(argv[i + 1]);
    trace::setThreadName("main");
}

/** Value of "--<name> <integer>" in argv, or fallback when absent. */
inline std::uint64_t
uintFromArgs(int argc, char **argv, const std::string &name,
             std::uint64_t fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) != "--" + name)
            continue;
        try {
            return std::stoull(argv[i + 1]);
        } catch (const std::exception &) {
            fatal("--" + name + " expects an unsigned integer, got '" +
                  std::string(argv[i + 1]) + "'");
        }
    }
    return fallback;
}

} // namespace printed::bench

#endif // PRINTED_BENCH_BENCH_UTIL_HH
