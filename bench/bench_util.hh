/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: a
 * uniform header banner and paper-vs-measured comparison lines so
 * every bench prints in the same style.
 */

#ifndef PRINTED_BENCH_BENCH_UTIL_HH
#define PRINTED_BENCH_BENCH_UTIL_HH

#include <iomanip>
#include <iostream>
#include <string>

#include "common/table.hh"

namespace printed::bench
{

/** Print the standard banner for one reproduced artifact. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::cout << "\n=== " << artifact << " ===\n"
              << caption << "\n\n";
}

/** Print one paper-vs-measured comparison line. */
inline void
compare(const std::string &what, double paper, double measured,
        const std::string &unit = "")
{
    const double ratio = paper != 0 ? measured / paper : 0.0;
    std::cout << "  " << std::left << std::setw(44) << what
              << " paper " << std::setw(10) << paper << " measured "
              << std::setw(10) << measured;
    if (!unit.empty())
        std::cout << " " << unit;
    std::cout << "  (x" << std::setprecision(3) << ratio << ")\n"
              << std::setprecision(6);
}

} // namespace printed::bench

#endif // PRINTED_BENCH_BENCH_UTIL_HH
