/**
 * @file
 * Reproduces the abstract's program-specific headline: the
 * specialized ISA improves core power and area by up to 4.18x and
 * 1.93x, and benchmark energy by up to 2.59x (largest on 8-bit
 * kernels - Section 8).
 */

#include <algorithm>
#include <iostream>

#include "analysis/characterize.hh"
#include "bench_util.hh"
#include "core/generator.hh"
#include "dse/system_eval.hh"
#include "progspec/analyze.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Headline: program-specific ISA",
                  "Core power/area and benchmark energy gains of "
                  "specialization (EGFET, 8-bit kernels)");

    const Kernel kernels[] = {Kernel::Mult, Kernel::Div,
                              Kernel::InSort, Kernel::IntAvg,
                              Kernel::THold, Kernel::Crc8,
                              Kernel::DTree};

    const CoreConfig std_cfg = CoreConfig::standard(1, 8, 2);
    const Characterization std_ch =
        characterize(buildCore(std_cfg), egfetLibrary());

    TableWriter t({"Benchmark", "core power gain x",
                   "core area gain x", "energy gain x"});
    double best_power = 0, best_area = 0, best_energy = 0;
    for (Kernel k : kernels) {
        const Workload wl = makeWorkload(k, 8, 8);
        const CoreConfig ps_cfg =
            specializedConfig(wl.program, wl.dmemWords);
        const Characterization ps_ch =
            characterize(buildCore(ps_cfg), egfetLibrary());
        // Compare power at the standard core's operating point so
        // the gain reflects the hardware, not a frequency shift.
        const double std_power = std_ch.powerMw();
        const double ps_power =
            analyzePower(buildCore(ps_cfg), egfetLibrary(),
                         std_ch.fmaxHz())
                .total_mW;

        const auto std_eval =
            evaluateSystem(wl, std_cfg, TechKind::EGFET);
        const auto ps_eval =
            evaluateSpecializedSystem(wl, TechKind::EGFET);

        const double pg = std_power / ps_power;
        const double ag = std_ch.areaCm2() / ps_ch.areaCm2();
        const double eg =
            std_eval.energyTotal() / ps_eval.energyTotal();
        best_power = std::max(best_power, pg);
        best_area = std::max(best_area, ag);
        best_energy = std::max(best_energy, eg);
        t.addRow({kernelName(k), TableWriter::fixed(pg, 2),
                  TableWriter::fixed(ag, 2),
                  TableWriter::fixed(eg, 2)});
    }
    t.print(std::cout);

    std::cout << "\nBest-case gains (paper | measured):\n";
    bench::compare("core power", 4.18, best_power, "x");
    bench::compare("core area", 1.93, best_area, "x");
    bench::compare("benchmark energy", 2.59, best_energy, "x");
    return 0;
}
