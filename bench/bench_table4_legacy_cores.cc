/**
 * @file
 * Reproduces Table 4: characterization of the pre-existing cores
 * (openMSP430, Z80, light8080, ZPU_small) in both technologies.
 * Published values are shown next to our statistical-model
 * outputs (area and power re-derived from the cell-mix model
 * through the same engine that characterizes TP-ISA cores).
 *
 * Options:
 *   --threads N   evaluate the core x technology matrix in
 *                 parallel (0 = hardware concurrency; output is
 *                 bit-identical for every N)
 *   --json PATH   machine-readable report with wall-clock timing
 */

#include <iostream>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "legacy/cores.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    using namespace printed::legacy;
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned threads =
        unsigned(bench::uintFromArgs(argc, argv, "threads", 1));
    bench::JsonReport jr("bench_table4_legacy_cores");
    const bench::WallTimer timer;

    bench::banner("Table 4",
                  "Pre-existing CPUs in EGFET@1V / CNT-TFT@3V "
                  "(paper value | our model)");

    // One work item per (core, technology) cell of the table;
    // results land in index-ordered slots, so the table below reads
    // identically for any thread count.
    const std::size_t n = allLegacyCores.size();
    const auto models = parallelMap(threads, 2 * n, [&](std::size_t i) {
        const LegacyCore core = allLegacyCores[i / 2];
        const TechKind tech =
            (i % 2) ? TechKind::CNT_TFT : TechKind::EGFET;
        return modelLegacyCore(core, tech);
    });

    TableWriter t({"CPU", "width-ALU", "ISA", "CPI",
                   "Fmax Hz (EG/CNT)", "Gates (EG/CNT)",
                   "Area cm^2 (EG: paper|model / CNT: paper|model)",
                   "Power mW (EG: paper|model / CNT: paper|model)"});

    for (std::size_t c = 0; c < n; ++c) {
        const LegacyCoreSpec &s = legacyCoreSpec(allLegacyCores[c]);
        const auto &eg = models[2 * c];
        const auto &cn = models[2 * c + 1];
        t.addRow({
            s.name,
            std::to_string(s.datawidth) + "-" +
                std::to_string(s.aluWidth),
            s.isaStyle,
            std::to_string(s.cpiMin) + "-" +
                std::to_string(s.cpiMax),
            TableWriter::num(s.egfet.fmaxHz) + " / " +
                TableWriter::num(s.cnt.fmaxHz),
            std::to_string(s.egfet.gateCount) + " / " +
                std::to_string(s.cnt.gateCount),
            TableWriter::fixed(s.egfet.areaCm2, 2) + "|" +
                TableWriter::fixed(eg.area.totalCm2(), 2) + " / " +
                TableWriter::fixed(s.cnt.areaCm2, 2) + "|" +
                TableWriter::fixed(cn.area.totalCm2(), 2),
            TableWriter::fixed(s.egfet.powerMw, 1) + "|" +
                TableWriter::fixed(eg.powerAtFmax.total_mW, 1) +
                " / " + TableWriter::fixed(s.cnt.powerMw, 1) + "|" +
                TableWriter::fixed(cn.powerAtFmax.total_mW, 1),
        });
        jr.add("cores",
               {{"cpu", s.name},
                {"egfet_area_cm2_paper", s.egfet.areaCm2},
                {"egfet_area_cm2_model", eg.area.totalCm2()},
                {"egfet_power_mw_paper", s.egfet.powerMw},
                {"egfet_power_mw_model", eg.powerAtFmax.total_mW},
                {"cnt_area_cm2_paper", s.cnt.areaCm2},
                {"cnt_area_cm2_model", cn.area.totalCm2()},
                {"cnt_power_mw_paper", s.cnt.powerMw},
                {"cnt_power_mw_model", cn.powerAtFmax.total_mW}});
    }
    t.print(std::cout);

    std::cout << "\nCalibrated combinational depths (cells on the "
                 "critical path implied by the published fmax):\n";
    for (std::size_t c = 0; c < n; ++c) {
        std::cout << "  " << legacyCoreSpec(allLegacyCores[c]).name
                  << ": EGFET " << models[2 * c].calibratedDepth
                  << ", CNT-TFT "
                  << models[2 * c + 1].calibratedDepth << "\n";
        jr.add("depths",
               {{"cpu", legacyCoreSpec(allLegacyCores[c]).name},
                {"egfet_depth", models[2 * c].calibratedDepth},
                {"cnt_depth", models[2 * c + 1].calibratedDepth}});
    }

    if (!jsonPath.empty()) {
        jr.meta("threads", threads);
        jr.meta("wall_ms", timer.elapsedMs());
        jr.writeTo(jsonPath);
    }
    return 0;
}
