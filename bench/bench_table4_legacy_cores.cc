/**
 * @file
 * Reproduces Table 4: characterization of the pre-existing cores
 * (openMSP430, Z80, light8080, ZPU_small) in both technologies.
 * Published values are shown next to our statistical-model
 * outputs (area and power re-derived from the cell-mix model
 * through the same engine that characterizes TP-ISA cores).
 */

#include <iostream>

#include "bench_util.hh"
#include "legacy/cores.hh"

int
main()
{
    using namespace printed;
    using namespace printed::legacy;
    bench::banner("Table 4",
                  "Pre-existing CPUs in EGFET@1V / CNT-TFT@3V "
                  "(paper value | our model)");

    TableWriter t({"CPU", "width-ALU", "ISA", "CPI",
                   "Fmax Hz (EG/CNT)", "Gates (EG/CNT)",
                   "Area cm^2 (EG: paper|model / CNT: paper|model)",
                   "Power mW (EG: paper|model / CNT: paper|model)"});

    for (LegacyCore core : allLegacyCores) {
        const LegacyCoreSpec &s = legacyCoreSpec(core);
        const auto eg = modelLegacyCore(core, TechKind::EGFET);
        const auto cn = modelLegacyCore(core, TechKind::CNT_TFT);
        t.addRow({
            s.name,
            std::to_string(s.datawidth) + "-" +
                std::to_string(s.aluWidth),
            s.isaStyle,
            std::to_string(s.cpiMin) + "-" +
                std::to_string(s.cpiMax),
            TableWriter::num(s.egfet.fmaxHz) + " / " +
                TableWriter::num(s.cnt.fmaxHz),
            std::to_string(s.egfet.gateCount) + " / " +
                std::to_string(s.cnt.gateCount),
            TableWriter::fixed(s.egfet.areaCm2, 2) + "|" +
                TableWriter::fixed(eg.area.totalCm2(), 2) + " / " +
                TableWriter::fixed(s.cnt.areaCm2, 2) + "|" +
                TableWriter::fixed(cn.area.totalCm2(), 2),
            TableWriter::fixed(s.egfet.powerMw, 1) + "|" +
                TableWriter::fixed(eg.powerAtFmax.total_mW, 1) +
                " / " + TableWriter::fixed(s.cnt.powerMw, 1) + "|" +
                TableWriter::fixed(cn.powerAtFmax.total_mW, 1),
        });
    }
    t.print(std::cout);

    std::cout << "\nCalibrated combinational depths (cells on the "
                 "critical path implied by the published fmax):\n";
    for (LegacyCore core : allLegacyCores) {
        const auto eg = modelLegacyCore(core, TechKind::EGFET);
        const auto cn = modelLegacyCore(core, TechKind::CNT_TFT);
        std::cout << "  " << legacyCoreSpec(core).name << ": EGFET "
                  << eg.calibratedDepth << ", CNT-TFT "
                  << cn.calibratedDepth << "\n";
    }
    return 0;
}
