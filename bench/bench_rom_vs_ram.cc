/**
 * @file
 * Reproduces the abstract's instruction-memory headline: the
 * crosspoint ROM outperforms a RAM-based design by 5.77x power,
 * 16.8x area, and 2.42x delay (per Table 6 device data), plus the
 * whole-memory comparison including ROM periphery.
 */

#include <iostream>

#include "bench_util.hh"
#include "mem/compare.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;
    bench::banner("Headline: ROM vs RAM",
                  "Crosspoint instruction ROM vs RAM-based design "
                  "(EGFET)");

    const RomVsRam dev = romVsRamPerDevice();
    std::cout << "Per-device (paper | measured):\n";
    bench::compare("power gain", 5.77, dev.powerGain, "x");
    bench::compare("area gain", 16.8, dev.areaGain, "x");
    bench::compare("delay gain", 2.42, dev.delayGain, "x");

    std::cout << "\nWhole 256x24 instruction memory (including ROM "
                 "periphery and RAM static draw):\n";
    const RomVsRam mem = romVsRamForMemory(256, 24);
    std::cout << "  power x" << mem.powerGain << ", area x"
              << mem.areaGain << ", delay x" << mem.delayGain
              << "\n";
    return 0;
}
