/**
 * @file
 * Ablation studies of the design choices DESIGN.md calls out, plus
 * the paper's Section 8 future-work directions for CNT-TFT:
 *
 *  A. ALU result mux: tri-state bus (our default) vs. AND-OR
 *     one-hot mux - quantifies why the printed library includes
 *     TSBUFX1.
 *  B. BAR count: what the 4-BAR variant costs over 2 BARs.
 *  C. CNT-TFT loop buffer: Section 8 notes CNT execution is
 *     dominated by the 302 us ROM latency and suggests an
 *     instruction cache. We model a small loop buffer (every
 *     kernel's loop fits 16 entries) and report the speedup.
 *  D. CNT-TFT frequency matching: clocking the CNT core down to
 *     the ROM latency, as the paper suggests, to fit printed
 *     battery power budgets.
 */

#include <algorithm>
#include <iostream>

#include "analysis/characterize.hh"
#include "apps/battery.hh"
#include "arch/machine.hh"
#include "bench_util.hh"
#include "core/generator.hh"
#include "dse/system_eval.hh"
#include "mem/rom.hh"

int
main(int argc, char **argv)
{
    printed::bench::initObservability(argc, argv);
    using namespace printed;

    // ---------- A. Result-mux topology ---------------------------
    bench::banner("Ablation A",
                  "ALU result mux: tri-state bus vs AND-OR one-hot "
                  "(EGFET p1 cores)");
    {
        TableWriter t({"Core", "TSBUF cells", "AND-OR cells",
                       "TSBUF area cm^2", "AND-OR area cm^2",
                       "area saved"});
        for (unsigned w : {8u, 16u, 32u}) {
            CoreConfig ts = CoreConfig::standard(1, w, 2);
            CoreConfig ao = ts;
            ao.tristateResultMux = false;
            const auto ch_ts =
                characterize(buildCore(ts), egfetLibrary());
            const auto ch_ao =
                characterize(buildCore(ao), egfetLibrary());
            t.addRow({ts.label(),
                      std::to_string(ch_ts.gateCount()),
                      std::to_string(ch_ao.gateCount()),
                      TableWriter::fixed(ch_ts.areaCm2(), 2),
                      TableWriter::fixed(ch_ao.areaCm2(), 2),
                      TableWriter::fixed(
                          100 * (1 - ch_ts.areaCm2() /
                                         ch_ao.areaCm2()), 1) +
                          "%"});
        }
        t.print(std::cout);
    }

    // ---------- B. BAR count cost ---------------------------------
    bench::banner("Ablation B", "Cost of 4 BARs over 2 (EGFET p1)");
    {
        TableWriter t({"Width", "2-BAR mW", "4-BAR mW", "2-BAR cm^2",
                       "4-BAR cm^2"});
        for (unsigned w : {8u, 16u, 32u}) {
            const auto two = characterize(
                buildCore(CoreConfig::standard(1, w, 2)),
                egfetLibrary());
            const auto four = characterize(
                buildCore(CoreConfig::standard(1, w, 4)),
                egfetLibrary());
            t.addRow({std::to_string(w),
                      TableWriter::fixed(two.powerMw(), 1),
                      TableWriter::fixed(four.powerMw(), 1),
                      TableWriter::fixed(two.areaCm2(), 2),
                      TableWriter::fixed(four.areaCm2(), 2)});
        }
        t.print(std::cout);
        std::cout << "\nExtra BARs buy addressing reach with "
                     "register-file cost - why the benchmarks were "
                     "written for the 2-BAR variant.\n";
    }

    // ---------- C. CNT loop buffer --------------------------------
    bench::banner("Ablation C",
                  "CNT-TFT loop buffer (16 entries) vs direct ROM "
                  "fetch - the paper's suggested I-cache");
    {
        TableWriter t({"Kernel", "ROM-only time ms",
                       "loop-buffer time ms", "speedup",
                       "hit rate"});
        for (Kernel k : {Kernel::Mult, Kernel::Div, Kernel::THold,
                         Kernel::Crc8}) {
            const Workload wl = makeWorkload(k, 8, 8);
            const CoreConfig cfg = CoreConfig::standard(1, 8, 2);
            const SystemEval base =
                evaluateSystem(wl, cfg, TechKind::CNT_TFT);

            // Loop-buffer model: a fetch hits after its first
            // touch; at most `bufferEntries` distinct instructions
            // are resident. For these kernels the steady-state
            // working set is the loop body, so misses ~= the
            // static instruction count.
            constexpr double buffer_entries = 16.0;
            const double statics = double(wl.program.size());
            const double misses =
                std::min(statics, buffer_entries) +
                std::max(0.0, statics - buffer_entries) *
                    0.5 * double(base.cycles) / statics;
            const double hits =
                std::max(0.0, double(base.cycles) - misses);
            const double hit_rate = hits / double(base.cycles);

            // Hit fetches replace the ROM latency with a DFF read.
            const CellLibrary &lib = cntLibrary();
            const double t_hit =
                lib.cell(CellKind::DFFX1).worstDelayUs() * 1e-6;
            const CrosspointRom rom(wl.program.size(), 24, 1,
                                    TechKind::CNT_TFT);
            const double t_rom = rom.readDelayMs() * 1e-3;
            const double imem_time =
                hits * t_hit + misses * t_rom;
            const double new_total =
                base.timeCore + imem_time + base.timeDmem;

            t.addRow({kernelName(k),
                      TableWriter::fixed(base.timeTotal() * 1e3, 2),
                      TableWriter::fixed(new_total * 1e3, 2),
                      TableWriter::fixed(
                          base.timeTotal() / new_total, 2) + "x",
                      TableWriter::fixed(100 * hit_rate, 1) + "%"});
        }
        t.print(std::cout);
    }

    // ---------- D. CNT frequency matching -------------------------
    bench::banner("Ablation D",
                  "CNT-TFT core clocked at fmax vs matched to the "
                  "302 us ROM latency (power budget check)");
    {
        const Netlist nl = buildCore(CoreConfig::standard(1, 8, 2));
        const auto full = characterize(nl, cntLibrary());
        const double f_matched = 1.0 / 302e-6;
        const auto matched =
            analyzePower(nl, cntLibrary(), f_matched);
        const Battery &battery = table8Battery();
        std::cout << "  at fmax (" << full.fmaxHz() << " Hz): "
                  << full.powerMw() << " mW -> "
                  << (withinPowerBudget(battery, full.powerMw())
                          ? "within"
                          : "EXCEEDS")
                  << " the " << battery.maxPower_mW
                  << " mW battery budget\n"
                  << "  matched to ROM (" << f_matched
                  << " Hz): " << matched.total_mW << " mW -> "
                  << (withinPowerBudget(battery, matched.total_mW)
                          ? "within"
                          : "EXCEEDS")
                  << " the budget\n"
                  << "\nMatching the clock to the instruction-ROM "
                     "latency trades unusable headroom for "
                     "battery compatibility, as Section 8 "
                     "suggests.\n";
    }
    return 0;
}
