/**
 * @file
 * Acceptance + throughput harness for the printed classifier
 * subsystem (src/ml) and the classify service endpoint.
 *
 * Default mode (no --connect) runs the reference evolutionary
 * search in-process and gates hard on the determinism contract:
 *
 *   search    timed runClassify over --generations x --population
 *             candidates -> candidates_per_s
 *   threads   classifyBody bytes identical across ThreadPool sizes
 *             {1, --threads, 16}
 *   engines   Batch vs Scalar scoring engines agree bit-for-bit
 *             (engines_agree)
 *   front     the exact Pareto front (gates, accuracy) lands in the
 *             JSON report so CI can gate with --exact-key
 *
 * With --connect HOST:PORT the harness instead drives a live
 * printedd or printed-balancer: a monolithic classify request, a
 * streamed one whose assembled reply must be byte-identical to the
 * monolithic bytes, and a resume-mid-search probe (resume_from=2
 * must replay only frames 2..G, then the front, then done).
 *
 * Exit status: 1 on any determinism or byte-identity failure, 0
 * otherwise. Options: --model tree|ternary, --depth N, --hidden N,
 * --generations N, --population N, --threads N, --reps N,
 * --connect HOST:PORT, --shutdown-after, --json PATH,
 * --trace-out PATH.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "ml/evolve.hh"
#include "service/client.hh"
#include "service/protocol.hh"

using namespace printed;
using namespace printed::service;

namespace
{

std::string
valueOfArg(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (argv[i] == "--" + flag)
            return argv[i + 1];
    return "";
}

bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i)
        if (argv[i] == "--" + flag)
            return true;
    return false;
}

/** The bench's reference search: small enough to run four times
 *  (threads x2, 16-thread, scalar-engine) in a few seconds, rich
 *  enough that the front has several accuracy/area trade points. */
ml::ClassifySpec
benchSpec(int argc, char **argv)
{
    ml::ClassifySpec spec;
    spec.dataset.kind = "xor"; // not linearly separable: depth pays
    spec.dataset.features = 2;
    spec.dataset.classes = 2;
    spec.dataset.bits = 6;
    spec.dataset.train = 96;
    spec.dataset.holdout = 64;
    spec.depth =
        unsigned(bench::uintFromArgs(argc, argv, "depth", 4));
    spec.hidden =
        unsigned(bench::uintFromArgs(argc, argv, "hidden", 4));
    spec.search.generations = unsigned(
        bench::uintFromArgs(argc, argv, "generations", 4));
    spec.search.population = unsigned(
        bench::uintFromArgs(argc, argv, "population", 8));
    if (const std::string model =
            valueOfArg(argc, argv, "model");
        !model.empty()) {
        const auto kind = ml::modelKindFromName(model);
        fatalIf(!kind, "unknown --model '" + model + "'");
        spec.model = *kind;
    }
    spec.check();
    return spec;
}

/**
 * Smoke a live server: monolithic classify, streamed classify
 * byte-compared against it, and a resume-mid-search probe.
 */
int
runConnected(int argc, char **argv, const std::string &connect)
{
    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const std::size_t colon = connect.rfind(':');
    fatalIf(colon == std::string::npos,
            "--connect expects HOST:PORT");
    const std::string host = connect.substr(0, colon);
    const auto port =
        std::uint16_t(std::stoul(connect.substr(colon + 1)));

    bench::banner("classify service smoke",
                  "monolithic vs streamed vs resumed classify "
                  "against a live server");
    std::cout << "connecting to " << host << ":" << port << "\n";

    const ml::ClassifySpec spec = benchSpec(argc, argv);
    const std::uint64_t total = spec.search.generations + 1;
    bench::JsonReport jr("bench_classify");
    const bench::WallTimer timer;
    bool pass = true;

    // ---- Monolithic reference ----------------------------------
    Client mono(host, port);
    const std::string reference =
        mono.call(classifyRequest("bc", spec));
    fatalIf(!parseReply(reference).ok,
            "classify failed: " + reference);
    std::cout << "monolithic: " << reference.size() << " bytes\n";

    // ---- Streamed, assembled == monolithic ---------------------
    RetryPolicy policy;
    policy.baseBackoffMs = 1;
    policy.maxBackoffMs = 10;
    RetryingClient streamer(host, port, policy);
    std::vector<std::uint64_t> seen;
    const StreamResult sr = streamer.streamClassify(
        "bc", spec,
        [&](std::uint64_t index, std::uint64_t, const std::string &) {
            seen.push_back(index);
        });
    streamer.close();
    fatalIf(!sr.reply.ok, "streamed classify failed: " + sr.reply.raw);
    std::cout << "streamed: " << seen.size() << "/" << total
              << " frames, assembled reply "
              << (sr.reply.raw == reference ? "== monolithic"
                                            : "DIFFERS")
              << "\n";
    if (!sr.streamed || seen.size() != total) {
        std::cout << "FAIL: expected a " << total
                  << "-frame stream\n";
        pass = false;
    }
    for (std::uint64_t i = 0; i < seen.size(); ++i)
        if (seen[i] != i) {
            std::cout << "FAIL: frame " << i << " arrived as index "
                      << seen[i] << "\n";
            pass = false;
            break;
        }
    if (sr.reply.raw != reference)
        pass = false;

    // ---- Resume probe: pick up mid-search ----------------------
    // A raw client resuming from frame 2 must see only frames
    // 2..total-1 (the server re-derives earlier generations
    // bit-identically without re-sending them), then done.
    Client probe(host, port);
    probe.send(classifyStreamRequest("bc", spec, /*resumeFrom=*/2));
    std::vector<std::uint64_t> resumed;
    bool resumeDone = false;
    for (;;) {
        const StreamFrame frame = classifyFrame(probe.readLine());
        if (frame.kind == StreamFrame::Kind::Partial) {
            resumed.push_back(frame.index);
            continue;
        }
        resumeDone = frame.kind == StreamFrame::Kind::Done &&
                     frame.points == total;
        break;
    }
    probe.close();
    const bool resumeOk =
        resumeDone && resumed.size() == total - 2 &&
        !resumed.empty() && resumed.front() == 2 &&
        resumed.back() == total - 1;
    std::cout << "resume: from frame 2 -> " << resumed.size()
              << " frames replayed "
              << (resumeOk ? "(2.." : "(UNEXPECTED ")
              << (resumed.empty() ? 0 : resumed.back()) << ")\n";
    if (!resumeOk) {
        std::cout << "FAIL: resume_from=2 did not replay exactly "
                     "frames 2.." << total - 1 << "\n";
        pass = false;
    }

    if (hasFlag(argc, argv, "shutdown-after")) {
        Client bye(host, port);
        const Reply r = parseReply(
            bye.call(adminRequest("bye", RequestType::Shutdown)));
        fatalIf(!r.ok, "shutdown refused: " + r.raw);
    }

    const double wallMs = timer.elapsedMs();
    std::cout << "\nclassify smoke: " << (pass ? "PASS" : "FAIL")
              << " in " << TableWriter::fixed(wallMs, 0) << " ms\n";

    if (!jsonPath.empty()) {
        jr.meta("connected", true);
        jr.meta("wall_ms", wallMs);
        jr.meta("stream_frames", std::uint64_t(seen.size()));
        jr.meta("assembled_identical", sr.reply.raw == reference);
        jr.meta("resume_ok", resumeOk);
        jr.writeTo(jsonPath);
    }
    return pass ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::initObservability(argc, argv);
    if (const std::string connect =
            valueOfArg(argc, argv, "connect");
        !connect.empty()) {
        try {
            return runConnected(argc, argv, connect);
        } catch (const std::exception &e) {
            std::cerr << "bench_classify: " << e.what() << "\n";
            return 1;
        }
    }

    const std::string jsonPath = bench::jsonPathFromArgs(argc, argv);
    const unsigned benchThreads = unsigned(bench::uintFromArgs(
        argc, argv, "threads",
        std::max(1u, std::thread::hardware_concurrency())));

    bench::banner("printed classifier search",
                  "evolutionary approximation throughput and the "
                  "determinism contract");

    const ml::ClassifySpec spec = benchSpec(argc, argv);
    const std::uint64_t candidates =
        1 + std::uint64_t(spec.search.generations) *
                spec.search.population;
    std::cout << "model " << ml::modelKindName(spec.model)
              << ", depth " << spec.depth << ", "
              << spec.search.generations << " generations x "
              << spec.search.population << " candidates, "
              << benchThreads << " threads\n\n";

    bench::JsonReport jr("bench_classify");
    bool pass = true;

    // ---- Phase 1: timed search ---------------------------------
    // One search is a few milliseconds; repeat it so the
    // throughput number is wall-clock, not scheduler noise.
    const unsigned reps =
        unsigned(bench::uintFromArgs(argc, argv, "reps", 8));
    ThreadPool pool(benchThreads);
    const bench::WallTimer searchTimer;
    const ml::ClassifyResult result = ml::runClassify(spec, pool);
    for (unsigned r = 1; r < reps; ++r)
        ml::runClassify(spec, pool);
    const double searchMs = searchTimer.elapsedMs();
    const double candPerS =
        double(candidates * reps) / (searchMs / 1000.0);
    std::cout << "search: " << reps << " x " << candidates
              << " candidates in "
              << TableWriter::fixed(searchMs, 1) << " ms ("
              << TableWriter::fixed(candPerS, 1)
              << " candidates/s)\n";
    std::cout << "baseline: " << result.baseline.gates
              << " gates, accuracy "
              << TableWriter::fixed(result.baseline.accuracy, 4)
              << "\n";
    for (const ml::CandidateReport &c : result.front)
        std::cout << "  front: " << c.gates << " gates, accuracy "
                  << TableWriter::fixed(c.accuracy, 4) << ", "
                  << TableWriter::fixed(c.areaCm2, 3) << " cm^2"
                  << (c.feasible ? "" : " (infeasible)") << "\n";
    if (result.front.empty()) {
        std::cout << "FAIL: empty Pareto front\n";
        pass = false;
    }

    // ---- Phase 2: thread-count determinism ---------------------
    // The classify endpoint's replies are keyed on these bytes, so
    // any thread count must reproduce them exactly.
    const std::string reference = classifyBody(result);
    bool deterministic = true;
    for (const unsigned threads :
         std::vector<unsigned>{1u, benchThreads, 16u}) {
        ThreadPool p(threads);
        const std::string bytes =
            classifyBody(ml::runClassify(spec, p));
        const bool same = bytes == reference;
        std::cout << "threads " << threads << ": reply bytes "
                  << (same ? "identical" : "DIFFER") << "\n";
        if (!same) {
            std::cout << "FAIL: search not thread-invariant at "
                      << threads << " threads\n";
            deterministic = false;
            pass = false;
        }
    }

    // ---- Phase 3: Batch vs Scalar engine agreement -------------
    // Scoring is integer holdout accuracy, so the 64-lane batch
    // simulator and the scalar oracle must agree bit-for-bit.
    ml::ClassifySpec scalarSpec = spec;
    scalarSpec.search.engine = ml::ScoreEngine::Scalar;
    const std::string scalarBytes =
        classifyBody(ml::runClassify(scalarSpec, pool));
    const bool enginesAgree = scalarBytes == reference;
    std::cout << "engines: batch vs scalar "
              << (enginesAgree ? "agree" : "DISAGREE") << "\n";
    if (!enginesAgree) {
        std::cout << "FAIL: scoring engines disagree\n";
        pass = false;
    }

    std::cout << "\nclassify: " << (pass ? "PASS" : "FAIL") << "\n";

    if (!jsonPath.empty()) {
        jr.meta("model", ml::modelKindName(spec.model));
        jr.meta("depth", spec.depth);
        jr.meta("generations", spec.search.generations);
        jr.meta("population", spec.search.population);
        jr.meta("threads", benchThreads);
        jr.meta("search_wall_ms", searchMs);
        jr.meta("candidates", candidates);
        jr.meta("candidates_per_s", candPerS);
        jr.meta("threads_deterministic", deterministic);
        jr.meta("engines_agree", enginesAgree);
        jr.meta("baseline_gates",
                std::uint64_t(result.baseline.gates));
        jr.meta("baseline_accuracy", result.baseline.accuracy);
        jr.meta("front_size", std::uint64_t(result.front.size()));
        for (const ml::CandidateReport &c : result.front)
            jr.add("front", {{"gates", std::uint64_t(c.gates)},
                             {"accuracy", c.accuracy},
                             {"area_cm2", c.areaCm2},
                             {"power_mw", c.powerMw},
                             {"feasible", c.feasible}});
        jr.writeTo(jsonPath);
    }
    return pass ? 0 : 1;
}
