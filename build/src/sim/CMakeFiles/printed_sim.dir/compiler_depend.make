# Empty compiler generated dependencies file for printed_sim.
# This may be replaced when dependencies are built.
