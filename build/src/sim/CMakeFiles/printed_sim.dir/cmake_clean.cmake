file(REMOVE_RECURSE
  "CMakeFiles/printed_sim.dir/simulator.cc.o"
  "CMakeFiles/printed_sim.dir/simulator.cc.o.d"
  "CMakeFiles/printed_sim.dir/vcd.cc.o"
  "CMakeFiles/printed_sim.dir/vcd.cc.o.d"
  "libprinted_sim.a"
  "libprinted_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
