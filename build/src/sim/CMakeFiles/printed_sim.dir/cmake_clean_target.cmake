file(REMOVE_RECURSE
  "libprinted_sim.a"
)
