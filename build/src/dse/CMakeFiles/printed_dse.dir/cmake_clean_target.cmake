file(REMOVE_RECURSE
  "libprinted_dse.a"
)
