# Empty compiler generated dependencies file for printed_dse.
# This may be replaced when dependencies are built.
