file(REMOVE_RECURSE
  "CMakeFiles/printed_dse.dir/sweep.cc.o"
  "CMakeFiles/printed_dse.dir/sweep.cc.o.d"
  "CMakeFiles/printed_dse.dir/system_eval.cc.o"
  "CMakeFiles/printed_dse.dir/system_eval.cc.o.d"
  "libprinted_dse.a"
  "libprinted_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
