
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/area.cc" "src/analysis/CMakeFiles/printed_analysis.dir/area.cc.o" "gcc" "src/analysis/CMakeFiles/printed_analysis.dir/area.cc.o.d"
  "/root/repo/src/analysis/characterize.cc" "src/analysis/CMakeFiles/printed_analysis.dir/characterize.cc.o" "gcc" "src/analysis/CMakeFiles/printed_analysis.dir/characterize.cc.o.d"
  "/root/repo/src/analysis/power.cc" "src/analysis/CMakeFiles/printed_analysis.dir/power.cc.o" "gcc" "src/analysis/CMakeFiles/printed_analysis.dir/power.cc.o.d"
  "/root/repo/src/analysis/timing.cc" "src/analysis/CMakeFiles/printed_analysis.dir/timing.cc.o" "gcc" "src/analysis/CMakeFiles/printed_analysis.dir/timing.cc.o.d"
  "/root/repo/src/analysis/variation.cc" "src/analysis/CMakeFiles/printed_analysis.dir/variation.cc.o" "gcc" "src/analysis/CMakeFiles/printed_analysis.dir/variation.cc.o.d"
  "/root/repo/src/analysis/yield.cc" "src/analysis/CMakeFiles/printed_analysis.dir/yield.cc.o" "gcc" "src/analysis/CMakeFiles/printed_analysis.dir/yield.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/printed_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/printed_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
