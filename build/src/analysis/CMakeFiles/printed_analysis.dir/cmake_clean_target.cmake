file(REMOVE_RECURSE
  "libprinted_analysis.a"
)
