# Empty compiler generated dependencies file for printed_analysis.
# This may be replaced when dependencies are built.
