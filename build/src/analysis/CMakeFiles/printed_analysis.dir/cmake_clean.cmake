file(REMOVE_RECURSE
  "CMakeFiles/printed_analysis.dir/area.cc.o"
  "CMakeFiles/printed_analysis.dir/area.cc.o.d"
  "CMakeFiles/printed_analysis.dir/characterize.cc.o"
  "CMakeFiles/printed_analysis.dir/characterize.cc.o.d"
  "CMakeFiles/printed_analysis.dir/power.cc.o"
  "CMakeFiles/printed_analysis.dir/power.cc.o.d"
  "CMakeFiles/printed_analysis.dir/timing.cc.o"
  "CMakeFiles/printed_analysis.dir/timing.cc.o.d"
  "CMakeFiles/printed_analysis.dir/variation.cc.o"
  "CMakeFiles/printed_analysis.dir/variation.cc.o.d"
  "CMakeFiles/printed_analysis.dir/yield.cc.o"
  "CMakeFiles/printed_analysis.dir/yield.cc.o.d"
  "libprinted_analysis.a"
  "libprinted_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
