file(REMOVE_RECURSE
  "libprinted_mem.a"
)
