file(REMOVE_RECURSE
  "CMakeFiles/printed_mem.dir/compare.cc.o"
  "CMakeFiles/printed_mem.dir/compare.cc.o.d"
  "CMakeFiles/printed_mem.dir/devices.cc.o"
  "CMakeFiles/printed_mem.dir/devices.cc.o.d"
  "CMakeFiles/printed_mem.dir/ram.cc.o"
  "CMakeFiles/printed_mem.dir/ram.cc.o.d"
  "CMakeFiles/printed_mem.dir/rom.cc.o"
  "CMakeFiles/printed_mem.dir/rom.cc.o.d"
  "libprinted_mem.a"
  "libprinted_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
