
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/compare.cc" "src/mem/CMakeFiles/printed_mem.dir/compare.cc.o" "gcc" "src/mem/CMakeFiles/printed_mem.dir/compare.cc.o.d"
  "/root/repo/src/mem/devices.cc" "src/mem/CMakeFiles/printed_mem.dir/devices.cc.o" "gcc" "src/mem/CMakeFiles/printed_mem.dir/devices.cc.o.d"
  "/root/repo/src/mem/ram.cc" "src/mem/CMakeFiles/printed_mem.dir/ram.cc.o" "gcc" "src/mem/CMakeFiles/printed_mem.dir/ram.cc.o.d"
  "/root/repo/src/mem/rom.cc" "src/mem/CMakeFiles/printed_mem.dir/rom.cc.o" "gcc" "src/mem/CMakeFiles/printed_mem.dir/rom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/printed_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
