# Empty dependencies file for printed_mem.
# This may be replaced when dependencies are built.
