file(REMOVE_RECURSE
  "CMakeFiles/printed_tech.dir/cell.cc.o"
  "CMakeFiles/printed_tech.dir/cell.cc.o.d"
  "CMakeFiles/printed_tech.dir/liberty.cc.o"
  "CMakeFiles/printed_tech.dir/liberty.cc.o.d"
  "CMakeFiles/printed_tech.dir/library.cc.o"
  "CMakeFiles/printed_tech.dir/library.cc.o.d"
  "CMakeFiles/printed_tech.dir/technology.cc.o"
  "CMakeFiles/printed_tech.dir/technology.cc.o.d"
  "libprinted_tech.a"
  "libprinted_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
