# Empty dependencies file for printed_tech.
# This may be replaced when dependencies are built.
