file(REMOVE_RECURSE
  "libprinted_tech.a"
)
