# Empty dependencies file for printed_core.
# This may be replaced when dependencies are built.
