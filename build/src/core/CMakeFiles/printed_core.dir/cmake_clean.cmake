file(REMOVE_RECURSE
  "CMakeFiles/printed_core.dir/config.cc.o"
  "CMakeFiles/printed_core.dir/config.cc.o.d"
  "CMakeFiles/printed_core.dir/cosim.cc.o"
  "CMakeFiles/printed_core.dir/cosim.cc.o.d"
  "CMakeFiles/printed_core.dir/generator.cc.o"
  "CMakeFiles/printed_core.dir/generator.cc.o.d"
  "libprinted_core.a"
  "libprinted_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
