file(REMOVE_RECURSE
  "libprinted_core.a"
)
