# Empty compiler generated dependencies file for printed_synth.
# This may be replaced when dependencies are built.
