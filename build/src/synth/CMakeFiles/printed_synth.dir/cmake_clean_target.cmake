file(REMOVE_RECURSE
  "libprinted_synth.a"
)
