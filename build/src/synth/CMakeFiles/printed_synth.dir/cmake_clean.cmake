file(REMOVE_RECURSE
  "CMakeFiles/printed_synth.dir/blocks.cc.o"
  "CMakeFiles/printed_synth.dir/blocks.cc.o.d"
  "CMakeFiles/printed_synth.dir/opt.cc.o"
  "CMakeFiles/printed_synth.dir/opt.cc.o.d"
  "libprinted_synth.a"
  "libprinted_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
