file(REMOVE_RECURSE
  "CMakeFiles/printed_isa.dir/assembler.cc.o"
  "CMakeFiles/printed_isa.dir/assembler.cc.o.d"
  "CMakeFiles/printed_isa.dir/isa.cc.o"
  "CMakeFiles/printed_isa.dir/isa.cc.o.d"
  "CMakeFiles/printed_isa.dir/program.cc.o"
  "CMakeFiles/printed_isa.dir/program.cc.o.d"
  "libprinted_isa.a"
  "libprinted_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
