# Empty compiler generated dependencies file for printed_isa.
# This may be replaced when dependencies are built.
