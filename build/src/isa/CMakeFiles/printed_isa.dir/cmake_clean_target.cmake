file(REMOVE_RECURSE
  "libprinted_isa.a"
)
