
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/machine.cc" "src/arch/CMakeFiles/printed_arch.dir/machine.cc.o" "gcc" "src/arch/CMakeFiles/printed_arch.dir/machine.cc.o.d"
  "/root/repo/src/arch/pipeline.cc" "src/arch/CMakeFiles/printed_arch.dir/pipeline.cc.o" "gcc" "src/arch/CMakeFiles/printed_arch.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/printed_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
