file(REMOVE_RECURSE
  "CMakeFiles/printed_arch.dir/machine.cc.o"
  "CMakeFiles/printed_arch.dir/machine.cc.o.d"
  "CMakeFiles/printed_arch.dir/pipeline.cc.o"
  "CMakeFiles/printed_arch.dir/pipeline.cc.o.d"
  "libprinted_arch.a"
  "libprinted_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
