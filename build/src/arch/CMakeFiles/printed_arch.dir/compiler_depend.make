# Empty compiler generated dependencies file for printed_arch.
# This may be replaced when dependencies are built.
