file(REMOVE_RECURSE
  "libprinted_arch.a"
)
