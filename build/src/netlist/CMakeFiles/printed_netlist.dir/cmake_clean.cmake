file(REMOVE_RECURSE
  "CMakeFiles/printed_netlist.dir/netlist.cc.o"
  "CMakeFiles/printed_netlist.dir/netlist.cc.o.d"
  "CMakeFiles/printed_netlist.dir/stats.cc.o"
  "CMakeFiles/printed_netlist.dir/stats.cc.o.d"
  "CMakeFiles/printed_netlist.dir/verilog.cc.o"
  "CMakeFiles/printed_netlist.dir/verilog.cc.o.d"
  "libprinted_netlist.a"
  "libprinted_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
