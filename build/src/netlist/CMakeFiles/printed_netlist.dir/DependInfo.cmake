
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/netlist.cc" "src/netlist/CMakeFiles/printed_netlist.dir/netlist.cc.o" "gcc" "src/netlist/CMakeFiles/printed_netlist.dir/netlist.cc.o.d"
  "/root/repo/src/netlist/stats.cc" "src/netlist/CMakeFiles/printed_netlist.dir/stats.cc.o" "gcc" "src/netlist/CMakeFiles/printed_netlist.dir/stats.cc.o.d"
  "/root/repo/src/netlist/verilog.cc" "src/netlist/CMakeFiles/printed_netlist.dir/verilog.cc.o" "gcc" "src/netlist/CMakeFiles/printed_netlist.dir/verilog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tech/CMakeFiles/printed_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
