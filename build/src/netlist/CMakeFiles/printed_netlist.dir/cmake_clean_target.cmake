file(REMOVE_RECURSE
  "libprinted_netlist.a"
)
