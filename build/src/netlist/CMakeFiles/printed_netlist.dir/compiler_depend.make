# Empty compiler generated dependencies file for printed_netlist.
# This may be replaced when dependencies are built.
