file(REMOVE_RECURSE
  "CMakeFiles/printed_common.dir/logging.cc.o"
  "CMakeFiles/printed_common.dir/logging.cc.o.d"
  "CMakeFiles/printed_common.dir/table.cc.o"
  "CMakeFiles/printed_common.dir/table.cc.o.d"
  "libprinted_common.a"
  "libprinted_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
