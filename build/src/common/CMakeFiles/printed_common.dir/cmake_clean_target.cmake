file(REMOVE_RECURSE
  "libprinted_common.a"
)
