# Empty compiler generated dependencies file for printed_common.
# This may be replaced when dependencies are built.
