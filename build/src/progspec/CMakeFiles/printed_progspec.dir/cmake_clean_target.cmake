file(REMOVE_RECURSE
  "libprinted_progspec.a"
)
