file(REMOVE_RECURSE
  "CMakeFiles/printed_progspec.dir/analyze.cc.o"
  "CMakeFiles/printed_progspec.dir/analyze.cc.o.d"
  "CMakeFiles/printed_progspec.dir/specialize.cc.o"
  "CMakeFiles/printed_progspec.dir/specialize.cc.o.d"
  "libprinted_progspec.a"
  "libprinted_progspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_progspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
