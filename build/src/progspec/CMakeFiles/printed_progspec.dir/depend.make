# Empty dependencies file for printed_progspec.
# This may be replaced when dependencies are built.
