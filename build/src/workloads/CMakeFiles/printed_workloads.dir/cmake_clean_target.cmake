file(REMOVE_RECURSE
  "libprinted_workloads.a"
)
