file(REMOVE_RECURSE
  "CMakeFiles/printed_workloads.dir/builder.cc.o"
  "CMakeFiles/printed_workloads.dir/builder.cc.o.d"
  "CMakeFiles/printed_workloads.dir/golden.cc.o"
  "CMakeFiles/printed_workloads.dir/golden.cc.o.d"
  "CMakeFiles/printed_workloads.dir/kernels.cc.o"
  "CMakeFiles/printed_workloads.dir/kernels.cc.o.d"
  "libprinted_workloads.a"
  "libprinted_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
