
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/builder.cc" "src/workloads/CMakeFiles/printed_workloads.dir/builder.cc.o" "gcc" "src/workloads/CMakeFiles/printed_workloads.dir/builder.cc.o.d"
  "/root/repo/src/workloads/golden.cc" "src/workloads/CMakeFiles/printed_workloads.dir/golden.cc.o" "gcc" "src/workloads/CMakeFiles/printed_workloads.dir/golden.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/workloads/CMakeFiles/printed_workloads.dir/kernels.cc.o" "gcc" "src/workloads/CMakeFiles/printed_workloads.dir/kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/printed_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
