# Empty compiler generated dependencies file for printed_workloads.
# This may be replaced when dependencies are built.
