# Empty dependencies file for printed_legacy.
# This may be replaced when dependencies are built.
