file(REMOVE_RECURSE
  "libprinted_legacy.a"
)
