file(REMOVE_RECURSE
  "CMakeFiles/printed_legacy.dir/cores.cc.o"
  "CMakeFiles/printed_legacy.dir/cores.cc.o.d"
  "CMakeFiles/printed_legacy.dir/i8080.cc.o"
  "CMakeFiles/printed_legacy.dir/i8080.cc.o.d"
  "CMakeFiles/printed_legacy.dir/ir.cc.o"
  "CMakeFiles/printed_legacy.dir/ir.cc.o.d"
  "CMakeFiles/printed_legacy.dir/ir_kernels.cc.o"
  "CMakeFiles/printed_legacy.dir/ir_kernels.cc.o.d"
  "CMakeFiles/printed_legacy.dir/msp430.cc.o"
  "CMakeFiles/printed_legacy.dir/msp430.cc.o.d"
  "CMakeFiles/printed_legacy.dir/zpu.cc.o"
  "CMakeFiles/printed_legacy.dir/zpu.cc.o.d"
  "libprinted_legacy.a"
  "libprinted_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
