# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tech")
subdirs("netlist")
subdirs("sim")
subdirs("synth")
subdirs("analysis")
subdirs("isa")
subdirs("arch")
subdirs("core")
subdirs("mem")
subdirs("workloads")
subdirs("legacy")
subdirs("progspec")
subdirs("apps")
subdirs("dse")
