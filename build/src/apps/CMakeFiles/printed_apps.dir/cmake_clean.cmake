file(REMOVE_RECURSE
  "CMakeFiles/printed_apps.dir/applications.cc.o"
  "CMakeFiles/printed_apps.dir/applications.cc.o.d"
  "CMakeFiles/printed_apps.dir/battery.cc.o"
  "CMakeFiles/printed_apps.dir/battery.cc.o.d"
  "libprinted_apps.a"
  "libprinted_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printed_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
