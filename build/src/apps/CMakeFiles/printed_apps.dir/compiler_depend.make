# Empty compiler generated dependencies file for printed_apps.
# This may be replaced when dependencies are built.
