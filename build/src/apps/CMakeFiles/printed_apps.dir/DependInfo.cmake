
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/applications.cc" "src/apps/CMakeFiles/printed_apps.dir/applications.cc.o" "gcc" "src/apps/CMakeFiles/printed_apps.dir/applications.cc.o.d"
  "/root/repo/src/apps/battery.cc" "src/apps/CMakeFiles/printed_apps.dir/battery.cc.o" "gcc" "src/apps/CMakeFiles/printed_apps.dir/battery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
