file(REMOVE_RECURSE
  "libprinted_apps.a"
)
