file(REMOVE_RECURSE
  "CMakeFiles/bench_section8_legacy_apps.dir/bench_section8_legacy_apps.cc.o"
  "CMakeFiles/bench_section8_legacy_apps.dir/bench_section8_legacy_apps.cc.o.d"
  "bench_section8_legacy_apps"
  "bench_section8_legacy_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_section8_legacy_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
