# Empty compiler generated dependencies file for bench_section8_legacy_apps.
# This may be replaced when dependencies are built.
