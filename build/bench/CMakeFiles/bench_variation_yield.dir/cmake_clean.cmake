file(REMOVE_RECURSE
  "CMakeFiles/bench_variation_yield.dir/bench_variation_yield.cc.o"
  "CMakeFiles/bench_variation_yield.dir/bench_variation_yield.cc.o.d"
  "bench_variation_yield"
  "bench_variation_yield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_variation_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
