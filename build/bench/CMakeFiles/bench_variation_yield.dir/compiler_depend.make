# Empty compiler generated dependencies file for bench_variation_yield.
# This may be replaced when dependencies are built.
