# Empty dependencies file for bench_fig9_rom_geometry.
# This may be replaced when dependencies are built.
