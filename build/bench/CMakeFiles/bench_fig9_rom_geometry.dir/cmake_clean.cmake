file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_rom_geometry.dir/bench_fig9_rom_geometry.cc.o"
  "CMakeFiles/bench_fig9_rom_geometry.dir/bench_fig9_rom_geometry.cc.o.d"
  "bench_fig9_rom_geometry"
  "bench_fig9_rom_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_rom_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
