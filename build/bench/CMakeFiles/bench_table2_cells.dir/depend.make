# Empty dependencies file for bench_table2_cells.
# This may be replaced when dependencies are built.
