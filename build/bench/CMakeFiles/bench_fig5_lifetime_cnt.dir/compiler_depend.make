# Empty compiler generated dependencies file for bench_fig5_lifetime_cnt.
# This may be replaced when dependencies are built.
