file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lifetime_cnt.dir/bench_fig5_lifetime_cnt.cc.o"
  "CMakeFiles/bench_fig5_lifetime_cnt.dir/bench_fig5_lifetime_cnt.cc.o.d"
  "bench_fig5_lifetime_cnt"
  "bench_fig5_lifetime_cnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lifetime_cnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
