# Empty compiler generated dependencies file for bench_fig4_lifetime_egfet.
# This may be replaced when dependencies are built.
