file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_lifetime_egfet.dir/bench_fig4_lifetime_egfet.cc.o"
  "CMakeFiles/bench_fig4_lifetime_egfet.dir/bench_fig4_lifetime_egfet.cc.o.d"
  "bench_fig4_lifetime_egfet"
  "bench_fig4_lifetime_egfet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_lifetime_egfet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
