file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_printed.dir/bench_ablation_printed.cc.o"
  "CMakeFiles/bench_ablation_printed.dir/bench_ablation_printed.cc.o.d"
  "bench_ablation_printed"
  "bench_ablation_printed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_printed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
