# Empty dependencies file for bench_ablation_printed.
# This may be replaced when dependencies are built.
