file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_memory_devices.dir/bench_table6_memory_devices.cc.o"
  "CMakeFiles/bench_table6_memory_devices.dir/bench_table6_memory_devices.cc.o.d"
  "bench_table6_memory_devices"
  "bench_table6_memory_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_memory_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
