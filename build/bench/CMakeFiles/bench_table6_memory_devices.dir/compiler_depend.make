# Empty compiler generated dependencies file for bench_table6_memory_devices.
# This may be replaced when dependencies are built.
