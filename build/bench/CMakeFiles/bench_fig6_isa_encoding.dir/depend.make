# Empty dependencies file for bench_fig6_isa_encoding.
# This may be replaced when dependencies are built.
