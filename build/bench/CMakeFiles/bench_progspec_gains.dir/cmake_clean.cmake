file(REMOVE_RECURSE
  "CMakeFiles/bench_progspec_gains.dir/bench_progspec_gains.cc.o"
  "CMakeFiles/bench_progspec_gains.dir/bench_progspec_gains.cc.o.d"
  "bench_progspec_gains"
  "bench_progspec_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_progspec_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
