# Empty compiler generated dependencies file for bench_progspec_gains.
# This may be replaced when dependencies are built.
