# Empty compiler generated dependencies file for bench_table8_iterations.
# This may be replaced when dependencies are built.
