file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_progspec.dir/bench_table7_progspec.cc.o"
  "CMakeFiles/bench_table7_progspec.dir/bench_table7_progspec.cc.o.d"
  "bench_table7_progspec"
  "bench_table7_progspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_progspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
