# Empty dependencies file for bench_table7_progspec.
# This may be replaced when dependencies are built.
