file(REMOVE_RECURSE
  "CMakeFiles/bench_rom_vs_ram.dir/bench_rom_vs_ram.cc.o"
  "CMakeFiles/bench_rom_vs_ram.dir/bench_rom_vs_ram.cc.o.d"
  "bench_rom_vs_ram"
  "bench_rom_vs_ram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rom_vs_ram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
