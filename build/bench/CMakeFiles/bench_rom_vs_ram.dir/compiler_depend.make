# Empty compiler generated dependencies file for bench_rom_vs_ram.
# This may be replaced when dependencies are built.
