file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_applications.dir/bench_fig8_applications.cc.o"
  "CMakeFiles/bench_fig8_applications.dir/bench_fig8_applications.cc.o.d"
  "bench_fig8_applications"
  "bench_fig8_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
