
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_imem_overhead.cc" "bench/CMakeFiles/bench_table5_imem_overhead.dir/bench_table5_imem_overhead.cc.o" "gcc" "bench/CMakeFiles/bench_table5_imem_overhead.dir/bench_table5_imem_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/legacy/CMakeFiles/printed_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/printed_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/printed_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/printed_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/printed_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/printed_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/printed_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
