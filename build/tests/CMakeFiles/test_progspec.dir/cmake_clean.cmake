file(REMOVE_RECURSE
  "CMakeFiles/test_progspec.dir/test_progspec.cc.o"
  "CMakeFiles/test_progspec.dir/test_progspec.cc.o.d"
  "test_progspec"
  "test_progspec.pdb"
  "test_progspec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_progspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
