# Empty compiler generated dependencies file for test_progspec.
# This may be replaced when dependencies are built.
