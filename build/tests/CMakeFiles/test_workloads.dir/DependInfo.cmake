
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/test_workloads.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/test_workloads.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/printed_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/printed_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/printed_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/printed_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/printed_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/printed_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/printed_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/printed_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/printed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
