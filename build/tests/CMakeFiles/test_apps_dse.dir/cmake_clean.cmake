file(REMOVE_RECURSE
  "CMakeFiles/test_apps_dse.dir/test_apps_dse.cc.o"
  "CMakeFiles/test_apps_dse.dir/test_apps_dse.cc.o.d"
  "test_apps_dse"
  "test_apps_dse.pdb"
  "test_apps_dse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
