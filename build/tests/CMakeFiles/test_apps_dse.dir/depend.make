# Empty dependencies file for test_apps_dse.
# This may be replaced when dependencies are built.
