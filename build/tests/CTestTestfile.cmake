# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_legacy[1]_include.cmake")
include("/root/repo/build/tests/test_progspec[1]_include.cmake")
include("/root/repo/build/tests/test_apps_dse[1]_include.cmake")
include("/root/repo/build/tests/test_verilog[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
