file(REMOVE_RECURSE
  "CMakeFiles/export_pdk.dir/export_pdk.cpp.o"
  "CMakeFiles/export_pdk.dir/export_pdk.cpp.o.d"
  "export_pdk"
  "export_pdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_pdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
