# Empty dependencies file for export_pdk.
# This may be replaced when dependencies are built.
