# Empty dependencies file for print_shop.
# This may be replaced when dependencies are built.
