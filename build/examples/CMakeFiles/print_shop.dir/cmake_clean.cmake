file(REMOVE_RECURSE
  "CMakeFiles/print_shop.dir/print_shop.cpp.o"
  "CMakeFiles/print_shop.dir/print_shop.cpp.o.d"
  "print_shop"
  "print_shop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/print_shop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
