/**
 * @file
 * Structural Verilog export.
 *
 * Writes a generated netlist as a gate-level Verilog module over
 * the printed standard-cell library (cell modules included as
 * behavioral primitives), so synthesized cores can be inspected,
 * simulated, or taken into an external physical-design flow - the
 * handoff point the paper's PDK release targets.
 */

#ifndef PRINTED_NETLIST_VERILOG_HH
#define PRINTED_NETLIST_VERILOG_HH

#include <ostream>
#include <string>

#include "netlist/netlist.hh"

namespace printed
{

/**
 * Emit the netlist as structural Verilog.
 *
 * @param os output stream
 * @param netlist the design (validated first)
 * @param include_cell_models also emit behavioral models of the
 *        eleven library cells so the file is self-contained for
 *        simulation
 */
void writeVerilog(std::ostream &os, const Netlist &netlist,
                  bool include_cell_models = true);

} // namespace printed

#endif // PRINTED_NETLIST_VERILOG_HH
