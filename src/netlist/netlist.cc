#include "netlist.hh"

#include <algorithm>
#include <array>

#include "common/logging.hh"

namespace printed
{

Netlist::Netlist(std::string name)
    : name_(std::move(name))
{}

Netlist
Netlist::restore(std::string name, std::vector<NetSource> sources,
                 std::vector<std::pair<NetId, std::string>> netNames,
                 std::vector<Gate> gates,
                 std::vector<PortBinding> inputs,
                 std::vector<PortBinding> outputs, NetId const0,
                 NetId const1)
{
    Netlist nl(std::move(name));
    nl.netSource_ = std::move(sources);
    nl.netNameRef_.assign(nl.netSource_.size(), 0);
    for (auto &[net, nname] : netNames) {
        panicIf(net >= nl.netSource_.size(),
                "Netlist::restore: named net out of range");
        nl.netNameRef_[net] = nl.internName(nname);
    }
    nl.gateKind_.reserve(gates.size());
    nl.gateIn0_.reserve(gates.size());
    nl.gateIn1_.reserve(gates.size());
    nl.gateOut_.reserve(gates.size());
    for (const Gate &g : gates) {
        panicIf(g.out >= nl.netSource_.size(),
                "Netlist::restore: gate with out-of-range output");
        nl.gateKind_.push_back(g.kind);
        nl.gateIn0_.push_back(g.in0);
        nl.gateIn1_.push_back(g.in1);
        nl.gateOut_.push_back(g.out);
    }
    nl.inputs_ = std::move(inputs);
    nl.outputs_ = std::move(outputs);
    nl.const0_ = const0;
    nl.const1_ = const1;

    // Serialized blobs carry no driver lists or use-index; rebuild
    // both from the gates before validate() checks them.
    nl.rebuildDrivers();
    nl.rebuildUseIndex();
    nl.validate();
    return nl;
}

std::uint32_t
Netlist::internName(const std::string &name)
{
    if (name.empty())
        return 0;
    const auto it = internMap_.find(name);
    if (it != internMap_.end())
        return it->second;
    const std::uint32_t ref = std::uint32_t(namePool_.size()) + 1;
    namePool_ += name;
    namePool_.push_back('\0');
    internMap_.emplace(name, ref);
    return ref;
}

std::string
Netlist::netName(NetId n) const
{
    panicIf(n >= netSource_.size(), "netName: bad net");
    const std::uint32_t ref = netNameRef_[n];
    if (ref == 0)
        return {};
    return std::string(namePool_.c_str() + (ref - 1));
}

// ----------------------------------------------------------------
// Driver index maintenance
// ----------------------------------------------------------------

void
Netlist::appendDriver(NetId n, GateId gi)
{
    if (driverHead_[n] == invalidGate)
        driverHead_[n] = gi;
    else
        driverNext_[driverTail_[n]] = gi;
    driverTail_[n] = gi;
}

void
Netlist::rebuildDrivers()
{
    driverHead_.assign(netSource_.size(), invalidGate);
    driverTail_.assign(netSource_.size(), invalidGate);
    driverNext_.assign(gateKind_.size(), invalidGate);
    for (GateId gi = 0; gi < gateKind_.size(); ++gi)
        appendDriver(gateOut_[gi], gi);
}

GateId
Netlist::netSoleDriver(NetId n) const
{
    panicIf(n >= netSource_.size(), "netSoleDriver: bad net");
    const GateId head = driverHead_[n];
    if (head == invalidGate || driverNext_[head] != invalidGate)
        return invalidGate;
    return head;
}

std::size_t
Netlist::netDriverCount(NetId n) const
{
    panicIf(n >= netSource_.size(), "netDriverCount: bad net");
    std::size_t count = 0;
    for (GateId g = driverHead_[n]; g != invalidGate;
         g = driverNext_[g])
        ++count;
    return count;
}

// ----------------------------------------------------------------
// Use-index maintenance
// ----------------------------------------------------------------

void
Netlist::linkUse(NetId n, UseNode u)
{
    const UseNode old = useHead_[n];
    useNext_[u] = old;
    usePrev_[u] = useHeadFlag | n;
    if (old != invalidUseNode)
        usePrev_[old] = u;
    useHead_[n] = u;
}

void
Netlist::unlinkUse(UseNode u)
{
    const UseNode next = useNext_[u];
    const UseNode prev = usePrev_[u];
    panicIf(prev == invalidUseNode, "unlinkUse: node not linked");
    if (prev & useHeadFlag)
        useHead_[prev & ~useHeadFlag] = next;
    else
        useNext_[prev] = next;
    if (next != invalidUseNode)
        usePrev_[next] = prev;
    useNext_[u] = invalidUseNode;
    usePrev_[u] = invalidUseNode;
}

void
Netlist::linkGateUses(GateId gi)
{
    useNext_.resize(gateKind_.size() * 2, invalidUseNode);
    usePrev_.resize(gateKind_.size() * 2, invalidUseNode);
    if (gateIn0_[gi] != invalidNet)
        linkUse(gateIn0_[gi], UseNode(gi) * 2);
    if (gateIn1_[gi] != invalidNet)
        linkUse(gateIn1_[gi], UseNode(gi) * 2 + 1);
}

void
Netlist::rebuildUseIndex()
{
    useHead_.assign(netSource_.size(), invalidUseNode);
    useNext_.assign(gateKind_.size() * 2, invalidUseNode);
    usePrev_.assign(gateKind_.size() * 2, invalidUseNode);
    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        if (gateIn0_[gi] != invalidNet)
            linkUse(gateIn0_[gi], UseNode(gi) * 2);
        if (gateIn1_[gi] != invalidNet)
            linkUse(gateIn1_[gi], UseNode(gi) * 2 + 1);
    }
}

void
Netlist::checkUseIndex() const
{
    panicIf(useHead_.size() != netSource_.size() ||
                useNext_.size() != gateKind_.size() * 2 ||
                usePrev_.size() != gateKind_.size() * 2,
            "use-index: array size mismatch");
    std::size_t linked = 0;
    for (NetId n = 0; n < netSource_.size(); ++n) {
        UseNode prev = useHeadFlag | n;
        for (UseNode u = useHead_[n]; u != invalidUseNode;
             u = useNext_[u]) {
            panicIf(usePrev_[u] != prev, "use-index: bad prev link");
            const NetId pin_net =
                (u & 1) ? gateIn1_[u >> 1] : gateIn0_[u >> 1];
            panicIf(pin_net != n, "use-index: pin does not read net");
            panicIf(++linked > 2 * gateKind_.size(),
                    "use-index: list cycle");
            prev = u;
        }
    }
    std::size_t pins = 0;
    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        if (gateIn0_[gi] != invalidNet)
            ++pins;
        if (gateIn1_[gi] != invalidNet)
            ++pins;
    }
    panicIf(linked != pins, "use-index: node count mismatch");
}

std::size_t
Netlist::netUseCount(NetId n) const
{
    panicIf(n >= netSource_.size(), "netUseCount: bad net");
    std::size_t count = 0;
    for (UseNode u = useHead_[n]; u != invalidUseNode;
         u = useNext_[u])
        ++count;
    return count;
}

// ----------------------------------------------------------------
// Construction
// ----------------------------------------------------------------

NetId
Netlist::addDrivenNet(NetSource source, std::string name)
{
    netSource_.push_back(source);
    netNameRef_.push_back(internName(name));
    driverHead_.push_back(invalidGate);
    driverTail_.push_back(invalidGate);
    useHead_.push_back(invalidUseNode);
    return NetId(netSource_.size() - 1);
}

NetId
Netlist::addNet(std::string name)
{
    return addDrivenNet(NetSource::Undriven, std::move(name));
}

NetId
Netlist::addInput(const std::string &name)
{
    const NetId id = addDrivenNet(NetSource::Input, name);
    inputs_.push_back({name, id});
    return id;
}

void
Netlist::addOutput(const std::string &name, NetId net)
{
    panicIf(net >= netSource_.size(), "addOutput: bad net");
    outputs_.push_back({name, net});
}

NetId
Netlist::constZero()
{
    if (const0_ == invalidNet)
        const0_ = addDrivenNet(NetSource::Const0, "const0");
    return const0_;
}

NetId
Netlist::constOne()
{
    if (const1_ == invalidNet)
        const1_ = addDrivenNet(NetSource::Const1, "const1");
    return const1_;
}

void
Netlist::reserve(std::size_t nets, std::size_t gates)
{
    netSource_.reserve(nets);
    netNameRef_.reserve(nets);
    driverHead_.reserve(nets);
    driverTail_.reserve(nets);
    useHead_.reserve(nets);
    gateKind_.reserve(gates);
    gateIn0_.reserve(gates);
    gateIn1_.reserve(gates);
    gateOut_.reserve(gates);
    driverNext_.reserve(gates);
    useNext_.reserve(gates * 2);
    usePrev_.reserve(gates * 2);
}

NetId
Netlist::addGate(CellKind kind, NetId a, NetId b)
{
    panicIf(kind == CellKind::TSBUFX1,
            "addGate: use addTristate for TSBUFX1");
    const unsigned wants = cellInputCount(kind);
    panicIf(a >= netSource_.size(), "addGate: bad input a");
    panicIf(wants == 2 && b >= netSource_.size(),
            "addGate: " + cellName(kind) + " needs two inputs");
    panicIf(wants == 1 && b != invalidNet,
            "addGate: " + cellName(kind) + " takes one input");

    const NetId out = addDrivenNet(NetSource::GateOutput);
    const GateId gi = GateId(gateKind_.size());
    gateKind_.push_back(kind);
    gateIn0_.push_back(a);
    gateIn1_.push_back(wants == 2 ? b : invalidNet);
    gateOut_.push_back(out);
    driverNext_.push_back(invalidGate);
    appendDriver(out, gi);
    linkGateUses(gi);
    return out;
}

GateId
Netlist::addTristate(NetId a, NetId en, NetId bus)
{
    panicIf(a >= netSource_.size() || en >= netSource_.size() ||
            bus >= netSource_.size(), "addTristate: bad net");
    panicIf(netSource_[bus] == NetSource::Input ||
            netSource_[bus] == NetSource::Const0 ||
            netSource_[bus] == NetSource::Const1,
            "addTristate: bus cannot be an input or constant");

    const GateId gi = GateId(gateKind_.size());
    gateKind_.push_back(CellKind::TSBUFX1);
    gateIn0_.push_back(a);
    gateIn1_.push_back(en);
    gateOut_.push_back(bus);
    driverNext_.push_back(invalidGate);
    netSource_[bus] = NetSource::GateOutput;
    appendDriver(bus, gi);
    linkGateUses(gi);
    return gi;
}

void
Netlist::setGate(GateId id, CellKind kind, NetId in0, NetId in1)
{
    panicIf(id >= gateKind_.size(), "setGate: bad gate");
    panicIf(kind == CellKind::TSBUFX1 ||
                gateKind_[id] == CellKind::TSBUFX1,
            "setGate: cannot rewrite tri-state drivers");
    panicIf(cellIsSequential(kind) !=
                cellIsSequential(gateKind_[id]),
            "setGate: sequential/combinational change");
    const unsigned wants = cellInputCount(kind);
    panicIf(in0 >= netSource_.size(), "setGate: bad input a");
    panicIf(wants == 2 && in1 >= netSource_.size(),
            "setGate: " + cellName(kind) + " needs two inputs");
    panicIf(wants == 1 && in1 != invalidNet,
            "setGate: " + cellName(kind) + " takes one input");

    if (gateIn0_[id] != in0) {
        if (gateIn0_[id] != invalidNet)
            unlinkUse(UseNode(id) * 2);
        gateIn0_[id] = in0;
        if (in0 != invalidNet)
            linkUse(in0, UseNode(id) * 2);
    }
    if (gateIn1_[id] != in1) {
        if (gateIn1_[id] != invalidNet)
            unlinkUse(UseNode(id) * 2 + 1);
        gateIn1_[id] = in1;
        if (in1 != invalidNet)
            linkUse(in1, UseNode(id) * 2 + 1);
    }
    gateKind_[id] = kind;
}

NetId
Netlist::addFlop(NetId d)
{
    return addGate(CellKind::DFFX1, d);
}

NetId
Netlist::addFlopReset(NetId d, NetId rn)
{
    return addGate(CellKind::DFFNRX1, d, rn);
}

std::vector<Gate>
Netlist::gateArray() const
{
    std::vector<Gate> gates;
    gates.reserve(gateKind_.size());
    for (GateId gi = 0; gi < gateKind_.size(); ++gi)
        gates.push_back(gate(gi));
    return gates;
}

NetId
Netlist::inputNet(const std::string &name) const
{
    for (const auto &p : inputs_)
        if (p.name == name)
            return p.net;
    fatal("Netlist '" + name_ + "': no input named '" + name + "'");
}

NetId
Netlist::outputNet(const std::string &name) const
{
    for (const auto &p : outputs_)
        if (p.name == name)
            return p.net;
    fatal("Netlist '" + name_ + "': no output named '" + name + "'");
}

std::string
Netlist::netLabel(NetId id) const
{
    if (id == invalidNet)
        return "<no net>";
    if (id < netSource_.size() && netNameRef_[id] != 0)
        return netName(id);
    return "net#" + std::to_string(id);
}

std::string
Netlist::gateLabel(GateId id) const
{
    if (id >= gateKind_.size())
        return "gate#" + std::to_string(id);
    return cellName(gateKind_[id]) + "#" + std::to_string(id) +
           " -> " + netLabel(gateOut_[id]);
}

std::size_t
Netlist::flopCount() const
{
    std::size_t n = 0;
    for (CellKind kind : gateKind_)
        if (cellIsSequential(kind))
            ++n;
    return n;
}

void
Netlist::validate() const
{
    panicIf(netNameRef_.size() != netSource_.size() ||
                driverHead_.size() != netSource_.size() ||
                driverTail_.size() != netSource_.size() ||
                gateIn0_.size() != gateKind_.size() ||
                gateIn1_.size() != gateKind_.size() ||
                gateOut_.size() != gateKind_.size() ||
                driverNext_.size() != gateKind_.size(),
            "Netlist: column size mismatch");

    // A net must be driven if anything reads it (a gate input or a
    // primary output); orphaned nets left behind by optimization are
    // tolerated.
    std::vector<bool> read(netSource_.size(), false);
    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        if (gateIn0_[gi] < netSource_.size())
            read[gateIn0_[gi]] = true;
        if (gateIn1_[gi] != invalidNet &&
            gateIn1_[gi] < netSource_.size())
            read[gateIn1_[gi]] = true;
    }
    for (const auto &p : outputs_)
        if (p.net < netSource_.size())
            read[p.net] = true;

    std::size_t listed_drivers = 0;
    for (NetId n = 0; n < netSource_.size(); ++n) {
        switch (netSource_[n]) {
          case NetSource::Undriven:
            panicIf(read[n],
                    "Netlist '" + name_ + "': net " +
                    std::to_string(n) +
                    (netNameRef_[n] == 0
                         ? std::string()
                         : " (" + netName(n) + ")") +
                    " is read but undriven");
            panicIf(driverHead_[n] != invalidGate,
                    "Netlist: undriven net has gate drivers");
            break;
          case NetSource::GateOutput: {
            panicIf(driverHead_[n] == invalidGate,
                    "Netlist: GateOutput net with no drivers");
            std::size_t count = 0;
            for (GateId g = driverHead_[n]; g != invalidGate;
                 g = driverNext_[g]) {
                panicIf(gateOut_[g] != n,
                        "Netlist: driver list names non-driver");
                ++count;
                panicIf(count > gateKind_.size(),
                        "Netlist: driver list cycle");
            }
            if (count > 1) {
                for (GateId g = driverHead_[n]; g != invalidGate;
                     g = driverNext_[g])
                    panicIf(gateKind_[g] != CellKind::TSBUFX1,
                            "Netlist: only TSBUFs may share net " +
                            std::to_string(n));
            }
            listed_drivers += count;
            break;
          }
          default:
            panicIf(driverHead_[n] != invalidGate,
                    "Netlist: input/const net has gate drivers");
            break;
        }
    }
    panicIf(listed_drivers != gateKind_.size(),
            "Netlist: driver index does not cover all gates");

    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        panicIf(gateIn0_[gi] >= netSource_.size(),
                "Netlist: gate with bad in0");
        if (cellInputCount(gateKind_[gi]) == 2)
            panicIf(gateIn1_[gi] >= netSource_.size(),
                    "Netlist: gate with bad in1");
        panicIf(gateOut_[gi] >= netSource_.size(),
                "Netlist: gate with bad out");
    }

    for (const auto &p : outputs_)
        panicIf(p.net >= netSource_.size(),
                "Netlist: bad output binding");

    checkUseIndex();
}

std::vector<GateId>
Netlist::levelize() const
{
    // Kahn's algorithm over combinational gates only. A net is
    // "ready" when all its (combinational) drivers have been
    // scheduled; sequential outputs, inputs, and constants are ready
    // from the start.
    const std::size_t gates = gateKind_.size();
    std::vector<unsigned> pending_drivers(netSource_.size(), 0);
    for (GateId gi = 0; gi < gates; ++gi) {
        if (!cellIsSequential(gateKind_[gi]))
            ++pending_drivers[gateOut_[gi]];
    }

    // CSR fanout: for each net, the combinational gates reading it
    // while it still has pending drivers. Two passes (count, fill)
    // replace the per-net vector<vector> of the old implementation;
    // the fill order (ascending gate id per net) and the FIFO ready
    // list reproduce its schedule exactly.
    std::vector<unsigned> unmet(gates, 0);
    std::vector<std::uint32_t> fanout_off(netSource_.size() + 1, 0);
    for (GateId gi = 0; gi < gates; ++gi) {
        if (cellIsSequential(gateKind_[gi]))
            continue;
        // For multi-driver TSBUF buses a gate's own output may be a
        // "pending" net, but it must not wait on itself; we count a
        // dependency per input net only.
        for (NetId n : {gateIn0_[gi], gateIn1_[gi]}) {
            if (n != invalidNet && pending_drivers[n] > 0) {
                ++fanout_off[n + 1];
                ++unmet[gi];
            }
        }
    }
    for (NetId n = 0; n < netSource_.size(); ++n)
        fanout_off[n + 1] += fanout_off[n];
    std::vector<GateId> fanout(fanout_off.back());
    {
        std::vector<std::uint32_t> cursor(
            fanout_off.begin(), fanout_off.end() - 1);
        for (GateId gi = 0; gi < gates; ++gi) {
            if (cellIsSequential(gateKind_[gi]))
                continue;
            for (NetId n : {gateIn0_[gi], gateIn1_[gi]}) {
                if (n != invalidNet && pending_drivers[n] > 0)
                    fanout[cursor[n]++] = gi;
            }
        }
    }

    // FIFO ready list: `order` doubles as the queue; `scanned` is
    // the consumption cursor.
    std::vector<GateId> order;
    order.reserve(gates);
    for (GateId gi = 0; gi < gates; ++gi)
        if (!cellIsSequential(gateKind_[gi]) && unmet[gi] == 0)
            order.push_back(gi);

    for (std::size_t scanned = 0; scanned < order.size();
         ++scanned) {
        const GateId gi = order[scanned];
        const NetId out = gateOut_[gi];
        panicIf(pending_drivers[out] == 0,
                "levelize: driver count underflow");
        if (--pending_drivers[out] == 0) {
            for (std::uint32_t f = fanout_off[out];
                 f < fanout_off[out + 1]; ++f) {
                const GateId reader = fanout[f];
                panicIf(unmet[reader] == 0,
                        "levelize: dependency underflow");
                if (--unmet[reader] == 0)
                    order.push_back(reader);
            }
        }
    }

    std::size_t comb = 0;
    for (CellKind kind : gateKind_)
        if (!cellIsSequential(kind))
            ++comb;
    fatalIf(order.size() != comb,
            "Netlist '" + name_ + "': combinational cycle detected (" +
            std::to_string(comb - order.size()) +
            " gates unschedulable)");
    return order;
}

std::array<std::size_t, numCellKinds>
Netlist::cellHistogram() const
{
    std::array<std::size_t, numCellKinds> histo{};
    for (CellKind kind : gateKind_)
        ++histo[static_cast<std::size_t>(kind)];
    return histo;
}

void
Netlist::rewireUses(NetId from, NetId to)
{
    panicIf(from >= netSource_.size() || to >= netSource_.size(),
            "rewireUses: bad net");
    if (from == to)
        return;

    // Patch every reading pin (following the use list) and find the
    // list tail, then splice the whole list onto `to`'s head. Cost:
    // O(fanout(from)), never O(gates).
    const UseNode head = useHead_[from];
    UseNode tail = invalidUseNode;
    for (UseNode u = head; u != invalidUseNode; u = useNext_[u]) {
        if (u & 1)
            gateIn1_[u >> 1] = to;
        else
            gateIn0_[u >> 1] = to;
        tail = u;
    }
    if (head != invalidUseNode) {
        const UseNode old = useHead_[to];
        useNext_[tail] = old;
        if (old != invalidUseNode)
            usePrev_[old] = tail;
        usePrev_[head] = useHeadFlag | to;
        useHead_[to] = head;
        useHead_[from] = invalidUseNode;
    }

    for (auto &p : outputs_)
        if (p.net == from)
            p.net = to;
}

void
Netlist::rewireUsesByScan(NetId from, NetId to)
{
    panicIf(from >= netSource_.size() || to >= netSource_.size(),
            "rewireUses: bad net");
    if (from == to)
        return;
    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        if (gateIn0_[gi] == from)
            gateIn0_[gi] = to;
        if (gateIn1_[gi] == from)
            gateIn1_[gi] = to;
    }
    for (auto &p : outputs_)
        if (p.net == from)
            p.net = to;
    rebuildUseIndex();
}

NetId
Netlist::makeFeedback()
{
    return addDrivenNet(NetSource::Undriven, "feedback");
}

void
Netlist::resolveFeedback(NetId placeholder, NetId actual)
{
    panicIf(placeholder >= netSource_.size() ||
                actual >= netSource_.size(),
            "resolveFeedback: bad net");
    panicIf(netSource_[placeholder] != NetSource::Undriven,
            "resolveFeedback: placeholder already driven");
    rewireUses(placeholder, actual);
    // Mark the placeholder as a harmless constant so validate() does
    // not flag it; nothing references it any more.
    netSource_[placeholder] = NetSource::Const0;
}

std::vector<GateId>
Netlist::removeGates(const std::vector<bool> &dead)
{
    panicIf(dead.size() != gateKind_.size(),
            "removeGates: flag vector size mismatch");

    std::vector<GateId> remap(gateKind_.size(), invalidGate);
    GateId next = 0;
    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        if (dead[gi])
            continue;
        remap[gi] = next;
        if (next != gi) {
            gateKind_[next] = gateKind_[gi];
            gateIn0_[next] = gateIn0_[gi];
            gateIn1_[next] = gateIn1_[gi];
            gateOut_[next] = gateOut_[gi];
        }
        ++next;
    }
    gateKind_.resize(next);
    gateIn0_.resize(next);
    gateIn1_.resize(next);
    gateOut_.resize(next);

    // Removed gates may have been a net's only driver.
    for (NetId n = 0; n < netSource_.size(); ++n)
        if (netSource_[n] == NetSource::GateOutput)
            netSource_[n] = NetSource::Undriven;
    for (NetId out : gateOut_)
        netSource_[out] = NetSource::GateOutput;

    rebuildDrivers();
    rebuildUseIndex();
    return remap;
}

std::vector<NetId>
Netlist::compact()
{
    const std::size_t old_nets = netSource_.size();
    std::vector<bool> keep(old_nets, false);
    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        keep[gateOut_[gi]] = true;
        keep[gateIn0_[gi]] = true;
        if (gateIn1_[gi] != invalidNet)
            keep[gateIn1_[gi]] = true;
    }
    for (const auto &p : inputs_)
        keep[p.net] = true;
    for (const auto &p : outputs_)
        keep[p.net] = true;
    if (const0_ != invalidNet)
        keep[const0_] = true;
    if (const1_ != invalidNet)
        keep[const1_] = true;

    std::vector<NetId> remap(old_nets, invalidNet);
    NetId next = 0;
    for (NetId n = 0; n < old_nets; ++n)
        if (keep[n])
            remap[n] = next++;
    if (next == old_nets)
        return remap; // nothing to drop

    // Slide the kept columns down in place (stable order). The name
    // pool keeps any dead names; refs of surviving nets stay valid.
    for (NetId n = 0; n < old_nets; ++n) {
        if (remap[n] == invalidNet || remap[n] == n)
            continue;
        netSource_[remap[n]] = netSource_[n];
        netNameRef_[remap[n]] = netNameRef_[n];
    }
    netSource_.resize(next);
    netNameRef_.resize(next);

    for (GateId gi = 0; gi < gateKind_.size(); ++gi) {
        gateOut_[gi] = remap[gateOut_[gi]];
        gateIn0_[gi] = remap[gateIn0_[gi]];
        if (gateIn1_[gi] != invalidNet)
            gateIn1_[gi] = remap[gateIn1_[gi]];
    }
    for (auto &p : inputs_)
        p.net = remap[p.net];
    for (auto &p : outputs_)
        p.net = remap[p.net];
    if (const0_ != invalidNet)
        const0_ = remap[const0_];
    if (const1_ != invalidNet)
        const1_ = remap[const1_];

    rebuildDrivers();
    rebuildUseIndex();
    return remap;
}

} // namespace printed
