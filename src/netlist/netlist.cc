#include "netlist.hh"

#include <algorithm>
#include <array>
#include <queue>

#include "common/logging.hh"

namespace printed
{

Netlist::Netlist(std::string name)
    : name_(std::move(name))
{}

Netlist
Netlist::restore(std::string name, std::vector<NetInfo> nets,
                 std::vector<Gate> gates,
                 std::vector<PortBinding> inputs,
                 std::vector<PortBinding> outputs, NetId const0,
                 NetId const1)
{
    Netlist nl(std::move(name));
    nl.nets_ = std::move(nets);
    nl.gates_ = std::move(gates);
    nl.inputs_ = std::move(inputs);
    nl.outputs_ = std::move(outputs);
    nl.const0_ = const0;
    nl.const1_ = const1;

    // Serialized blobs carry no driver lists; rebuild them from the
    // gates so the invariant "nets_[g.out].drivers contains g" holds
    // before validate() checks it.
    for (NetInfo &info : nl.nets_)
        info.drivers.clear();
    for (GateId g = 0; g < nl.gates_.size(); ++g) {
        const NetId out = nl.gates_[g].out;
        panicIf(out >= nl.nets_.size(),
                "Netlist::restore: gate with out-of-range output");
        nl.nets_[out].drivers.push_back(g);
    }
    nl.rebuildUseIndex();
    nl.validate();
    return nl;
}

// ----------------------------------------------------------------
// Use-index maintenance
// ----------------------------------------------------------------

void
Netlist::linkUse(NetId n, UseNode u)
{
    const UseNode old = useHead_[n];
    useNext_[u] = old;
    usePrev_[u] = useHeadFlag | n;
    if (old != invalidUseNode)
        usePrev_[old] = u;
    useHead_[n] = u;
}

void
Netlist::unlinkUse(UseNode u)
{
    const UseNode next = useNext_[u];
    const UseNode prev = usePrev_[u];
    panicIf(prev == invalidUseNode, "unlinkUse: node not linked");
    if (prev & useHeadFlag)
        useHead_[prev & ~useHeadFlag] = next;
    else
        useNext_[prev] = next;
    if (next != invalidUseNode)
        usePrev_[next] = prev;
    useNext_[u] = invalidUseNode;
    usePrev_[u] = invalidUseNode;
}

void
Netlist::linkGateUses(GateId gi)
{
    useNext_.resize(gates_.size() * 2, invalidUseNode);
    usePrev_.resize(gates_.size() * 2, invalidUseNode);
    const Gate &g = gates_[gi];
    if (g.in0 != invalidNet)
        linkUse(g.in0, UseNode(gi) * 2);
    if (g.in1 != invalidNet)
        linkUse(g.in1, UseNode(gi) * 2 + 1);
}

void
Netlist::rebuildUseIndex()
{
    useHead_.assign(nets_.size(), invalidUseNode);
    useNext_.assign(gates_.size() * 2, invalidUseNode);
    usePrev_.assign(gates_.size() * 2, invalidUseNode);
    for (GateId gi = 0; gi < gates_.size(); ++gi) {
        if (gates_[gi].in0 != invalidNet)
            linkUse(gates_[gi].in0, UseNode(gi) * 2);
        if (gates_[gi].in1 != invalidNet)
            linkUse(gates_[gi].in1, UseNode(gi) * 2 + 1);
    }
}

void
Netlist::checkUseIndex() const
{
    panicIf(useHead_.size() != nets_.size() ||
                useNext_.size() != gates_.size() * 2 ||
                usePrev_.size() != gates_.size() * 2,
            "use-index: array size mismatch");
    std::size_t linked = 0;
    for (NetId n = 0; n < nets_.size(); ++n) {
        UseNode prev = useHeadFlag | n;
        for (UseNode u = useHead_[n]; u != invalidUseNode;
             u = useNext_[u]) {
            panicIf(usePrev_[u] != prev, "use-index: bad prev link");
            const Gate &g = gates_[u >> 1];
            const NetId pin_net = (u & 1) ? g.in1 : g.in0;
            panicIf(pin_net != n, "use-index: pin does not read net");
            panicIf(++linked > 2 * gates_.size(),
                    "use-index: list cycle");
            prev = u;
        }
    }
    std::size_t pins = 0;
    for (const Gate &g : gates_) {
        if (g.in0 != invalidNet)
            ++pins;
        if (g.in1 != invalidNet)
            ++pins;
    }
    panicIf(linked != pins, "use-index: node count mismatch");
}

std::size_t
Netlist::netUseCount(NetId n) const
{
    panicIf(n >= nets_.size(), "netUseCount: bad net");
    std::size_t count = 0;
    for (UseNode u = useHead_[n]; u != invalidUseNode;
         u = useNext_[u])
        ++count;
    return count;
}

NetId
Netlist::addDrivenNet(NetSource source, std::string name)
{
    NetInfo info;
    info.source = source;
    info.name = std::move(name);
    nets_.push_back(std::move(info));
    useHead_.push_back(invalidUseNode);
    return NetId(nets_.size() - 1);
}

NetId
Netlist::addNet(std::string name)
{
    return addDrivenNet(NetSource::Undriven, std::move(name));
}

NetId
Netlist::addInput(const std::string &name)
{
    const NetId id = addDrivenNet(NetSource::Input, name);
    inputs_.push_back({name, id});
    return id;
}

void
Netlist::addOutput(const std::string &name, NetId net)
{
    panicIf(net >= nets_.size(), "addOutput: bad net");
    outputs_.push_back({name, net});
}

NetId
Netlist::constZero()
{
    if (const0_ == invalidNet)
        const0_ = addDrivenNet(NetSource::Const0, "const0");
    return const0_;
}

NetId
Netlist::constOne()
{
    if (const1_ == invalidNet)
        const1_ = addDrivenNet(NetSource::Const1, "const1");
    return const1_;
}

NetId
Netlist::addGate(CellKind kind, NetId a, NetId b)
{
    panicIf(kind == CellKind::TSBUFX1,
            "addGate: use addTristate for TSBUFX1");
    const unsigned wants = cellInputCount(kind);
    panicIf(a >= nets_.size(), "addGate: bad input a");
    panicIf(wants == 2 && b >= nets_.size(),
            "addGate: " + cellName(kind) + " needs two inputs");
    panicIf(wants == 1 && b != invalidNet,
            "addGate: " + cellName(kind) + " takes one input");

    const NetId out = addDrivenNet(NetSource::GateOutput);
    Gate g;
    g.kind = kind;
    g.in0 = a;
    g.in1 = wants == 2 ? b : invalidNet;
    g.out = out;
    gates_.push_back(g);
    nets_[out].drivers.push_back(GateId(gates_.size() - 1));
    linkGateUses(GateId(gates_.size() - 1));
    return out;
}

GateId
Netlist::addTristate(NetId a, NetId en, NetId bus)
{
    panicIf(a >= nets_.size() || en >= nets_.size() ||
            bus >= nets_.size(), "addTristate: bad net");
    panicIf(nets_[bus].source == NetSource::Input ||
            nets_[bus].source == NetSource::Const0 ||
            nets_[bus].source == NetSource::Const1,
            "addTristate: bus cannot be an input or constant");

    Gate g;
    g.kind = CellKind::TSBUFX1;
    g.in0 = a;
    g.in1 = en;
    g.out = bus;
    gates_.push_back(g);
    nets_[bus].source = NetSource::GateOutput;
    nets_[bus].drivers.push_back(GateId(gates_.size() - 1));
    linkGateUses(GateId(gates_.size() - 1));
    return GateId(gates_.size() - 1);
}

void
Netlist::setGate(GateId id, CellKind kind, NetId in0, NetId in1)
{
    panicIf(id >= gates_.size(), "setGate: bad gate");
    Gate &g = gates_[id];
    panicIf(kind == CellKind::TSBUFX1 ||
                g.kind == CellKind::TSBUFX1,
            "setGate: cannot rewrite tri-state drivers");
    panicIf(cellIsSequential(kind) != cellIsSequential(g.kind),
            "setGate: sequential/combinational change");
    const unsigned wants = cellInputCount(kind);
    panicIf(in0 >= nets_.size(), "setGate: bad input a");
    panicIf(wants == 2 && in1 >= nets_.size(),
            "setGate: " + cellName(kind) + " needs two inputs");
    panicIf(wants == 1 && in1 != invalidNet,
            "setGate: " + cellName(kind) + " takes one input");

    if (g.in0 != in0) {
        if (g.in0 != invalidNet)
            unlinkUse(UseNode(id) * 2);
        g.in0 = in0;
        if (in0 != invalidNet)
            linkUse(in0, UseNode(id) * 2);
    }
    if (g.in1 != in1) {
        if (g.in1 != invalidNet)
            unlinkUse(UseNode(id) * 2 + 1);
        g.in1 = in1;
        if (in1 != invalidNet)
            linkUse(in1, UseNode(id) * 2 + 1);
    }
    g.kind = kind;
}

NetId
Netlist::addFlop(NetId d)
{
    return addGate(CellKind::DFFX1, d);
}

NetId
Netlist::addFlopReset(NetId d, NetId rn)
{
    return addGate(CellKind::DFFNRX1, d, rn);
}

NetId
Netlist::inputNet(const std::string &name) const
{
    for (const auto &p : inputs_)
        if (p.name == name)
            return p.net;
    fatal("Netlist '" + name_ + "': no input named '" + name + "'");
}

NetId
Netlist::outputNet(const std::string &name) const
{
    for (const auto &p : outputs_)
        if (p.name == name)
            return p.net;
    fatal("Netlist '" + name_ + "': no output named '" + name + "'");
}

std::string
Netlist::netLabel(NetId id) const
{
    if (id == invalidNet)
        return "<no net>";
    if (id < nets_.size() && !nets_[id].name.empty())
        return nets_[id].name;
    return "net#" + std::to_string(id);
}

std::string
Netlist::gateLabel(GateId id) const
{
    if (id >= gates_.size())
        return "gate#" + std::to_string(id);
    const Gate &g = gates_[id];
    return cellName(g.kind) + "#" + std::to_string(id) + " -> " +
           netLabel(g.out);
}

std::size_t
Netlist::flopCount() const
{
    std::size_t n = 0;
    for (const auto &g : gates_)
        if (cellIsSequential(g.kind))
            ++n;
    return n;
}

void
Netlist::validate() const
{
    // A net must be driven if anything reads it (a gate input or a
    // primary output); orphaned nets left behind by optimization are
    // tolerated.
    std::vector<bool> read(nets_.size(), false);
    for (const Gate &g : gates_) {
        if (g.in0 < nets_.size())
            read[g.in0] = true;
        if (g.in1 != invalidNet && g.in1 < nets_.size())
            read[g.in1] = true;
    }
    for (const auto &p : outputs_)
        if (p.net < nets_.size())
            read[p.net] = true;

    for (NetId n = 0; n < nets_.size(); ++n) {
        const NetInfo &info = nets_[n];
        switch (info.source) {
          case NetSource::Undriven:
            panicIf(read[n],
                    "Netlist '" + name_ + "': net " + std::to_string(n) +
                    (info.name.empty() ? "" : " (" + info.name + ")") +
                    " is read but undriven");
            break;
          case NetSource::GateOutput:
            panicIf(info.drivers.empty(),
                    "Netlist: GateOutput net with no drivers");
            if (info.drivers.size() > 1) {
                for (GateId g : info.drivers)
                    panicIf(gates_[g].kind != CellKind::TSBUFX1,
                            "Netlist: only TSBUFs may share net " +
                            std::to_string(n));
            }
            break;
          default:
            panicIf(!info.drivers.empty(),
                    "Netlist: input/const net has gate drivers");
            break;
        }
    }

    for (const Gate &g : gates_) {
        panicIf(g.in0 >= nets_.size(), "Netlist: gate with bad in0");
        if (cellInputCount(g.kind) == 2)
            panicIf(g.in1 >= nets_.size(),
                    "Netlist: gate with bad in1");
        panicIf(g.out >= nets_.size(), "Netlist: gate with bad out");
    }

    for (const auto &p : outputs_)
        panicIf(p.net >= nets_.size(), "Netlist: bad output binding");

    checkUseIndex();
}

std::vector<GateId>
Netlist::levelize() const
{
    // Kahn's algorithm over combinational gates only. A net is
    // "ready" when all its (combinational) drivers have been
    // scheduled; sequential outputs, inputs, and constants are ready
    // from the start.
    std::vector<unsigned> pending_drivers(nets_.size(), 0);
    for (const Gate &g : gates_) {
        if (!cellIsSequential(g.kind))
            ++pending_drivers[g.out];
    }

    // fanout[n] = combinational gates reading net n
    std::vector<std::vector<GateId>> fanout(nets_.size());
    std::vector<unsigned> unmet(gates_.size(), 0);
    for (GateId gi = 0; gi < gates_.size(); ++gi) {
        const Gate &g = gates_[gi];
        if (cellIsSequential(g.kind))
            continue;
        auto watch = [&](NetId n) {
            if (n == invalidNet)
                return;
            if (pending_drivers[n] > 0) {
                fanout[n].push_back(gi);
                ++unmet[gi];
            }
        };
        // For multi-driver TSBUF buses a gate's own output may be a
        // "pending" net, but it must not wait on itself; we count a
        // dependency per input net only.
        watch(g.in0);
        watch(g.in1);
    }

    std::queue<GateId> ready;
    for (GateId gi = 0; gi < gates_.size(); ++gi)
        if (!cellIsSequential(gates_[gi].kind) && unmet[gi] == 0)
            ready.push(gi);

    std::vector<GateId> order;
    order.reserve(gates_.size());
    while (!ready.empty()) {
        const GateId gi = ready.front();
        ready.pop();
        order.push_back(gi);
        const NetId out = gates_[gi].out;
        panicIf(pending_drivers[out] == 0,
                "levelize: driver count underflow");
        if (--pending_drivers[out] == 0) {
            for (GateId reader : fanout[out]) {
                panicIf(unmet[reader] == 0,
                        "levelize: dependency underflow");
                if (--unmet[reader] == 0)
                    ready.push(reader);
            }
        }
    }

    std::size_t comb = 0;
    for (const Gate &g : gates_)
        if (!cellIsSequential(g.kind))
            ++comb;
    fatalIf(order.size() != comb,
            "Netlist '" + name_ + "': combinational cycle detected (" +
            std::to_string(comb - order.size()) +
            " gates unschedulable)");
    return order;
}

std::array<std::size_t, numCellKinds>
Netlist::cellHistogram() const
{
    std::array<std::size_t, numCellKinds> histo{};
    for (const Gate &g : gates_)
        ++histo[static_cast<std::size_t>(g.kind)];
    return histo;
}

void
Netlist::rewireUses(NetId from, NetId to)
{
    panicIf(from >= nets_.size() || to >= nets_.size(),
            "rewireUses: bad net");
    if (from == to)
        return;

    // Patch every reading pin (following the use list) and find the
    // list tail, then splice the whole list onto `to`'s head. Cost:
    // O(fanout(from)), never O(gates).
    const UseNode head = useHead_[from];
    UseNode tail = invalidUseNode;
    for (UseNode u = head; u != invalidUseNode; u = useNext_[u]) {
        Gate &g = gates_[u >> 1];
        if (u & 1)
            g.in1 = to;
        else
            g.in0 = to;
        tail = u;
    }
    if (head != invalidUseNode) {
        const UseNode old = useHead_[to];
        useNext_[tail] = old;
        if (old != invalidUseNode)
            usePrev_[old] = tail;
        usePrev_[head] = useHeadFlag | to;
        useHead_[to] = head;
        useHead_[from] = invalidUseNode;
    }

    for (auto &p : outputs_)
        if (p.net == from)
            p.net = to;
}

void
Netlist::rewireUsesByScan(NetId from, NetId to)
{
    panicIf(from >= nets_.size() || to >= nets_.size(),
            "rewireUses: bad net");
    if (from == to)
        return;
    for (Gate &g : gates_) {
        if (g.in0 == from)
            g.in0 = to;
        if (g.in1 == from)
            g.in1 = to;
    }
    for (auto &p : outputs_)
        if (p.net == from)
            p.net = to;
    rebuildUseIndex();
}

NetId
Netlist::makeFeedback()
{
    return addDrivenNet(NetSource::Undriven, "feedback");
}

void
Netlist::resolveFeedback(NetId placeholder, NetId actual)
{
    panicIf(placeholder >= nets_.size() || actual >= nets_.size(),
            "resolveFeedback: bad net");
    panicIf(nets_[placeholder].source != NetSource::Undriven,
            "resolveFeedback: placeholder already driven");
    rewireUses(placeholder, actual);
    // Mark the placeholder as a harmless constant so validate() does
    // not flag it; nothing references it any more.
    nets_[placeholder].source = NetSource::Const0;
}

void
Netlist::removeGates(const std::vector<bool> &dead)
{
    panicIf(dead.size() != gates_.size(),
            "removeGates: flag vector size mismatch");

    std::vector<Gate> kept;
    kept.reserve(gates_.size());
    for (GateId gi = 0; gi < gates_.size(); ++gi)
        if (!dead[gi])
            kept.push_back(gates_[gi]);
    gates_ = std::move(kept);

    // Rebuild net driver lists from scratch.
    for (NetInfo &info : nets_) {
        info.drivers.clear();
        if (info.source == NetSource::GateOutput)
            info.source = NetSource::Undriven;
    }
    for (GateId gi = 0; gi < gates_.size(); ++gi) {
        NetInfo &info = nets_[gates_[gi].out];
        info.source = NetSource::GateOutput;
        info.drivers.push_back(gi);
    }
    rebuildUseIndex();
}

} // namespace printed
