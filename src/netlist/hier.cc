#include "hier.hh"

#include "common/logging.hh"
#include "common/trace.hh"
#include "synth/opt.hh"

namespace printed::hier
{

Design::Design(std::string name) : name_(std::move(name)) {}

BlockId
Design::addBlock(std::string instance, Netlist netlist)
{
    fatalIf(instance.empty(), "hier: empty instance name");
    fatalIf(byInstance_.count(instance) != 0,
            "hier: duplicate instance '" + instance + "'");
    const BlockId id = BlockId(blocks_.size());
    byInstance_.emplace(instance, id);
    blocks_.push_back({std::move(instance), std::move(netlist),
                       true, true, {}});
    return id;
}

const Design::Block &
Design::checkedBlock(BlockId b) const
{
    fatalIf(b >= blocks_.size(), "hier: bad block id");
    return blocks_[b];
}

const std::string &
Design::blockName(BlockId b) const
{
    return checkedBlock(b).instance;
}

const Netlist &
Design::blockNetlist(BlockId b) const
{
    return checkedBlock(b).netlist;
}

Netlist &
Design::mutableBlockNetlist(BlockId b)
{
    checkedBlock(b);
    blocks_[b].needOpt = true;
    blocks_[b].needChar = true;
    return blocks_[b].netlist;
}

bool
Design::hasInput(BlockId b, const std::string &port) const
{
    for (const PortBinding &p : blocks_[b].netlist.inputs())
        if (p.name == port)
            return true;
    return false;
}

bool
Design::hasOutput(BlockId b, const std::string &port) const
{
    for (const PortBinding &p : blocks_[b].netlist.outputs())
        if (p.name == port)
            return true;
    return false;
}

void
Design::connect(const PortRef &from, const PortRef &to)
{
    checkedBlock(from.block);
    checkedBlock(to.block);
    fatalIf(!hasOutput(from.block, from.port),
            "hier: '" + blocks_[from.block].instance +
            "' has no output port '" + from.port + "'");
    fatalIf(!hasInput(to.block, to.port),
            "hier: '" + blocks_[to.block].instance +
            "' has no input port '" + to.port + "'");
    const auto key = std::make_pair(to.block, to.port);
    fatalIf(inputFrom_.count(key) != 0,
            "hier: input '" + blocks_[to.block].instance + "." +
            to.port + "' already connected");
    inputFrom_.emplace(key, from);
}

void
Design::connectBus(BlockId from, const std::string &fromBus,
                   BlockId to, const std::string &toBus,
                   unsigned width)
{
    for (unsigned i = 0; i < width; ++i) {
        const std::string idx = "[" + std::to_string(i) + "]";
        connect({from, fromBus + idx}, {to, toBus + idx});
    }
}

void
Design::exposeOutput(const PortRef &from, std::string topName)
{
    checkedBlock(from.block);
    fatalIf(!hasOutput(from.block, from.port),
            "hier: '" + blocks_[from.block].instance +
            "' has no output port '" + from.port + "'");
    exposed_.emplace_back(from, std::move(topName));
}

void
Design::exposeOutputBus(BlockId from, const std::string &bus,
                        unsigned width)
{
    for (unsigned i = 0; i < width; ++i) {
        const std::string port = bus + "[" + std::to_string(i) + "]";
        exposeOutput({from, port},
                     blocks_[from].instance + "." + port);
    }
}

std::size_t
Design::gateCount() const
{
    std::size_t total = 0;
    for (const Block &b : blocks_)
        total += b.netlist.gateCount();
    return total;
}

std::size_t
Design::dirtyBlockCount() const
{
    std::size_t n = 0;
    for (const Block &b : blocks_)
        n += b.needOpt ? 1 : 0;
    return n;
}

std::size_t
Design::optimizeBlocks(ThreadPool &pool)
{
    trace::Span span("hier.optimizeBlocks", name_);
    std::vector<std::size_t> dirty;
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        if (blocks_[i].needOpt)
            dirty.push_back(i);
    // One item = one block; items touch disjoint blocks, so the
    // parallel.hh determinism contract holds trivially.
    pool.parallelFor(dirty.size(), [&](std::size_t i) {
        synth::optimize(blocks_[dirty[i]].netlist);
    });
    for (std::size_t i : dirty)
        blocks_[i].needOpt = false;
    return dirty.size();
}

std::vector<Characterization>
Design::characterizeBlocks(ThreadPool &pool,
                           const CellLibrary &lib, double activity)
{
    trace::Span span("hier.characterizeBlocks", name_);
    std::vector<std::size_t> stale;
    for (std::size_t i = 0; i < blocks_.size(); ++i)
        if (blocks_[i].needChar)
            stale.push_back(i);
    const std::vector<Characterization> fresh =
        pool.parallelMap(stale.size(), [&](std::size_t i) {
            return characterize(blocks_[stale[i]].netlist, lib,
                                activity);
        });
    for (std::size_t i = 0; i < stale.size(); ++i) {
        blocks_[stale[i]].ch = fresh[i];
        blocks_[stale[i]].needChar = false;
    }
    std::vector<Characterization> out;
    out.reserve(blocks_.size());
    for (const Block &b : blocks_)
        out.push_back(b.ch);
    return out;
}

DesignCharacterization
Design::characterizeDesign(ThreadPool &pool,
                           const CellLibrary &lib, double activity)
{
    DesignCharacterization d;
    d.perBlock = characterizeBlocks(pool, lib, activity);
    d.blocks = d.perBlock.size();
    for (const Characterization &c : d.perBlock) {
        d.gates += c.gateCount();
        d.areaCm2 += c.areaCm2();
        if (d.fmaxHz == 0 || c.fmaxHz() < d.fmaxHz)
            d.fmaxHz = c.fmaxHz();
    }
    // One global clock at the slowest block's fmax: dynamic power
    // scales with frequency, static power does not.
    for (const Characterization &c : d.perBlock) {
        const double scale =
            c.fmaxHz() > 0 ? d.fmaxHz / c.fmaxHz() : 0;
        d.powerMw += c.powerAtFmax.dynamic_mW * scale +
                     c.powerAtFmax.static_mW;
    }
    return d;
}

Netlist
Design::flatten() const
{
    trace::Span span("hier.flatten", name_);
    Netlist flat(name_);
    {
        std::size_t nets = 0, gates = 0;
        for (const Block &b : blocks_) {
            nets += b.netlist.netCount();
            gates += b.netlist.gateCount();
        }
        flat.reserve(nets, gates);
    }

    // Per-block net translation tables, kept for the whole pass so
    // cross-block references can be resolved after every block is
    // in (the block graph may be cyclic).
    std::vector<std::vector<NetId>> trans(blocks_.size());

    // Resolved producer outputs: (block, port) -> flat net.
    std::map<std::pair<BlockId, std::string>, NetId> outNet;

    // Cross-block forward references: placeholder awaiting a
    // producer block that has not been instantiated yet.
    struct CrossRef
    {
        NetId placeholder;
        PortRef from;
    };
    std::vector<CrossRef> pendingCross;

    for (BlockId b = 0; b < blocks_.size(); ++b) {
        const Netlist &nl = blocks_[b].netlist;
        const std::string &inst = blocks_[b].instance;
        std::vector<NetId> &t = trans[b];
        t.assign(nl.netCount(), invalidNet);

        if (nl.constZeroId() != invalidNet)
            t[nl.constZeroId()] = flat.constZero();
        if (nl.constOneId() != invalidNet)
            t[nl.constOneId()] = flat.constOne();

        // Input ports: wired from a producer (possibly a later
        // block: feedback placeholder), or auto-exposed as a
        // "<instance>.<port>" top-level input.
        for (const PortBinding &p : nl.inputs()) {
            if (t[p.net] != invalidNet)
                continue; // port aliasing a constant
            const auto conn = inputFrom_.find({b, p.name});
            if (conn == inputFrom_.end()) {
                t[p.net] = flat.addInput(inst + "." + p.name);
                continue;
            }
            const auto ready = outNet.find(
                {conn->second.block, conn->second.port});
            if (ready != outNet.end()) {
                t[p.net] = ready->second;
            } else {
                const NetId ph = flat.makeFeedback();
                t[p.net] = ph;
                pendingCross.push_back({ph, conn->second});
            }
        }

        // Gates, in creation order. A gate may read a net whose
        // driver appears later (resolved sequential feedback), so
        // unseen inputs become in-block feedback placeholders.
        std::unordered_map<NetId, NetId> fwd; // block net -> ph
        auto xin = [&](NetId n) {
            if (n == invalidNet)
                return invalidNet;
            if (t[n] != invalidNet)
                return t[n];
            const NetId ph = flat.makeFeedback();
            t[n] = ph;
            fwd.emplace(n, ph);
            return ph;
        };
        for (GateId gi = 0; gi < nl.gateCount(); ++gi) {
            const CellKind k = nl.gateKind(gi);
            const NetId a = xin(nl.gateIn0(gi));
            const NetId bn = xin(nl.gateIn1(gi));
            const NetId out = nl.gateOut(gi);
            if (k == CellKind::TSBUFX1) {
                // Shared bus net: materialize on the first driver.
                const auto f = fwd.find(out);
                if (f != fwd.end()) {
                    const NetId bus = flat.addNet();
                    flat.resolveFeedback(f->second, bus);
                    t[out] = bus;
                    fwd.erase(f);
                } else if (t[out] == invalidNet) {
                    t[out] = flat.addNet();
                }
                flat.addTristate(a, bn, t[out]);
                continue;
            }
            const NetId newOut = flat.addGate(k, a, bn);
            const auto f = fwd.find(out);
            if (f != fwd.end()) {
                flat.resolveFeedback(f->second, newOut);
                fwd.erase(f);
            }
            t[out] = newOut;
        }
        panicIf(!fwd.empty(),
                "hier: block '" + inst +
                "' reads a net no gate or port drives");

        for (const PortBinding &p : nl.outputs()) {
            panicIf(t[p.net] == invalidNet,
                    "hier: output '" + inst + "." + p.name +
                    "' is unconnected inside the block");
            outNet.emplace(std::make_pair(b, p.name), t[p.net]);
        }
    }

    for (const CrossRef &cr : pendingCross) {
        const auto it =
            outNet.find({cr.from.block, cr.from.port});
        panicIf(it == outNet.end(),
                "hier: unresolved connection from '" +
                blocks_[cr.from.block].instance + "." +
                cr.from.port + "'");
        flat.resolveFeedback(cr.placeholder, it->second);
    }

    for (const auto &e : exposed_)
        flat.addOutput(e.second,
                       outNet.at({e.first.block, e.first.port}));

    // Retired feedback placeholders are orphans now; drop them so
    // the flat netlist is dense.
    flat.compact();
    flat.validate();
    return flat;
}

} // namespace printed::hier
