#include "verilog.hh"

#include <map>

#include "common/logging.hh"

namespace printed
{

namespace
{

/** Legal Verilog identifier for a net. */
std::string
netName(const Netlist &nl, NetId id)
{
    if (nl.netHasName(id))
        // escaped identifier (bus bracket syntax)
        return "\\" + nl.netName(id) + " ";
    switch (nl.netSource(id)) {
      case NetSource::Const0:
        return "1'b0";
      case NetSource::Const1:
        return "1'b1";
      default:
        return "n" + std::to_string(id);
    }
}

/** Behavioral models of the printed standard cells. */
const char *cellModels = R"(
// Behavioral models of the printed standard-cell library (Table 2).
module INVX1(input A, output Y);        assign Y = ~A;        endmodule
module NAND2X1(input A, B, output Y);   assign Y = ~(A & B);  endmodule
module NOR2X1(input A, B, output Y);    assign Y = ~(A | B);  endmodule
module AND2X1(input A, B, output Y);    assign Y = A & B;     endmodule
module OR2X1(input A, B, output Y);     assign Y = A | B;     endmodule
module XOR2X1(input A, B, output Y);    assign Y = A ^ B;     endmodule
module XNOR2X1(input A, B, output Y);   assign Y = ~(A ^ B);  endmodule
module TSBUFX1(input A, EN, output Y);  assign Y = EN ? A : 1'bz; endmodule
module LATCHX1(input S, R, output reg Q);
    always @(S or R)
        if (S) Q <= 1'b1; else if (R) Q <= 1'b0;
endmodule
module DFFX1(input D, CK, output reg Q);
    always @(posedge CK) Q <= D;
endmodule
module DFFNRX1(input D, RN, CK, output reg Q);
    always @(posedge CK or negedge RN)
        if (!RN) Q <= 1'b0; else Q <= D;
endmodule
)";

} // anonymous namespace

void
writeVerilog(std::ostream &os, const Netlist &netlist,
             bool include_cell_models)
{
    netlist.validate();

    if (include_cell_models)
        os << cellModels << "\n";

    const bool has_seq = netlist.flopCount() > 0;

    os << "module " << netlist.name() << " (\n";
    if (has_seq)
        os << "    input clk,\n";
    for (const auto &p : netlist.inputs())
        os << "    input " << netName(netlist, p.net) << ",\n";
    for (std::size_t i = 0; i < netlist.outputs().size(); ++i) {
        const auto &p = netlist.outputs()[i];
        os << "    output \\" << p.name << " "
           << (i + 1 < netlist.outputs().size() ? "," : "") << "\n";
    }
    os << ");\n\n";

    // Internal wires.
    for (NetId n = 0; n < netlist.netCount(); ++n) {
        if (netlist.netSource(n) == NetSource::GateOutput &&
            !netlist.netHasName(n))
            os << "    wire n" << n << ";\n";
    }
    os << "\n";

    // Cell instances.
    for (GateId gi = 0; gi < netlist.gateCount(); ++gi) {
        const Gate &g = netlist.gate(gi);
        const std::string out = netName(netlist, g.out);
        const std::string a = netName(netlist, g.in0);
        os << "    " << cellName(g.kind) << " u" << gi << " (";
        switch (g.kind) {
          case CellKind::INVX1:
            os << ".A(" << a << "), .Y(" << out << ")";
            break;
          case CellKind::DFFX1:
            os << ".D(" << a << "), .CK(clk), .Q(" << out << ")";
            break;
          case CellKind::DFFNRX1:
            os << ".D(" << a << "), .RN("
               << netName(netlist, g.in1) << "), .CK(clk), .Q("
               << out << ")";
            break;
          case CellKind::LATCHX1:
            os << ".S(" << a << "), .R("
               << netName(netlist, g.in1) << "), .Q(" << out << ")";
            break;
          case CellKind::TSBUFX1:
            os << ".A(" << a << "), .EN("
               << netName(netlist, g.in1) << "), .Y(" << out << ")";
            break;
          default:
            os << ".A(" << a << "), .B("
               << netName(netlist, g.in1) << "), .Y(" << out << ")";
            break;
        }
        os << ");\n";
    }

    // Output bindings for outputs aliasing internal nets.
    for (const auto &p : netlist.outputs()) {
        const bool direct = netlist.netHasName(p.net) &&
                            netlist.netName(p.net) == p.name;
        if (!direct)
            os << "    assign \\" << p.name << "  = "
               << netName(netlist, p.net) << ";\n";
    }
    os << "\nendmodule\n";
}

} // namespace printed
