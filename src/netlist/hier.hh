/**
 * @file
 * Hierarchical module layer over the flat netlist core.
 *
 * A hier::Design is a set of named blocks (each an ordinary flat
 * Netlist) plus port-to-port connections between them. It is the
 * unit the million-gate flow works in: a tiled many-core design is
 * elaborated block by block, each block is optimized and
 * characterized *independently* — which makes both phases
 * embarrassingly parallel over the existing ThreadPool — and the
 * result is flattened into one Netlist only when a consumer
 * genuinely needs the flat view (simulation, Verilog export).
 *
 * Parallelism contract (common/parallel.hh): one work item is one
 * block, items share no mutable state, and every reduction happens
 * serially in block order — so optimizeBlocks() and
 * characterizeBlocks() produce bit-identical results for every
 * thread count.
 *
 * Incrementality: each block carries dirty bits. addBlock and
 * mutableBlockNetlist() mark a block dirty; optimizeBlocks /
 * characterizeBlocks only touch dirty blocks and return how many
 * they processed, so an edit to one tile of a thousand-tile design
 * re-optimizes one block, not a thousand.
 *
 * flatten() is deliberately *serial* and deterministic: blocks are
 * instantiated in creation order, cross-block references to blocks
 * not yet instantiated go through the netlist's feedback
 * placeholders and are resolved at the end (so block-level cycles —
 * core reads memory, memory reads core — are legal as long as the
 * flat gate-level graph is acyclic through registers). Unconnected
 * block inputs are auto-exposed as top-level inputs named
 * "<instance>.<port>".
 */

#ifndef PRINTED_NETLIST_HIER_HH
#define PRINTED_NETLIST_HIER_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/characterize.hh"
#include "common/parallel.hh"
#include "netlist/netlist.hh"
#include "tech/library.hh"

namespace printed::hier
{

/** Index of a block within its Design. */
using BlockId = std::uint32_t;

/** One side of a connection: a port on a block. */
struct PortRef
{
    BlockId block = 0;
    std::string port;
};

/**
 * Design-level roll-up of per-block characterizations: the
 * whole-design numbers a tiled many-core reports. fmax is the
 * slowest block's fmax (one global clock); dynamic power of every
 * block is rescaled from its own fmax to the design fmax before
 * summing (static power does not scale with frequency).
 */
struct DesignCharacterization
{
    std::size_t blocks = 0;
    std::size_t gates = 0;
    double areaCm2 = 0;
    double fmaxHz = 0;
    double powerMw = 0;
    std::vector<Characterization> perBlock;
};

/** A hierarchical design: named blocks wired port-to-port. */
class Design
{
  public:
    explicit Design(std::string name = "design");

    const std::string &name() const { return name_; }

    // ------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------

    /**
     * Add a block instance. Instance names must be unique; the
     * block arrives dirty (needs optimize + characterize).
     */
    BlockId addBlock(std::string instance, Netlist netlist);

    std::size_t blockCount() const { return blocks_.size(); }

    const std::string &blockName(BlockId b) const;

    const Netlist &blockNetlist(BlockId b) const;

    /**
     * Mutable access to a block's netlist; marks the block dirty
     * for the next optimizeBlocks / characterizeBlocks.
     */
    Netlist &mutableBlockNetlist(BlockId b);

    /**
     * Wire an output port of one block to an input port of
     * another. Both ports must exist; an input may be driven by at
     * most one producer. Blocks may be connected in any order
     * (including cyclically at the block level).
     */
    void connect(const PortRef &from, const PortRef &to);

    /** connect() over a whole "name[0..width)" bus. */
    void connectBus(BlockId from, const std::string &fromBus,
                    BlockId to, const std::string &toBus,
                    unsigned width);

    /** Expose a block output as a named top-level output. */
    void exposeOutput(const PortRef &from, std::string topName);

    /** exposeOutput() over a whole "name[0..width)" bus. */
    void exposeOutputBus(BlockId from, const std::string &bus,
                         unsigned width);

    // ------------------------------------------------------------
    // Parallel phases
    // ------------------------------------------------------------

    /** Sum of block gate counts (no flatten needed). */
    std::size_t gateCount() const;

    /** Blocks currently needing optimization. */
    std::size_t dirtyBlockCount() const;

    /**
     * synth::optimize every dirty block, fanned out over `pool`
     * one block per work item. Deterministic for any thread count.
     *
     * @return number of blocks optimized (0 when everything was
     *         already clean — the incremental fast path).
     */
    std::size_t optimizeBlocks(ThreadPool &pool);

    /**
     * Characterize every block (area / timing / power), fanning
     * the stale ones out over `pool`; clean blocks reuse their
     * cached result.
     *
     * @return per-block characterizations, in block order.
     */
    std::vector<Characterization>
    characterizeBlocks(ThreadPool &pool, const CellLibrary &lib,
                       double activity = paperActivityFactor);

    /** characterizeBlocks + the design-level roll-up. */
    DesignCharacterization
    characterizeDesign(ThreadPool &pool, const CellLibrary &lib,
                       double activity = paperActivityFactor);

    // ------------------------------------------------------------
    // Flatten
    // ------------------------------------------------------------

    /**
     * Instantiate every block into one flat Netlist (serial,
     * deterministic; see file comment). The result is compacted
     * and validated but *not* re-optimized: per-block optimization
     * is the hierarchical flow's whole point.
     */
    Netlist flatten() const;

  private:
    struct Block
    {
        std::string instance;
        Netlist netlist;
        bool needOpt = true;
        bool needChar = true;
        Characterization ch; ///< valid iff !needChar
    };

    const Block &checkedBlock(BlockId b) const;

    /** True when `port` names an input (or output) port of `b`. */
    bool hasInput(BlockId b, const std::string &port) const;
    bool hasOutput(BlockId b, const std::string &port) const;

    std::string name_;
    std::vector<Block> blocks_;
    std::unordered_map<std::string, BlockId> byInstance_;

    /** Consumer input -> producer output. */
    std::map<std::pair<BlockId, std::string>, PortRef> inputFrom_;

    /** Exposed top-level outputs, in exposure order. */
    std::vector<std::pair<PortRef, std::string>> exposed_;
};

} // namespace printed::hier

#endif // PRINTED_NETLIST_HIER_HH
