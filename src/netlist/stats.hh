/**
 * @file
 * Summary statistics for a netlist: per-cell histogram with
 * sequential/combinational split, logic depth, and pretty-printing.
 */

#ifndef PRINTED_NETLIST_STATS_HH
#define PRINTED_NETLIST_STATS_HH

#include <array>
#include <ostream>
#include <string>

#include "netlist/netlist.hh"

namespace printed
{

/** Aggregate structural statistics of a Netlist. */
struct NetlistStats
{
    std::array<std::size_t, numCellKinds> histogram{};
    std::size_t totalGates = 0;        ///< all cell instances
    std::size_t combGates = 0;         ///< combinational instances
    std::size_t seqGates = 0;          ///< LATCH/DFF/DFFNR instances
    std::size_t logicDepth = 0;        ///< longest comb. gate chain
    std::size_t inputCount = 0;
    std::size_t outputCount = 0;
};

/** Compute structural statistics (includes a levelization pass). */
NetlistStats computeStats(const Netlist &netlist);

/** Print a one-block human-readable summary. */
void printStats(std::ostream &os, const std::string &label,
                const NetlistStats &stats);

} // namespace printed

#endif // PRINTED_NETLIST_STATS_HH
