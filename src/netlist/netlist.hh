/**
 * @file
 * Gate-level netlist intermediate representation.
 *
 * A Netlist is a DAG of standard-cell instances (Gates) connected by
 * Nets. Only the eleven cells of the printed standard-cell libraries
 * (Table 2) can be instantiated, mirroring the constraint the paper's
 * synthesis flow works under. Sequential cells (DFFX1 / DFFNRX1 /
 * LATCHX1) break combinational paths; tri-state buffers may share an
 * output net to form a resolved bus.
 *
 * Storage is struct-of-arrays: gate kind/in0/in1/out live in four
 * flat vectors, net source tags in another, and net names are
 * interned into one shared character pool (most nets are unnamed, so
 * a per-net std::string would waste both memory and construction
 * time at million-gate scale). Driver sets are an intrusive per-net
 * linked list threaded through a per-gate next array, and a
 * maintained use-index (net -> reading pins) makes rewireUses
 * O(fanout) instead of O(gates). The public Gate struct remains the
 * value type handed out by gate() and consumed by serialization.
 *
 * The same netlist object is consumed by:
 *   - printed::sim     (functional gate-level simulation + activity)
 *   - printed::analysis (area, static timing, power)
 *   - printed::synth   (optimization passes)
 */

#ifndef PRINTED_NETLIST_NETLIST_HH
#define PRINTED_NETLIST_NETLIST_HH

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tech/cell.hh"

namespace printed
{

/** Index of a net within its Netlist. */
using NetId = std::uint32_t;

/** Index of a gate within its Netlist. */
using GateId = std::uint32_t;

/** Sentinel for "no net" (e.g. the unused second input of an INV). */
constexpr NetId invalidNet = std::numeric_limits<NetId>::max();

/** Sentinel for "no gate". */
constexpr GateId invalidGate = std::numeric_limits<GateId>::max();

/**
 * One gate input pin in the use-index: node = gate * 2 + pin.
 * Pin 0 is in0, pin 1 is in1.
 */
using UseNode = std::uint32_t;

/** Sentinel for "no use node". */
constexpr UseNode invalidUseNode =
    std::numeric_limits<UseNode>::max();

/**
 * One standard-cell instance, as a value. Internally gates are
 * stored as four parallel arrays; gate() assembles this view.
 */
struct Gate
{
    CellKind kind = CellKind::INVX1;
    NetId in0 = invalidNet; ///< first input (D for flops, A for TSBUF)
    NetId in1 = invalidNet; ///< second input (RN for DFFNR, EN for TSBUF)
    NetId out = invalidNet; ///< output net (Q for sequential cells)

    bool operator==(const Gate &) const = default;
};

/** How a net is driven. */
enum class NetSource : std::uint8_t
{
    Undriven,   ///< error unless it is an input/constant
    Input,      ///< primary input
    Const0,     ///< constant logic 0 (tie-low)
    Const1,     ///< constant logic 1 (tie-high)
    GateOutput, ///< driven by one gate (or several TSBUFs)
};

/** A named primary output and the net it exposes. */
struct PortBinding
{
    std::string name;
    NetId net = invalidNet;
};

/**
 * A flat gate-level module.
 *
 * Construction API returns NetIds so synthesis generators can be
 * written in a dataflow style:
 *
 *     NetId sum = nl.addGate(CellKind::XOR2X1, a, b);
 */
class Netlist
{
  public:
    explicit Netlist(std::string name = "top");

    /** Module name (used in reports). */
    const std::string &name() const { return name_; }

    // ------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------

    /** Create a fresh undriven net (to be driven later). */
    NetId addNet(std::string name = {});

    /** Create a named primary input. */
    NetId addInput(const std::string &name);

    /** Expose an existing net as a named primary output. */
    void addOutput(const std::string &name, NetId net);

    /** The constant-0 net (created on first use). */
    NetId constZero();

    /** The constant-1 net (created on first use). */
    NetId constOne();

    /**
     * Instantiate a cell driving a fresh net.
     * @param kind cell to instantiate
     * @param a first input
     * @param b second input (required iff the cell has two inputs)
     * @return the new output net
     */
    NetId addGate(CellKind kind, NetId a, NetId b = invalidNet);

    /**
     * Instantiate a tri-state buffer driving an existing bus net.
     * Multiple TSBUFs may drive the same bus; simulation checks that
     * at most one is enabled at a time.
     */
    GateId addTristate(NetId a, NetId en, NetId bus);

    /** D flip-flop: returns Q for the given D. */
    NetId addFlop(NetId d);

    /** D flip-flop with asynchronous active-low reset. */
    NetId addFlopReset(NetId d, NetId rn);

    /** Pre-size the flat arrays (million-gate generators). */
    void reserve(std::size_t nets, std::size_t gates);

    // ------------------------------------------------------------
    // Access
    // ------------------------------------------------------------

    std::size_t netCount() const { return netSource_.size(); }
    std::size_t gateCount() const { return gateKind_.size(); }

    /** How net `n` is driven. */
    NetSource netSource(NetId n) const { return netSource_[n]; }

    /** Net name, or "" if unnamed (cold path: materializes). */
    std::string netName(NetId n) const;

    /** True when the net was given a name. */
    bool netHasName(NetId n) const { return netNameRef_[n] != 0; }

    /** First driving gate, or invalidGate (TSBUF buses have many). */
    GateId netFirstDriver(NetId n) const { return driverHead_[n]; }

    /**
     * The unique driving gate, or invalidGate when the net has no
     * driver or is a multiply-driven TSBUF bus.
     */
    GateId netSoleDriver(NetId n) const;

    /** Number of gates driving net `n` (walks the driver list). */
    std::size_t netDriverCount(NetId n) const;

    /** Visit the gates driving `n`, in gate-creation order. */
    template <typename Fn>
    void
    forEachDriver(NetId n, Fn &&fn) const
    {
        for (GateId g = driverHead_[n]; g != invalidGate;
             g = driverNext_[g])
            fn(g);
    }

    /** The constant-0 net id, or invalidNet if never created. */
    NetId constZeroId() const { return const0_; }

    /** The constant-1 net id, or invalidNet if never created. */
    NetId constOneId() const { return const1_; }

    /**
     * Rebuild a netlist from serialized structural state (the disk
     * synthesis cache's load path). Net names arrive sparse as
     * (net, name) pairs; driver lists and the use-index are
     * recomputed from the gates, and the result is validate()d, so
     * a corrupted blob that decodes into an inconsistent structure
     * panics rather than entering the flow.
     */
    static Netlist
    restore(std::string name, std::vector<NetSource> sources,
            std::vector<std::pair<NetId, std::string>> netNames,
            std::vector<Gate> gates,
            std::vector<PortBinding> inputs,
            std::vector<PortBinding> outputs, NetId const0,
            NetId const1);

    /** Assembled value view of one gate. */
    Gate
    gate(GateId id) const
    {
        return {gateKind_[id], gateIn0_[id], gateIn1_[id],
                gateOut_[id]};
    }

    // Column accessors: hot loops touching one field should use
    // these instead of assembling a Gate.
    CellKind gateKind(GateId id) const { return gateKind_[id]; }
    NetId gateIn0(GateId id) const { return gateIn0_[id]; }
    NetId gateIn1(GateId id) const { return gateIn1_[id]; }
    NetId gateOut(GateId id) const { return gateOut_[id]; }

    /** Materialize all gates as values (serialization, tests). */
    std::vector<Gate> gateArray() const;

    /**
     * Rewrite a gate in place (the optimizer's mutation hook).
     * The output net cannot change (use removeGates + addGate);
     * the use-index is patched incrementally. Sequential cells may
     * not become combinational (or vice versa), and TSBUFs cannot
     * be created or destroyed this way.
     */
    void setGate(GateId id, CellKind kind, NetId in0,
                 NetId in1 = invalidNet);

    const std::vector<PortBinding> &inputs() const { return inputs_; }
    const std::vector<PortBinding> &outputs() const { return outputs_; }

    /** Primary input net by name; fatal() if absent. */
    NetId inputNet(const std::string &name) const;

    /** Human-readable net label: its name, or "net#<id>". */
    std::string netLabel(NetId id) const;

    /** Human-readable gate label: "<CELL>#<id> -> <net label>". */
    std::string gateLabel(GateId id) const;

    /** Primary output net by name; fatal() if absent. */
    NetId outputNet(const std::string &name) const;

    /** Number of sequential cells (LATCH/DFF/DFFNR). */
    std::size_t flopCount() const;

    /**
     * Check structural invariants: every net is driven (or is an
     * input/constant), gate pins reference valid nets, only TSBUFs
     * share output nets. panic()s on violation.
     */
    void validate() const;

    /**
     * Topologically order the combinational gates. Sequential cell
     * outputs, constants, and primary inputs are sources. fatal()s
     * on a combinational cycle.
     *
     * @return gate ids in evaluation order (sequential cells are not
     *         included; they are clocked separately).
     */
    std::vector<GateId> levelize() const;

    /** Per-cell-kind instance histogram. */
    std::array<std::size_t, numCellKinds> cellHistogram() const;

    // Mutation hooks for the optimizer (printed::synth).

    /**
     * Replace every reference to net `from` with `to`.
     * O(fanout(from) + outputs) via the maintained use-index.
     */
    void rewireUses(NetId from, NetId to);

    /**
     * Reference implementation of rewireUses: a full O(gates) pin
     * scan (the pre-use-index algorithm). Kept as the test oracle
     * for the use-index and as the bench_synth_scale comparison
     * baseline. Produces an identical netlist.
     */
    void rewireUsesByScan(NetId from, NetId to);

    /** Number of gate input pins reading net `n` (O(fanout)). */
    std::size_t netUseCount(NetId n) const;

    /**
     * Visit every gate input pin reading net `n` as fn(gate, pin)
     * with pin in {0, 1}. The iteration order is unspecified but
     * deterministic. fn must not mutate the netlist.
     */
    template <typename Fn>
    void
    forEachUse(NetId n, Fn &&fn) const
    {
        for (UseNode u = useHead_[n]; u != invalidUseNode;
             u = useNext_[u])
            fn(GateId(u >> 1), unsigned(u & 1));
    }

    /**
     * Create a forward-reference net for sequential feedback loops
     * (e.g. a register whose next-value mux reads its own output).
     * Must be resolved with resolveFeedback() before validate().
     */
    NetId makeFeedback();

    /**
     * Resolve a feedback placeholder: every use of `placeholder` is
     * rewired to `actual` and the placeholder becomes inert.
     */
    void resolveFeedback(NetId placeholder, NetId actual);

    /**
     * Remove gates flagged in `dead` (by GateId). Nets are left in
     * place (cheap) but become undriven; callers must not leave live
     * uses of removed outputs.
     *
     * @return old-to-new GateId remap (invalidGate for removed).
     */
    std::vector<GateId> removeGates(const std::vector<bool> &dead);

    /**
     * Drop orphaned nets (referenced by no gate, port, or constant
     * handle) and renumber the survivors densely, preserving
     * creation order. Port bindings, constant handles, gate pins,
     * and all indexes are remapped/rebuilt. Stability means a NetId
     * is unchanged unless some lower-numbered net was dropped —
     * e.g. primary inputs created before any logic keep their ids.
     *
     * @return old-to-new NetId remap (invalidNet for dropped).
     */
    std::vector<NetId> compact();

  private:
    NetId addDrivenNet(NetSource source, std::string name = {});

    /** Intern a name into the pool; 0 for the empty name. */
    std::uint32_t internName(const std::string &name);

    /** Append gate `gi` (just pushed) to its output's driver list. */
    void appendDriver(NetId n, GateId gi);

    /** Rebuild every driver list from the gate array (O(gates)). */
    void rebuildDrivers();

    // ------------------------------------------------------------
    // Use-index: for every net, the doubly-linked list of gate
    // input pins reading it, threaded through two flat arrays
    // indexed by UseNode (gate*2 + pin). usePrev_ encodes either
    // the predecessor node or, with useHeadFlag set, the owning
    // net (the node is the list head). Maintained incrementally by
    // every mutation so rewireUses is O(fanout), never O(gates).
    // ------------------------------------------------------------

    static constexpr UseNode useHeadFlag = 1u << 31;

    /** Link pin node `u` at the head of net `n`'s use list. */
    void linkUse(NetId n, UseNode u);

    /** Unlink pin node `u` from whatever list holds it. */
    void unlinkUse(UseNode u);

    /** Append the use nodes of the newest gate (after push_back). */
    void linkGateUses(GateId gi);

    /** Rebuild the whole index from the gate pins (O(gates)). */
    void rebuildUseIndex();

    /** panic() unless the use-index matches the gate pins. */
    void checkUseIndex() const;

    std::string name_;

    // Nets, struct-of-arrays.
    std::vector<NetSource> netSource_;
    std::vector<std::uint32_t> netNameRef_; ///< 0, or pool offset+1
    std::string namePool_; ///< NUL-terminated interned names
    std::unordered_map<std::string, std::uint32_t> internMap_;

    // Gates, struct-of-arrays.
    std::vector<CellKind> gateKind_;
    std::vector<NetId> gateIn0_;
    std::vector<NetId> gateIn1_;
    std::vector<NetId> gateOut_;

    // Driver index: per-net intrusive list in gate-creation order.
    std::vector<GateId> driverHead_; ///< per net: first driver
    std::vector<GateId> driverTail_; ///< per net: last driver
    std::vector<GateId> driverNext_; ///< per gate: next driver

    std::vector<PortBinding> inputs_;
    std::vector<PortBinding> outputs_;
    std::vector<UseNode> useHead_; ///< per net: first use node
    std::vector<UseNode> useNext_; ///< per node: next in net list
    std::vector<UseNode> usePrev_; ///< per node: prev node or head
    NetId const0_ = invalidNet;
    NetId const1_ = invalidNet;
};

/** A bus is simply an ordered list of nets, LSB first. */
using Bus = std::vector<NetId>;

} // namespace printed

#endif // PRINTED_NETLIST_NETLIST_HH
