#include "stats.hh"

#include <algorithm>

namespace printed
{

NetlistStats
computeStats(const Netlist &netlist)
{
    NetlistStats stats;
    stats.histogram = netlist.cellHistogram();
    stats.totalGates = netlist.gateCount();
    stats.seqGates = netlist.flopCount();
    stats.combGates = stats.totalGates - stats.seqGates;
    stats.inputCount = netlist.inputs().size();
    stats.outputCount = netlist.outputs().size();

    // Logic depth: longest chain of combinational gates, in
    // levelized order.
    const auto order = netlist.levelize();
    std::vector<std::size_t> net_depth(netlist.netCount(), 0);
    std::size_t max_depth = 0;
    for (GateId gi : order) {
        const Gate &g = netlist.gate(gi);
        std::size_t d = net_depth[g.in0];
        if (g.in1 != invalidNet)
            d = std::max(d, net_depth[g.in1]);
        ++d;
        net_depth[g.out] = std::max(net_depth[g.out], d);
        max_depth = std::max(max_depth, d);
    }
    stats.logicDepth = max_depth;
    return stats;
}

void
printStats(std::ostream &os, const std::string &label,
           const NetlistStats &stats)
{
    os << label << ": " << stats.totalGates << " cells ("
       << stats.combGates << " comb, " << stats.seqGates
       << " seq), depth " << stats.logicDepth << ", "
       << stats.inputCount << " in / " << stats.outputCount
       << " out\n";
    for (std::size_t i = 0; i < numCellKinds; ++i) {
        if (stats.histogram[i] == 0)
            continue;
        os << "    " << cellName(static_cast<CellKind>(i)) << ": "
           << stats.histogram[i] << "\n";
    }
}

} // namespace printed
