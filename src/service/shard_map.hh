/**
 * @file
 * Consistent-hash ring mapping canonical request keys to shards.
 *
 * The balancer routes every keyed compute request to one printedd
 * worker by hashing the request's canonical CoreConfig key onto a
 * ring of virtual nodes (vnodes). Each shard owns `vnodes` points
 * on the ring; a key belongs to the first vnode clockwise from its
 * own hash. Properties the shard-aware test battery pins:
 *
 *   - Determinism across processes: the mapping is a pure function
 *     of (shard ids, vnodes, seed, key bytes) — no pointers, no
 *     process randomness — so a balancer, a bench, and a test in
 *     three different processes agree on every assignment.
 *   - Balance: with the default vnode count, the most loaded of N
 *     shards holds at most ~(1/N + epsilon) of a large key
 *     population.
 *   - Minimal remap: adding a shard moves only the ~K/(N+1) keys
 *     that the new shard captures (every moved key moves TO the new
 *     shard); removing a shard moves only the removed shard's keys
 *     (survivors keep every key they had).
 *
 * failoverOrder() walks the ring clockwise from the key's position
 * and returns each distinct shard once, in capture order: the
 * balancer's mark-down re-route serves a dead shard's keys from the
 * next live shard on the ring, which is exactly the shard that
 * would inherit those keys if the dead one were removed.
 */

#ifndef PRINTED_SERVICE_SHARD_MAP_HH
#define PRINTED_SERVICE_SHARD_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace printed::service
{

/** Consistent-hash ring over a fixed shard id set. */
class ShardMap
{
  public:
    /** Default virtual nodes per shard (balance vs. ring size). */
    static constexpr unsigned kDefaultVnodes = 128;

    /** Default ring seed (all parties must agree on it). */
    static constexpr std::uint64_t kDefaultSeed =
        0x70726e7464726e67ULL; // "prntdrng"

    /**
     * Build the ring. @param shardIds distinct shard identifiers
     * (typically 0..N-1, but any set works — ids survive
     * add/remove without renumbering, which is what makes the
     * minimal-remap property meaningful).
     */
    explicit ShardMap(std::vector<unsigned> shardIds,
                      unsigned vnodes = kDefaultVnodes,
                      std::uint64_t seed = kDefaultSeed);

    /** Convenience: shards 0..count-1. */
    static ShardMap forCount(unsigned count,
                             unsigned vnodes = kDefaultVnodes,
                             std::uint64_t seed = kDefaultSeed);

    /** The shard owning a key. */
    unsigned shardFor(const std::string &key) const;

    /**
     * Every shard exactly once, in ring-capture order from the
     * key's position: element 0 is shardFor(key), element 1 is the
     * shard that inherits the key if element 0 dies, and so on.
     */
    std::vector<unsigned> failoverOrder(const std::string &key) const;

    /** The shard ids this ring was built over (as given). */
    const std::vector<unsigned> &shardIds() const { return ids_; }

    std::size_t shardCount() const { return ids_.size(); }

    /**
     * Position-independent 64-bit hash of a key's bytes (FNV-1a
     * finished with a SplitMix64 mix). Exposed so tests can pin the
     * exact function the ring uses.
     */
    static std::uint64_t hashKey(const std::string &key);

  private:
    struct Vnode
    {
        std::uint64_t point;
        unsigned shard;

        bool operator<(const Vnode &other) const
        {
            // Total order even on point collisions, so the ring
            // layout never depends on sort stability.
            return point != other.point ? point < other.point
                                        : shard < other.shard;
        }
    };

    std::vector<unsigned> ids_;
    std::vector<Vnode> ring_; ///< sorted by (point, shard)
};

} // namespace printed::service

#endif // PRINTED_SERVICE_SHARD_MAP_HH
