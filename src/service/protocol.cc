#include "protocol.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <optional>

#include "common/json_min.hh"
#include "common/logging.hh"

namespace printed::service
{

namespace
{

using json::Value;
using json::jsonQuote;

/** Integral field of `obj`, range-checked; fallback when absent. */
std::uint64_t
uintField(const Value &obj, const char *name, std::uint64_t fallback,
          std::uint64_t lo, std::uint64_t hi)
{
    const Value *f = obj.find(name);
    if (!f)
        return fallback;
    fatalIf(!f->isNumber() || f->number < 0 ||
                f->number != std::floor(f->number),
            std::string("request field '") + name +
                "' must be a non-negative integer");
    const double v = f->number;
    fatalIf(v < double(lo) || v > double(hi),
            std::string("request field '") + name + "' out of range [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
    return std::uint64_t(v);
}

/** Finite double field of `obj`; fallback when absent. */
double
doubleField(const Value &obj, const char *name, double fallback,
            double lo, double hi)
{
    const Value *f = obj.find(name);
    if (!f)
        return fallback;
    fatalIf(!f->isNumber() || !std::isfinite(f->number),
            std::string("request field '") + name +
                "' must be a finite number");
    fatalIf(f->number < lo || f->number > hi,
            std::string("request field '") + name + "' out of range");
    return f->number;
}

/** Array-of-small-integers field ("stages":[1,2]); empty if absent. */
std::vector<unsigned>
axisField(const Value &obj, const char *name,
          std::initializer_list<unsigned> allowed)
{
    std::vector<unsigned> out;
    const Value *f = obj.find(name);
    if (!f)
        return out;
    fatalIf(!f->isArray(), std::string("request field '") + name +
                               "' must be an array");
    for (const Value &e : f->array) {
        fatalIf(!e.isNumber() || e.number != std::floor(e.number),
                std::string("request field '") + name +
                    "' must hold integers");
        const unsigned v = unsigned(e.number);
        bool ok = false;
        for (unsigned a : allowed)
            ok = ok || a == v;
        fatalIf(!ok, std::string("request field '") + name +
                         "' holds unsupported value " +
                         std::to_string(v));
        // Deduplicate, preserving canonical order below.
        bool dup = false;
        for (unsigned seen : out)
            dup = dup || seen == v;
        if (!dup)
            out.push_back(v);
    }
    return out;
}

/** The CoreConfig of a request's "config" member (or defaults). */
CoreConfig
configField(const Value &root)
{
    CoreConfig cfg;
    const Value *c = root.find("config");
    if (c) {
        fatalIf(!c->isObject(),
                "request field 'config' must be an object");
        cfg.stages = unsigned(uintField(*c, "stages", 1, 1, 3));
        cfg.isa.datawidth =
            unsigned(uintField(*c, "width", 8, 1, 64));
        cfg.isa.barCount = unsigned(uintField(*c, "bars", 2, 1, 8));
        cfg.opcodeMask = unsigned(
            uintField(*c, "opcode_mask", cfg.opcodeMask, 1, 0x3FF));
        const Value *t = c->find("tristate");
        if (t) {
            fatalIf(!t->isBool(),
                    "request field 'tristate' must be a boolean");
            cfg.tristateResultMux = t->boolean;
        }
    }
    // Full structural validation (width/bars membership, ...):
    // throws FatalError on nonsense, which the server maps to a
    // bad_request reply.
    cfg.check();
    return cfg;
}

/** Canonical identity text of a config (every netlist-key field). */
std::string
configKeyText(const CoreConfig &c)
{
    std::string out = c.label();
    out += "/f" + std::to_string(c.flagMask);
    out += "b" + std::to_string(c.barBits);
    out += "o" + std::to_string(c.opcodeMask);
    out += "a" + std::to_string(c.addrBits);
    out += c.tristateResultMux ? "t" : "m";
    out += "p" + std::to_string(c.isa.pcBits);
    out += "w" + std::to_string(c.isa.operandBits);
    out += "g" + std::to_string(c.isa.flagCount);
    return out;
}

/** {"fmax_hz":..,"area_cm2":..,"power_mw":..} of one tech. */
std::string
techBody(const Characterization &ch)
{
    std::string out = "{\"fmax_hz\": ";
    out += formatDouble(ch.fmaxHz());
    out += ", \"area_cm2\": ";
    out += formatDouble(ch.areaCm2());
    out += ", \"power_mw\": ";
    out += formatDouble(ch.powerMw());
    out += "}";
    return out;
}

std::string
joinAxis(const std::vector<unsigned> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(v[i]);
    }
    return out + "]";
}

std::optional<Kernel>
kernelFromName(const std::string &name)
{
    for (unsigned k = 0; k < numKernels; ++k)
        if (name == kernelName(Kernel(k)))
            return Kernel(k);
    return std::nullopt;
}

/** Parse the optional "iss" object of a sweep request. Defaults are
 *  resolved here (not lazily in grid()) so requestLine() renders a
 *  canonical line and coalesceKey() never distinguishes two
 *  spellings of the same sweep. */
IssSweepSpec
issField(const Value &obj)
{
    IssSweepSpec spec;
    fatalIf(!obj.isObject(), "request field 'iss' must be an object");

    if (const Value *cs = obj.find("cores")) {
        fatalIf(!cs->isArray(),
                "request field 'cores' must be an array of strings");
        for (const Value &e : cs->array) {
            fatalIf(!e.isString(),
                    "request field 'cores' must hold strings");
            const auto core = legacy::issCoreFromId(e.string);
            fatalIf(!core, "unknown legacy core '" + e.string + "'");
            bool dup = false;
            for (legacy::LegacyCore seen : spec.cores)
                dup = dup || seen == *core;
            if (!dup)
                spec.cores.push_back(*core);
        }
    }
    if (spec.cores.empty())
        spec.cores.assign(legacy::allLegacyCores.begin(),
                          legacy::allLegacyCores.end());

    if (const Value *ks = obj.find("kernels")) {
        fatalIf(!ks->isArray(),
                "request field 'kernels' must be an array of strings");
        for (const Value &e : ks->array) {
            fatalIf(!e.isString(),
                    "request field 'kernels' must hold strings");
            const auto kernel = kernelFromName(e.string);
            fatalIf(!kernel, "unknown kernel '" + e.string + "'");
            bool dup = false;
            for (Kernel seen : spec.kernels)
                dup = dup || seen == *kernel;
            if (!dup)
                spec.kernels.push_back(*kernel);
        }
    }
    if (spec.kernels.empty())
        spec.kernels = {Kernel::Mult, Kernel::Div};

    spec.width = unsigned(uintField(obj, "width", 8, 8, 32));
    fatalIf(spec.width != 8 && spec.width != 16 && spec.width != 32,
            "request field 'width' must be 8, 16, or 32");
    for (Kernel k : spec.kernels)
        fatalIf(k == Kernel::Crc8 && spec.width != 8,
                "kernel 'crc8' is only defined at width 8");

    spec.machines =
        std::size_t(uintField(obj, "machines", 64, 1, 4096));
    spec.seed = uintField(obj, "seed", 1, 0, std::uint64_t(-1));
    spec.maxSteps = uintField(obj, "max_steps", 50'000'000, 1,
                              1'000'000'000);

    if (const Value *e = obj.find("engine")) {
        fatalIf(!e->isString(),
                "request field 'engine' must be a string");
        const auto engine = legacy::issEngineFromName(e->string);
        fatalIf(!engine,
                "unknown ISS engine '" + e->string +
                    "' (want \"batch\" or \"scalar\")");
        spec.engine = *engine;
    }
    return spec;
}

/** Canonical rendering of an "iss" object; every field explicit, so
 *  this doubles as the spec's coalesce-key text. */
std::string
issSpecBody(const IssSweepSpec &spec)
{
    std::string out = "{\"cores\": [";
    for (std::size_t i = 0; i < spec.cores.size(); ++i) {
        if (i)
            out += ",";
        out += jsonQuote(legacy::issCoreId(spec.cores[i]));
    }
    out += "], \"kernels\": [";
    for (std::size_t i = 0; i < spec.kernels.size(); ++i) {
        if (i)
            out += ",";
        out += jsonQuote(kernelName(spec.kernels[i]));
    }
    out += "], \"width\": " + std::to_string(spec.width);
    out += ", \"machines\": " + std::to_string(spec.machines);
    out += ", \"seed\": " + std::to_string(spec.seed);
    out += ", \"max_steps\": " + std::to_string(spec.maxSteps);
    out += ", \"engine\": ";
    out += jsonQuote(legacy::issEngineName(spec.engine));
    out += "}";
    return out;
}

/** 64-bit FNV fingerprint as a JSON string ("0x..."): JSON numbers
 *  are doubles and would silently round 64-bit values. */
std::string
fnvHex(std::uint64_t v)
{
    char buf[24];
    const int n = std::snprintf(buf, sizeof(buf), "\"0x%016llx\"",
                                static_cast<unsigned long long>(v));
    return std::string(buf, std::size_t(n));
}

/** Required string field of `obj`; fallback when absent. */
std::string
stringField(const Value &obj, const char *name,
            const std::string &fallback)
{
    const Value *f = obj.find(name);
    if (!f)
        return fallback;
    fatalIf(!f->isString(), std::string("request field '") + name +
                                "' must be a string");
    return f->string;
}

/** Parse the "classify" members of a classify request. Defaults are
 *  resolved here, mirroring issField(), so requestLine() renders a
 *  canonical line and the coalesce key never distinguishes two
 *  spellings of the same search. */
ml::ClassifySpec
classifyField(const Value &root)
{
    ml::ClassifySpec spec;

    if (const Value *d = root.find("dataset")) {
        fatalIf(!d->isObject(),
                "request field 'dataset' must be an object");
        spec.dataset.kind =
            stringField(*d, "kind", spec.dataset.kind);
        spec.dataset.features =
            unsigned(uintField(*d, "features", 4, 1, 16));
        spec.dataset.classes =
            unsigned(uintField(*d, "classes", 3, 2, 10));
        spec.dataset.bits =
            unsigned(uintField(*d, "bits", 8, 2, 12));
        spec.dataset.train =
            unsigned(uintField(*d, "train", 192, 8, 4096));
        spec.dataset.holdout =
            unsigned(uintField(*d, "holdout", 128, 8, 4096));
        spec.dataset.seed =
            uintField(*d, "seed", 1, 0, std::uint64_t(-1));
    }

    const std::string model = stringField(root, "model", "tree");
    const auto kind = ml::modelKindFromName(model);
    fatalIf(!kind, "unknown classify model '" + model +
                       "' (want \"tree\" or \"ternary\")");
    spec.model = *kind;
    spec.depth = unsigned(uintField(root, "depth", 4, 1, 12));
    spec.hidden = unsigned(uintField(root, "hidden", 0, 0, 16));

    if (const Value *s = root.find("search")) {
        fatalIf(!s->isObject(),
                "request field 'search' must be an object");
        spec.search.generations =
            unsigned(uintField(*s, "generations", 6, 1, 64));
        spec.search.population =
            unsigned(uintField(*s, "population", 12, 1, 256));
        spec.search.seed =
            uintField(*s, "seed", 1, 0, std::uint64_t(-1));
        const std::string engine =
            stringField(*s, "engine", "batch");
        const auto parsed = ml::scoreEngineFromName(engine);
        fatalIf(!parsed, "unknown scoring engine '" + engine +
                             "' (want \"batch\" or \"scalar\")");
        spec.search.engine = *parsed;
    }

    if (const Value *b = root.find("budget")) {
        fatalIf(!b->isObject(),
                "request field 'budget' must be an object");
        spec.budget.battery = stringField(*b, "battery", "");
        spec.budget.maxAreaCm2 =
            doubleField(*b, "max_area_cm2", 0, 0, 1e6);
    }

    // Full cross-field validation (battery names, xor-kind rules):
    // throws FatalError, which the server maps to bad_request.
    spec.check();
    return spec;
}

/** Canonical rendering of a classify spec's request members; every
 *  field explicit, so parseRequest(requestLine(req)) is identity. */
std::string
classifySpecMembers(const ml::ClassifySpec &spec)
{
    std::string out = ", \"dataset\": {\"kind\": ";
    out += jsonQuote(spec.dataset.kind);
    out += ", \"features\": " + std::to_string(spec.dataset.features);
    out += ", \"classes\": " + std::to_string(spec.dataset.classes);
    out += ", \"bits\": " + std::to_string(spec.dataset.bits);
    out += ", \"train\": " + std::to_string(spec.dataset.train);
    out += ", \"holdout\": " + std::to_string(spec.dataset.holdout);
    out += ", \"seed\": " + std::to_string(spec.dataset.seed);
    out += "}, \"model\": ";
    out += jsonQuote(ml::modelKindName(spec.model));
    out += ", \"depth\": " + std::to_string(spec.depth);
    out += ", \"hidden\": " + std::to_string(spec.hidden);
    out += ", \"search\": {\"generations\": " +
           std::to_string(spec.search.generations);
    out += ", \"population\": " +
           std::to_string(spec.search.population);
    out += ", \"seed\": " + std::to_string(spec.search.seed);
    out += ", \"engine\": ";
    out += jsonQuote(ml::scoreEngineName(spec.search.engine));
    out += "}, \"budget\": {\"battery\": ";
    out += jsonQuote(spec.budget.battery);
    out += ", \"max_area_cm2\": " +
           formatDouble(spec.budget.maxAreaCm2);
    out += "}";
    return out;
}

/** One Pareto-front candidate of a classify reply. */
std::string
candidateBody(const ml::CandidateReport &c)
{
    std::string out = "{\"accuracy\": " + formatDouble(c.accuracy);
    out += ", \"gates\": " + std::to_string(c.gates);
    out += ", \"area_cm2\": " + formatDouble(c.areaCm2);
    out += ", \"power_mw\": " + formatDouble(c.powerMw);
    out += ", \"fmax_hz\": " + formatDouble(c.fmaxHz);
    out += ", \"feasible\": ";
    out += c.feasible ? "true" : "false";
    out += ", \"fnv\": " + fnvHex(c.fnv);
    out += "}";
    return out;
}

} // anonymous namespace

const char *
requestTypeName(RequestType type)
{
    switch (type) {
      case RequestType::Synth:    return "synth";
      case RequestType::Yield:    return "yield";
      case RequestType::Sweep:    return "sweep";
      case RequestType::Classify: return "classify";
      case RequestType::Metrics:  return "metrics";
      case RequestType::Health:   return "health";
      case RequestType::Shutdown: return "shutdown";
    }
    return "?";
}

std::string
supportedTypesJson()
{
    // Enum order, so the health body is stable across builds.
    static const RequestType kAll[] = {
        RequestType::Synth,    RequestType::Yield,
        RequestType::Sweep,    RequestType::Classify,
        RequestType::Metrics,  RequestType::Health,
        RequestType::Shutdown,
    };
    std::string out = "[";
    for (std::size_t i = 0; i < std::size(kAll); ++i) {
        if (i)
            out += ", ";
        out += jsonQuote(requestTypeName(kAll[i]));
    }
    out += "]";
    return out;
}

std::vector<std::string>
advertisedTypes(const std::string &healthBody)
{
    // Protocol-v1 workers predate the "types" field; they support
    // every pre-classify request type, so absence degrades to that
    // baseline instead of an empty (useless) capability set.
    static const std::vector<std::string> kV1 = {
        "synth", "yield", "sweep", "metrics", "health", "shutdown",
    };
    try {
        const Value root = json::parse(healthBody);
        if (!root.isObject())
            return kV1;
        const Value *types = root.find("types");
        if (!types || !types->isArray())
            return kV1;
        std::vector<std::string> out;
        for (const Value &t : types->array)
            if (t.isString())
                out.push_back(t.string);
        return out;
    } catch (const std::exception &) {
        return kV1; // unparsable body: treat as a v1 worker
    }
}

std::vector<CoreConfig>
SweepSpec::configs() const
{
    std::vector<CoreConfig> out;
    for (unsigned s : stages)
        for (unsigned w : widths)
            for (unsigned b : bars)
                out.push_back(CoreConfig::standard(s, w, b));
    return out;
}

std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

Request
parseRequest(const std::string &line)
{
    const Value root = json::parse(line);
    fatalIf(!root.isObject(), "request must be a JSON object");

    Request req;
    if (const Value *id = root.find("id")) {
        fatalIf(!id->isString(),
                "request field 'id' must be a string");
        req.id = id->string;
    }

    const Value *type = root.find("type");
    fatalIf(!type || !type->isString(),
            "request needs a string 'type' field");
    if (type->string == "synth")
        req.type = RequestType::Synth;
    else if (type->string == "yield")
        req.type = RequestType::Yield;
    else if (type->string == "sweep")
        req.type = RequestType::Sweep;
    else if (type->string == "classify")
        req.type = RequestType::Classify;
    else if (type->string == "metrics")
        req.type = RequestType::Metrics;
    else if (type->string == "health")
        req.type = RequestType::Health;
    else if (type->string == "shutdown")
        req.type = RequestType::Shutdown;
    else
        fatal("unknown request type '" + type->string + "'");

    req.deadlineMs =
        doubleField(root, "deadline_ms", 0, 0, 86400e3);

    if (const Value *s = root.find("stream")) {
        fatalIf(!s->isBool(),
                "request field 'stream' must be a boolean");
        req.stream = s->boolean;
    }
    req.resumeFrom = uintField(root, "resume_from", 0, 0, 1 << 20);
    fatalIf(req.stream && req.type != RequestType::Sweep &&
                req.type != RequestType::Yield &&
                req.type != RequestType::Classify,
            "'stream' is only valid for sweep, yield, and classify "
            "requests");
    fatalIf(req.resumeFrom != 0 && !req.stream,
            "'resume_from' requires 'stream': true");

    switch (req.type) {
      case RequestType::Synth:
        req.config = configField(root);
        break;
      case RequestType::Yield:
        req.config = configField(root);
        req.trials =
            unsigned(uintField(root, "trials", 256, 1, 100000));
        req.replicas =
            unsigned(uintField(root, "replicas", 1, 1, 64));
        req.seed = uintField(root, "seed", 1, 0,
                             std::uint64_t(-1));
        req.deviceYield = doubleField(root, "device_yield", 0.9999,
                                      0.5, 1.0);
        break;
      case RequestType::Sweep:
        if (const Value *iss = root.find("iss")) {
            req.hasIss = true;
            req.iss = issField(*iss);
            fatalIf(root.find("stages") || root.find("widths") ||
                        root.find("bars"),
                    "an ISS sweep takes no synth axes");
            break;
        }
        req.sweep.stages = axisField(root, "stages", {1, 2, 3});
        req.sweep.widths =
            axisField(root, "widths", {4, 8, 16, 32});
        req.sweep.bars = axisField(root, "bars", {2, 4});
        if (req.sweep.stages.empty())
            req.sweep.stages = {1, 2, 3};
        if (req.sweep.widths.empty())
            req.sweep.widths = {4, 8, 16, 32};
        if (req.sweep.bars.empty())
            req.sweep.bars = {2, 4};
        break;
      case RequestType::Classify:
        req.classify = classifyField(root);
        break;
      case RequestType::Metrics:
      case RequestType::Health:
      case RequestType::Shutdown:
        break;
    }
    return req;
}

std::string
configKey(const CoreConfig &config)
{
    return configKeyText(config);
}

std::string
routeKey(const Request &req)
{
    switch (req.type) {
      case RequestType::Synth:
      case RequestType::Yield:
        // Deliberately type-blind: a synth and a yield on the same
        // config share a shard, so one in-memory SynthCache entry
        // serves both.
        return "cfg|" + configKeyText(req.config);
      case RequestType::Sweep:
      case RequestType::Classify:
        // The coalesce key omits stream/resume_from, so a resumed
        // stream routes to the same shard as its first attempt.
        return coalesceKey(req);
      default:
        return ""; // admin requests fan out instead of routing
    }
}

std::string
coalesceKey(const Request &req)
{
    std::string key = requestTypeName(req.type);
    key += "|";
    switch (req.type) {
      case RequestType::Synth:
        key += configKeyText(req.config);
        break;
      case RequestType::Yield:
        key += configKeyText(req.config);
        key += "|t" + std::to_string(req.trials);
        key += "r" + std::to_string(req.replicas);
        key += "s" + std::to_string(req.seed);
        key += "y" + formatDouble(req.deviceYield);
        break;
      case RequestType::Sweep:
        if (req.hasIss) {
            key += "iss|" + issSpecBody(req.iss);
            break;
        }
        key += joinAxis(req.sweep.stages);
        key += joinAxis(req.sweep.widths);
        key += joinAxis(req.sweep.bars);
        break;
      case RequestType::Classify:
        key += ml::classifySpecKey(req.classify);
        break;
      default:
        break; // admin requests are never coalesced
    }
    return key;
}

std::string
synthBody(const DesignPoint &point)
{
    std::string out = "{\"core\": ";
    out += jsonQuote(point.config.label());
    out += ", \"gates\": " + std::to_string(point.egfet.gateCount());
    out += ", \"flops\": " +
           std::to_string(point.egfet.stats.seqGates);
    out += ", \"egfet\": " + techBody(point.egfet);
    out += ", \"cnt\": " + techBody(point.cnt);
    out += "}";
    return out;
}

std::string
yieldBody(const CoreConfig &config,
          const FunctionalYieldReport &report)
{
    std::string out = "{\"core\": ";
    out += jsonQuote(config.label());
    out += ", \"trials\": " + std::to_string(report.trials);
    out += ", \"fatal_trials\": " +
           std::to_string(report.fatalTrials);
    out += ", \"masked_trials\": " +
           std::to_string(report.maskedTrials);
    out += ", \"benign_trials\": " +
           std::to_string(report.benignTrials);
    out += ", \"defect_free_trials\": " +
           std::to_string(report.defectFreeTrials);
    out += ", \"functional_yield\": " +
           formatDouble(report.functionalYield());
    out += ", \"analytic_yield\": " +
           formatDouble(report.analyticYield);
    out += ", \"devices\": " +
           std::to_string(report.devicesPerReplica);
    out += ", \"replicas\": " + std::to_string(report.replicas);
    out += "}";
    return out;
}

std::string
sweepBody(const std::vector<DesignPoint> &points)
{
    std::string out = "{\"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i)
            out += ", ";
        out += synthBody(points[i]);
    }
    out += "]}";
    return out;
}

std::string
issPointBody(const IssSweepPoint &point)
{
    std::string out = "{\"core\": ";
    out += jsonQuote(legacy::issCoreId(point.core));
    out += ", \"kernel\": ";
    out += jsonQuote(kernelName(point.kernel));
    out += ", \"width\": " + std::to_string(point.width);
    out += ", \"machines\": " + std::to_string(point.machines);
    out += ", \"halted\": " + std::to_string(point.halted);
    out += ", \"out_of_budget\": " +
           std::to_string(point.outOfBudget);
    out += ", \"killed\": " + std::to_string(point.killed);
    out += ", \"instructions\": " +
           std::to_string(point.instructions);
    out += ", \"cycles\": " + std::to_string(point.cycles);
    out += ", \"code_bytes\": " + std::to_string(point.codeBytes);
    out += ", \"outputs_fnv\": " + fnvHex(point.outputsFnv);
    out += "}";
    return out;
}

std::string
issSweepBody(const std::vector<IssSweepPoint> &points)
{
    std::string out = "{\"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i)
            out += ", ";
        out += issPointBody(points[i]);
    }
    out += "]}";
    return out;
}

std::string
classifyGenerationBody(const ml::GenerationReport &gen)
{
    std::string out =
        "{\"generation\": " + std::to_string(gen.generation);
    out += ", \"scored\": " + std::to_string(gen.scored);
    out += ", \"best_accuracy\": " + formatDouble(gen.bestAccuracy);
    out += ", \"best_gates\": " + std::to_string(gen.bestGates);
    out += ", \"front_size\": " + std::to_string(gen.frontSize);
    out += ", \"pruned_gates\": " + std::to_string(gen.prunedGates);
    out += "}";
    return out;
}

std::string
classifyFrontBody(const ml::ClassifyResult &result)
{
    std::string out = "{\"front\": [";
    for (std::size_t i = 0; i < result.front.size(); ++i) {
        if (i)
            out += ", ";
        out += candidateBody(result.front[i]);
    }
    out += "], \"baseline\": " + candidateBody(result.baseline);
    out += ", \"generations\": " +
           std::to_string(result.generations.size());
    out += "}";
    return out;
}

std::string
classifyBody(const ml::ClassifyResult &result)
{
    // Same shape as sweepBody(): the streamed points in order, so a
    // reassembled classify stream is byte-identical to the
    // monolithic reply. Points 0..G-1 are generation summaries; the
    // final point is the Pareto front.
    std::string out = "{\"points\": [";
    for (const auto &gen : result.generations) {
        out += classifyGenerationBody(gen);
        out += ", ";
    }
    out += classifyFrontBody(result);
    out += "]}";
    return out;
}

std::string
okReply(const std::string &id, RequestType type,
        const std::string &resultBody)
{
    std::string out = "{\"id\": ";
    out += jsonQuote(id);
    out += ", \"ok\": true, \"type\": ";
    out += jsonQuote(requestTypeName(type));
    out += ", \"result\": " + resultBody + "}";
    return out;
}

std::string
errorReply(const std::string &id, const char *code,
           const std::string &message)
{
    std::string out = "{\"id\": ";
    out += jsonQuote(id);
    out += ", \"ok\": false, \"error\": ";
    out += jsonQuote(code);
    out += ", \"message\": " + jsonQuote(message) + "}";
    return out;
}

std::string
queueFullReply(const std::string &id, double retryAfterMs)
{
    std::string out = "{\"id\": ";
    out += jsonQuote(id);
    out += ", \"ok\": false, \"error\": ";
    out += jsonQuote(errc::queueFull);
    out += ", \"message\": \"admission queue is full\"";
    out += ", \"retry_after_ms\": " + formatDouble(retryAfterMs);
    out += "}";
    return out;
}

namespace
{

/// Exact head shared by partial and done frames. Keeping the
/// rendering in one place is what makes classifyFrame's byte-exact
/// point extraction safe: the only unescaped `"point": ` in a
/// partial frame is the structural one (jsonQuote backslash-escapes
/// quotes inside the id).
std::string
streamFrameHead(const std::string &id, RequestType type)
{
    std::string out = "{\"id\": ";
    out += jsonQuote(id);
    out += ", \"ok\": true, \"type\": ";
    out += jsonQuote(requestTypeName(type));
    return out;
}

constexpr const char *kPointMarker = ", \"point\": ";

} // anonymous namespace

std::string
partialFrame(const std::string &id, RequestType type,
             std::uint64_t index, std::uint64_t total,
             const std::string &pointBody)
{
    std::string out = streamFrameHead(id, type);
    out += ", \"partial\": {\"index\": " + std::to_string(index);
    out += ", \"total\": " + std::to_string(total);
    out += kPointMarker + pointBody;
    out += "}}";
    return out;
}

std::string
doneFrame(const std::string &id, RequestType type,
          std::uint64_t points)
{
    std::string out = streamFrameHead(id, type);
    out += ", \"done\": {\"points\": " + std::to_string(points);
    out += "}}";
    return out;
}

StreamFrame
classifyFrame(const std::string &line)
{
    StreamFrame frame;
    const Value root = json::parse(line);
    if (!root.isObject())
        return frame; // Final: the caller surfaces it as-is

    if (const Value *id = root.find("id"); id && id->isString())
        frame.id = id->string;

    const Value *ok = root.find("ok");
    if (!ok || !ok->isBool() || !ok->boolean)
        return frame; // errors always end the exchange

    if (const Value *p = root.find("partial"); p && p->isObject()) {
        const Value *index = p->find("index");
        const Value *total = p->find("total");
        const std::size_t at = line.find(kPointMarker);
        if (!index || !index->isNumber() || !total ||
            !total->isNumber() || at == std::string::npos ||
            line.size() < at + 14)
            return frame; // malformed partial: treat as Final
        frame.kind = StreamFrame::Kind::Partial;
        frame.index = std::uint64_t(index->number);
        frame.total = std::uint64_t(total->number);
        // The body is everything after the marker, minus the two
        // closing braces of the "partial" object and the frame.
        const std::size_t start = at + 11; // strlen(kPointMarker)
        frame.pointBody = line.substr(start, line.size() - start - 2);
        return frame;
    }

    if (const Value *d = root.find("done"); d && d->isObject()) {
        const Value *points = d->find("points");
        if (!points || !points->isNumber())
            return frame;
        frame.kind = StreamFrame::Kind::Done;
        frame.points = std::uint64_t(points->number);
        return frame;
    }

    return frame;
}

std::string
assembleStreamedReply(const std::string &id, RequestType type,
                      const std::vector<std::string> &points)
{
    if (type == RequestType::Yield) {
        fatalIf(points.size() != 1,
                "yield stream must carry exactly one point");
        return okReply(id, type, points.front());
    }
    fatalIf(type != RequestType::Sweep &&
                type != RequestType::Classify,
            "only sweep, yield, and classify replies stream");
    // Exactly sweepBody()/classifyBody(), over pre-rendered point
    // bodies.
    std::string body = "{\"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i)
            body += ", ";
        body += points[i];
    }
    body += "]}";
    return okReply(id, type, body);
}

std::string
markDegraded(const std::string &line)
{
    const std::size_t pos = line.find_last_of('}');
    if (pos == std::string::npos)
        return line;
    return line.substr(0, pos) + ", \"degraded\": true" +
           line.substr(pos);
}

namespace
{

/** Common head of a compute request: id, type, deadline, config. */
std::string
requestHead(const std::string &id, const char *type,
            double deadlineMs)
{
    std::string out = "{\"id\": ";
    out += jsonQuote(id);
    out += ", \"type\": \"";
    out += type;
    out += "\"";
    if (deadlineMs > 0)
        out += ", \"deadline_ms\": " + formatDouble(deadlineMs);
    return out;
}

std::string
configBody(const CoreConfig &c)
{
    std::string out = "{\"stages\": " + std::to_string(c.stages);
    out += ", \"width\": " + std::to_string(c.isa.datawidth);
    out += ", \"bars\": " + std::to_string(c.isa.barCount);
    if (c.opcodeMask != CoreConfig{}.opcodeMask)
        out += ", \"opcode_mask\": " + std::to_string(c.opcodeMask);
    if (!c.tristateResultMux)
        out += ", \"tristate\": false";
    out += "}";
    return out;
}

} // anonymous namespace

std::string
synthRequest(const std::string &id, const CoreConfig &config,
             double deadlineMs)
{
    return requestHead(id, "synth", deadlineMs) +
           ", \"config\": " + configBody(config) + "}";
}

std::string
yieldRequest(const std::string &id, const CoreConfig &config,
             unsigned trials, std::uint64_t seed, unsigned replicas,
             double deadlineMs)
{
    std::string out = requestHead(id, "yield", deadlineMs);
    out += ", \"config\": " + configBody(config);
    out += ", \"trials\": " + std::to_string(trials);
    out += ", \"seed\": " + std::to_string(seed);
    out += ", \"replicas\": " + std::to_string(replicas);
    out += "}";
    return out;
}

std::string
sweepRequest(const std::string &id, const SweepSpec &spec,
             double deadlineMs)
{
    std::string out = requestHead(id, "sweep", deadlineMs);
    out += ", \"stages\": " + joinAxis(spec.stages);
    out += ", \"widths\": " + joinAxis(spec.widths);
    out += ", \"bars\": " + joinAxis(spec.bars);
    out += "}";
    return out;
}

std::string
issSweepRequest(const std::string &id, const IssSweepSpec &spec,
                double deadlineMs)
{
    Request req;
    req.id = id;
    req.type = RequestType::Sweep;
    req.hasIss = true;
    req.iss = spec;
    req.deadlineMs = deadlineMs;
    // Round-trip through the canonical renderer so defaults (empty
    // core/kernel lists) are resolved the same way parseRequest
    // resolves them.
    if (req.iss.cores.empty())
        req.iss.cores.assign(legacy::allLegacyCores.begin(),
                             legacy::allLegacyCores.end());
    if (req.iss.kernels.empty())
        req.iss.kernels = {Kernel::Mult, Kernel::Div};
    return requestLine(req);
}

std::string
adminRequest(const std::string &id, RequestType type)
{
    return requestHead(id, requestTypeName(type), 0) + "}";
}

std::string
requestLine(const Request &req)
{
    std::string out =
        requestHead(req.id, requestTypeName(req.type), req.deadlineMs);
    switch (req.type) {
      case RequestType::Synth:
        out += ", \"config\": " + configBody(req.config);
        break;
      case RequestType::Yield:
        out += ", \"config\": " + configBody(req.config);
        out += ", \"trials\": " + std::to_string(req.trials);
        out += ", \"seed\": " + std::to_string(req.seed);
        out += ", \"replicas\": " + std::to_string(req.replicas);
        if (req.deviceYield != 0.9999)
            out += ", \"device_yield\": " + formatDouble(req.deviceYield);
        break;
      case RequestType::Sweep:
        if (req.hasIss) {
            out += ", \"iss\": " + issSpecBody(req.iss);
            break;
        }
        out += ", \"stages\": " + joinAxis(req.sweep.stages);
        out += ", \"widths\": " + joinAxis(req.sweep.widths);
        out += ", \"bars\": " + joinAxis(req.sweep.bars);
        break;
      case RequestType::Classify:
        out += classifySpecMembers(req.classify);
        break;
      case RequestType::Metrics:
      case RequestType::Health:
      case RequestType::Shutdown:
        break;
    }
    if (req.stream) {
        out += ", \"stream\": true";
        if (req.resumeFrom != 0)
            out += ", \"resume_from\": " + std::to_string(req.resumeFrom);
    }
    return out + "}";
}

std::string
classifyRequest(const std::string &id, const ml::ClassifySpec &spec,
                double deadlineMs)
{
    Request req;
    req.id = id;
    req.type = RequestType::Classify;
    req.classify = spec;
    req.deadlineMs = deadlineMs;
    return requestLine(req);
}

std::string
classifyStreamRequest(const std::string &id,
                      const ml::ClassifySpec &spec,
                      std::uint64_t resumeFrom, double deadlineMs)
{
    Request req;
    req.id = id;
    req.type = RequestType::Classify;
    req.classify = spec;
    req.deadlineMs = deadlineMs;
    req.stream = true;
    req.resumeFrom = resumeFrom;
    return requestLine(req);
}

std::string
sweepStreamRequest(const std::string &id, const SweepSpec &spec,
                   std::uint64_t resumeFrom, double deadlineMs)
{
    Request req;
    req.id = id;
    req.type = RequestType::Sweep;
    req.sweep = spec;
    req.deadlineMs = deadlineMs;
    req.stream = true;
    req.resumeFrom = resumeFrom;
    return requestLine(req);
}

std::string
yieldStreamRequest(const std::string &id, const CoreConfig &config,
                   unsigned trials, std::uint64_t seed,
                   unsigned replicas, std::uint64_t resumeFrom,
                   double deadlineMs)
{
    Request req;
    req.id = id;
    req.type = RequestType::Yield;
    req.config = config;
    req.trials = trials;
    req.seed = seed;
    req.replicas = replicas;
    req.deadlineMs = deadlineMs;
    req.stream = true;
    req.resumeFrom = resumeFrom;
    return requestLine(req);
}

} // namespace printed::service
