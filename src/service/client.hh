/**
 * @file
 * Minimal blocking client of the printedd protocol.
 *
 * A Client owns one TCP connection and a read buffer. call() is the
 * simple request/reply path; send()/readLine() expose pipelining
 * (queue many requests, then collect the replies) — the load
 * generator (bench_service) uses both. Replies can be inspected
 * raw (the exact line, for byte-identity checks) or parsed into a
 * Reply summary.
 */

#ifndef PRINTED_SERVICE_CLIENT_HH
#define PRINTED_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

namespace printed::service
{

/** Parsed summary of one reply line. */
struct Reply
{
    std::string id;
    bool ok = false;
    std::string error;   ///< errc code when !ok
    std::string message; ///< human text when !ok
    std::string raw;     ///< the exact reply line (no newline)
};

/** Parse a reply line (throws json::ParseError / FatalError). */
Reply parseReply(const std::string &line);

/** One blocking connection to a printedd server. */
class Client
{
  public:
    Client() = default;

    /** Connect immediately (throws FatalError on failure). */
    Client(const std::string &host, std::uint16_t port);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect (closing any previous connection first). */
    void connect(const std::string &host, std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (newline appended). */
    void send(const std::string &line);

    /**
     * Read the next reply line. Throws FatalError if the server
     * hangs up before a full line arrives.
     */
    std::string readLine();

    /** send() + readLine(): one request/reply round trip. */
    std::string call(const std::string &line);

    void close();

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace printed::service

#endif // PRINTED_SERVICE_CLIENT_HH
