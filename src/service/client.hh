/**
 * @file
 * Clients of the printedd protocol.
 *
 * Two layers:
 *
 *   Client          one blocking TCP connection + read buffer.
 *                   call() is the simple request/reply path;
 *                   send()/readLine() expose pipelining (queue many
 *                   requests, then collect the replies). readLine()
 *                   takes an optional poll-based timeout; all I/O
 *                   retries EINTR and handles partial writes
 *                   (service/net_io.hh).
 *
 *   RetryingClient  the production path: per-call deadlines,
 *                   reconnect with capped exponential backoff and
 *                   deterministic jitter, and a retry policy that
 *                   only replays *idempotent* requests — every
 *                   compute/introspection request is a pure
 *                   function of its line, so it may be replayed
 *                   when the connection is lost (before or inside
 *                   a reply: partial frames are discarded on
 *                   reconnect) or when the server answers
 *                   queue_full with a retry_after_ms hint.
 *                   Non-idempotent requests (shutdown) are never
 *                   replayed. One successful call returns exactly
 *                   one reply: no reply is ever lost (the call
 *                   throws instead) and none duplicated (replays
 *                   replace, never append).
 */

#ifndef PRINTED_SERVICE_CLIENT_HH
#define PRINTED_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"

namespace printed::service
{

/** A per-call deadline expired while waiting for the reply. */
class TimeoutError : public FatalError
{
  public:
    explicit TimeoutError(const std::string &msg) : FatalError(msg)
    {}
};

/** Parsed summary of one reply line. */
struct Reply
{
    std::string id;
    bool ok = false;
    std::string error;   ///< errc code when !ok
    std::string message; ///< human text when !ok
    double retryAfterMs = 0; ///< queue_full backoff hint (or 0)
    std::string raw;     ///< the exact reply line (no newline)
};

/** Parse a reply line (throws json::ParseError / FatalError). */
Reply parseReply(const std::string &line);

/** One blocking connection to a printedd server. */
class Client
{
  public:
    Client() = default;

    /** Connect immediately (throws FatalError on failure). */
    Client(const std::string &host, std::uint16_t port);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect (closing any previous connection first). */
    void connect(const std::string &host, std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (newline appended). */
    void send(const std::string &line);

    /**
     * Read the next reply line. Throws FatalError if the server
     * hangs up before a full line arrives, TimeoutError when
     * timeoutMs > 0 expires first (the connection is then left with
     * a stale in-flight reply: close it before reusing).
     */
    std::string readLine(double timeoutMs = 0);

    /** send() + readLine(): one request/reply round trip. */
    std::string call(const std::string &line);

    void close();

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** Knobs of RetryingClient (defaults suit loopback serving). */
struct RetryPolicy
{
    /** Replay budget for lost connections / expired deadlines. */
    unsigned maxLossRetries = 5;

    /** Replay budget for queue_full overload rejections. */
    unsigned maxOverloadRetries = 64;

    /** Per-call reply deadline; 0 = wait forever. */
    double callTimeoutMs = 30000;

    /** Backoff base/cap; delay = min(base * 2^n, max) * jitter. */
    double baseBackoffMs = 5;
    double maxBackoffMs = 250;

    /** Seed of the deterministic jitter stream. */
    std::uint64_t jitterSeed = 1;
};

/** Monotonic counters of one RetryingClient. */
struct RetryStats
{
    std::uint64_t calls = 0;
    std::uint64_t reconnects = 0;       ///< successful (re)connects
    std::uint64_t lossReplays = 0;      ///< replays after lost conn
    std::uint64_t timeoutReplays = 0;   ///< replays after deadline
    std::uint64_t overloadReplays = 0;  ///< replays after queue_full
};

/** Self-healing request/reply client (see file comment). */
class RetryingClient
{
  public:
    RetryingClient(std::string host, std::uint16_t port,
                   RetryPolicy policy = {});

    /**
     * One request -> exactly one reply line. Transient failures
     * (lost connection, per-call timeout, queue_full) are retried
     * within the policy's budgets when `idempotent`; a
     * non-idempotent call is never replayed once its bytes may have
     * reached the server. Throws FatalError when the budgets are
     * exhausted.
     */
    std::string call(const std::string &line,
                     bool idempotent = true);

    /** call() + parseReply(). */
    Reply callParsed(const std::string &line,
                     bool idempotent = true);

    const RetryStats &stats() const { return stats_; }

    void close();

  private:
    void ensureConnected();
    double nextBackoffMs(unsigned attempt);
    void backoff(unsigned attempt, double floorMs = 0);

    std::string host_;
    std::uint16_t port_;
    RetryPolicy policy_;
    Client client_;
    Rng jitter_;
    RetryStats stats_;
};

} // namespace printed::service

#endif // PRINTED_SERVICE_CLIENT_HH
