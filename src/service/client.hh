/**
 * @file
 * Clients of the printedd protocol.
 *
 * Two layers:
 *
 *   Client          one blocking TCP connection + read buffer.
 *                   call() is the simple request/reply path;
 *                   send()/readLine() expose pipelining (queue many
 *                   requests, then collect the replies). readLine()
 *                   takes an optional poll-based timeout; all I/O
 *                   retries EINTR and handles partial writes
 *                   (service/net_io.hh).
 *
 *   RetryingClient  the production path: per-call deadlines,
 *                   reconnect with capped exponential backoff and
 *                   deterministic jitter, and a retry policy that
 *                   only replays *idempotent* requests — every
 *                   compute/introspection request is a pure
 *                   function of its line, so it may be replayed
 *                   when the connection is lost (before or inside
 *                   a reply: partial frames are discarded on
 *                   reconnect) or when the server answers
 *                   queue_full with a retry_after_ms hint.
 *                   Non-idempotent requests (shutdown) are never
 *                   replayed. One successful call returns exactly
 *                   one reply: no reply is ever lost (the call
 *                   throws instead) and none duplicated (replays
 *                   replace, never append).
 */

#ifndef PRINTED_SERVICE_CLIENT_HH
#define PRINTED_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "service/protocol.hh"

namespace printed::service
{

/** A per-call deadline expired while waiting for the reply. */
class TimeoutError : public FatalError
{
  public:
    explicit TimeoutError(const std::string &msg) : FatalError(msg)
    {}
};

/** Parsed summary of one reply line. */
struct Reply
{
    std::string id;
    bool ok = false;
    std::string error;   ///< errc code when !ok
    std::string message; ///< human text when !ok
    double retryAfterMs = 0; ///< queue_full backoff hint (or 0)
    bool degraded = false;   ///< balancer served from failover shard
    std::string raw;     ///< the exact reply line (no newline)
};

/** Parse a reply line (throws json::ParseError / FatalError). */
Reply parseReply(const std::string &line);

/** One blocking connection to a printedd server. */
class Client
{
  public:
    Client() = default;

    /** Connect immediately (throws FatalError on failure). */
    Client(const std::string &host, std::uint16_t port);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect (closing any previous connection first). */
    void connect(const std::string &host, std::uint16_t port);

    bool connected() const { return fd_ >= 0; }

    /** Send one request line (newline appended). */
    void send(const std::string &line);

    /**
     * Read the next reply line. Throws FatalError if the server
     * hangs up before a full line arrives, TimeoutError when
     * timeoutMs > 0 expires first (the connection is then left with
     * a stale in-flight reply: close it before reusing).
     */
    std::string readLine(double timeoutMs = 0);

    /** send() + readLine(): one request/reply round trip. */
    std::string call(const std::string &line);

    void close();

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** Knobs of RetryingClient (defaults suit loopback serving). */
struct RetryPolicy
{
    /** Replay budget for lost connections / expired deadlines. */
    unsigned maxLossRetries = 5;

    /** Replay budget for queue_full overload rejections. */
    unsigned maxOverloadRetries = 64;

    /** Per-call reply deadline; 0 = wait forever. */
    double callTimeoutMs = 30000;

    /** Backoff base/cap; delay = min(base * 2^n, max) * jitter. */
    double baseBackoffMs = 5;
    double maxBackoffMs = 250;

    /** Seed of the deterministic jitter stream. */
    std::uint64_t jitterSeed = 1;
};

/** Monotonic counters of one RetryingClient. */
struct RetryStats
{
    std::uint64_t calls = 0;
    std::uint64_t reconnects = 0;       ///< successful (re)connects
    std::uint64_t lossReplays = 0;      ///< replays after lost conn
    std::uint64_t timeoutReplays = 0;   ///< replays after deadline
    std::uint64_t overloadReplays = 0;  ///< replays after queue_full
    std::uint64_t streamResumes = 0;    ///< mid-stream resume replays
};

/**
 * Outcome of a streamed call (protocol v2). When the server spoke
 * v2, `points` holds every point body in index order and `reply` is
 * the assembled monolithic equivalent — byte-identical to what a v1
 * exchange would have returned. When the server ignored "stream"
 * (v1 negotiation fallback), `streamed` is false, `points` is empty
 * and `reply` is the monolithic reply as received. Error replies
 * (deadline_exceeded, exhausted budgets surface as throws instead)
 * land in `reply` with ok == false either way.
 */
struct StreamResult
{
    Reply reply;
    std::vector<std::string> points; ///< point bodies, index order
    std::uint64_t partials = 0;      ///< partial frames consumed
    bool streamed = false;           ///< v2 frames were received
};

/**
 * Called for each partial as it arrives: (index, total, pointBody).
 * Replays after a mid-stream disconnect resume from the last
 * received index, so the callback fires exactly once per point.
 */
using PointCallback = std::function<void(
    std::uint64_t, std::uint64_t, const std::string &)>;

/** Self-healing request/reply client (see file comment). */
class RetryingClient
{
  public:
    RetryingClient(std::string host, std::uint16_t port,
                   RetryPolicy policy = {});

    /**
     * One request -> exactly one reply line. Transient failures
     * (lost connection, per-call timeout, queue_full) are retried
     * within the policy's budgets when `idempotent`; a
     * non-idempotent call is never replayed once its bytes may have
     * reached the server. Throws FatalError when the budgets are
     * exhausted.
     */
    std::string call(const std::string &line,
                     bool idempotent = true);

    /** call() + parseReply(). */
    Reply callParsed(const std::string &line,
                     bool idempotent = true);

    /**
     * Streamed sweep: partial frames invoke `onPoint` in strict
     * index order; a lost connection or timeout mid-stream replays
     * with "resume_from" set to the first missing index, so no
     * point is ever duplicated or dropped. Streams are compute
     * requests, hence idempotent, hence always replayable.
     */
    StreamResult streamSweep(const std::string &id,
                             const SweepSpec &spec,
                             const PointCallback &onPoint = {},
                             double deadlineMs = 0);

    /** Streamed yield: a one-point stream (same resume rules). */
    StreamResult streamYield(const std::string &id,
                             const CoreConfig &config,
                             unsigned trials,
                             std::uint64_t seed = 1,
                             unsigned replicas = 1,
                             const PointCallback &onPoint = {},
                             double deadlineMs = 0);

    /**
     * Streamed classify: points 0..G-1 are per-generation search
     * summaries, point G is the Pareto front (same resume rules as
     * streamSweep, so a mid-search disconnect resumes without
     * replaying generations already in hand).
     */
    StreamResult streamClassify(const std::string &id,
                                const ml::ClassifySpec &spec,
                                const PointCallback &onPoint = {},
                                double deadlineMs = 0);

    const RetryStats &stats() const { return stats_; }

    void close();

  private:
    void ensureConnected();
    double nextBackoffMs(unsigned attempt);
    void backoff(unsigned attempt, double floorMs = 0);

    /**
     * Shared streamed-call engine: `lineAt(resumeFrom)` renders the
     * request to (re)send when `resumeFrom` points are already in
     * hand.
     */
    StreamResult streamCall(
        const std::string &id, RequestType type,
        const std::function<std::string(std::uint64_t)> &lineAt,
        const PointCallback &onPoint);

    std::string host_;
    std::uint16_t port_;
    RetryPolicy policy_;
    Client client_;
    Rng jitter_;
    RetryStats stats_;
};

} // namespace printed::service

#endif // PRINTED_SERVICE_CLIENT_HH
