/**
 * @file
 * Deterministic fault-injection harness for printedd.
 *
 * A FaultPlan describes a seeded schedule of server-side faults —
 * the failure modes a client of a real serving fleet must survive:
 *
 *   drop        close the connection instead of sending a compute
 *               reply (the reply is lost after the work was done)
 *   truncate    send only a prefix of the reply frame, then close
 *               (a torn frame the client must not mis-parse)
 *   delay       sleep before sending (a slow peer; exercises the
 *               client's poll-based call deadlines)
 *   queue_full  reject an admissible compute request with
 *               queue_full + retry_after_ms (forced overload)
 *   corrupt     flip a byte in N on-disk synthesis-cache entries at
 *               server start (exercises checksum + quarantine)
 *
 * Faults apply to *compute* traffic only: admin replies (metrics /
 * health / shutdown) and parse-error replies are exempt, so the
 * control plane stays usable while the data plane misbehaves.
 *
 * Determinism: decisions come from one SplitMix64 stream seeded by
 * the plan, so a given (plan, request schedule) replays the same
 * fault pattern — CI failures reproduce locally with the same
 * spec string.
 *
 * Spec syntax (printedd --fault-plan / PRINTEDD_FAULT_PLAN):
 *
 *   seed=42,drop=0.05,truncate=0.05,delay=0.1:20,
 *   queue_full=0.1,corrupt=1
 *
 * where delay=RATE:MS and every RATE is a probability in [0, 1].
 */

#ifndef PRINTED_SERVICE_FAULT_PLAN_HH
#define PRINTED_SERVICE_FAULT_PLAN_HH

#include <cstdint>
#include <mutex>
#include <string>

#include "common/metrics.hh"
#include "common/rng.hh"

namespace printed::service
{

/** Seeded schedule of injected server faults (see file comment). */
struct FaultPlan
{
    std::uint64_t seed = 1;
    double dropRate = 0;
    double truncateRate = 0;
    double delayRate = 0;
    double delayMs = 10;
    double queueFullRate = 0;
    unsigned corruptDiskEntries = 0;

    /** Does this plan inject anything at all? */
    bool enabled() const
    {
        return dropRate > 0 || truncateRate > 0 || delayRate > 0 ||
               queueFullRate > 0 || corruptDiskEntries > 0;
    }

    /**
     * Parse a spec string ("seed=42,drop=0.05,..."). Throws
     * FatalError on unknown keys, bad numbers, or rates outside
     * [0, 1].
     */
    static FaultPlan parse(const std::string &spec);

    /** Canonical one-line description (for logs / banners). */
    std::string describe() const;
};

/**
 * Draws fault decisions from a FaultPlan. Thread-safe: the server's
 * executor and reader threads all consult one injector, which owns
 * the single deterministic decision stream. Each injected fault is
 * counted both internally and in the metrics registry
 * ("service.fault.*"), so harnesses can assert that chaos actually
 * happened.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    /** What to do to one outgoing compute reply. */
    enum class SendFault
    {
        None,
        Drop,
        Truncate,
        Delay
    };

    /**
     * Decide the fate of a compute reply about to be sent.
     * @param delayMsOut filled with the sleep length for Delay.
     */
    SendFault onComputeReply(double &delayMsOut);

    /** Should this admissible compute request be forced out? */
    bool forceQueueFull();

    const FaultPlan &plan() const { return plan_; }

    /** Total faults injected so far (all kinds). */
    std::uint64_t injectedCount() const;

  private:
    /** One uniform draw in [0, 1). */
    double draw();

    FaultPlan plan_;
    std::mutex mutex_;
    Rng rng_;
};

} // namespace printed::service

#endif // PRINTED_SERVICE_FAULT_PLAN_HH
