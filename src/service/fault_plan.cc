#include "fault_plan.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace printed::service
{

namespace
{

/** "key=value" -> value as a checked double. */
double
numberValue(const std::string &key, const std::string &text)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    fatalIf(end != text.c_str() + text.size() || text.empty(),
            "fault plan: bad number '" + text + "' for '" + key +
                "'");
    return v;
}

double
rateValue(const std::string &key, const std::string &text)
{
    const double v = numberValue(key, text);
    fatalIf(v < 0 || v > 1, "fault plan: rate '" + key +
                                "' must be in [0, 1], got " + text);
    return v;
}

} // anonymous namespace

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        fatalIf(eq == std::string::npos,
                "fault plan: expected key=value, got '" + item +
                    "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "seed") {
            plan.seed =
                std::uint64_t(numberValue(key, value));
        } else if (key == "drop") {
            plan.dropRate = rateValue(key, value);
        } else if (key == "truncate") {
            plan.truncateRate = rateValue(key, value);
        } else if (key == "delay") {
            // delay=RATE or delay=RATE:MS
            const std::size_t colon = value.find(':');
            if (colon == std::string::npos) {
                plan.delayRate = rateValue(key, value);
            } else {
                plan.delayRate =
                    rateValue(key, value.substr(0, colon));
                plan.delayMs = numberValue(
                    "delay ms", value.substr(colon + 1));
                fatalIf(plan.delayMs < 0,
                        "fault plan: delay ms must be >= 0");
            }
        } else if (key == "queue_full") {
            plan.queueFullRate = rateValue(key, value);
        } else if (key == "corrupt") {
            const double v = numberValue(key, value);
            fatalIf(v < 0 || v > 1000,
                    "fault plan: corrupt must be in [0, 1000]");
            plan.corruptDiskEntries = unsigned(v);
        } else {
            fatal("fault plan: unknown key '" + key + "'");
        }
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    if (!enabled())
        return "disabled";
    auto rate = [](double v) {
        std::string s = std::to_string(v);
        while (s.size() > 3 && s.back() == '0')
            s.pop_back();
        return s;
    };
    std::string out = "seed=" + std::to_string(seed);
    if (dropRate > 0)
        out += ",drop=" + rate(dropRate);
    if (truncateRate > 0)
        out += ",truncate=" + rate(truncateRate);
    if (delayRate > 0)
        out += ",delay=" + rate(delayRate) + ":" +
               std::to_string(unsigned(delayMs));
    if (queueFullRate > 0)
        out += ",queue_full=" + rate(queueFullRate);
    if (corruptDiskEntries > 0)
        out += ",corrupt=" + std::to_string(corruptDiskEntries);
    return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan),
      rng_(plan.seed)
{
}

double
FaultInjector::draw()
{
    // 53 uniform bits -> [0, 1). Caller holds mutex_.
    return double(rng_.next() >> 11) * 0x1.0p-53;
}

FaultInjector::SendFault
FaultInjector::onComputeReply(double &delayMsOut)
{
    delayMsOut = 0;
    if (!plan_.enabled())
        return SendFault::None;
    std::lock_guard lk(mutex_);
    const double u = draw();
    double edge = plan_.dropRate;
    if (u < edge) {
        metrics::counter("service.fault.drops").add(1);
        return SendFault::Drop;
    }
    edge += plan_.truncateRate;
    if (u < edge) {
        metrics::counter("service.fault.truncates").add(1);
        return SendFault::Truncate;
    }
    edge += plan_.delayRate;
    if (u < edge) {
        metrics::counter("service.fault.delays").add(1);
        delayMsOut = plan_.delayMs;
        return SendFault::Delay;
    }
    return SendFault::None;
}

bool
FaultInjector::forceQueueFull()
{
    if (plan_.queueFullRate <= 0)
        return false;
    std::lock_guard lk(mutex_);
    if (draw() < plan_.queueFullRate) {
        metrics::counter("service.fault.queue_fulls").add(1);
        return true;
    }
    return false;
}

std::uint64_t
FaultInjector::injectedCount() const
{
    return metrics::counter("service.fault.drops").value() +
           metrics::counter("service.fault.truncates").value() +
           metrics::counter("service.fault.delays").value() +
           metrics::counter("service.fault.queue_fulls").value();
}

} // namespace printed::service
