/**
 * @file
 * EINTR-safe socket primitives shared by the printedd server and
 * client.
 *
 * Every send/recv in the service layer goes through these helpers
 * so the EINTR and partial-write rules live in exactly one place:
 *
 *   - send(2) can transfer fewer bytes than asked (SO_SNDBUF
 *     pressure) — sendAll() loops until the whole frame is out.
 *   - Both calls can fail with EINTR when a signal lands on the
 *     thread (printedd installs SIGINT/SIGTERM handlers; test
 *     harnesses use SIGUSR1) — interrupted calls are retried, never
 *     surfaced as connection errors.
 *   - waitReadable() wraps poll(2) with the same EINTR retry and a
 *     monotonic deadline, for the client's per-call timeouts.
 */

#ifndef PRINTED_SERVICE_NET_IO_HH
#define PRINTED_SERVICE_NET_IO_HH

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstddef>

namespace printed::service::netio
{

/**
 * Send the whole buffer, retrying EINTR and partial writes.
 * @return false when the peer is gone (EPIPE/ECONNRESET/...).
 */
inline bool
sendAll(int fd, const char *data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        sent += std::size_t(n);
    }
    return true;
}

/**
 * recv() retrying EINTR. @return bytes read; 0 on orderly EOF (or
 * shutdown(SHUT_RD)); negative on a real error.
 */
inline ssize_t
recvSome(int fd, char *buf, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::recv(fd, buf, len, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return n;
    }
}

/**
 * Wait until fd is readable (or hung up, so the recv can observe
 * the EOF). @param timeoutMs <= 0 waits forever.
 * @return false on timeout.
 */
inline bool
waitReadable(int fd, double timeoutMs)
{
    using Clock = std::chrono::steady_clock;
    const bool bounded = timeoutMs > 0;
    const Clock::time_point deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                bounded ? timeoutMs : 0));
    for (;;) {
        int waitMs = -1;
        if (bounded) {
            const auto left =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(deadline -
                                               Clock::now())
                    .count();
            if (left <= 0)
                return false;
            waitMs = int(left);
        }
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int r = ::poll(&pfd, 1, waitMs);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return true; // let the recv report the real error
        }
        if (r > 0)
            return true;
        if (!bounded)
            continue;
        // r == 0: poll timed out; loop re-checks the deadline.
    }
}

} // namespace printed::service::netio

#endif // PRINTED_SERVICE_NET_IO_HH
