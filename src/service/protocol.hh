/**
 * @file
 * Wire protocol of the printedd evaluation service.
 *
 * Newline-delimited JSON over TCP: every request is one JSON object
 * on one line, every reply is one JSON object on one line. Request
 * types:
 *
 *   {"id":"r1","type":"synth","config":{"stages":1,"width":8,
 *    "bars":2}}
 *       Synthesize + characterize one CoreConfig (through the
 *       process-wide SynthCache) and return gates/area/power/delay
 *       in both technologies.
 *
 *   {"id":"r2","type":"yield","config":{...},"trials":256,
 *    "seed":1,"replicas":1,"device_yield":0.9999}
 *       Functional-yield Monte Carlo (batch engine) on the config.
 *
 *   {"id":"r3","type":"sweep","stages":[1,2],"widths":[4,8],
 *    "bars":[2,4]}
 *       Bounded Figure-7 sub-sweep: the cross product of the three
 *       axes (each restricted to the paper's values), at most the
 *       full 24-point grid per request.
 *
 *   {"id":"r7","type":"sweep","iss":{"cores":["msp430","zpu"],
 *    "kernels":["mult","div"],"width":8,"machines":64,"seed":1,
 *    "engine":"batch"}}
 *       Fleet ISS sweep: run every kernel on every legacy core, M
 *       machines per point, on the batch instruction-set simulator
 *       (dse::sweepLegacyIss). All "iss" members are optional;
 *       defaults are all four cores, kernels ["mult","div"], width
 *       8, 64 machines, seed 1, engine "batch". The reply is a
 *       pure function of the request — notably the engine choice
 *       ("batch" vs "scalar") never changes the body bytes, only
 *       throughput. Streams like a synth sweep: one partial frame
 *       per (core, kernel) point.
 *
 *   {"id":"r8","type":"classify","dataset":{"kind":"blobs",
 *    "features":4,"classes":3,"bits":8},"model":"tree","depth":4,
 *    "search":{"generations":6,"population":12,"seed":1},
 *    "budget":{"battery":"Blue Spark 30mAh"}}
 *       Evolutionary classifier approximation search (src/ml): train
 *       or seed the base model, evolve approximations, and return
 *       the accuracy/area Pareto front. All members of "dataset",
 *       "search" ("engine": "batch"/"scalar"), and "budget"
 *       ("battery", "max_area_cm2") are optional with defaults;
 *       "model" is "tree" (with "depth") or "ternary" (with
 *       "hidden"). Streams like a sweep: one partial frame per
 *       generation summary, then a final front point — so partial
 *       index G of G+1 carries the Pareto front.
 *
 *   {"id":"r4","type":"metrics"} / {"id":"r5","type":"health"} /
 *   {"id":"r6","type":"shutdown"}
 *       Introspection and admin. Health replies carry a "types"
 *       array naming every request type the server understands, so
 *       clients and the balancer can feature-detect "classify" on a
 *       mixed-version fleet (v1 workers omit the field and are
 *       assumed to speak the v1 baseline set).
 *
 * Optional request fields: "deadline_ms" (relative per-request
 * deadline; expired requests are answered with a
 * "deadline_exceeded" error instead of results), and inside
 * "config": "tristate" (bool) and "opcode_mask" (the Section 7
 * pruning knob) — useful for generating many distinct synthesis
 * keys under load.
 *
 * Replies: {"id":...,"ok":true,"type":...,"result":{...}} or
 * {"id":...,"ok":false,"error":CODE,"message":TEXT}.
 *
 * Protocol v2 — streaming (backward compatible). A sweep, yield, or
 * classify request may carry "stream": true; a v2 server then
 * answers with zero or more partial frames followed by one done
 * frame:
 *
 *   {"id":..,"ok":true,"type":"sweep",
 *    "partial":{"index":I,"total":N,"point":{...synth body...}}}
 *   {"id":..,"ok":true,"type":"sweep","done":{"points":N}}
 *
 * Partials arrive in strict index order; concatenating the point
 * bodies of indices 0..N-1 reproduces the monolithic "result" body
 * byte-for-byte (assembleStreamedReply). "resume_from": K asks the
 * server to start at point index K — the replay rule after a
 * mid-stream disconnect. Negotiation is implicit: a v1 server
 * ignores the unknown "stream" field and sends the monolithic
 * reply, which clients must accept as a complete stream. Health
 * replies carry "proto": 2 so a balancer can tell which it got.
 *
 * A reply relayed by the balancer from a failover shard (primary
 * marked down) carries a trailing "degraded": true member — the
 * bytes of "result" are unchanged, only the envelope is annotated.
 *
 * Determinism rule (DESIGN.md "Serving"): the reply to a compute
 * request (synth/yield/sweep) is a pure function of the request
 * line — same request, same bytes, regardless of concurrency,
 * coalescing, cache state, or which worker served it. Doubles are
 * rendered in shortest round-trip form (std::to_chars) to make
 * that byte-exact. Introspection replies (metrics/health) and
 * load-dependent errors (queue_full, deadline_exceeded) are
 * exempt by nature.
 */

#ifndef PRINTED_SERVICE_PROTOCOL_HH
#define PRINTED_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/fault.hh"
#include "core/config.hh"
#include "dse/sweep.hh"
#include "ml/evolve.hh"

namespace printed::service
{

/** Error codes of "ok":false replies. */
namespace errc
{
inline constexpr const char *parseError = "parse_error";
inline constexpr const char *badRequest = "bad_request";
inline constexpr const char *queueFull = "queue_full";
inline constexpr const char *deadlineExceeded = "deadline_exceeded";
inline constexpr const char *shuttingDown = "shutting_down";
inline constexpr const char *internalError = "internal_error";
/** Balancer: every shard that could serve the key is down. */
inline constexpr const char *unavailable = "unavailable";
} // namespace errc

/** Wire protocol version advertised in health replies. */
inline constexpr unsigned kProtocolVersion = 2;

enum class RequestType
{
    Synth,
    Yield,
    Sweep,
    Classify,
    Metrics,
    Health,
    Shutdown,
};

/** Protocol name of a request type ("synth", "yield", ...). */
const char *requestTypeName(RequestType type);

/**
 * JSON array of every request type this build serves, in enum
 * order — the "types" member of health replies.
 */
std::string supportedTypesJson();

/**
 * The request-type names a health body advertises. A body without a
 * "types" member is a v1 worker: it gets the v1 baseline set
 * (synth, yield, sweep, metrics, health, shutdown) so mixed-version
 * fleets degrade gracefully instead of mis-detecting.
 */
std::vector<std::string> advertisedTypes(const std::string &healthBody);

/** Axes of a bounded Figure-7 sub-sweep request. */
struct SweepSpec
{
    std::vector<unsigned> stages; ///< subset of {1,2,3}
    std::vector<unsigned> widths; ///< subset of {4,8,16,32}
    std::vector<unsigned> bars;   ///< subset of {2,4}

    /** The cross product, in canonical (stages,width,bars) order. */
    std::vector<CoreConfig> configs() const;
};

/** One parsed, validated request. */
struct Request
{
    std::string id;
    RequestType type = RequestType::Health;

    /** Synth/Yield target. */
    CoreConfig config;

    /** Yield parameters. */
    unsigned trials = 256;
    unsigned replicas = 1;
    std::uint64_t seed = 1;
    double deviceYield = 0.9999;

    /** Sweep axes. */
    SweepSpec sweep;

    /** Fleet ISS sweep ("iss" object present on a sweep request). */
    bool hasIss = false;
    IssSweepSpec iss;

    /** Classify search specification. */
    ml::ClassifySpec classify;

    /** Relative deadline in ms; 0 = none. */
    double deadlineMs = 0;

    /** v2: stream partial frames (sweep/yield/classify only). */
    bool stream = false;

    /** v2: first point index to emit (streamed resume). */
    std::uint64_t resumeFrom = 0;
};

/**
 * Parse + validate one request line. Throws json::ParseError on
 * malformed JSON and FatalError on structurally valid JSON that is
 * not a valid request (unknown type, out-of-range parameters,
 * inconsistent CoreConfig).
 */
Request parseRequest(const std::string &line);

/**
 * Coalescing identity of a compute request: the request type and
 * every result-determining parameter — not the id, not the
 * deadline. Two requests with equal keys get byte-identical result
 * bodies, so in-flight duplicates can share one execution.
 */
std::string coalesceKey(const Request &req);

/**
 * Canonical identity text of a CoreConfig: every field that keys a
 * synthesis (the SynthCache/DiskCache identity). Two configs with
 * equal keys produce byte-identical synth bodies.
 */
std::string configKey(const CoreConfig &config);

/**
 * The balancer's routing key: the canonical config key for synth
 * and yield (all work on one config lands on the shard whose
 * SynthCache holds it hot), the coalesce key for sweeps, and ""
 * for admin requests (fanned out instead of routed).
 */
std::string routeKey(const Request &req);

/** Shortest round-trip decimal rendering of a double. */
std::string formatDouble(double v);

// ---------------------------------------------------------------
// Reply rendering. Bodies are the deterministic "result" objects;
// okReply/errorReply wrap them with the echoed id.
// ---------------------------------------------------------------

/** "result" body of a synth reply. */
std::string synthBody(const DesignPoint &point);

/** "result" body of a yield reply. */
std::string yieldBody(const CoreConfig &config,
                      const FunctionalYieldReport &report);

/** "result" body of a sweep reply. */
std::string sweepBody(const std::vector<DesignPoint> &points);

/** One point of an ISS sweep reply (also a stream point body). */
std::string issPointBody(const IssSweepPoint &point);

/** "result" body of an ISS sweep reply. */
std::string issSweepBody(const std::vector<IssSweepPoint> &points);

/** One generation summary of a classify reply (a stream point). */
std::string classifyGenerationBody(const ml::GenerationReport &g);

/**
 * The Pareto-front point of a classify reply (the final stream
 * point, index `generations` of `generations + 1`).
 */
std::string classifyFrontBody(const ml::ClassifyResult &result);

/**
 * "result" body of a monolithic classify reply: the generation
 * summaries followed by the front point, wrapped sweep-style as
 * {"points": [...]} so stream reassembly shares the sweep rule.
 */
std::string classifyBody(const ml::ClassifyResult &result);

/** Full success reply line (no trailing newline). */
std::string okReply(const std::string &id, RequestType type,
                    const std::string &resultBody);

/** Full error reply line (no trailing newline). */
std::string errorReply(const std::string &id, const char *code,
                       const std::string &message);

/**
 * queue_full error reply carrying a "retry_after_ms" hint: how long
 * the server suggests the client back off before replaying the
 * request. Load-dependent by design (exempt from the determinism
 * rule, like every overload error).
 */
std::string queueFullReply(const std::string &id,
                           double retryAfterMs);

// ---------------------------------------------------------------
// Streaming frames (protocol v2).
// ---------------------------------------------------------------

/**
 * One partial frame: point `index` of `total`, body `pointBody`
 * (a synth body for sweeps, a yield body for yields).
 */
std::string partialFrame(const std::string &id, RequestType type,
                         std::uint64_t index, std::uint64_t total,
                         const std::string &pointBody);

/** Stream terminator: all `points` partials have been sent. */
std::string doneFrame(const std::string &id, RequestType type,
                      std::uint64_t points);

/** A classified reply line of a (possibly streamed) exchange. */
struct StreamFrame
{
    enum class Kind
    {
        Partial, ///< carries one point body
        Done,    ///< stream terminator
        Final,   ///< monolithic reply or error — ends the exchange
    };

    Kind kind = Kind::Final;
    std::string id;        ///< echoed request id
    std::uint64_t index = 0;  ///< Partial: point index
    std::uint64_t total = 0;  ///< Partial: total points in stream
    std::uint64_t points = 0; ///< Done: partials the server sent
    std::string pointBody; ///< Partial: exact body bytes
};

/**
 * Classify one reply line. Partial frames get their point body
 * extracted byte-exactly (so reassembly can't perturb rendering);
 * anything that is neither a partial nor a done frame — monolithic
 * replies from v1 servers, error replies — classifies as Final.
 * Throws json::ParseError on non-JSON input.
 */
StreamFrame classifyFrame(const std::string &line);

/**
 * The monolithic reply equivalent to a completed stream: ordered
 * point bodies 0..N-1 wrapped exactly as the non-streaming server
 * path wraps them. Byte-identical to the v1 reply by construction.
 * Yield streams carry exactly one point (the full yield body).
 */
std::string assembleStreamedReply(const std::string &id,
                                  RequestType type,
                                  const std::vector<std::string> &points);

/**
 * Annotate a reply line with ', "degraded": true' before the
 * closing brace: the balancer served it from a failover shard. The
 * "result" bytes are untouched; stripping the annotation restores
 * the original line.
 */
std::string markDegraded(const std::string &line);

// ---------------------------------------------------------------
// Request building (the client side of the wire format).
// ---------------------------------------------------------------

/** Render a synth request line for a config. */
std::string synthRequest(const std::string &id,
                         const CoreConfig &config,
                         double deadlineMs = 0);

/** Render a yield request line. */
std::string yieldRequest(const std::string &id,
                         const CoreConfig &config, unsigned trials,
                         std::uint64_t seed = 1,
                         unsigned replicas = 1,
                         double deadlineMs = 0);

/** Render a sweep request line. */
std::string sweepRequest(const std::string &id,
                         const SweepSpec &spec,
                         double deadlineMs = 0);

/** Render a fleet ISS sweep request line. */
std::string issSweepRequest(const std::string &id,
                            const IssSweepSpec &spec,
                            double deadlineMs = 0);

/** Render a classify request line (canonical, all fields explicit). */
std::string classifyRequest(const std::string &id,
                            const ml::ClassifySpec &spec,
                            double deadlineMs = 0);

/** Render a metrics / health / shutdown request line. */
std::string adminRequest(const std::string &id, RequestType type);

/**
 * Render a streamed sweep request ("stream": true), resuming at
 * point index `resumeFrom` (0 = the whole sweep).
 */
std::string sweepStreamRequest(const std::string &id,
                               const SweepSpec &spec,
                               std::uint64_t resumeFrom = 0,
                               double deadlineMs = 0);

/** Render a streamed yield request. */
std::string yieldStreamRequest(const std::string &id,
                               const CoreConfig &config,
                               unsigned trials,
                               std::uint64_t seed = 1,
                               unsigned replicas = 1,
                               std::uint64_t resumeFrom = 0,
                               double deadlineMs = 0);

/** Render a streamed classify request. */
std::string classifyStreamRequest(const std::string &id,
                                  const ml::ClassifySpec &spec,
                                  std::uint64_t resumeFrom = 0,
                                  double deadlineMs = 0);

/**
 * Canonical wire rendering of a parsed request: parses back to an
 * equal Request. The balancer uses it to rewrite "resume_from"
 * when re-routing a partially-delivered stream to a failover
 * shard.
 */
std::string requestLine(const Request &req);

} // namespace printed::service

#endif // PRINTED_SERVICE_PROTOCOL_HH
