#include "balancer.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/json_min.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "service/net_io.hh"

namespace printed::service
{

namespace
{

using Clock = std::chrono::steady_clock;

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

Clock::duration
millis(double ms)
{
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
}

/**
 * Extract the "result" body of an ok reply line byte-exactly.
 * okReply() renders "result" as the last member, so the body is
 * everything between the marker and the final closing brace. Falls
 * back to "{}" on anything unexpected (down shards render as such).
 */
std::string
resultBody(const std::string &replyLine)
{
    constexpr const char *kMarker = ", \"result\": ";
    const std::size_t at = replyLine.find(kMarker);
    if (at == std::string::npos || replyLine.empty() ||
        replyLine.back() != '}')
        return "{}";
    const std::size_t start = at + 12; // strlen(kMarker)
    return replyLine.substr(start, replyLine.size() - start - 1);
}

/** Read one '\n'-terminated line from a pipe (EINTR-safe). */
bool
readPipeLine(int fd, std::string &out)
{
    out.clear();
    char c;
    for (;;) {
        const ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return !out.empty();
        if (c == '\n')
            return true;
        out.push_back(c);
    }
}

} // anonymous namespace

/** One client connection: socket, reader thread, write lock. */
struct Balancer::Connection
{
    int fd = -1;
    std::mutex writeMutex;
    std::thread reader;
    std::atomic<bool> open{true};
};

Balancer::Balancer(BalancerOptions opts) : opts_(std::move(opts)) {}

Balancer::~Balancer()
{
    beginShutdown();
    wait();
}

void
Balancer::start()
{
    started_ = Clock::now();

    if (opts_.spawnWorkers > 0) {
        for (unsigned i = 0; i < opts_.spawnWorkers; ++i)
            spawnWorker(i);
    } else {
        fatalIf(opts_.workers.empty(),
                "balancer needs at least one worker");
        for (std::size_t i = 0; i < opts_.workers.size(); ++i) {
            auto shard = std::make_unique<Shard>();
            shard->id = unsigned(i);
            shard->addr = opts_.workers[i];
            shards_.push_back(std::move(shard));
        }
    }

    ring_ = std::make_unique<ShardMap>(ShardMap::forCount(
        unsigned(shards_.size()), opts_.vnodes, opts_.ringSeed));

    if (opts_.faultPlan.enabled())
        fault_ = std::make_unique<FaultInjector>(opts_.faultPlan);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listenFd_ < 0,
            std::string("socket(): ") + std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    fatalIf(::inet_pton(AF_INET, opts_.host.c_str(),
                        &addr.sin_addr) != 1,
            "bad listen address '" + opts_.host + "'");
    fatalIf(::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0,
            std::string("bind(): ") + std::strerror(errno));
    fatalIf(::listen(listenFd_, 64) != 0,
            std::string("listen(): ") + std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    acceptThread_ = std::thread([this] {
        trace::setThreadName("balancer-accept");
        acceptLoop();
    });
    probeThread_ = std::thread([this] {
        trace::setThreadName("balancer-probe");
        probeLoop();
    });
}

bool
Balancer::shardUp(unsigned shard) const
{
    fatalIf(shard >= shards_.size(), "no such shard");
    return shards_[shard]->up.load(std::memory_order_acquire);
}

WorkerAddress
Balancer::shardAddress(unsigned shard) const
{
    fatalIf(shard >= shards_.size(), "no such shard");
    return shards_[shard]->addr;
}

void
Balancer::beginShutdown()
{
    draining_.store(true);
    {
        std::lock_guard lk(stopMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

void
Balancer::wait()
{
    {
        std::unique_lock lk(stopMutex_);
        stopCv_.wait(lk, [&] { return stopRequested_; });
        if (joined_)
            return;
        joined_ = true;
    }
    joinEverything();
}

void
Balancer::joinEverything()
{
    // 1. Stop accepting; unblock accept(2).
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (probeThread_.joinable())
        probeThread_.join();

    // 2. Hang up client connections; readers see EOF and exit
    //    (closing their cached worker connections with them).
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard lk(connMutex_);
        conns.swap(conns_);
    }
    for (const auto &c : conns)
        ::shutdown(c->fd, SHUT_RD);
    for (const auto &c : conns) {
        if (c->reader.joinable())
            c->reader.join();
        ::close(c->fd);
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // 3. The balancer owns its fleet's lifecycle: draining the
    //    front drains the workers behind it (the CI smoke job
    //    asserts all five processes exit cleanly).
    propagateShutdown();
    reapWorkers();
}

void
Balancer::propagateShutdown()
{
    for (const auto &shard : shards_) {
        if (!shard->up.load(std::memory_order_acquire))
            continue;
        try {
            Client c(shard->addr.host, shard->addr.port);
            c.send(adminRequest("balancer-drain",
                                RequestType::Shutdown));
            (void)c.readLine(opts_.shardCallTimeoutMs);
        } catch (const std::exception &) {
            // Best effort: a dead shard has nothing to drain.
        }
    }
}

void
Balancer::spawnWorker(unsigned index)
{
    int pipeFds[2];
    fatalIf(::pipe(pipeFds) != 0,
            std::string("pipe(): ") + std::strerror(errno));

    const pid_t pid = ::fork();
    fatalIf(pid < 0, std::string("fork(): ") + std::strerror(errno));

    if (pid == 0) {
        // Child: stdout -> pipe, then exec printedd on an
        // ephemeral port (the parent reads the banner for it).
        ::close(pipeFds[0]);
        ::dup2(pipeFds[1], STDOUT_FILENO);
        ::close(pipeFds[1]);
        std::vector<std::string> args;
        args.push_back(opts_.printeddPath);
        args.push_back("--port");
        args.push_back("0");
        for (const std::string &a : opts_.workerArgs)
            args.push_back(a);
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execvp(argv[0], argv.data());
        ::_exit(127); // exec failed
    }

    ::close(pipeFds[1]);

    // Parse "printedd listening on HOST:PORT" from the child.
    std::string banner;
    bool found = false;
    while (readPipeLine(pipeFds[0], banner)) {
        const std::size_t at = banner.find("listening on ");
        if (at == std::string::npos)
            continue;
        const std::string hostPort = banner.substr(at + 13);
        const std::size_t colon = hostPort.rfind(':');
        if (colon == std::string::npos)
            continue;
        auto shard = std::make_unique<Shard>();
        shard->id = index;
        shard->addr.host = hostPort.substr(0, colon);
        shard->addr.port = std::uint16_t(
            std::strtoul(hostPort.c_str() + colon + 1, nullptr, 10));
        shard->pid = pid;
        shard->stdoutFd = pipeFds[0];
        // Keep draining the child's stdout so it never blocks on a
        // full pipe.
        const int drainFd = pipeFds[0];
        shard->stdoutDrain = std::thread([drainFd] {
            char buf[4096];
            while (::read(drainFd, buf, sizeof(buf)) > 0 ||
                   errno == EINTR) {
            }
        });
        shards_.push_back(std::move(shard));
        found = true;
        break;
    }
    if (!found) {
        ::close(pipeFds[0]);
        int status = 0;
        ::waitpid(pid, &status, 0);
        fatalIf(true, "worker " + std::to_string(index) +
                          " (" + opts_.printeddPath +
                          ") exited before announcing its port");
    }
}

void
Balancer::reapWorkers()
{
    for (const auto &shard : shards_) {
        if (shard->pid <= 0)
            continue;
        // propagateShutdown() already asked nicely; SIGTERM covers
        // a worker that was marked down (idempotent on a draining
        // printedd).
        ::kill(shard->pid, SIGTERM);
        int status = 0;
        ::waitpid(shard->pid, &status, 0);
        if (shard->stdoutDrain.joinable())
            shard->stdoutDrain.join();
        if (shard->stdoutFd >= 0)
            ::close(shard->stdoutFd);
        shard->pid = -1;
    }
}

void
Balancer::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket shut down
        }
        if (draining_.load()) {
            ::close(fd);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        metrics::counter("balancer.connections").add(1);

        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard lk(connMutex_);
            conns_.push_back(conn);
        }
        conn->reader = std::thread([this, conn] {
            trace::setThreadName("balancer-reader");
            readerLoop(conn);
        });
    }
}

void
Balancer::readerLoop(std::shared_ptr<Connection> conn)
{
    // One reader serves its connection's lines serially, so its
    // worker-connection cache needs no locking; concurrency comes
    // from having many client connections.
    std::map<unsigned, Client> shardConns;
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            netio::recvSome(conn->fd, chunk, sizeof(chunk));
        if (n <= 0)
            break; // EOF, error, or shutdown(SHUT_RD)
        buffer.append(chunk, std::size_t(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line = buffer.substr(start, nl - start);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            start = nl + 1;
            if (!line.empty())
                handleLine(conn, line, shardConns);
        }
        buffer.erase(0, start);
        if (buffer.size() > opts_.maxRequestBytes) {
            sendLine(conn,
                     errorReply("", errc::parseError,
                                "request line too long"));
            break;
        }
    }
    conn->open.store(false);
}

void
Balancer::handleLine(const std::shared_ptr<Connection> &conn,
                     const std::string &line,
                     std::map<unsigned, Client> &shardConns)
{
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("balancer.requests").add(1);

    Request req;
    try {
        req = parseRequest(line);
    } catch (const json::ParseError &e) {
        sendLine(conn, errorReply("", errc::parseError, e.what()));
        return;
    } catch (const FatalError &e) {
        sendLine(conn, errorReply("", errc::badRequest, e.what()));
        return;
    }

    switch (req.type) {
      case RequestType::Metrics:
        stats_.fanouts.fetch_add(1, std::memory_order_relaxed);
        sendLine(conn, okReply(req.id, req.type,
                               mergedMetricsBody(shardConns)));
        return;
      case RequestType::Health:
        stats_.fanouts.fetch_add(1, std::memory_order_relaxed);
        sendLine(conn, okReply(req.id, req.type,
                               mergedHealthBody(shardConns)));
        return;
      case RequestType::Shutdown:
        sendLine(conn, okReply(req.id, req.type,
                               "{\"draining\": true}"));
        beginShutdown();
        return;
      case RequestType::Synth:
      case RequestType::Yield:
      case RequestType::Sweep:
      case RequestType::Classify:
        routeCompute(conn, req, line, shardConns);
        return;
    }
}

void
Balancer::routeCompute(const std::shared_ptr<Connection> &conn,
                       const Request &req, const std::string &line,
                       std::map<unsigned, Client> &shardConns)
{
    stats_.routed.fetch_add(1, std::memory_order_relaxed);

    const std::vector<unsigned> order =
        ring_->failoverOrder(routeKey(req));
    std::uint64_t forwarded = 0;
    for (unsigned shardId : order) {
        Shard &shard = *shards_[shardId];
        if (!shard.up.load(std::memory_order_acquire))
            continue;
        const bool degraded = shardId != order.front();

        // A failover after relayed partials must not replay them:
        // ask the fallback to resume past what the client already
        // holds, so it sees one gapless stream.
        std::string wire = line;
        if (req.stream && forwarded > 0) {
            Request resumed = req;
            resumed.resumeFrom = req.resumeFrom + forwarded;
            wire = requestLine(resumed);
        }

        Client &worker = shardConns[shardId];
        if (forwardAttempt(shard, worker, conn, req, wire, degraded,
                           forwarded)) {
            if (degraded) {
                stats_.failovers.fetch_add(
                    1, std::memory_order_relaxed);
                metrics::counter("balancer.failovers").add(1);
            }
            return;
        }
        worker.close();
        markDown(shard);
    }

    stats_.unavailable.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("balancer.unavailable").add(1);
    sendLine(conn,
             errorReply(req.id, errc::unavailable,
                        "every shard for this key is down"));
}

bool
Balancer::forwardAttempt(Shard &shard, Client &worker,
                         const std::shared_ptr<Connection> &conn,
                         const Request &req,
                         const std::string &wireLine, bool degraded,
                         std::uint64_t &forwardedOut)
{
    (void)req;
    // A cached connection may be stale (the worker restarted since
    // it was opened): one clean-slate resend is allowed, but only
    // while no frame of this attempt has been relayed — resending
    // after a relayed partial would duplicate it.
    unsigned attempts = worker.connected() ? 2 : 1;
    while (attempts--) {
        std::uint64_t relayed = 0;
        try {
            if (!worker.connected())
                worker.connect(shard.addr.host, shard.addr.port);
            worker.send(wireLine);
            for (;;) {
                const std::string raw =
                    worker.readLine(opts_.shardCallTimeoutMs);
                const StreamFrame frame = classifyFrame(raw);
                if (frame.kind == StreamFrame::Kind::Partial) {
                    sendLine(conn, raw, /*faultable=*/true);
                    ++relayed;
                    ++forwardedOut;
                    stats_.partialsForwarded.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                // Done or Final: the exchange is over. Annotating
                // only these frames keeps partial bodies byte-exact
                // for reassembly.
                sendLine(conn, degraded ? markDegraded(raw) : raw,
                         /*faultable=*/true);
                return true;
            }
        } catch (const std::exception &) {
            worker.close();
            if (relayed > 0)
                return false; // mid-stream: fail over, don't resend
        }
    }
    return false;
}

void
Balancer::markDown(Shard &shard)
{
    if (!shard.up.exchange(false))
        return; // already down
    stats_.markedDown.fetch_add(1, std::memory_order_relaxed);
    metrics::counter("balancer.marked_down").add(1);
    std::lock_guard lk(probeMutex_);
    shard.probeFailures.store(0);
    shard.nextProbe = Clock::now() + millis(opts_.probeBackoffBaseMs);
}

void
Balancer::probeLoop()
{
    for (;;) {
        {
            std::unique_lock lk(stopMutex_);
            if (stopCv_.wait_for(lk, millis(opts_.probePeriodMs),
                                 [&] { return stopRequested_; }))
                return;
        }
        for (const auto &shardPtr : shards_) {
            Shard &shard = *shardPtr;
            if (shard.up.load(std::memory_order_acquire))
                continue;
            {
                std::lock_guard lk(probeMutex_);
                if (Clock::now() < shard.nextProbe)
                    continue;
            }
            bool ok = false;
            try {
                Client probe(shard.addr.host, shard.addr.port);
                probe.send(adminRequest("balancer-probe",
                                        RequestType::Health));
                ok = parseReply(probe.readLine(1000)).ok;
            } catch (const std::exception &) {
                ok = false;
            }
            if (ok) {
                shard.up.store(true, std::memory_order_release);
                stats_.revived.fetch_add(1,
                                         std::memory_order_relaxed);
                metrics::counter("balancer.revived").add(1);
            } else {
                const unsigned failures =
                    shard.probeFailures.fetch_add(1) + 1;
                const double backoff = std::min(
                    opts_.probeBackoffMaxMs,
                    opts_.probeBackoffBaseMs *
                        double(1ULL << std::min(failures, 16u)));
                std::lock_guard lk(probeMutex_);
                shard.nextProbe = Clock::now() + millis(backoff);
            }
        }
    }
}

std::string
Balancer::balancerStatsBody() const
{
    unsigned up = 0;
    for (const auto &shard : shards_)
        if (shard->up.load(std::memory_order_acquire))
            ++up;
    std::string out = "{\"requests\": " +
                      std::to_string(stats_.requests.load());
    out += ", \"routed\": " + std::to_string(stats_.routed.load());
    out += ", \"fanouts\": " + std::to_string(stats_.fanouts.load());
    out += ", \"partials_forwarded\": " +
           std::to_string(stats_.partialsForwarded.load());
    out +=
        ", \"failovers\": " + std::to_string(stats_.failovers.load());
    out += ", \"marked_down\": " +
           std::to_string(stats_.markedDown.load());
    out += ", \"revived\": " + std::to_string(stats_.revived.load());
    out += ", \"unavailable\": " +
           std::to_string(stats_.unavailable.load());
    out += ", \"shards\": " + std::to_string(shards_.size());
    out += ", \"shards_up\": " + std::to_string(up);
    out += ", \"uptime_ms\": " + formatDouble(millisSince(started_));
    out += "}";
    return out;
}

std::string
Balancer::mergedMetricsBody(std::map<unsigned, Client> &shardConns)
{
    // Sum every shard's counters (the fleet-wide view asserted by
    // bench/CI) and keep each shard's full metrics body in a
    // per-shard array so imbalance stays visible.
    std::map<std::string, long long> summed;
    std::string shardsArr = "[";
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i)
            shardsArr += ", ";
        Shard &shard = *shards_[i];
        std::string body = "{\"down\": true}";
        if (shard.up.load(std::memory_order_acquire)) {
            Client &worker = shardConns[shard.id];
            try {
                if (!worker.connected())
                    worker.connect(shard.addr.host,
                                   shard.addr.port);
                worker.send(adminRequest("balancer-metrics",
                                         RequestType::Metrics));
                body = resultBody(
                    worker.readLine(opts_.shardCallTimeoutMs));
                const json::Value parsed = json::parse(body);
                if (const json::Value *counters =
                        parsed.find("counters");
                    counters && counters->isObject())
                    for (const auto &[name, value] :
                         counters->object)
                        if (value.isNumber())
                            summed[name] +=
                                (long long)(value.number);
            } catch (const std::exception &) {
                worker.close();
                markDown(shard);
                body = "{\"down\": true}";
            }
        }
        shardsArr += body;
    }
    shardsArr += "]";

    std::string out = "{\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : summed) {
        out += first ? "" : ", ";
        out += json::jsonQuote(name) + ": " + std::to_string(value);
        first = false;
    }
    out += "}, \"balancer\": " + balancerStatsBody();
    out += ", \"shards\": " + shardsArr;
    out += "}";
    return out;
}

std::string
Balancer::mergedHealthBody(std::map<unsigned, Client> &shardConns)
{
    std::string shardsArr = "[";
    unsigned up = 0;
    // The balancer advertises the intersection of its shards'
    // supported request types: a type is only usable through the
    // fleet if every live shard can serve it. Older (protocol-v1)
    // workers that predate the "types" field count as the v1
    // baseline set via advertisedTypes().
    std::vector<std::string> types;
    bool typesSeeded = false;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i)
            shardsArr += ", ";
        Shard &shard = *shards_[i];
        std::string body = "{\"status\": \"down\"}";
        if (shard.up.load(std::memory_order_acquire)) {
            Client &worker = shardConns[shard.id];
            try {
                if (!worker.connected())
                    worker.connect(shard.addr.host,
                                   shard.addr.port);
                worker.send(adminRequest("balancer-health",
                                         RequestType::Health));
                body = resultBody(
                    worker.readLine(opts_.shardCallTimeoutMs));
                ++up;
                const std::vector<std::string> shardTypes =
                    advertisedTypes(body);
                if (!typesSeeded) {
                    types = shardTypes;
                    typesSeeded = true;
                } else {
                    std::erase_if(types, [&](const std::string &t) {
                        return std::find(shardTypes.begin(),
                                         shardTypes.end(),
                                         t) == shardTypes.end();
                    });
                }
            } catch (const std::exception &) {
                worker.close();
                markDown(shard);
                body = "{\"status\": \"down\"}";
            }
        }
        shardsArr += body;
    }
    shardsArr += "]";

    std::string typesArr = "[";
    for (std::size_t i = 0; i < types.size(); ++i) {
        if (i)
            typesArr += ", ";
        typesArr += json::jsonQuote(types[i]);
    }
    typesArr += "]";

    std::string out = "{\"status\": ";
    out += up == shards_.size() ? "\"ok\"" : "\"degraded\"";
    out += ", \"proto\": " + std::to_string(kProtocolVersion);
    out += ", \"role\": \"balancer\"";
    out += ", \"types\": " + typesArr;
    out += ", \"uptime_ms\": " + formatDouble(millisSince(started_));
    out += ", \"shards_up\": " + std::to_string(up);
    out += ", \"shards\": " + shardsArr;
    out += "}";
    return out;
}

void
Balancer::sendLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line, bool faultable)
{
    std::string framed = line;
    framed += '\n';

    if (faultable && fault_) {
        double delayMs = 0;
        switch (fault_->onComputeReply(delayMs)) {
          case FaultInjector::SendFault::None:
            break;
          case FaultInjector::SendFault::Drop: {
            std::lock_guard lk(conn->writeMutex);
            conn->open.store(false);
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
          }
          case FaultInjector::SendFault::Truncate: {
            std::lock_guard lk(conn->writeMutex);
            conn->open.store(false);
            netio::sendAll(conn->fd, framed.data(),
                           framed.size() / 2);
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
          }
          case FaultInjector::SendFault::Delay:
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delayMs));
            break;
        }
    }

    std::lock_guard lk(conn->writeMutex);
    if (!netio::sendAll(conn->fd, framed.data(), framed.size()))
        conn->open.store(false); // client went away
}

} // namespace printed::service
