#include "server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/json_min.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/trace.hh"
#include "dse/sweep.hh"
#include "service/net_io.hh"
#include "synth/cache.hh"
#include "synth/disk_cache.hh"

namespace printed::service
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Internal: a request's deadline expired mid-execution. */
struct DeadlineError : std::runtime_error
{
    DeadlineError() : std::runtime_error("deadline exceeded") {}
};

double
millisSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

/** One client connection: socket, reader thread, write lock. */
struct Server::Connection
{
    int fd = -1;
    std::mutex writeMutex;
    std::thread reader;
    std::atomic<bool> open{true};
};

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.poolThreads)
{
}

Server::~Server()
{
    beginShutdown();
    wait();
}

void
Server::start()
{
    started_ = Clock::now();
    if (opts_.cacheCapacity)
        SynthCache::global().setCapacity(opts_.cacheCapacity);

    if (!opts_.diskCacheDir.empty()) {
        installedDisk_ = std::make_shared<DiskCache>(
            opts_.diskCacheDir, /*publishMetrics=*/true);
        for (unsigned i = 0; i < opts_.faultPlan.corruptDiskEntries;
             ++i)
            installedDisk_->corruptOneEntry(
                mixSeed(opts_.faultPlan.seed, i));
        SynthCache::global().setDiskTier(installedDisk_);
    }
    if (opts_.faultPlan.enabled())
        fault_ = std::make_unique<FaultInjector>(opts_.faultPlan);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(listenFd_ < 0, std::string("socket(): ") +
                               std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts_.port);
    fatalIf(::inet_pton(AF_INET, opts_.host.c_str(),
                        &addr.sin_addr) != 1,
            "bad listen address '" + opts_.host + "'");
    fatalIf(::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0,
            std::string("bind(): ") + std::strerror(errno));
    fatalIf(::listen(listenFd_, 64) != 0,
            std::string("listen(): ") + std::strerror(errno));

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                  &len);
    port_ = ntohs(bound.sin_port);

    acceptThread_ = std::thread([this] {
        trace::setThreadName("service-accept");
        acceptLoop();
    });
    const unsigned executors = opts_.executors ? opts_.executors : 1;
    executorCount_ = executors;
    execSlots_ = std::make_unique<ExecSlot[]>(executors);
    for (unsigned i = 0; i < executors; ++i)
        executors_.emplace_back([this, i] {
            trace::setThreadName("service-exec-" +
                                 std::to_string(i));
            executorLoop(i);
        });
    if (opts_.watchdogPeriodMs > 0)
        watchdog_ = std::thread([this] {
            trace::setThreadName("service-watchdog");
            watchdogLoop();
        });
}

void
Server::beginShutdown()
{
    {
        std::lock_guard lk(queueMutex_);
        finishing_ = true;
    }
    queueCv_.notify_all();
    {
        std::lock_guard lk(stopMutex_);
        stopRequested_ = true;
    }
    stopCv_.notify_all();
}

void
Server::wait()
{
    {
        std::unique_lock lk(stopMutex_);
        stopCv_.wait(lk, [&] { return stopRequested_; });
        if (joined_)
            return;
        joined_ = true;
    }
    joinEverything();
}

void
Server::joinEverything()
{
    // 1. Stop accepting connections. shutdown() unblocks the
    //    accept(2) in acceptLoop.
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();

    // 2. Drain: executors finish every admitted request (finishing_
    //    is already set, so they exit once the queue is empty).
    queueCv_.notify_all();
    for (std::thread &t : executors_)
        if (t.joinable())
            t.join();
    {
        std::lock_guard lk(watchdogMutex_);
        watchdogStop_ = true;
    }
    watchdogCv_.notify_all();
    if (watchdog_.joinable())
        watchdog_.join();

    // 3. Hang up: readers see EOF and exit; then close sockets.
    std::vector<std::shared_ptr<Connection>> conns;
    {
        std::lock_guard lk(connMutex_);
        conns.swap(conns_);
    }
    for (const auto &c : conns)
        ::shutdown(c->fd, SHUT_RD);
    for (const auto &c : conns) {
        if (c->reader.joinable())
            c->reader.join();
        ::close(c->fd);
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // 4. Detach the disk tier we installed (only ours: a test may
    //    have swapped in its own since).
    if (installedDisk_) {
        if (SynthCache::global().diskTier() == installedDisk_)
            SynthCache::global().setDiskTier(nullptr);
        installedDisk_.reset();
    }
}

void
Server::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listen socket shut down
        }
        {
            std::lock_guard lk(queueMutex_);
            if (finishing_) {
                ::close(fd);
                continue;
            }
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        metrics::counter("service.connections").add(1);

        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            std::lock_guard lk(connMutex_);
            conns_.push_back(conn);
        }
        conn->reader = std::thread([this, conn] {
            trace::setThreadName("service-reader");
            readerLoop(conn);
        });
    }
}

void
Server::readerLoop(std::shared_ptr<Connection> conn)
{
    std::string buffer;
    char chunk[4096];
    for (;;) {
        const ssize_t n =
            netio::recvSome(conn->fd, chunk, sizeof(chunk));
        if (n <= 0)
            break; // EOF, error, or shutdown(SHUT_RD)
        buffer.append(chunk, std::size_t(n));
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = buffer.find('\n', start);
            if (nl == std::string::npos)
                break;
            std::string line =
                buffer.substr(start, nl - start);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            start = nl + 1;
            if (!line.empty())
                handleLine(conn, line);
        }
        buffer.erase(0, start);
        if (buffer.size() > opts_.maxRequestBytes) {
            sendLine(conn,
                     errorReply("", errc::parseError,
                                "request line too long"));
            break;
        }
    }
    conn->open.store(false);
}

void
Server::handleLine(const std::shared_ptr<Connection> &conn,
                   const std::string &line)
{
    metrics::counter("service.requests").add(1);

    Request req;
    try {
        req = parseRequest(line);
    } catch (const json::ParseError &e) {
        metrics::counter("service.parse_errors").add(1);
        sendLine(conn, errorReply("", errc::parseError, e.what()));
        return;
    } catch (const FatalError &e) {
        metrics::counter("service.parse_errors").add(1);
        sendLine(conn, errorReply("", errc::badRequest, e.what()));
        return;
    }

    switch (req.type) {
      case RequestType::Metrics:
        metrics::counter("service.requests_admin").add(1);
        sendLine(conn, okReply(req.id, req.type, metricsBody()));
        return;
      case RequestType::Health:
        metrics::counter("service.requests_admin").add(1);
        sendLine(conn, okReply(req.id, req.type, healthBody()));
        return;
      case RequestType::Shutdown:
        metrics::counter("service.requests_admin").add(1);
        sendLine(conn, okReply(req.id, req.type,
                               "{\"draining\": true}"));
        beginShutdown();
        return;
      case RequestType::Synth:
        metrics::counter("service.requests_synth").add(1);
        break;
      case RequestType::Yield:
        metrics::counter("service.requests_yield").add(1);
        break;
      case RequestType::Sweep:
        metrics::counter("service.requests_sweep").add(1);
        break;
      case RequestType::Classify:
        metrics::counter("service.requests_classify").add(1);
        break;
    }

    Task task;
    task.req = std::move(req);
    task.conn = conn;
    task.admitted = Clock::now();
    if (task.req.deadlineMs > 0) {
        task.hasDeadline = true;
        task.deadline =
            task.admitted +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    task.req.deadlineMs));
    }

    const std::string id = task.req.id;

    // Injected overload: reject an admissible compute request as if
    // the queue were full (chaos for the client's retry path).
    if (fault_ && fault_->forceQueueFull()) {
        metrics::counter("service.rejected").add(1);
        sendLine(conn, queueFullReply(id, 10));
        return;
    }

    double retryAfterMs = 0;
    switch (admit(std::move(task), retryAfterMs)) {
      case Admit::Ok:
        return;
      case Admit::QueueFull:
        metrics::counter("service.rejected").add(1);
        sendLine(conn, queueFullReply(id, retryAfterMs));
        return;
      case Admit::ShuttingDown:
        sendLine(conn, errorReply(id, errc::shuttingDown,
                                  "server is draining"));
        return;
    }
}

Server::Admit
Server::admit(Task task, double &retryAfterMsOut)
{
    // Shed by class before the queue is truly full: sweeps (the
    // heaviest requests, up to 24 synth points each) above 50%
    // depth, yields above 75%, synths only at capacity. Cheap
    // requests keep flowing while expensive ones are pushed back.
    const std::size_t cap = opts_.maxQueue;
    std::size_t limit = cap;
    const char *shedCounter = nullptr;
    switch (task.req.type) {
      case RequestType::Sweep:
        limit = std::max<std::size_t>(1, cap / 2);
        shedCounter = "service.shed_sweep";
        break;
      case RequestType::Classify:
        // Whole evolutionary searches are sweep-class work.
        limit = std::max<std::size_t>(1, cap / 2);
        shedCounter = "service.shed_classify";
        break;
      case RequestType::Yield:
        limit = std::max<std::size_t>(1, cap * 3 / 4);
        shedCounter = "service.shed_yield";
        break;
      default:
        break;
    }
    std::size_t depth;
    {
        std::lock_guard lk(queueMutex_);
        if (finishing_)
            return Admit::ShuttingDown;
        depth = queue_.size();
        if (depth >= limit) {
            if (shedCounter && depth < cap)
                metrics::counter(shedCounter).add(1);
            // Backoff hint grows with depth: 5 ms near the shed
            // threshold up to 50 ms at a saturated queue (a zero
            // capacity is always "saturated").
            retryAfterMsOut =
                cap ? 5 + 45.0 * double(depth) / double(cap) : 50;
            return Admit::QueueFull;
        }
        queue_.push_back(std::move(task));
    }
    queueCv_.notify_one();
    return Admit::Ok;
}

void
Server::executorLoop(unsigned slot)
{
    for (;;) {
        Task task;
        {
            std::unique_lock lk(queueMutex_);
            queueCv_.wait(lk, [&] {
                return !queue_.empty() || finishing_;
            });
            if (queue_.empty())
                return; // finishing_ && drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        execute(task, slot);
    }
}

void
Server::watchdogLoop()
{
    const auto period = std::chrono::duration<double, std::milli>(
        opts_.watchdogPeriodMs);
    for (;;) {
        {
            std::unique_lock lk(watchdogMutex_);
            if (watchdogCv_.wait_for(
                    lk, period, [&] { return watchdogStop_; }))
                return;
        }
        std::size_t overrun = 0;
        const std::int64_t now = nowNs();
        for (unsigned i = 0; i < executorCount_; ++i) {
            ExecSlot &slot = execSlots_[i];
            if (slot.startNs.load(std::memory_order_acquire) == 0)
                continue;
            const std::int64_t deadline =
                slot.deadlineNs.load(std::memory_order_acquire);
            if (deadline == 0 || now <= deadline)
                continue;
            ++overrun;
            // Count each overrunning task once, not once per scan.
            if (!slot.reported.exchange(true))
                metrics::counter("service.watchdog_overruns")
                    .add(1);
        }
        metrics::gauge("service.workers_overrun")
            .set(double(overrun));
    }
}

void
Server::execute(Task &task, unsigned slot)
{
    trace::Span span("service.request",
                     requestTypeName(task.req.type));
    metrics::distribution("service.queue_wait_ms")
        .record(millisSince(task.admitted));

    ExecSlot &mySlot = execSlots_[slot];
    mySlot.reported.store(false);
    mySlot.deadlineNs.store(
        task.hasDeadline
            ? std::chrono::duration_cast<std::chrono::nanoseconds>(
                  task.deadline.time_since_epoch())
                  .count()
            : 0,
        std::memory_order_release);
    mySlot.startNs.store(nowNs(), std::memory_order_release);

    const Clock::time_point execStart = Clock::now();
    if (task.req.stream) {
        streamTask(task);
    } else {
        std::string reply;
        try {
            if (task.hasDeadline && Clock::now() > task.deadline)
                throw DeadlineError();
            reply = okReply(task.req.id, task.req.type,
                            coalesced(task));
            metrics::counter("service.replies_ok").add(1);
        } catch (const DeadlineError &) {
            metrics::counter("service.deadline_exceeded").add(1);
            metrics::counter("service.replies_error").add(1);
            reply = errorReply(task.req.id, errc::deadlineExceeded,
                               "deadline of " +
                                   formatDouble(task.req.deadlineMs) +
                                   " ms expired");
        } catch (const std::exception &e) {
            metrics::counter("service.replies_error").add(1);
            reply = errorReply(task.req.id, errc::internalError,
                               e.what());
        }
        sendLine(task.conn, reply, /*faultable=*/true);
    }
    metrics::distribution("service.exec_ms")
        .record(millisSince(execStart));
    mySlot.startNs.store(0, std::memory_order_release);
    mySlot.deadlineNs.store(0, std::memory_order_release);
}

void
Server::streamTask(Task &task)
{
    metrics::counter("service.stream_requests").add(1);
    const Request &req = task.req;
    try {
        if (task.hasDeadline && Clock::now() > task.deadline)
            throw DeadlineError();

        if (req.type == RequestType::Sweep && req.hasIss) {
            const auto grid = req.iss.grid();
            const std::uint64_t total = grid.size();
            fatalIf(req.resumeFrom > total,
                    "resume_from " + std::to_string(req.resumeFrom) +
                        " is past the sweep's " +
                        std::to_string(total) + " points");
            // One frame per (core, kernel) grid point, sequentially,
            // mirroring the synth-sweep stream below. Single-thread
            // evaluation here is still byte-identical to the pooled
            // monolithic body: ISS results are engine- and
            // thread-count-invariant by construction.
            for (std::uint64_t i = req.resumeFrom; i < total; ++i) {
                if (task.hasDeadline && Clock::now() > task.deadline)
                    throw DeadlineError();
                if (!task.conn->open.load())
                    return; // client is gone: stop computing
                const auto &[core, kernel] = grid[std::size_t(i)];
                const std::string body = issPointBody(
                    evaluateIssPoint(core, kernel, req.iss));
                sendLine(task.conn,
                         partialFrame(req.id, req.type, i, total,
                                      body),
                         /*faultable=*/true);
                metrics::counter("service.stream_partials").add(1);
            }
            sendLine(task.conn, doneFrame(req.id, req.type, total),
                     /*faultable=*/true);
        } else if (req.type == RequestType::Sweep) {
            const std::vector<CoreConfig> configs =
                req.sweep.configs();
            const std::uint64_t total = configs.size();
            fatalIf(req.resumeFrom > total,
                    "resume_from " + std::to_string(req.resumeFrom) +
                        " is past the sweep's " +
                        std::to_string(total) + " points");
            // Points are evaluated sequentially so the first frame
            // reaches the client while the rest still compute. Each
            // body is byte-identical to its entry in the monolithic
            // sweepBody() (evaluation is deterministic), which is
            // what makes stream reassembly byte-exact. Streams skip
            // request-level coalescing — each point still dedupes
            // through the SynthCache.
            for (std::uint64_t i = req.resumeFrom; i < total; ++i) {
                if (task.hasDeadline && Clock::now() > task.deadline)
                    throw DeadlineError();
                if (!task.conn->open.load())
                    return; // client is gone: stop computing
                const std::string body = synthBody(
                    evaluateDesignPoint(configs[std::size_t(i)]));
                sendLine(task.conn,
                         partialFrame(req.id, req.type, i, total,
                                      body),
                         /*faultable=*/true);
                metrics::counter("service.stream_partials").add(1);
            }
            sendLine(task.conn, doneFrame(req.id, req.type, total),
                     /*faultable=*/true);
        } else if (req.type == RequestType::Classify) {
            // Classify: points 0..G-1 are per-generation summaries,
            // point G is the Pareto front. Search results are
            // thread-count- and engine-invariant by construction, so
            // a single-thread pool here emits frames byte-identical
            // to the pooled monolithic classifyBody() while the
            // shared pool stays free for queued compute. Streams
            // skip request-level coalescing — repeated specs still
            // dedupe through the classify result cache.
            const std::uint64_t total =
                req.classify.search.generations + 1;
            fatalIf(req.resumeFrom > total,
                    "resume_from " + std::to_string(req.resumeFrom) +
                        " is past the classify's " +
                        std::to_string(total) + " points");
            struct ClientGone {};
            ThreadPool local(1);
            try {
                const auto result = ml::runClassifyCached(
                    req.classify, local,
                    [&](const ml::GenerationReport &gen) {
                        if (task.hasDeadline &&
                            Clock::now() > task.deadline)
                            throw DeadlineError();
                        if (!task.conn->open.load())
                            throw ClientGone{};
                        if (gen.generation < req.resumeFrom)
                            return;
                        sendLine(task.conn,
                                 partialFrame(
                                     req.id, req.type,
                                     gen.generation, total,
                                     classifyGenerationBody(gen)),
                                 /*faultable=*/true);
                        metrics::counter("service.stream_partials")
                            .add(1);
                    });
                if (task.hasDeadline && Clock::now() > task.deadline)
                    throw DeadlineError();
                if (!task.conn->open.load())
                    return; // client is gone: stop computing
                if (total - 1 >= req.resumeFrom) {
                    sendLine(task.conn,
                             partialFrame(req.id, req.type,
                                          total - 1, total,
                                          classifyFrontBody(*result)),
                             /*faultable=*/true);
                    metrics::counter("service.stream_partials")
                        .add(1);
                }
                sendLine(task.conn,
                         doneFrame(req.id, req.type, total),
                         /*faultable=*/true);
            } catch (const ClientGone &) {
                return; // client is gone: stop computing
            }
        } else {
            // Yield: a one-point stream carrying the full body, so
            // the client's resume rule is uniform across streamed
            // types. resume_from 1 means the client already holds
            // the point — answer done without recomputing.
            fatalIf(req.resumeFrom > 1,
                    "resume_from is past the yield's single point");
            if (req.resumeFrom == 0) {
                const std::string body = coalesced(task);
                sendLine(task.conn,
                         partialFrame(req.id, req.type, 0, 1, body),
                         /*faultable=*/true);
                metrics::counter("service.stream_partials").add(1);
            }
            sendLine(task.conn, doneFrame(req.id, req.type, 1),
                     /*faultable=*/true);
        }
        metrics::counter("service.replies_ok").add(1);
    } catch (const DeadlineError &) {
        metrics::counter("service.deadline_exceeded").add(1);
        metrics::counter("service.replies_error").add(1);
        sendLine(task.conn,
                 errorReply(req.id, errc::deadlineExceeded,
                            "deadline of " +
                                formatDouble(req.deadlineMs) +
                                " ms expired"),
                 /*faultable=*/true);
    } catch (const FatalError &e) {
        metrics::counter("service.replies_error").add(1);
        sendLine(task.conn,
                 errorReply(req.id, errc::badRequest, e.what()),
                 /*faultable=*/true);
    } catch (const std::exception &e) {
        metrics::counter("service.replies_error").add(1);
        sendLine(task.conn,
                 errorReply(req.id, errc::internalError, e.what()),
                 /*faultable=*/true);
    }
}

std::string
Server::coalesced(const Task &task)
{
    const std::string key = coalesceKey(task.req);
    for (;;) {
        std::shared_future<std::string> future;
        std::uint64_t id = 0;
        bool leader = false;
        std::promise<std::string> promise;
        {
            std::lock_guard lk(coalesceMutex_);
            auto it = inflight_.find(key);
            if (it != inflight_.end()) {
                future = it->second.future;
                metrics::counter("service.coalesce_hits").add(1);
            } else {
                leader = true;
                future = promise.get_future().share();
                id = ++nextInflightId_;
                inflight_[key] = Inflight{future, id};
            }
        }

        if (leader) {
            std::string body;
            try {
                body = computeBody(task);
            } catch (...) {
                // Same semantics as the SynthCache: store the
                // exception first, then drop the entry (only if it
                // is still ours), so every coalesced waiter sees
                // the original error and later requests retry.
                promise.set_exception(std::current_exception());
                std::lock_guard lk(coalesceMutex_);
                auto it = inflight_.find(key);
                if (it != inflight_.end() && it->second.id == id)
                    inflight_.erase(it);
                throw;
            }
            promise.set_value(body);
            std::lock_guard lk(coalesceMutex_);
            auto it = inflight_.find(key);
            if (it != inflight_.end() && it->second.id == id)
                inflight_.erase(it);
            return body;
        }

        try {
            return future.get();
        } catch (const DeadlineError &) {
            // The *leader's* deadline expired, not necessarily
            // ours. Retry as leader if we still have room.
            if (task.hasDeadline && Clock::now() > task.deadline)
                throw;
        }
    }
}

std::string
Server::computeBody(const Task &task)
{
    const Request &req = task.req;
    switch (req.type) {
      case RequestType::Synth:
        return synthBody(evaluateDesignPoint(req.config));

      case RequestType::Yield: {
        FunctionalYieldConfig mc;
        mc.fault.deviceYield = req.deviceYield;
        mc.fault.seed = req.seed;
        mc.trials = req.trials;
        mc.replicas = req.replicas;
        mc.pool = &pool_;
        auto core = SynthCache::global().core(req.config);
        std::lock_guard lk(poolMutex_);
        return yieldBody(
            req.config,
            measureFunctionalYield(*core, req.config, mc));
      }

      case RequestType::Sweep: {
        if (req.hasIss) {
            const auto grid = req.iss.grid();
            if (task.hasDeadline) {
                // Sequential, deadline-checked between points, same
                // rule as the synth sweep below. ISS results are
                // engine- and thread-count-invariant, so the reply
                // bytes don't depend on which path ran.
                std::vector<IssSweepPoint> points;
                points.reserve(grid.size());
                for (const auto &[core, kernel] : grid) {
                    if (Clock::now() > task.deadline)
                        throw DeadlineError();
                    points.push_back(
                        evaluateIssPoint(core, kernel, req.iss));
                }
                return issSweepBody(points);
            }
            SweepOptions opts;
            opts.pool = &pool_;
            std::lock_guard lk(poolMutex_);
            return issSweepBody(sweepLegacyIss(req.iss, opts));
        }
        const std::vector<CoreConfig> configs =
            req.sweep.configs();
        if (task.hasDeadline) {
            // Sequential, deadline-checked between points. Point
            // results are identical to the pool path (evaluation
            // is deterministic), so the reply bytes don't depend
            // on which path ran.
            std::vector<DesignPoint> points;
            points.reserve(configs.size());
            for (const CoreConfig &config : configs) {
                if (Clock::now() > task.deadline)
                    throw DeadlineError();
                points.push_back(evaluateDesignPoint(config));
            }
            return sweepBody(points);
        }
        SweepOptions opts;
        opts.pool = &pool_;
        std::lock_guard lk(poolMutex_);
        return sweepBody(sweepConfigs(configs, opts));
      }

      case RequestType::Classify: {
        // Deadline is checked between generations through the
        // progress callback; search results are thread-invariant,
        // so the reply bytes don't depend on pool width.
        ml::GenerationCallback cb;
        if (task.hasDeadline)
            cb = [&](const ml::GenerationReport &) {
                if (Clock::now() > task.deadline)
                    throw DeadlineError();
            };
        std::lock_guard lk(poolMutex_);
        return classifyBody(
            *ml::runClassifyCached(req.classify, pool_, cb));
      }

      default:
        panic("computeBody() on a non-compute request");
    }
}

std::string
Server::metricsBody() const
{
    const metrics::Snapshot snap =
        metrics::Registry::global().snapshot();
    std::string out = "{\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        out += first ? "" : ", ";
        out += json::jsonQuote(name) + ": " +
               std::to_string(value);
        first = false;
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        out += first ? "" : ", ";
        out += json::jsonQuote(name) + ": " + formatDouble(value);
        first = false;
    }
    out += "}, \"distributions\": {";
    first = true;
    for (const auto &[name, s] : snap.distributions) {
        out += first ? "" : ", ";
        out += json::jsonQuote(name);
        out += ": {\"count\": " + std::to_string(s.count);
        out += ", \"mean\": " + formatDouble(s.mean);
        out += ", \"p50\": " + formatDouble(s.p50);
        out += ", \"p95\": " + formatDouble(s.p95);
        out += ", \"max\": " + formatDouble(s.max);
        out += "}";
        first = false;
    }
    out += "}}";
    return out;
}

std::string
Server::healthBody()
{
    std::size_t depth;
    bool draining;
    {
        std::lock_guard lk(queueMutex_);
        depth = queue_.size();
        draining = finishing_;
    }
    std::string out = "{\"status\": \"ok\"";
    out += ", \"proto\": " + std::to_string(kProtocolVersion);
    out += ", \"types\": " + supportedTypesJson();
    out += ", \"uptime_ms\": " +
           formatDouble(millisSince(started_));
    out += ", \"queue_depth\": " + std::to_string(depth);
    out += ", \"queue_capacity\": " +
           std::to_string(opts_.maxQueue);
    out += ", \"pool_threads\": " +
           std::to_string(pool_.threadCount());
    out += ", \"draining\": ";
    out += draining ? "true" : "false";
    out += "}";
    return out;
}

void
Server::sendLine(const std::shared_ptr<Connection> &conn,
                 const std::string &line, bool faultable)
{
    std::string framed = line;
    framed += '\n';

    if (faultable && fault_) {
        double delayMs = 0;
        switch (fault_->onComputeReply(delayMs)) {
          case FaultInjector::SendFault::None:
            break;
          case FaultInjector::SendFault::Drop: {
            // The reply vanishes: hang up without sending. The
            // client must detect the lost connection and replay.
            std::lock_guard lk(conn->writeMutex);
            conn->open.store(false);
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
          }
          case FaultInjector::SendFault::Truncate: {
            // A torn frame: half the bytes, then hang up. The
            // client must discard the partial line, not parse it.
            std::lock_guard lk(conn->writeMutex);
            conn->open.store(false);
            netio::sendAll(conn->fd, framed.data(),
                           framed.size() / 2);
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
          }
          case FaultInjector::SendFault::Delay:
            // A slow peer: stall outside the write lock so other
            // replies on this connection aren't held hostage.
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    delayMs));
            break;
        }
    }

    std::lock_guard lk(conn->writeMutex);
    if (!netio::sendAll(conn->fd, framed.data(), framed.size()))
        conn->open.store(false); // client went away; drop the reply
}

} // namespace printed::service
