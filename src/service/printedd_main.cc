/**
 * @file
 * printedd: the evaluation daemon. Binds, prints the listen
 * address on stdout (scripts parse that line to find the ephemeral
 * port), and serves until a "shutdown" request or SIGINT/SIGTERM,
 * then drains admitted requests and exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>

#include "common/logging.hh"
#include "common/trace.hh"
#include "service/server.hh"

namespace
{

int gSignalPipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    // Best effort; the pipe is only ever written once meaningfully.
    (void)!::write(gSignalPipe[1], &byte, 1);
}

unsigned long
numberArg(int argc, char **argv, int &i, const char *flag)
{
    printed::fatalIf(i + 1 >= argc,
                     std::string(flag) + " needs a value");
    return std::strtoul(argv[++i], nullptr, 10);
}

void
usage()
{
    std::fputs(
        "usage: printedd [options]\n"
        "  --host ADDR       listen address (default 127.0.0.1)\n"
        "  --port N          listen port (default 0 = ephemeral)\n"
        "  --executors N     request executor threads (default 2)\n"
        "  --pool-threads N  shared compute pool size (default\n"
        "                    0 = hardware concurrency)\n"
        "  --max-queue N     admission queue capacity (default 64)\n"
        "  --cache-cap N     SynthCache entry cap, 0 = unbounded\n"
        "                    (default 256)\n"
        "  --disk-cache DIR  persistent synthesis cache directory\n"
        "                    (crash-safe; survives restarts)\n"
        "  --fault-plan SPEC seeded fault injection, e.g.\n"
        "                    seed=42,drop=0.05,truncate=0.05,\n"
        "                    delay=0.1:20,queue_full=0.1,corrupt=1\n"
        "                    (env PRINTEDD_FAULT_PLAN as fallback)\n"
        "  --watchdog-ms N   deadline-overrun watchdog period\n"
        "                    (default 50, 0 = off)\n"
        "  --trace-out PATH  write a Chrome trace on exit\n",
        stderr);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using printed::service::Server;
    using printed::service::ServerOptions;

    ServerOptions opts;
    opts.cacheCapacity = 256;
    std::string traceOut;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (arg == "--host") {
                printed::fatalIf(i + 1 >= argc,
                                 "--host needs a value");
                opts.host = argv[++i];
            } else if (arg == "--port") {
                opts.port = std::uint16_t(
                    numberArg(argc, argv, i, "--port"));
            } else if (arg == "--executors") {
                opts.executors = unsigned(
                    numberArg(argc, argv, i, "--executors"));
            } else if (arg == "--pool-threads") {
                opts.poolThreads = unsigned(
                    numberArg(argc, argv, i, "--pool-threads"));
            } else if (arg == "--max-queue") {
                opts.maxQueue =
                    numberArg(argc, argv, i, "--max-queue");
            } else if (arg == "--cache-cap") {
                opts.cacheCapacity =
                    numberArg(argc, argv, i, "--cache-cap");
            } else if (arg == "--disk-cache") {
                printed::fatalIf(i + 1 >= argc,
                                 "--disk-cache needs a value");
                opts.diskCacheDir = argv[++i];
            } else if (arg == "--fault-plan") {
                printed::fatalIf(i + 1 >= argc,
                                 "--fault-plan needs a value");
                opts.faultPlan =
                    printed::service::FaultPlan::parse(argv[++i]);
            } else if (arg == "--watchdog-ms") {
                opts.watchdogPeriodMs = double(
                    numberArg(argc, argv, i, "--watchdog-ms"));
            } else if (arg == "--trace-out") {
                printed::fatalIf(i + 1 >= argc,
                                 "--trace-out needs a value");
                traceOut = argv[++i];
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                std::fprintf(stderr, "unknown option '%s'\n",
                             arg.c_str());
                usage();
                return 2;
            }
        } catch (const printed::FatalError &e) {
            std::fprintf(stderr, "printedd: %s\n", e.what());
            return 2;
        }
    }

    if (!traceOut.empty())
        printed::trace::enable(traceOut);
    printed::trace::setThreadName("main");

    if (!opts.faultPlan.enabled()) {
        if (const char *env = std::getenv("PRINTEDD_FAULT_PLAN");
            env && *env) {
            try {
                opts.faultPlan =
                    printed::service::FaultPlan::parse(env);
            } catch (const printed::FatalError &e) {
                std::fprintf(stderr, "printedd: %s\n", e.what());
                return 2;
            }
        }
    }
    if (opts.faultPlan.enabled())
        std::fprintf(stderr, "printedd: fault plan %s\n",
                     opts.faultPlan.describe().c_str());

    try {
        Server server(opts);
        server.start();

        // Signal -> self-pipe -> watcher thread -> beginShutdown.
        // (beginShutdown takes locks, so it can't run in the
        // handler itself.)
        printed::fatalIf(::pipe(gSignalPipe) != 0,
                         "pipe() failed");
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::thread watcher([&server] {
            char byte;
            if (::read(gSignalPipe[0], &byte, 1) > 0)
                server.beginShutdown();
        });

        std::printf("printedd listening on %s:%u\n",
                    opts.host.c_str(), unsigned(server.port()));
        std::fflush(stdout);

        server.wait();

        // Unblock the watcher if shutdown came over the wire.
        onSignal(0);
        watcher.join();
        ::close(gSignalPipe[0]);
        ::close(gSignalPipe[1]);
    } catch (const printed::FatalError &e) {
        std::fprintf(stderr, "printedd: %s\n", e.what());
        return 1;
    }

    if (!traceOut.empty())
        printed::trace::flush();
    return 0;
}
