/**
 * @file
 * printedd: the long-running evaluation service.
 *
 * Serves the protocol of protocol.hh over loopback TCP. The server
 * is structured as
 *
 *   accept thread -> one reader thread per connection
 *                 -> bounded request queue (admission control)
 *                 -> executor threads  -> shared compute ThreadPool
 *
 * Admission: compute requests (synth/yield/sweep) enter a bounded
 * FIFO queue; when it is full the request is answered immediately
 * with a "queue_full" error instead of being buffered without
 * limit. Introspection (metrics/health) and admin (shutdown) are
 * answered inline by the reader thread and never queue.
 *
 * Deadlines: a request's optional "deadline_ms" is relative to
 * admission. It is checked when an executor dequeues the request
 * and between sweep points, so a deadline shorter than the queue
 * wait or a sweep's remaining work yields a "deadline_exceeded"
 * error without burning further compute.
 *
 * Coalescing: identical in-flight compute requests (equal
 * coalesceKey) share one execution via a promise/shared_future map
 * — the same idiom as the SynthCache, and the same failure
 * semantics (exception stored before the entry is dropped). A
 * follower woken by a *leader's* deadline abort retries as leader
 * if its own deadline still has room.
 *
 * Drain: shutdown (the request type, Server::~Server, or a signal
 * via beginShutdown()) stops admission — new compute requests get
 * "shutting_down" — then lets the executors finish every admitted
 * request before the sockets close, so no accepted request is ever
 * silently dropped.
 *
 * Load shedding: under pressure the admission queue rejects by
 * request *class* before it is actually full — heavy sweeps are
 * shed first (above ~50% depth), yields next (~75%), synths only
 * when the queue is truly full. health/metrics never queue, so the
 * control plane stays answerable no matter the load. Every
 * queue_full rejection carries a "retry_after_ms" backoff hint
 * scaled to the current depth.
 *
 * Watchdog: a periodic thread watches the per-executor work slots
 * and flags workers that have run past their request's deadline
 * ("service.watchdog_overruns" counter, "service.workers_overrun"
 * gauge) — deadline overruns become observable instead of silent.
 *
 * Fault injection: an optional seeded FaultPlan (fault_plan.hh)
 * makes the server misbehave on purpose — drop/truncate/delay
 * compute replies, force queue_full, corrupt disk-cache entries at
 * start — for chaos tests of the client retry path.
 *
 * Persistence: with ServerOptions::diskCacheDir set, start()
 * installs a crash-safe on-disk tier (synth/disk_cache.hh) under
 * the process-wide SynthCache, so synthesis results survive
 * restarts (including kill -9).
 *
 * Determinism: compute replies are byte-identical functions of the
 * request line (protocol.hh); the executor/coalescing machinery
 * only decides *when* and *by whom* a reply is computed, never its
 * bytes. Everything else the server touches (metrics, traces) is
 * observational only.
 */

#ifndef PRINTED_SERVICE_SERVER_HH
#define PRINTED_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "service/fault_plan.hh"
#include "service/protocol.hh"

namespace printed
{
class DiskCache;
}

namespace printed::service
{

/** Configuration of a Server. */
struct ServerOptions
{
    /** Listen address (loopback by default — printedd is local). */
    std::string host = "127.0.0.1";

    /** Listen port; 0 = ephemeral (read back via Server::port()). */
    std::uint16_t port = 0;

    /** Executor threads draining the request queue. */
    unsigned executors = 2;

    /**
     * Threads of the shared compute pool (yield trials, sweep
     * points); 0 = hardware concurrency.
     */
    unsigned poolThreads = 0;

    /** Admission-queue capacity; beyond it requests are rejected. */
    std::size_t maxQueue = 64;

    /** Largest accepted request line; longer closes the client. */
    std::size_t maxRequestBytes = 1 << 20;

    /**
     * SynthCache::global() entry cap installed at start(); 0 leaves
     * the cache unbounded (the bench/test default).
     */
    std::size_t cacheCapacity = 0;

    /**
     * Directory of the persistent synthesis cache; empty = no disk
     * tier. start() installs it under SynthCache::global(),
     * joinEverything() uninstalls it.
     */
    std::string diskCacheDir;

    /** Injected-fault schedule; disabled by default. */
    FaultPlan faultPlan;

    /** Watchdog scan period; 0 disables the watchdog thread. */
    double watchdogPeriodMs = 50;
};

/** The printedd TCP server. */
class Server
{
  public:
    explicit Server(ServerOptions opts = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the service threads. */
    void start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /**
     * Request shutdown: stop admitting compute requests and wake
     * wait(). Safe from any thread, including reader threads (the
     * "shutdown" request type calls this); returns immediately.
     */
    void beginShutdown();

    /**
     * Block until shutdown is requested, then drain: finish every
     * admitted request, join all threads, close all sockets.
     */
    void wait();

  private:
    struct Connection;

    /** Admission verdicts. */
    enum class Admit
    {
        Ok,
        QueueFull,
        ShuttingDown
    };

    /** One admitted compute request. */
    struct Task
    {
        Request req;
        std::shared_ptr<Connection> conn;
        std::chrono::steady_clock::time_point admitted;
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void executorLoop(unsigned slot);
    void watchdogLoop();

    /** Handle one request line from a connection. */
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line);

    /**
     * Class-aware admission (see file comment). On QueueFull,
     * retryAfterMsOut carries the depth-scaled backoff hint.
     */
    Admit admit(Task task, double &retryAfterMsOut);
    void execute(Task &task, unsigned slot);

    /**
     * Serve a "stream": true request (protocol v2): partial frames
     * in point order starting at resume_from, then a done frame.
     * Sends its own frames; every frame is faultable like a
     * monolithic compute reply.
     */
    void streamTask(Task &task);

    /**
     * Result body of a compute request, deduped against identical
     * in-flight requests. Throws DeadlineError (internal) when the
     * deadline expires mid-execution.
     */
    std::string coalesced(const Task &task);

    /** Compute the result body of a task (no coalescing). */
    std::string computeBody(const Task &task);

    std::string metricsBody() const;
    std::string healthBody();

    /**
     * Send one reply line on a connection (serialized per-conn).
     * `faultable` marks compute replies, the only traffic the fault
     * injector may drop, truncate, or delay.
     */
    void sendLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line, bool faultable = false);

    void joinEverything();

    ServerOptions opts_;
    std::uint16_t port_ = 0;
    int listenFd_ = -1;
    std::chrono::steady_clock::time_point started_;

    ThreadPool pool_;
    std::mutex poolMutex_; ///< the pool runs one job at a time

    std::thread acceptThread_;
    std::vector<std::thread> executors_;

    /** What one executor is working on, for the watchdog. */
    struct ExecSlot
    {
        std::atomic<std::int64_t> startNs{0};    ///< 0 = idle
        std::atomic<std::int64_t> deadlineNs{0}; ///< 0 = none
        std::atomic<bool> reported{false};
    };
    std::unique_ptr<ExecSlot[]> execSlots_;
    unsigned executorCount_ = 0;
    std::thread watchdog_;
    std::mutex watchdogMutex_;
    std::condition_variable watchdogCv_;
    bool watchdogStop_ = false;

    std::unique_ptr<FaultInjector> fault_;
    std::shared_ptr<DiskCache> installedDisk_;

    std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> conns_;

    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::deque<Task> queue_;
    bool finishing_ = false; ///< shutdown requested; drain mode

    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    bool joined_ = false;

    /** In-flight compute executions, by coalesceKey. */
    struct Inflight
    {
        std::shared_future<std::string> future;
        std::uint64_t id = 0;
    };
    std::mutex coalesceMutex_;
    std::map<std::string, Inflight> inflight_;
    std::uint64_t nextInflightId_ = 0;
};

} // namespace printed::service

#endif // PRINTED_SERVICE_SERVER_HH
