/**
 * @file
 * printed-balancer: the sharded front of a printedd fleet.
 *
 * Speaks the exact printedd protocol to clients and routes every
 * keyed compute request (synth/yield/sweep) to one of N worker
 * processes by consistent-hashing its routeKey() over a ShardMap
 * ring. Key affinity is the whole point: all work on one CoreConfig
 * lands on one shard, so that shard's in-memory SynthCache stays
 * hot and request coalescing still fires (per shard) even though
 * the fleet has no shared memory. Admin requests (metrics/health)
 * fan out to every shard and come back merged; shutdown is
 * acknowledged, propagated to every live shard, and then drains the
 * balancer itself.
 *
 * Streaming (protocol v2) passes through: partial frames from the
 * worker are forwarded to the client as they arrive, so the
 * balancer adds pipelining latency, not batching latency.
 *
 * Shard death — the mark-down state machine:
 *
 *     UP --connect/exchange failure--> DOWN (atomic flag)
 *     DOWN --probe ok--> UP
 *     probe cadence: capped exponential backoff per shard
 *
 * A request whose primary shard is down (or fails mid-exchange) is
 * re-routed to the next live shard in the key's ring-successor
 * order (ShardMap::failoverOrder — exactly the shard that would own
 * the key if the dead one left the ring). Because compute replies
 * are pure functions of the request line, the failover shard's
 * bytes are identical to the primary's; the balancer only annotates
 * the final reply with "degraded": true so clients can see they
 * were served by a fallback. A mid-stream failover rewrites
 * "resume_from" past the partials already forwarded, so the client
 * sees one gapless stream. When every candidate shard is down the
 * request is answered with an "unavailable" error (transient: the
 * RetryingClient treats it like queue_full).
 *
 * Worker fleet: either a list of externally managed host:port
 * workers (BalancerOptions::workers) or a self-spawned fleet
 * (spawnWorkers > 0): fork/exec `printedd --port 0`, parse the
 * bound port from the child's "printedd listening on" banner, and
 * reap the children on drain.
 *
 * Fault injection: an optional FaultPlan applies to compute frames
 * the balancer relays (drop/truncate/delay/queue_full), reusing the
 * PR 6 machinery so chaos tests can exercise the client's resume
 * path *through* the balancer.
 */

#ifndef PRINTED_SERVICE_BALANCER_HH
#define PRINTED_SERVICE_BALANCER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "service/client.hh"
#include "service/fault_plan.hh"
#include "service/protocol.hh"
#include "service/shard_map.hh"

namespace printed::service
{

/** Address of one externally managed worker. */
struct WorkerAddress
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

/** Configuration of a Balancer. */
struct BalancerOptions
{
    /** Listen address of the balancer itself. */
    std::string host = "127.0.0.1";

    /** Listen port; 0 = ephemeral (read back via port()). */
    std::uint16_t port = 0;

    /** Externally managed workers (shard ids = vector indices). */
    std::vector<WorkerAddress> workers;

    /**
     * Self-spawned fleet size; > 0 forks this many `printedd
     * --port 0` children instead of using `workers`.
     */
    unsigned spawnWorkers = 0;

    /** printedd binary for spawn mode. */
    std::string printeddPath = "printedd";

    /** Extra argv passed to every spawned worker. */
    std::vector<std::string> workerArgs;

    /** Ring geometry (every party must agree for affinity math). */
    unsigned vnodes = ShardMap::kDefaultVnodes;
    std::uint64_t ringSeed = ShardMap::kDefaultSeed;

    /** Down-shard probe cadence and its per-shard backoff. */
    double probePeriodMs = 100;
    double probeBackoffBaseMs = 50;
    double probeBackoffMaxMs = 2000;

    /** Per-frame reply deadline on a worker exchange; 0 = none. */
    double shardCallTimeoutMs = 30000;

    /** Largest accepted request line; longer closes the client. */
    std::size_t maxRequestBytes = 1 << 20;

    /** Injected-fault schedule on relayed compute frames. */
    FaultPlan faultPlan;
};

/** Monotonic counters of one Balancer (rendered into metrics). */
struct BalancerStats
{
    std::atomic<std::uint64_t> requests{0};  ///< lines handled
    std::atomic<std::uint64_t> routed{0};    ///< keyed forwards
    std::atomic<std::uint64_t> fanouts{0};   ///< admin fan-outs
    std::atomic<std::uint64_t> partialsForwarded{0};
    std::atomic<std::uint64_t> failovers{0}; ///< degraded serves
    std::atomic<std::uint64_t> markedDown{0};
    std::atomic<std::uint64_t> revived{0};   ///< probe successes
    std::atomic<std::uint64_t> unavailable{0};
};

/** The printed-balancer TCP front. */
class Balancer
{
  public:
    explicit Balancer(BalancerOptions opts);
    ~Balancer();

    Balancer(const Balancer &) = delete;
    Balancer &operator=(const Balancer &) = delete;

    /**
     * Spawn workers (spawn mode), build the ring, bind, listen,
     * start the accept and probe threads.
     */
    void start();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Shard count (valid after start()). */
    std::size_t shardCount() const { return shards_.size(); }

    /** Is a shard currently marked up? (test introspection) */
    bool shardUp(unsigned shard) const;

    /** Worker address of a shard (valid after start()). */
    WorkerAddress shardAddress(unsigned shard) const;

    /** Request shutdown (does not touch the workers). */
    void beginShutdown();

    /** Block until shutdown, then drain and reap spawned workers. */
    void wait();

    const BalancerStats &stats() const { return stats_; }

  private:
    struct Connection;

    /** One worker and its mark-down state. */
    struct Shard
    {
        unsigned id = 0;
        WorkerAddress addr;
        pid_t pid = -1; ///< spawn mode only
        int stdoutFd = -1;
        std::thread stdoutDrain;
        std::atomic<bool> up{true};
        std::atomic<unsigned> probeFailures{0};
        std::chrono::steady_clock::time_point nextProbe{};
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Connection> conn);
    void probeLoop();

    /**
     * Handle one request line. `shardConns` is the reader thread's
     * private cache of worker connections (one reader handles its
     * connection's lines serially, so no locking).
     */
    void handleLine(const std::shared_ptr<Connection> &conn,
                    const std::string &line,
                    std::map<unsigned, Client> &shardConns);

    /** Route + forward one compute request (failover inside). */
    void routeCompute(const std::shared_ptr<Connection> &conn,
                      const Request &req, const std::string &line,
                      std::map<unsigned, Client> &shardConns);

    /**
     * One forwarding attempt against one shard. Returns true when
     * a final frame was delivered to the client; false on shard
     * failure (the caller marks it down and fails over).
     * `forwardedOut` counts partial frames relayed across attempts
     * (feeds the failover resume_from rewrite).
     */
    bool forwardAttempt(Shard &shard, Client &worker,
                        const std::shared_ptr<Connection> &conn,
                        const Request &req,
                        const std::string &wireLine, bool degraded,
                        std::uint64_t &forwardedOut);

    /** Merged fan-out bodies. */
    std::string mergedMetricsBody(
        std::map<unsigned, Client> &shardConns);
    std::string mergedHealthBody(
        std::map<unsigned, Client> &shardConns);

    /** Render the balancer's own counters as a JSON object. */
    std::string balancerStatsBody() const;

    void markDown(Shard &shard);
    void propagateShutdown();

    /** Spawn-mode helpers. */
    void spawnWorker(unsigned index);
    void reapWorkers();

    /** sendLine with the server's fault semantics on relays. */
    void sendLine(const std::shared_ptr<Connection> &conn,
                  const std::string &line, bool faultable = false);

    void joinEverything();

    BalancerOptions opts_;
    std::uint16_t port_ = 0;
    int listenFd_ = -1;
    std::chrono::steady_clock::time_point started_;

    std::unique_ptr<ShardMap> ring_;
    std::vector<std::unique_ptr<Shard>> shards_;
    mutable std::mutex probeMutex_; ///< guards nextProbe times

    std::unique_ptr<FaultInjector> fault_;
    BalancerStats stats_;

    std::thread acceptThread_;
    std::thread probeThread_;

    std::mutex connMutex_;
    std::vector<std::shared_ptr<Connection>> conns_;

    std::atomic<bool> draining_{false};

    std::mutex stopMutex_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    bool joined_ = false;
};

} // namespace printed::service

#endif // PRINTED_SERVICE_BALANCER_HH
