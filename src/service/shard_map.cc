#include "shard_map.hh"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hh"

namespace printed::service
{

namespace
{

/// SplitMix64 finalizer: spreads the FNV accumulator's entropy over
/// all 64 bits so ring lookups don't inherit FNV's low-bit bias.
std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t ShardMap::hashKey(const std::string &key)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    for (unsigned char c : key)
    {
        h ^= c;
        h *= 0x100000001b3ULL; // FNV-1a prime
    }
    return mix64(h);
}

ShardMap::ShardMap(std::vector<unsigned> shardIds, unsigned vnodes,
                   std::uint64_t seed)
    : ids_(std::move(shardIds))
{
    if (ids_.empty())
        throw std::invalid_argument("ShardMap: no shards");
    if (vnodes == 0)
        throw std::invalid_argument("ShardMap: vnodes must be > 0");

    {
        auto sorted = ids_;
        std::sort(sorted.begin(), sorted.end());
        if (std::adjacent_find(sorted.begin(), sorted.end()) !=
            sorted.end())
            throw std::invalid_argument("ShardMap: duplicate shard id");
    }

    ring_.reserve(static_cast<std::size_t>(ids_.size()) * vnodes);
    for (unsigned shard : ids_)
    {
        // Each vnode point depends only on (seed, shard, v) — never
        // on the other shards — which is what makes remaps minimal:
        // adding a shard inserts its points and moves nobody else's.
        const std::uint64_t shardSeed =
            mixSeed(seed, 0x1000000ULL + shard);
        for (unsigned v = 0; v < vnodes; ++v)
            ring_.push_back(Vnode{mixSeed(shardSeed, v), shard});
    }
    std::sort(ring_.begin(), ring_.end());
}

ShardMap ShardMap::forCount(unsigned count, unsigned vnodes,
                            std::uint64_t seed)
{
    std::vector<unsigned> ids(count);
    for (unsigned i = 0; i < count; ++i)
        ids[i] = i;
    return ShardMap(std::move(ids), vnodes, seed);
}

unsigned ShardMap::shardFor(const std::string &key) const
{
    const std::uint64_t h = hashKey(key);
    auto it = std::upper_bound(
        ring_.begin(), ring_.end(), h,
        [](std::uint64_t lhs, const Vnode &rhs) { return lhs < rhs.point; });
    if (it == ring_.end())
        it = ring_.begin(); // wrap: first vnode clockwise from 2^64
    return it->shard;
}

std::vector<unsigned> ShardMap::failoverOrder(const std::string &key) const
{
    const std::uint64_t h = hashKey(key);
    auto start = std::upper_bound(
        ring_.begin(), ring_.end(), h,
        [](std::uint64_t lhs, const Vnode &rhs) { return lhs < rhs.point; });

    std::vector<unsigned> order;
    order.reserve(ids_.size());
    std::vector<bool> seen(ids_.size(), false);

    const std::size_t n = ring_.size();
    const std::size_t startIdx =
        start == ring_.end() ? 0 : static_cast<std::size_t>(start - ring_.begin());
    for (std::size_t step = 0; step < n && order.size() < ids_.size(); ++step)
    {
        const unsigned shard = ring_[(startIdx + step) % n].shard;
        // ids_ can be any distinct values; map via linear scan (N is
        // a handful of shards, and this is not a hot path).
        for (std::size_t i = 0; i < ids_.size(); ++i)
        {
            if (ids_[i] == shard && !seen[i])
            {
                seen[i] = true;
                order.push_back(shard);
                break;
            }
        }
    }
    return order;
}

} // namespace printed::service
