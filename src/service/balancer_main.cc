/**
 * @file
 * printed-balancer: the sharded front of a printedd fleet. Routes
 * by consistent-hashed request key over N workers — either spawned
 * here (--shards N) or externally managed (--worker H:P, repeated).
 * Prints its listen address on stdout like printedd, serves until a
 * "shutdown" request or SIGINT/SIGTERM, then drains (propagating
 * the drain to its workers) and exits 0.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>

#include "common/logging.hh"
#include "common/trace.hh"
#include "service/balancer.hh"

namespace
{

int gSignalPipe[2] = {-1, -1};

void
onSignal(int)
{
    const char byte = 1;
    (void)!::write(gSignalPipe[1], &byte, 1);
}

unsigned long
numberArg(int argc, char **argv, int &i, const char *flag)
{
    printed::fatalIf(i + 1 >= argc,
                     std::string(flag) + " needs a value");
    return std::strtoul(argv[++i], nullptr, 10);
}

/** "HOST:PORT" -> WorkerAddress (throws on a missing colon). */
printed::service::WorkerAddress
parseWorker(const std::string &spec)
{
    const std::size_t colon = spec.rfind(':');
    printed::fatalIf(colon == std::string::npos || colon == 0,
                     "--worker needs HOST:PORT, got '" + spec + "'");
    printed::service::WorkerAddress addr;
    addr.host = spec.substr(0, colon);
    addr.port = std::uint16_t(
        std::strtoul(spec.c_str() + colon + 1, nullptr, 10));
    return addr;
}

/** Sibling printedd binary of this executable (spawn default). */
std::string
siblingPrintedd(const char *argv0)
{
    std::string path = argv0;
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos)
        return "printedd"; // rely on PATH
    return path.substr(0, slash + 1) + "printedd";
}

void
usage()
{
    std::fputs(
        "usage: printed-balancer [options]\n"
        "  --host ADDR       listen address (default 127.0.0.1)\n"
        "  --port N          listen port (default 0 = ephemeral)\n"
        "  --worker H:P      an externally managed printedd worker\n"
        "                    (repeat once per shard)\n"
        "  --shards N        spawn N printedd workers instead\n"
        "  --printedd PATH   printedd binary for --shards (default:\n"
        "                    next to this executable)\n"
        "  --worker-arg ARG  extra argv passed to spawned workers\n"
        "                    (repeatable, e.g. --worker-arg\n"
        "                    --disk-cache --worker-arg DIR)\n"
        "  --cache-cap N     shorthand: per-worker SynthCache cap\n"
        "  --disk-cache DIR  shorthand: shared persistent cache\n"
        "                    directory for every spawned worker\n"
        "  --vnodes N        ring vnodes per shard (default 128)\n"
        "  --fault-plan SPEC seeded faults on relayed compute\n"
        "                    frames (same spec as printedd)\n"
        "  --trace-out PATH  write a Chrome trace on exit\n",
        stderr);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using printed::service::Balancer;
    using printed::service::BalancerOptions;

    BalancerOptions opts;
    opts.printeddPath = siblingPrintedd(argv[0]);
    std::string traceOut;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (arg == "--host") {
                printed::fatalIf(i + 1 >= argc,
                                 "--host needs a value");
                opts.host = argv[++i];
            } else if (arg == "--port") {
                opts.port = std::uint16_t(
                    numberArg(argc, argv, i, "--port"));
            } else if (arg == "--worker") {
                printed::fatalIf(i + 1 >= argc,
                                 "--worker needs a value");
                opts.workers.push_back(parseWorker(argv[++i]));
            } else if (arg == "--shards") {
                opts.spawnWorkers = unsigned(
                    numberArg(argc, argv, i, "--shards"));
            } else if (arg == "--printedd") {
                printed::fatalIf(i + 1 >= argc,
                                 "--printedd needs a value");
                opts.printeddPath = argv[++i];
            } else if (arg == "--worker-arg") {
                printed::fatalIf(i + 1 >= argc,
                                 "--worker-arg needs a value");
                opts.workerArgs.push_back(argv[++i]);
            } else if (arg == "--cache-cap") {
                opts.workerArgs.push_back("--cache-cap");
                opts.workerArgs.push_back(std::to_string(
                    numberArg(argc, argv, i, "--cache-cap")));
            } else if (arg == "--disk-cache") {
                printed::fatalIf(i + 1 >= argc,
                                 "--disk-cache needs a value");
                opts.workerArgs.push_back("--disk-cache");
                opts.workerArgs.push_back(argv[++i]);
            } else if (arg == "--vnodes") {
                opts.vnodes = unsigned(
                    numberArg(argc, argv, i, "--vnodes"));
            } else if (arg == "--fault-plan") {
                printed::fatalIf(i + 1 >= argc,
                                 "--fault-plan needs a value");
                opts.faultPlan =
                    printed::service::FaultPlan::parse(argv[++i]);
            } else if (arg == "--trace-out") {
                printed::fatalIf(i + 1 >= argc,
                                 "--trace-out needs a value");
                traceOut = argv[++i];
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else {
                std::fprintf(stderr, "unknown option '%s'\n",
                             arg.c_str());
                usage();
                return 2;
            }
        } catch (const printed::FatalError &e) {
            std::fprintf(stderr, "printed-balancer: %s\n", e.what());
            return 2;
        }
    }

    if (opts.spawnWorkers == 0 && opts.workers.empty()) {
        std::fprintf(stderr, "printed-balancer: give --shards N or "
                             "at least one --worker H:P\n");
        usage();
        return 2;
    }
    if (opts.spawnWorkers > 0 && !opts.workers.empty()) {
        std::fprintf(stderr, "printed-balancer: --shards and "
                             "--worker are mutually exclusive\n");
        return 2;
    }

    if (!traceOut.empty())
        printed::trace::enable(traceOut);
    printed::trace::setThreadName("main");

    if (opts.faultPlan.enabled())
        std::fprintf(stderr, "printed-balancer: fault plan %s\n",
                     opts.faultPlan.describe().c_str());

    try {
        const std::string host = opts.host;
        Balancer balancer(std::move(opts));
        balancer.start();

        printed::fatalIf(::pipe(gSignalPipe) != 0, "pipe() failed");
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::thread watcher([&balancer] {
            char byte;
            if (::read(gSignalPipe[0], &byte, 1) > 0)
                balancer.beginShutdown();
        });

        std::printf("printed-balancer listening on %s:%u (%u "
                    "shards)\n",
                    host.c_str(), unsigned(balancer.port()),
                    unsigned(balancer.shardCount()));
        std::fflush(stdout);

        balancer.wait();

        onSignal(0);
        watcher.join();
        ::close(gSignalPipe[0]);
        ::close(gSignalPipe[1]);
    } catch (const printed::FatalError &e) {
        std::fprintf(stderr, "printed-balancer: %s\n", e.what());
        return 1;
    }

    if (!traceOut.empty())
        printed::trace::flush();
    return 0;
}
