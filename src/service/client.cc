#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/json_min.hh"
#include "common/logging.hh"
#include "service/net_io.hh"
#include "service/protocol.hh"

namespace printed::service
{

Reply
parseReply(const std::string &line)
{
    const json::Value root = json::parse(line);
    fatalIf(!root.isObject(), "reply must be a JSON object");
    Reply reply;
    reply.raw = line;
    if (const json::Value *id = root.find("id");
        id && id->isString())
        reply.id = id->string;
    const json::Value *ok = root.find("ok");
    fatalIf(!ok || !ok->isBool(),
            "reply needs a boolean 'ok' field");
    reply.ok = ok->boolean;
    if (!reply.ok) {
        if (const json::Value *e = root.find("error");
            e && e->isString())
            reply.error = e->string;
        if (const json::Value *m = root.find("message");
            m && m->isString())
            reply.message = m->string;
        if (const json::Value *r = root.find("retry_after_ms");
            r && r->isNumber() && r->number >= 0)
            reply.retryAfterMs = r->number;
    }
    if (const json::Value *d = root.find("degraded");
        d && d->isBool())
        reply.degraded = d->boolean;
    return reply;
}

Client::Client(const std::string &host, std::uint16_t port)
{
    connect(host, port);
}

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

void
Client::connect(const std::string &host, std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd_ < 0,
            std::string("socket(): ") + std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    fatalIf(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1,
            "bad server address '" + host + "'");
    for (;;) {
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            break;
        if (errno == EINTR)
            continue;
        const std::string err = std::strerror(errno);
        close();
        fatal("connect(" + host + ":" + std::to_string(port) +
              "): " + err);
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
Client::send(const std::string &line)
{
    fatalIf(fd_ < 0, "client is not connected");
    std::string framed = line;
    framed += '\n';
    fatalIf(!netio::sendAll(fd_, framed.data(), framed.size()),
            "send(): server closed the connection");
}

std::string
Client::readLine(double timeoutMs)
{
    fatalIf(fd_ < 0, "client is not connected");
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        double waitMs = 0;
        if (timeoutMs > 0) {
            const double elapsedMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            waitMs = timeoutMs - elapsedMs;
            if (waitMs <= 0 ||
                !netio::waitReadable(fd_, waitMs))
                throw TimeoutError(
                    "no reply within " + std::to_string(timeoutMs) +
                    " ms");
        }
        char chunk[4096];
        const ssize_t n = netio::recvSome(fd_, chunk, sizeof(chunk));
        fatalIf(n <= 0,
                "server closed the connection mid-reply");
        buffer_.append(chunk, std::size_t(n));
    }
}

std::string
Client::call(const std::string &line)
{
    send(line);
    return readLine();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

// ---------------------------------------------------------------
// RetryingClient
// ---------------------------------------------------------------

RetryingClient::RetryingClient(std::string host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(std::move(host)),
      port_(port),
      policy_(policy),
      jitter_(policy.jitterSeed)
{
}

void
RetryingClient::ensureConnected()
{
    if (client_.connected())
        return;
    client_.connect(host_, port_);
    ++stats_.reconnects;
}

double
RetryingClient::nextBackoffMs(unsigned attempt)
{
    double delay = policy_.baseBackoffMs;
    for (unsigned i = 0; i < attempt && delay < policy_.maxBackoffMs;
         ++i)
        delay *= 2;
    delay = std::min(delay, policy_.maxBackoffMs);
    // Deterministic jitter in [0.5, 1.5) * delay avoids replayed
    // thundering herds while keeping tests reproducible.
    const double u =
        double(jitter_.next() >> 11) * 0x1.0p-53;
    return delay * (0.5 + u);
}

void
RetryingClient::backoff(unsigned attempt, double floorMs)
{
    const double ms = std::max(nextBackoffMs(attempt), floorMs);
    if (ms > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
}

std::string
RetryingClient::call(const std::string &line, bool idempotent)
{
    ++stats_.calls;
    unsigned lossTries = 0;
    unsigned overloadTries = 0;
    for (;;) {
        bool sent = false;
        try {
            ensureConnected();
            client_.send(line);
            sent = true;
            std::string raw =
                client_.readLine(policy_.callTimeoutMs);
            // queue_full is a transient overload rejection, not an
            // answer — honor the server's backoff hint and replay.
            Reply parsed;
            try {
                parsed = parseReply(raw);
            } catch (const std::exception &) {
                return raw; // not our reply shape; caller's problem
            }
            // "unavailable" (the balancer's every-shard-down
            // verdict) is overload-shaped: transient, safe to
            // replay, worth backing off on.
            if (!parsed.ok &&
                (parsed.error == errc::queueFull ||
                 parsed.error == errc::unavailable) &&
                idempotent) {
                fatalIf(overloadTries >= policy_.maxOverloadRetries,
                        "request rejected queue_full " +
                            std::to_string(overloadTries + 1) +
                            " times; giving up");
                ++overloadTries;
                ++stats_.overloadReplays;
                backoff(overloadTries - 1, parsed.retryAfterMs);
                continue;
            }
            return raw;
        } catch (const TimeoutError &) {
            // A late reply may still be in flight on this
            // connection; drop it so a replay can't read a stale
            // frame and mismatch ids.
            client_.close();
            if (!idempotent || lossTries >= policy_.maxLossRetries)
                throw;
            ++lossTries;
            ++stats_.timeoutReplays;
            backoff(lossTries - 1);
        } catch (const FatalError &) {
            client_.close();
            // A non-idempotent request may only be replayed while
            // we know its bytes never reached the server.
            if ((sent && !idempotent) ||
                lossTries >= policy_.maxLossRetries)
                throw;
            ++lossTries;
            ++stats_.lossReplays;
            backoff(lossTries - 1);
        }
    }
}

Reply
RetryingClient::callParsed(const std::string &line, bool idempotent)
{
    return parseReply(call(line, idempotent));
}

StreamResult
RetryingClient::streamCall(
    const std::string &id, RequestType type,
    const std::function<std::string(std::uint64_t)> &lineAt,
    const PointCallback &onPoint)
{
    ++stats_.calls;
    StreamResult out;
    unsigned lossTries = 0;
    unsigned overloadTries = 0;
    for (;;) {
        try {
            ensureConnected();
            // Replays ask only for what is missing: every point
            // already in hand stays in hand, so the callback fires
            // exactly once per index no matter how many resumes it
            // takes.
            client_.send(lineAt(out.points.size()));
            for (;;) {
                const std::string raw =
                    client_.readLine(policy_.callTimeoutMs);
                StreamFrame frame;
                try {
                    frame = classifyFrame(raw);
                } catch (const std::exception &) {
                    out.reply.raw = raw;
                    return out; // not our reply shape
                }
                fatalIf(!frame.id.empty() && frame.id != id,
                        "stream frame for id '" + frame.id +
                            "' while waiting on '" + id + "'");

                if (frame.kind == StreamFrame::Kind::Partial) {
                    fatalIf(frame.index != out.points.size(),
                            "stream point " +
                                std::to_string(frame.index) +
                                " arrived with " +
                                std::to_string(out.points.size()) +
                                " points in hand");
                    out.points.push_back(frame.pointBody);
                    ++out.partials;
                    out.streamed = true;
                    if (onPoint)
                        onPoint(frame.index, frame.total,
                                out.points.back());
                    continue;
                }

                if (frame.kind == StreamFrame::Kind::Done) {
                    fatalIf(frame.points != out.points.size(),
                            "stream done after " +
                                std::to_string(frame.points) +
                                " points but " +
                                std::to_string(out.points.size()) +
                                " are in hand");
                    out.streamed = true;
                    out.reply = parseReply(
                        assembleStreamedReply(id, type, out.points));
                    return out;
                }

                // Final frame: a monolithic reply (v1 negotiation
                // fallback) or an error.
                Reply parsed;
                try {
                    parsed = parseReply(raw);
                } catch (const std::exception &) {
                    out.reply.raw = raw;
                    return out;
                }
                if (!parsed.ok &&
                    (parsed.error == errc::queueFull ||
                     parsed.error == errc::unavailable)) {
                    fatalIf(overloadTries >=
                                policy_.maxOverloadRetries,
                            "stream rejected " + parsed.error + " " +
                                std::to_string(overloadTries + 1) +
                                " times; giving up");
                    ++overloadTries;
                    ++stats_.overloadReplays;
                    backoff(overloadTries - 1, parsed.retryAfterMs);
                    break; // resend, resuming past held points
                }
                out.reply = parsed;
                return out;
            }
        } catch (const TimeoutError &) {
            client_.close();
            if (lossTries >= policy_.maxLossRetries)
                throw;
            ++lossTries;
            ++stats_.timeoutReplays;
            if (!out.points.empty())
                ++stats_.streamResumes;
            backoff(lossTries - 1);
        } catch (const FatalError &) {
            client_.close();
            if (lossTries >= policy_.maxLossRetries)
                throw;
            ++lossTries;
            ++stats_.lossReplays;
            if (!out.points.empty())
                ++stats_.streamResumes;
            backoff(lossTries - 1);
        }
    }
}

StreamResult
RetryingClient::streamSweep(const std::string &id,
                            const SweepSpec &spec,
                            const PointCallback &onPoint,
                            double deadlineMs)
{
    return streamCall(
        id, RequestType::Sweep,
        [&](std::uint64_t resumeFrom) {
            return sweepStreamRequest(id, spec, resumeFrom,
                                      deadlineMs);
        },
        onPoint);
}

StreamResult
RetryingClient::streamYield(const std::string &id,
                            const CoreConfig &config, unsigned trials,
                            std::uint64_t seed, unsigned replicas,
                            const PointCallback &onPoint,
                            double deadlineMs)
{
    return streamCall(
        id, RequestType::Yield,
        [&](std::uint64_t resumeFrom) {
            return yieldStreamRequest(id, config, trials, seed,
                                      replicas, resumeFrom,
                                      deadlineMs);
        },
        onPoint);
}

StreamResult
RetryingClient::streamClassify(const std::string &id,
                               const ml::ClassifySpec &spec,
                               const PointCallback &onPoint,
                               double deadlineMs)
{
    return streamCall(
        id, RequestType::Classify,
        [&](std::uint64_t resumeFrom) {
            return classifyStreamRequest(id, spec, resumeFrom,
                                         deadlineMs);
        },
        onPoint);
}

void
RetryingClient::close()
{
    client_.close();
}

} // namespace printed::service
