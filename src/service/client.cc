#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/json_min.hh"
#include "common/logging.hh"

namespace printed::service
{

Reply
parseReply(const std::string &line)
{
    const json::Value root = json::parse(line);
    fatalIf(!root.isObject(), "reply must be a JSON object");
    Reply reply;
    reply.raw = line;
    if (const json::Value *id = root.find("id");
        id && id->isString())
        reply.id = id->string;
    const json::Value *ok = root.find("ok");
    fatalIf(!ok || !ok->isBool(),
            "reply needs a boolean 'ok' field");
    reply.ok = ok->boolean;
    if (!reply.ok) {
        if (const json::Value *e = root.find("error");
            e && e->isString())
            reply.error = e->string;
        if (const json::Value *m = root.find("message");
            m && m->isString())
            reply.message = m->string;
    }
    return reply;
}

Client::Client(const std::string &host, std::uint16_t port)
{
    connect(host, port);
}

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buffer_ = std::move(other.buffer_);
    }
    return *this;
}

void
Client::connect(const std::string &host, std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd_ < 0,
            std::string("socket(): ") + std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    fatalIf(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1,
            "bad server address '" + host + "'");
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const std::string err = std::strerror(errno);
        close();
        fatal("connect(" + host + ":" + std::to_string(port) +
              "): " + err);
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void
Client::send(const std::string &line)
{
    fatalIf(fd_ < 0, "client is not connected");
    std::string framed = line;
    framed += '\n';
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n =
            ::send(fd_, framed.data() + sent,
                   framed.size() - sent, MSG_NOSIGNAL);
        fatalIf(n <= 0, std::string("send(): ") +
                            std::strerror(errno));
        sent += std::size_t(n);
    }
}

std::string
Client::readLine()
{
    fatalIf(fd_ < 0, "client is not connected");
    for (;;) {
        const std::size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        fatalIf(n <= 0,
                "server closed the connection mid-reply");
        buffer_.append(chunk, std::size_t(n));
    }
}

std::string
Client::call(const std::string &line)
{
    send(line);
    return readLine();
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

} // namespace printed::service
