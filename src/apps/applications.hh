/**
 * @file
 * Printed-application requirements (paper Table 3) and feasibility
 * analysis: which applications a given core can serve, given its
 * throughput and the application's sample rate / precision / duty
 * cycle.
 */

#ifndef PRINTED_APPS_APPLICATIONS_HH
#define PRINTED_APPS_APPLICATIONS_HH

#include <string>
#include <vector>

namespace printed
{

/** Representative duty-cycle classes from Table 3. */
enum class DutyCycleClass
{
    Continuous, ///< always on
    Seconds,    ///< wakes every few seconds
    Minutes,
    Hours,
    SingleUse,  ///< runs once
};

/** One row of Table 3. */
struct ApplicationInfo
{
    std::string name;
    double sampleRateHz = 1;   ///< maximum sample rate
    unsigned precisionBits = 8;
    DutyCycleClass dutyCycle = DutyCycleClass::Continuous;
    std::string dutyCycleNote; ///< the Table 3 wording

    /** Representative active fraction for lifetime estimates. */
    double dutyFraction() const;
};

/** The Table 3 survey (17 applications). */
const std::vector<ApplicationInfo> &applicationSurvey();

/**
 * Instructions the core must retire per sample for an application
 * (a fixed processing budget; the paper's kernels run tens to a
 * few thousand instructions per invocation).
 */
constexpr double opsPerSample = 200.0;

/**
 * True when a core with the given instruction throughput and
 * datawidth can serve the application: enough IPS for the sample
 * rate at the processing budget, and a wide-enough datapath (or
 * coalescing, which doubles the work per extra word).
 */
bool feasible(const ApplicationInfo &app, double ips,
              unsigned datawidth);

} // namespace printed

#endif // PRINTED_APPS_APPLICATIONS_HH
