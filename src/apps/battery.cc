#include "battery.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace printed
{

double
Battery::energyJoules() const
{
    return batteryEnergyJoules(capacity_mah, voltage);
}

const std::vector<Battery> &
printedBatteries()
{
    // Capacities from the paper; deliverable power is set to the
    // ~30 mW class bound Section 4 cites, scaled down for the
    // smaller cells.
    static const std::vector<Battery> rows = {
        {"Molex 90mAh", 90.0, 1.0, 30.0},
        {"Blue Spark 30mAh", 30.0, 1.0, 30.0},
        {"Zinergy 12mAh", 12.0, 1.0, 15.0},
        {"Blue Spark 10mAh", 10.0, 1.0, 10.0},
    };
    return rows;
}

const Battery &
table8Battery()
{
    return printedBatteries()[1]; // Blue Spark 30 mAh at 1 V
}

double
lifetimeHours(const Battery &battery, double active_power_mw,
              double duty)
{
    fatalIf(duty <= 0 || duty > 1.0,
            "lifetimeHours: duty must be in (0, 1]");
    fatalIf(active_power_mw <= 0,
            "lifetimeHours: power must be positive");
    const double avg_w = active_power_mw * 1e-3 * duty;
    return battery.energyJoules() / avg_w / 3600.0;
}

bool
withinPowerBudget(const Battery &battery, double active_power_mw)
{
    return active_power_mw <= battery.maxPower_mW;
}

} // namespace printed
