/**
 * @file
 * Printed battery models and the duty-cycle lifetime analysis of
 * Figures 4 and 5.
 *
 * The paper evaluates four commercially printed batteries: Molex
 * 90 mAh, Blue Spark 30 mAh, Zinergy 12 mAh, Blue Spark 10 mAh.
 * Lifetime follows the paper's own model: stored energy divided by
 * average drawn power, with the average set by the CPU duty cycle.
 * Section 4 also notes several printed batteries cannot deliver
 * more than ~30 mW continuously, which caps usable cores.
 */

#ifndef PRINTED_APPS_BATTERY_HH
#define PRINTED_APPS_BATTERY_HH

#include <string>
#include <vector>

namespace printed
{

/** A printed battery. */
struct Battery
{
    std::string name;
    double capacity_mah = 0;
    double voltage = 1.0;
    double maxPower_mW = 30.0; ///< deliverable continuous power

    /** Stored energy [J] (30 mAh at 1 V = 108 J, Section 4). */
    double energyJoules() const;
};

/** The four printed batteries of Figures 4/5, in paper order. */
const std::vector<Battery> &printedBatteries();

/** The 30 mAh battery used for the Table 8 iteration budget. */
const Battery &table8Battery();

/**
 * Lifetime in hours at a CPU duty cycle.
 * @param battery energy source
 * @param active_power_mw power while the core runs
 * @param duty fraction of time the core is active (idle power
 *        is taken as zero, as in the paper's model)
 */
double lifetimeHours(const Battery &battery, double active_power_mw,
                     double duty);

/** True when the battery can source the core at full duty. */
bool withinPowerBudget(const Battery &battery,
                       double active_power_mw);

} // namespace printed

#endif // PRINTED_APPS_BATTERY_HH
