#include "applications.hh"

#include "common/logging.hh"

namespace printed
{

double
ApplicationInfo::dutyFraction() const
{
    switch (dutyCycle) {
      case DutyCycleClass::Continuous: return 1.0;
      case DutyCycleClass::Seconds: return 1e-1;
      case DutyCycleClass::Minutes: return 1e-2;
      case DutyCycleClass::Hours: return 1e-3;
      case DutyCycleClass::SingleUse: return 1e-4;
    }
    panic("dutyFraction: unknown class");
}

const std::vector<ApplicationInfo> &
applicationSurvey()
{
    // Table 3 of the paper.
    static const std::vector<ApplicationInfo> rows = {
        {"Blood Pressure Sensor", 100, 8, DutyCycleClass::Hours,
         "Hours"},
        {"Odor Sensor", 25, 8, DutyCycleClass::Minutes, "Minutes"},
        {"Heart Beat Sensor", 4, 1, DutyCycleClass::Seconds,
         "Seconds"},
        {"Pressure Sensor", 5.5, 12, DutyCycleClass::Continuous,
         "Continuous to Hours"},
        {"Light Level Sensor", 1, 16, DutyCycleClass::Continuous,
         "Continuous to Hours"},
        {"Trace Metal Sensor", 25, 16, DutyCycleClass::Minutes,
         "Minutes"},
        {"Food Temp. Sensor", 1, 16, DutyCycleClass::Minutes,
         "5 minutes"},
        {"Alcohol Sensor", 1, 8, DutyCycleClass::SingleUse,
         "Single Use"},
        {"Humidity Sensor", 10, 16, DutyCycleClass::Continuous,
         "Continuous to Hours"},
        {"Body Temperature Sensor", 1, 8, DutyCycleClass::Minutes,
         "Minutes"},
        {"Smart Bandage", 0.01, 8, DutyCycleClass::Continuous,
         "Continuous to Hours"},
        {"Tremor Sensor", 25, 16, DutyCycleClass::Seconds,
         "Seconds"},
        {"Oral-Nasal Airflow", 25, 8, DutyCycleClass::Seconds,
         "Seconds"},
        {"Perspiration Sensor", 25, 16, DutyCycleClass::Minutes,
         "Minutes"},
        {"Pedometer", 25, 1, DutyCycleClass::Seconds, "Seconds"},
        {"Timer", 1, 1, DutyCycleClass::SingleUse, "Single Use"},
        {"POS Computation", 100, 8, DutyCycleClass::SingleUse,
         "Single Use"},
    };
    return rows;
}

bool
feasible(const ApplicationInfo &app, double ips, unsigned datawidth)
{
    // Narrow cores serve wide applications through data coalescing
    // at a word-count work multiplier (Section 5.1).
    const double words =
        app.precisionBits <= datawidth
            ? 1.0
            : double((app.precisionBits + datawidth - 1) / datawidth);
    return ips >= app.sampleRateHz * opsPerSample * words;
}

} // namespace printed
