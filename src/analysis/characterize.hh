/**
 * @file
 * One-stop characterization: the area / power / delay triple the
 * paper reports for every design point (Tables 4 and 5, Figures 7
 * and 8).
 */

#ifndef PRINTED_ANALYSIS_CHARACTERIZE_HH
#define PRINTED_ANALYSIS_CHARACTERIZE_HH

#include <string>

#include "analysis/area.hh"
#include "analysis/power.hh"
#include "analysis/timing.hh"
#include "netlist/netlist.hh"
#include "netlist/stats.hh"
#include "tech/library.hh"

namespace printed
{

/**
 * Full characterization of one netlist in one technology: structural
 * stats, area, timing, and power at fmax (the operating point the
 * paper's tables use).
 */
struct Characterization
{
    std::string label;
    TechKind tech = TechKind::EGFET;
    NetlistStats stats;
    AreaReport area;
    TimingReport timing;
    PowerReport powerAtFmax;

    /** Gate count (cell instances), as in Table 4. */
    std::size_t gateCount() const { return stats.totalGates; }

    /** Area in the paper's cm^2 convention. */
    double areaCm2() const { return area.totalCm2(); }

    /** Maximum clock frequency [Hz]. */
    double fmaxHz() const { return timing.fmaxHz; }

    /** Total power at fmax [mW]. */
    double powerMw() const { return powerAtFmax.total_mW; }
};

/**
 * Characterize a netlist: validates, collects structural stats, and
 * runs area / timing / power analysis.
 *
 * @param netlist the gate-level design
 * @param lib technology library (EGFET or CNT-TFT)
 * @param activity switching-activity factor (default: the paper's
 *        reported average of 0.88)
 */
Characterization characterize(const Netlist &netlist,
                              const CellLibrary &lib,
                              double activity = paperActivityFactor);

} // namespace printed

#endif // PRINTED_ANALYSIS_CHARACTERIZE_HH
