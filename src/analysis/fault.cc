#include "fault.hh"

#include <algorithm>
#include <optional>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <memory>

#include "analysis/yield.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/trace.hh"
#include "core/batch_cosim.hh"
#include "core/cosim.hh"
#include "workloads/kernels.hh"

namespace printed
{

namespace
{

/** Uniform double in [0, 1) from 53 random bits. */
double
uniform(Rng &rng)
{
    return double(rng.next() >> 11) / 9007199254740992.0;
}

/** One workload instantiated for the core, with golden results. */
struct KernelHarness
{
    Workload wl;
    std::vector<std::uint64_t> inputs;
    std::vector<std::uint64_t> golden;
    std::uint64_t cycleBudget = 0;
};

/** Per-thread gate-level harnesses (one cosim per kernel). */
std::vector<std::unique_ptr<CoreCosim>>
buildCosims(const Netlist &core, const CoreConfig &config,
            const std::vector<KernelHarness> &kernels)
{
    std::vector<std::unique_ptr<CoreCosim>> sims;
    sims.reserve(kernels.size());
    for (const KernelHarness &k : kernels) {
        sims.push_back(std::make_unique<CoreCosim>(
            core, config, k.wl.program, k.wl.dmemWords));
        if (k.wl.streamAddr >= 0)
            sims.back()->setStreamPort(
                std::size_t(k.wl.streamAddr),
                k.wl.streamInputs(k.inputs));
    }
    return sims;
}

/**
 * Run every kernel on one defective replica.
 * @return Fatal on any wrong result / illegal state / lost halt,
 *         otherwise WorkloadMasked or FullyBenign by whether any
 *         fault activation was observed.
 */
TrialOutcome
runDefectMap(std::vector<std::unique_ptr<CoreCosim>> &sims,
             const std::vector<KernelHarness> &kernels,
             const DefectMap &map)
{
    std::uint64_t activations = 0;
    bool fatal = false;
    for (std::size_t i = 0; i < kernels.size() && !fatal; ++i) {
        CoreCosim &cs = *sims[i];
        const KernelHarness &k = kernels[i];
        cs.simulator().setFaults(map.faults);
        try {
            cs.reset();
            k.wl.load([&](std::size_t a, std::uint64_t v) {
                cs.setMem(a, v);
            }, k.inputs);
            cs.run(k.cycleBudget);
            const auto got = k.wl.read(
                [&](std::size_t a) { return cs.mem(a); });
            fatal = got != k.golden;
        } catch (const SimulationError &) {
            // Defect drove an illegal state (bus contention,
            // S=R=1): the print is electrically broken.
            fatal = true;
        } catch (const FatalError &) {
            // Lost halt (cycle budget) or wild write: broken.
            fatal = true;
        }
        activations += cs.simulator().faultActivations();
        cs.simulator().clearFaults();
    }
    if (fatal)
        return TrialOutcome::Fatal;
    return activations ? TrialOutcome::WorkloadMasked
                       : TrialOutcome::FullyBenign;
}

/** Classification of one full trial (all replicas). */
enum class TrialClass : std::uint8_t
{
    DefectFree,
    Benign,
    Masked,
    Fatal,
};

/** Per-worker 64-lane harnesses (one batch cosim per kernel). */
std::vector<std::unique_ptr<BatchCoreCosim>>
buildBatchCosims(const Netlist &core, const CoreConfig &config,
                 const std::vector<KernelHarness> &kernels)
{
    std::vector<std::unique_ptr<BatchCoreCosim>> sims;
    sims.reserve(kernels.size());
    for (const KernelHarness &k : kernels) {
        sims.push_back(std::make_unique<BatchCoreCosim>(
            core, config, k.wl.program, k.wl.dmemWords));
        if (k.wl.streamAddr >= 0)
            sims.back()->setStreamPort(
                std::size_t(k.wl.streamAddr),
                k.wl.streamInputs(k.inputs));
    }
    return sims;
}

/** Reusable per-worker state of the batch engine. */
struct BatchWorker
{
    std::vector<std::unique_ptr<BatchCoreCosim>> sims;
    /** One defect-map scratch per lane (capacity reused). */
    std::array<DefectMap, BatchGateSimulator::laneCount> maps;
};

/**
 * Run one block of up to 64 trials on the batch engine and classify
 * each into its outcome slot. Lane L carries trial firstTrial + L;
 * per-trial seeds depend only on the trial index, never the lane
 * (the determinism contract), so the classification is identical to
 * running each trial through runDefectMap() on the scalar engine:
 *
 *   - a lane whose map is empty for every replica is DefectFree;
 *   - a lane is Fatal the moment a kernel run kills it (illegal
 *     electrical state, wild RAM write — where the scalar engine
 *     throws), fails to halt in budget, or computes wrong results;
 *     fatal lanes skip the remaining kernels and replicas exactly
 *     as the scalar loops break early;
 *   - otherwise Masked if any fault activation was observed in any
 *     (replica, kernel) run, else Benign.
 */
void
runTrialBlock(BatchWorker &w,
              const std::vector<KernelHarness> &kernels,
              const Netlist &core,
              const FunctionalYieldConfig &cfg,
              std::size_t firstTrial, unsigned nLanes,
              std::vector<TrialClass> &outcome)
{
    constexpr unsigned L = BatchGateSimulator::laneCount;
    const LaneMask inRange =
        nLanes == L ? BatchGateSimulator::allLanes
                    : (LaneMask(1) << nLanes) - 1;
    LaneMask fatal = 0, everActivated = 0, anyDefect = 0;
    for (unsigned r = 0; r < cfg.replicas; ++r) {
        const LaneMask alive = inRange & ~fatal;
        if (!alive)
            break;
        LaneMask participating = 0;
        for (LaneMask m = alive; m; m &= m - 1) {
            const unsigned lane = unsigned(std::countr_zero(m));
            drawDefectsInto(core, cfg.fault,
                            faultTrialSeed(cfg.fault.seed,
                                           firstTrial + lane, r),
                            w.maps[lane]);
            if (!w.maps[lane].empty())
                participating |= LaneMask(1) << lane;
        }
        anyDefect |= participating;
        if (!participating)
            continue;
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            const LaneMask part = participating & ~fatal;
            if (!part)
                break;
            BatchCoreCosim &cs = *w.sims[i];
            BatchGateSimulator &sim = cs.simulator();
            const KernelHarness &k = kernels[i];
            sim.clearFaults();
            for (LaneMask m = part; m; m &= m - 1) {
                const unsigned lane =
                    unsigned(std::countr_zero(m));
                sim.setLaneFaults(lane, w.maps[lane].faults);
            }
            cs.reset();
            sim.retireLanes(~part);
            k.wl.load([&](std::size_t a, std::uint64_t v) {
                cs.setMemAll(a, v);
            }, k.inputs);
            cs.run(k.cycleBudget);
            // Killed (illegal state / wild write) or still running
            // at the budget (lost halt): fatal, as the scalar
            // engine's catch blocks classify the same trials.
            LaneMask fatalNow =
                part & (cs.killedLanes() | ~cs.haltedLanes());
            for (LaneMask m = part & ~fatalNow; m; m &= m - 1) {
                const unsigned lane =
                    unsigned(std::countr_zero(m));
                const auto got = k.wl.read([&](std::size_t a) {
                    return cs.mem(lane, a);
                });
                if (got != k.golden)
                    fatalNow |= LaneMask(1) << lane;
            }
            fatal |= fatalNow;
            for (LaneMask m = part; m; m &= m - 1) {
                const unsigned lane =
                    unsigned(std::countr_zero(m));
                if (sim.faultActivations(lane))
                    everActivated |= LaneMask(1) << lane;
            }
        }
    }
    for (unsigned lane = 0; lane < nLanes; ++lane) {
        const LaneMask bit = LaneMask(1) << lane;
        TrialClass c = TrialClass::Benign;
        if (!(anyDefect & bit))
            c = TrialClass::DefectFree;
        else if (fatal & bit)
            c = TrialClass::Fatal;
        else if (everActivated & bit)
            c = TrialClass::Masked;
        outcome[firstTrial + lane] = c;
    }
}

} // anonymous namespace

std::uint64_t
faultTrialSeed(std::uint64_t seed, std::uint64_t trial,
               std::uint64_t replica)
{
    return mixSeed(mixSeed(seed, trial), replica);
}

void
drawDefectsInto(const Netlist &netlist, const FaultModel &model,
                std::uint64_t trialSeed, DefectMap &out)
{
    fatalIf(model.deviceYield < 0 || model.deviceYield > 1,
            "drawDefects: device yield must be in [0, 1]");
    fatalIf(model.bridgeFraction < 0 || model.bridgeFraction > 1,
            "drawDefects: bridge fraction must be in [0, 1]");

    // Per-cell-kind failure probability 1 - y^devices, shared with
    // the analytic model through cellDeviceCount().
    std::array<double, numCellKinds> failProb{};
    for (std::size_t k = 0; k < numCellKinds; ++k)
        failProb[k] = 1.0 - std::pow(model.deviceYield,
                                     double(cellDeviceCount(
                                         static_cast<CellKind>(k))));

    out.seed = trialSeed;
    out.faults.clear();
    Rng rng(trialSeed);
    for (GateId gi = 0; gi < netlist.gateCount(); ++gi) {
        const Gate &g = netlist.gate(gi);
        if (uniform(rng) >=
            failProb[static_cast<std::size_t>(g.kind)])
            continue;
        InjectedFault f;
        f.gate = gi;
        const bool canBridge = !cellIsSequential(g.kind) &&
                               g.kind != CellKind::TSBUFX1;
        if (canBridge && uniform(rng) < model.bridgeFraction) {
            f.kind = FaultKind::BridgeInput;
            f.bridge = (g.in1 != invalidNet && rng.flip()) ? g.in1
                                                           : g.in0;
        } else {
            f.kind = rng.flip() ? FaultKind::StuckAt1
                                : FaultKind::StuckAt0;
        }
        out.faults.push_back(f);
    }
}

DefectMap
drawDefects(const Netlist &netlist, const FaultModel &model,
            std::uint64_t trialSeed)
{
    DefectMap map;
    drawDefectsInto(netlist, model, trialSeed, map);
    return map;
}

FunctionalYieldReport
measureFunctionalYield(const Netlist &core, const CoreConfig &config,
                       const FunctionalYieldConfig &cfg)
{
    fatalIf(cfg.trials == 0, "measureFunctionalYield: need trials");
    fatalIf(cfg.replicas == 0,
            "measureFunctionalYield: need at least one replica");
    fatalIf(cfg.kernels.empty(),
            "measureFunctionalYield: need at least one kernel");

    trace::Span span("fault.measureFunctionalYield", config.label());

    // Instantiate the kernels at the core's native width and verify
    // them on the fault-free netlist; the clean cycle counts set
    // the per-trial budget (a fault that quadruples the runtime has
    // de facto killed the core).
    const unsigned w = config.isa.datawidth;
    std::vector<KernelHarness> kernels;
    for (Kernel kind : cfg.kernels) {
        KernelHarness k;
        k.wl = makeWorkload(kind, w, w, config.isa.barCount);
        k.inputs = defaultInputs(kind, w);
        k.golden = goldenOutputs(kind, w, k.inputs);
        kernels.push_back(std::move(k));
    }
    {
        trace::Span gv("fault.golden_verify");
        auto sims = buildCosims(core, config, kernels);
        for (std::size_t i = 0; i < kernels.size(); ++i) {
            KernelHarness &k = kernels[i];
            CoreCosim &cs = *sims[i];
            cs.reset();
            k.wl.load([&](std::size_t a, std::uint64_t v) {
                cs.setMem(a, v);
            }, k.inputs);
            const std::uint64_t cycles = cs.run();
            const auto got = k.wl.read(
                [&](std::size_t a) { return cs.mem(a); });
            fatalIf(got != k.golden,
                    "measureFunctionalYield: fault-free core fails "
                    "workload " + k.wl.program.name);
            k.cycleBudget = 4 * cycles + 64;
        }
    }

    unsigned threads = cfg.threads ? cfg.threads
                                   : ThreadPool::defaultThreadCount();

    // Each trial is fully determined by (seed, trial, replica) and
    // classified into its own slot of `outcome`, so the report is
    // bit-identical for any thread count and schedule (the
    // determinism contract of common/parallel.hh). The gate-level
    // cosims are expensive to construct, so each pool worker lazily
    // builds one set and reuses it across the work it claims — sims
    // carry no state between trials (faults are cleared, the core
    // reset), so which worker runs a trial cannot matter.
    std::vector<TrialClass> outcome(cfg.trials);
    trace::Span mcSpan("fault.mc",
                       std::to_string(cfg.trials) + " trials");
    const auto mcStart = std::chrono::steady_clock::now();
    if (cfg.engine == SimEngine::Batch) {
        // Workers claim trials in blocks of 64: lane L of block b
        // carries trial 64*b + L, so the trial -> seed mapping (and
        // with it every defect map) is byte-for-byte the scalar
        // engine's.
        constexpr unsigned L = BatchGateSimulator::laneCount;
        const std::size_t nBlocks = (cfg.trials + L - 1) / L;
        threads = unsigned(
            std::min<std::size_t>(threads, nBlocks));
        std::optional<ThreadPool> owned;
        if (!cfg.pool)
            owned.emplace(threads);
        ThreadPool &pool = cfg.pool ? *cfg.pool : *owned;
        std::vector<BatchWorker> workers(pool.threadCount());
        pool.parallelForWorkers(
            nBlocks, [&](std::size_t b, unsigned worker) {
                BatchWorker &w = workers[worker];
                if (w.sims.empty())
                    w.sims =
                        buildBatchCosims(core, config, kernels);
                const unsigned nLanes =
                    unsigned(std::min<std::size_t>(
                        L, cfg.trials - b * L));
                runTrialBlock(w, kernels, core, cfg, b * L,
                              nLanes, outcome);
            });
    } else {
        threads = std::min(threads, cfg.trials);
        std::optional<ThreadPool> owned;
        if (!cfg.pool)
            owned.emplace(threads);
        ThreadPool &pool = cfg.pool ? *cfg.pool : *owned;
        std::vector<std::vector<std::unique_ptr<CoreCosim>>>
            workerSims(pool.threadCount());
        std::vector<DefectMap> workerMap(pool.threadCount());
        pool.parallelForWorkers(
            cfg.trials, [&](std::size_t t, unsigned worker) {
                auto &sims = workerSims[worker];
                if (sims.empty())
                    sims = buildCosims(core, config, kernels);
                DefectMap &map = workerMap[worker];
                TrialOutcome out = TrialOutcome::FullyBenign;
                bool anyDefect = false;
                for (unsigned r = 0; r < cfg.replicas; ++r) {
                    drawDefectsInto(
                        core, cfg.fault,
                        faultTrialSeed(cfg.fault.seed, t, r), map);
                    if (map.empty())
                        continue;
                    anyDefect = true;
                    const TrialOutcome o =
                        runDefectMap(sims, kernels, map);
                    if (o == TrialOutcome::Fatal) {
                        out = TrialOutcome::Fatal;
                        break;
                    }
                    if (o == TrialOutcome::WorkloadMasked)
                        out = TrialOutcome::WorkloadMasked;
                }
                if (!anyDefect)
                    outcome[t] = TrialClass::DefectFree;
                else if (out == TrialOutcome::Fatal)
                    outcome[t] = TrialClass::Fatal;
                else if (out == TrialOutcome::WorkloadMasked)
                    outcome[t] = TrialClass::Masked;
                else
                    outcome[t] = TrialClass::Benign;
            });
    }

    const double mcSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - mcStart)
            .count();

    FunctionalYieldReport report;
    report.trials = cfg.trials;
    for (TrialClass c : outcome) {
        switch (c) {
          case TrialClass::Fatal:      ++report.fatalTrials; break;
          case TrialClass::Masked:     ++report.maskedTrials; break;
          case TrialClass::Benign:     ++report.benignTrials; break;
          case TrialClass::DefectFree: ++report.defectFreeTrials;
            break;
        }
    }

    // Trial/outcome counters are deterministic across thread
    // counts; the trials/s gauge is wall-clock (excluded from the
    // determinism comparisons).
    metrics::counter("fault.trials").add(report.trials);
    metrics::counter("fault.trials_fatal").add(report.fatalTrials);
    metrics::counter("fault.trials_masked").add(report.maskedTrials);
    metrics::counter("fault.trials_benign").add(report.benignTrials);
    metrics::counter("fault.trials_defect_free")
        .add(report.defectFreeTrials);
    if (mcSeconds > 0)
        metrics::gauge("fault.mc.trials_per_s")
            .set(double(cfg.trials) / mcSeconds);
    report.devicesPerReplica = deviceCount(core);
    report.replicas = cfg.replicas;
    report.analyticYield =
        yieldForDevices(report.devicesPerReplica * cfg.replicas,
                        {cfg.fault.deviceYield, 1.0})
            .yield;
    return report;
}

} // namespace printed
